package netaddr

import (
	"math/rand"
	"sort"
	"testing"
)

// TestTriePaperExample replays the Figure 2 scenario: a router with entries
// for 22.33.44.0/24 (port 5) and 22.33.0.0/16 (port 3). The endpoint at
// 22.33.44.55 matches the /24; after moving to 22.33.88.55 it matches the
// /16; inserting a /32 override restores correct forwarding.
func TestTriePaperExample(t *testing.T) {
	var fib Trie[int]
	fib.Insert(MustParsePrefix("22.33.44.0/24"), 5)
	fib.Insert(MustParsePrefix("22.33.0.0/16"), 3)

	if port, ok := fib.Lookup(MustParseAddr("22.33.44.55")); !ok || port != 5 {
		t.Fatalf("old address port = %d, %v; want 5", port, ok)
	}
	if port, ok := fib.Lookup(MustParseAddr("22.33.88.55")); !ok || port != 3 {
		t.Fatalf("new address port = %d, %v; want 3", port, ok)
	}
	// The displacement: ports differ, so router R installs a /32.
	fib.Insert(MustParsePrefix("22.33.44.55/32"), 3)
	if port, _ := fib.Lookup(MustParseAddr("22.33.44.55")); port != 3 {
		t.Fatalf("after host-route insert, port = %d; want 3", port)
	}
	// Neighbors in the /24 still use port 5.
	if port, _ := fib.Lookup(MustParseAddr("22.33.44.56")); port != 5 {
		t.Fatalf("neighbor port = %d; want 5", port)
	}
}

func TestTrieEmptyLookup(t *testing.T) {
	var tr Trie[string]
	if _, ok := tr.Lookup(MustParseAddr("1.2.3.4")); ok {
		t.Error("lookup in empty trie should miss")
	}
	if _, ok := tr.Get(MustParsePrefix("1.0.0.0/8")); ok {
		t.Error("get in empty trie should miss")
	}
	if tr.Remove(MustParsePrefix("1.0.0.0/8")) {
		t.Error("remove in empty trie should report false")
	}
	if tr.Len() != 0 {
		t.Error("empty trie should have length 0")
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MakePrefix(0, 0), 99)
	if v, ok := tr.Lookup(MustParseAddr("200.100.50.25")); !ok || v != 99 {
		t.Fatalf("default route lookup = %d, %v", v, ok)
	}
	tr.Insert(MustParsePrefix("200.0.0.0/8"), 7)
	if v, _ := tr.Lookup(MustParseAddr("200.100.50.25")); v != 7 {
		t.Fatalf("more specific should win: got %d", v)
	}
	if v, _ := tr.Lookup(MustParseAddr("100.1.1.1")); v != 99 {
		t.Fatalf("default should still match elsewhere: got %d", v)
	}
}

func TestTrieInsertReplace(t *testing.T) {
	var tr Trie[int]
	if !tr.Insert(MustParsePrefix("10.0.0.0/8"), 1) {
		t.Error("first insert should be fresh")
	}
	if tr.Insert(MustParsePrefix("10.0.0.0/8"), 2) {
		t.Error("second insert should replace")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
	if v, _ := tr.Get(MustParsePrefix("10.0.0.0/8")); v != 2 {
		t.Errorf("value = %d, want 2", v)
	}
}

func TestTrieRemove(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(MustParsePrefix("10.1.0.0/16"), 2)
	if !tr.Remove(MustParsePrefix("10.1.0.0/16")) {
		t.Fatal("remove should succeed")
	}
	if tr.Remove(MustParsePrefix("10.1.0.0/16")) {
		t.Fatal("double remove should fail")
	}
	if v, _ := tr.Lookup(MustParseAddr("10.1.2.3")); v != 1 {
		t.Fatalf("after removing /16, /8 should match: got %d", v)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestTrieLookupPrefix(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("22.33.0.0/16"), 3)
	tr.Insert(MustParsePrefix("22.33.44.0/24"), 5)
	p, v, ok := tr.LookupPrefix(MustParseAddr("22.33.44.55"))
	if !ok || v != 5 || p != MustParsePrefix("22.33.44.0/24") {
		t.Fatalf("LookupPrefix = %v, %d, %v", p, v, ok)
	}
	p, v, ok = tr.LookupPrefix(MustParseAddr("22.33.99.1"))
	if !ok || v != 3 || p != MustParsePrefix("22.33.0.0/16") {
		t.Fatalf("LookupPrefix = %v, %d, %v", p, v, ok)
	}
}

func TestTrieParent(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MakePrefix(0, 0), 0)
	tr.Insert(MustParsePrefix("22.33.0.0/16"), 3)
	tr.Insert(MustParsePrefix("22.33.44.0/24"), 5)
	p, v, ok := tr.Parent(MustParsePrefix("22.33.44.0/24"))
	if !ok || v != 3 || p != MustParsePrefix("22.33.0.0/16") {
		t.Fatalf("Parent(/24) = %v, %d, %v", p, v, ok)
	}
	p, v, ok = tr.Parent(MustParsePrefix("22.33.0.0/16"))
	if !ok || v != 0 || p != MakePrefix(0, 0) {
		t.Fatalf("Parent(/16) = %v, %d, %v", p, v, ok)
	}
	_, _, ok = tr.Parent(MakePrefix(0, 0))
	if ok {
		t.Fatal("the default route has no parent")
	}
}

func TestTrieWalkOrder(t *testing.T) {
	var tr Trie[int]
	ps := []string{"10.0.0.0/8", "10.0.0.0/16", "9.0.0.0/8", "10.128.0.0/9", "0.0.0.0/0"}
	for i, s := range ps {
		tr.Insert(MustParsePrefix(s), i)
	}
	var got []Prefix
	tr.Walk(func(p Prefix, _ int) bool {
		got = append(got, p)
		return true
	})
	if len(got) != len(ps) {
		t.Fatalf("walk visited %d, want %d", len(got), len(ps))
	}
	sorted := make([]Prefix, len(got))
	copy(sorted, got)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })
	for i := range got {
		if got[i] != sorted[i] {
			t.Fatalf("walk order not sorted: %v", got)
		}
	}
}

func TestTrieWalkEarlyStop(t *testing.T) {
	var tr Trie[int]
	for i := 0; i < 10; i++ {
		tr.Insert(MakePrefix(MakeAddr(byte(i), 0, 0, 0), 8), i)
	}
	count := 0
	tr.Walk(func(Prefix, int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("walk visited %d after early stop, want 3", count)
	}
}

// TestTrieAgainstLinearScan cross-checks LPM against a brute-force reference
// on random tables and random probes.
func TestTrieAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tr Trie[int]
	type entry struct {
		p Prefix
		v int
	}
	var entries []entry
	for i := 0; i < 400; i++ {
		p := MakePrefix(Addr(rng.Uint32()), 8+rng.Intn(25))
		// Skip duplicates so the reference stays unambiguous.
		dup := false
		for _, e := range entries {
			if e.p == p {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		entries = append(entries, entry{p, i})
		tr.Insert(p, i)
	}
	if tr.Len() != len(entries) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(entries))
	}
	lpmRef := func(a Addr) (int, bool) {
		best := -1
		bestLen := -1
		for _, e := range entries {
			if e.p.Contains(a) && e.p.Bits() > bestLen {
				best, bestLen = e.v, e.p.Bits()
			}
		}
		return best, bestLen >= 0
	}
	for i := 0; i < 5000; i++ {
		var a Addr
		if i%2 == 0 && len(entries) > 0 {
			// Half the probes land inside known prefixes.
			e := entries[rng.Intn(len(entries))]
			a = e.p.Nth(uint64(rng.Uint32()))
		} else {
			a = Addr(rng.Uint32())
		}
		want, wantOK := lpmRef(a)
		got, gotOK := tr.Lookup(a)
		if gotOK != wantOK || (gotOK && got != want) {
			t.Fatalf("Lookup(%v) = %d,%v; want %d,%v", a, got, gotOK, want, wantOK)
		}
	}
}

func TestTriePrefixes(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(MustParsePrefix("20.0.0.0/8"), 2)
	ps := tr.Prefixes()
	if len(ps) != 2 {
		t.Fatalf("Prefixes len = %d", len(ps))
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	var tr Trie[int]
	for i := 0; i < 400000; i++ {
		tr.Insert(MakePrefix(Addr(rng.Uint32()), 8+rng.Intn(17)), i)
	}
	probes := make([]Addr, 1024)
	for i := range probes {
		probes[i] = Addr(rng.Uint32())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(probes[i&1023])
	}
}

func BenchmarkTrieInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	prefixes := make([]Prefix, 4096)
	for i := range prefixes {
		prefixes[i] = MakePrefix(Addr(rng.Uint32()), 8+rng.Intn(17))
	}
	b.ResetTimer()
	var tr Trie[int]
	for i := 0; i < b.N; i++ {
		tr.Insert(prefixes[i&4095], i)
	}
}

func TestTrieGrowPreservesEntries(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("22.33.44.0/24"), 5)
	tr.Grow(100)
	if v, ok := tr.Lookup(MustParseAddr("22.33.44.55")); !ok || v != 5 {
		t.Fatalf("entry lost across Grow: %d, %v", v, ok)
	}
	tr.Insert(MustParsePrefix("22.33.0.0/16"), 3)
	if v, _ := tr.Lookup(MustParseAddr("22.33.88.55")); v != 3 {
		t.Fatalf("post-Grow insert broken: %d", v)
	}
}
