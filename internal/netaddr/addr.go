// Package netaddr provides compact IPv4 address and prefix value types and a
// binary radix trie supporting longest-prefix-match lookup.
//
// The types here are the substrate for every forwarding-table computation in
// the repository: a router's FIB maps Prefix -> port, and the displacement
// methodology of the paper (§3.1) reduces to comparing the LPM results for a
// mobility event's old and new addresses.
package netaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address stored as a big-endian uint32. The zero value is
// 0.0.0.0.
type Addr uint32

// MakeAddr assembles an Addr from its four dotted-quad octets.
func MakeAddr(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses a dotted-quad IPv4 address such as "22.33.44.55".
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netaddr: %q is not a dotted-quad IPv4 address", s)
	}
	var v uint32
	for _, p := range parts {
		if p == "" || len(p) > 3 {
			return 0, fmt.Errorf("netaddr: bad octet %q in %q", p, s)
		}
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("netaddr: bad octet %q in %q", p, s)
		}
		v = v<<8 | uint32(n)
	}
	return Addr(v), nil
}

// MustParseAddr is ParseAddr that panics on error; for tests and literals.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Octets returns the four dotted-quad octets of a.
func (a Addr) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// String formats a in dotted-quad notation.
func (a Addr) String() string {
	o1, o2, o3, o4 := a.Octets()
	return fmt.Sprintf("%d.%d.%d.%d", o1, o2, o3, o4)
}

// Bit reports bit i of a, where bit 0 is the most significant bit. It panics
// if i is outside [0, 31].
func (a Addr) Bit(i int) byte {
	if i < 0 || i > 31 {
		panic("netaddr: bit index out of range")
	}
	return byte(uint32(a) >> (31 - i) & 1)
}

// Prefix is an IPv4 CIDR prefix: an address and a mask length in [0, 32].
// Bits of Addr below the mask are kept canonical (zeroed) by the
// constructors.
type Prefix struct {
	addr Addr
	bits uint8
}

// MakePrefix constructs the canonical prefix addr/bits, zeroing host bits.
// It panics if bits is outside [0, 32].
func MakePrefix(addr Addr, bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic("netaddr: prefix length out of range")
	}
	return Prefix{addr: addr & mask(bits), bits: uint8(bits)}
}

// ParsePrefix parses CIDR notation such as "22.33.44.0/24". A bare address is
// treated as a /32.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		a, err := ParseAddr(s)
		if err != nil {
			return Prefix{}, err
		}
		return MakePrefix(a, 32), nil
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: bad prefix length in %q", s)
	}
	return MakePrefix(a, bits), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func mask(bits int) Addr {
	if bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - bits))
}

// Addr returns the canonical (host-bits-zero) network address of p.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the mask length of p.
func (p Prefix) Bits() int { return int(p.bits) }

// Contains reports whether a lies inside p.
func (p Prefix) Contains(a Addr) bool {
	return a&mask(int(p.bits)) == p.addr
}

// ContainsPrefix reports whether q is fully contained in (or equal to) p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.bits >= p.bits && q.addr&mask(int(p.bits)) == p.addr
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

// String formats p in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.addr, p.bits)
}

// First returns the lowest address in p (the network address).
func (p Prefix) First() Addr { return p.addr }

// Last returns the highest address in p (the broadcast address for IPv4
// subnets; we treat it as an ordinary address).
func (p Prefix) Last() Addr {
	return p.addr | ^mask(int(p.bits))
}

// NumAddrs returns the number of addresses covered by p as a uint64 (so a /0
// does not overflow).
func (p Prefix) NumAddrs() uint64 {
	return uint64(1) << (32 - p.bits)
}

// Nth returns the i-th address of p, wrapping around within the prefix. This
// gives generators a cheap way to pick deterministic host addresses.
func (p Prefix) Nth(i uint64) Addr {
	return p.addr + Addr(i%p.NumAddrs())
}

// Compare orders prefixes first by network address, then by length (shorter
// first). It returns -1, 0, or +1.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.addr < q.addr:
		return -1
	case p.addr > q.addr:
		return 1
	case p.bits < q.bits:
		return -1
	case p.bits > q.bits:
		return 1
	}
	return 0
}
