package netaddr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", Addr(0xFFFFFFFF), true},
		{"22.33.44.55", MakeAddr(22, 33, 44, 55), true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"1.2.3.256", 0, false},
		{"1.2.3.-1", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"1..2.3", 0, false},
		{"1.2.3.1234", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrBit(t *testing.T) {
	a := MustParseAddr("128.0.0.1")
	if a.Bit(0) != 1 {
		t.Errorf("Bit(0) = %d, want 1", a.Bit(0))
	}
	if a.Bit(1) != 0 {
		t.Errorf("Bit(1) = %d, want 0", a.Bit(1))
	}
	if a.Bit(31) != 1 {
		t.Errorf("Bit(31) = %d, want 1", a.Bit(31))
	}
}

func TestAddrBitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bit(32) did not panic")
		}
	}()
	_ = Addr(0).Bit(32)
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("22.33.44.0/24")
	if p.Bits() != 24 {
		t.Errorf("Bits = %d, want 24", p.Bits())
	}
	if p.Addr() != MakeAddr(22, 33, 44, 0) {
		t.Errorf("Addr = %v", p.Addr())
	}
	// Host bits must be canonicalized away.
	q := MustParsePrefix("22.33.44.55/24")
	if q != p {
		t.Errorf("canonicalization failed: %v != %v", q, p)
	}
	// Bare address becomes /32.
	r := MustParsePrefix("1.2.3.4")
	if r.Bits() != 32 {
		t.Errorf("bare address Bits = %d, want 32", r.Bits())
	}
	for _, bad := range []string{"1.2.3.0/33", "1.2.3.0/-1", "1.2.3.0/x", "x/24"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("22.33.44.0/24")
	if !p.Contains(MustParseAddr("22.33.44.55")) {
		t.Error("should contain 22.33.44.55")
	}
	if p.Contains(MustParseAddr("22.33.45.0")) {
		t.Error("should not contain 22.33.45.0")
	}
	all := MakePrefix(0, 0)
	if !all.Contains(MustParseAddr("200.1.2.3")) {
		t.Error("/0 should contain everything")
	}
}

func TestPrefixContainsPrefix(t *testing.T) {
	p16 := MustParsePrefix("22.33.0.0/16")
	p24 := MustParsePrefix("22.33.44.0/24")
	other := MustParsePrefix("22.34.0.0/16")
	if !p16.ContainsPrefix(p24) {
		t.Error("/16 should contain /24")
	}
	if p24.ContainsPrefix(p16) {
		t.Error("/24 should not contain /16")
	}
	if !p16.ContainsPrefix(p16) {
		t.Error("prefix should contain itself")
	}
	if p16.ContainsPrefix(other) || other.ContainsPrefix(p16) {
		t.Error("siblings should not contain each other")
	}
	if !p16.Overlaps(p24) || p16.Overlaps(other) {
		t.Error("Overlaps wrong")
	}
}

func TestPrefixFirstLastNum(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/30")
	if p.First() != MustParseAddr("10.0.0.0") {
		t.Errorf("First = %v", p.First())
	}
	if p.Last() != MustParseAddr("10.0.0.3") {
		t.Errorf("Last = %v", p.Last())
	}
	if p.NumAddrs() != 4 {
		t.Errorf("NumAddrs = %d", p.NumAddrs())
	}
	if MakePrefix(0, 0).NumAddrs() != 1<<32 {
		t.Errorf("/0 NumAddrs = %d", MakePrefix(0, 0).NumAddrs())
	}
	if p.Nth(5) != MustParseAddr("10.0.0.1") {
		t.Errorf("Nth wraps wrong: %v", p.Nth(5))
	}
}

func TestPrefixCompare(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.0.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("shorter prefix should sort first at same address")
	}
	if a.Compare(c) != -1 || c.Compare(a) != 1 {
		t.Error("lower address should sort first")
	}
	if a.Compare(a) != 0 {
		t.Error("self-compare should be 0")
	}
}

func TestPrefixStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := MakePrefix(Addr(rng.Uint32()), rng.Intn(33))
		back, err := ParsePrefix(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip failed for %v: %v %v", p, back, err)
		}
	}
}
