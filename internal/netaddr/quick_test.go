package netaddr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// prefixList generates random prefix sets biased toward shared high bits so
// ancestor/descendant structure actually occurs.
type prefixList []Prefix

// Generate implements quick.Generator.
func (prefixList) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(size + 1)
	out := make(prefixList, n)
	for i := range out {
		// Cluster addresses into a few /8s so longest-prefix chains form.
		addr := Addr(uint32(rng.Intn(4))<<24 | rng.Uint32()&0x00FFFFFF)
		out[i] = MakePrefix(addr, 4+rng.Intn(29))
	}
	return reflect.ValueOf(out)
}

// Property: after any insert sequence, the trie agrees with a brute-force
// model on Len, Get, and longest-prefix lookups; removal restores the
// shadowed ancestor.
func TestTrieQuickModel(t *testing.T) {
	f := func(ps prefixList) bool {
		var tr Trie[int]
		model := map[Prefix]int{}
		for i, p := range ps {
			tr.Insert(p, i)
			model[p] = i
		}
		if tr.Len() != len(model) {
			return false
		}
		lpm := func(a Addr) (int, bool) {
			best, bestLen, ok := 0, -1, false
			for p, v := range model {
				if p.Contains(a) && p.Bits() > bestLen {
					best, bestLen, ok = v, p.Bits(), true
				}
			}
			return best, ok
		}
		rng := rand.New(rand.NewSource(int64(len(ps) + 1)))
		for probe := 0; probe < 30; probe++ {
			var a Addr
			if len(ps) > 0 && probe%2 == 0 {
				a = ps[rng.Intn(len(ps))].Nth(uint64(rng.Uint32()))
			} else {
				a = Addr(rng.Uint32())
			}
			wantV, wantOK := lpm(a)
			gotV, gotOK := tr.Lookup(a)
			if wantOK != gotOK || (wantOK && wantV != gotV) {
				return false
			}
		}
		// Remove a random present prefix: lookups must fall back to the
		// model without it.
		if len(model) > 0 {
			var victim Prefix
			for p := range model {
				victim = p
				break
			}
			tr.Remove(victim)
			delete(model, victim)
			probeAddr := victim.Nth(3)
			wantV, wantOK := lpm(probeAddr)
			gotV, gotOK := tr.Lookup(probeAddr)
			if wantOK != gotOK || (wantOK && wantV != gotV) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: containment laws. ContainsPrefix is reflexive and transitive;
// p.Contains(a) iff p.ContainsPrefix(a/32); Overlaps is symmetric.
func TestPrefixContainmentLaws(t *testing.T) {
	f := func(rawA, rawB, rawC uint32, la, lb, lc uint8) bool {
		a := MakePrefix(Addr(rawA), int(la%33))
		b := MakePrefix(Addr(rawB), int(lb%33))
		c := MakePrefix(Addr(rawC), int(lc%33))
		if !a.ContainsPrefix(a) {
			return false
		}
		if a.ContainsPrefix(b) && b.ContainsPrefix(c) && !a.ContainsPrefix(c) {
			return false
		}
		if a.Overlaps(b) != b.Overlaps(a) {
			return false
		}
		addr := Addr(rawB)
		if a.Contains(addr) != a.ContainsPrefix(MakePrefix(addr, 32)) {
			return false
		}
		// First/Last bracket every Nth address.
		x := a.Nth(uint64(rawC))
		if x < a.First() || x > a.Last() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is a total order consistent with equality.
func TestPrefixCompareLaws(t *testing.T) {
	f := func(ra, rb uint32, la, lb uint8) bool {
		a := MakePrefix(Addr(ra), int(la%33))
		b := MakePrefix(Addr(rb), int(lb%33))
		switch a.Compare(b) {
		case 0:
			return a == b && b.Compare(a) == 0
		case -1:
			return b.Compare(a) == 1
		case 1:
			return b.Compare(a) == -1
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
