package netaddr

import "testing"

// FuzzLPMLookup drives the radix trie with an arbitrary insert/remove
// script and cross-checks every lookup against a naive linear scan over a
// reference map: the trie must agree with the definition of longest-prefix
// match on every script the fuzzer invents.
//
// Script encoding: each 5-byte chunk is one operation — four address
// octets, then a control byte whose value mod 33 is the prefix length and
// whose high bit selects remove instead of insert.
func FuzzLPMLookup(f *testing.F) {
	// One default route, nested /8 /24 /32 around one address, a removal.
	f.Add([]byte{
		0, 0, 0, 0, 0,
		22, 0, 0, 0, 8,
		22, 33, 44, 0, 24,
		22, 33, 44, 55, 32,
		22, 33, 44, 0, 24 | 0x80,
	})
	// Sibling /25s and a query-heavy tail.
	f.Add([]byte{
		10, 0, 0, 0, 25,
		10, 0, 0, 128, 25,
		10, 0, 0, 0, 8,
		10, 0, 0, 129, 32,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tr Trie[int]
		ref := map[Prefix]int{}
		var queries []Addr
		for i := 0; i+5 <= len(data); i += 5 {
			a := MakeAddr(data[i], data[i+1], data[i+2], data[i+3])
			ctl := data[i+4]
			p := MakePrefix(a, int(ctl%33))
			queries = append(queries, a)
			if ctl&0x80 != 0 {
				_, present := ref[p]
				if removed := tr.Remove(p); removed != present {
					t.Fatalf("Remove(%v) = %v, reference had it: %v", p, removed, present)
				}
				delete(ref, p)
			} else {
				_, present := ref[p]
				if fresh := tr.Insert(p, i); fresh == present {
					t.Fatalf("Insert(%v) fresh = %v, reference had it: %v", p, fresh, present)
				}
				ref[p] = i
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("Len() = %d, reference holds %d prefixes", tr.Len(), len(ref))
		}
		for p, v := range ref {
			if got, ok := tr.Get(p); !ok || got != v {
				t.Fatalf("Get(%v) = %d, %v; reference holds %d", p, got, ok, v)
			}
		}
		queries = append(queries, 0, 1<<31, ^Addr(0))
		for _, q := range queries {
			wantP, wantV, wantOK := naiveLPM(ref, q)
			gotP, gotV, gotOK := tr.LookupPrefix(q)
			if gotOK != wantOK || gotP != wantP || gotV != wantV {
				t.Fatalf("LookupPrefix(%v) = %v, %d, %v; naive scan says %v, %d, %v",
					q, gotP, gotV, gotOK, wantP, wantV, wantOK)
			}
			v, ok := tr.Lookup(q)
			if ok != wantOK || v != wantV {
				t.Fatalf("Lookup(%v) = %d, %v; naive scan says %d, %v", q, v, ok, wantV, wantOK)
			}
		}
	})
}

// naiveLPM is the specification: the longest (most-specific) reference
// prefix containing a. At most one prefix of each length can contain a, so
// map iteration order cannot affect the result.
func naiveLPM(ref map[Prefix]int, a Addr) (Prefix, int, bool) {
	var bestP Prefix
	bestV := 0
	found := false
	for p, v := range ref {
		if p.Contains(a) && (!found || p.Bits() > bestP.Bits()) {
			bestP, bestV, found = p, v, true
		}
	}
	return bestP, bestV, found
}
