package netaddr_test

import (
	"fmt"

	"locind/internal/netaddr"
)

// The Figure 2 scenario: a router whose /24 and /16 entries point to
// different ports, and a device moving between them.
func ExampleTrie_Lookup() {
	var fib netaddr.Trie[int]
	fib.Insert(netaddr.MustParsePrefix("22.33.44.0/24"), 5)
	fib.Insert(netaddr.MustParsePrefix("22.33.0.0/16"), 3)

	before, _ := fib.Lookup(netaddr.MustParseAddr("22.33.44.55"))
	after, _ := fib.Lookup(netaddr.MustParseAddr("22.33.88.55"))
	fmt.Println(before, after)
	// Output: 5 3
}

func ExamplePrefix_Contains() {
	p := netaddr.MustParsePrefix("10.1.0.0/16")
	fmt.Println(p.Contains(netaddr.MustParseAddr("10.1.200.7")))
	fmt.Println(p.Contains(netaddr.MustParseAddr("10.2.0.1")))
	// Output:
	// true
	// false
}
