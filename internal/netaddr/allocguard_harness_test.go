package netaddr

import "testing"

// allocGuardHarness maps each //lint:zeroalloc symbol in this package to
// its measurement, consumed by the generated TestAllocGuard. Lookup sits
// on the innermost loop of every strategy replay and must be absolutely
// allocation-free against a populated trie.
func allocGuardHarness() map[string]func(t *testing.T) float64 {
	return map[string]func(t *testing.T) float64{
		"Trie.Lookup": func(t *testing.T) float64 {
			var tr Trie[int]
			tr.Grow(3)
			tr.Insert(MustParsePrefix("22.33.44.0/24"), 5)
			tr.Insert(MustParsePrefix("22.33.0.0/16"), 3)
			tr.Insert(MustParsePrefix("10.0.0.0/8"), 9)
			addrs := []Addr{
				MustParseAddr("22.33.44.55"),
				MustParseAddr("22.33.88.55"),
				MustParseAddr("10.1.2.3"),
				MustParseAddr("200.1.1.1"),
			}
			return testing.AllocsPerRun(100, func() {
				for _, a := range addrs {
					tr.Lookup(a)
				}
			})
		},
	}
}
