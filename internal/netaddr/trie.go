package netaddr

// Trie is a binary radix trie mapping IPv4 prefixes to values of type V. It
// supports exact insertion/removal, longest-prefix-match lookup, and ordered
// walks. The zero value is an empty trie ready for use.
//
// The implementation is a straightforward path-per-bit binary trie: lookups
// cost at most 32 node visits, which is plenty for FIBs with a few hundred
// thousand entries and keeps the code auditable. Nodes are allocated from a
// flat slice to keep the structure compact and GC-friendly.
type Trie[V any] struct {
	nodes []trieNode[V]
	size  int
}

type trieNode[V any] struct {
	child [2]int32 // index into nodes, 0 = none (node 0 is the root)
	val   V
	set   bool
}

func (t *Trie[V]) root() int32 {
	if len(t.nodes) == 0 {
		t.nodes = append(t.nodes, trieNode[V]{})
	}
	return 0
}

// Len returns the number of prefixes stored in the trie.
func (t *Trie[V]) Len() int { return t.size }

// Grow pre-sizes the node arena for roughly n additional prefixes, so bulk
// builders (FIB derivation inserts every prefix of a RIB in one pass) avoid
// the append-doubling reallocations of growing the arena a node at a time.
// The estimate charges each prefix its full bit depth minus the shared stem;
// it only ever reserves capacity, never shrinks.
func (t *Trie[V]) Grow(n int) {
	if n <= 0 {
		return
	}
	t.root()
	// Prefixes in one table share long stems; 24 nodes per prefix is a
	// generous estimate that still stays within small multiples of the
	// final size for realistic FIBs.
	need := len(t.nodes) + n*24
	if cap(t.nodes) >= need {
		return
	}
	ns := make([]trieNode[V], len(t.nodes), need)
	copy(ns, t.nodes)
	t.nodes = ns
}

// Insert associates v with prefix p, replacing any existing value. It reports
// whether the prefix was newly inserted (false means replaced).
func (t *Trie[V]) Insert(p Prefix, v V) bool {
	n := t.root()
	a := p.Addr()
	for i := 0; i < p.Bits(); i++ {
		b := a.Bit(i)
		if t.nodes[n].child[b] == 0 {
			t.nodes = append(t.nodes, trieNode[V]{})
			t.nodes[n].child[b] = int32(len(t.nodes) - 1)
		}
		n = t.nodes[n].child[b]
	}
	fresh := !t.nodes[n].set
	t.nodes[n].val = v
	t.nodes[n].set = true
	if fresh {
		t.size++
	}
	return fresh
}

// Get returns the value stored for exactly prefix p.
func (t *Trie[V]) Get(p Prefix) (V, bool) {
	var zero V
	if len(t.nodes) == 0 {
		return zero, false
	}
	n := int32(0)
	a := p.Addr()
	for i := 0; i < p.Bits(); i++ {
		n = t.nodes[n].child[a.Bit(i)]
		if n == 0 {
			return zero, false
		}
	}
	if !t.nodes[n].set {
		return zero, false
	}
	return t.nodes[n].val, true
}

// Remove deletes the exact prefix p, reporting whether it was present. Nodes
// are not physically reclaimed (the trie is append-only internally), which is
// fine for our workloads where removals are rare.
func (t *Trie[V]) Remove(p Prefix) bool {
	if len(t.nodes) == 0 {
		return false
	}
	n := int32(0)
	a := p.Addr()
	for i := 0; i < p.Bits(); i++ {
		n = t.nodes[n].child[a.Bit(i)]
		if n == 0 {
			return false
		}
	}
	if !t.nodes[n].set {
		return false
	}
	var zero V
	t.nodes[n].set = false
	t.nodes[n].val = zero
	t.size--
	return true
}

// Lookup performs longest-prefix matching for address a, returning the value
// of the most specific covering prefix.
//
//lint:zeroalloc per probe; sits on the innermost loop of every strategy replay
func (t *Trie[V]) Lookup(a Addr) (V, bool) {
	var best V
	found := false
	if len(t.nodes) == 0 {
		return best, false
	}
	n := int32(0)
	if t.nodes[0].set {
		best, found = t.nodes[0].val, true
	}
	for i := 0; i < 32; i++ {
		n = t.nodes[n].child[a.Bit(i)]
		if n == 0 {
			break
		}
		if t.nodes[n].set {
			best, found = t.nodes[n].val, true
		}
	}
	return best, found
}

// LookupPrefix is like Lookup but also returns the matching prefix itself.
func (t *Trie[V]) LookupPrefix(a Addr) (Prefix, V, bool) {
	var bestV V
	var bestP Prefix
	found := false
	if len(t.nodes) == 0 {
		return bestP, bestV, false
	}
	n := int32(0)
	if t.nodes[0].set {
		bestP, bestV, found = MakePrefix(0, 0), t.nodes[0].val, true
	}
	for i := 0; i < 32; i++ {
		n = t.nodes[n].child[a.Bit(i)]
		if n == 0 {
			break
		}
		if t.nodes[n].set {
			bestP, bestV, found = MakePrefix(a, i+1), t.nodes[n].val, true
		}
	}
	return bestP, bestV, found
}

// Parent returns the value of the longest strict ancestor prefix of p that is
// present in the trie, i.e. what an address in p would match if p itself were
// removed.
func (t *Trie[V]) Parent(p Prefix) (Prefix, V, bool) {
	var bestV V
	var bestP Prefix
	found := false
	if len(t.nodes) == 0 {
		return bestP, bestV, false
	}
	n := int32(0)
	if t.nodes[0].set && p.Bits() > 0 {
		bestP, bestV, found = MakePrefix(0, 0), t.nodes[0].val, true
	}
	a := p.Addr()
	for i := 0; i < p.Bits()-1; i++ {
		n = t.nodes[n].child[a.Bit(i)]
		if n == 0 {
			break
		}
		if t.nodes[n].set {
			bestP, bestV, found = MakePrefix(a, i+1), t.nodes[n].val, true
		}
	}
	return bestP, bestV, found
}

// Walk visits every stored prefix in lexicographic (address, then length)
// trie order. Returning false from fn stops the walk.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	if len(t.nodes) == 0 {
		return
	}
	t.walk(0, 0, 0, fn)
}

func (t *Trie[V]) walk(n int32, addr Addr, depth int, fn func(Prefix, V) bool) bool {
	nd := &t.nodes[n]
	if nd.set {
		if !fn(MakePrefix(addr, depth), nd.val) {
			return false
		}
	}
	if depth == 32 {
		return true
	}
	if c := nd.child[0]; c != 0 {
		if !t.walk(c, addr, depth+1, fn) {
			return false
		}
	}
	if c := nd.child[1]; c != 0 {
		if !t.walk(c, addr|Addr(1)<<(31-depth), depth+1, fn) {
			return false
		}
	}
	return true
}

// Prefixes returns all stored prefixes in walk order.
func (t *Trie[V]) Prefixes() []Prefix {
	out := make([]Prefix, 0, t.size)
	t.Walk(func(p Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	return out
}
