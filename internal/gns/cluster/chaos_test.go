package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"locind/internal/faultnet"
	"locind/internal/gns"
	"locind/internal/netaddr"
	"locind/internal/obs"
	"locind/internal/reliable"
)

// chaosOutcome is everything a chaos run produces that a replay must
// reproduce exactly.
type chaosOutcome struct {
	stateHash   uint64
	stateText   string
	bindingHash uint64
	bindingText string
	attempts    int64
	staleServed int64
	quorumFails int
	netStats    faultnet.Stats
}

const (
	chaosShards   = 3
	chaosReplicas = 3
	chaosNames    = 120
	chaosSeed     = 99
)

func chaosName(i int) string { return fmt.Sprintf("chaos-%d.test", i) }

func chaosAddr(i, gen int) netaddr.Addr {
	return netaddr.MakeAddr(10, byte(gen), byte(i>>8), byte(i))
}

// runChaosScenario drives the acceptance scenario: seed everything, kill
// one full shard (all R replicas) plus one replica of another shard under
// seeded per-packet faults, keep serving, heal, repair, re-commit what the
// outage refused, and digest the converged state.
func runChaosScenario(t *testing.T, seed int64) chaosOutcome {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	env := faultnet.NewEnv(seed)
	cfg := Config{
		Shards:   chaosShards,
		Replicas: chaosReplicas,
		Faults:   faultnet.PacketFaults{Drop: 0.01},
	}
	c, err := Start(ctx, cfg, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cl := NewClient(c.Addrs(), ClientConfig{Origin: 1, BreakerCooldown: 4})
	// No per-leg retries: a dropped datagram fails the leg over to the next
	// replica instead of burning a second timeout, and the driver-level
	// mustUpdate loop re-commits anything that misses quorum.
	cl.Timeout = 150 * time.Millisecond
	cl.HedgeDelay = 60 * time.Millisecond
	cl.Retries = 0
	cl.Backoff = reliable.Backoff{}

	mustUpdate := func(i, gen int) {
		t.Helper()
		name := chaosName(i)
		for try := 0; ; try++ {
			if _, err := cl.Update(ctx, name, []netaddr.Addr{chaosAddr(i, gen)}); err == nil {
				return
			} else if try >= 20 {
				t.Fatalf("update %q never committed: %v", name, err)
			}
		}
	}

	// Phase A: seed every name.
	for i := 0; i < chaosNames; i++ {
		mustUpdate(i, 1)
	}

	// Chaos window: one full shard dies (all R replicas — the acceptance
	// fault), and one replica of another shard dies too, so anti-entropy
	// has a diverged-but-quorate shard to reconcile as well.
	const deadShard = 1
	c.KillShard(deadShard)
	c.KillReplica((deadShard+1)%chaosShards, 0)

	quorumFails := 0
	var failed []int
	for i := 0; i < chaosNames; i += 7 {
		_, err := cl.Update(ctx, chaosName(i), []netaddr.Addr{chaosAddr(i, 2)})
		switch {
		case err == nil:
			if ShardOf(chaosName(i), chaosShards) == deadShard {
				t.Fatalf("update %d committed on the dead shard", i)
			}
		case errors.Is(err, gns.ErrNoQuorum):
			quorumFails++
			failed = append(failed, i)
		default:
			t.Fatalf("update %d: unexpected error %v", i, err)
		}
	}
	if quorumFails == 0 {
		t.Fatal("no update landed on the dead shard — scenario is not exercising quorum loss")
	}

	// Degraded serving: every name resolves, fresh or stale-flagged. A name
	// on the dead shard can never be fresh (no replica is reachable), so it
	// must come back stale; a name on a quorate shard is usually fresh but
	// may stale-serve too when per-packet drops kill every leg of one
	// lookup — still within the fresh-or-stale-flagged contract.
	for i := 0; i < chaosNames; i++ {
		name := chaosName(i)
		rec, err := cl.Lookup(ctx, name)
		if err != nil {
			t.Fatalf("lookup %q during outage: %v", name, err)
		}
		if !rec.Stale && ShardOf(name, chaosShards) == deadShard {
			t.Fatalf("lookup %q fresh but its whole shard is dead", name)
		}
		if len(rec.Addrs) != 1 {
			t.Fatalf("lookup %q: %v", name, rec.Addrs)
		}
	}
	if cl.StaleServed() == 0 {
		t.Fatal("whole-shard outage served no stale bindings — degraded mode never engaged")
	}

	// Heal, reconcile, and re-commit what the outage refused.
	c.Heal()
	if Repair(c, nil) == 0 {
		t.Fatal("post-heal repair found nothing — the outage should have diverged replicas")
	}
	for _, i := range failed {
		mustUpdate(i, 2)
	}
	// The re-committed writes reached a quorum, not necessarily every
	// replica (per-packet drops); one more pass settles the stragglers.
	Repair(c, nil)

	// Converged serving: everything fresh.
	for i := 0; i < chaosNames; i++ {
		rec, err := cl.Lookup(ctx, chaosName(i))
		if err != nil || rec.Stale {
			t.Fatalf("post-heal lookup %q: %+v err=%v", chaosName(i), rec, err)
		}
	}

	out := chaosOutcome{
		attempts:    cl.Attempts(),
		staleServed: cl.StaleServed(),
		quorumFails: quorumFails,
		netStats:    env.Stats(),
	}
	out.stateHash, out.stateText = c.StateDigest()
	out.bindingHash, out.bindingText = c.BindingDigest()
	return out
}

// runFaultFree applies the scenario's intended final state to a pristine
// cluster: no faults, no partition, no retries needed.
func runFaultFree(t *testing.T) chaosOutcome {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, err := Start(ctx, Config{Shards: chaosShards, Replicas: chaosReplicas}, faultnet.NewEnv(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl := NewClient(c.Addrs(), ClientConfig{Origin: 1})
	cl.Timeout = time.Second
	for i := 0; i < chaosNames; i++ {
		if _, err := cl.Update(ctx, chaosName(i), []netaddr.Addr{chaosAddr(i, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < chaosNames; i += 7 {
		if _, err := cl.Update(ctx, chaosName(i), []netaddr.Addr{chaosAddr(i, 2)}); err != nil {
			t.Fatal(err)
		}
	}
	var out chaosOutcome
	out.stateHash, out.stateText = c.StateDigest()
	out.bindingHash, out.bindingText = c.BindingDigest()
	return out
}

// TestChaosAcceptanceWholeShardOutage is the PR's acceptance test: a
// seeded faultnet partition kills one full shard (all R replicas); the
// cluster client serves every name fresh or stale-flagged throughout; and
// after heal plus anti-entropy the cluster converges byte-identically to
// the fault-free reference state.
func TestChaosAcceptanceWholeShardOutage(t *testing.T) {
	chaos := runChaosScenario(t, chaosSeed)
	ref := runFaultFree(t)
	if chaos.bindingHash != ref.bindingHash || chaos.bindingText != ref.bindingText {
		t.Fatalf("healed cluster did not converge to the fault-free state:\n--- chaos ---\n%s\n--- fault-free ---\n%s",
			chaos.bindingText, ref.bindingText)
	}
}

// TestChaosSameSeedReplays re-runs the whole scenario under the same seed
// and demands identical behaviour: same network attempts, same stale
// serves, same quorum failures, same injected-fault tallies, and a
// byte-identical final state digest, version vectors included.
func TestChaosSameSeedReplays(t *testing.T) {
	if testing.Short() {
		t.Skip("replay doubles the chaos run")
	}
	a := runChaosScenario(t, chaosSeed)
	b := runChaosScenario(t, chaosSeed)
	if a.stateHash != b.stateHash || a.stateText != b.stateText {
		t.Fatalf("state digests diverge across same-seed runs:\n--- run A ---\n%s\n--- run B ---\n%s", a.stateText, b.stateText)
	}
	if a.attempts != b.attempts {
		t.Fatalf("attempts diverge: %d vs %d", a.attempts, b.attempts)
	}
	if a.staleServed != b.staleServed {
		t.Fatalf("stale serves diverge: %d vs %d", a.staleServed, b.staleServed)
	}
	if a.quorumFails != b.quorumFails {
		t.Fatalf("quorum failures diverge: %d vs %d", a.quorumFails, b.quorumFails)
	}
	if a.netStats != b.netStats {
		t.Fatalf("fault stats diverge: %+v vs %+v", a.netStats, b.netStats)
	}
}

// TestHedgedLookupTraceTree asserts the causal-trace contract: one hedged
// lookup produces one trace tree — a single root span, every replica leg a
// child of that root, every network attempt a child of its leg.
func TestHedgedLookupTraceTree(t *testing.T) {
	c, cl, _ := startCluster(t, 1, 3, 11)
	ctx := context.Background()
	name := nameOn(t, 1, 0)
	if _, err := cl.Update(ctx, name, []netaddr.Addr{netaddr.MustParseAddr("10.0.0.9")}); err != nil {
		t.Fatal(err)
	}

	// Attach the tracer only now: the trace holds exactly one lookup.
	tracer := obs.NewTracer(1, 256)
	cl.Tracer = tracer
	primary := replicaOrder(name, 3)[0]
	c.KillReplica(0, primary)
	if _, err := cl.Lookup(ctx, name); err != nil {
		t.Fatal(err)
	}

	spans := tracer.Spans()
	var root *obs.SpanRecord
	legs := map[uint64]bool{}
	attempts := 0
	for i := range spans {
		s := spans[i]
		switch s.Name {
		case "gnsc-lookup":
			if root != nil {
				t.Fatalf("two roots in one lookup trace: %+v", spans)
			}
			root = &spans[i]
		case "replica":
			legs[s.ID] = true
		}
	}
	if root == nil {
		t.Fatalf("no root span: %+v", spans)
	}
	if root.Parent != 0 {
		t.Fatalf("root has a parent: %+v", root)
	}
	if len(legs) < 2 {
		t.Fatalf("hedged lookup produced %d replica legs, want >=2 (dead primary + failover)", len(legs))
	}
	for _, s := range spans {
		switch s.Name {
		case "replica":
			if s.Parent != root.ID {
				t.Fatalf("replica leg %x not parented on the lookup root: %+v", s.ID, s)
			}
			if s.Trace != root.Trace {
				t.Fatalf("replica leg %x in a different trace: %+v", s.ID, s)
			}
		case "attempt":
			attempts++
			if !legs[s.Parent] {
				t.Fatalf("attempt span %x not parented on a replica leg: %+v", s.ID, s)
			}
			if s.Trace != root.Trace {
				t.Fatalf("attempt span %x in a different trace: %+v", s.ID, s)
			}
		}
	}
	if attempts < 2 {
		t.Fatalf("trace shows %d attempts, want >=2", attempts)
	}
}
