package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"locind/internal/gns"
	"locind/internal/netaddr"
	"locind/internal/obs"
	"locind/internal/reliable"
)

// cachedRec is the client's per-name memory: the last committed record it
// wrote or fetched, with the version-vector history that proves it. It is
// both the read-your-writes floor and the last-known-good degraded answer.
type cachedRec struct {
	rec gns.Record
	vv  VV
}

// Client routes lookups and updates to the replicas owning each name.
//
// Placement: ShardOf picks the owning shard; within it, a per-name
// rendezvous ordering of the replicas gives every name a stable primary,
// spreading read load across the replica set with no shared state.
//
// Writes are quorum writes: a vput fans out to all R replicas of the
// owning shard and commits when a majority acknowledge; the committed
// record becomes the client's read-your-writes floor for that name.
//
// Reads are hedged and health-checked: the primary replica gets HedgeDelay
// to answer; then the next healthy replica is tried (a hedge), and so on
// through the replica set. A per-replica half-open circuit breaker
// (reliable.Breaker) turns repeated failures into instant skips, so a dead
// replica costs one timeout per cooldown window instead of one per lookup.
// An answer older than the floor is recognised as a lagging replica and
// passed over. When every replica is unreachable the client degrades to
// the last-known-good binding, flagged Record.Stale — resolution keeps
// working through a dead shard, just on old mappings.
type Client struct {
	// Timeout bounds each non-primary attempt (dial + round trip).
	Timeout time.Duration
	// HedgeDelay bounds the primary lookup attempt: how long the primary
	// may stay silent before the lookup hedges to the next replica. Zero
	// disables hedging (the primary gets the full Timeout).
	HedgeDelay time.Duration
	// Retries is how many extra attempts each replica leg makes before the
	// client fails over to the next replica.
	Retries int
	// Backoff schedules pauses between per-leg attempts.
	Backoff reliable.Backoff
	// Rand supplies backoff jitter; nil disables jitter.
	Rand *rand.Rand
	// Budget, when non-nil, caps retries across all calls on this client.
	Budget *reliable.Budget
	// Sleep overrides the inter-attempt wait (virtual clock hook).
	Sleep func(ctx context.Context, d time.Duration) error
	// Metrics, when non-nil, counts cluster-level activity.
	Metrics *ClientMetrics
	// RetryMetrics, when non-nil, counts the per-leg retry loops.
	RetryMetrics *reliable.Metrics
	// Tracer, when non-nil, roots one span per Lookup/Update; each replica
	// leg is a child span, each network attempt a grandchild, and the
	// server-side serve spans parent onto the leg via wire propagation —
	// one causal tree per hedged lookup.
	Tracer *obs.Tracer

	shards   [][]string
	origin   uint64
	breakers [][]*reliable.Breaker
	repMet   [][]*ReplicaMetrics // resolved by SetMetrics; nil rows no-op

	cache    reliable.Cache[string, cachedRec]
	attempts atomic.Int64
	stale    atomic.Int64

	// nameMu stripes the per-name read-modify-write update path: two
	// goroutines bumping the same name must serialise (or they would derive
	// identical version vectors and collapse under last-writer-wins), but
	// updates to distinct names have no ordering relationship and should
	// never queue behind one another's quorum round trips.
	nameMu [updateStripes]sync.Mutex
}

// updateStripes is the number of per-name update locks. Collisions are
// harmless (two names sharing a stripe serialise unnecessarily); 64 keeps
// the false-sharing odds negligible for the fan-outs the experiments run.
const updateStripes = 64

// nameLock returns the stripe lock serialising updates to name.
func (c *Client) nameLock(name string) *sync.Mutex {
	h := fnv.New64a()
	h.Write([]byte(name)) //lint:allow errflow fnv hash writes cannot fail
	return &c.nameMu[h.Sum64()%updateStripes]
}

// ClientConfig sizes a Client.
type ClientConfig struct {
	// Origin is this client's version-vector identity; concurrent writers
	// need distinct origins. Values must stay below 1<<32 (replica store
	// origins live above).
	Origin uint64
	// BreakerThreshold and BreakerCooldown configure every per-replica
	// circuit breaker (zero = reliable.Breaker defaults).
	BreakerThreshold int
	BreakerCooldown  int
	// CacheLimit bounds the last-known-good cache (0 = unbounded).
	CacheLimit int
}

// NewClient builds a client over the address grid addrs ([shard][replica],
// from Cluster.Addrs or operator config) with sane defaults: 500ms
// timeouts, 50ms hedge delay, 1 retry per leg.
func NewClient(addrs [][]string, cfg ClientConfig) *Client {
	c := &Client{
		Timeout:    500 * time.Millisecond,
		HedgeDelay: 50 * time.Millisecond,
		Retries:    1,
		Backoff:    reliable.Backoff{Base: 50 * time.Millisecond, Max: time.Second},
		shards:     addrs,
		origin:     cfg.Origin,
	}
	for si := range addrs {
		row := make([]*reliable.Breaker, len(addrs[0]))
		for ri := range row {
			si, ri := si, ri
			b := &reliable.Breaker{Threshold: cfg.BreakerThreshold, Cooldown: cfg.BreakerCooldown}
			b.OnTransition = func(from, to reliable.BreakerState) {
				m := c.Metrics.orNop()
				switch to {
				case reliable.BreakerOpen:
					m.BreakerOpens.Inc()
					c.replicaMetrics(si, ri).Opens.Inc()
				case reliable.BreakerHalfOpen:
					m.BreakerProbes.Inc()
				case reliable.BreakerClosed:
					m.BreakerCloses.Inc()
				}
			}
			row[ri] = b
		}
		c.breakers = append(c.breakers, row)
	}
	if cfg.CacheLimit > 0 {
		// The eviction counter handle is read through Metrics at flush
		// time via the cache's own counter; bind it lazily in SetMetrics
		// instead — here we only set the cap.
		c.cache.Bound(cfg.CacheLimit, nil)
	}
	return c
}

// SetMetrics attaches m (may be nil), re-binds the cache's eviction
// counter, and resolves the per-replica counter grid so the hot path never
// takes the registration lock.
func (c *Client) SetMetrics(m *ClientMetrics, cacheLimit int) {
	c.Metrics = m
	c.cache.Bound(cacheLimit, m.orNop().CacheEvictions)
	c.repMet = nil
	if m != nil {
		c.repMet = make([][]*ReplicaMetrics, len(c.shards))
		for si := range c.shards {
			row := make([]*ReplicaMetrics, len(c.shards[si]))
			for ri := range row {
				row[ri] = m.Replica(si, ri)
			}
			c.repMet[si] = row
		}
	}
}

// replicaMetrics returns the resolved per-replica counters for one grid
// cell, or no-op handles when metrics are unset.
func (c *Client) replicaMetrics(shard, replica int) *ReplicaMetrics {
	if c.repMet == nil {
		return noReplicaMetrics
	}
	return c.repMet[shard][replica]
}

// Attempts returns the total network attempts made — the determinism
// quantity chaos tests compare across same-seed runs.
func (c *Client) Attempts() int64 { return c.attempts.Load() }

// StaleServed returns how many lookups degraded to last-known-good.
func (c *Client) StaleServed() int64 { return c.stale.Load() }

// CacheEvictions returns how many cached bindings epoch flushes dropped.
func (c *Client) CacheEvictions() int64 { return c.cache.Evictions() }

// BreakerState exposes one replica's circuit state (introspection and
// tests).
func (c *Client) BreakerState(shard, replica int) reliable.BreakerState {
	return c.breakers[shard][replica].State()
}

// ResetBreakers force-closes every replica circuit. Demand-driven cooldown
// means an opened breaker re-probes only after BreakerCooldown rejected
// requests; when the operator knows the fault is fixed (a partition healed,
// a replica restarted) this skips straight to probing. The soak experiment
// calls it after healing its partition so the recovery it measures is
// convergence, not cooldown drain.
func (c *Client) ResetBreakers() {
	for _, row := range c.breakers {
		for _, br := range row {
			br.Reset()
		}
	}
}

// Shards returns the shard count of the routing grid.
func (c *Client) Shards() int { return len(c.shards) }

func majority(r int) int { return r/2 + 1 }

// replicaOrder returns the shard's replica indices in name's rendezvous
// preference order: every client computes the same stable primary for a
// name, and read load spreads across replicas name by name.
func replicaOrder(name string, replicas int) []int {
	type weight struct {
		idx int
		w   uint64
	}
	ws := make([]weight, replicas)
	for i := 0; i < replicas; i++ {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s#%d", name, i)
		ws[i] = weight{idx: i, w: h.Sum64()}
	}
	sort.Slice(ws, func(a, b int) bool {
		if ws[a].w != ws[b].w {
			return ws[a].w > ws[b].w
		}
		return ws[a].idx < ws[b].idx
	})
	out := make([]int, replicas)
	for i := range ws {
		out[i] = ws[i].idx
	}
	return out
}

// startSpan opens the operation's root span: nested under the span carried
// by ctx when there is one, else fresh on c.Tracer.
func (c *Client) startSpan(ctx context.Context, name string, labels ...string) *obs.Span {
	if parent := obs.FromContext(ctx); parent != nil {
		return parent.Child(name, labels...)
	}
	return c.Tracer.Start(name, labels...)
}

// exchange runs one replica leg: a child span, a bounded retry loop, and
// the shared gns.Exchange transport. timeout bounds each attempt.
func (c *Client) exchange(ctx context.Context, addr string, req gns.Request, parent *obs.Span, timeout time.Duration, shard, replica int) (gns.Response, error) {
	leg := parent.Child("replica", "shard", strconv.Itoa(shard), "r", strconv.Itoa(replica))
	defer leg.End()
	req.Trace = leg.Context().Encode()
	p := reliable.Policy{
		MaxAttempts: c.Retries + 1,
		PerAttempt:  timeout,
		Backoff:     c.Backoff,
		Rand:        c.Rand,
		Budget:      c.Budget,
		Sleep:       c.Sleep,
		Metrics:     c.RetryMetrics,
		TraceSpan:   leg,
	}
	resp, attempts, err := gns.Exchange(ctx, addr, req, p)
	c.attempts.Add(int64(attempts))
	c.replicaMetrics(shard, replica).Legs.Inc()
	return resp, err
}

// Update installs a binding for name with a quorum write to the owning
// shard: the client bumps its origin on the last history it knows for the
// name and fans the versioned record out to all R replicas, committing
// when a majority acknowledge. If every reachable replica reports a
// strictly newer history (this client's memory of the name was evicted or
// another writer moved it forward), the write is rebased onto the observed
// history and re-sent — a read-modify-write repair that makes bounded
// client memory safe. Concurrent writers converge by deterministic
// last-writer-wins on the version vectors. The committed version vector is
// returned.
func (c *Client) Update(ctx context.Context, name string, addrs []netaddr.Addr) (VV, error) {
	m := c.Metrics.orNop()
	m.Updates.Inc()
	shard := ShardOf(name, len(c.shards))
	span := c.startSpan(ctx, "gnsc-update", "name", name, "shard", strconv.Itoa(shard))
	defer span.End()

	// Serialise same-name bumps only: two goroutines updating one name must
	// not derive the same counter, so the stripe is deliberately held across
	// the quorum fan-out below — releasing it mid-write would let a
	// concurrent same-name update read the same cached history and mint a
	// duplicate version vector. Distinct names land on distinct stripes and
	// proceed in parallel.
	mu := c.nameLock(name)
	mu.Lock()
	defer mu.Unlock()

	base, _ := c.cache.Get(name)
	vv := base.vv.Bump(c.origin)
	req := gns.Request{Op: "vput", Name: name}
	for _, a := range addrs {
		req.Addrs = append(req.Addrs, a.String())
	}

	replicas := c.shards[shard]
	order := replicaOrder(name, len(replicas))
	var lastErr error
	staleExhausted := false
	for round := 0; round < 3; round++ {
		req.VV = vv.Encode()
		acks := 0
		rebase := vv
		stale := false
		for _, r := range order {
			br := c.breakers[shard][r]
			if !br.Allow() {
				m.BreakerRejects.Inc()
				c.replicaMetrics(shard, r).Rejects.Inc()
				continue
			}
			//lint:allow lockflow same-name updates must hold their stripe across the quorum write to keep version vectors unique
			resp, err := c.exchange(ctx, replicas[r], req, span, c.Timeout, shard, r)
			if err != nil {
				br.Failure()
				lastErr = err
				continue
			}
			br.Success()
			svv, perr := ParseVV(resp.VV)
			if perr != nil {
				lastErr = perr
				continue
			}
			if vv.Compare(svv) == Before {
				// The replica holds a strictly newer history our bump did
				// not extend: the write was refused as stale. Remember the
				// observed history to rebase onto.
				stale = true
				rebase = rebase.Merge(svv)
				continue
			}
			acks++
		}
		if acks >= majority(len(replicas)) {
			rec := gns.Record{Name: name, Addrs: append([]netaddr.Addr(nil), addrs...), Version: vv.Sum()}
			c.cache.Put(name, cachedRec{rec: rec, vv: vv})
			return vv, nil
		}
		if !stale {
			break // unreachable replicas, not version conflicts: rebasing cannot help
		}
		staleExhausted = true
		vv = rebase.Bump(c.origin)
	}
	m.QuorumFailures.Inc()
	if lastErr == nil {
		if staleExhausted {
			lastErr = fmt.Errorf("replica history kept superseding the write")
		} else {
			lastErr = fmt.Errorf("all replica circuits open")
		}
	}
	return nil, fmt.Errorf("%w: update %q on shard %d: %v", gns.ErrNoQuorum, name, shard, lastErr)
}

// Lookup resolves name against the owning shard's replicas in hedged,
// health-ordered sequence: the primary gets HedgeDelay to answer, then
// each further healthy replica is hedged in with the full Timeout; the
// first answer at or beyond the client's read-your-writes floor wins. When
// every reachable replica lags the floor, the client's own committed
// record answers (fresh — it was quorum-committed). When no replica is
// reachable at all, the last-known-good binding answers flagged
// Record.Stale; with nothing cached, the quorum error surfaces.
func (c *Client) Lookup(ctx context.Context, name string) (gns.Record, error) {
	m := c.Metrics.orNop()
	m.Lookups.Inc()
	shard := ShardOf(name, len(c.shards))
	span := c.startSpan(ctx, "gnsc-lookup", "name", name, "shard", strconv.Itoa(shard))
	defer span.End()

	cached, hasCached := c.cache.Get(name)
	replicas := c.shards[shard]
	req := gns.Request{Op: "vget", Name: name}
	var notFound, lastErr error
	legs, answered := 0, false
	for _, r := range replicaOrder(name, len(replicas)) {
		br := c.breakers[shard][r]
		if !br.Allow() {
			m.BreakerRejects.Inc()
			c.replicaMetrics(shard, r).Rejects.Inc()
			continue
		}
		timeout := c.Timeout
		if legs == 0 && c.HedgeDelay > 0 {
			timeout = c.HedgeDelay
		}
		if legs > 0 {
			m.Hedges.Inc()
		}
		legs++
		resp, err := c.exchange(ctx, replicas[r], req, span, timeout, shard, r)
		if err != nil {
			if errors.Is(err, gns.ErrNotFound) {
				// The replica answered authoritatively for its own copy;
				// it is healthy, it just may lag the rest of the set.
				br.Success()
				answered = true
				notFound = err
				continue
			}
			br.Failure()
			lastErr = err
			continue
		}
		br.Success()
		answered = true
		rec := gns.Record{Name: resp.Name, Version: resp.Version}
		for _, sa := range resp.Addrs {
			a, aerr := netaddr.ParseAddr(sa)
			if aerr != nil {
				lastErr = aerr
				continue
			}
			rec.Addrs = append(rec.Addrs, a)
		}
		vv, perr := ParseVV(resp.VV)
		if perr != nil {
			lastErr = perr
			continue
		}
		if hasCached && vv.Compare(cached.vv) == Before {
			// A lagging replica: it answered with history older than what
			// this client has already seen committed. Keep hedging.
			continue
		}
		c.cache.Put(name, cachedRec{rec: rec, vv: vv})
		return rec, nil
	}
	if hasCached {
		if answered {
			// Replicas are up but every answer lagged the floor:
			// read-your-writes from the client's own committed record.
			m.ReadYourWrites.Inc()
			return cached.rec, nil
		}
		// The whole replica set is unreachable: degraded mode.
		rec := cached.rec
		rec.Stale = true
		c.stale.Add(1)
		m.StaleServed.Inc()
		return rec, nil
	}
	if notFound != nil {
		return gns.Record{}, notFound
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("all replica circuits open")
	}
	return gns.Record{}, fmt.Errorf("%w: lookup %q on shard %d: %v", gns.ErrNoQuorum, name, shard, lastErr)
}
