package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"locind/internal/gns"
	"locind/internal/netaddr"
)

// VRecord is one replica's copy of a binding: the addresses plus the
// version-vector history that produced them.
type VRecord struct {
	Name  string
	Addrs []netaddr.Addr
	VV    VV
}

// record converts to the public gns.Record, surfacing the VV's total
// update count as the scalar version (monotone under Bump and Merge).
func (r VRecord) record() gns.Record {
	return gns.Record{Name: r.Name, Addrs: r.Addrs, Version: r.VV.Sum()}
}

// Store is one replica's local state: a versioned name→addresses map. It
// implements gns.Backend, so a stock gns.Server fronts it over UDP, and
// gns.OpHandler for the replication ops the cluster client speaks:
//
//	vput  — install a record with an explicit version vector; the store
//	        keeps whichever history Supersedes the other, so retried and
//	        reordered puts are idempotent.
//	vget  — read the record with its version vector.
//	ping  — health probe; answers OK with no side effects.
//
// The public lookup/update ops work too: an unversioned update bumps the
// store's own origin, which the next anti-entropy pass reconciles with the
// rest of the replica set.
type Store struct {
	origin uint64 // VV origin for unversioned direct updates

	mu   sync.Mutex
	recs map[string]VRecord
}

// NewStore creates an empty replica store. origin is the identity its
// unversioned direct updates bump; replicas in one cluster get distinct
// origins.
func NewStore(origin uint64) *Store {
	return &Store{origin: origin, recs: map[string]VRecord{}}
}

// Lookup implements gns.Backend: a single-replica read.
func (s *Store) Lookup(name string) (gns.Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[name]
	if !ok {
		return gns.Record{}, fmt.Errorf("%w: %q", gns.ErrNotFound, name)
	}
	return rec.record(), nil
}

// Update implements gns.Backend: an unversioned write bumps the store's
// own origin. The cluster client never uses this (it replicates explicit
// VVs with vput); it exists so a replica still speaks the full public
// protocol when addressed directly.
func (s *Store) Update(name string, addrs []netaddr.Addr) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vv := s.recs[name].VV.Bump(s.origin)
	s.recs[name] = VRecord{Name: name, Addrs: append([]netaddr.Addr(nil), addrs...), VV: vv}
	return vv.Sum(), nil
}

// Put installs rec if its history supersedes the stored one, reporting
// whether it was installed. The stored record after Put carries the merged
// history either way, so a replica that has seen both sides of a
// divergence never regresses below either.
func (s *Store) Put(rec VRecord) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.recs[rec.Name]
	if !ok {
		s.recs[rec.Name] = rec
		return true
	}
	if rec.VV.Supersedes(cur.VV) {
		merged := rec
		merged.VV = rec.VV.Merge(cur.VV)
		s.recs[rec.Name] = merged
		return true
	}
	// The stored record stays authoritative but absorbs the incoming
	// history, so a later concurrent write cannot flip the tiebreak back.
	if cur.VV.Compare(rec.VV) == Concurrent {
		cur.VV = cur.VV.Merge(rec.VV)
		s.recs[rec.Name] = cur
	}
	return false
}

// Get returns the stored record for name.
func (s *Store) Get(name string) (VRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[name]
	return rec, ok
}

// Len returns the number of bindings stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Names returns the stored names, sorted — the deterministic iteration
// anti-entropy and state digests build on.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.recs))
	for n := range s.recs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Digest writes a canonical rendering of the store — sorted names, each
// with its addresses and encoded VV — into b, and folds it into h. Two
// stores with identical state produce identical digests byte for byte.
func (s *Store) Digest(b *strings.Builder, h *fnv64Writer) {
	for _, name := range s.Names() {
		rec, _ := s.Get(name)
		line := name + " ["
		for i, a := range rec.Addrs {
			if i > 0 {
				line += " "
			}
			line += a.String()
		}
		line += "] " + rec.VV.Encode() + "\n"
		b.WriteString(line)
		h.WriteString(line)
	}
}

// fnv64Writer accumulates an FNV-1a hash over digest lines.
type fnv64Writer struct{ h uint64 }

func newFNV64Writer() *fnv64Writer {
	h := fnv.New64a()
	return &fnv64Writer{h: h.Sum64()}
}

func (w *fnv64Writer) WriteString(s string) {
	const prime64 = 1099511628211
	for i := 0; i < len(s); i++ {
		w.h ^= uint64(s[i])
		w.h *= prime64
	}
}

// Sum returns the accumulated hash.
func (w *fnv64Writer) Sum() uint64 { return w.h }

// HandleOp implements gns.OpHandler: the replication ops.
func (s *Store) HandleOp(req gns.Request) (gns.Response, bool) {
	switch req.Op {
	case "ping":
		return gns.Response{OK: true}, true
	case "vget":
		rec, ok := s.Get(req.Name)
		if !ok {
			return errResp(fmt.Errorf("%w: %q", gns.ErrNotFound, req.Name)), true
		}
		resp := gns.Response{OK: true, Name: rec.Name, Version: rec.VV.Sum(), VV: rec.VV.Encode()}
		for _, a := range rec.Addrs {
			resp.Addrs = append(resp.Addrs, a.String())
		}
		return resp, true
	case "vput":
		vv, err := ParseVV(req.VV)
		if err != nil {
			return errResp(fmt.Errorf("%w: %v", gns.ErrBadRequest, err)), true
		}
		if len(vv) == 0 {
			return errResp(fmt.Errorf("%w: vput requires a version vector", gns.ErrBadRequest)), true
		}
		addrs := make([]netaddr.Addr, 0, len(req.Addrs))
		for _, sa := range req.Addrs {
			a, err := netaddr.ParseAddr(sa)
			if err != nil {
				return errResp(fmt.Errorf("%w: bad address: %v", gns.ErrBadRequest, err)), true
			}
			addrs = append(addrs, a)
		}
		s.Put(VRecord{Name: req.Name, Addrs: addrs, VV: vv})
		// Acknowledge with the now-stored history: on the fast path the
		// one just put, after a lost-ack retry the merged superset —
		// either way the client learns what the replica holds.
		stored, _ := s.Get(req.Name)
		return gns.Response{OK: true, Name: req.Name, Version: stored.VV.Sum(), VV: stored.VV.Encode()}, true
	}
	return gns.Response{}, false
}

// errResp mirrors the server's structured-error form for extension ops.
func errResp(err error) gns.Response {
	return gns.Response{Code: gns.CodeFor(err), Err: err.Error()}
}
