// Package cluster turns the single-box gns service into a sharded,
// replicated name-mapping cluster: N consistent-hash shards of the name
// space, each owned by R independent gns.Server replicas, with quorum
// writes, read-your-writes on the owning shard, per-replica health-checked
// failover (half-open circuit breakers), hedged lookups, anti-entropy
// repair after partitions heal, and a degraded mode that serves
// last-known-good bindings (flagged stale) when a shard's quorum is
// unreachable — the distributed mapping layer the paper's resolution
// architectures assume, engineered to the failure model of
// internal/faultnet.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// VV is a version vector: per-origin update counters, kept sorted by
// origin. It orders the causal history of one name's record — a replica
// accepts an incoming record exactly when its VV supersedes the stored one
// — and anti-entropy reconciles diverged replicas by merging VVs. The zero
// value (nil) is the empty history, superseded by everything non-empty.
type VV []VVEntry

// VVEntry is one origin's counter.
type VVEntry struct {
	Origin uint64
	Ctr    uint64
}

// Get returns origin's counter (0 when absent).
func (v VV) Get(origin uint64) uint64 {
	for _, e := range v {
		if e.Origin == origin {
			return e.Ctr
		}
	}
	return 0
}

// Bump returns a copy of v with origin's counter incremented.
func (v VV) Bump(origin uint64) VV {
	out := make(VV, 0, len(v)+1)
	bumped := false
	for _, e := range v {
		if e.Origin == origin {
			e.Ctr++
			bumped = true
		}
		out = append(out, e)
	}
	if !bumped {
		out = append(out, VVEntry{Origin: origin, Ctr: 1})
		sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	}
	return out
}

// Ordering is the causal relation between two version vectors.
type Ordering int

const (
	// Equal: identical histories.
	Equal Ordering = iota
	// Before: the receiver's history is a strict prefix of the argument's.
	Before
	// After: the receiver strictly extends the argument's history.
	After
	// Concurrent: the histories diverge; neither saw the other's writes.
	Concurrent
)

// Compare relates v to o causally.
func (v VV) Compare(o VV) Ordering {
	vLess, oLess := false, false
	for _, e := range v {
		oc := o.Get(e.Origin)
		if e.Ctr > oc {
			oLess = true
		} else if e.Ctr < oc {
			vLess = true
		}
	}
	for _, e := range o {
		if v.Get(e.Origin) < e.Ctr {
			vLess = true
		}
	}
	switch {
	case vLess && oLess:
		return Concurrent
	case vLess:
		return Before
	case oLess:
		return After
	default:
		return Equal
	}
}

// Merge returns the element-wise maximum of both histories — the join that
// anti-entropy installs after reconciling a divergence.
func (v VV) Merge(o VV) VV {
	out := make(VV, 0, len(v)+len(o))
	out = append(out, v...)
	for _, e := range o {
		found := false
		for i := range out {
			if out[i].Origin == e.Origin {
				if e.Ctr > out[i].Ctr {
					out[i].Ctr = e.Ctr
				}
				found = true
				break
			}
		}
		if !found {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}

// Sum is the total number of updates in the history. It is monotone under
// Bump and Merge, which makes it the scalar Version surfaced through the
// plain lookup protocol.
func (v VV) Sum() uint64 {
	var s uint64
	for _, e := range v {
		s += e.Ctr
	}
	return s
}

// Encode renders v in its canonical wire form "origin:ctr,origin:ctr"
// (origins ascending), "" for the empty history. Canonical means equal
// vectors encode to equal strings, so state digests can compare encodings.
func (v VV) Encode() string {
	if len(v) == 0 {
		return ""
	}
	var b strings.Builder
	for i, e := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(e.Origin, 10))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(e.Ctr, 10))
	}
	return b.String()
}

// ParseVV decodes the Encode form. The empty string is the empty history.
func ParseVV(s string) (VV, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make(VV, 0, len(parts))
	for _, p := range parts {
		o, c, ok := strings.Cut(p, ":")
		if !ok {
			return nil, fmt.Errorf("cluster: bad vv entry %q", p)
		}
		origin, err := strconv.ParseUint(o, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad vv origin %q: %v", o, err)
		}
		ctr, err := strconv.ParseUint(c, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad vv counter %q: %v", c, err)
		}
		out = append(out, VVEntry{Origin: origin, Ctr: ctr})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out, nil
}

// Supersedes reports whether a record carrying v should replace one
// carrying cur: v strictly extends cur's history, or the two are
// concurrent and v wins the deterministic tiebreak. Every replica applies
// the same rule, so convergence does not depend on delivery order.
func (v VV) Supersedes(cur VV) bool {
	switch v.Compare(cur) {
	case After:
		return true
	case Concurrent:
		return v.winsTiebreak(cur)
	default:
		return false
	}
}

// winsTiebreak deterministically orders concurrent histories: the longer
// total history wins (more observed updates = more recent in the
// last-writer-wins sense), ties broken by the lexicographically greater
// canonical encoding. Symmetric and total: for concurrent a ≠ b exactly
// one of a.winsTiebreak(b), b.winsTiebreak(a) holds.
func (v VV) winsTiebreak(o VV) bool {
	vs, os := v.Sum(), o.Sum()
	if vs != os {
		return vs > os
	}
	return v.Encode() > o.Encode()
}
