package cluster

import "sort"

// Repair runs one anti-entropy pass over every shard: for each name any
// replica of the shard holds, the replicas' copies are reconciled to a
// single winner — the record whose version vector supersedes the rest
// under the same rule replicas apply online (causal dominance, then the
// deterministic concurrent tiebreak) — carrying the merged history of all
// copies, and the winner is written back to every replica that lagged or
// diverged. The pass is deterministic: sorted names, replicas in index
// order, pure VV rules. After a partition heals, one Repair converges the
// shard's replicas byte-for-byte (StateDigest-identical across replicas of
// a shard); it is idempotent, so repeated or overlapping passes are safe.
//
// Repair runs in-process against the replica stores — it is the
// operator-side reconciliation job that lives next to the replicas, not a
// client protocol — so it works even on freshly healed nodes whose network
// is still converging. It returns the number of replica records rewritten
// and counts them on m's Repaired handle (m may be nil).
func Repair(c *Cluster, m *ClientMetrics) int {
	repaired := 0
	for s := 0; s < c.Shards(); s++ {
		repaired += repairShard(c, s)
	}
	if repaired > 0 {
		m.orNop().Repaired.Add(int64(repaired))
	}
	return repaired
}

// repairShard reconciles one shard's replica set.
func repairShard(c *Cluster, shard int) int {
	replicas := make([]*Store, 0, c.Replicas())
	for r := 0; r < c.Replicas(); r++ {
		replicas = append(replicas, c.Node(shard, r).Store)
	}

	// Sorted union of every replica's names: deterministic iteration over
	// everything any copy of the shard has seen.
	seen := map[string]bool{}
	var names []string
	for _, st := range replicas {
		for _, n := range st.Names() {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)

	repaired := 0
	for _, name := range names {
		// Fold the replicas' copies into one winner carrying the merged
		// history. Folding with Supersedes applies the exact rule replicas
		// use online, so repair cannot pick a record a replica would later
		// refuse.
		var winner VRecord
		have := false
		for _, st := range replicas {
			rec, ok := st.Get(name)
			if !ok {
				continue
			}
			if !have {
				winner, have = rec, true
				continue
			}
			if rec.VV.Supersedes(winner.VV) {
				merged := rec
				merged.VV = rec.VV.Merge(winner.VV)
				winner = merged
			} else {
				winner.VV = winner.VV.Merge(rec.VV)
			}
		}
		if !have {
			continue
		}
		// Write the winner back to every replica that does not already
		// hold exactly this history. Put is conditioned on Supersedes, so
		// up-to-date replicas are untouched.
		for _, st := range replicas {
			cur, ok := st.Get(name)
			if ok && cur.VV.Compare(winner.VV) == Equal {
				continue
			}
			if st.Put(winner) {
				repaired++
			}
		}
	}
	return repaired
}
