package cluster

import (
	"strconv"
	"sync"

	"locind/internal/obs"
)

// ClientMetrics is the observability surface of the cluster client. Every
// handle is nil-safe, so an unobserved client records nothing.
type ClientMetrics struct {
	reg *obs.Registry

	repMu  sync.Mutex
	repMet map[[2]int]*ReplicaMetrics

	// Lookups and Updates count client operations (not network attempts).
	Lookups *obs.Counter
	Updates *obs.Counter
	// Hedges counts lookup legs sent beyond the primary replica — the
	// hedged/failover reads.
	Hedges *obs.Counter
	// BreakerRejects counts replica legs skipped because the replica's
	// circuit was open — failures avoided without touching the network.
	BreakerRejects *obs.Counter
	// BreakerOpens/BreakerProbes/BreakerCloses count circuit transitions.
	BreakerOpens  *obs.Counter
	BreakerProbes *obs.Counter
	BreakerCloses *obs.Counter
	// StaleServed counts lookups answered from the last-known-good cache
	// because no replica of the owning shard was reachable.
	StaleServed *obs.Counter
	// ReadYourWrites counts lookups answered from the client's own
	// committed write because every reachable replica lagged behind it.
	ReadYourWrites *obs.Counter
	// QuorumFailures counts updates that could not reach a majority.
	QuorumFailures *obs.Counter
	// CacheEvictions counts last-known-good bindings dropped by the
	// bounded cache's epoch flushes.
	CacheEvictions *obs.Counter
	// Repaired counts replica records rewritten by anti-entropy passes.
	Repaired *obs.Counter
}

// NewClientMetrics registers the cluster client families on reg. A nil
// registry yields all-nil handles.
func NewClientMetrics(reg *obs.Registry) *ClientMetrics {
	return &ClientMetrics{
		reg:            reg,
		Lookups:        reg.Counter("locind_gnscluster_lookups_total", "cluster lookups issued"),
		Updates:        reg.Counter("locind_gnscluster_updates_total", "cluster updates issued"),
		Hedges:         reg.Counter("locind_gnscluster_hedges_total", "lookup legs beyond the primary replica"),
		BreakerRejects: reg.Counter("locind_gnscluster_breaker_rejects_total", "replica legs skipped by an open circuit"),
		BreakerOpens:   reg.Counter("locind_gnscluster_breaker_transitions_total", "circuit transitions, by kind", "to", "open"),
		BreakerProbes:  reg.Counter("locind_gnscluster_breaker_transitions_total", "circuit transitions, by kind", "to", "half-open"),
		BreakerCloses:  reg.Counter("locind_gnscluster_breaker_transitions_total", "circuit transitions, by kind", "to", "closed"),
		StaleServed:    reg.Counter("locind_gnscluster_stale_served_total", "lookups degraded to last-known-good bindings"),
		ReadYourWrites: reg.Counter("locind_gnscluster_read_your_writes_total", "lookups answered from the client's own committed write"),
		QuorumFailures: reg.Counter("locind_gnscluster_quorum_failures_total", "updates that missed the write quorum"),
		CacheEvictions: reg.Counter("locind_gnscluster_cache_evictions_total", "last-known-good bindings dropped by epoch flushes"),
		Repaired:       reg.Counter("locind_gnscluster_repaired_total", "replica records rewritten by anti-entropy"),
	}
}

// noClientMetrics backs unobserved clients; its nil handles no-op.
var noClientMetrics = &ClientMetrics{}

func (m *ClientMetrics) orNop() *ClientMetrics {
	if m == nil {
		return noClientMetrics
	}
	return m
}

// ReplicaMetrics is one replica's slice of the client's traffic, labeled
// shard="<s>",replica="<r>" — the series the dashboard's ?by=replica (or
// ?by=shard) view groups. Handles are nil-safe.
type ReplicaMetrics struct {
	// Legs counts lookup/update legs attempted against this replica.
	Legs *obs.Counter
	// Rejects counts legs skipped because this replica's circuit was open.
	Rejects *obs.Counter
	// Opens counts this replica's circuit-open transitions.
	Opens *obs.Counter
}

// noReplicaMetrics backs unobserved clients; its nil handles no-op.
var noReplicaMetrics = &ReplicaMetrics{}

// Replica returns (registering on first use) the per-replica counter set
// for one cell of the routing grid. Safe for concurrent use; an unobserved
// ClientMetrics hands back no-op handles.
func (m *ClientMetrics) Replica(shard, replica int) *ReplicaMetrics {
	if m == nil || m.reg == nil {
		return noReplicaMetrics
	}
	key := [2]int{shard, replica}
	m.repMu.Lock()
	defer m.repMu.Unlock()
	if rm, ok := m.repMet[key]; ok {
		return rm
	}
	if m.repMet == nil {
		m.repMet = map[[2]int]*ReplicaMetrics{}
	}
	labels := []string{"shard", strconv.Itoa(shard), "replica", strconv.Itoa(replica)}
	rm := &ReplicaMetrics{
		Legs:    m.reg.Counter("locind_gnscluster_replica_legs_total", "legs attempted against this replica", labels...),
		Rejects: m.reg.Counter("locind_gnscluster_replica_breaker_rejects_total", "legs skipped by this replica's open circuit", labels...),
		Opens:   m.reg.Counter("locind_gnscluster_replica_breaker_opens_total", "this replica's circuit-open transitions", labels...),
	}
	m.repMet[key] = rm
	return rm
}
