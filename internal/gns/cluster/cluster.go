package cluster

import (
	"context"
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"strings"

	"locind/internal/faultnet"
	"locind/internal/gns"
	"locind/internal/netaddr"
)

// ShardOf places name on one of shards shards by highest-random-weight
// (rendezvous) hashing: each shard's weight is the FNV-1a hash of
// "name|shard", and the name lands on the heaviest. Stable under shard-set
// growth — adding a shard moves only the names it wins — and needs no
// shared shard map, so every client computes the same placement
// independently.
func ShardOf(name string, shards int) int {
	best, bestW := 0, uint64(0)
	for s := 0; s < shards; s++ {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%d", name, s)
		if w := h.Sum64(); w > bestW || (w == bestW && s < best) {
			best, bestW = s, w
		}
	}
	return best
}

// Config sizes a cluster.
type Config struct {
	// Shards is the number of consistent-hash shards (N).
	Shards int
	// Replicas is the replication factor per shard (R). Quorum writes need
	// a majority of R acks.
	Replicas int
	// Faults, when non-zero, applies per-datagram fault injection to every
	// node's transport (both directions), drawn from the cluster's Env.
	Faults faultnet.PacketFaults
}

// Node is one replica server: shard s, replica index r, its local store,
// and the UDP server fronting it.
type Node struct {
	Shard, Replica int
	Store          *Store
	srv            *gns.Server
	addr           string
}

// Addr returns the node's bound UDP address.
func (n *Node) Addr() string { return n.addr }

// Cluster is a running set of Shards×Replicas gns.Server nodes on
// loopback, their shared fault environment, and the partition controller
// chaos tests drive. Every transport is wrapped in faultnet, so whole
// shards can be killed (Partition().Isolate) and healed deterministically.
type Cluster struct {
	cfg   Config
	env   *faultnet.Env
	part  *faultnet.Partition
	nodes [][]*Node // [shard][replica]
}

// Start boots a cluster per cfg on loopback. env owns all fault
// randomness (it must not be nil; pass a fresh NewEnv for a fault-free
// cluster). sm may be nil for unobserved servers. Cancelling ctx shuts
// every node down.
func Start(ctx context.Context, cfg Config, env *faultnet.Env, sm *gns.ServerMetrics) (*Cluster, error) {
	if cfg.Shards < 1 || cfg.Replicas < 1 {
		return nil, fmt.Errorf("cluster: bad topology (shards=%d, replicas=%d)", cfg.Shards, cfg.Replicas)
	}
	c := &Cluster{cfg: cfg, env: env, part: env.NewPartition()}
	for s := 0; s < cfg.Shards; s++ {
		var row []*Node
		for r := 0; r < cfg.Replicas; r++ {
			pc, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				c.Close()
				return nil, err
			}
			// Partition innermost: cut datagrams never reach the
			// probabilistic fault layer, so imposing a partition does not
			// shift the seeded fault stream.
			var conn net.PacketConn = c.part.WrapPacketConn(pc)
			if cfg.Faults != (faultnet.PacketFaults{}) {
				conn = faultnet.WrapPacketConn(conn, env, cfg.Faults, cfg.Faults)
			}
			store := NewStore(storeOrigin(s, r))
			node := &Node{
				Shard:   s,
				Replica: r,
				Store:   store,
				srv:     gns.ServePacketConnObserved(ctx, store, conn, sm),
				addr:    pc.LocalAddr().String(),
			}
			row = append(row, node)
		}
		c.nodes = append(c.nodes, row)
	}
	return c, nil
}

// storeOrigin derives a replica store's VV origin from its coordinates.
// Client origins are small integers; offsetting replica origins far away
// keeps the two spaces disjoint.
func storeOrigin(shard, replica int) uint64 {
	return 1<<32 + uint64(shard)<<16 + uint64(replica)
}

// Close shuts every node down.
func (c *Cluster) Close() {
	for _, row := range c.nodes {
		for _, n := range row {
			if n != nil && n.srv != nil {
				n.srv.Close() //nolint:errcheck // shutdown; the transport error has nowhere to go
			}
		}
	}
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return c.cfg.Shards }

// Replicas returns the replication factor.
func (c *Cluster) Replicas() int { return c.cfg.Replicas }

// Node returns the node at (shard, replica).
func (c *Cluster) Node(shard, replica int) *Node { return c.nodes[shard][replica] }

// Addrs returns the address grid, [shard][replica] — the input a Client
// routes over.
func (c *Cluster) Addrs() [][]string {
	out := make([][]string, len(c.nodes))
	for s, row := range c.nodes {
		for _, n := range row {
			out[s] = append(out[s], n.addr)
		}
	}
	return out
}

// ShardAddrs returns the replica addresses of one shard.
func (c *Cluster) ShardAddrs(shard int) []string {
	out := make([]string, 0, c.cfg.Replicas)
	for _, n := range c.nodes[shard] {
		out = append(out, n.addr)
	}
	return out
}

// Env returns the cluster's fault environment.
func (c *Cluster) Env() *faultnet.Env { return c.env }

// Partition returns the partition controller. KillShard/KillReplica/Heal
// are conveniences over it.
func (c *Cluster) Partition() *faultnet.Partition { return c.part }

// KillShard isolates every replica of shard — the whole-shard crash of the
// acceptance chaos test. Lookups route around it (hedge, then degrade to
// stale); quorum writes to the shard fail.
func (c *Cluster) KillShard(shard int) {
	c.part.Isolate(c.ShardAddrs(shard)...)
}

// KillReplica isolates a single replica; the shard keeps its quorum and
// the replica diverges until anti-entropy repairs it.
func (c *Cluster) KillReplica(shard, replica int) {
	c.part.Isolate(c.nodes[shard][replica].addr)
}

// Heal removes every partition cut.
func (c *Cluster) Heal() {
	c.part.HealAll()
}

// StateDigest renders the whole cluster's replica state canonically —
// shard by shard, replica by replica, sorted names with addresses and
// version vectors — and returns its FNV-1a hash with the full text. Two
// clusters that converged to identical state digest identically, byte for
// byte; the chaos acceptance test compares a healed+repaired run against
// the fault-free reference with exactly this.
func (c *Cluster) StateDigest() (uint64, string) {
	var b strings.Builder
	h := newFNV64Writer()
	for s, row := range c.nodes {
		for r, n := range row {
			head := fmt.Sprintf("# shard %d replica %d (%d names)\n", s, r, n.Store.Len())
			b.WriteString(head)
			h.WriteString(head)
			n.Store.Digest(&b, h)
		}
	}
	return h.Sum(), b.String()
}

// BindingDigest is StateDigest without the version vectors: the served
// content only (sorted names with their addresses, per replica). Two runs
// that converged to the same bindings binding-digest identically even when
// their causal histories differ — a chaos run's retried writes bump more
// counters than the fault-free reference run's, but after heal and repair
// both serve the same bytes, and this is the digest that proves it.
func (c *Cluster) BindingDigest() (uint64, string) {
	var b strings.Builder
	h := newFNV64Writer()
	for s, row := range c.nodes {
		for r, n := range row {
			head := fmt.Sprintf("# shard %d replica %d (%d names)\n", s, r, n.Store.Len())
			b.WriteString(head)
			h.WriteString(head)
			for _, name := range n.Store.Names() {
				rec, _ := n.Store.Get(name)
				line := bindingLine(name, rec.Addrs)
				b.WriteString(line)
				h.WriteString(line)
			}
		}
	}
	return h.Sum(), b.String()
}

// bindingLine is the canonical one-binding rendering shared by
// BindingDigest and ExpectedBindingDigest — one definition, so the two can
// never drift apart.
func bindingLine(name string, addrs []netaddr.Addr) string {
	line := name + " ["
	for i, a := range addrs {
		if i > 0 {
			line += " "
		}
		line += a.String()
	}
	return line + "]\n"
}

// ExpectedBindingDigest computes, without running any cluster, the
// BindingDigest a (shards × replicas) cluster would produce after every
// binding in bindings committed everywhere: the fault-free reference state.
// A chaos run has converged exactly when its BindingDigest equals this.
func ExpectedBindingDigest(shards, replicas int, bindings map[string][]netaddr.Addr) (uint64, string) {
	names := make([]string, 0, len(bindings))
	for name := range bindings {
		names = append(names, name)
	}
	sort.Strings(names)
	// Distributing the sorted names keeps each shard's slice sorted too.
	perShard := make([][]string, shards)
	for _, name := range names {
		s := ShardOf(name, shards)
		perShard[s] = append(perShard[s], name)
	}
	var b strings.Builder
	h := newFNV64Writer()
	for s := 0; s < shards; s++ {
		for r := 0; r < replicas; r++ {
			head := fmt.Sprintf("# shard %d replica %d (%d names)\n", s, r, len(perShard[s]))
			b.WriteString(head)
			h.WriteString(head)
			for _, name := range perShard[s] {
				line := bindingLine(name, bindings[name])
				b.WriteString(line)
				h.WriteString(line)
			}
		}
	}
	return h.Sum(), b.String()
}
