package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"locind/internal/faultnet"
	"locind/internal/gns"
	"locind/internal/netaddr"
	"locind/internal/reliable"
)

func TestShardOfPlacement(t *testing.T) {
	const shards = 4
	counts := make([]int, shards)
	for i := 0; i < 4000; i++ {
		name := fmt.Sprintf("host-%d.example", i)
		s := ShardOf(name, shards)
		if s < 0 || s >= shards {
			t.Fatalf("ShardOf(%q)=%d out of range", name, s)
		}
		if s != ShardOf(name, shards) {
			t.Fatalf("ShardOf(%q) unstable", name)
		}
		counts[s]++
	}
	for s, n := range counts {
		if n < 700 || n > 1300 {
			t.Fatalf("shard %d got %d/4000 names — rendezvous spread broken: %v", s, n, counts)
		}
	}
	// Rendezvous stability: growing the shard set moves a name only if the
	// new shard wins it; nothing reshuffles between old shards.
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("host-%d.example", i)
		old, grown := ShardOf(name, shards), ShardOf(name, shards+1)
		if grown != old && grown != shards {
			t.Fatalf("%q moved %d -> %d when shard %d was added", name, old, grown, shards)
		}
	}
}

func TestReplicaOrderStablePermutation(t *testing.T) {
	const r = 5
	seen := map[int]bool{}
	order := replicaOrder("some-name", r)
	for _, idx := range order {
		if idx < 0 || idx >= r || seen[idx] {
			t.Fatalf("replicaOrder not a permutation: %v", order)
		}
		seen[idx] = true
	}
	for i := 0; i < 10; i++ {
		again := replicaOrder("some-name", r)
		for j := range order {
			if again[j] != order[j] {
				t.Fatalf("replicaOrder unstable: %v vs %v", order, again)
			}
		}
	}
	// Different names should not all share a primary.
	primaries := map[int]bool{}
	for i := 0; i < 64; i++ {
		primaries[replicaOrder(fmt.Sprintf("n%d", i), r)[0]] = true
	}
	if len(primaries) < 2 {
		t.Fatalf("every name chose the same primary: %v", primaries)
	}
}

func TestStorePutSupersedes(t *testing.T) {
	st := NewStore(1 << 40)
	a1 := netaddr.MustParseAddr("10.0.0.1")
	a2 := netaddr.MustParseAddr("10.0.0.2")

	v1 := VV{}.Bump(1)
	if !st.Put(VRecord{Name: "n", Addrs: []netaddr.Addr{a1}, VV: v1}) {
		t.Fatal("first put refused")
	}
	// Retried put (same history) is a no-op but not an error.
	if st.Put(VRecord{Name: "n", Addrs: []netaddr.Addr{a1}, VV: v1}) {
		t.Fatal("identical retry should not reinstall")
	}
	// Causally newer wins.
	v2 := v1.Bump(1)
	if !st.Put(VRecord{Name: "n", Addrs: []netaddr.Addr{a2}, VV: v2}) {
		t.Fatal("dominating put refused")
	}
	// Causally older is refused.
	if st.Put(VRecord{Name: "n", Addrs: []netaddr.Addr{a1}, VV: v1}) {
		t.Fatal("stale put installed")
	}
	rec, _ := st.Get("n")
	if len(rec.Addrs) != 1 || rec.Addrs[0] != a2 {
		t.Fatalf("stored addrs %v, want [%v]", rec.Addrs, a2)
	}

	// Concurrent histories: both delivery orders end at the same winner.
	x := VV{}.Bump(10)          // loser of the tiebreak (shorter)
	y := VV{}.Bump(11).Bump(11) // winner (longer history)
	ra := VRecord{Name: "c", Addrs: []netaddr.Addr{a1}, VV: x}
	rb := VRecord{Name: "c", Addrs: []netaddr.Addr{a2}, VV: y}
	s1, s2 := NewStore(1), NewStore(2)
	s1.Put(ra)
	s1.Put(rb)
	s2.Put(rb)
	s2.Put(ra)
	g1, _ := s1.Get("c")
	g2, _ := s2.Get("c")
	if g1.Addrs[0] != a2 || g2.Addrs[0] != a2 {
		t.Fatalf("delivery order changed the winner: %v vs %v", g1.Addrs, g2.Addrs)
	}
	if g1.VV.Compare(g2.VV) != Equal {
		t.Fatalf("merged histories differ: %s vs %s", g1.VV.Encode(), g2.VV.Encode())
	}
}

// startCluster boots a fault-free cluster and a fast-timeout client for it.
func startCluster(t *testing.T, shards, replicas int, seed int64) (*Cluster, *Client, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	c, err := Start(ctx, Config{Shards: shards, Replicas: replicas}, faultnet.NewEnv(seed), nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	// Cooldown 1: the first request after an outage probes immediately, so
	// tests need not drive extra traffic to ride out the demand-driven
	// cooldown.
	cl := NewClient(c.Addrs(), ClientConfig{Origin: 1, BreakerCooldown: 1})
	cl.Timeout = 250 * time.Millisecond
	cl.HedgeDelay = 80 * time.Millisecond
	cl.Retries = 0
	cl.Backoff = reliable.Backoff{}
	t.Cleanup(func() { c.Close(); cancel() })
	return c, cl, cancel
}

// nameOn returns a test name placed on the given shard.
func nameOn(t *testing.T, shards, shard int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		n := fmt.Sprintf("name-%d.test", i)
		if ShardOf(n, shards) == shard {
			return n
		}
	}
	t.Fatal("no name found for shard")
	return ""
}

func TestClusterQuorumWriteRead(t *testing.T) {
	c, cl, _ := startCluster(t, 2, 3, 1)
	ctx := context.Background()
	addrs := []netaddr.Addr{netaddr.MustParseAddr("10.1.2.3")}

	name := nameOn(t, 2, 0)
	vv, err := cl.Update(ctx, name, addrs)
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if vv.Sum() != 1 {
		t.Fatalf("first write vv=%s, want one bump", vv.Encode())
	}
	rec, err := cl.Lookup(ctx, name)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if rec.Stale || len(rec.Addrs) != 1 || rec.Addrs[0] != addrs[0] {
		t.Fatalf("lookup got %+v", rec)
	}
	// Fault-free quorum write reaches every replica of the owning shard.
	for r := 0; r < 3; r++ {
		got, ok := c.Node(0, r).Store.Get(name)
		if !ok || got.Addrs[0] != addrs[0] {
			t.Fatalf("replica %d missing the committed write: %+v ok=%v", r, got, ok)
		}
	}
	// A second update supersedes the first on every replica.
	addrs2 := []netaddr.Addr{netaddr.MustParseAddr("10.9.9.9")}
	if _, err := cl.Update(ctx, name, addrs2); err != nil {
		t.Fatalf("second update: %v", err)
	}
	rec, err = cl.Lookup(ctx, name)
	if err != nil || rec.Addrs[0] != addrs2[0] {
		t.Fatalf("lookup after second update: %+v err=%v", rec, err)
	}
}

func TestClusterLookupNotFound(t *testing.T) {
	_, cl, _ := startCluster(t, 1, 3, 2)
	_, err := cl.Lookup(context.Background(), "never-written.test")
	if !errors.Is(err, gns.ErrNotFound) {
		t.Fatalf("err=%v, want ErrNotFound", err)
	}
}

func TestClusterHedgedLookupFailsOver(t *testing.T) {
	c, cl, _ := startCluster(t, 1, 3, 3)
	ctx := context.Background()
	name := nameOn(t, 1, 0)
	if _, err := cl.Update(ctx, name, []netaddr.Addr{netaddr.MustParseAddr("10.0.0.7")}); err != nil {
		t.Fatal(err)
	}

	primary := replicaOrder(name, 3)[0]
	c.KillReplica(0, primary)

	rec, err := cl.Lookup(ctx, name)
	if err != nil {
		t.Fatalf("hedged lookup: %v", err)
	}
	if rec.Stale {
		t.Fatal("failover lookup marked stale — a live replica answered")
	}
}

func TestClusterBreakerSkipsDeadReplica(t *testing.T) {
	c, cl, _ := startCluster(t, 1, 3, 4)
	cl.breakers[0][0] = &reliable.Breaker{Threshold: 1, Cooldown: 1000}
	cl.breakers[0][1] = &reliable.Breaker{Threshold: 1, Cooldown: 1000}
	cl.breakers[0][2] = &reliable.Breaker{Threshold: 1, Cooldown: 1000}
	ctx := context.Background()
	name := nameOn(t, 1, 0)
	if _, err := cl.Update(ctx, name, []netaddr.Addr{netaddr.MustParseAddr("10.0.0.8")}); err != nil {
		t.Fatal(err)
	}

	primary := replicaOrder(name, 3)[0]
	c.KillReplica(0, primary)

	// First lookup eats the hedge-delay timeout and opens the breaker.
	if _, err := cl.Lookup(ctx, name); err != nil {
		t.Fatal(err)
	}
	if got := cl.BreakerState(0, primary); got != reliable.BreakerOpen {
		t.Fatalf("primary breaker %v, want open", got)
	}
	// Subsequent lookups skip the dead replica without a network attempt.
	before := cl.Attempts()
	start := time.Now()
	if _, err := cl.Lookup(ctx, name); err != nil {
		t.Fatal(err)
	}
	if d := cl.Attempts() - before; d != 1 {
		t.Fatalf("lookup with open breaker made %d attempts, want 1", d)
	}
	if elapsed := time.Since(start); elapsed > cl.HedgeDelay {
		t.Fatalf("breaker-skipped lookup took %v — it waited on the dead replica", elapsed)
	}
}

func TestClusterDegradedModeServesStale(t *testing.T) {
	c, cl, _ := startCluster(t, 2, 3, 5)
	ctx := context.Background()
	addrs := []netaddr.Addr{netaddr.MustParseAddr("10.2.3.4")}
	name := nameOn(t, 2, 1)
	if _, err := cl.Update(ctx, name, addrs); err != nil {
		t.Fatal(err)
	}

	c.KillShard(1)

	rec, err := cl.Lookup(ctx, name)
	if err != nil {
		t.Fatalf("degraded lookup: %v", err)
	}
	if !rec.Stale {
		t.Fatal("whole-shard outage must flag the served binding stale")
	}
	if rec.Addrs[0] != addrs[0] {
		t.Fatalf("stale binding %v, want last-known-good %v", rec.Addrs, addrs)
	}
	if cl.StaleServed() != 1 {
		t.Fatalf("StaleServed=%d, want 1", cl.StaleServed())
	}

	// A name never written has no last-known-good: the quorum error surfaces.
	if _, err := cl.Lookup(ctx, nameOn(t, 2, 1)+".other"); err == nil {
		t.Fatal("uncached name on a dead shard should fail")
	}

	// Updates to the dead shard miss quorum.
	if _, err := cl.Update(ctx, name, addrs); !errors.Is(err, gns.ErrNoQuorum) {
		t.Fatalf("update on dead shard: %v, want ErrNoQuorum", err)
	}

	// After heal, service is fresh again.
	c.Heal()
	rec, err = cl.Lookup(ctx, name)
	if err != nil || rec.Stale {
		t.Fatalf("post-heal lookup: %+v err=%v", rec, err)
	}
}

func TestClusterReadYourWrites(t *testing.T) {
	c, cl, _ := startCluster(t, 1, 3, 6)
	ctx := context.Background()
	name := nameOn(t, 1, 0)
	v1 := []netaddr.Addr{netaddr.MustParseAddr("10.0.0.1")}
	v2 := []netaddr.Addr{netaddr.MustParseAddr("10.0.0.2")}
	if _, err := cl.Update(ctx, name, v1); err != nil {
		t.Fatal(err)
	}

	// One replica misses the second write, then becomes the only one
	// reachable: its answer lags the client's committed floor.
	order := replicaOrder(name, 3)
	lagging := order[0]
	c.KillReplica(0, lagging)
	if _, err := cl.Update(ctx, name, v2); err != nil {
		t.Fatalf("quorum write with one replica down: %v", err)
	}
	c.Heal()
	c.KillReplica(0, order[1])
	c.KillReplica(0, order[2])

	rec, err := cl.Lookup(ctx, name)
	if err != nil {
		t.Fatalf("read-your-writes lookup: %v", err)
	}
	if rec.Stale {
		t.Fatal("read-your-writes answer must not be stale-flagged — it was quorum-committed")
	}
	if rec.Addrs[0] != v2[0] {
		t.Fatalf("lookup regressed to %v; the committed write was %v", rec.Addrs, v2)
	}
}

func TestClusterUpdateRebasesAfterCacheLoss(t *testing.T) {
	c, cl, _ := startCluster(t, 1, 3, 7)
	ctx := context.Background()
	name := nameOn(t, 1, 0)
	a := []netaddr.Addr{netaddr.MustParseAddr("10.3.3.3")}
	if _, err := cl.Update(ctx, name, a); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Update(ctx, name, a); err != nil {
		t.Fatal(err)
	}

	// A second client with no memory of the name (fresh cache, its own
	// origin) writes: its first-bump VV is concurrent with the stored
	// history but loses the tiebreak (shorter), so replicas refuse it and
	// the client must rebase onto the observed history to commit.
	cl2 := NewClient(c.Addrs(), ClientConfig{Origin: 2})
	cl2.Timeout = 250 * time.Millisecond
	cl2.Retries = 0
	b := []netaddr.Addr{netaddr.MustParseAddr("10.4.4.4")}
	vv, err := cl2.Update(ctx, name, b)
	if err != nil {
		t.Fatalf("rebased update: %v", err)
	}
	if vv.Get(1) < 2 {
		t.Fatalf("rebase lost the prior history: %s", vv.Encode())
	}
	rec, err := cl.Lookup(ctx, name)
	if err != nil || rec.Addrs[0] != b[0] {
		t.Fatalf("after rebase, lookup=%+v err=%v, want %v", rec, err, b)
	}
}

func TestRepairConvergesDivergedReplicas(t *testing.T) {
	c, cl, _ := startCluster(t, 2, 3, 8)
	ctx := context.Background()
	names := make([]string, 0, 20)
	for i := 0; i < 20; i++ {
		names = append(names, fmt.Sprintf("repair-%d.test", i))
	}
	a1 := []netaddr.Addr{netaddr.MustParseAddr("10.5.0.1")}
	a2 := []netaddr.Addr{netaddr.MustParseAddr("10.5.0.2")}
	for _, n := range names {
		if _, err := cl.Update(ctx, n, a1); err != nil {
			t.Fatal(err)
		}
	}

	// One replica per shard misses a round of updates.
	c.KillReplica(0, 1)
	c.KillReplica(1, 2)
	for _, n := range names {
		if _, err := cl.Update(ctx, n, a2); err != nil {
			t.Fatal(err)
		}
	}
	c.Heal()

	if n := Repair(c, nil); n == 0 {
		t.Fatal("repair found nothing to fix across diverged replicas")
	}
	// Every replica of each shard now digests identically.
	for s := 0; s < c.Shards(); s++ {
		ref := replicaDigest(c, s, 0)
		for r := 1; r < c.Replicas(); r++ {
			if got := replicaDigest(c, s, r); got != ref {
				t.Fatalf("shard %d replica %d diverges after repair:\n%s\nvs\n%s", s, r, got, ref)
			}
		}
	}
	// Idempotence: a second pass finds nothing.
	if n := Repair(c, nil); n != 0 {
		t.Fatalf("second repair pass rewrote %d records", n)
	}
}

// replicaDigest renders one replica's store canonically.
func replicaDigest(c *Cluster, shard, replica int) string {
	var b strings.Builder
	c.Node(shard, replica).Store.Digest(&b, newFNV64Writer())
	return b.String()
}
