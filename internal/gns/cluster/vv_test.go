package cluster

import "testing"

func TestVVCompare(t *testing.T) {
	var empty VV
	a := empty.Bump(1) // {1:1}
	a2 := a.Bump(1)    // {1:2}
	b := empty.Bump(2) // {2:1}
	ab := a.Merge(b)   // {1:1, 2:1}
	cases := []struct {
		name string
		x, y VV
		want Ordering
	}{
		{"empty-empty", empty, empty, Equal},
		{"empty-before", empty, a, Before},
		{"after-empty", a, empty, After},
		{"self", a, a, Equal},
		{"prefix", a, a2, Before},
		{"extends", a2, a, After},
		{"concurrent", a, b, Concurrent},
		{"join-after-both", ab, a, After},
		{"join-after-both-2", ab, b, After},
		{"concurrent-partial", a2, ab, Concurrent},
	}
	for _, c := range cases {
		if got := c.x.Compare(c.y); got != c.want {
			t.Errorf("%s: Compare=%v, want %v", c.name, got, c.want)
		}
	}
}

func TestVVBumpCopies(t *testing.T) {
	a := VV{}.Bump(5)
	b := a.Bump(5)
	if a.Get(5) != 1 || b.Get(5) != 2 {
		t.Fatalf("bump aliased: a=%v b=%v", a, b)
	}
	c := a.Bump(3)
	if len(c) != 2 || c[0].Origin != 3 {
		t.Fatalf("bump of new origin should insert sorted: %v", c)
	}
}

func TestVVMergeIsJoin(t *testing.T) {
	a := VV{{Origin: 1, Ctr: 3}, {Origin: 2, Ctr: 1}}
	b := VV{{Origin: 2, Ctr: 4}, {Origin: 7, Ctr: 1}}
	m := a.Merge(b)
	want := VV{{Origin: 1, Ctr: 3}, {Origin: 2, Ctr: 4}, {Origin: 7, Ctr: 1}}
	if m.Encode() != want.Encode() {
		t.Fatalf("merge=%s, want %s", m.Encode(), want.Encode())
	}
	if m.Compare(a) != After || m.Compare(b) != After {
		t.Fatal("merge should dominate both inputs")
	}
	if m2 := b.Merge(a); m2.Encode() != m.Encode() {
		t.Fatalf("merge not commutative: %s vs %s", m2.Encode(), m.Encode())
	}
}

func TestVVEncodeParseRoundTrip(t *testing.T) {
	for _, v := range []VV{
		nil,
		{{Origin: 1, Ctr: 1}},
		{{Origin: 1, Ctr: 9}, {Origin: 1 << 40, Ctr: 2}},
	} {
		got, err := ParseVV(v.Encode())
		if err != nil {
			t.Fatalf("parse %q: %v", v.Encode(), err)
		}
		if got.Compare(v) != Equal {
			t.Fatalf("round trip %q -> %v", v.Encode(), got)
		}
	}
	for _, bad := range []string{"x", "1:", ":2", "1:2,", "1;2", "-1:2"} {
		if _, err := ParseVV(bad); err == nil {
			t.Errorf("ParseVV(%q) accepted", bad)
		}
	}
}

func TestVVSumMonotone(t *testing.T) {
	a := VV{}.Bump(1).Bump(2).Bump(1)
	if a.Sum() != 3 {
		t.Fatalf("sum=%d, want 3", a.Sum())
	}
	b := a.Merge(VV{{Origin: 9, Ctr: 4}})
	if b.Sum() <= a.Sum() {
		t.Fatalf("merge should not shrink the sum: %d -> %d", a.Sum(), b.Sum())
	}
}

func TestVVSupersedesAndTiebreak(t *testing.T) {
	a := VV{}.Bump(1)
	a2 := a.Bump(1)
	if !a2.Supersedes(a) || a.Supersedes(a2) {
		t.Fatal("causal dominance should supersede, and only one way")
	}
	if a.Supersedes(a) {
		t.Fatal("equal histories must not supersede (idempotent retries)")
	}
	// Concurrent: exactly one side wins the deterministic tiebreak.
	b := VV{}.Bump(2)
	aw, bw := a.Supersedes(b), b.Supersedes(a)
	if aw == bw {
		t.Fatalf("tiebreak not total: a=%v b=%v", aw, bw)
	}
	// Longer history wins regardless of origin order.
	long := VV{}.Bump(2).Bump(2)
	if !long.Supersedes(a) || a.Supersedes(long) {
		t.Fatal("longer concurrent history should win the tiebreak")
	}
}
