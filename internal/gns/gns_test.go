package gns

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"locind/internal/netaddr"
)

func addrs(ss ...string) []netaddr.Addr {
	out := make([]netaddr.Addr, len(ss))
	for i, s := range ss {
		out[i] = netaddr.MustParseAddr(s)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {3, 0}, {3, 4}} {
		if _, err := New(bad[0], bad[1]); err == nil {
			t.Errorf("New(%d,%d) should fail", bad[0], bad[1])
		}
	}
	s, err := New(5, 3)
	if err != nil || s.NumReplicas() != 5 {
		t.Fatalf("New = %v %v", s, err)
	}
}

func TestReplicasForProperties(t *testing.T) {
	s, _ := New(7, 3)
	seen := map[int]int{}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("host%d.example", i)
		rs := s.ReplicasFor(name)
		if len(rs) != 3 {
			t.Fatalf("replica set size %d", len(rs))
		}
		dup := map[int]bool{}
		for _, r := range rs {
			if dup[r] {
				t.Fatalf("duplicate replica for %q: %v", name, rs)
			}
			dup[r] = true
			seen[r]++
		}
		// Stability.
		again := s.ReplicasFor(name)
		for j := range rs {
			if rs[j] != again[j] {
				t.Fatalf("unstable placement for %q", name)
			}
		}
	}
	// Every replica should get a fair share of names.
	for r := 0; r < 7; r++ {
		if seen[r] < 30 {
			t.Errorf("replica %d underloaded: %d placements", r, seen[r])
		}
	}
}

func TestUpdateLookupRoundTrip(t *testing.T) {
	s, _ := New(5, 3)
	v1, err := s.Update("alice.phone", addrs("10.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.Lookup("alice.phone")
	if err != nil || rec.Version != v1 || rec.Addrs[0] != netaddr.MustParseAddr("10.0.0.1") {
		t.Fatalf("lookup = %+v, %v", rec, err)
	}
	// A mobility event: one update, monotone version.
	v2, err := s.Update("alice.phone", addrs("20.0.0.9"))
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= v1 {
		t.Fatal("versions must increase")
	}
	rec, _ = s.Lookup("alice.phone")
	if rec.Addrs[0] != netaddr.MustParseAddr("20.0.0.9") {
		t.Fatal("lookup must observe the newest binding")
	}
	if _, err := s.Lookup("nobody"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing name error = %v", err)
	}
	up, lk := s.Stats()
	if up != 2 || lk != 3 {
		t.Fatalf("stats = %d, %d", up, lk)
	}
}

func TestQuorumBehaviour(t *testing.T) {
	s, _ := New(5, 3)
	name := "bob.phone"
	rs := s.ReplicasFor(name)

	// One replica down: majority (2 of 3) still holds.
	s.Fail(rs[0])
	if _, err := s.Update(name, addrs("10.0.0.2")); err != nil {
		t.Fatalf("update with 2/3 replicas should succeed: %v", err)
	}
	if _, err := s.Lookup(name); err != nil {
		t.Fatalf("lookup with 2/3 replicas should succeed: %v", err)
	}

	// Two replicas down: no quorum.
	s.Fail(rs[1])
	if _, err := s.Update(name, addrs("10.0.0.3")); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("update without quorum should fail, got %v", err)
	}
	if _, err := s.Lookup(name); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("lookup without quorum should fail, got %v", err)
	}

	// Recovery: the stale replica returns, but lookups still see the
	// majority-committed version.
	s.Recover(rs[0])
	s.Recover(rs[1])
	rec, err := s.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Addrs[0] != netaddr.MustParseAddr("10.0.0.2") {
		t.Fatalf("lookup after recovery = %v, want last committed", rec.Addrs)
	}
}

func TestStaleReplicaNeverWins(t *testing.T) {
	s, _ := New(3, 3)
	name := "carol.phone"
	rs := s.ReplicasFor(name)
	if _, err := s.Update(name, addrs("10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	// Replica rs[0] misses the second update...
	s.Fail(rs[0])
	if _, err := s.Update(name, addrs("20.0.0.2")); err != nil {
		t.Fatal(err)
	}
	s.Recover(rs[0])
	// ...and although it answers first in rendezvous order, the version
	// comparison must surface the newer binding.
	for i := 0; i < 5; i++ {
		rec, err := s.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Addrs[0] != netaddr.MustParseAddr("20.0.0.2") {
			t.Fatalf("stale binding surfaced: %v", rec.Addrs)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	s, _ := New(5, 3)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("dev%d", i%10)
				if _, err := s.Update(name, addrs(fmt.Sprintf("10.%d.%d.1", w, i))); err != nil {
					t.Errorf("update: %v", err)
					return
				}
				if _, err := s.Lookup(name); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("lookup: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	up, _ := s.Stats()
	if up != 400 {
		t.Fatalf("updates = %d", up)
	}
}

func TestLoadPerReplica(t *testing.T) {
	s, _ := New(100, 3)
	// The §6.2.2 point: 2.1K global updates/sec spread across 100 replicas
	// at k=3 is ~63 updates/sec each — trivial.
	got := s.LoadPerReplica(2100)
	if got < 60 || got > 66 {
		t.Fatalf("per-replica load = %v", got)
	}
}

func TestUDPServerRoundTrip(t *testing.T) {
	svc, _ := New(5, 3)
	srv, err := Serve(context.Background(), svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	c := NewClient(srv.Addr())
	ver, err := c.Update(ctx, "dave.phone", addrs("10.1.2.3", "10.4.5.6"))
	if err != nil {
		t.Fatal(err)
	}
	if ver == 0 {
		t.Fatal("version must be assigned")
	}
	rec, err := c.Lookup(ctx, "dave.phone")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Addrs) != 2 || rec.Version != ver {
		t.Fatalf("lookup = %+v", rec)
	}
	// Errors surface through the protocol.
	if _, err := c.Lookup(ctx, "missing"); err == nil {
		t.Fatal("missing name should error")
	}
	if _, err := c.Update(ctx, "x", []netaddr.Addr{}); err != nil {
		t.Fatalf("empty update should be legal: %v", err)
	}
}

func TestUDPServerBadInput(t *testing.T) {
	svc, _ := New(3, 2)
	srv, err := Serve(context.Background(), svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Unknown op and malformed addrs produce protocol errors, not hangs.
	if resp := srv.handle([]byte(`{"op":"destroy"}`)); resp.OK || resp.Err == "" {
		t.Fatal("unknown op must error")
	}
	if resp := srv.handle([]byte(`{"op":"update","name":"x","addrs":["nope"]}`)); resp.OK {
		t.Fatal("bad address must error")
	}
	if resp := srv.handle([]byte(`{not json`)); resp.OK {
		t.Fatal("bad JSON must error")
	}
}

func TestClientUnreachable(t *testing.T) {
	c := NewClient("127.0.0.1:1")
	c.Retries = 0
	c.Timeout = 50 * time.Millisecond
	if _, err := c.Lookup(context.Background(), "x"); err == nil {
		t.Fatal("unreachable server should error")
	}
}

func BenchmarkUpdateLookup(b *testing.B) {
	s, _ := New(9, 3)
	a := addrs("10.0.0.1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("dev%d", i%1000)
		s.Update(name, a) //nolint:errcheck
		s.Lookup(name)    //nolint:errcheck
	}
}

// TestRepairAntiEntropy verifies that a recovered replica catches up: after
// Repair, even a lookup served exclusively by the once-stale replica
// returns the latest committed binding.
func TestRepairAntiEntropy(t *testing.T) {
	s, _ := New(3, 3)
	name := "eve.phone"
	rs := s.ReplicasFor(name)
	if _, err := s.Update(name, addrs("10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	s.Fail(rs[2])
	if _, err := s.Update(name, addrs("20.0.0.2")); err != nil {
		t.Fatal(err)
	}
	s.Recover(rs[2])

	repaired := s.Repair()
	if repaired == 0 {
		t.Fatal("stale replica should have been repaired")
	}
	// Now isolate the once-stale replica as the only survivor... with k=3,
	// majority needs 2, so instead verify directly: every replica stores
	// the latest version.
	for _, idx := range rs {
		r := s.replicas[idx]
		r.mu.Lock()
		rec, ok := r.recs[name]
		r.mu.Unlock()
		if !ok || rec.Addrs[0] != netaddr.MustParseAddr("20.0.0.2") {
			t.Fatalf("replica %d still stale: %+v", idx, rec)
		}
	}
	// Idempotence: a second pass repairs nothing.
	if again := s.Repair(); again != 0 {
		t.Fatalf("second repair pass touched %d records", again)
	}
}
