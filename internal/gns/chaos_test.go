package gns

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"locind/internal/faultnet"
	"locind/internal/obs"
	"locind/internal/reliable"
)

// chaosResult captures everything a chaos run observes, for comparison
// against the fault-free reference and against a same-seed replay.
type chaosResult struct {
	finalAddrs map[string][]string
	lastUpdate map[string]uint64 // version returned by the name's last update
	finalVer   map[string]uint64 // version seen by the final lookup
	attempts   int64
	trace      []string

	injected faultnet.Stats // the Env's own fault counters
	observed faultnet.Stats // the same counts as scraped from obs handles
	srv      *ServerMetrics
	cli      *reliable.Metrics
}

// observedStats reads the obs counters back into a Stats so chaos tests can
// assert injected == observed field-for-field.
func observedStats(m *faultnet.Metrics) faultnet.Stats {
	return faultnet.Stats{
		Dropped:    int(m.Dropped.Value()),
		Duplicated: int(m.Duplicated.Value()),
		Reordered:  int(m.Reordered.Value()),
		Truncated:  int(m.Truncated.Value()),
		Delayed:    int(m.Delayed.Value()),
		Refused:    int(m.Refused.Value()),
		Reset:      int(m.Reset.Value()),
		Stalled:    int(m.Stalled.Value()),
		Throttled:  int(m.Throttled.Value()),
	}
}

// runChaosScenario replays a fixed update/lookup workload against a GNS
// server whose transport injects faults, returning the observed outcome.
func runChaosScenario(t *testing.T, faults faultnet.PacketFaults, envSeed, jitterSeed int64) chaosResult {
	t.Helper()
	svc, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	env := faultnet.NewEnv(envSeed)
	env.SetSleep(func(time.Duration) {})
	// Every chaos run carries live obs instrumentation: besides feeding the
	// injected-equals-observed assertion, this proves metrics recording
	// never perturbs the deterministic replay.
	reg := obs.NewRegistry()
	fm := faultnet.NewMetrics(reg)
	env.SetMetrics(fm)
	sm := NewServerMetrics(reg)
	srv := ServePacketConnObserved(context.Background(), svc, faultnet.WrapPacketConn(pc, env, faults, faults), sm)
	defer srv.Close()

	c := NewClient(srv.Addr())
	c.Timeout = 15 * time.Millisecond // localhost RTT is microseconds; this only caps the wait on drops
	c.Retries = 15
	c.Backoff = reliable.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond, Jitter: 0.5}
	c.Rand = rand.New(rand.NewSource(jitterSeed))
	c.Sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	c.Metrics = reliable.NewMetrics(reg, "gns")

	ctx := context.Background()
	res := chaosResult{
		finalAddrs: map[string][]string{},
		lastUpdate: map[string]uint64{},
		finalVer:   map[string]uint64{},
	}
	// The workload: every device updates twice (a mobility event), then is
	// looked up — sequential, so the fault sequence is reproducible.
	names := []string{"alice.phone", "bob.laptop", "carol.tablet", "dave.watch",
		"erin.phone", "frank.car", "grace.drone", "heidi.sensor"}
	for round := 0; round < 2; round++ {
		for i, name := range names {
			ver, err := c.Update(ctx, name, addrs(fmt.Sprintf("10.%d.%d.1", round, i)))
			if err != nil {
				t.Fatalf("chaos update %q round %d: %v", name, round, err)
			}
			res.lastUpdate[name] = ver
		}
	}
	for _, name := range names {
		rec, err := c.Lookup(ctx, name)
		if err != nil {
			t.Fatalf("chaos lookup %q: %v", name, err)
		}
		for _, a := range rec.Addrs {
			res.finalAddrs[name] = append(res.finalAddrs[name], a.String())
		}
		res.finalVer[name] = rec.Version
	}
	res.attempts = c.Attempts()
	res.trace = env.Trace()
	res.injected = env.Stats()
	res.observed = observedStats(fm)
	res.srv = sm
	res.cli = c.Metrics
	return res
}

// TestChaosConvergesUnder30PercentLoss is the headline robustness claim:
// with 30% datagram loss in each direction, the lookup/update pipeline
// converges to exactly the fault-free result — same final bindings, and
// every final lookup observes the version committed by that name's last
// update.
func TestChaosConvergesUnder30PercentLoss(t *testing.T) {
	clean := runChaosScenario(t, faultnet.PacketFaults{}, 1, 2)
	lossy := runChaosScenario(t, faultnet.PacketFaults{Drop: 0.3}, 3, 4)

	if len(lossy.trace) == 0 {
		t.Fatal("no faults fired; the chaos run exercised nothing")
	}
	if lossy.attempts <= clean.attempts {
		t.Fatalf("lossy run made %d attempts vs clean %d; loss injected nothing",
			lossy.attempts, clean.attempts)
	}
	for name, want := range clean.finalAddrs {
		got := lossy.finalAddrs[name]
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Fatalf("%q: final addrs %v != fault-free %v", name, got, want)
		}
	}
	// Retried updates may burn extra versions, but the final lookup must
	// observe exactly the last committed update — no stale reads, no
	// lost writes.
	for name, lastVer := range lossy.lastUpdate {
		if lossy.finalVer[name] != lastVer {
			t.Fatalf("%q: final lookup saw v%d, last update committed v%d",
				name, lossy.finalVer[name], lastVer)
		}
	}
}

// TestChaosDeterministicReplay: the same seeds replay byte-for-byte — same
// fault trace, same retry counts, same final state.
func TestChaosDeterministicReplay(t *testing.T) {
	faults := faultnet.PacketFaults{Drop: 0.3, Dup: 0.1}
	a := runChaosScenario(t, faults, 7, 8)
	b := runChaosScenario(t, faults, 7, 8)
	if a.attempts != b.attempts {
		t.Fatalf("retry counts diverged: %d vs %d", a.attempts, b.attempts)
	}
	if len(a.trace) != len(b.trace) {
		t.Fatalf("fault traces diverged in length: %d vs %d", len(a.trace), len(b.trace))
	}
	for i := range a.trace {
		if a.trace[i] != b.trace[i] {
			t.Fatalf("fault trace diverged at %d: %q vs %q", i, a.trace[i], b.trace[i])
		}
	}
	for name := range a.finalVer {
		if a.finalVer[name] != b.finalVer[name] {
			t.Fatalf("%q: final versions diverged: %d vs %d",
				name, a.finalVer[name], b.finalVer[name])
		}
	}
}

// TestChaosInjectedEqualsObserved is the observability ground-truth check:
// every fault the Env injects must surface, one for one, in the obs
// counters — the live /metrics view of a chaos run agrees exactly with the
// simulator's internal ledger.
func TestChaosInjectedEqualsObserved(t *testing.T) {
	// Only retry-transparent faults: a truncated request would draw a
	// structured "bad request" answer, which the client rightly treats as
	// authoritative rather than retrying.
	faults := faultnet.PacketFaults{Drop: 0.2, Dup: 0.1, Delay: 0.1, DelayMax: time.Millisecond}
	res := runChaosScenario(t, faults, 11, 12)
	if res.injected == (faultnet.Stats{}) {
		t.Fatal("no faults injected; the assertion would be vacuous")
	}
	if res.observed != res.injected {
		t.Fatalf("obs counters diverged from injected faults:\nobserved %+v\ninjected %+v",
			res.observed, res.injected)
	}
	// The serve loop's own ledger must line up with the workload: every
	// datagram that survived the fault layer was counted, dispatched, and
	// matched by the client's attempt counter.
	if got := res.srv.Lookups.Value() + res.srv.Updates.Value(); got != res.srv.Requests.Value() {
		t.Fatalf("dispatched %d of %d requests", got, res.srv.Requests.Value())
	}
	if res.srv.Inflight.Value() != 0 {
		t.Fatalf("inflight gauge left at %d", res.srv.Inflight.Value())
	}
	if res.cli.Attempts.Value() != res.attempts {
		t.Fatalf("reliable metrics counted %d attempts, client counted %d",
			res.cli.Attempts.Value(), res.attempts)
	}
	if res.cli.Retries.Value() == 0 {
		t.Fatal("a lossy run must have retried at least once")
	}
}

// TestLookupStaleFallback: when the service becomes unreachable, a client
// with AllowStale degrades to the last known binding instead of failing —
// the stale-mapping operating regime.
func TestLookupStaleFallback(t *testing.T) {
	svc, _ := New(3, 2)
	srv, err := Serve(context.Background(), svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c := NewClient(srv.Addr())
	c.AllowStale = true
	c.Timeout = 50 * time.Millisecond
	c.Retries = 1
	c.Sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	if _, err := c.Update(ctx, "x.phone", addrs("10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	fresh, err := c.Lookup(ctx, "x.phone")
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	stale, err := c.Lookup(ctx, "x.phone")
	if err != nil {
		t.Fatalf("stale fallback should mask the outage: %v", err)
	}
	if stale.Version != fresh.Version || stale.Addrs[0] != fresh.Addrs[0] {
		t.Fatalf("stale record %+v != cached %+v", stale, fresh)
	}
	if c.StaleServed() != 1 {
		t.Fatalf("StaleServed = %d", c.StaleServed())
	}
	// A name never resolved still fails.
	if _, err := c.Lookup(ctx, "never.seen"); err == nil {
		t.Fatal("uncached name must surface the outage")
	}
}

// TestClientContextCancellationMidRetry is the regression test that the
// retry loop honours ctx: cancelling during the inter-attempt pause aborts
// promptly instead of draining the remaining retries.
func TestClientContextCancellationMidRetry(t *testing.T) {
	c := NewClient("127.0.0.1:1") // nothing listens here
	c.Timeout = 20 * time.Millisecond
	c.Retries = 100
	c.Backoff = reliable.Backoff{Base: time.Hour} // would take forever if ignored
	ctx, cancel := context.WithCancel(context.Background())
	c.Sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // cancellation lands exactly mid-retry
		return ctx.Err()
	}
	start := time.Now()
	_, err := c.Lookup(ctx, "x")
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	if c.Attempts() > 2 {
		t.Fatalf("cancellation ignored: %d attempts", c.Attempts())
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not abort promptly")
	}
}

// TestServerRejectsOversizedDatagram: a datagram beyond the protocol bound
// gets a structured error response, not a mangled parse or silence.
func TestServerOversizedDatagram(t *testing.T) {
	svc, _ := New(3, 2)
	srv, err := Serve(context.Background(), svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	big := make([]byte, maxDatagram+512)
	for i := range big {
		big[i] = 'a'
	}
	if _, err := conn.Write(big); err != nil {
		t.Skipf("kernel refused oversized datagram before the server saw it: %v", err)
	}
	buf := make([]byte, maxDatagram)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("no structured response to oversized datagram: %v", err)
	}
	if !strings.Contains(string(buf[:n]), "exceeds") {
		t.Fatalf("response = %s", buf[:n])
	}
}

// TestServerRecoverGuard: a panic while handling one request is converted
// into a structured error response; the serve loop survives.
func TestServerRecoverGuard(t *testing.T) {
	// A nil service makes any dispatch panic — the guard must catch it.
	s := &Server{svc: nil}
	resp := s.handle([]byte(`{"op":"lookup","name":"x"}`))
	if resp.OK || resp.Code != CodeInternal {
		t.Fatalf("panic not converted to structured error: %+v", resp)
	}

	// End to end: the same poisoned request must not kill a live loop.
	svc, _ := New(3, 2)
	srv, err := Serve(context.Background(), svc, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()
	c := NewClient(srv.Addr())
	if _, err := c.Update(ctx, "x.phone", addrs("10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(ctx, "x.phone"); err != nil {
		t.Fatalf("server loop should still serve: %v", err)
	}
}
