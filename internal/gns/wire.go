package gns

import (
	"errors"
	"fmt"
	"strings"
)

// Request is a UDP resolution-protocol message.
type Request struct {
	Op    string   `json:"op"` // "lookup", "update", or an extension op
	Name  string   `json:"name"`
	Addrs []string `json:"addrs,omitempty"`
	// VV carries an encoded version vector for replica-internal extension
	// ops (cluster.VV wire form); empty for the public lookup/update ops.
	VV string `json:"vv,omitempty"`
	// Trace is the originating client span's obs.TraceContext in Encode
	// form ("<trace-id>-<span-id>"), absent when the client traces nothing.
	// It parents the server-side handling span onto the client request span
	// so both sides assemble into one causal tree; a mangled value is
	// ignored, never an error.
	Trace string `json:"trace,omitempty"`
}

// Code classifies a wire error so clients can tell non-retryable failures
// (the name does not exist; the request itself is malformed) from transient
// ones (quorum lost, internal fault) without parsing error strings.
type Code int

const (
	// CodeOK is the zero value: no error.
	CodeOK Code = 0
	// CodeNotFound: the name has no binding. Permanent — retrying the same
	// lookup cannot succeed until someone updates the name.
	CodeNotFound Code = 1
	// CodeBadRequest: the request was malformed (bad JSON, unknown op, bad
	// address, oversized datagram). Permanent — a retry resends the same
	// bytes.
	CodeBadRequest Code = 2
	// CodeNoQuorum: too few replicas were reachable. Transient — replicas
	// recover.
	CodeNoQuorum Code = 3
	// CodeStale: the replica's copy is older than the version the client
	// proved it has seen. Transient from the cluster's point of view —
	// another replica, or anti-entropy, has the newer record.
	CodeStale Code = 4
	// CodeInternal: the server failed in an unforeseen way (panic
	// converted to an error, marshal failure). Treated as transient.
	CodeInternal Code = 5
)

// Response is the UDP reply.
type Response struct {
	OK bool `json:"ok"`
	// Code classifies the error when OK is false; CodeOK (absent on the
	// wire) otherwise. Err keeps the human-readable detail.
	Code    Code     `json:"code,omitempty"`
	Err     string   `json:"err,omitempty"`
	Name    string   `json:"name,omitempty"`
	Addrs   []string `json:"addrs,omitempty"`
	Version uint64   `json:"version,omitempty"`
	// VV is the stored record's encoded version vector, set by the
	// replica-internal extension ops.
	VV string `json:"vv,omitempty"`
}

// maxDatagram bounds request/response sizes.
const maxDatagram = 8192

// Errors returned by the service and surfaced through the wire protocol.
var (
	ErrNoQuorum   = errors.New("gns: quorum unavailable")
	ErrNotFound   = errors.New("gns: name not found")
	ErrBadRequest = errors.New("gns: bad request")
	ErrStale      = errors.New("gns: replica copy is stale")
	ErrInternal   = errors.New("gns: internal server error")
)

// CodeFor classifies err into its wire code. Unrecognised errors are
// internal: the conservative, retryable classification.
func CodeFor(err error) Code {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, ErrNotFound):
		return CodeNotFound
	case errors.Is(err, ErrBadRequest):
		return CodeBadRequest
	case errors.Is(err, ErrNoQuorum):
		return CodeNoQuorum
	case errors.Is(err, ErrStale):
		return CodeStale
	default:
		return CodeInternal
	}
}

// sentinel returns the canonical error a code unwraps to.
func (c Code) sentinel() error {
	switch c {
	case CodeNotFound:
		return ErrNotFound
	case CodeBadRequest:
		return ErrBadRequest
	case CodeNoQuorum:
		return ErrNoQuorum
	case CodeStale:
		return ErrStale
	default:
		return ErrInternal
	}
}

// Permanent reports whether the code marks a failure that retrying the
// identical request cannot fix.
func (c Code) Permanent() bool { return c == CodeNotFound || c == CodeBadRequest }

// errorResponse builds the wire form of err.
func errorResponse(err error) Response {
	return Response{Code: CodeFor(err), Err: err.Error()}
}

// AsError converts an error response into a Go error that wraps the code's
// canonical sentinel, so callers test with errors.Is(err, gns.ErrNotFound)
// instead of matching strings. A response with OK set returns nil.
func (r Response) AsError() error {
	if r.OK {
		return nil
	}
	sent := r.Code.sentinel()
	detail := strings.TrimPrefix(r.Err, sent.Error())
	detail = strings.TrimPrefix(detail, ": ")
	if detail == "" {
		return sent
	}
	return fmt.Errorf("%w: %s", sent, detail)
}
