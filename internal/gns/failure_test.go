package gns

import (
	"errors"
	"testing"

	"locind/internal/netaddr"
)

// failure_test.go covers the Service's failure edges: total replica loss,
// quorum loss between two updates, convergence by Repair after staggered
// fail/recover, and idempotent recovery.

func failAll(s *Service) {
	for i := 0; i < s.NumReplicas(); i++ {
		s.Fail(i)
	}
}

func TestAllReplicasFailed(t *testing.T) {
	s, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	addr := []netaddr.Addr{netaddr.MustParseAddr("10.0.0.1")}
	if _, err := s.Update("n", addr); err != nil {
		t.Fatal(err)
	}
	failAll(s)
	if _, err := s.Update("n", addr); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("update with every replica down: %v, want ErrNoQuorum", err)
	}
	if _, err := s.Lookup("n"); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("lookup with every replica down: %v, want ErrNoQuorum", err)
	}
	// Full recovery restores service with the pre-outage binding intact.
	for i := 0; i < s.NumReplicas(); i++ {
		s.Recover(i)
	}
	rec, err := s.Lookup("n")
	if err != nil || rec.Addrs[0] != addr[0] {
		t.Fatalf("post-recovery lookup: %+v err=%v", rec, err)
	}
}

func TestQuorumLossMidUpdate(t *testing.T) {
	s, err := New(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	a1 := []netaddr.Addr{netaddr.MustParseAddr("10.0.0.1")}
	a2 := []netaddr.Addr{netaddr.MustParseAddr("10.0.0.2")}
	if _, err := s.Update("n", a1); err != nil {
		t.Fatal(err)
	}

	// Quorum vanishes between the two updates: the second one must fail,
	// and the minority replica that absorbed it holds a version no majority
	// committed.
	members := s.ReplicasFor("n")
	s.Fail(members[0])
	s.Fail(members[1])
	if _, err := s.Update("n", a2); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("mid-outage update: %v, want ErrNoQuorum", err)
	}

	// After recovery the failed update's residue must not be able to serve
	// alongside the committed state unrepaired: Repair converges every
	// replica onto the newest version present, and a subsequent committed
	// update supersedes it everywhere.
	s.Recover(members[0])
	s.Recover(members[1])
	repaired := s.Repair()
	if repaired == 0 {
		t.Fatal("repair found nothing after a minority-only write")
	}
	rec, err := s.Lookup("n")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Addrs[0] != a2[0] {
		// The residue carried the highest version, so repair promoted it —
		// the uncommitted write became durable rather than lost, which is
		// the documented anti-entropy semantic (newest version wins).
		t.Fatalf("post-repair binding %v, want the repaired residue %v", rec.Addrs, a2)
	}
	if s.Repair() != 0 {
		t.Fatal("second repair pass found work — not converged")
	}
}

func TestRepairAfterStaggeredFailRecover(t *testing.T) {
	s, err := New(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "b", "c", "d", "e", "f"}
	v1 := []netaddr.Addr{netaddr.MustParseAddr("10.1.0.1")}
	v2 := []netaddr.Addr{netaddr.MustParseAddr("10.1.0.2")}
	v3 := []netaddr.Addr{netaddr.MustParseAddr("10.1.0.3")}
	for _, n := range names {
		if _, err := s.Update(n, v1); err != nil {
			t.Fatal(err)
		}
	}

	// Staggered outages: replica 0 misses round two, replica 1 misses round
	// three — different replicas lag by different amounts.
	s.Fail(0)
	for _, n := range names {
		if _, err := s.Update(n, v2); err != nil {
			t.Fatal(err)
		}
	}
	s.Recover(0)
	s.Fail(1)
	for _, n := range names {
		if _, err := s.Update(n, v3); err != nil {
			t.Fatal(err)
		}
	}
	s.Recover(1)

	s.Repair()
	// Every name now reads the final round from any quorum.
	for _, n := range names {
		rec, err := s.Lookup(n)
		if err != nil || rec.Addrs[0] != v3[0] {
			t.Fatalf("lookup %q after staggered repair: %+v err=%v", n, rec, err)
		}
	}
	if s.Repair() != 0 {
		t.Fatal("repair not idempotent after staggered outages")
	}
}

func TestDoubleRecoverIdempotent(t *testing.T) {
	s, err := New(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	addr := []netaddr.Addr{netaddr.MustParseAddr("10.2.0.1")}
	if _, err := s.Update("n", addr); err != nil {
		t.Fatal(err)
	}
	s.Fail(1)
	s.Fail(1) // double fail: no-op
	if _, err := s.Update("n", addr); err != nil {
		t.Fatalf("quorum of 2/3 should still commit: %v", err)
	}
	s.Recover(1)
	s.Recover(1) // double recover: no-op, state unchanged
	rec, err := s.Lookup("n")
	if err != nil || rec.Addrs[0] != addr[0] {
		t.Fatalf("lookup after double recover: %+v err=%v", rec, err)
	}
	// Repair after the idempotent recover converges the lagged replica
	// exactly once; repeating the recover must not resurface work.
	s.Repair()
	if s.Repair() != 0 {
		t.Fatal("double recover resurfaced repair work")
	}
}
