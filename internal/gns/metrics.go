package gns

import (
	"time"

	"locind/internal/obs"
)

// ServerMetrics instruments the UDP serve loop. All handles are nil-safe,
// so a Server without metrics (the default) records nothing and pays only
// a pointer check per datagram.
type ServerMetrics struct {
	// Requests counts every datagram handled, including rejects.
	Requests *obs.Counter
	// Lookups and Updates count the dispatched request kinds.
	Lookups *obs.Counter
	Updates *obs.Counter
	// Errors counts requests answered with a structured error.
	Errors *obs.Counter
	// Inflight tracks requests currently being handled.
	Inflight *obs.Gauge
	// Latency is the handling latency distribution, in seconds.
	Latency *obs.Histogram
	// Clock supplies the timestamps for Latency. It is injected by the
	// binaries — internal packages take no wall-clock reads, so the
	// determinism analyzer stays clean. Nil leaves Latency unobserved and
	// the serve path clock-free.
	Clock func() time.Duration
	// Tracer, when non-nil, records one serve-side span per dispatched
	// request, parented onto the originating client span via the request's
	// Trace field. Nil traces nothing.
	Tracer *obs.Tracer
}

// NewServerMetrics registers the gns server families on reg. A nil
// registry yields all-nil handles.
func NewServerMetrics(reg *obs.Registry) *ServerMetrics {
	return &ServerMetrics{
		Requests: reg.Counter("locind_gns_requests_total", "datagrams handled"),
		Lookups:  reg.Counter("locind_gns_lookups_total", "lookup requests dispatched"),
		Updates:  reg.Counter("locind_gns_updates_total", "update requests dispatched"),
		Errors:   reg.Counter("locind_gns_errors_total", "requests answered with an error"),
		Inflight: reg.Gauge("locind_gns_inflight_requests", "requests currently being handled"),
		Latency:  reg.Histogram("locind_gns_request_seconds", "request handling latency in seconds", obs.DefBuckets),
	}
}

// noServerMetrics backs servers without metrics so the hot path never
// branches per handle; its nil fields make every record a no-op.
var noServerMetrics = &ServerMetrics{}

func (s *Server) m() *ServerMetrics {
	if s.metrics == nil {
		return noServerMetrics
	}
	return s.metrics
}
