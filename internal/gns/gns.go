// Package gns implements the extra-network name-resolution service that the
// name-resolution architecture of §2 depends on (DNS today, or a
// next-generation global name service like MobilityFirst's GNS [49]): a
// replicated name→addresses store where a mobility event costs exactly one
// update, absorbed by a horizontally scaled service instead of the routing
// fabric.
//
// Names are placed on K of N replicas by rendezvous (highest-random-weight)
// hashing; updates require a majority of a name's replica set and carry
// monotonically increasing versions; lookups read the newest version among
// reachable replicas. Replica failures can be injected to exercise quorum
// behaviour. A UDP front end (server.go) exposes the service the way a
// resolver would see it.
package gns

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"locind/internal/netaddr"
)

// Record is one name binding.
type Record struct {
	Name    string
	Addrs   []netaddr.Addr
	Version uint64
	// Stale marks a binding served from a last-known-good cache while the
	// authoritative service was unreachable — the degraded operating mode.
	// A fresh resolution always has Stale false.
	Stale bool
}

// Service is the replicated resolution service.
type Service struct {
	replicas []*replica
	k        int

	mu      sync.Mutex
	nextVer uint64
	updates uint64
	lookups uint64
}

type replica struct {
	mu   sync.Mutex
	down bool
	recs map[string]Record
}

// New creates a service with n replicas, each name stored on k of them.
func New(n, k int) (*Service, error) {
	if n < 1 || k < 1 || k > n {
		return nil, fmt.Errorf("gns: bad replication (n=%d, k=%d)", n, k)
	}
	s := &Service{k: k}
	for i := 0; i < n; i++ {
		s.replicas = append(s.replicas, &replica{recs: map[string]Record{}})
	}
	return s, nil
}

// NumReplicas returns the replica count.
func (s *Service) NumReplicas() int { return len(s.replicas) }

// Fail marks replica i unreachable; Recover brings it back (it will be
// repaired lazily by subsequent updates).
func (s *Service) Fail(i int) {
	r := s.replicas[i]
	r.mu.Lock()
	r.down = true
	r.mu.Unlock()
}

// Recover brings replica i back online.
func (s *Service) Recover(i int) {
	r := s.replicas[i]
	r.mu.Lock()
	r.down = false
	r.mu.Unlock()
}

// ReplicasFor returns the k replica indices responsible for name, in
// rendezvous-hash order (stable under replica-set growth: adding a replica
// moves only the names it wins).
func (s *Service) ReplicasFor(name string) []int {
	type weight struct {
		idx int
		w   uint64
	}
	ws := make([]weight, len(s.replicas))
	for i := range s.replicas {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%d", name, i)
		ws[i] = weight{idx: i, w: h.Sum64()}
	}
	sort.Slice(ws, func(a, b int) bool {
		if ws[a].w != ws[b].w {
			return ws[a].w > ws[b].w
		}
		return ws[a].idx < ws[b].idx
	})
	out := make([]int, s.k)
	for i := 0; i < s.k; i++ {
		out[i] = ws[i].idx
	}
	return out
}

func majority(k int) int { return k/2 + 1 }

// Update installs a new binding for name, succeeding iff a majority of the
// name's replica set is reachable. It returns the new version.
func (s *Service) Update(name string, addrs []netaddr.Addr) (uint64, error) {
	s.mu.Lock()
	s.nextVer++
	ver := s.nextVer
	s.updates++
	s.mu.Unlock()

	rec := Record{Name: name, Addrs: append([]netaddr.Addr(nil), addrs...), Version: ver}
	acks := 0
	for _, idx := range s.ReplicasFor(name) {
		r := s.replicas[idx]
		r.mu.Lock()
		if !r.down {
			if cur, ok := r.recs[name]; !ok || cur.Version < ver {
				r.recs[name] = rec
			}
			acks++
		}
		r.mu.Unlock()
	}
	if acks < majority(s.k) {
		return 0, fmt.Errorf("%w: %d/%d acks for %q", ErrNoQuorum, acks, s.k, name)
	}
	return ver, nil
}

// Lookup resolves name, reading from a majority of its replica set and
// returning the newest version seen (so a lookup never observes a binding
// older than the last majority-committed update).
func (s *Service) Lookup(name string) (Record, error) {
	s.mu.Lock()
	s.lookups++
	s.mu.Unlock()

	var best Record
	found := false
	reached := 0
	for _, idx := range s.ReplicasFor(name) {
		r := s.replicas[idx]
		r.mu.Lock()
		if !r.down {
			reached++
			if rec, ok := r.recs[name]; ok && (!found || rec.Version > best.Version) {
				best = rec
				found = true
			}
		}
		r.mu.Unlock()
		if reached >= majority(s.k) {
			break
		}
	}
	if reached < majority(s.k) {
		return Record{}, fmt.Errorf("%w: reached %d/%d replicas for %q", ErrNoQuorum, reached, s.k, name)
	}
	if !found {
		return Record{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return best, nil
}

// Stats returns the number of updates and lookups served — the quantities
// behind the paper's point that this aggregate load is "straightforward to
// handle by distributing it across a large number of DNS servers".
func (s *Service) Stats() (updates, lookups uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.updates, s.lookups
}

// LoadPerReplica estimates each replica's share of a global update load of
// eventsPerSec, assuming names spread evenly: k/n of the events land on any
// given replica.
func (s *Service) LoadPerReplica(eventsPerSec float64) float64 {
	return eventsPerSec * float64(s.k) / float64(len(s.replicas))
}

// Repair runs one anti-entropy pass: for every name any replica knows, the
// newest version among reachable members of its replica set is written back
// to every reachable member that lags. It returns the number of
// replica-records repaired. Recovered replicas call this to catch up on
// updates they missed while down.
func (s *Service) Repair() int {
	// Collect the union of known names.
	names := map[string]bool{}
	for _, r := range s.replicas {
		r.mu.Lock()
		if !r.down {
			for n := range r.recs {
				names[n] = true
			}
		}
		r.mu.Unlock()
	}
	repaired := 0
	for name := range names {
		var best Record
		found := false
		members := s.ReplicasFor(name)
		for _, idx := range members {
			r := s.replicas[idx]
			r.mu.Lock()
			if !r.down {
				if rec, ok := r.recs[name]; ok && (!found || rec.Version > best.Version) {
					best = rec
					found = true
				}
			}
			r.mu.Unlock()
		}
		if !found {
			continue
		}
		for _, idx := range members {
			r := s.replicas[idx]
			r.mu.Lock()
			if !r.down {
				if cur, ok := r.recs[name]; !ok || cur.Version < best.Version {
					r.recs[name] = best
					repaired++
				}
			}
			r.mu.Unlock()
		}
	}
	return repaired
}
