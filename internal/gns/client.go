package gns

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"locind/internal/netaddr"
	"locind/internal/obs"
	"locind/internal/reliable"
)

// Exchange performs one request/response datagram exchange with the server
// at addr under policy p: each attempt dials, writes the request, and waits
// for a reply within the attempt's deadline. A structured error response is
// converted into its sentinel error (wire.go); permanent codes (not-found,
// bad-request) come back wrapped in reliable.Permanent so the retry loop
// stops immediately instead of burning its budget re-sending a request the
// server has already authoritatively rejected. The attempt count made is
// returned alongside.
//
// Exchange is the shared transport leg of gns.Client and the cluster
// client; req.Trace should already carry the caller's span context.
func Exchange(ctx context.Context, addr string, req Request, p reliable.Policy) (Response, int, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return Response{}, 0, err
	}
	var resp Response
	attempts, err := p.Do(ctx, func(ctx context.Context) error {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "udp", addr)
		if err != nil {
			return err
		}
		defer conn.Close()
		if dl, ok := ctx.Deadline(); ok {
			conn.SetDeadline(dl) //nolint:errcheck
		}
		if _, err := conn.Write(payload); err != nil {
			return err
		}
		buf := make([]byte, maxDatagram+1)
		n, err := conn.Read(buf)
		if err != nil {
			return err
		}
		var r Response
		if err := json.Unmarshal(buf[:n], &r); err != nil {
			return err
		}
		if !r.OK {
			wireErr := r.AsError()
			if r.Code.Permanent() {
				return reliable.Permanent(wireErr)
			}
			// Transient server-side failures (quorum loss, internal
			// errors) re-enter the retry loop: replicas recover.
			return wireErr
		}
		resp = r
		return nil
	})
	if err != nil {
		return Response{}, attempts, err
	}
	return resp, attempts, nil
}

// Client is the resolver side of the UDP protocol. Datagrams vanish on
// lossy paths, so every round trip runs under a reliable.Policy:
// per-attempt timeouts, exponential backoff with deterministic jitter, an
// optional shared retry budget, and — for lookups — graceful degradation to
// the last known binding when the network stays down (the stale-mapping
// operating regime of loc/ID caches).
type Client struct {
	ServerAddr string
	// Timeout bounds each attempt (dial + round trip).
	Timeout time.Duration
	// Retries is how many extra attempts follow a failed one.
	Retries int
	// Backoff schedules pauses between attempts.
	Backoff reliable.Backoff
	// Rand supplies backoff jitter; nil disables jitter. Chaos tests seed
	// this for reproducible retry schedules.
	Rand *rand.Rand
	// Budget, when non-nil, caps retries across all calls on this client.
	Budget *reliable.Budget
	// Sleep overrides the inter-attempt wait (virtual clock hook).
	Sleep func(ctx context.Context, d time.Duration) error
	// AllowStale serves the last successfully resolved binding when a
	// lookup exhausts its retries, marking the Record's provenance via
	// Record.Stale and the StaleServed counter. An authoritative not-found
	// is never masked by a stale answer.
	AllowStale bool
	// Metrics, when non-nil, counts the retry loop's activity (attempts,
	// retries, backoff, give-ups) into obs handles.
	Metrics *reliable.Metrics
	// Tracer, when non-nil, records one request span per Lookup/Update with
	// per-attempt child spans, and propagates the span's TraceContext in
	// the request framing so server-side spans parent onto it. When the
	// caller's ctx already carries a span (obs.ContextWith), the request
	// span nests under that instead of starting a new trace.
	Tracer *obs.Tracer

	cache    reliable.Cache[string, Record]
	attempts atomic.Int64
	stale    atomic.Int64
}

// NewClient builds a client with sane defaults: 500ms per attempt, 3
// retries, exponential backoff from 50ms capped at 1s.
func NewClient(serverAddr string) *Client {
	return &Client{
		ServerAddr: serverAddr,
		Timeout:    500 * time.Millisecond,
		Retries:    3,
		Backoff:    reliable.Backoff{Base: 50 * time.Millisecond, Max: time.Second},
	}
}

// BoundStaleCache caps the last-known-good cache at limit entries with
// epoch-flush eviction, counting flushed entries into ctr (which may be
// nil) — million-name runs must not grow the fallback map without limit.
func (c *Client) BoundStaleCache(limit int, ctr *obs.Counter) {
	c.cache.Bound(limit, ctr)
}

// StaleCacheEvictions reports how many cached bindings epoch flushes have
// dropped.
func (c *Client) StaleCacheEvictions() int64 { return c.cache.Evictions() }

func (c *Client) policy(span *obs.Span) reliable.Policy {
	return reliable.Policy{
		MaxAttempts: c.Retries + 1,
		PerAttempt:  c.Timeout,
		Backoff:     c.Backoff,
		Rand:        c.Rand,
		Budget:      c.Budget,
		Sleep:       c.Sleep,
		Metrics:     c.Metrics,
		TraceSpan:   span,
	}
}

// startSpan opens the request span for one client call: a child of the
// span carried by ctx when there is one (so gns traffic nests under the
// driving experiment), else a fresh root on c.Tracer. Nil when tracing is
// off on both paths.
func (c *Client) startSpan(ctx context.Context, name string, labels ...string) *obs.Span {
	if parent := obs.FromContext(ctx); parent != nil {
		return parent.Child(name, labels...)
	}
	return c.Tracer.Start(name, labels...)
}

func (c *Client) roundTrip(ctx context.Context, req Request, span *obs.Span) (Response, error) {
	req.Trace = span.Context().Encode()
	resp, attempts, err := Exchange(ctx, c.ServerAddr, req, c.policy(span))
	c.attempts.Add(int64(attempts))
	if err != nil {
		if reliable.IsPermanent(err) {
			// The server answered; the answer is authoritative.
			return Response{}, err
		}
		return Response{}, fmt.Errorf("gns: no response after %d attempts: %w", attempts, err)
	}
	return resp, nil
}

// Attempts returns the total number of network attempts this client has
// made — the quantity chaos tests compare across same-seed runs.
func (c *Client) Attempts() int64 { return c.attempts.Load() }

// StaleServed returns how many lookups were answered from the stale cache.
func (c *Client) StaleServed() int64 { return c.stale.Load() }

// Lookup resolves a name over UDP. ctx bounds the whole retry loop; each
// attempt is additionally capped by c.Timeout. With AllowStale set, a
// lookup that exhausts its retries degrades to the last binding this
// client resolved successfully, flagged Record.Stale (StaleServed counts
// such answers). A permanent wire error — the name authoritatively does
// not exist, or the request was malformed — is returned as-is: it is an
// answer, not an outage.
func (c *Client) Lookup(ctx context.Context, name string) (Record, error) {
	span := c.startSpan(ctx, "gns-lookup", "name", name)
	defer span.End()
	resp, err := c.roundTrip(ctx, Request{Op: "lookup", Name: name}, span)
	if err != nil {
		if c.AllowStale && !reliable.IsPermanent(err) {
			if rec, ok := c.cache.Get(name); ok {
				rec.Stale = true
				c.stale.Add(1)
				return rec, nil
			}
		}
		return Record{}, err
	}
	rec := Record{Name: resp.Name, Version: resp.Version}
	for _, sa := range resp.Addrs {
		a, err := netaddr.ParseAddr(sa)
		if err != nil {
			return Record{}, err
		}
		rec.Addrs = append(rec.Addrs, a)
	}
	c.cache.Put(name, rec)
	return rec, nil
}

// Update installs a binding over UDP. ctx bounds the whole retry loop.
func (c *Client) Update(ctx context.Context, name string, addrs []netaddr.Addr) (uint64, error) {
	span := c.startSpan(ctx, "gns-update", "name", name)
	defer span.End()
	req := Request{Op: "update", Name: name}
	for _, a := range addrs {
		req.Addrs = append(req.Addrs, a.String())
	}
	resp, err := c.roundTrip(ctx, req, span)
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}
