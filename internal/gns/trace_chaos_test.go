package gns

import (
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"locind/internal/faultnet"
	"locind/internal/obs"
	"locind/internal/reliable"
)

// chromeSpan is the subset of a Chrome trace_event entry the causal-tree
// walk needs.
type chromeSpan struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

func exportChrome(t *testing.T, tr *obs.Tracer) []chromeSpan {
	t.Helper()
	var b strings.Builder
	tr.WriteChrome(&b)
	var doc struct {
		TraceEvents []chromeSpan `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, b.String())
	}
	return doc.TraceEvents
}

// TestChaosLookupCausalTree is the cross-process tracing acceptance test:
// one chaos-degraded lookup must export as ONE causal tree in which the
// per-attempt retry spans and the server-side handling spans all parent
// onto the client request span — the walk below reads only the exported
// Chrome trace JSON, exactly what an operator sees in the viewer.
func TestChaosLookupCausalTree(t *testing.T) {
	svc, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	env := faultnet.NewEnv(3)
	env.SetSleep(func(time.Duration) {})
	// Client, server, and fault injector share one tracer: the test stands
	// in for two processes whose exports have been merged, which is what a
	// shared collection endpoint would do.
	tr := obs.NewTracer(42, 4096)
	env.SetTracer(tr)
	sm := NewServerMetrics(nil)
	sm.Tracer = tr
	faults := faultnet.PacketFaults{Drop: 0.4}
	srv := ServePacketConnObserved(context.Background(), svc, faultnet.WrapPacketConn(pc, env, faults, faults), sm)
	defer srv.Close()

	c := NewClient(srv.Addr())
	c.Timeout = 15 * time.Millisecond
	c.Retries = 15
	c.Backoff = reliable.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond, Jitter: 0.5}
	c.Rand = rand.New(rand.NewSource(3))
	c.Sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	c.Tracer = tr

	ctx := context.Background()
	if _, err := c.Update(ctx, "alice.phone", addrs("10.0.0.1")); err != nil {
		t.Fatalf("update under chaos: %v", err)
	}
	if _, err := c.Lookup(ctx, "alice.phone"); err != nil {
		t.Fatalf("lookup under chaos: %v", err)
	}

	events := exportChrome(t, tr)

	// Find the client lookup request span; it roots its own trace.
	var req chromeSpan
	for _, ev := range events {
		if ev.Name == "gns-lookup" {
			req = ev
		}
	}
	if req.Args == nil {
		t.Fatalf("no gns-lookup span in export: %+v", events)
	}
	if req.Args["trace"] != req.Args["id"] {
		t.Fatalf("lookup span must root its own trace: %+v", req.Args)
	}
	if _, hasParent := req.Args["parent"]; hasParent {
		t.Fatalf("lookup span must be a root: %+v", req.Args)
	}

	// Walk every span of the lookup's trace: each must be the request span
	// itself or parent directly onto it — one tree, one root.
	var attempts, serves int
	for _, ev := range events {
		if ev.Args["trace"] != req.Args["trace"] {
			continue
		}
		if ev.Args["id"] == req.Args["id"] {
			continue
		}
		if ev.Args["parent"] != req.Args["id"] {
			t.Fatalf("span %q escaped the causal tree (parent %q, want %q)",
				ev.Name, ev.Args["parent"], req.Args["id"])
		}
		if ev.Tid != req.Tid {
			t.Fatalf("span %q rendered on lane %d, request on %d", ev.Name, ev.Tid, req.Tid)
		}
		switch ev.Name {
		case "attempt":
			attempts++
		case "gns-serve":
			serves++
			if ev.Args["label_op"] != "lookup" || ev.Args["label_name"] != "alice.phone" {
				t.Fatalf("serve span labels wrong: %+v", ev.Args)
			}
		default:
			t.Fatalf("unexpected span %q in lookup trace", ev.Name)
		}
	}
	// Drop=0.4 under this seed forces retransmission: the tree must show
	// several client attempts, and at least one server-side handling span
	// parented onto the client request span across those retries.
	if attempts < 2 {
		t.Fatalf("expected the lookup to retry under 40%% drop, saw %d attempts", attempts)
	}
	if serves < 1 {
		t.Fatalf("no server-side span joined the client's causal tree (attempts=%d)", attempts)
	}

	// The same structure must hold in the assembled tree form.
	var reqID uint64
	if _, err := fmtSscanHex(req.Args["id"], &reqID); err != nil {
		t.Fatalf("bad span id %q: %v", req.Args["id"], err)
	}
	for _, root := range obs.BuildTree(tr.Spans()) {
		if root.ID == reqID && len(root.Children) != attempts+serves {
			t.Fatalf("assembled tree has %d children, chrome walk saw %d",
				len(root.Children), attempts+serves)
		}
	}

	// Determinism leg: the same seeds replay to byte-identical Chrome JSON
	// except for timing fields — with no clock injected, timing is zero and
	// the export is byte-identical outright. Structure is asserted above;
	// here it is enough that fault spans recorded in trace order.
	faultSpans := 0
	for _, ev := range events {
		if ev.Name == "faultnet" {
			faultSpans++
		}
	}
	if faultSpans != len(env.Trace()) {
		t.Fatalf("fault spans (%d) out of step with the fault trace (%d)", faultSpans, len(env.Trace()))
	}
}

// fmtSscanHex parses a 16-digit hex span ID.
func fmtSscanHex(s string, out *uint64) (int, error) {
	var v uint64
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			v = v<<4 | uint64(r-'0')
		case r >= 'a' && r <= 'f':
			v = v<<4 | uint64(r-'a'+10)
		default:
			return 0, &net.ParseError{Type: "hex", Text: s}
		}
	}
	*out = v
	return 1, nil
}
