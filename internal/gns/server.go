package gns

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"locind/internal/netaddr"
	"locind/internal/obs"
)

// Backend is the resolution store a Server fronts. *Service implements it;
// the cluster package's replica stores implement it too, so one UDP serve
// loop fronts both the single-box service and a cluster replica.
type Backend interface {
	Lookup(name string) (Record, error)
	Update(name string, addrs []netaddr.Addr) (uint64, error)
}

// OpHandler is the extension seam of the wire protocol: a Backend that also
// implements it receives every op the core protocol does not know
// ("vput"/"vget"/"ping" for cluster replication). handled=false falls
// through to the unknown-op rejection.
type OpHandler interface {
	HandleOp(req Request) (resp Response, handled bool)
}

// Server exposes a Backend over UDP, one datagram per request/response —
// the same interaction pattern as DNS. The transport is any
// net.PacketConn, so chaos tests interpose a faultnet wrapper.
type Server struct {
	svc     Backend
	conn    net.PacketConn
	done    chan struct{}
	metrics *ServerMetrics

	closeOnce sync.Once
	closeErr  error
}

// Serve starts a UDP server for svc on addr ("127.0.0.1:0" for tests). It
// returns once the socket is bound; handling proceeds in the background
// until Close is called or ctx is cancelled.
func Serve(ctx context.Context, svc Backend, addr string) (*Server, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, err
	}
	return ServePacketConn(ctx, svc, conn), nil
}

// ServePacketConn serves svc on an already-bound packet transport — the
// seam where fault-injecting wrappers plug in. Cancelling ctx shuts the
// server down as if Close had been called.
func ServePacketConn(ctx context.Context, svc Backend, conn net.PacketConn) *Server {
	return ServePacketConnObserved(ctx, svc, conn, nil)
}

// ServePacketConnObserved is ServePacketConn with serve-loop metrics
// attached; m may be nil for an unobserved server.
func ServePacketConnObserved(ctx context.Context, svc Backend, conn net.PacketConn, m *ServerMetrics) *Server {
	s := &Server{svc: svc, conn: conn, done: make(chan struct{}), metrics: m}
	go s.loop()
	go func() {
		select {
		case <-ctx.Done():
			s.close()
		case <-s.done:
		}
	}()
	return s
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// close tears the transport down exactly once; concurrent Close and ctx
// cancellation must not race a second conn.Close error over the first.
func (s *Server) close() error {
	s.closeOnce.Do(func() { s.closeErr = s.conn.Close() })
	return s.closeErr
}

// Close shuts the server down and waits for the serve loop to exit.
func (s *Server) Close() error {
	err := s.close()
	<-s.done
	return err
}

func (s *Server) loop() {
	defer close(s.done)
	// One byte of headroom: a read that fills past maxDatagram means the
	// peer sent an oversized (or kernel-truncated) request, which gets a
	// structured rejection instead of a silently mangled parse.
	buf := make([]byte, maxDatagram+1)
	m := s.m()
	for {
		n, peer, err := s.conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		m.Requests.Inc()
		m.Inflight.Add(1)
		var start time.Duration
		if m.Clock != nil {
			start = m.Clock()
		}
		var resp Response
		if n > maxDatagram {
			resp = errorResponse(fmt.Errorf("%w: datagram exceeds %d bytes", ErrBadRequest, maxDatagram))
		} else {
			resp = s.handle(buf[:n])
		}
		if resp.Err != "" {
			m.Errors.Inc()
		}
		if m.Clock != nil {
			m.Latency.Observe((m.Clock() - start).Seconds())
		}
		m.Inflight.Add(-1)
		out, err := json.Marshal(resp)
		if err != nil {
			// A response that cannot be marshalled still deserves an
			// answer the client can parse, not a silent drop.
			out = []byte(`{"ok":false,"code":5,"err":"gns: internal marshal failure"}`)
		}
		s.conn.WriteTo(out, peer) //nolint:errcheck // lost replies look like drops; the client retries
	}
}

// handle dispatches one request. A panic in request handling is converted
// into a structured error response so one malformed request can never kill
// the serve loop.
func (s *Server) handle(raw []byte) (resp Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = errorResponse(fmt.Errorf("%w: %v", ErrInternal, r))
		}
	}()
	var req Request
	if err := json.Unmarshal(raw, &req); err != nil {
		return errorResponse(fmt.Errorf("%w: %v", ErrBadRequest, err))
	}
	// Continue the client's trace: the serve span parents onto the client
	// request span named in the wire context (a fresh root when absent or
	// mangled — propagation is best-effort, never a request failure).
	tc, _ := obs.ParseTraceContext(req.Trace)
	span := s.m().Tracer.StartRemote(tc, "gns-serve", "op", req.Op, "name", req.Name)
	defer span.End()
	switch req.Op {
	case "lookup":
		s.m().Lookups.Inc()
		rec, err := s.svc.Lookup(req.Name)
		if err != nil {
			return errorResponse(err)
		}
		out := Response{OK: true, Name: rec.Name, Version: rec.Version}
		for _, a := range rec.Addrs {
			out.Addrs = append(out.Addrs, a.String())
		}
		return out
	case "update":
		s.m().Updates.Inc()
		addrs := make([]netaddr.Addr, 0, len(req.Addrs))
		for _, sa := range req.Addrs {
			a, err := netaddr.ParseAddr(sa)
			if err != nil {
				return errorResponse(fmt.Errorf("%w: bad address: %v", ErrBadRequest, err))
			}
			addrs = append(addrs, a)
		}
		ver, err := s.svc.Update(req.Name, addrs)
		if err != nil {
			return errorResponse(err)
		}
		return Response{OK: true, Name: req.Name, Version: ver}
	default:
		if h, ok := s.svc.(OpHandler); ok {
			if resp, handled := h.HandleOp(req); handled {
				return resp
			}
		}
		return errorResponse(fmt.Errorf("%w: unknown op %q", ErrBadRequest, req.Op))
	}
}
