package gns

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"locind/internal/netaddr"
	"locind/internal/obs"
	"locind/internal/reliable"
)

// Request is a UDP resolution-protocol message.
type Request struct {
	Op    string   `json:"op"` // "lookup" or "update"
	Name  string   `json:"name"`
	Addrs []string `json:"addrs,omitempty"`
	// Trace is the originating client span's obs.TraceContext in Encode
	// form ("<trace-id>-<span-id>"), absent when the client traces nothing.
	// It parents the server-side handling span onto the client request span
	// so both sides assemble into one causal tree; a mangled value is
	// ignored, never an error.
	Trace string `json:"trace,omitempty"`
}

// Response is the UDP reply.
type Response struct {
	OK      bool     `json:"ok"`
	Err     string   `json:"err,omitempty"`
	Name    string   `json:"name,omitempty"`
	Addrs   []string `json:"addrs,omitempty"`
	Version uint64   `json:"version,omitempty"`
}

// maxDatagram bounds request/response sizes.
const maxDatagram = 8192

// Server exposes a Service over UDP, one datagram per request/response —
// the same interaction pattern as DNS. The transport is any
// net.PacketConn, so chaos tests interpose a faultnet wrapper.
type Server struct {
	svc     *Service
	conn    net.PacketConn
	done    chan struct{}
	metrics *ServerMetrics

	closeOnce sync.Once
	closeErr  error
}

// Serve starts a UDP server for svc on addr ("127.0.0.1:0" for tests). It
// returns once the socket is bound; handling proceeds in the background
// until Close is called or ctx is cancelled.
func Serve(ctx context.Context, svc *Service, addr string) (*Server, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, err
	}
	return ServePacketConn(ctx, svc, conn), nil
}

// ServePacketConn serves svc on an already-bound packet transport — the
// seam where fault-injecting wrappers plug in. Cancelling ctx shuts the
// server down as if Close had been called.
func ServePacketConn(ctx context.Context, svc *Service, conn net.PacketConn) *Server {
	return ServePacketConnObserved(ctx, svc, conn, nil)
}

// ServePacketConnObserved is ServePacketConn with serve-loop metrics
// attached; m may be nil for an unobserved server.
func ServePacketConnObserved(ctx context.Context, svc *Service, conn net.PacketConn, m *ServerMetrics) *Server {
	s := &Server{svc: svc, conn: conn, done: make(chan struct{}), metrics: m}
	go s.loop()
	go func() {
		select {
		case <-ctx.Done():
			s.close()
		case <-s.done:
		}
	}()
	return s
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// close tears the transport down exactly once; concurrent Close and ctx
// cancellation must not race a second conn.Close error over the first.
func (s *Server) close() error {
	s.closeOnce.Do(func() { s.closeErr = s.conn.Close() })
	return s.closeErr
}

// Close shuts the server down and waits for the serve loop to exit.
func (s *Server) Close() error {
	err := s.close()
	<-s.done
	return err
}

func (s *Server) loop() {
	defer close(s.done)
	// One byte of headroom: a read that fills past maxDatagram means the
	// peer sent an oversized (or kernel-truncated) request, which gets a
	// structured rejection instead of a silently mangled parse.
	buf := make([]byte, maxDatagram+1)
	m := s.m()
	for {
		n, peer, err := s.conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		m.Requests.Inc()
		m.Inflight.Add(1)
		var start time.Duration
		if m.Clock != nil {
			start = m.Clock()
		}
		var resp Response
		if n > maxDatagram {
			resp = Response{Err: fmt.Sprintf("gns: datagram exceeds %d bytes", maxDatagram)}
		} else {
			resp = s.handle(buf[:n])
		}
		if resp.Err != "" {
			m.Errors.Inc()
		}
		if m.Clock != nil {
			m.Latency.Observe((m.Clock() - start).Seconds())
		}
		m.Inflight.Add(-1)
		out, err := json.Marshal(resp)
		if err != nil {
			// A response that cannot be marshalled still deserves an
			// answer the client can parse, not a silent drop.
			out = []byte(`{"ok":false,"err":"gns: internal marshal failure"}`)
		}
		s.conn.WriteTo(out, peer) //nolint:errcheck // lost replies look like drops; the client retries
	}
}

// handle dispatches one request. A panic in request handling is converted
// into a structured error response so one malformed request can never kill
// the serve loop.
func (s *Server) handle(raw []byte) (resp Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = Response{Err: fmt.Sprintf("gns: internal error: %v", r)}
		}
	}()
	var req Request
	if err := json.Unmarshal(raw, &req); err != nil {
		return Response{Err: "bad request: " + err.Error()}
	}
	// Continue the client's trace: the serve span parents onto the client
	// request span named in the wire context (a fresh root when absent or
	// mangled — propagation is best-effort, never a request failure).
	tc, _ := obs.ParseTraceContext(req.Trace)
	span := s.m().Tracer.StartRemote(tc, "gns-serve", "op", req.Op, "name", req.Name)
	defer span.End()
	switch req.Op {
	case "lookup":
		s.m().Lookups.Inc()
		rec, err := s.svc.Lookup(req.Name)
		if err != nil {
			return Response{Err: err.Error()}
		}
		out := Response{OK: true, Name: rec.Name, Version: rec.Version}
		for _, a := range rec.Addrs {
			out.Addrs = append(out.Addrs, a.String())
		}
		return out
	case "update":
		s.m().Updates.Inc()
		addrs := make([]netaddr.Addr, 0, len(req.Addrs))
		for _, sa := range req.Addrs {
			a, err := netaddr.ParseAddr(sa)
			if err != nil {
				return Response{Err: "bad address: " + err.Error()}
			}
			addrs = append(addrs, a)
		}
		ver, err := s.svc.Update(req.Name, addrs)
		if err != nil {
			return Response{Err: err.Error()}
		}
		return Response{OK: true, Name: req.Name, Version: ver}
	default:
		return Response{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Client is the resolver side of the UDP protocol. Datagrams vanish on
// lossy paths, so every round trip runs under a reliable.Policy:
// per-attempt timeouts, exponential backoff with deterministic jitter, an
// optional shared retry budget, and — for lookups — graceful degradation to
// the last known binding when the network stays down (the stale-mapping
// operating regime of loc/ID caches).
type Client struct {
	ServerAddr string
	// Timeout bounds each attempt (dial + round trip).
	Timeout time.Duration
	// Retries is how many extra attempts follow a failed one.
	Retries int
	// Backoff schedules pauses between attempts.
	Backoff reliable.Backoff
	// Rand supplies backoff jitter; nil disables jitter. Chaos tests seed
	// this for reproducible retry schedules.
	Rand *rand.Rand
	// Budget, when non-nil, caps retries across all calls on this client.
	Budget *reliable.Budget
	// Sleep overrides the inter-attempt wait (virtual clock hook).
	Sleep func(ctx context.Context, d time.Duration) error
	// AllowStale serves the last successfully resolved binding when a
	// lookup exhausts its retries, marking the Record's provenance via
	// StaleServed.
	AllowStale bool
	// Metrics, when non-nil, counts the retry loop's activity (attempts,
	// retries, backoff, give-ups) into obs handles.
	Metrics *reliable.Metrics
	// Tracer, when non-nil, records one request span per Lookup/Update with
	// per-attempt child spans, and propagates the span's TraceContext in
	// the request framing so server-side spans parent onto it. When the
	// caller's ctx already carries a span (obs.ContextWith), the request
	// span nests under that instead of starting a new trace.
	Tracer *obs.Tracer

	cache    reliable.Cache[string, Record]
	attempts atomic.Int64
	stale    atomic.Int64
}

// NewClient builds a client with sane defaults: 500ms per attempt, 3
// retries, exponential backoff from 50ms capped at 1s.
func NewClient(serverAddr string) *Client {
	return &Client{
		ServerAddr: serverAddr,
		Timeout:    500 * time.Millisecond,
		Retries:    3,
		Backoff:    reliable.Backoff{Base: 50 * time.Millisecond, Max: time.Second},
	}
}

func (c *Client) policy(span *obs.Span) reliable.Policy {
	return reliable.Policy{
		MaxAttempts: c.Retries + 1,
		PerAttempt:  c.Timeout,
		Backoff:     c.Backoff,
		Rand:        c.Rand,
		Budget:      c.Budget,
		Sleep:       c.Sleep,
		Metrics:     c.Metrics,
		TraceSpan:   span,
	}
}

// startSpan opens the request span for one client call: a child of the
// span carried by ctx when there is one (so gns traffic nests under the
// driving experiment), else a fresh root on c.Tracer. Nil when tracing is
// off on both paths.
func (c *Client) startSpan(ctx context.Context, name string, labels ...string) *obs.Span {
	if parent := obs.FromContext(ctx); parent != nil {
		return parent.Child(name, labels...)
	}
	return c.Tracer.Start(name, labels...)
}

func (c *Client) roundTrip(ctx context.Context, req Request, span *obs.Span) (Response, error) {
	req.Trace = span.Context().Encode()
	payload, err := json.Marshal(req)
	if err != nil {
		return Response{}, err
	}
	var resp Response
	attempts, err := c.policy(span).Do(ctx, func(ctx context.Context) error {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "udp", c.ServerAddr)
		if err != nil {
			return err
		}
		defer conn.Close()
		if dl, ok := ctx.Deadline(); ok {
			conn.SetDeadline(dl) //nolint:errcheck
		}
		if _, err := conn.Write(payload); err != nil {
			return err
		}
		buf := make([]byte, maxDatagram+1)
		n, err := conn.Read(buf)
		if err != nil {
			return err
		}
		var r Response
		if err := json.Unmarshal(buf[:n], &r); err != nil {
			return err
		}
		resp = r
		return nil
	})
	c.attempts.Add(int64(attempts))
	if err != nil {
		return Response{}, fmt.Errorf("gns: no response after %d attempts: %w", attempts, err)
	}
	return resp, nil
}

// Attempts returns the total number of network attempts this client has
// made — the quantity chaos tests compare across same-seed runs.
func (c *Client) Attempts() int64 { return c.attempts.Load() }

// StaleServed returns how many lookups were answered from the stale cache.
func (c *Client) StaleServed() int64 { return c.stale.Load() }

// Lookup resolves a name over UDP. ctx bounds the whole retry loop; each
// attempt is additionally capped by c.Timeout. With AllowStale set, a
// lookup that exhausts its retries degrades to the last binding this
// client resolved successfully (StaleServed counts such answers).
func (c *Client) Lookup(ctx context.Context, name string) (Record, error) {
	span := c.startSpan(ctx, "gns-lookup", "name", name)
	defer span.End()
	resp, err := c.roundTrip(ctx, Request{Op: "lookup", Name: name}, span)
	if err != nil {
		if c.AllowStale {
			if rec, ok := c.cache.Get(name); ok {
				c.stale.Add(1)
				return rec, nil
			}
		}
		return Record{}, err
	}
	if !resp.OK {
		return Record{}, fmt.Errorf("gns: lookup %q: %s", name, resp.Err)
	}
	rec := Record{Name: resp.Name, Version: resp.Version}
	for _, sa := range resp.Addrs {
		a, err := netaddr.ParseAddr(sa)
		if err != nil {
			return Record{}, err
		}
		rec.Addrs = append(rec.Addrs, a)
	}
	c.cache.Put(name, rec)
	return rec, nil
}

// Update installs a binding over UDP. ctx bounds the whole retry loop.
func (c *Client) Update(ctx context.Context, name string, addrs []netaddr.Addr) (uint64, error) {
	span := c.startSpan(ctx, "gns-update", "name", name)
	defer span.End()
	req := Request{Op: "update", Name: name}
	for _, a := range addrs {
		req.Addrs = append(req.Addrs, a.String())
	}
	resp, err := c.roundTrip(ctx, req, span)
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, fmt.Errorf("gns: update %q: %s", name, resp.Err)
	}
	return resp.Version, nil
}
