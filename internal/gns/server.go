package gns

import (
	"encoding/json"
	"fmt"
	"net"
	"time"

	"locind/internal/netaddr"
)

// Request is a UDP resolution-protocol message.
type Request struct {
	Op    string   `json:"op"` // "lookup" or "update"
	Name  string   `json:"name"`
	Addrs []string `json:"addrs,omitempty"`
}

// Response is the UDP reply.
type Response struct {
	OK      bool     `json:"ok"`
	Err     string   `json:"err,omitempty"`
	Name    string   `json:"name,omitempty"`
	Addrs   []string `json:"addrs,omitempty"`
	Version uint64   `json:"version,omitempty"`
}

// maxDatagram bounds request/response sizes.
const maxDatagram = 8192

// Server exposes a Service over UDP, one datagram per request/response —
// the same interaction pattern as DNS.
type Server struct {
	svc  *Service
	conn *net.UDPConn
	done chan struct{}
}

// Serve starts a UDP server for svc on addr ("127.0.0.1:0" for tests). It
// returns once the socket is bound; handling proceeds in the background
// until Close.
func Serve(svc *Service, addr string) (*Server, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	s := &Server{svc: svc, conn: conn, done: make(chan struct{})}
	go s.loop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// Close shuts the server down.
func (s *Server) Close() error {
	err := s.conn.Close()
	<-s.done
	return err
}

func (s *Server) loop() {
	defer close(s.done)
	buf := make([]byte, maxDatagram)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		resp := s.handle(buf[:n])
		out, err := json.Marshal(resp)
		if err != nil {
			continue
		}
		s.conn.WriteToUDP(out, peer) //nolint:errcheck // lost replies look like drops; the client retries
	}
}

func (s *Server) handle(raw []byte) Response {
	var req Request
	if err := json.Unmarshal(raw, &req); err != nil {
		return Response{Err: "bad request: " + err.Error()}
	}
	switch req.Op {
	case "lookup":
		rec, err := s.svc.Lookup(req.Name)
		if err != nil {
			return Response{Err: err.Error()}
		}
		out := Response{OK: true, Name: rec.Name, Version: rec.Version}
		for _, a := range rec.Addrs {
			out.Addrs = append(out.Addrs, a.String())
		}
		return out
	case "update":
		addrs := make([]netaddr.Addr, 0, len(req.Addrs))
		for _, sa := range req.Addrs {
			a, err := netaddr.ParseAddr(sa)
			if err != nil {
				return Response{Err: "bad address: " + err.Error()}
			}
			addrs = append(addrs, a)
		}
		ver, err := s.svc.Update(req.Name, addrs)
		if err != nil {
			return Response{Err: err.Error()}
		}
		return Response{OK: true, Name: req.Name, Version: ver}
	default:
		return Response{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Client is the resolver side of the UDP protocol, with timeout and retry
// (UDP datagrams may be dropped).
type Client struct {
	ServerAddr string
	Timeout    time.Duration
	Retries    int
}

// NewClient builds a client with sane defaults.
func NewClient(serverAddr string) *Client {
	return &Client{ServerAddr: serverAddr, Timeout: 500 * time.Millisecond, Retries: 3}
}

func (c *Client) roundTrip(req Request) (Response, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return Response{}, err
	}
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		conn, err := net.Dial("udp", c.ServerAddr)
		if err != nil {
			return Response{}, err
		}
		conn.SetDeadline(time.Now().Add(c.Timeout)) //nolint:errcheck
		if _, err := conn.Write(payload); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		buf := make([]byte, maxDatagram)
		n, err := conn.Read(buf)
		conn.Close()
		if err != nil {
			lastErr = err
			continue
		}
		var resp Response
		if err := json.Unmarshal(buf[:n], &resp); err != nil {
			lastErr = err
			continue
		}
		return resp, nil
	}
	return Response{}, fmt.Errorf("gns: no response after %d attempts: %w", c.Retries+1, lastErr)
}

// Lookup resolves a name over UDP.
func (c *Client) Lookup(name string) (Record, error) {
	resp, err := c.roundTrip(Request{Op: "lookup", Name: name})
	if err != nil {
		return Record{}, err
	}
	if !resp.OK {
		return Record{}, fmt.Errorf("gns: lookup %q: %s", name, resp.Err)
	}
	rec := Record{Name: resp.Name, Version: resp.Version}
	for _, sa := range resp.Addrs {
		a, err := netaddr.ParseAddr(sa)
		if err != nil {
			return Record{}, err
		}
		rec.Addrs = append(rec.Addrs, a)
	}
	return rec, nil
}

// Update installs a binding over UDP.
func (c *Client) Update(name string, addrs []netaddr.Addr) (uint64, error) {
	req := Request{Op: "update", Name: name}
	for _, a := range addrs {
		req.Addrs = append(req.Addrs, a.String())
	}
	resp, err := c.roundTrip(req)
	if err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, fmt.Errorf("gns: update %q: %s", name, resp.Err)
	}
	return resp.Version, nil
}
