package bgp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"locind/internal/asgraph"
	"locind/internal/netaddr"
)

// randRoute draws routes with small attribute ranges so ties at every rank
// level actually occur.
func randRoute(rng *rand.Rand) Route {
	pathLen := 1 + rng.Intn(4)
	path := make([]int, pathLen+1)
	for i := range path {
		path[i] = rng.Intn(50)
	}
	return Route{
		Prefix:    netaddr.MakePrefix(netaddr.Addr(rng.Uint32()), 16),
		NextHop:   path[0],
		LocalPref: rng.Intn(3),
		MED:       rng.Intn(3),
		ASPath:    path,
		Rel:       asgraph.Rel(rng.Intn(3)),
	}
}

type routeTriple struct{ A, B, C Route }

// Generate implements quick.Generator.
func (routeTriple) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(routeTriple{A: randRoute(rng), B: randRoute(rng), C: randRoute(rng)})
}

// rankKey linearizes the decision process so ordering laws can be checked
// against a total order.
func rankKey(r Route) [5]int {
	return [5]int{-r.LocalPref, int(r.Rel), r.PathLen(), r.MED, r.NextHop}
}

func keyLess(a, b [5]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Property: Better is exactly the strict order induced by the decision
// process's lexicographic key — hence irreflexive, antisymmetric, and
// transitive (the decision process can never cycle).
func TestBetterIsStrictTotalOrder(t *testing.T) {
	f := func(tr routeTriple) bool {
		a, b, c := tr.A, tr.B, tr.C
		if Better(a, a) {
			return false
		}
		if Better(a, b) != keyLess(rankKey(a), rankKey(b)) {
			return false
		}
		if Better(a, b) && Better(b, a) {
			return false
		}
		if Better(a, b) && Better(b, c) && !Better(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: RIB.Best returns a route no other candidate beats, and
// DeriveFIB's entry for each prefix is that best route's next hop,
// independent of insertion order.
func TestBestIsUndominated(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rib := NewRIB()
		prefix := netaddr.MustParsePrefix("10.1.0.0/16")
		count := int(n%12) + 1
		routes := make([]Route, count)
		for i := range routes {
			routes[i] = randRoute(rng)
			routes[i].Prefix = prefix
			rib.Add(routes[i])
		}
		best, ok := rib.Best(prefix)
		if !ok {
			return false
		}
		for _, r := range routes {
			if Better(r, best) {
				return false
			}
		}
		fib := rib.DeriveFIB()
		port, ok := fib.Port(prefix.Nth(9))
		if !ok || port != best.NextHop {
			return false
		}
		// Insertion order must not matter.
		rib2 := NewRIB()
		for i := len(routes) - 1; i >= 0; i-- {
			rib2.Add(routes[i])
		}
		best2, _ := rib2.Best(prefix)
		return rankKey(best) == rankKey(best2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
