package bgp

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"locind/internal/asgraph"
)

// Session is one BGP feed into a collector: the peer AS providing it, the
// business relationship of the collector's host AS to that peer (which,
// following §6.2.1, stands in for local preference during ranking), and the
// session's fixed MED — a consistent early-exit-style preference among
// equal-length routes. Mega-transit feeds carry MED 1; other feeds carry a
// deterministic MED in [0, 4), so roughly a quarter of direct provider
// feeds outrank the mega on ties. This is what makes port diversity (and
// hence Figure 8's update rate) grow with a collector's feed count, the way
// it does across the real Oregon/Georgia/Mauritius collectors.
type Session struct {
	PeerAS int
	Rel    asgraph.Rel
	MED    int
}

// Collector is a RouteViews/RIPE-like route collector: a host AS, its
// sessions, and the RIB/FIB assembled from the feeds.
type Collector struct {
	Name     string
	Region   asgraph.Region
	HostAS   int
	Sessions []Session
	RIB      *RIB
	FIB      *FIB
}

// Spec describes a collector to synthesize. The session count and the
// presence of a dominant customer feed are what differentiate the
// high-diversity Oregon collectors from the single-feed Mauritius/Tokyo
// ones in Figure 8.
type Spec struct {
	Name    string
	Region  asgraph.Region
	NumSess int
	// GlobalFrac is the fraction of session peers drawn from outside the
	// collector's region.
	GlobalFrac float64
	// CustomerFeed marks the first session as a transit-customer feed;
	// because customer routes outrank everything, such a collector funnels
	// essentially all traffic through one port and sees almost no updates.
	CustomerFeed bool
}

// RouteViewsSpecs returns the 12 collectors of Figure 8 with session
// profiles chosen to mirror the real collectors' peer degrees: the Oregon
// route-views boxes famously carry dozens of full feeds, Georgia has only a
// handful, and the distant collectors are dominated by a single feed.
func RouteViewsSpecs() []Spec {
	return []Spec{
		{Name: "Oregon-1", Region: asgraph.NorthAmerica, NumSess: 36, GlobalFrac: 0.4},
		{Name: "Oregon-2", Region: asgraph.NorthAmerica, NumSess: 33, GlobalFrac: 0.4},
		{Name: "Oregon-3", Region: asgraph.NorthAmerica, NumSess: 30, GlobalFrac: 0.35},
		{Name: "Oregon-4", Region: asgraph.NorthAmerica, NumSess: 28, GlobalFrac: 0.35},
		{Name: "California-1", Region: asgraph.NorthAmerica, NumSess: 18, GlobalFrac: 0.3},
		{Name: "Georgia", Region: asgraph.NorthAmerica, NumSess: 4, GlobalFrac: 0.25},
		{Name: "Virginia", Region: asgraph.NorthAmerica, NumSess: 14, GlobalFrac: 0.3},
		{Name: "Saopaulo-1", Region: asgraph.SouthAmerica, NumSess: 9, GlobalFrac: 0.3},
		{Name: "London-1", Region: asgraph.Europe, NumSess: 16, GlobalFrac: 0.35},
		{Name: "Mauritius", Region: asgraph.Africa, NumSess: 2, GlobalFrac: 0.5, CustomerFeed: true},
		{Name: "Tokyo", Region: asgraph.Asia, NumSess: 3, GlobalFrac: 0.3, CustomerFeed: true},
		{Name: "Sydney", Region: asgraph.Oceania, NumSess: 5, GlobalFrac: 0.4},
	}
}

// RIPESpecs returns 13 RIPE-RIS-like collectors in 13 cities, 10 of them in
// locations distinct from the RouteViews set, used by the paper's
// sensitivity analysis.
func RIPESpecs() []Spec {
	return []Spec{
		{Name: "Amsterdam", Region: asgraph.Europe, NumSess: 30, GlobalFrac: 0.4},
		{Name: "London-RIPE", Region: asgraph.Europe, NumSess: 22, GlobalFrac: 0.4},
		{Name: "Paris", Region: asgraph.Europe, NumSess: 14, GlobalFrac: 0.3},
		{Name: "Geneva", Region: asgraph.Europe, NumSess: 10, GlobalFrac: 0.3},
		{Name: "Vienna", Region: asgraph.Europe, NumSess: 12, GlobalFrac: 0.3},
		{Name: "Stockholm", Region: asgraph.Europe, NumSess: 9, GlobalFrac: 0.25},
		{Name: "Milan", Region: asgraph.Europe, NumSess: 8, GlobalFrac: 0.25},
		{Name: "NewYork", Region: asgraph.NorthAmerica, NumSess: 20, GlobalFrac: 0.35},
		{Name: "Palo-Alto", Region: asgraph.NorthAmerica, NumSess: 17, GlobalFrac: 0.35},
		{Name: "Miami", Region: asgraph.NorthAmerica, NumSess: 8, GlobalFrac: 0.3},
		{Name: "Moscow", Region: asgraph.Europe, NumSess: 7, GlobalFrac: 0.25},
		{Name: "Tokyo-RIPE", Region: asgraph.Asia, NumSess: 4, GlobalFrac: 0.3, CustomerFeed: true},
		{Name: "Johannesburg", Region: asgraph.Africa, NumSess: 3, GlobalFrac: 0.4, CustomerFeed: true},
	}
}

// BuildCollectors synthesizes collectors for the given specs over graph g
// and address plan pt. All specs share one pass of per-destination route
// computation, so building the RouteViews and RIPE sets together costs the
// same as building either alone.
func BuildCollectors(g *asgraph.Graph, pt *PrefixTable, specs []Spec, rng *rand.Rand) ([]*Collector, error) {
	cols := make([]*Collector, 0, len(specs))
	for _, spec := range specs {
		c, err := newCollector(g, spec, rng)
		if err != nil {
			return nil, err
		}
		// Every announced prefix will land in every collector's RIB.
		c.RIB = NewRIBSized(len(pt.All()))
		cols = append(cols, c)
	}

	// Group announced prefixes by origin so each origin's route table is
	// computed exactly once.
	byOrigin := map[int][]PrefixOrigin{}
	for _, po := range pt.All() {
		byOrigin[po.Origin] = append(byOrigin[po.Origin], po)
	}
	// Collectors overlap heavily on feed peers (every well-fed collector
	// seeds the same mega-transits), so walk each distinct peer's AS path
	// once per origin and let all sessions share it. The paths for one
	// origin are carved from a single exactly-sized slab; the slab must be
	// fresh per origin because the RIBs retain the ASPath slices forever.
	peerIdx := map[int]int{}
	var peers []int
	for _, c := range cols {
		for _, s := range c.Sessions {
			if _, ok := peerIdx[s.PeerAS]; !ok {
				peerIdx[s.PeerAS] = len(peers)
				peers = append(peers, s.PeerAS)
			}
		}
	}
	paths := make([][]int, len(peers))
	for origin := 0; origin < g.N(); origin++ {
		pos := byOrigin[origin]
		if len(pos) == 0 {
			continue
		}
		rt := g.RoutesTo(origin)
		need := 0
		for _, p := range peers {
			if rt.Has(p) {
				need += rt.PathLen(p) + 1
			}
		}
		slab := make([]int, 0, need)
		for i, p := range peers {
			if !rt.Has(p) {
				paths[i] = nil
				continue
			}
			lo := len(slab)
			slab = rt.AppendPath(slab, p)
			paths[i] = slab[lo:len(slab):len(slab)]
		}
		for _, c := range cols {
			for _, s := range c.Sessions {
				path := paths[peerIdx[s.PeerAS]]
				if path == nil {
					continue
				}
				for _, po := range pos {
					c.RIB.AddHint(Route{
						Prefix:  po.Prefix,
						NextHop: s.PeerAS,
						MED:     s.MED,
						ASPath:  path,
						Rel:     s.Rel,
					}, len(c.Sessions))
				}
			}
		}
	}
	for _, c := range cols {
		c.FIB = c.RIB.DeriveFIB()
	}
	return cols, nil
}

func newCollector(g *asgraph.Graph, spec Spec, rng *rand.Rand) (*Collector, error) {
	if spec.NumSess < 1 {
		return nil, fmt.Errorf("bgp: collector %q needs at least one session", spec.Name)
	}
	// Candidate peers: transit ASes (tiers 1-2). Local pool first. The
	// lowest-ID tier-2 of a region is its mega-transit.
	var local, global []int
	megaByRegion := map[asgraph.Region]int{}
	for x := 0; x < g.N(); x++ {
		t := g.Tier(x)
		if t != 1 && t != 2 {
			continue
		}
		if t == 2 {
			if _, ok := megaByRegion[g.Region(x)]; !ok {
				megaByRegion[g.Region(x)] = x // tier-2 IDs ascend, first is the mega
			}
		}
		if g.Region(x) == spec.Region {
			local = append(local, x)
		} else {
			global = append(global, x)
		}
	}
	if len(local) == 0 {
		local = global
	}
	if len(local) == 0 {
		return nil, fmt.Errorf("bgp: no transit ASes available for collector %q", spec.Name)
	}
	host := local[rng.Intn(len(local))]
	c := &Collector{Name: spec.Name, Region: spec.Region, HostAS: host, RIB: NewRIB()}
	seen := map[int]bool{host: true}
	// Every real collector's first and steadiest feeds are the large
	// transit networks: seed the session list with the regional mega (and,
	// for well-fed collectors, every region's mega) before random fill.
	// Customer-feed collectors keep their dominant feed first instead.
	if !spec.CustomerFeed {
		seedMegas := []int{}
		if m, ok := megaByRegion[spec.Region]; ok {
			seedMegas = append(seedMegas, m)
		}
		if spec.NumSess >= 8 {
			regions := []asgraph.Region{
				asgraph.NorthAmerica, asgraph.SouthAmerica, asgraph.Europe,
				asgraph.Asia, asgraph.Oceania, asgraph.Africa,
			}
			for _, r := range regions {
				if m, ok := megaByRegion[r]; ok && r != spec.Region {
					seedMegas = append(seedMegas, m)
				}
			}
		}
		for _, m := range seedMegas {
			if len(c.Sessions) >= spec.NumSess || seen[m] {
				continue
			}
			seen[m] = true
			c.Sessions = append(c.Sessions, Session{PeerAS: m, Rel: asgraph.RelPeer, MED: 1})
		}
	}
	for len(c.Sessions) < spec.NumSess {
		pool := local
		if rng.Float64() < spec.GlobalFrac && len(global) > 0 {
			pool = global
		}
		peer := pool[rng.Intn(len(pool))]
		if seen[peer] {
			// Exhaustion guard: if we have consumed nearly the whole pool,
			// accept fewer sessions rather than spinning.
			if len(seen) >= len(local)+len(global) {
				break
			}
			continue
		}
		seen[peer] = true
		rel := asgraph.RelPeer
		if spec.CustomerFeed && len(c.Sessions) == 0 {
			rel = asgraph.RelCustomer
		}
		c.Sessions = append(c.Sessions, Session{PeerAS: peer, Rel: rel, MED: stableMED(peer)})
	}
	return c, nil
}

// stableMED derives a deterministic per-peer MED in [0, 4) — a fixed
// session priority, constant across prefixes, the way consistent early-exit
// preferences behave in real tables. The paper found local_preference
// uniformly zero in the RouteViews dumps, leaving relationship, path length,
// and MED as the deciding rules (§6.2.1).
func stableMED(peer int) int {
	h := fnv.New32a()
	var buf [4]byte
	buf[0] = byte(peer)
	buf[1] = byte(peer >> 8)
	buf[2] = byte(peer >> 16)
	buf[3] = byte(peer >> 24)
	h.Write(buf[:])
	return int(h.Sum32() % 4)
}

// Synthesized feeds carry MED 0, matching what the paper found in the
// RouteViews dumps ("the numerical value of local_preference is uniformly
// 0"; MEDs are likewise rarely decisive). Path-length ties therefore break
// on the lowest next-hop AS, a consistent preference that concentrates
// ports on the most widely peered session — the behaviour real collector
// tables exhibit. The MED rule itself stays implemented and unit-tested.
