package bgp

import (
	"math/rand"
	"testing"

	"locind/internal/asgraph"
	"locind/internal/netaddr"
)

func route(prefix string, nh, lp, med int, rel asgraph.Rel, path ...int) Route {
	return Route{
		Prefix:    netaddr.MustParsePrefix(prefix),
		NextHop:   nh,
		LocalPref: lp,
		MED:       med,
		ASPath:    path,
		Rel:       rel,
	}
}

func TestBetterRanking(t *testing.T) {
	base := route("10.0.0.0/16", 5, 0, 0, asgraph.RelPeer, 5, 9, 12)
	cases := []struct {
		name string
		a, b Route
		want bool
	}{
		{"higher localpref wins", route("10.0.0.0/16", 9, 100, 0, asgraph.RelProvider, 9, 1, 2, 3, 4), base, true},
		{"customer beats peer", route("10.0.0.0/16", 9, 0, 0, asgraph.RelCustomer, 9, 1, 2, 3, 4), base, true},
		{"peer beats provider", base, route("10.0.0.0/16", 9, 0, 0, asgraph.RelProvider, 9, 12), true},
		{"shorter path wins in class", route("10.0.0.0/16", 9, 0, 9, asgraph.RelPeer, 9, 12), base, true},
		{"lower MED wins on tie", route("10.0.0.0/16", 9, 0, 0, asgraph.RelPeer, 9, 1, 12), route("10.0.0.0/16", 8, 0, 1, asgraph.RelPeer, 8, 2, 12), true},
		{"lower next hop final tiebreak", route("10.0.0.0/16", 4, 0, 0, asgraph.RelPeer, 4, 1, 12), route("10.0.0.0/16", 7, 0, 0, asgraph.RelPeer, 7, 2, 12), true},
	}
	for _, c := range cases {
		if got := Better(c.a, c.b); got != c.want {
			t.Errorf("%s: Better = %v, want %v", c.name, got, c.want)
		}
		if c.want && Better(c.b, c.a) {
			t.Errorf("%s: Better not antisymmetric", c.name)
		}
	}
}

func TestRoutePathLenOrigin(t *testing.T) {
	r := route("10.0.0.0/16", 5, 0, 0, asgraph.RelPeer, 5, 9, 12)
	if r.PathLen() != 2 || r.Origin() != 12 {
		t.Errorf("PathLen=%d Origin=%d", r.PathLen(), r.Origin())
	}
	empty := Route{}
	if empty.PathLen() != 0 || empty.Origin() != -1 {
		t.Error("empty route accessors wrong")
	}
	if r.String() == "" {
		t.Error("String should render")
	}
}

func TestRIBBestAndFIB(t *testing.T) {
	rib := NewRIB()
	p := netaddr.MustParsePrefix("10.0.0.0/16")
	rib.Add(route("10.0.0.0/16", 7, 0, 0, asgraph.RelProvider, 7, 12))
	rib.Add(route("10.0.0.0/16", 5, 0, 0, asgraph.RelPeer, 5, 9, 12))
	rib.Add(route("10.0.0.0/16", 3, 0, 0, asgraph.RelPeer, 3, 8, 11, 12))
	best, ok := rib.Best(p)
	if !ok || best.NextHop != 5 {
		t.Fatalf("Best = %+v, %v; want next hop 5 (peer, shortest)", best, ok)
	}
	if _, ok := rib.Best(netaddr.MustParsePrefix("99.0.0.0/8")); ok {
		t.Fatal("missing prefix should have no best")
	}
	if rib.NumPrefixes() != 1 || rib.NumRoutes() != 3 {
		t.Fatalf("counts: %d prefixes %d routes", rib.NumPrefixes(), rib.NumRoutes())
	}
	if got := rib.Routes(p); len(got) != 3 {
		t.Fatalf("Routes len = %d", len(got))
	}

	fib := rib.DeriveFIB()
	if fib.Len() != 1 {
		t.Fatalf("FIB len = %d", fib.Len())
	}
	port, ok := fib.Port(netaddr.MustParseAddr("10.0.5.5"))
	if !ok || port != 5 {
		t.Fatalf("FIB port = %d, %v", port, ok)
	}
	if _, ok := fib.Port(netaddr.MustParseAddr("99.0.0.1")); ok {
		t.Fatal("uncovered address should miss")
	}
	rt, ok := fib.RouteFor(netaddr.MustParseAddr("10.0.5.5"))
	if !ok || rt.NextHop != 5 {
		t.Fatal("RouteFor wrong")
	}
	if fib.NextHopDegree() != 1 {
		t.Fatalf("NextHopDegree = %d", fib.NextHopDegree())
	}
}

func TestRIBPrefixesSorted(t *testing.T) {
	rib := NewRIB()
	rib.Add(route("30.0.0.0/8", 1, 0, 0, asgraph.RelPeer, 1, 2))
	rib.Add(route("10.0.0.0/8", 1, 0, 0, asgraph.RelPeer, 1, 2))
	rib.Add(route("20.0.0.0/8", 1, 0, 0, asgraph.RelPeer, 1, 2))
	ps := rib.Prefixes()
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Compare(ps[i]) >= 0 {
			t.Fatalf("prefixes not sorted: %v", ps)
		}
	}
}

func TestFIBLongestPrefixDisplacement(t *testing.T) {
	// Figure 2 at the FIB level: a /24 and /16 with different ports.
	fib := &FIB{}
	fib.Insert(netaddr.MustParsePrefix("22.33.44.0/24"), Route{NextHop: 5})
	fib.Insert(netaddr.MustParsePrefix("22.33.0.0/16"), Route{NextHop: 3})
	p1, _ := fib.Port(netaddr.MustParseAddr("22.33.44.55"))
	p2, _ := fib.Port(netaddr.MustParseAddr("22.33.88.55"))
	if p1 != 5 || p2 != 3 {
		t.Fatalf("ports = %d, %d", p1, p2)
	}
	if fib.NextHopDegree() != 2 {
		t.Fatalf("degree = %d", fib.NextHopDegree())
	}
	count := 0
	fib.Walk(func(netaddr.Prefix, Route) bool { count++; return true })
	if count != 2 {
		t.Fatalf("walk visited %d", count)
	}
}

func TestNewPrefixTable(t *testing.T) {
	g := asgraph.NewGraph(4)
	pt, err := NewPrefixTable(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pt.NumPrefixes() != 4*3 {
		t.Fatalf("NumPrefixes = %d", pt.NumPrefixes())
	}
	if pt.PrefixOf(2).String() != "0.2.0.0/16" {
		t.Fatalf("PrefixOf(2) = %v", pt.PrefixOf(2))
	}
	a := pt.AddrIn(2, 77)
	if origin, ok := pt.OriginOf(a); !ok || origin != 2 {
		t.Fatalf("OriginOf = %d, %v", origin, ok)
	}
	// The /24 more-specific resolves to the same origin.
	if origin, _ := pt.OriginOf(netaddr.MustParseAddr("0.2.1.9")); origin != 2 {
		t.Fatal("more-specific origin wrong")
	}
}

func TestNewPrefixTableTooBig(t *testing.T) {
	// Can't actually allocate 2^16+1 ASes cheaply... we can: NewGraph is slices.
	g := asgraph.NewGraph(1<<16 + 1)
	if _, err := NewPrefixTable(g, 0); err == nil {
		t.Fatal("oversized graph should fail")
	}
}

func testInternet(t testing.TB, seed int64) (*asgraph.Graph, *PrefixTable) {
	cfg := asgraph.DefaultSynthConfig()
	cfg.Tier2 = 60
	cfg.Stubs = 500
	g, err := asgraph.Synthesize(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := NewPrefixTable(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g, pt
}

func TestBuildCollectors(t *testing.T) {
	g, pt := testInternet(t, 4)
	rng := rand.New(rand.NewSource(8))
	cols, err := BuildCollectors(g, pt, RouteViewsSpecs(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 12 {
		t.Fatalf("collectors = %d", len(cols))
	}
	byName := map[string]*Collector{}
	for _, c := range cols {
		byName[c.Name] = c
		if c.FIB == nil || c.RIB == nil {
			t.Fatalf("%s missing RIB/FIB", c.Name)
		}
		// Every announced prefix must be forwardable at every collector
		// (the graph is fully reachable).
		if c.FIB.Len() != pt.NumPrefixes() {
			t.Fatalf("%s FIB has %d entries, want %d", c.Name, c.FIB.Len(), pt.NumPrefixes())
		}
		// Ports must be actual session peers.
		peers := map[int]bool{}
		for _, s := range c.Sessions {
			peers[s.PeerAS] = true
		}
		c.FIB.Walk(func(_ netaddr.Prefix, rt Route) bool {
			if !peers[rt.NextHop] {
				t.Fatalf("%s forwards via non-session AS%d", c.Name, rt.NextHop)
			}
			return true
		})
	}
	// A customer-feed collector funnels everything through its feed.
	mau := byName["Mauritius"]
	if mau.FIB.NextHopDegree() != 1 {
		t.Fatalf("Mauritius next-hop degree = %d, want 1 (customer feed dominates)", mau.FIB.NextHopDegree())
	}
	// Oregon-1 must have much higher next-hop diversity than Georgia —
	// the paper's explanation for Figure 8's shape.
	or1, geo := byName["Oregon-1"], byName["Georgia"]
	if or1.FIB.NextHopDegree() <= geo.FIB.NextHopDegree() {
		t.Fatalf("Oregon-1 degree %d should exceed Georgia degree %d",
			or1.FIB.NextHopDegree(), geo.FIB.NextHopDegree())
	}
	t.Logf("next-hop degrees: Oregon-1=%d Georgia=%d Mauritius=%d",
		or1.FIB.NextHopDegree(), geo.FIB.NextHopDegree(), mau.FIB.NextHopDegree())
}

func TestBuildCollectorsDeterministic(t *testing.T) {
	g, pt := testInternet(t, 4)
	c1, err := BuildCollectors(g, pt, RouteViewsSpecs()[:3], rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := BuildCollectors(g, pt, RouteViewsSpecs()[:3], rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range c1 {
		if c1[i].HostAS != c2[i].HostAS {
			t.Fatalf("host AS diverged for %s", c1[i].Name)
		}
		for as := 0; as < g.N(); as += 13 {
			a := pt.AddrIn(as, 1)
			p1, _ := c1[i].FIB.Port(a)
			p2, _ := c2[i].FIB.Port(a)
			if p1 != p2 {
				t.Fatalf("FIB diverged at %s for AS%d", c1[i].Name, as)
			}
		}
	}
}

func TestRIPESpecsShape(t *testing.T) {
	specs := RIPESpecs()
	if len(specs) != 13 {
		t.Fatalf("RIPE specs = %d, want 13", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Fatalf("duplicate collector name %q", s.Name)
		}
		names[s.Name] = true
		if s.NumSess < 1 {
			t.Fatalf("%s has no sessions", s.Name)
		}
	}
}

func TestBadSpec(t *testing.T) {
	g, pt := testInternet(t, 4)
	_, err := BuildCollectors(g, pt, []Spec{{Name: "bad", NumSess: 0}}, rand.New(rand.NewSource(1)))
	if err == nil {
		t.Fatal("zero-session spec should fail")
	}
}

func BenchmarkDeriveFIB(b *testing.B) {
	g, pt := testInternet(b, 4)
	rng := rand.New(rand.NewSource(8))
	cols, err := BuildCollectors(g, pt, RouteViewsSpecs()[:1], rng)
	if err != nil {
		b.Fatal(err)
	}
	rib := cols[0].RIB
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rib.DeriveFIB()
	}
}
