package bgp

import (
	"math/rand"
	"strings"
	"testing"

	"locind/internal/asgraph"
	"locind/internal/netaddr"
)

func TestRIBDumpRoundTrip(t *testing.T) {
	g, pt := testInternet(t, 4)
	cols, err := BuildCollectors(g, pt, RouteViewsSpecs()[:2], rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	orig := cols[0].RIB

	var buf strings.Builder
	if err := WriteRIB(&buf, cols[0].Name, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRIB(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPrefixes() != orig.NumPrefixes() || back.NumRoutes() != orig.NumRoutes() {
		t.Fatalf("round trip lost routes: %d/%d vs %d/%d",
			back.NumPrefixes(), back.NumRoutes(), orig.NumPrefixes(), orig.NumRoutes())
	}
	// Decision process must agree on every prefix, and derived FIBs must
	// forward identically.
	fib1 := orig.DeriveFIB()
	fib2 := back.DeriveFIB()
	for _, p := range orig.Prefixes() {
		b1, _ := orig.Best(p)
		b2, _ := back.Best(p)
		if b1.NextHop != b2.NextHop || b1.PathLen() != b2.PathLen() || b1.Rel != b2.Rel {
			t.Fatalf("best route diverged for %v: %v vs %v", p, b1, b2)
		}
		a := p.Nth(7)
		p1, _ := fib1.Port(a)
		p2, _ := fib2.Port(a)
		if p1 != p2 {
			t.Fatalf("FIB diverged at %v", a)
		}
	}
}

func TestReadRIBTolerance(t *testing.T) {
	in := `# a comment

0.42.0.0/16|17|0|1|peer|17 204 298
0.42.0.0/16|9|0|0|customer|9 298

# trailing comment
`
	rib, err := ReadRIB(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rib.NumRoutes() != 2 || rib.NumPrefixes() != 1 {
		t.Fatalf("routes=%d prefixes=%d", rib.NumRoutes(), rib.NumPrefixes())
	}
	best, _ := rib.Best(netaddr.MustParsePrefix("0.42.0.0/16"))
	if best.Rel != asgraph.RelCustomer || best.NextHop != 9 {
		t.Fatalf("best = %v", best)
	}
}

func TestReadRIBErrors(t *testing.T) {
	cases := []string{
		"0.42.0.0/16|17|0|1|peer",                  // missing field
		"bogus|17|0|1|peer|17",                     // bad prefix
		"0.42.0.0/16|x|0|1|peer|17",                // bad next hop
		"0.42.0.0/16|17|y|1|peer|17",               // bad local pref
		"0.42.0.0/16|17|0|z|peer|17",               // bad med
		"0.42.0.0/16|17|0|1|frenemy|17",            // bad relationship
		"0.42.0.0/16|17|0|1|peer|17 two",           // bad path AS
		"0.42.0.0/16|17|0|1|peer|",                 // empty path
		"0.42.0.0/16|17|0|1|peer|17 204|extra|x|y", // too many fields
	}
	for _, c := range cases {
		if _, err := ReadRIB(strings.NewReader(c)); err == nil {
			t.Errorf("ReadRIB(%q) should fail", c)
		}
	}
}
