package bgp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"locind/internal/asgraph"
	"locind/internal/netaddr"
)

// This file gives RIBs a textual dump format so synthesized collector
// tables can be saved, diffed, and reloaded the way the paper works with
// RouteViews dumps. One line per candidate route:
//
//	prefix|next_hop|local_pref|med|rel|as_path
//
// e.g. 0.42.0.0/16|17|0|1|peer|17 204 298
//
// Lines starting with '#' are comments; the header records the collector
// metadata.

// WriteRIB serializes rib to w with an optional name in the header.
func WriteRIB(w io.Writer, name string, rib *RIB) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# locind-rib v1 name=%s prefixes=%d routes=%d\n",
		name, rib.NumPrefixes(), rib.NumRoutes())
	for _, p := range rib.Prefixes() {
		for _, rt := range rib.Routes(p) {
			path := make([]string, len(rt.ASPath))
			for i, as := range rt.ASPath {
				path[i] = strconv.Itoa(as)
			}
			fmt.Fprintf(bw, "%s|%d|%d|%d|%s|%s\n",
				rt.Prefix, rt.NextHop, rt.LocalPref, rt.MED, rt.Rel, strings.Join(path, " "))
		}
	}
	return bw.Flush()
}

// ReadRIB parses a dump produced by WriteRIB. It tolerates comments and
// blank lines and validates every field.
func ReadRIB(r io.Reader) (*RIB, error) {
	rib := NewRIB()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rt, err := parseRouteLine(line)
		if err != nil {
			return nil, fmt.Errorf("bgp: line %d: %w", lineNo, err)
		}
		rib.Add(rt)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bgp: reading dump: %w", err)
	}
	return rib, nil
}

func parseRouteLine(line string) (Route, error) {
	fields := strings.Split(line, "|")
	if len(fields) != 6 {
		return Route{}, fmt.Errorf("want 6 fields, have %d", len(fields))
	}
	prefix, err := netaddr.ParsePrefix(fields[0])
	if err != nil {
		return Route{}, err
	}
	nextHop, err := strconv.Atoi(fields[1])
	if err != nil {
		return Route{}, fmt.Errorf("bad next_hop %q", fields[1])
	}
	localPref, err := strconv.Atoi(fields[2])
	if err != nil {
		return Route{}, fmt.Errorf("bad local_pref %q", fields[2])
	}
	med, err := strconv.Atoi(fields[3])
	if err != nil {
		return Route{}, fmt.Errorf("bad med %q", fields[3])
	}
	rel, err := parseRel(fields[4])
	if err != nil {
		return Route{}, err
	}
	var path []int
	for _, tok := range strings.Fields(fields[5]) {
		as, err := strconv.Atoi(tok)
		if err != nil {
			return Route{}, fmt.Errorf("bad AS %q in path", tok)
		}
		path = append(path, as)
	}
	if len(path) == 0 {
		return Route{}, fmt.Errorf("empty AS path")
	}
	return Route{
		Prefix:    prefix,
		NextHop:   nextHop,
		LocalPref: localPref,
		MED:       med,
		Rel:       rel,
		ASPath:    path,
	}, nil
}

func parseRel(s string) (asgraph.Rel, error) {
	switch s {
	case "customer":
		return asgraph.RelCustomer, nil
	case "peer":
		return asgraph.RelPeer, nil
	case "provider":
		return asgraph.RelProvider, nil
	}
	return 0, fmt.Errorf("bad relationship %q", s)
}
