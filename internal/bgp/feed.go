package bgp

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"locind/internal/netaddr"
)

// This file makes the collector a live system instead of a batch-built
// table: peers stream BGP-like UPDATE messages (announce/withdraw) over
// TCP, and the collector maintains its RIB and FIB incrementally — the
// mechanics behind the RouteViews dumps the paper consumes as snapshots.
// The wire format is a 4-byte length prefix followed by JSON.

// UpdateMsg is one BGP-like update from a feed peer.
type UpdateMsg struct {
	Peer     int         `json:"peer"`
	Announce []WireRoute `json:"announce,omitempty"`
	Withdraw []string    `json:"withdraw,omitempty"` // prefixes
}

// WireRoute is the serialized route attribute set.
type WireRoute struct {
	Prefix    string `json:"prefix"`
	LocalPref int    `json:"local_pref"`
	MED       int    `json:"med"`
	Rel       string `json:"rel"`
	ASPath    []int  `json:"as_path"`
}

const maxFeedFrame = 1 << 20

func writeFeedFrame(w io.Writer, m UpdateMsg) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if len(body) > maxFeedFrame {
		return fmt.Errorf("bgp: update frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

func readFeedFrame(r io.Reader) (UpdateMsg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return UpdateMsg{}, io.EOF
		}
		return UpdateMsg{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFeedFrame {
		return UpdateMsg{}, fmt.Errorf("bgp: update frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return UpdateMsg{}, err
	}
	var m UpdateMsg
	if err := json.Unmarshal(body, &m); err != nil {
		return UpdateMsg{}, err
	}
	return m, nil
}

// LiveCollector maintains a RIB and FIB incrementally from streamed
// updates. It is safe for concurrent sessions.
type LiveCollector struct {
	Name string

	mu      sync.Mutex
	rib     *RIB
	fib     *FIB
	applied int
	errs    []error

	ln net.Listener
	wg sync.WaitGroup
}

// NewLiveCollector creates an empty live collector.
func NewLiveCollector(name string) *LiveCollector {
	return &LiveCollector{Name: name, rib: NewRIB(), fib: &FIB{}}
}

// Apply ingests one update message, returning how many prefixes changed
// their selected best route (the collector-side update cost of the
// message).
func (lc *LiveCollector) Apply(m UpdateMsg) (bestChanges int, err error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	touched := map[netaddr.Prefix]bool{}
	for _, wr := range m.Announce {
		rt, err := wireToRoute(m.Peer, wr)
		if err != nil {
			return bestChanges, err
		}
		lc.replaceLocked(rt)
		touched[rt.Prefix] = true
	}
	for _, ps := range m.Withdraw {
		p, err := netaddr.ParsePrefix(ps)
		if err != nil {
			return bestChanges, fmt.Errorf("bgp: bad withdraw prefix %q: %w", ps, err)
		}
		lc.withdrawLocked(p, m.Peer)
		touched[p] = true
	}
	for p := range touched {
		if lc.refreshFIBLocked(p) {
			bestChanges++
		}
	}
	lc.applied++
	return bestChanges, nil
}

// replaceLocked installs the route, replacing any previous route from the
// same peer for the same prefix (BGP implicit withdraw).
func (lc *LiveCollector) replaceLocked(rt Route) {
	routes := lc.rib.byPrefix[rt.Prefix]
	for i, r := range routes {
		if r.NextHop == rt.NextHop {
			routes[i] = rt
			return
		}
	}
	lc.rib.byPrefix[rt.Prefix] = append(routes, rt)
}

func (lc *LiveCollector) withdrawLocked(p netaddr.Prefix, peer int) {
	routes := lc.rib.byPrefix[p]
	out := routes[:0]
	for _, r := range routes {
		if r.NextHop != peer {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		delete(lc.rib.byPrefix, p)
	} else {
		lc.rib.byPrefix[p] = out
	}
}

// refreshFIBLocked recomputes the forwarding entry for p, reporting whether
// the selected next hop changed (including gaining or losing the route).
func (lc *LiveCollector) refreshFIBLocked(p netaddr.Prefix) bool {
	oldRt, hadOld := lc.fib.trie.Get(p)
	best, ok := lc.rib.Best(p)
	switch {
	case !ok && !hadOld:
		return false
	case !ok:
		lc.fib.trie.Remove(p)
		return true
	case !hadOld:
		lc.fib.trie.Insert(p, best)
		return true
	default:
		lc.fib.trie.Insert(p, best)
		return oldRt.NextHop != best.NextHop
	}
}

// Snapshot returns copies of the collector's current table sizes and a
// port lookup for tests.
func (lc *LiveCollector) Snapshot() (prefixes, routes, applied int) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.rib.NumPrefixes(), lc.rib.NumRoutes(), lc.applied
}

// Port answers the current forwarding decision for a.
func (lc *LiveCollector) Port(a netaddr.Addr) (int, bool) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.fib.Port(a)
}

// RouteFor answers the current selected route covering a.
func (lc *LiveCollector) RouteFor(a netaddr.Addr) (Route, bool) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.fib.RouteFor(a)
}

// Errs returns session errors observed so far.
func (lc *LiveCollector) Errs() []error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return append([]error(nil), lc.errs...)
}

// Listen starts accepting feed sessions on addr.
func (lc *LiveCollector) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	lc.ln = ln
	lc.wg.Add(1)
	go lc.acceptLoop()
	return nil
}

// Addr returns the listen address.
func (lc *LiveCollector) Addr() string { return lc.ln.Addr().String() }

// Close stops the listener and waits for sessions to drain.
func (lc *LiveCollector) Close() error {
	err := lc.ln.Close()
	lc.wg.Wait()
	return err
}

func (lc *LiveCollector) acceptLoop() {
	defer lc.wg.Done()
	for {
		conn, err := lc.ln.Accept()
		if err != nil {
			return
		}
		lc.wg.Add(1)
		go func() {
			defer lc.wg.Done()
			defer conn.Close()
			for {
				m, err := readFeedFrame(conn)
				if errors.Is(err, io.EOF) {
					return
				}
				if err != nil {
					lc.recordErr(err)
					return
				}
				if _, err := lc.Apply(m); err != nil {
					lc.recordErr(err)
					return
				}
			}
		}()
	}
}

func (lc *LiveCollector) recordErr(err error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.errs = append(lc.errs, err)
}

// FeedSession is the peer side of a feed.
type FeedSession struct {
	PeerAS int
	conn   net.Conn
}

// DialFeed connects a peer to a live collector.
func DialFeed(addr string, peerAS int) (*FeedSession, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &FeedSession{PeerAS: peerAS, conn: conn}, nil
}

// Announce sends announcements for the given routes (the peer and next hop
// are this session's AS).
func (fs *FeedSession) Announce(routes []Route) error {
	m := UpdateMsg{Peer: fs.PeerAS}
	for _, rt := range routes {
		m.Announce = append(m.Announce, routeToWire(rt))
	}
	return writeFeedFrame(fs.conn, m)
}

// Withdraw retracts the given prefixes from this peer.
func (fs *FeedSession) Withdraw(prefixes []netaddr.Prefix) error {
	m := UpdateMsg{Peer: fs.PeerAS}
	for _, p := range prefixes {
		m.Withdraw = append(m.Withdraw, p.String())
	}
	return writeFeedFrame(fs.conn, m)
}

// Close ends the session.
func (fs *FeedSession) Close() error { return fs.conn.Close() }

func routeToWire(rt Route) WireRoute {
	return WireRoute{
		Prefix:    rt.Prefix.String(),
		LocalPref: rt.LocalPref,
		MED:       rt.MED,
		Rel:       rt.Rel.String(),
		ASPath:    rt.ASPath,
	}
}

func wireToRoute(peer int, wr WireRoute) (Route, error) {
	p, err := netaddr.ParsePrefix(wr.Prefix)
	if err != nil {
		return Route{}, fmt.Errorf("bgp: bad announce prefix %q: %w", wr.Prefix, err)
	}
	rel, err := parseRel(wr.Rel)
	if err != nil {
		return Route{}, err
	}
	if len(wr.ASPath) == 0 {
		return Route{}, fmt.Errorf("bgp: announce for %q has empty AS path", wr.Prefix)
	}
	return Route{
		Prefix:    p,
		NextHop:   peer,
		LocalPref: wr.LocalPref,
		MED:       wr.MED,
		Rel:       rel,
		ASPath:    wr.ASPath,
	}, nil
}

// StreamCollectorTables replays an existing batch-built collector through
// the live path: every candidate route becomes an announcement from its
// feed peer, grouped per peer in deterministic order. Used to check the
// incremental path agrees with the batch path, and by tools that want to
// serve synthesized tables over the wire.
func StreamCollectorTables(c *Collector, send func(peer int, routes []Route) error) error {
	byPeer := map[int][]Route{}
	for _, p := range c.RIB.Prefixes() {
		for _, rt := range c.RIB.Routes(p) {
			byPeer[rt.NextHop] = append(byPeer[rt.NextHop], rt)
		}
	}
	peers := make([]int, 0, len(byPeer))
	for p := range byPeer {
		peers = append(peers, p)
	}
	sort.Ints(peers)
	for _, p := range peers {
		if err := send(p, byPeer[p]); err != nil {
			return err
		}
	}
	return nil
}
