package bgp

import (
	"math/rand"
	"testing"
	"time"

	"locind/internal/netaddr"
)

func TestLiveCollectorApply(t *testing.T) {
	lc := NewLiveCollector("test")
	p := netaddr.MustParsePrefix("10.1.0.0/16")

	// First announcement installs a best route: one change.
	n, err := lc.Apply(UpdateMsg{Peer: 7, Announce: []WireRoute{
		{Prefix: "10.1.0.0/16", Rel: "peer", ASPath: []int{7, 20, 42}},
	}})
	if err != nil || n != 1 {
		t.Fatalf("first apply = %d, %v", n, err)
	}
	if port, ok := lc.Port(p.Nth(5)); !ok || port != 7 {
		t.Fatalf("port = %d, %v", port, ok)
	}
	// A worse route from another peer changes nothing.
	n, err = lc.Apply(UpdateMsg{Peer: 9, Announce: []WireRoute{
		{Prefix: "10.1.0.0/16", Rel: "provider", ASPath: []int{9, 42}},
	}})
	if err != nil || n != 0 {
		t.Fatalf("worse route apply = %d, %v", n, err)
	}
	// A better route (customer) flips the best: one change.
	n, err = lc.Apply(UpdateMsg{Peer: 3, Announce: []WireRoute{
		{Prefix: "10.1.0.0/16", Rel: "customer", ASPath: []int{3, 42}},
	}})
	if err != nil || n != 1 {
		t.Fatalf("better route apply = %d, %v", n, err)
	}
	// Implicit withdraw: the same peer re-announces with a longer path;
	// best falls back... customer still wins regardless of length against
	// peers, so no best change, but the stored route must be replaced.
	n, err = lc.Apply(UpdateMsg{Peer: 3, Announce: []WireRoute{
		{Prefix: "10.1.0.0/16", Rel: "customer", ASPath: []int{3, 8, 8, 8, 42}},
	}})
	if err != nil || n != 0 {
		t.Fatalf("implicit withdraw apply = %d, %v", n, err)
	}
	if prefixes, routes, _ := lc.Snapshot(); prefixes != 1 || routes != 3 {
		t.Fatalf("snapshot = %d prefixes, %d routes", prefixes, routes)
	}
	// Withdrawing the customer route falls back to the peer route.
	n, err = lc.Apply(UpdateMsg{Peer: 3, Withdraw: []string{"10.1.0.0/16"}})
	if err != nil || n != 1 {
		t.Fatalf("withdraw apply = %d, %v", n, err)
	}
	if port, _ := lc.Port(p.Nth(5)); port != 7 {
		t.Fatalf("after withdraw port = %d", port)
	}
	// Withdrawing everything removes the entry.
	lc.Apply(UpdateMsg{Peer: 7, Withdraw: []string{"10.1.0.0/16"}}) //nolint:errcheck
	lc.Apply(UpdateMsg{Peer: 9, Withdraw: []string{"10.1.0.0/16"}}) //nolint:errcheck
	if _, ok := lc.Port(p.Nth(5)); ok {
		t.Fatal("fully withdrawn prefix still forwards")
	}
}

func TestLiveCollectorApplyErrors(t *testing.T) {
	lc := NewLiveCollector("test")
	if _, err := lc.Apply(UpdateMsg{Peer: 1, Announce: []WireRoute{{Prefix: "bogus", Rel: "peer", ASPath: []int{1}}}}); err == nil {
		t.Error("bad prefix should fail")
	}
	if _, err := lc.Apply(UpdateMsg{Peer: 1, Announce: []WireRoute{{Prefix: "10.0.0.0/8", Rel: "frenemy", ASPath: []int{1}}}}); err == nil {
		t.Error("bad rel should fail")
	}
	if _, err := lc.Apply(UpdateMsg{Peer: 1, Announce: []WireRoute{{Prefix: "10.0.0.0/8", Rel: "peer"}}}); err == nil {
		t.Error("empty path should fail")
	}
	if _, err := lc.Apply(UpdateMsg{Peer: 1, Withdraw: []string{"nope"}}); err == nil {
		t.Error("bad withdraw prefix should fail")
	}
}

// TestLivePathMatchesBatchPath streams a synthesized collector's full table
// over real TCP sessions and checks the live FIB forwards identically to
// the batch-built one.
func TestLivePathMatchesBatchPath(t *testing.T) {
	g, pt := testInternet(t, 4)
	cols, err := BuildCollectors(g, pt, RouteViewsSpecs()[:1], rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	batch := cols[0]

	lc := NewLiveCollector(batch.Name)
	if err := lc.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	err = StreamCollectorTables(batch, func(peer int, routes []Route) error {
		fs, err := DialFeed(lc.Addr(), peer)
		if err != nil {
			return err
		}
		defer fs.Close()
		// Chunk announcements to exercise framing.
		for i := 0; i < len(routes); i += 500 {
			end := i + 500
			if end > len(routes) {
				end = len(routes)
			}
			if err := fs.Announce(routes[i:end]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for ingestion to drain, then close.
	wantRoutes := batch.RIB.NumRoutes()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, routes, _ := lc.Snapshot()
		if routes == wantRoutes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingested %d of %d routes before deadline", routes, wantRoutes)
		}
		time.Sleep(5 * time.Millisecond)
	}
	lc.Close()
	if errs := lc.Errs(); len(errs) != 0 {
		t.Fatalf("session errors: %v", errs)
	}

	for as := 0; as < g.N(); as += 11 {
		a := pt.AddrIn(as, 9)
		p1, ok1 := batch.FIB.Port(a)
		p2, ok2 := lc.Port(a)
		if ok1 != ok2 || p1 != p2 {
			t.Fatalf("live FIB diverges at AS%d: %d,%v vs %d,%v", as, p1, ok1, p2, ok2)
		}
	}
}

// TestChurnUpdateCost drives route churn through the live collector and
// confirms the §3 interpretation: only churn that flips the best route
// registers as an update.
func TestChurnUpdateCost(t *testing.T) {
	lc := NewLiveCollector("churn")
	base := UpdateMsg{Peer: 5, Announce: []WireRoute{
		{Prefix: "20.0.0.0/16", Rel: "peer", ASPath: []int{5, 42}},
	}}
	if _, err := lc.Apply(base); err != nil {
		t.Fatal(err)
	}
	// Backup route flapping behind the stable best: zero update cost.
	flapUpdates := 0
	for i := 0; i < 10; i++ {
		n, err := lc.Apply(UpdateMsg{Peer: 8, Announce: []WireRoute{
			{Prefix: "20.0.0.0/16", Rel: "provider", ASPath: []int{8, 30 + i, 42}},
		}})
		if err != nil {
			t.Fatal(err)
		}
		flapUpdates += n
		n, err = lc.Apply(UpdateMsg{Peer: 8, Withdraw: []string{"20.0.0.0/16"}})
		if err != nil {
			t.Fatal(err)
		}
		flapUpdates += n
	}
	if flapUpdates != 0 {
		t.Fatalf("backup flap caused %d best changes", flapUpdates)
	}
	// Best-route flapping: every cycle costs two updates.
	n1, _ := lc.Apply(UpdateMsg{Peer: 2, Announce: []WireRoute{
		{Prefix: "20.0.0.0/16", Rel: "customer", ASPath: []int{2, 42}},
	}})
	n2, _ := lc.Apply(UpdateMsg{Peer: 2, Withdraw: []string{"20.0.0.0/16"}})
	if n1 != 1 || n2 != 1 {
		t.Fatalf("best flap = %d, %d", n1, n2)
	}
}
