package bgp

import (
	"fmt"

	"locind/internal/asgraph"
	"locind/internal/netaddr"
)

// PrefixTable maps the synthetic IPv4 address plan onto the AS graph: every
// AS originates one /16 whose upper sixteen bits are its AS number, plus
// optional more-specific /24s (traffic-engineering-style announcements kept
// by the same origin). The table answers both directions: which prefix an
// AS announces, and which AS originates a given address.
type PrefixTable struct {
	origins netaddr.Trie[int] // prefix -> origin AS
	byAS    []netaddr.Prefix  // AS -> its covering /16
	list    []PrefixOrigin
}

// PrefixOrigin pairs an announced prefix with its origin AS.
type PrefixOrigin struct {
	Prefix netaddr.Prefix
	Origin int
}

// NewPrefixTable builds the address plan for graph g. moreSpecifics adds
// that many /24 sub-announcements per AS (same origin), giving FIBs the
// longest-prefix structure of real tables.
func NewPrefixTable(g *asgraph.Graph, moreSpecifics int) (*PrefixTable, error) {
	if g.N() > 1<<16 {
		return nil, fmt.Errorf("bgp: address plan supports at most %d ASes, graph has %d", 1<<16, g.N())
	}
	pt := &PrefixTable{byAS: make([]netaddr.Prefix, g.N())}
	for as := 0; as < g.N(); as++ {
		p16 := netaddr.MakePrefix(netaddr.Addr(uint32(as)<<16), 16)
		pt.byAS[as] = p16
		pt.origins.Insert(p16, as)
		pt.list = append(pt.list, PrefixOrigin{Prefix: p16, Origin: as})
		for k := 0; k < moreSpecifics; k++ {
			p24 := netaddr.MakePrefix(netaddr.Addr(uint32(as)<<16|uint32(k)<<8), 24)
			pt.origins.Insert(p24, as)
			pt.list = append(pt.list, PrefixOrigin{Prefix: p24, Origin: as})
		}
	}
	return pt, nil
}

// PrefixOf returns the covering /16 announced by AS as.
func (pt *PrefixTable) PrefixOf(as int) netaddr.Prefix { return pt.byAS[as] }

// OriginOf returns the AS that originates the longest-matching prefix for
// address a.
func (pt *PrefixTable) OriginOf(a netaddr.Addr) (int, bool) {
	return pt.origins.Lookup(a)
}

// AddrIn returns the host-th address inside AS as's /16; host wraps within
// the prefix. This is how workload generators mint addresses "in" an AS.
func (pt *PrefixTable) AddrIn(as int, host uint64) netaddr.Addr {
	return pt.byAS[as].Nth(host)
}

// All returns every announced (prefix, origin) pair in announcement order.
func (pt *PrefixTable) All() []PrefixOrigin { return pt.list }

// NumPrefixes returns the number of announced prefixes.
func (pt *PrefixTable) NumPrefixes() int { return len(pt.list) }
