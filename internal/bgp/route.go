// Package bgp models the routing-plane substrate of the evaluation: RIB
// entries carrying the attributes the paper reads out of RouteViews dumps,
// the §6.2.1 decision process (customer > peer > provider standing in for
// local preference, then AS-path length, then MED), FIB derivation, and
// synthesis of RouteViews/RIPE-like route collectors on top of an
// asgraph.Graph.
package bgp

import (
	"fmt"
	"sort"

	"locind/internal/asgraph"
	"locind/internal/netaddr"
)

// Route is one RIB entry: a single interdomain route toward a prefix,
// mirroring the attribute columns in the paper's §6.2.1 RIB schema
// (ip_prefix, next_hop, local_pref, metric, AS path).
type Route struct {
	Prefix    netaddr.Prefix
	NextHop   int         // next-hop AS; the paper's output-port proxy
	LocalPref int         // uniformly 0 in RouteViews dumps; kept for completeness
	MED       int         // multi-exit discriminator (lower preferred)
	ASPath    []int       // from the next hop to the origin, inclusive
	Rel       asgraph.Rel // relationship of the collector's host AS to NextHop
}

// PathLen returns the AS-path length in hops (len(ASPath)-1); a route with
// an empty path has length 0.
func (r Route) PathLen() int {
	if len(r.ASPath) == 0 {
		return 0
	}
	return len(r.ASPath) - 1
}

// Origin returns the final AS on the path (the prefix's origin), or -1 for
// an empty path.
func (r Route) Origin() int {
	if len(r.ASPath) == 0 {
		return -1
	}
	return r.ASPath[len(r.ASPath)-1]
}

// String renders the route like a RIB dump line.
func (r Route) String() string {
	return fmt.Sprintf("%s nh=AS%d lp=%d med=%d rel=%s path=%v",
		r.Prefix, r.NextHop, r.LocalPref, r.MED, r.Rel, r.ASPath)
}

// Better reports whether route a is preferred over route b under the
// paper's rules, applied in priority order:
//
//  1. higher local preference — and since RouteViews publishes local_pref
//     uniformly 0, relationship class (customer > peer > provider) is the
//     effective first rule, exactly as §6.2.1 does;
//  2. shorter AS path;
//  3. smaller MED;
//  4. (determinism) lower next-hop AS.
func Better(a, b Route) bool {
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if a.Rel != b.Rel {
		return a.Rel < b.Rel // RelCustomer < RelPeer < RelProvider
	}
	if a.PathLen() != b.PathLen() {
		return a.PathLen() < b.PathLen()
	}
	if a.MED != b.MED {
		return a.MED < b.MED
	}
	return a.NextHop < b.NextHop
}

// RIB is a routing information base: for each prefix, the set of candidate
// routes heard from the collector's sessions.
type RIB struct {
	byPrefix map[netaddr.Prefix][]Route
}

// NewRIB returns an empty RIB.
func NewRIB() *RIB {
	return &RIB{byPrefix: map[netaddr.Prefix][]Route{}}
}

// NewRIBSized returns an empty RIB pre-sized for about n prefixes, sparing
// bulk loaders the incremental map growth of NewRIB.
func NewRIBSized(n int) *RIB {
	return &RIB{byPrefix: make(map[netaddr.Prefix][]Route, n)}
}

// Add inserts a candidate route.
func (r *RIB) Add(rt Route) {
	r.byPrefix[rt.Prefix] = append(r.byPrefix[rt.Prefix], rt)
}

// AddHint is Add with a capacity hint for the prefix's candidate list: a
// prefix's first insert allocates room for hint routes up front. Collector
// builds know the exact ceiling (one candidate per feed session), which
// turns the per-prefix append-growth reallocations into a single right-sized
// allocation.
func (r *RIB) AddHint(rt Route, hint int) {
	rs, ok := r.byPrefix[rt.Prefix]
	if !ok && hint > 1 {
		rs = make([]Route, 0, hint)
	}
	r.byPrefix[rt.Prefix] = append(rs, rt)
}

// NumPrefixes returns the number of distinct prefixes with at least one
// route.
func (r *RIB) NumPrefixes() int { return len(r.byPrefix) }

// NumRoutes returns the total number of candidate routes.
func (r *RIB) NumRoutes() int {
	total := 0
	for _, rs := range r.byPrefix {
		total += len(rs)
	}
	return total
}

// Routes returns the candidate routes for prefix p (nil if none). The slice
// must not be modified.
func (r *RIB) Routes(p netaddr.Prefix) []Route { return r.byPrefix[p] }

// Best runs the decision process over the candidates for p.
func (r *RIB) Best(p netaddr.Prefix) (Route, bool) {
	rs := r.byPrefix[p]
	if len(rs) == 0 {
		return Route{}, false
	}
	best := rs[0]
	for _, rt := range rs[1:] {
		if Better(rt, best) {
			best = rt
		}
	}
	return best, true
}

// Prefixes returns all prefixes in deterministic (Compare) order.
func (r *RIB) Prefixes() []netaddr.Prefix {
	ps := make([]netaddr.Prefix, 0, len(r.byPrefix))
	for p := range r.byPrefix {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Compare(ps[j]) < 0 })
	return ps
}

// DeriveFIB computes the forwarding table: the best route's next-hop AS per
// prefix, in a longest-prefix-match trie.
func (r *RIB) DeriveFIB() *FIB {
	f := &FIB{}
	f.trie.Grow(len(r.byPrefix))
	for p, rs := range r.byPrefix {
		best := rs[0]
		for _, rt := range rs[1:] {
			if Better(rt, best) {
				best = rt
			}
		}
		f.trie.Insert(p, best)
	}
	return f
}

// FIB is a forwarding table: prefix -> selected best route, with output
// ports identified by next-hop AS (the paper's §6.2.2 proxy). The zero
// value is an empty FIB.
type FIB struct {
	trie netaddr.Trie[Route]
}

// Insert adds or replaces the forwarding entry for p.
func (f *FIB) Insert(p netaddr.Prefix, rt Route) { f.trie.Insert(p, rt) }

// Len returns the number of forwarding entries.
func (f *FIB) Len() int { return f.trie.Len() }

// Port returns the output port (next-hop AS) for address a via
// longest-prefix matching.
func (f *FIB) Port(a netaddr.Addr) (int, bool) {
	rt, ok := f.trie.Lookup(a)
	if !ok {
		return -1, false
	}
	return rt.NextHop, true
}

// RouteFor returns the selected route whose prefix is the longest match for
// address a.
func (f *FIB) RouteFor(a netaddr.Addr) (Route, bool) {
	return f.trie.Lookup(a)
}

// NextHopDegree counts the distinct output ports in use — the quantity the
// paper invokes to explain why the Georgia collector sees a much lower
// update rate than the Oregon collectors.
func (f *FIB) NextHopDegree() int {
	seen := map[int]bool{}
	f.trie.Walk(func(_ netaddr.Prefix, rt Route) bool {
		seen[rt.NextHop] = true
		return true
	})
	return len(seen)
}

// Walk visits every forwarding entry in prefix order.
func (f *FIB) Walk(fn func(netaddr.Prefix, Route) bool) { f.trie.Walk(fn) }
