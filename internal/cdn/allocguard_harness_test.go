package cdn

import (
	"fmt"
	"testing"

	"locind/internal/names"
	"locind/internal/netaddr"
)

// walkAllocs measures one full replay of tl.
func walkAllocs(t *testing.T, tl *Timeline) float64 {
	t.Helper()
	return testing.AllocsPerRun(10, func() {
		n := 0
		tl.Walk(func(_ Event, _, _ []netaddr.Addr) { n++ })
		if n != len(tl.Events) {
			t.Fatalf("walk visited %d of %d events", n, len(tl.Events))
		}
	})
}

// guardTimelines builds count synthetic timelines of the given length with
// distinct site names (CompleteTable keys on them).
func guardTimelines(count, events int) []Timeline {
	tls := make([]Timeline, count)
	for i := range tls {
		tls[i] = syntheticTimeline(events)
		tls[i].Site.Name = names.Name(fmt.Sprintf("site-%d.guard.test", i))
	}
	return tls
}

// allocGuardHarness maps each //lint:zeroalloc symbol in this package to
// its measurement, consumed by the generated TestAllocGuard
// (allocguard_gen_test.go). The replay paths legitimately allocate fixed
// warm-up state (walker buffers, the retained clones the API contracts
// promise), so each measurement is differential: replay a large and a
// small workload and return the allocation growth — zero growth pins the
// per-event cost at zero.
func allocGuardHarness() map[string]func(t *testing.T) float64 {
	return map[string]func(t *testing.T) float64{
		"Timeline.Walk": func(t *testing.T) float64 {
			small, large := syntheticTimeline(16), syntheticTimeline(512)
			return walkAllocs(t, &large) - walkAllocs(t, &small)
		},
		"Timeline.SetAt": func(t *testing.T) float64 {
			small, large := syntheticTimeline(16), syntheticTimeline(512)
			setAtAllocs := func(tl *Timeline) float64 {
				return testing.AllocsPerRun(10, func() {
					if got := tl.SetAt(tl.Hours); len(got) == 0 {
						t.Fatal("SetAt returned an empty set")
					}
				})
			}
			return setAtAllocs(&large) - setAtAllocs(&small)
		},
		"CompleteTable": func(t *testing.T) float64 {
			small, large := guardTimelines(8, 16), guardTimelines(8, 512)
			tableAllocs := func(tls []Timeline) float64 {
				return testing.AllocsPerRun(10, func() {
					if tab := CompleteTable(tls, tls[0].Hours); len(tab) != len(tls) {
						t.Fatalf("table has %d entries, want %d", len(tab), len(tls))
					}
				})
			}
			return tableAllocs(large) - tableAllocs(small)
		},
	}
}
