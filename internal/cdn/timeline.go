package cdn

import (
	"math"
	"math/rand"
	"slices"

	"locind/internal/names"
	"locind/internal/netaddr"
	"locind/internal/par"
)

// Event is one content mobility event: at the given hour, the address set
// of the site changed by removing and adding the listed addresses.
type Event struct {
	Hour    int
	Removed []netaddr.Addr
	Added   []netaddr.Addr
}

// Timeline is the hourly Addrs(d, t) history of one site, stored as an
// initial set plus deltas (the full per-hour materialization of a 12K-name,
// multi-week sweep would not fit in memory, and the update-cost analysis
// only ever needs the before/after pair around each event).
type Timeline struct {
	Site    Site
	Hours   int
	Initial []netaddr.Addr
	Events  []Event
}

// EventCount returns the number of mobility events over the whole timeline.
func (tl *Timeline) EventCount() int { return len(tl.Events) }

// EventsPerDay buckets the events into 24-hour days. The bucket count covers
// every event hour, so a boundary event at Hour == Hours (legal by
// construction: an event that lands exactly as the window closes) gets its
// own day instead of an out-of-range index.
func (tl *Timeline) EventsPerDay() []int {
	days := (tl.Hours + 23) / 24
	for i := range tl.Events {
		if d := tl.Events[i].Hour / 24; d >= days {
			days = d + 1
		}
	}
	out := make([]int, days)
	for _, e := range tl.Events {
		out[e.Hour/24]++
	}
	return out
}

// setWalker maintains the sorted address set of a timeline replay
// incrementally: the current set is a sorted slice, and each event is
// applied as a single ordered merge of (current minus Removed) with Added
// into a ping-pong buffer. After the buffers warm up to the set's size,
// applying an event allocates nothing — the property the per-event alloc
// regression test pins and the Fig 11b/ablation hot loop depends on.
type setWalker struct {
	cur, next []netaddr.Addr // ping-pong buffers; cur is the live set
	rem, add  []netaddr.Addr // sorted scratch copies of one event's deltas
}

// reset loads the initial set (sorted, deduplicated — the same
// canonicalization the map-based replay produced) and primes the buffers.
func (w *setWalker) reset(initial []netaddr.Addr) {
	w.cur = append(w.cur[:0], initial...)
	slices.Sort(w.cur)
	w.cur = slices.Compact(w.cur)
	if cap(w.next) < len(w.cur) {
		w.next = make([]netaddr.Addr, 0, len(w.cur)+8)
	}
}

// sortAddrs is an insertion sort: event deltas hold one or two addresses,
// where a general-purpose sort only adds overhead.
func sortAddrs(xs []netaddr.Addr) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// emitAddr appends v unless it repeats the previously emitted address; the
// merged stream is non-decreasing, so this single guard deduplicates.
func emitAddr(out []netaddr.Addr, v netaddr.Addr) []netaddr.Addr {
	if n := len(out); n > 0 && out[n-1] == v {
		return out
	}
	return append(out, v)
}

// apply merges one event into the set, returning the after-set (which lives
// in the walker's spare buffer until flip installs it as current). The merge
// reproduces the map semantics exactly: deletions first, then additions, so
// an address that is both removed and re-added stays present.
func (w *setWalker) apply(removed, added []netaddr.Addr) []netaddr.Addr {
	w.rem = append(w.rem[:0], removed...)
	sortAddrs(w.rem)
	w.add = append(w.add[:0], added...)
	sortAddrs(w.add)
	out := w.next[:0]
	cur, add, rem := w.cur, w.add, w.rem
	i, j, k := 0, 0, 0
	for i < len(cur) || j < len(add) {
		switch {
		case i < len(cur) && j < len(add) && cur[i] == add[j]:
			// Present and re-added: present afterwards even if also removed.
			v := cur[i]
			i, j = i+1, j+1
			out = emitAddr(out, v)
		case j >= len(add) || (i < len(cur) && cur[i] < add[j]):
			v := cur[i]
			i++
			for k < len(rem) && rem[k] < v {
				k++
			}
			if k < len(rem) && rem[k] == v {
				continue // removed and not re-added
			}
			out = emitAddr(out, v)
		default:
			v := add[j]
			j++
			out = emitAddr(out, v)
		}
	}
	w.next = out
	return out
}

// flip installs the last after-set as current.
func (w *setWalker) flip() { w.cur, w.next = w.next, w.cur }

// runTo replays events through the given hour (inclusive).
func (w *setWalker) runTo(tl *Timeline, hour int) {
	w.reset(tl.Initial)
	for i := range tl.Events {
		e := &tl.Events[i]
		if e.Hour > hour {
			break
		}
		w.apply(e.Removed, e.Added)
		w.flip()
	}
}

// SetAt reconstructs the address set in effect at the given hour (after any
// event in that hour), sorted ascending. The returned slice is freshly
// allocated and safe to retain.
//
//lint:zeroalloc per replayed event; only the returned clone allocates
func (tl *Timeline) SetAt(hour int) []netaddr.Addr {
	var w setWalker
	w.runTo(tl, hour)
	return slices.Clone(w.cur) //lint:allow allocflow the retained return copy is the function's contract
}

// Walk replays the timeline, calling fn with the before/after sets of every
// event in order. Sets are sorted; fn must not retain them across calls —
// they alias the walker's two ping-pong buffers, which are overwritten by
// the next event's merge.
//
//lint:zeroalloc per event after the walker's fixed warm-up
func (tl *Timeline) Walk(fn func(e Event, before, after []netaddr.Addr)) {
	if len(tl.Events) == 0 {
		return
	}
	var w setWalker
	w.reset(tl.Initial)
	for i := range tl.Events {
		e := &tl.Events[i]
		after := w.apply(e.Removed, e.Added)
		fn(*e, w.cur, after)
		w.flip()
	}
}

// siteState is the mutable hosting state behind one site's timeline.
type siteState struct {
	originActive []netaddr.Addr // currently published origin addresses
	originAS     []int          // the AS each active origin address lives in
	originSpare  []netaddr.Addr
	edgeActive   map[int]netaddr.Addr // edge AS -> published VIP
	edgeGen      map[int]int
	lbRate       float64
	edgeRate     float64
	renumber     float64
	rehost       float64
}

// Timelines simulates the deployment for the given number of hours and
// returns one timeline per site. The simulation is deterministic in rng.
func (d *Deployment) Timelines(hours int, rng *rand.Rand) []Timeline {
	return d.TimelinesParallel(hours, rng, 1)
}

// TimelinesParallel is Timelines fanned out across parallel workers (0 =
// GOMAXPROCS). One child seed per site is drawn from rng up front, in site
// order, and each site is then simulated with its own rand.Rand built from
// that seed — so the trace is a pure function of rng's starting state and
// bit-identical at every parallelism degree, including 1.
func (d *Deployment) TimelinesParallel(hours int, rng *rand.Rand, parallel int) []Timeline {
	seeds := make([]int64, len(d.Sites))
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	out := make([]Timeline, len(d.Sites))
	par.ForEach(parallel, len(d.Sites), func(i int) {
		out[i] = d.simulateSite(d.Sites[i], hours, rand.New(rand.NewSource(seeds[i])))
	})
	return out
}

// eventBuilder accumulates a timeline's events with every address delta in
// one shared slab, so a timeline of n events costs two allocations (slab +
// event headers) instead of ~2n individual Removed/Added slices.
type eventBuilder struct {
	recs []eventRec
	slab []netaddr.Addr
}

type eventRec struct {
	hour         int
	remLo, remHi int
	addHi        int
}

func (b *eventBuilder) add(hour int, removed, added []netaddr.Addr) {
	lo := len(b.slab)
	b.slab = append(b.slab, removed...)
	mid := len(b.slab)
	b.slab = append(b.slab, added...)
	b.recs = append(b.recs, eventRec{hour: hour, remLo: lo, remHi: mid, addHi: len(b.slab)})
}

// finish materializes the Event slice; Removed/Added are full-capacity
// subslices of the slab, nil when empty (matching the per-event append
// construction this replaces).
func (b *eventBuilder) finish() []Event {
	if len(b.recs) == 0 {
		return nil
	}
	evs := make([]Event, len(b.recs))
	for i, r := range b.recs {
		e := &evs[i]
		e.Hour = r.hour
		if r.remHi > r.remLo {
			e.Removed = b.slab[r.remLo:r.remHi:r.remHi]
		}
		if r.addHi > r.remHi {
			e.Added = b.slab[r.remHi:r.addHi:r.addHi]
		}
	}
	return evs
}

func (d *Deployment) simulateSite(site Site, hours int, rng *rand.Rand) Timeline {
	cfg := d.cfg
	st := &siteState{
		edgeActive: map[int]netaddr.Addr{},
		edgeGen:    map[int]int{},
	}

	// Origin pool: OriginPool candidate addresses in the origin AS, a
	// random few of them published at a time (DNS round robin).
	pool := make([]netaddr.Addr, 0, cfg.OriginPool)
	for i := 0; i < cfg.OriginPool; i++ {
		pool = append(pool, d.edgeAddr(site.Name, site.OriginAS, 1000+i))
	}
	nActive := cfg.OriginActiveMin
	if cfg.OriginActiveMax > cfg.OriginActiveMin {
		nActive += rng.Intn(cfg.OriginActiveMax - cfg.OriginActiveMin + 1)
	}
	if site.Class == Unpopular {
		nActive = 1 + rng.Intn(2)
	}
	if nActive > len(pool) {
		nActive = len(pool)
	}
	st.originActive = append(st.originActive, pool[:nActive]...)
	for range st.originActive {
		st.originAS = append(st.originAS, site.OriginAS)
	}
	st.originSpare = append(st.originSpare, pool[nActive:]...)
	if site.ReplicaAS >= 0 {
		st.originActive = append(st.originActive, d.edgeAddr(site.Name, site.ReplicaAS, 0))
		st.originAS = append(st.originAS, site.ReplicaAS)
	}

	// CDN edge set.
	if site.CDN && len(d.EdgePool) > 0 {
		k := cfg.ActiveEdgesMin
		if cfg.ActiveEdgesMax > cfg.ActiveEdgesMin {
			k += rng.Intn(cfg.ActiveEdgesMax - cfg.ActiveEdgesMin + 1)
		}
		if k > len(d.EdgePool) {
			k = len(d.EdgePool)
		}
		for _, idx := range rng.Perm(len(d.EdgePool))[:k] {
			as := d.EdgePool[idx]
			st.edgeActive[as] = d.edgeAddr(site.Name, as, 0)
		}
	}

	// Per-site churn rates.
	if site.Class == Popular {
		st.lbRate = clamp01(cfg.LBRotMedian * math.Exp(cfg.LBRotSigma*rng.NormFloat64()))
		st.edgeRate = clamp01(cfg.EdgeChurnMedian * math.Exp(cfg.EdgeChurnSigma*rng.NormFloat64()))
	} else {
		st.renumber = cfg.UnpopRenumber
		st.rehost = cfg.UnpopRehost
	}

	tl := Timeline{Site: site, Hours: hours, Initial: st.snapshot()}
	var b eventBuilder
	// An hour sees at most two removals and two additions (one per churn
	// mechanism in each class branch below), so fixed scratch suffices.
	var remBuf, addBuf [2]netaddr.Addr
	for h := 1; h < hours; h++ {
		removed, added := remBuf[:0], addBuf[:0]
		if site.Class == Popular {
			// Origin load-balancer rotation: swap one active origin
			// address for a spare.
			if rng.Float64() < st.lbRate && len(st.originSpare) > 0 && len(st.originActive) > 0 {
				ai := rng.Intn(len(st.originActive))
				si := rng.Intn(len(st.originSpare))
				removed = append(removed, st.originActive[ai])
				added = append(added, st.originSpare[si])
				st.originActive[ai], st.originSpare[si] = st.originSpare[si], st.originActive[ai]
			}
			// CDN edge churn: retire one edge cluster, light up another.
			if site.CDN && rng.Float64() < st.edgeRate && len(st.edgeActive) > 0 {
				actives := sortedKeys(st.edgeActive)
				victim := actives[rng.Intn(len(actives))]
				replacement := d.EdgePool[rng.Intn(len(d.EdgePool))]
				if _, dup := st.edgeActive[replacement]; !dup && replacement != victim {
					removed = append(removed, st.edgeActive[victim])
					delete(st.edgeActive, victim)
					st.edgeGen[replacement]++
					a := d.edgeAddr(site.Name, replacement, st.edgeGen[replacement])
					st.edgeActive[replacement] = a
					added = append(added, a)
				}
			}
		} else {
			// Long-tail churn: the rare renumber within the address's own
			// AS (same forwarding port everywhere), and the far rarer move
			// to a different hosting AS — the only unpopular event that can
			// ever induce a router update.
			if rng.Float64() < st.renumber && len(st.originActive) > 0 {
				i := rng.Intn(len(st.originActive))
				old := st.originActive[i]
				nw := d.edgeAddr(site.Name, st.originAS[i], 2000+h)
				if nw != old {
					removed = append(removed, old)
					added = append(added, nw)
					st.originActive[i] = nw
				}
			}
			if rng.Float64() < st.rehost && len(st.originActive) > 0 && len(d.EdgePool) > 0 {
				i := rng.Intn(len(st.originActive))
				old := st.originActive[i]
				newAS := d.EdgePool[rng.Intn(len(d.EdgePool))]
				nw := d.edgeAddr(site.Name, newAS, h)
				if nw != old {
					removed = append(removed, old)
					added = append(added, nw)
					st.originActive[i] = nw
					st.originAS[i] = newAS
				}
			}
		}
		if len(removed) > 0 || len(added) > 0 {
			b.add(h, removed, added)
		}
	}
	tl.Events = b.finish()
	return tl
}

func (st *siteState) snapshot() []netaddr.Addr {
	out := make([]netaddr.Addr, 0, len(st.originActive)+len(st.edgeActive))
	out = append(out, st.originActive...)
	for _, a := range st.edgeActive {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}

func sortedKeys(m map[int]netaddr.Addr) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 0.95 {
		return 0.95
	}
	return x
}

// CompleteTable builds the complete name-forwarding input of §3.3.2 for the
// given timelines at a given hour: each site name mapped to its address
// set. The caller (internal/core) turns address sets into ports per router.
// One walker is reused across all timelines, so the table costs one
// allocation per name (the retained set) plus the pre-sized map.
//
//lint:zeroalloc per replayed event; the per-name retained sets and the output map are the contract
func CompleteTable(tls []Timeline, hour int) map[names.Name][]netaddr.Addr {
	out := make(map[names.Name][]netaddr.Addr, len(tls))
	var w setWalker
	for i := range tls {
		w.runTo(&tls[i], hour)
		out[tls[i].Site.Name] = slices.Clone(w.cur) //lint:allow allocflow one retained set per name is the function's contract
	}
	return out
}
