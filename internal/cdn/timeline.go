package cdn

import (
	"math"
	"math/rand"
	"sort"

	"locind/internal/names"
	"locind/internal/netaddr"
	"locind/internal/par"
)

// Event is one content mobility event: at the given hour, the address set
// of the site changed by removing and adding the listed addresses.
type Event struct {
	Hour    int
	Removed []netaddr.Addr
	Added   []netaddr.Addr
}

// Timeline is the hourly Addrs(d, t) history of one site, stored as an
// initial set plus deltas (the full per-hour materialization of a 12K-name,
// multi-week sweep would not fit in memory, and the update-cost analysis
// only ever needs the before/after pair around each event).
type Timeline struct {
	Site    Site
	Hours   int
	Initial []netaddr.Addr
	Events  []Event
}

// EventCount returns the number of mobility events over the whole timeline.
func (tl *Timeline) EventCount() int { return len(tl.Events) }

// EventsPerDay buckets the events into 24-hour days.
func (tl *Timeline) EventsPerDay() []int {
	days := (tl.Hours + 23) / 24
	out := make([]int, days)
	for _, e := range tl.Events {
		out[e.Hour/24]++
	}
	return out
}

// SetAt reconstructs the address set in effect at the given hour (after any
// event in that hour), sorted ascending.
func (tl *Timeline) SetAt(hour int) []netaddr.Addr {
	set := map[netaddr.Addr]bool{}
	for _, a := range tl.Initial {
		set[a] = true
	}
	for _, e := range tl.Events {
		if e.Hour > hour {
			break
		}
		for _, a := range e.Removed {
			delete(set, a)
		}
		for _, a := range e.Added {
			set[a] = true
		}
	}
	out := make([]netaddr.Addr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Walk replays the timeline, calling fn with the before/after sets of every
// event in order. Sets are sorted; fn must not retain them across calls.
func (tl *Timeline) Walk(fn func(e Event, before, after []netaddr.Addr)) {
	cur := map[netaddr.Addr]bool{}
	for _, a := range tl.Initial {
		cur[a] = true
	}
	materialize := func() []netaddr.Addr {
		out := make([]netaddr.Addr, 0, len(cur))
		for a := range cur {
			out = append(out, a)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	before := materialize()
	for _, e := range tl.Events {
		for _, a := range e.Removed {
			delete(cur, a)
		}
		for _, a := range e.Added {
			cur[a] = true
		}
		after := materialize()
		fn(e, before, after)
		before = after
	}
}

// siteState is the mutable hosting state behind one site's timeline.
type siteState struct {
	originActive []netaddr.Addr // currently published origin addresses
	originAS     []int          // the AS each active origin address lives in
	originSpare  []netaddr.Addr
	edgeActive   map[int]netaddr.Addr // edge AS -> published VIP
	edgeGen      map[int]int
	lbRate       float64
	edgeRate     float64
	renumber     float64
	rehost       float64
}

// Timelines simulates the deployment for the given number of hours and
// returns one timeline per site. The simulation is deterministic in rng.
func (d *Deployment) Timelines(hours int, rng *rand.Rand) []Timeline {
	return d.TimelinesParallel(hours, rng, 1)
}

// TimelinesParallel is Timelines fanned out across parallel workers (0 =
// GOMAXPROCS). One child seed per site is drawn from rng up front, in site
// order, and each site is then simulated with its own rand.Rand built from
// that seed — so the trace is a pure function of rng's starting state and
// bit-identical at every parallelism degree, including 1.
func (d *Deployment) TimelinesParallel(hours int, rng *rand.Rand, parallel int) []Timeline {
	seeds := make([]int64, len(d.Sites))
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	out := make([]Timeline, len(d.Sites))
	par.ForEach(parallel, len(d.Sites), func(i int) {
		out[i] = d.simulateSite(d.Sites[i], hours, rand.New(rand.NewSource(seeds[i])))
	})
	return out
}

func (d *Deployment) simulateSite(site Site, hours int, rng *rand.Rand) Timeline {
	cfg := d.cfg
	st := &siteState{
		edgeActive: map[int]netaddr.Addr{},
		edgeGen:    map[int]int{},
	}

	// Origin pool: OriginPool candidate addresses in the origin AS, a
	// random few of them published at a time (DNS round robin).
	pool := make([]netaddr.Addr, 0, cfg.OriginPool)
	for i := 0; i < cfg.OriginPool; i++ {
		pool = append(pool, d.edgeAddr(site.Name, site.OriginAS, 1000+i))
	}
	nActive := cfg.OriginActiveMin
	if cfg.OriginActiveMax > cfg.OriginActiveMin {
		nActive += rng.Intn(cfg.OriginActiveMax - cfg.OriginActiveMin + 1)
	}
	if site.Class == Unpopular {
		nActive = 1 + rng.Intn(2)
	}
	if nActive > len(pool) {
		nActive = len(pool)
	}
	st.originActive = append(st.originActive, pool[:nActive]...)
	for range st.originActive {
		st.originAS = append(st.originAS, site.OriginAS)
	}
	st.originSpare = append(st.originSpare, pool[nActive:]...)
	if site.ReplicaAS >= 0 {
		st.originActive = append(st.originActive, d.edgeAddr(site.Name, site.ReplicaAS, 0))
		st.originAS = append(st.originAS, site.ReplicaAS)
	}

	// CDN edge set.
	if site.CDN && len(d.EdgePool) > 0 {
		k := cfg.ActiveEdgesMin
		if cfg.ActiveEdgesMax > cfg.ActiveEdgesMin {
			k += rng.Intn(cfg.ActiveEdgesMax - cfg.ActiveEdgesMin + 1)
		}
		if k > len(d.EdgePool) {
			k = len(d.EdgePool)
		}
		for _, idx := range rng.Perm(len(d.EdgePool))[:k] {
			as := d.EdgePool[idx]
			st.edgeActive[as] = d.edgeAddr(site.Name, as, 0)
		}
	}

	// Per-site churn rates.
	if site.Class == Popular {
		st.lbRate = clamp01(cfg.LBRotMedian * math.Exp(cfg.LBRotSigma*rng.NormFloat64()))
		st.edgeRate = clamp01(cfg.EdgeChurnMedian * math.Exp(cfg.EdgeChurnSigma*rng.NormFloat64()))
	} else {
		st.renumber = cfg.UnpopRenumber
		st.rehost = cfg.UnpopRehost
	}

	tl := Timeline{Site: site, Hours: hours, Initial: st.snapshot()}
	for h := 1; h < hours; h++ {
		var removed, added []netaddr.Addr
		if site.Class == Popular {
			// Origin load-balancer rotation: swap one active origin
			// address for a spare.
			if rng.Float64() < st.lbRate && len(st.originSpare) > 0 && len(st.originActive) > 0 {
				ai := rng.Intn(len(st.originActive))
				si := rng.Intn(len(st.originSpare))
				removed = append(removed, st.originActive[ai])
				added = append(added, st.originSpare[si])
				st.originActive[ai], st.originSpare[si] = st.originSpare[si], st.originActive[ai]
			}
			// CDN edge churn: retire one edge cluster, light up another.
			if site.CDN && rng.Float64() < st.edgeRate && len(st.edgeActive) > 0 {
				actives := sortedKeys(st.edgeActive)
				victim := actives[rng.Intn(len(actives))]
				replacement := d.EdgePool[rng.Intn(len(d.EdgePool))]
				if _, dup := st.edgeActive[replacement]; !dup && replacement != victim {
					removed = append(removed, st.edgeActive[victim])
					delete(st.edgeActive, victim)
					st.edgeGen[replacement]++
					a := d.edgeAddr(site.Name, replacement, st.edgeGen[replacement])
					st.edgeActive[replacement] = a
					added = append(added, a)
				}
			}
		} else {
			// Long-tail churn: the rare renumber within the address's own
			// AS (same forwarding port everywhere), and the far rarer move
			// to a different hosting AS — the only unpopular event that can
			// ever induce a router update.
			if rng.Float64() < st.renumber && len(st.originActive) > 0 {
				i := rng.Intn(len(st.originActive))
				old := st.originActive[i]
				nw := d.edgeAddr(site.Name, st.originAS[i], 2000+h)
				if nw != old {
					removed = append(removed, old)
					added = append(added, nw)
					st.originActive[i] = nw
				}
			}
			if rng.Float64() < st.rehost && len(st.originActive) > 0 && len(d.EdgePool) > 0 {
				i := rng.Intn(len(st.originActive))
				old := st.originActive[i]
				newAS := d.EdgePool[rng.Intn(len(d.EdgePool))]
				nw := d.edgeAddr(site.Name, newAS, h)
				if nw != old {
					removed = append(removed, old)
					added = append(added, nw)
					st.originActive[i] = nw
					st.originAS[i] = newAS
				}
			}
		}
		if len(removed) > 0 || len(added) > 0 {
			tl.Events = append(tl.Events, Event{Hour: h, Removed: removed, Added: added})
		}
	}
	return tl
}

func (st *siteState) snapshot() []netaddr.Addr {
	out := make([]netaddr.Addr, 0, len(st.originActive)+len(st.edgeActive))
	out = append(out, st.originActive...)
	for _, a := range st.edgeActive {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedKeys(m map[int]netaddr.Addr) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 0.95 {
		return 0.95
	}
	return x
}

// CompleteTable builds the complete name-forwarding input of §3.3.2 for the
// given timelines at a given hour: each site name mapped to its address
// set. The caller (internal/core) turns address sets into ports per router.
func CompleteTable(tls []Timeline, hour int) map[names.Name][]netaddr.Addr {
	out := make(map[names.Name][]netaddr.Addr, len(tls))
	for i := range tls {
		out[tls[i].Site.Name] = tls[i].SetAt(hour)
	}
	return out
}
