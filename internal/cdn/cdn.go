// Package cdn models how content is named, hosted, and moved across
// addresses: a synthetic Alexa-like namespace (popular domains with many
// subdomains, a long tail with hardly any), CDN delegation with
// locality-aware edge placement, origin-server DNS load balancing, and the
// hourly Addrs(d, t) timelines whose flux is the paper's content-mobility
// workload (§7.1).
package cdn

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/names"
	"locind/internal/netaddr"
)

// Class splits the workload the way the paper does: the top-500 popularity
// band versus the long tail around rank one million.
type Class uint8

// Workload classes.
const (
	Popular Class = iota
	Unpopular
)

// String names the class.
func (c Class) String() string {
	if c == Unpopular {
		return "unpopular"
	}
	return "popular"
}

// Config parameterizes namespace and deployment synthesis. The defaults
// mirror the paper's measured facts: 500 domains per class, ~12K popular
// subdomains in total, 24.5% of popular domains (1.6% of unpopular) CDN-
// delegated.
type Config struct {
	PopularDomains   int
	UnpopularDomains int

	// SubdomainMeanPopular is the mean subdomain count of a popular domain
	// (the paper's 500 popular domains expand to 12,342 names ≈ 24.7 each);
	// unpopular domains draw from [0, SubdomainMaxUnpopular].
	SubdomainMeanPopular  float64
	SubdomainMaxUnpopular int

	PopularCDNFrac   float64
	UnpopularCDNFrac float64

	// HostingPerRegion and EdgesPerRegion size the pools of hosting ASes
	// (origin servers) and CDN edge ASes carved out of each region's stubs.
	// EdgeTransitPerRegion additionally embeds edge clusters inside the
	// region's transit ASes (as real CDNs deploy inside ISP PoPs), which is
	// what makes an edge the topologically closest copy at nearby routers.
	HostingPerRegion     int
	EdgesPerRegion       int
	EdgeTransitPerRegion int

	// ActiveEdges is the typical number of CDN edge clusters announcing a
	// delegated name at once; OriginPool/OriginActive shape DNS round-robin
	// at origin servers.
	ActiveEdgesMin, ActiveEdgesMax   int
	OriginPool                       int
	OriginActiveMin, OriginActiveMax int

	// Churn rates, per hour. LBRotMedian is the median per-domain
	// probability of a load-balancer rotation (lognormal across domains,
	// sigma LBRotSigma); EdgeChurnMedian likewise for edge-set changes of
	// CDN names. Unpopular names renumber/rehost at the fixed tiny rates
	// below, reflecting "a small number of network locations that rarely
	// change".
	LBRotMedian     float64
	LBRotSigma      float64
	EdgeChurnMedian float64
	EdgeChurnSigma  float64
	UnpopRenumber   float64
	UnpopRehost     float64
}

// DefaultConfig returns the calibrated configuration.
func DefaultConfig() Config {
	return Config{
		PopularDomains:        500,
		UnpopularDomains:      500,
		SubdomainMeanPopular:  24,
		SubdomainMaxUnpopular: 2,
		PopularCDNFrac:        0.245,
		UnpopularCDNFrac:      0.016,
		HostingPerRegion:      10,
		EdgesPerRegion:        7,
		EdgeTransitPerRegion:  3,
		ActiveEdgesMin:        8,
		ActiveEdgesMax:        20,
		OriginPool:            8,
		OriginActiveMin:       2,
		OriginActiveMax:       4,
		LBRotMedian:           0.055,
		LBRotSigma:            1.1,
		EdgeChurnMedian:       0.05,
		EdgeChurnSigma:        0.9,
		UnpopRenumber:         0.002,
		UnpopRehost:           0.00002,
	}
}

// Site is one named content principal (an enterprise domain or one of its
// subdomains) together with its hosting arrangement.
type Site struct {
	Name   names.Name
	Parent names.Name // enterprise domain ("" when Name is the domain itself)
	Class  Class
	CDN    bool

	OriginAS  int
	ReplicaAS int // -1 unless the site keeps a fault-tolerance replica
}

// Deployment is the synthesized content world: the namespace, hosting
// assignments, and the CDN edge pool.
type Deployment struct {
	Sites    []Site
	EdgePool []int // candidate edge ASes, all regions
	cfg      Config
	pt       *bgp.PrefixTable
}

// Generate synthesizes a Deployment over the internetwork g. Hosting and
// edge ASes are taken from the tail of each region's stub list so they
// never collide with the access-network pools the device workload carves
// from the front.
func Generate(g *asgraph.Graph, pt *bgp.PrefixTable, cfg Config, rng *rand.Rand) (*Deployment, error) {
	if cfg.PopularDomains < 1 || cfg.UnpopularDomains < 0 {
		return nil, fmt.Errorf("cdn: bad domain counts %d/%d", cfg.PopularDomains, cfg.UnpopularDomains)
	}
	var hosting, edges []int
	for r := asgraph.Region(0); r < asgraph.Region(6); r++ {
		stubs := g.StubsInRegion(r)
		need := cfg.HostingPerRegion + cfg.EdgesPerRegion
		if len(stubs) < need {
			continue // a sparse region simply contributes no hosting
		}
		tail := stubs[len(stubs)-need:]
		hosting = append(hosting, tail[:cfg.HostingPerRegion]...)
		// Edge ASes must carry distinguishable forwarding ports, or edge
		// churn would be invisible to routers: prefer stubs that do NOT buy
		// transit from the regional mega (real CDN edge clusters sit inside
		// diverse ISPs, not behind the one dominant wholesale transit).
		// The regional mega is the lowest-ID tier-2 in the region.
		mega := -1
		for _, x := range g.ASesInRegion(r) {
			if g.Tier(x) == 2 {
				mega = x
				break
			}
		}
		var diverse []int
		for i := len(stubs) - need - 1; i >= 0 && len(diverse) < cfg.EdgesPerRegion; i-- {
			s := stubs[i]
			megaHomed := false
			for _, p := range g.Providers(s) {
				if int(p) == mega {
					megaHomed = true
					break
				}
			}
			if !megaHomed {
				diverse = append(diverse, s)
			}
		}
		if len(diverse) < cfg.EdgesPerRegion {
			diverse = append(diverse, tail[cfg.HostingPerRegion:cfg.HostingPerRegion+cfg.EdgesPerRegion-len(diverse)]...)
		}
		edges = append(edges, diverse...)
		// ISP-embedded clusters: the 2nd..(1+EdgeTransitPerRegion)-th tier-2
		// of the region (skipping the mega so edge ports stay diverse).
		t2Count := 0
		for _, x := range g.ASesInRegion(r) {
			if g.Tier(x) != 2 {
				continue
			}
			t2Count++
			if t2Count == 1 {
				continue // the mega
			}
			if t2Count > 1+cfg.EdgeTransitPerRegion {
				break
			}
			edges = append(edges, x)
		}
	}
	if len(hosting) == 0 || len(edges) == 0 {
		return nil, fmt.Errorf("cdn: graph too small for hosting/edge pools")
	}

	d := &Deployment{EdgePool: edges, cfg: cfg, pt: pt}
	addDomain := func(idx int, class Class) {
		var domain names.Name
		cdnFrac := cfg.PopularCDNFrac
		nSub := 0
		if class == Popular {
			domain = names.Name(fmt.Sprintf("pop%03d.com", idx))
			// Geometric-ish subdomain count with the configured mean.
			nSub = int(math.Round(rng.ExpFloat64() * cfg.SubdomainMeanPopular))
			if nSub > 6*int(cfg.SubdomainMeanPopular) {
				nSub = 6 * int(cfg.SubdomainMeanPopular)
			}
		} else {
			domain = names.Name(fmt.Sprintf("tail%03d.org", idx))
			cdnFrac = cfg.UnpopularCDNFrac
			if cfg.SubdomainMaxUnpopular > 0 {
				nSub = rng.Intn(cfg.SubdomainMaxUnpopular + 1)
			}
		}
		isCDN := rng.Float64() < cdnFrac
		origin := hosting[rng.Intn(len(hosting))]
		replica := -1
		if class == Unpopular && rng.Float64() < 0.3 {
			replica = hosting[rng.Intn(len(hosting))]
		}
		mk := func(n names.Name, parent names.Name) Site {
			s := Site{Name: n, Parent: parent, Class: class, OriginAS: origin, ReplicaAS: replica}
			// Subdomains of a CDN-delegated domain are usually (not
			// always) CNAME-aliased into the CDN; the apex often is not.
			if isCDN {
				if parent == "" {
					s.CDN = rng.Float64() < 0.5
				} else {
					s.CDN = rng.Float64() < 0.8
				}
			}
			return s
		}
		d.Sites = append(d.Sites, mk(domain, ""))
		for s := 0; s < nSub; s++ {
			sub := names.Join(fmt.Sprintf("s%02d", s), domain)
			d.Sites = append(d.Sites, mk(sub, domain))
		}
	}
	for i := 0; i < cfg.PopularDomains; i++ {
		addDomain(i, Popular)
	}
	for i := 0; i < cfg.UnpopularDomains; i++ {
		addDomain(i, Unpopular)
	}
	return d, nil
}

// SitesByClass returns the sites in the given class, in namespace order.
func (d *Deployment) SitesByClass(c Class) []Site {
	var out []Site
	for _, s := range d.Sites {
		if s.Class == c {
			out = append(out, s)
		}
	}
	return out
}

// FNV-1a 64-bit parameters (hash/fnv), inlined so edgeAddr hashes on the
// stack instead of allocating a hash.Hash64 and fmt boxing per call — the
// function runs once per candidate address of every simulated site.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvBytes(h uint64, bs []byte) uint64 {
	for _, b := range bs {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	return h
}

// edgeAddr mints the stable address a given edge AS uses for a given site
// (real CDNs hand out per-customer VIPs; keeping it a deterministic hash
// keeps timelines reproducible and sets comparable across hours). The hash
// is FNV-1a over "site|edgeAS|generation", byte-identical to the previous
// fnv.New64a/Fprintf formulation (pinned by TestEdgeAddrMatchesFNVReference)
// but allocation-free.
func (d *Deployment) edgeAddr(site names.Name, edgeAS int, generation int) netaddr.Addr {
	var buf [20]byte
	h := uint64(fnvOffset64)
	for i := 0; i < len(site); i++ {
		h = (h ^ uint64(site[i])) * fnvPrime64
	}
	h = (h ^ '|') * fnvPrime64
	h = fnvBytes(h, strconv.AppendInt(buf[:0], int64(edgeAS), 10))
	h = (h ^ '|') * fnvPrime64
	h = fnvBytes(h, strconv.AppendInt(buf[:0], int64(generation), 10))
	return d.pt.AddrIn(edgeAS, h%(1<<16))
}
