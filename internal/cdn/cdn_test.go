package cdn

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"testing"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/names"
	"locind/internal/netaddr"
	"locind/internal/stats"
)

func testWorld(t testing.TB) (*asgraph.Graph, *bgp.PrefixTable) {
	t.Helper()
	cfg := asgraph.DefaultSynthConfig()
	cfg.Tier2 = 80
	cfg.Stubs = 700
	g, err := asgraph.Synthesize(cfg, rand.New(rand.NewSource(101)))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := bgp.NewPrefixTable(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g, pt
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.PopularDomains = 60
	cfg.UnpopularDomains = 60
	return cfg
}

func genDeployment(t testing.TB, seed int64) *Deployment {
	t.Helper()
	g, pt := testWorld(t)
	d, err := Generate(g, pt, smallConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateNamespaceShape(t *testing.T) {
	d := genDeployment(t, 1)
	pop := d.SitesByClass(Popular)
	unpop := d.SitesByClass(Unpopular)
	if len(pop) == 0 || len(unpop) == 0 {
		t.Fatal("empty classes")
	}
	// Popular domains should expand to roughly SubdomainMeanPopular names
	// apiece; unpopular barely expand at all.
	if got := float64(len(pop)) / 60; got < 12 || got > 40 {
		t.Errorf("popular expansion = %.1f names/domain, want ~25", got)
	}
	if got := float64(len(unpop)) / 60; got > 3 {
		t.Errorf("unpopular expansion = %.1f names/domain, want ~2", got)
	}
	// CDN delegation fractions at the domain (apex grouping) level.
	cdnPop, domPop := 0, 0
	for _, s := range pop {
		if s.Parent == "" {
			domPop++
		}
		if s.CDN {
			cdnPop++
		}
	}
	if domPop != 60 {
		t.Fatalf("popular apex count = %d", domPop)
	}
	if cdnPop == 0 {
		t.Error("no CDN-delegated popular names")
	}
	cdnUnpop := 0
	for _, s := range unpop {
		if s.CDN {
			cdnUnpop++
		}
	}
	if float64(cdnUnpop)/float64(len(unpop)) > 0.1 {
		t.Errorf("unpopular CDN fraction too high: %d/%d", cdnUnpop, len(unpop))
	}
	// Subdomains must carry their parent.
	for _, s := range pop {
		if s.Parent != "" && !s.Name.IsStrictSubdomainOf(s.Parent) {
			t.Fatalf("site %q not a subdomain of parent %q", s.Name, s.Parent)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	g, pt := testWorld(t)
	bad := smallConfig()
	bad.PopularDomains = 0
	if _, err := Generate(g, pt, bad, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero popular domains should fail")
	}
	tiny := asgraph.NewGraph(3)
	pt2, _ := bgp.NewPrefixTable(tiny, 0)
	if _, err := Generate(tiny, pt2, smallConfig(), rand.New(rand.NewSource(1))); err == nil {
		t.Error("graph without stub pools should fail")
	}
	_ = pt
}

func TestTimelineReconstruction(t *testing.T) {
	d := genDeployment(t, 2)
	tls := d.Timelines(24*7, rand.New(rand.NewSource(3)))
	if len(tls) != len(d.Sites) {
		t.Fatalf("%d timelines for %d sites", len(tls), len(d.Sites))
	}
	for i := range tls {
		tl := &tls[i]
		if len(tl.Initial) == 0 {
			t.Fatalf("site %q has empty initial set", tl.Site.Name)
		}
		// SetAt(0) equals Initial.
		s0 := tl.SetAt(0)
		if len(s0) != len(tl.Initial) {
			t.Fatalf("site %q SetAt(0) = %v vs initial %v", tl.Site.Name, s0, tl.Initial)
		}
		// Walk must visit every event with consistent before/after deltas.
		n := 0
		tl.Walk(func(e Event, before, after []netaddr.Addr) {
			n++
			if len(e.Removed) == 0 && len(e.Added) == 0 {
				t.Fatal("empty event")
			}
			// after = before - removed + added.
			want := map[netaddr.Addr]bool{}
			for _, a := range before {
				want[a] = true
			}
			for _, a := range e.Removed {
				delete(want, a)
			}
			for _, a := range e.Added {
				want[a] = true
			}
			if len(want) != len(after) {
				t.Fatalf("site %q event at %d inconsistent", tl.Site.Name, e.Hour)
			}
			for _, a := range after {
				if !want[a] {
					t.Fatalf("site %q event at %d produced unexpected addr %v", tl.Site.Name, e.Hour, a)
				}
			}
		})
		if n != tl.EventCount() {
			t.Fatalf("walk visited %d of %d events", n, tl.EventCount())
		}
		// The set must never go empty.
		if len(tl.SetAt(tl.Hours-1)) == 0 {
			t.Fatalf("site %q drained its address set", tl.Site.Name)
		}
	}
}

// TestContentCalibration checks the Figure 11a facts: popular content sees a
// median of ~2 mobility events per day (bounded by 24 via hourly sampling),
// while unpopular content barely moves at all.
func TestContentCalibration(t *testing.T) {
	g, pt := testWorld(t)
	cfg := DefaultConfig()
	cfg.PopularDomains = 150
	cfg.UnpopularDomains = 150
	d, err := Generate(g, pt, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	days := 21
	tls := d.Timelines(24*days, rand.New(rand.NewSource(6)))

	var popPerDay, unpopPerDay []float64
	for i := range tls {
		avg := float64(tls[i].EventCount()) / float64(days)
		if tls[i].Site.Class == Popular {
			popPerDay = append(popPerDay, avg)
		} else {
			unpopPerDay = append(unpopPerDay, avg)
		}
	}
	pop := stats.NewCDF(popPerDay)
	unpop := stats.NewCDF(unpopPerDay)
	if m := pop.Median(); m < 0.8 || m > 4.5 {
		t.Errorf("popular median events/day = %.2f, want ~2", m)
	}
	if hi := pop.Max(); hi > 24 {
		t.Errorf("popular max events/day = %.2f, cannot exceed hourly sampling bound", hi)
	}
	if m := unpop.Quantile(0.9); m > 0.2 {
		t.Errorf("unpopular p90 events/day = %.3f, want near zero", m)
	}
	t.Logf("popular events/day: median=%.2f p90=%.2f max=%.1f; unpopular mean=%.4f",
		pop.Median(), pop.Quantile(0.9), pop.Max(), stats.Mean(unpopPerDay))
}

func TestEventsPerDay(t *testing.T) {
	tl := Timeline{Hours: 48, Events: []Event{{Hour: 1}, {Hour: 5}, {Hour: 30}}}
	per := tl.EventsPerDay()
	if len(per) != 2 || per[0] != 2 || per[1] != 1 {
		t.Fatalf("EventsPerDay = %v", per)
	}
}

// A boundary event at Hour == Hours is legal (an event landing exactly as
// the window closes) and used to index out of range when Hours was a
// multiple of 24; it must get its own day bucket instead.
func TestEventsPerDayBoundary(t *testing.T) {
	tl := Timeline{Hours: 48, Events: []Event{{Hour: 1}, {Hour: 48}}}
	per := tl.EventsPerDay()
	if len(per) != 3 || per[0] != 1 || per[1] != 0 || per[2] != 1 {
		t.Fatalf("EventsPerDay = %v, want [1 0 1]", per)
	}
}

// syntheticTimeline builds a replay-only timeline of the given length: a
// two-address set where every event retires the previously added address
// and introduces a fresh one.
func syntheticTimeline(events int) Timeline {
	tl := Timeline{Hours: events + 2, Initial: []netaddr.Addr{10, 20}}
	for i := 0; i < events; i++ {
		ev := Event{Hour: i + 1, Added: []netaddr.Addr{netaddr.Addr(1000 + i)}}
		if i == 0 {
			ev.Removed = []netaddr.Addr{10}
		} else {
			ev.Removed = []netaddr.Addr{netaddr.Addr(1000 + i - 1)}
		}
		tl.Events = append(tl.Events, ev)
	}
	return tl
}

// The inlined FNV-1a in edgeAddr must stay byte-identical to the
// fnv.New64a + Fprintf formulation it replaced, or every content timeline
// in every fixture would silently change.
func TestEdgeAddrMatchesFNVReference(t *testing.T) {
	d := genDeployment(t, 3)
	ref := func(site names.Name, edgeAS, generation int) netaddr.Addr {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%d|%d", site, edgeAS, generation)
		return d.pt.AddrIn(edgeAS, h.Sum64()%(1<<16))
	}
	for _, site := range []names.Name{d.Sites[0].Name, d.Sites[len(d.Sites)-1].Name, "a.b.example.test", ""} {
		for _, as := range []int{d.Sites[0].OriginAS, d.EdgePool[0], d.EdgePool[len(d.EdgePool)-1]} {
			for _, gen := range []int{0, 1, 7, 1003, 2048} {
				if got, want := d.edgeAddr(site, as, gen), ref(site, as, gen); got != want {
					t.Fatalf("edgeAddr(%q, %d, %d) = %v, reference FNV gives %v", site, as, gen, got, want)
				}
			}
		}
	}
}

func TestTimelinesDeterministic(t *testing.T) {
	d := genDeployment(t, 7)
	a := d.Timelines(48, rand.New(rand.NewSource(9)))
	b := d.Timelines(48, rand.New(rand.NewSource(9)))
	for i := range a {
		if a[i].EventCount() != b[i].EventCount() {
			t.Fatalf("timeline %d diverged", i)
		}
	}
}

// The per-site RNG derivation must make the parallel sweep bit-identical to
// the sequential one at every worker count.
func TestTimelinesParallelMatchesSequential(t *testing.T) {
	d := genDeployment(t, 7)
	seq := d.TimelinesParallel(48, rand.New(rand.NewSource(9)), 1)
	for _, workers := range []int{4, 0} {
		got := d.TimelinesParallel(48, rand.New(rand.NewSource(9)), workers)
		if !reflect.DeepEqual(seq, got) {
			t.Fatalf("parallel=%d sweep diverged from sequential", workers)
		}
	}
	// And Timelines itself is the sequential case.
	if !reflect.DeepEqual(seq, d.Timelines(48, rand.New(rand.NewSource(9)))) {
		t.Fatal("Timelines diverged from TimelinesParallel(…, 1)")
	}
}

func TestCompleteTable(t *testing.T) {
	d := genDeployment(t, 11)
	tls := d.Timelines(24, rand.New(rand.NewSource(12)))
	tab := CompleteTable(tls, 0)
	if len(tab) != len(tls) {
		t.Fatalf("table size %d", len(tab))
	}
	for n, addrs := range tab {
		if len(addrs) == 0 {
			t.Fatalf("empty set for %q", n)
		}
	}
}

func TestClassString(t *testing.T) {
	if Popular.String() != "popular" || Unpopular.String() != "unpopular" {
		t.Fatal("class names wrong")
	}
}

func BenchmarkTimelineWalk(b *testing.B) {
	tl := syntheticTimeline(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Walk(func(_ Event, _, _ []netaddr.Addr) {})
	}
}

func BenchmarkTimelines(b *testing.B) {
	g, pt := testWorld(b)
	cfg := smallConfig()
	d, err := Generate(g, pt, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Timelines(24*7, rand.New(rand.NewSource(int64(i))))
	}
}
