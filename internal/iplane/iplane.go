// Package iplane substitutes for the iPlane path-prediction service the
// paper uses in §6.3.2: a predictor built from a limited corpus of
// traceroute-like measurements over the AS topology, answering latency
// queries only for pairs its measured segments cover (iPlane answered for
// just 5% of the paper's address pairs) — and, separately, the shortest
// AS-hop lower bound computed on the physical topology.
package iplane

import (
	"hash/fnv"
	"math/rand"

	"locind/internal/asgraph"
)

// LinkLatency returns the deterministic one-way latency in milliseconds of
// the AS adjacency (a, b): a few ms for an access link, more for transit,
// tens of ms for backbone spans, plus a large penalty when the endpoints
// sit in different regions (submarine/long-haul distance).
func LinkLatency(g *asgraph.Graph, a, b int) float64 {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	h := fnv.New32a()
	var buf [8]byte
	buf[0] = byte(lo)
	buf[1] = byte(lo >> 8)
	buf[2] = byte(lo >> 16)
	buf[3] = byte(lo >> 24)
	buf[4] = byte(hi)
	buf[5] = byte(hi >> 8)
	buf[6] = byte(hi >> 16)
	buf[7] = byte(hi >> 24)
	h.Write(buf[:])
	jitter := float64(h.Sum32()%1000) / 1000 // [0, 1)

	base := 8.0 + 14.0*jitter // access links: 8-22 ms
	ta, tb := g.Tier(a), g.Tier(b)
	if ta <= 2 && tb <= 2 {
		base = 12.0 + 18.0*jitter // transit interconnects: 12-30 ms
	}
	if ta == 1 && tb == 1 {
		base = 25.0 + 30.0*jitter // backbone spans: 25-55 ms
	}
	if g.Region(a) != g.Region(b) {
		base += 50.0 + 60.0*jitter // long-haul crossing
	}
	return base
}

// PathLatency sums the link latencies along an AS path.
func PathLatency(g *asgraph.Graph, path []int) float64 {
	total := 0.0
	for i := 0; i+1 < len(path); i++ {
		total += LinkLatency(g, path[i], path[i+1])
	}
	return total
}

// Predictor answers latency queries for AS pairs covered by its measured
// traceroute corpus.
type Predictor struct {
	g *asgraph.Graph
	// pairLat maps a covered ordered pair (packed as src<<32|dst) to the
	// measured sub-path latency.
	pairLat map[uint64]float64
	nTraces int
}

func pack(src, dst int) uint64 { return uint64(uint32(src))<<32 | uint64(uint32(dst)) }

// Build runs numTraces traceroute-like measurements: each picks a random
// vantage AS and a random target from targets, records the policy path
// between them, and registers every sub-segment of that path as answerable.
// Fewer traces means lower coverage — tune numTraces to reproduce iPlane's
// 5% response rate for a given query population.
func Build(g *asgraph.Graph, targets []int, numTraces int, rng *rand.Rand) *Predictor {
	p := &Predictor{g: g, pairLat: map[uint64]float64{}, nTraces: numTraces}
	if len(targets) == 0 || numTraces <= 0 {
		return p
	}
	for i := 0; i < numTraces; i++ {
		dst := targets[rng.Intn(len(targets))]
		src := targets[rng.Intn(len(targets))]
		if src == dst {
			continue
		}
		rt := g.RoutesTo(dst)
		path := rt.Path(src)
		if len(path) < 2 {
			continue
		}
		// Cumulative latency along the measured path.
		cum := make([]float64, len(path))
		for j := 1; j < len(path); j++ {
			cum[j] = cum[j-1] + LinkLatency(g, path[j-1], path[j])
		}
		for a := 0; a < len(path); a++ {
			for b := a + 1; b < len(path); b++ {
				lat := cum[b] - cum[a]
				p.pairLat[pack(path[a], path[b])] = lat
				p.pairLat[pack(path[b], path[a])] = lat
			}
		}
	}
	return p
}

// NumTraces returns how many traceroutes were attempted during Build.
func (p *Predictor) NumTraces() int { return p.nTraces }

// NumPairs returns the number of (ordered) AS pairs the predictor can
// answer for.
func (p *Predictor) NumPairs() int { return len(p.pairLat) }

// Query predicts the one-way latency from srcAS to dstAS. Like iPlane, it
// answers only when its measured segments cover the pair.
func (p *Predictor) Query(srcAS, dstAS int) (float64, bool) {
	if srcAS == dstAS {
		return 0, true
	}
	lat, ok := p.pairLat[pack(srcAS, dstAS)]
	return lat, ok
}

// Coverage returns the fraction of the given query pairs the predictor can
// answer, mirroring the paper's observation that iPlane responded for only
// 5% of its dominant/current address pairs.
func (p *Predictor) Coverage(pairs [][2]int) float64 {
	if len(pairs) == 0 {
		return 0
	}
	ok := 0
	for _, q := range pairs {
		if _, answered := p.Query(q[0], q[1]); answered {
			ok++
		}
	}
	return float64(ok) / float64(len(pairs))
}
