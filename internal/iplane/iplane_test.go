package iplane

import (
	"math/rand"
	"testing"

	"locind/internal/asgraph"
)

func testGraph(t testing.TB) *asgraph.Graph {
	t.Helper()
	cfg := asgraph.DefaultSynthConfig()
	cfg.Tier2 = 60
	cfg.Stubs = 500
	g, err := asgraph.Synthesize(cfg, rand.New(rand.NewSource(55)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLinkLatencyProperties(t *testing.T) {
	g := testGraph(t)
	// Symmetric and deterministic.
	for _, pair := range [][2]int{{0, 1}, {5, 300}, {100, 101}} {
		a, b := pair[0], pair[1]
		l1 := LinkLatency(g, a, b)
		l2 := LinkLatency(g, b, a)
		if l1 != l2 {
			t.Fatalf("latency (%d,%d) asymmetric: %v vs %v", a, b, l1, l2)
		}
		if l1 <= 0 || l1 > 200 {
			t.Fatalf("latency (%d,%d) = %v out of sane range", a, b, l1)
		}
	}
	// Cross-region links must cost more than an intra-region access link.
	var intra, inter float64
	found := 0
	for x := 0; x < g.N() && found < 2; x++ {
		for _, pr := range g.Providers(x) {
			if g.Region(x) == g.Region(int(pr)) && intra == 0 {
				intra = LinkLatency(g, x, int(pr))
				found++
			}
			if g.Region(x) != g.Region(int(pr)) && inter == 0 {
				inter = LinkLatency(g, x, int(pr))
				found++
			}
		}
	}
	if found == 2 && inter <= intra {
		t.Fatalf("cross-region latency %v not above intra-region %v", inter, intra)
	}
}

func TestPathLatency(t *testing.T) {
	g := testGraph(t)
	rt := g.RoutesTo(100)
	path := rt.Path(500)
	if len(path) < 2 {
		t.Skip("degenerate path")
	}
	total := PathLatency(g, path)
	sum := 0.0
	for i := 0; i+1 < len(path); i++ {
		sum += LinkLatency(g, path[i], path[i+1])
	}
	if total != sum {
		t.Fatalf("PathLatency = %v, want %v", total, sum)
	}
	if PathLatency(g, []int{7}) != 0 || PathLatency(g, nil) != 0 {
		t.Fatal("degenerate paths should cost 0")
	}
}

func TestPredictorQuery(t *testing.T) {
	g := testGraph(t)
	stubs := g.StubsInRegion(asgraph.NorthAmerica)
	if len(stubs) < 20 {
		t.Fatal("not enough stubs")
	}
	p := Build(g, stubs[:40], 200, rand.New(rand.NewSource(2)))
	if p.NumPairs() == 0 {
		t.Fatal("no measured pairs")
	}
	// Self-query always answers with 0.
	if lat, ok := p.Query(stubs[0], stubs[0]); !ok || lat != 0 {
		t.Fatalf("self query = %v, %v", lat, ok)
	}
	// Any covered pair must return the measured sub-path latency,
	// symmetric in direction.
	answered := 0
	for _, s := range stubs[:40] {
		for _, d := range stubs[:40] {
			if s == d {
				continue
			}
			l1, ok1 := p.Query(s, d)
			l2, ok2 := p.Query(d, s)
			if ok1 != ok2 {
				t.Fatalf("coverage asymmetric for (%d,%d)", s, d)
			}
			if ok1 {
				answered++
				if l1 != l2 {
					t.Fatalf("latency asymmetric for (%d,%d)", s, d)
				}
				if l1 <= 0 {
					t.Fatalf("non-positive predicted latency %v", l1)
				}
			}
		}
	}
	if answered == 0 {
		t.Fatal("no pair among traced targets answerable")
	}
}

func TestPredictorPartialCoverage(t *testing.T) {
	g := testGraph(t)
	var allStubs []int
	for r := asgraph.Region(0); r < asgraph.Region(6); r++ {
		allStubs = append(allStubs, g.StubsInRegion(r)...)
	}
	// Few traces over many targets: coverage must be well below 1 but
	// above 0 for queries among the traced population.
	p := Build(g, allStubs, 60, rand.New(rand.NewSource(9)))
	var pairs [][2]int
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 3000; i++ {
		pairs = append(pairs, [2]int{allStubs[rng.Intn(len(allStubs))], allStubs[rng.Intn(len(allStubs))]})
	}
	cov := p.Coverage(pairs)
	if cov <= 0 || cov > 0.5 {
		t.Fatalf("coverage = %v, want small but nonzero", cov)
	}
	t.Logf("coverage over random stub pairs: %.3f (target ~0.05)", cov)
	if p.Coverage(nil) != 0 {
		t.Fatal("empty query set coverage should be 0")
	}
}

func TestBuildDegenerate(t *testing.T) {
	g := testGraph(t)
	if p := Build(g, nil, 100, rand.New(rand.NewSource(1))); p.NumPairs() != 0 {
		t.Fatal("no targets should measure nothing")
	}
	if p := Build(g, []int{1, 2}, 0, rand.New(rand.NewSource(1))); p.NumPairs() != 0 || p.NumTraces() != 0 {
		t.Fatal("zero traces should measure nothing")
	}
}

func TestBuildDeterminism(t *testing.T) {
	g := testGraph(t)
	stubs := g.StubsInRegion(asgraph.Europe)
	p1 := Build(g, stubs, 100, rand.New(rand.NewSource(4)))
	p2 := Build(g, stubs, 100, rand.New(rand.NewSource(4)))
	if p1.NumPairs() != p2.NumPairs() {
		t.Fatal("predictor not deterministic")
	}
}
