package expt

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"locind/internal/cdn"
	"locind/internal/core"
	"locind/internal/mobility"
)

// withParallel runs fn with the shared world pinned at the given worker
// count and restores the previous knob afterwards.
func withParallel(t *testing.T, w *World, parallel int, fn func()) {
	t.Helper()
	old := w.Cfg.Parallel
	w.Cfg.Parallel = parallel
	defer func() { w.Cfg.Parallel = old }()
	fn()
}

// Every parallel driver must produce results identical to its sequential
// run — the engine's core guarantee.
func TestParallelDriversMatchSequential(t *testing.T) {
	w := quickWorld(t)
	type bundle struct {
		fig8  Fig8Result
		f11b  Fig11bcResult
		f11c  Fig11bcResult
		abl   AblationResult
		sweep SessionSweepResult
		sens  SensitivityResult
	}
	collect := func(parallel int) bundle {
		var out bundle
		withParallel(t, w, parallel, func() {
			out.fig8 = RunFig8(w)
			out.f11b = RunFig11bc(w, cdn.Popular)
			out.f11c = RunFig11bc(w, cdn.Unpopular)
			out.abl = RunStrategyAblation(w)
			sweep, err := RunSessionSweep(w, []int{2, 8})
			if err != nil {
				t.Fatal(err)
			}
			out.sweep = sweep
			sens, err := RunSensitivity(w)
			if err != nil {
				t.Fatal(err)
			}
			out.sens = sens
		})
		return out
	}
	seq := collect(1)
	for _, n := range []int{4, 0} {
		par := collect(n)
		if !reflect.DeepEqual(seq.fig8, par.fig8) {
			t.Errorf("parallel=%d: fig8 diverged from sequential", n)
		}
		if !reflect.DeepEqual(seq.f11b, par.f11b) {
			t.Errorf("parallel=%d: fig11b diverged from sequential", n)
		}
		if !reflect.DeepEqual(seq.f11c, par.f11c) {
			t.Errorf("parallel=%d: fig11c diverged from sequential", n)
		}
		if seq.abl != par.abl {
			t.Errorf("parallel=%d: ablation diverged: %+v vs %+v", n, seq.abl, par.abl)
		}
		if !reflect.DeepEqual(seq.sweep, par.sweep) {
			t.Errorf("parallel=%d: session sweep diverged", n)
		}
		if !reflect.DeepEqual(seq.sens, par.sens) {
			t.Errorf("parallel=%d: sensitivity diverged", n)
		}
	}
}

// The memoized fan-out must match a direct unmemoized strategy-at-a-time
// evaluation of the same figure — the "Memo changes nothing" guarantee at
// the figure level, not just per lookup.
func TestFig11bcMatchesUnmemoizedReference(t *testing.T) {
	w := quickWorld(t)
	got := RunFig11bc(w, cdn.Unpopular)
	_, unpopular := w.TimelinesByClass()
	if len(got.BestPort) != len(w.RouteViews) {
		t.Fatalf("rates for %d of %d collectors", len(got.BestPort), len(w.RouteViews))
	}
	for i, c := range w.RouteViews {
		bp := core.ContentUpdateStatsAll(c.FIB, unpopular, core.BestPort).Rate()
		fl := core.ContentUpdateStatsAll(c.FIB, unpopular, core.ControlledFlooding).Rate()
		if got.BestPort[i].Rate != bp {
			t.Errorf("%s: best-port %v != reference %v", c.Name, got.BestPort[i].Rate, bp)
		}
		if got.Flooding[i].Rate != fl {
			t.Errorf("%s: flooding %v != reference %v", c.Name, got.Flooding[i].Rate, fl)
		}
	}
}

// TestTimelinesConcurrentOnce races many callers at the lazy sweep and
// checks exactly one generation happened (run under -race in CI).
func TestTimelinesConcurrentOnce(t *testing.T) {
	cfg := QuickConfig()
	cfg.Device.Users = 20
	cfg.Device.Days = 2
	cfg.CDN.PopularDomains = 15
	cfg.CDN.UnpopularDomains = 15
	cfg.ContentDays = 2
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	got := make([]*cdn.Timeline, callers)
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tls := w.Timelines()
			got[g] = &tls[0]
		}(g)
	}
	wg.Wait()
	for g := 1; g < callers; g++ {
		if got[g] != got[0] {
			t.Fatal("concurrent Timelines() returned distinct generations")
		}
	}
}

// A degenerate workload must surface stats.Pearson's error from
// RunSensitivity instead of silently rendering "correlation 0.00".
func TestSensitivityPearsonErrorPropagates(t *testing.T) {
	w := quickWorld(t)
	degenerate := &World{
		Cfg:        w.Cfg,
		Graph:      w.Graph,
		Prefixes:   w.Prefixes,
		RouteViews: w.RouteViews,
		RIPE:       w.RIPE,
		Devices:    &mobility.DeviceTrace{}, // no users → all NomadLog rates 0
		Deployment: w.Deployment,
	}
	_, err := RunSensitivity(degenerate)
	if err == nil {
		t.Fatal("zero-variance NomadLog rates must error, not read as correlation 0.00")
	}
	if !strings.Contains(err.Error(), "correlation") {
		t.Fatalf("error does not identify the correlation stage: %v", err)
	}
}

// The per-collector progress gauge must fire on the true last completion of
// a collector's shards, not when the shard with the last index happens to
// run — par.ForEach completes tasks in arbitrary order. This drives the
// counter in a deliberately adversarial order: every collector's
// highest-index shard first.
func TestCollectorProgressPermutedOrder(t *testing.T) {
	const cols, shards = 3, 5
	fired := 0
	prog := newCollectorProgress(cols, shards, func() { fired++ })
	var order [][2]int // (collector, shard) completion sequence
	for si := shards - 1; si >= 0; si-- {
		for ci := 0; ci < cols; ci++ {
			order = append(order, [2]int{ci, si})
		}
	}
	for k, o := range order {
		prog.shardDone(o[0])
		// In this order, collector ci's true last completion is entry
		// (shards-1)*cols + ci; nothing may fire before that point.
		wantFired := 0
		for ci := 0; ci < cols; ci++ {
			if k >= (shards-1)*cols+ci {
				wantFired++
			}
		}
		if fired != wantFired {
			t.Fatalf("after %d completions fired=%d, want %d", k+1, fired, wantFired)
		}
	}
	if fired != cols {
		t.Fatalf("fired %d times for %d collectors", fired, cols)
	}
}

// Every collector replays the same timelines, so the figure's event total
// must equal the workload's — not whatever the last collector iterated
// happened to report.
func TestFig11bcEventsInvariant(t *testing.T) {
	w := quickWorld(t)
	popular, unpopular := w.TimelinesByClass()
	for _, tc := range []struct {
		class cdn.Class
		tls   []cdn.Timeline
	}{{cdn.Popular, popular}, {cdn.Unpopular, unpopular}} {
		want := 0
		for i := range tc.tls {
			want += tc.tls[i].EventCount()
		}
		if got := RunFig11bc(w, tc.class).Events; got != want {
			t.Errorf("%s: Events = %d, workload has %d", tc.class, got, want)
		}
	}
}
