package expt

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/cdn"
	"locind/internal/core"
	"locind/internal/par"
	"locind/internal/stats"
)

// Fig11aResult is the content-mobility extent of Figure 11(a): the CDF over
// popular names of mobility events per day.
type Fig11aResult struct {
	PerDay   stats.Summary
	CDF      []stats.Point
	Names    int
	Days     int
	BoundMax float64 // the hourly-sampling ceiling (24/day)
}

// RunFig11a computes Figure 11(a) over the popular timelines.
func RunFig11a(w *World) Fig11aResult {
	popular, _ := w.TimelinesByClass()
	days := w.Cfg.ContentDays
	var perDay []float64
	for i := range popular {
		perDay = append(perDay, float64(popular[i].EventCount())/float64(days))
	}
	return Fig11aResult{
		PerDay:   stats.Summarize(perDay),
		CDF:      stats.NewCDF(perDay).Points(40),
		Names:    len(popular),
		Days:     days,
		BoundMax: 24,
	}
}

// Render prints the Figure 11(a) readout.
func (r Fig11aResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11(a) — mobility events per day, %d popular names over %d days\n", r.Names, r.Days)
	fmt.Fprintf(&b, "  events/day: %s\n", r.PerDay)
	fmt.Fprintf(&b, "  paper: median 2, max bounded at 24 by hourly sampling — measured median %.1f, max %.1f\n",
		r.PerDay.P50, r.PerDay.Max)
	return b.String()
}

// Fig11bcResult is the per-collector content update rate of Figures 11(b)
// (popular) and 11(c) (unpopular), under both forwarding strategies.
type Fig11bcResult struct {
	Class    cdn.Class
	Events   int
	BestPort []RouterRate
	Flooding []RouterRate
}

// collectorProgress fires a per-collector done callback when the last of a
// collector's shards actually completes. par.ForEach finishes tasks in
// arbitrary order, so "the shard with the last index" is not "the last
// shard to finish" — each collector counts down its outstanding shards
// atomically instead, and exactly one shard (the true last) observes zero.
type collectorProgress struct {
	remaining []atomic.Int32
	done      func()
}

func newCollectorProgress(collectors, shards int, done func()) *collectorProgress {
	p := &collectorProgress{remaining: make([]atomic.Int32, collectors), done: done}
	for i := range p.remaining {
		p.remaining[i].Store(int32(shards))
	}
	return p
}

// shardDone records one finished shard of collector ci.
func (p *collectorProgress) shardDone(ci int) {
	if p.remaining[ci].Add(-1) == 0 {
		p.done()
	}
}

// RunFig11bc computes Figure 11(b) or 11(c) depending on class. The work
// fans out over (collector × timeline-shard) pairs: every collector shares
// one striped route Memo across its shards and replays each shard's
// timelines in a single fused walk that evaluates both strategies at once.
// Shards are oversubscribed (par.ShardsFor) because timeline weight is
// heavy-tailed. Per-shard partial counts are integer totals summed in shard
// order, so the figure is bit-identical at every parallelism degree.
func RunFig11bc(w *World, class cdn.Class) Fig11bcResult {
	popular, unpopular := w.TimelinesByClass()
	tls := popular
	if class == cdn.Unpopular {
		tls = unpopular
	}
	cols := w.RouteViews
	shards := par.ShardsFor(len(tls), w.Cfg.Parallel)
	memos := make([]*core.Memo, len(cols))
	for i, c := range cols {
		memos[i] = w.Cfg.memo(c.FIB)
	}
	prog := newCollectorProgress(len(cols), len(shards), w.Cfg.Obs.collectorDone)
	partial := make([]core.StrategyStats, len(cols)*len(shards))
	par.ForEach(w.Cfg.Parallel, len(partial), func(t int) {
		ci, si := t/len(shards), t%len(shards)
		sh := shards[si]
		partial[t] = core.ContentUpdateStatsAllFused(memos[ci], tls[sh[0]:sh[1]])
		prog.shardDone(ci)
	})
	res := Fig11bcResult{Class: class}
	res.BestPort = make([]RouterRate, len(cols))
	res.Flooding = make([]RouterRate, len(cols))
	for ci, c := range cols {
		var tot core.StrategyStats
		for si := 0; si < len(shards); si++ {
			tot.Add(partial[ci*len(shards)+si])
		}
		// Every collector replays the same timelines, so the event totals
		// must agree; a mismatch means a sharding bug lost or double-counted
		// events, which must not be papered over by keeping the last count.
		if ci == 0 {
			res.Events = tot.BestPort.Events
		} else if tot.BestPort.Events != res.Events {
			panic(fmt.Sprintf("expt: collector %q saw %d events, %q saw %d — shard accounting bug",
				c.Name, tot.BestPort.Events, cols[0].Name, res.Events))
		}
		res.BestPort[ci] = RouterRate{
			Name: c.Name, Rate: tot.BestPort.Rate(), NextHopDegree: c.FIB.NextHopDegree(), Sessions: len(c.Sessions),
		}
		res.Flooding[ci] = RouterRate{
			Name: c.Name, Rate: tot.Flooding.Rate(), NextHopDegree: c.FIB.NextHopDegree(), Sessions: len(c.Sessions),
		}
	}
	w.Cfg.Obs.rows(len(res.BestPort) + len(res.Flooding))
	return res
}

func maxRate(rs []RouterRate) float64 {
	max := 0.0
	for _, r := range rs {
		if r.Rate > max {
			max = r.Rate
		}
	}
	return max
}

func medianRate(rs []RouterRate) float64 {
	xs := make([]float64, 0, len(rs))
	for _, r := range rs {
		xs = append(xs, r.Rate)
	}
	return stats.NewCDF(xs).Median()
}

// Render prints the Figure 11(b)/(c) bar chart.
func (r Fig11bcResult) Render() string {
	var b strings.Builder
	fig := "11(b)"
	paperNote := "paper: flooding ≤13%, best-port ≤6%"
	if r.Class == cdn.Unpopular {
		fig = "11(c)"
		paperNote = "paper: flooding ≤1%, best-port median 0.08%"
	}
	fmt.Fprintf(&b, "Figure %s — fraction of %s content mobility events inducing a router update (%d events)\n",
		fig, r.Class, r.Events)
	max := maxRate(r.Flooding)
	if bp := maxRate(r.BestPort); bp > max {
		max = bp
	}
	for i := range r.BestPort {
		fmt.Fprintf(&b, "  %-14s flooding %6.2f%% %s   best-port %6.2f%% %s\n",
			r.BestPort[i].Name,
			r.Flooding[i].Rate*100, stats.Bar(r.Flooding[i].Rate, max, 18),
			r.BestPort[i].Rate*100, stats.Bar(r.BestPort[i].Rate, max, 18))
	}
	fmt.Fprintf(&b, "  flooding max %.1f%% median %.1f%%; best-port max %.1f%% median %.2f%% (%s)\n",
		maxRate(r.Flooding)*100, medianRate(r.Flooding)*100,
		maxRate(r.BestPort)*100, medianRate(r.BestPort)*100, paperNote)
	return b.String()
}

// Fig12Result is the FIB aggregateability of Figure 12.
type Fig12Result struct {
	Routers []struct {
		Name             string
		Aggregateability float64
	}
	Names int
	// UnpopularAgg is the §7.3 observation that the long tail hardly
	// aggregates at all.
	UnpopularAgg float64
}

// RunFig12 computes Figure 12: best-port FIB aggregateability for popular
// names per collector, evaluated on the hour-0 snapshot of the sweep.
func RunFig12(w *World) Fig12Result {
	popular, unpopular := w.TimelinesByClass()
	popSets := cdn.CompleteTable(popular, 0)
	unpopSets := cdn.CompleteTable(unpopular, 0)
	res := Fig12Result{Names: len(popSets)}
	for _, c := range w.RouteViews {
		res.Routers = append(res.Routers, struct {
			Name             string
			Aggregateability float64
		}{c.Name, core.AggregateabilityBestPort(c.FIB, popSets)})
	}
	if len(w.RouteViews) > 0 {
		res.UnpopularAgg = core.AggregateabilityBestPort(w.RouteViews[0].FIB, unpopSets)
	}
	return res
}

// Render prints the Figure 12 bar chart.
func (r Fig12Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12 — FIB aggregateability of %d popular content names (best-port)\n", r.Names)
	max := 0.0
	for _, rr := range r.Routers {
		if rr.Aggregateability > max {
			max = rr.Aggregateability
		}
	}
	for _, rr := range r.Routers {
		fmt.Fprintf(&b, "  %-14s %6.2fx  %s\n", rr.Name, rr.Aggregateability, stats.Bar(rr.Aggregateability, max, 30))
	}
	fmt.Fprintf(&b, "  paper: 2x-16x across collectors; long-tail names aggregate at only %.2fx\n", r.UnpopularAgg)
	return b.String()
}

// AblationResult compares the three forwarding strategies of §3.3 on the
// same popular-content workload at one collector, demonstrating the
// fungibility of update cost against forwarding state the paper discusses
// in §3.3.3.
type AblationResult struct {
	Collector string
	Events    int
	BestPort  float64
	Flooding  float64
	Union     float64
}

// RunStrategyAblation evaluates all three strategies at the most-impacted
// RouteViews collector (highest controlled-flooding rate, first on ties).
// One fused walk per collector yields all three strategy totals at once, so
// finding the argmax no longer triggers repeated BestPort/UnionFlooding
// replays every time a new flooding maximum appears. Like RunFig11bc the
// fan-out is (collector × timeline-shard) — collectors alone are too few
// and too unequal to keep a pool busy — and the per-collector reduction
// sums integer partials in shard order, so the result is bit-identical at
// every parallelism degree (union state is per timeline, never crossing a
// shard boundary).
func RunStrategyAblation(w *World) AblationResult {
	popular, _ := w.TimelinesByClass()
	cols := w.RouteViews
	shards := par.ShardsFor(len(popular), w.Cfg.Parallel)
	memos := make([]*core.Memo, len(cols))
	for i, c := range cols {
		memos[i] = w.Cfg.memo(c.FIB)
	}
	prog := newCollectorProgress(len(cols), len(shards), w.Cfg.Obs.collectorDone)
	partial := make([]core.StrategyStats, len(cols)*len(shards))
	par.ForEach(w.Cfg.Parallel, len(partial), func(t int) {
		ci, si := t/len(shards), t%len(shards)
		sh := shards[si]
		partial[t] = core.ContentUpdateStatsAllFused(memos[ci], popular[sh[0]:sh[1]])
		prog.shardDone(ci)
	})
	sets := make([]core.StrategyStats, len(cols))
	for ci := range cols {
		for si := 0; si < len(shards); si++ {
			sets[ci].Add(partial[ci*len(shards)+si])
		}
	}
	best := -1
	for i := range sets {
		if best < 0 || sets[i].Flooding.Rate() > sets[best].Flooding.Rate() {
			best = i
		}
	}
	if best < 0 {
		return AblationResult{}
	}
	s := sets[best]
	return AblationResult{
		Collector: cols[best].Name,
		Events:    s.Flooding.Events,
		BestPort:  s.BestPort.Rate(),
		Flooding:  s.Flooding.Rate(),
		Union:     s.Union.Rate(),
	}
}

// Render prints the ablation readout.
func (r AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.3.3 strategy ablation at %s (%d popular-content events)\n", r.Collector, r.Events)
	fmt.Fprintf(&b, "  controlled flooding : %6.2f%% of events update the router\n", r.Flooding*100)
	fmt.Fprintf(&b, "  best-port           : %6.2f%%\n", r.BestPort*100)
	fmt.Fprintf(&b, "  union-of-past-addrs : %6.2f%%  (update cost → 0 as the location set saturates)\n", r.Union*100)
	return b.String()
}

// SessionSweepResult is the collector-design ablation: how a collector's
// feed count drives its device update rate — the mechanism behind Figure
// 8's spread, isolated.
type SessionSweepResult struct {
	Points []struct {
		Sessions int
		Rate     float64
	}
}

// RunSessionSweep rebuilds one synthetic collector at increasing session
// counts and measures its device update rate. Each count derives its own RNG
// from the master seed, so the sweep points are independent and evaluated in
// parallel without perturbing each other.
func RunSessionSweep(w *World, counts []int) (SessionSweepResult, error) {
	events := w.Devices.MoveEvents()
	type point struct {
		rate float64
		err  error
	}
	pts := par.Map(w.Cfg.Parallel, len(counts), func(i int) point {
		col, err := buildSweepCollector(w, counts[i], int64(i))
		if err != nil {
			return point{err: err}
		}
		return point{rate: core.DeviceUpdateStats(w.Cfg.memo(col.FIB), events).Rate()}
	})
	var res SessionSweepResult
	for i, p := range pts {
		if p.err != nil {
			return res, p.err
		}
		w.Cfg.Obs.rows(1)
		res.Points = append(res.Points, struct {
			Sessions int
			Rate     float64
		}{counts[i], p.rate})
	}
	return res, nil
}

// buildSweepCollector synthesizes one extra NorthAmerica collector with the
// requested session count, reusing the world's graph and address plan.
func buildSweepCollector(w *World, sessions int, salt int64) (*bgp.Collector, error) {
	spec := bgp.Spec{
		Name:       fmt.Sprintf("sweep-%d", sessions),
		Region:     asgraph.NorthAmerica,
		NumSess:    sessions,
		GlobalFrac: 0.35,
	}
	cols, err := bgp.BuildCollectors(w.Graph, w.Prefixes, []bgp.Spec{spec}, rand.New(rand.NewSource(w.Cfg.Seed+100+salt)))
	if err != nil {
		return nil, err
	}
	return cols[0], nil
}

// Render prints the sweep.
func (r SessionSweepResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation — collector feed count vs device update rate\n")
	max := 0.0
	for _, p := range r.Points {
		if p.Rate > max {
			max = p.Rate
		}
	}
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %3d sessions: %6.2f%%  %s\n", p.Sessions, p.Rate*100, stats.Bar(p.Rate, max, 30))
	}
	return b.String()
}
