package expt

import (
	"fmt"
	"math/rand"
	"strings"

	"locind/internal/analytic"
	"locind/internal/intradomain"
	"locind/internal/topology"
)

// IntradomainResult exercises the §3.1 single-domain setting: the aggregate
// renumbering update cost on several topologies (cross-checked against the
// §5 enumeration), and the forwarding-table growth when hosts keep their
// addresses and routers absorb mobility with /32 host routes instead — the
// FIB-size cost of flat identifiers, §6.2.2's other axis.
type IntradomainResult struct {
	Rows []IntradomainRow

	// Host-route growth trajectory on the grid: total /32 entries across
	// all routers after each quarter of the mobility workload.
	HostRouteGrowth []int
	GridRouters     int
	MobileHosts     int
}

// IntradomainRow is one topology's renumbering cost.
type IntradomainRow struct {
	Topology   string
	Routers    int
	AggCost    float64
	AnalyticNB float64
}

// RunIntradomain measures both mobility-absorption modes.
func RunIntradomain(seed int64) (IntradomainResult, error) {
	var res IntradomainResult
	for _, tc := range []struct {
		name string
		g    *topology.Graph
	}{
		{"chain-17", topology.Chain(17)},
		{"grid-6x6", topology.Grid(6, 6)},
		{"tree-31", topology.BinaryTree(31)},
	} {
		net, err := intradomain.New(tc.g)
		if err != nil {
			return res, fmt.Errorf("expt: intradomain %s: %w", tc.name, err)
		}
		res.Rows = append(res.Rows, IntradomainRow{
			Topology:   tc.name,
			Routers:    tc.g.N(),
			AggCost:    net.AggregateRenumberCost(),
			AnalyticNB: analytic.ExactNameBased(tc.g).UpdateCost,
		})
	}

	// Host-route growth under flat identifiers on a 6x6 grid.
	g := topology.Grid(6, 6)
	net, err := intradomain.New(g)
	if err != nil {
		return res, err
	}
	rng := rand.New(rand.NewSource(seed))
	const hosts = 80
	const steps = 400
	// Each host keeps the address of its birth subnet forever; mobility
	// only changes the attachment router.
	birth := make([]int, hosts)
	for h := 0; h < hosts; h++ {
		birth[h] = rng.Intn(g.N())
	}
	res.GridRouters = g.N()
	res.MobileHosts = hosts
	for step := 1; step <= steps; step++ {
		h := rng.Intn(hosts)
		dst := rng.Intn(g.N())
		net.MoveWithHostRoutes(intradomain.AddrAt(birth[h], uint64(100+h)), dst)
		if step%(steps/4) == 0 {
			res.HostRouteGrowth = append(res.HostRouteGrowth, net.TotalHostRoutes())
		}
	}
	return res, nil
}

// Render prints the §3.1 readout.
func (r IntradomainResult) Render() string {
	var b strings.Builder
	b.WriteString("§3.1 intradomain mobility (single shortest-path domain)\n")
	fmt.Fprintf(&b, "  %-10s %8s %18s %18s\n", "topology", "routers", "renumber agg cost", "§5 enumeration")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %8d %18.4f %18.4f\n", row.Topology, row.Routers, row.AggCost, row.AnalyticNB)
	}
	fmt.Fprintf(&b, "  flat identifiers instead (%d hosts on a %d-router grid): total /32 host\n",
		r.MobileHosts, r.GridRouters)
	fmt.Fprintf(&b, "  routes after each workload quarter: %v\n", r.HostRouteGrowth)
	b.WriteString("  (renumbering pays update cost; keeping addresses pays forwarding state)\n")
	return b.String()
}
