package expt

import (
	"fmt"
	"math/rand"
	"strings"

	"locind/internal/analytic"
	"locind/internal/topology"
)

// Table1Result reproduces Table 1: the stretch vs aggregate-update-cost
// trade-off on the four toy topologies, three ways — the paper's printed
// asymptotics, the exact finite-n enumeration, and Monte Carlo simulation.
type Table1Result struct {
	N    int
	Rows []Table1ResultRow
}

// Table1ResultRow is one topology's operating points.
type Table1ResultRow struct {
	Topology string
	Routers  int

	PaperInd analytic.Result
	PaperNB  analytic.Result

	ExactInd       analytic.Result
	ExactNB        analytic.Result
	ExactNBTransit analytic.Result
	SimInd         analytic.Result
	SimNB          analytic.Result
}

// RunTable1 computes Table 1 at size n with the given simulation budget.
func RunTable1(n, trials, steps int, seed int64) Table1Result {
	rng := rand.New(rand.NewSource(seed))
	paper := analytic.PaperTable1(n)
	graphs := map[string]*topology.Graph{
		"chain":       topology.Chain(n),
		"clique":      topology.Clique(n),
		"binary-tree": topology.BinaryTree(n),
		"star":        topology.Star(n), // n leaves + hub = n+1 routers
	}
	res := Table1Result{N: n}
	for _, p := range paper {
		g := graphs[p.Topology]
		simInd, simNB := analytic.Simulate(g, trials, steps, rng)
		res.Rows = append(res.Rows, Table1ResultRow{
			Topology:       p.Topology,
			Routers:        g.N(),
			PaperInd:       p.Indirection,
			PaperNB:        p.NameBased,
			ExactInd:       analytic.ExactIndirection(g),
			ExactNB:        analytic.ExactNameBased(g),
			ExactNBTransit: analytic.ExactNameBasedTransitOnly(g),
			SimInd:         simInd,
			SimNB:          simNB,
		})
	}
	return res
}

// Render prints the table in the paper's layout with the three estimates
// side by side.
func (r Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — path stretch vs aggregate update cost (n=%d)\n", r.N)
	fmt.Fprintf(&b, "%-12s %8s | %21s | %21s | %12s\n",
		"topology", "routers", "indirection (stretch/upd)", "name-based (stretch/upd)", "sim upd")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %8d | paper %7.3f %7.4f | paper %7.3f %7.4f |\n",
			row.Topology, row.Routers,
			row.PaperInd.Stretch, row.PaperInd.UpdateCost,
			row.PaperNB.Stretch, row.PaperNB.UpdateCost)
		fmt.Fprintf(&b, "%-12s %8s | exact %7.3f %7.4f | exact %7.3f %7.4f | %12.4f\n",
			"", "",
			row.ExactInd.Stretch, row.ExactInd.UpdateCost,
			row.ExactNB.Stretch, row.ExactNB.UpdateCost,
			row.SimNB.UpdateCost)
		if row.Topology == "star" {
			fmt.Fprintf(&b, "%-12s %8s |   (transit-only convention: update %7.4f ≈ paper's 1/(n+1))\n",
				"", "", row.ExactNBTransit.UpdateCost)
		}
	}
	b.WriteString("\nindirection update cost is always 1/n (one home agent); name-based stretch is always 0.\n")
	return b.String()
}
