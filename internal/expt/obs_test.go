package expt

import (
	"testing"

	"locind/internal/cdn"
	"locind/internal/obs"
)

// TestObsDoesNotPerturbResults is the observability ground rule: rendering
// an experiment with live metrics attached must produce byte-identical
// output to rendering it unobserved. The handles count; they never steer.
func TestObsDoesNotPerturbResults(t *testing.T) {
	w := quickWorld(t)
	if w.Cfg.Obs != nil {
		t.Fatal("shared world must start unobserved")
	}
	off8 := RunFig8(w).Render()
	off11b := RunFig11bc(w, cdn.Popular).Render()

	reg := obs.NewRegistry()
	w.Cfg.Obs = NewMetrics(reg)
	defer func() { w.Cfg.Obs = nil }()
	on8 := RunFig8(w).Render()
	on11b := RunFig11bc(w, cdn.Popular).Render()

	if on8 != off8 {
		t.Fatalf("Fig8 output diverged with obs enabled:\n--- off ---\n%s\n--- on ---\n%s", off8, on8)
	}
	if on11b != off11b {
		t.Fatalf("Fig11b output diverged with obs enabled:\n--- off ---\n%s\n--- on ---\n%s", off11b, on11b)
	}

	// And the observed run actually observed something.
	m := w.Cfg.Obs
	wantDone := int64(2 * len(w.RouteViews)) // one unit per collector per driver
	if m.CollectorsDone.Value() != wantDone {
		t.Fatalf("collectors done = %d, want %d", m.CollectorsDone.Value(), wantDone)
	}
	if m.Rows.Value() == 0 {
		t.Fatal("no rows counted")
	}
	if m.Memo.Misses.Value() == 0 || m.Memo.Hits.Value() == 0 {
		t.Fatalf("memo counters idle: hits=%d misses=%d", m.Memo.Hits.Value(), m.Memo.Misses.Value())
	}
}
