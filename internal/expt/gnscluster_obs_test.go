package expt

import (
	"testing"

	"locind/internal/faultnet"
	"locind/internal/obs"
)

// normalizeTimingNoise zeroes the counters that tally real loopback
// timeouts and retries: they replay only on a quiet host (the Render note
// disclaims them; CI's binary-level comparison diffs digest lines only),
// and under -race alongside sibling tests the 10x slowdown makes them
// diverge between two same-seed runs. What remains — scale line, digests,
// convergence verdict, series-check line — must be byte-identical.
func normalizeTimingNoise(r GNSClusterResult) GNSClusterResult {
	r.SeedRetries = 0
	r.QuorumFailures = 0
	r.StaleServed = 0
	r.FreshServed = 0
	r.Hedges = 0
	r.BreakerRejects = 0
	r.BreakerOpens = 0
	r.Repaired = 0
	r.RepairedSettle = 0
	r.Recommitted = 0
	r.Attempts = 0
	r.Net = faultnet.Stats{}
	return r
}

// TestGNSClusterObservedDoesNotPerturbResults: the quick cluster soak
// renders byte-identical output (timing-noise counters normalized)
// whether the caller wires an external registry+sampler or not, the
// per-replica series the dashboard groups on actually fill in, and the
// series checks hold.
func TestGNSClusterObservedDoesNotPerturbResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick soak (20k names over loopback UDP); skipped in -short")
	}
	reg := obs.NewRegistry()
	smp := obs.NewSampler(reg, 0)
	obsRes, err := RunGNSClusterObserved(7, true, &GNSClusterObs{Registry: reg, Sampler: smp})
	if err != nil {
		t.Fatalf("observed soak: %v", err)
	}
	plainRes, err := RunGNSCluster(7, true)
	if err != nil {
		t.Fatalf("plain soak: %v", err)
	}
	if !obsRes.Converged || !plainRes.Converged {
		t.Fatal("soak did not converge")
	}
	if obsRes.BindingHash != plainRes.BindingHash || obsRes.StateHash != plainRes.StateHash {
		t.Fatalf("digests diverged: observed %016x/%016x plain %016x/%016x",
			obsRes.BindingHash, obsRes.StateHash, plainRes.BindingHash, plainRes.StateHash)
	}
	if a, b := normalizeTimingNoise(obsRes).Render(), normalizeTimingNoise(plainRes).Render(); a != b {
		t.Fatalf("render diverged:\nobserved:\n%s\nplain:\n%s", a, b)
	}
	if !obsRes.ChecksOK || len(obsRes.SeriesChecks) == 0 {
		t.Fatalf("series checks: %+v", obsRes.SeriesChecks)
	}
	replicaSeries := 0
	for _, key := range smp.Keys() {
		if sr := smp.Series(key); sr.Label("replica") != "" {
			replicaSeries++
		}
	}
	if replicaSeries == 0 {
		t.Fatalf("no per-replica series sampled; keys = %v", smp.Keys())
	}
	if smp.Ticks() == 0 {
		t.Fatal("sampler never ticked")
	}
}
