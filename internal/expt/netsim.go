package expt

import (
	"fmt"
	"math/rand"
	"strings"

	"locind/internal/compact"
	"locind/internal/netsim"
	"locind/internal/topology"
)

// NetsimResult is the packet-level architecture comparison: the §5
// trade-off measured from forwarded packets rather than algebra, plus the
// handoff behaviour of name-based routing that the analytic model cannot
// see.
type NetsimResult struct {
	Rows []NetsimRow
}

// NetsimRow is one (topology, architecture) measurement.
type NetsimRow struct {
	Topology string
	Metrics  netsim.Metrics
}

// RunNetsim runs the packet simulator over representative topologies: the
// paper's chain, a binary tree, and a preferential-attachment graph shaped
// like a flattened AS topology.
func RunNetsim(seed int64) (NetsimResult, error) {
	rng := rand.New(rand.NewSource(seed))
	topos := []struct {
		name string
		g    *topology.Graph
	}{
		{"chain-63", topology.Chain(63)},
		{"tree-63", topology.BinaryTree(63)},
		{"pa-100", topology.PreferentialAttachment(100, 2, rng)},
	}
	sc := netsim.Scenario{Moves: 600, SendsPerMove: 4, HandoffProbes: 3}
	var res NetsimResult
	for _, tp := range topos {
		net, err := netsim.NewNetwork(tp.g)
		if err != nil {
			return res, fmt.Errorf("expt: netsim %s: %w", tp.name, err)
		}
		for _, m := range netsim.Compare(net, netsim.MapResolver{}, sc, seed+int64(len(res.Rows))) {
			res.Rows = append(res.Rows, NetsimRow{Topology: tp.name, Metrics: m})
		}
	}
	return res, nil
}

// Render prints the comparison.
func (r NetsimResult) Render() string {
	var b strings.Builder
	b.WriteString("Packet-level architecture comparison (netsim)\n")
	fmt.Fprintf(&b, "  %-10s %-20s %12s %10s %10s %12s %10s\n",
		"topology", "architecture", "upd/move", "agg cost", "stretch", "handoff ok", "h-stretch")
	for _, row := range r.Rows {
		m := row.Metrics
		handoff := "-"
		hstretch := "-"
		if m.HandoffAttempts > 0 {
			handoff = fmt.Sprintf("%.0f%%", m.HandoffSuccess*100)
			hstretch = fmt.Sprintf("%.2f", m.HandoffStretch)
		}
		fmt.Fprintf(&b, "  %-10s %-20s %12.2f %10.4f %10.2f %12s %10s\n",
			row.Topology, m.Arch, m.UpdatesPerMove, m.AggUpdateCost, m.MeanStretch, handoff, hstretch)
	}
	b.WriteString("  (handoff: packets injected while a name-routing update wavefront propagates;\n")
	b.WriteString("   losses are what the NDN strategy layer exists to repair)\n")
	return b.String()
}

// TrafficResult measures the §3.3.3 fungibility of costs at packet level:
// per-delivery forwarding traffic and per-event update cost for best-port
// anycast versus controlled flooding over a replicated content object.
type TrafficResult struct {
	Topology string
	Replicas int
	Sends    int
	Moves    int

	BestTrafficPerSend  float64
	FloodTrafficPerSend float64
	BestUpdatesPerMove  float64
	FloodUpdatesPerMove float64
	FloodFirstVsBest    float64 // mean (best hops - flood first-copy hops) >= 0
}

// RunContentTraffic measures forwarding traffic vs update cost on a
// preferential-attachment topology with a replicated object whose replicas
// churn.
func RunContentTraffic(seed int64) (TrafficResult, error) {
	rng := rand.New(rand.NewSource(seed))
	g := topology.PreferentialAttachment(120, 2, rng)
	net, err := netsim.NewNetwork(g)
	if err != nil {
		return TrafficResult{}, err
	}
	cr := netsim.NewContentRouting(net)
	replicas := []int{5, 33, 71, 104}
	if err := cr.Register("obj", replicas); err != nil {
		return TrafficResult{}, err
	}
	res := TrafficResult{Topology: "pa-120", Replicas: len(replicas)}
	var bestTr, floodTr, gain float64
	var bestUpd, floodUpd int
	for i := 0; i < 300; i++ {
		src := rng.Intn(net.N())
		bd := cr.SendBest(src, "obj")
		fd := cr.SendFlood(src, "obj")
		if !bd.Delivered || !fd.Delivered {
			return res, fmt.Errorf("expt: content delivery failed from %d", src)
		}
		bestTr += float64(bd.Hops)
		floodTr += float64(fd.Traffic)
		gain += float64(bd.Hops - fd.FirstHops)
		res.Sends++

		if i%3 == 0 {
			cur := cr.Replicas("obj")
			from := cur[rng.Intn(len(cur))]
			to := rng.Intn(net.N())
			dup := to == from
			for _, c := range cur {
				if c == to {
					dup = true
				}
			}
			if dup {
				continue
			}
			b, f, err := cr.MoveReplica("obj", from, to)
			if err != nil {
				return res, err
			}
			bestUpd += b
			floodUpd += f
			res.Moves++
		}
	}
	res.BestTrafficPerSend = bestTr / float64(res.Sends)
	res.FloodTrafficPerSend = floodTr / float64(res.Sends)
	res.FloodFirstVsBest = gain / float64(res.Sends)
	if res.Moves > 0 {
		res.BestUpdatesPerMove = float64(bestUpd) / float64(res.Moves)
		res.FloodUpdatesPerMove = float64(floodUpd) / float64(res.Moves)
	}
	return res, nil
}

// Render prints the traffic trade-off.
func (r TrafficResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.3.3 forwarding-traffic vs update-cost (content on %s, %d replicas)\n",
		r.Topology, r.Replicas)
	fmt.Fprintf(&b, "  traffic/delivery : best-port %.2f hops, flooding %.2f packet-hops (%.1fx)\n",
		r.BestTrafficPerSend, r.FloodTrafficPerSend, r.FloodTrafficPerSend/r.BestTrafficPerSend)
	fmt.Fprintf(&b, "  updates/move     : best-port %.1f routers, flooding %.1f routers\n",
		r.BestUpdatesPerMove, r.FloodUpdatesPerMove)
	fmt.Fprintf(&b, "  flooding's first copy arrives %.2f hops earlier than best-port on average\n",
		r.FloodFirstVsBest)
	b.WriteString("  (the fungibility the paper sketches: flooding buys update savings and\n")
	b.WriteString("   latency robustness with forwarding traffic)\n")
	return b.String()
}

// CompactResult is the §2.1 compact-routing reference: table size vs
// stretch at several landmark budgets.
type CompactResult struct {
	N      int
	Points []compact.Evaluation
}

// RunCompact sweeps landmark counts on an AS-like topology.
func RunCompact(seed int64) (CompactResult, error) {
	rng := rand.New(rand.NewSource(seed))
	g := topology.PreferentialAttachment(256, 2, rng)
	res := CompactResult{N: g.N()}
	for _, k := range []int{4, 8, 16, 32, 64} {
		s, err := compact.New(g, k, rand.New(rand.NewSource(seed+int64(k))))
		if err != nil {
			return res, err
		}
		ev, err := s.Evaluate()
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, ev)
	}
	return res, nil
}

// Render prints the sweep.
func (r CompactResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§2.1 compact-routing reference (Thorup–Zwick-style, n=%d)\n", r.N)
	fmt.Fprintf(&b, "  %-10s %12s %10s %14s %12s\n", "landmarks", "mean table", "max table", "mean stretch", "max stretch")
	for _, ev := range r.Points {
		fmt.Fprintf(&b, "  %-10d %12.1f %10d %14.3f %12.2f\n",
			ev.Landmarks, ev.MeanTable, ev.MaxTable, ev.MeanStretch, ev.MaxStretch)
	}
	fmt.Fprintf(&b, "  flat shortest-path routing needs %d entries per router; the max stretch\n", r.N-1)
	b.WriteString("  stays at the theoretical bound 3 while tables shrink toward sqrt(n) —\n")
	b.WriteString("  the trade-off the paper cites when framing table size vs stretch\n")
	return b.String()
}
