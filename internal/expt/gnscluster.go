package expt

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"locind/internal/faultnet"
	"locind/internal/gns"
	"locind/internal/gns/cluster"
	"locind/internal/netaddr"
	"locind/internal/obs"
	"locind/internal/reliable"
)

// GNSClusterResult is one chaos soak of the sharded, replicated GNS
// cluster: a deterministic load generator drives distinct names through
// quorum writes and hedged lookups while a seeded partition kills one full
// shard and one extra replica, then the partition heals, anti-entropy
// reconciles, and the refused writes re-commit. Everything in here is a
// counter or a digest — no timings — so a fixed seed renders fixed bytes.
type GNSClusterResult struct {
	Seed             int64
	Names            int
	Shards, Replicas int

	SeedRetries    int   // driver-level re-commits during the seeding phase
	QuorumFailures int   // chaos-window updates refused for lack of quorum
	StaleServed    int64 // chaos-window lookups degraded to last-known-good
	FreshServed    int   // chaos-window lookups answered by a live replica
	Hedges         int64 // lookup legs beyond the primary replica
	BreakerRejects int64 // replica legs skipped by an open circuit
	BreakerOpens   int64 // circuit-open transitions
	Repaired       int   // replica records rewritten by the post-heal pass
	RepairedSettle int   // stragglers settled by the second pass
	Recommitted    int   // refused chaos-window updates committed post-heal
	Attempts       int64 // total network attempts across the run
	Converged      bool  // final bindings == fault-free reference bindings
	BindingHash    uint64
	StateHash      uint64
	Net            faultnet.Stats

	// SeriesChecks are the obs.SeriesCheck verdicts over the soak's sampled
	// series (ticked at deterministic points in the schedule, never by a
	// clock); ChecksOK is their conjunction.
	SeriesChecks []obs.CheckResult
	ChecksOK     bool
}

// GNSClusterObs carries optional observability wiring into the soak: a
// registry to register the cluster metrics on (e.g. the one behind gnsd's
// -obs.addr) and a sampler to drive. Either field may be nil.
type GNSClusterObs struct {
	Registry *obs.Registry
	Sampler  *obs.Sampler
}

// gnsClusterScale fixes the load shape at either CI scale or the full
// soak: the issue's >=1M distinct names.
func gnsClusterScale(quick bool) (names, shards, replicas int) {
	if quick {
		return 20_000, 3, 3
	}
	return 1_000_000, 4, 3
}

// RunGNSCluster boots the cluster on loopback under seeded per-datagram
// faults, runs the chaos schedule, and verifies convergence against the
// in-memory fault-free reference.
func RunGNSCluster(seed int64, quick bool) (GNSClusterResult, error) {
	return RunGNSClusterObserved(seed, quick, nil)
}

// RunGNSClusterObserved is RunGNSCluster with observability wired through:
// the cluster metrics land on o.Registry and o.Sampler is ticked at fixed
// points in the schedule (per phase, and every few hundred names inside the
// sweeps), so the dashboard's per-replica series fill in while the soak
// runs. Sampling is schedule-driven, not clock-driven: the same seed takes
// the same number of ticks, and the soak's digest output is byte-identical
// with observability on or off.
func RunGNSClusterObserved(seed int64, quick bool, o *GNSClusterObs) (GNSClusterResult, error) {
	names, shards, replicas := gnsClusterScale(quick)
	res := GNSClusterResult{Seed: seed, Names: names, Shards: shards, Replicas: replicas}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	env := faultnet.NewEnv(seed)
	cfg := cluster.Config{
		Shards:   shards,
		Replicas: replicas,
		// Keep the drop rate low: every drop costs one client timeout, and
		// at soak scale timeout burn — not throughput — is the budget.
		Faults: faultnet.PacketFaults{Drop: 0.0002},
	}
	c, err := cluster.Start(ctx, cfg, env, nil)
	if err != nil {
		return res, err
	}
	defer c.Close()

	if o == nil {
		o = &GNSClusterObs{}
	}
	reg := o.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	smp := o.Sampler
	if smp == nil {
		smp = obs.NewSampler(reg, 0)
	}
	m := cluster.NewClientMetrics(reg)
	cl := cluster.NewClient(c.Addrs(), cluster.ClientConfig{
		Origin: 1,
		// Demand-driven cooldown sized to the run: a dead replica is probed
		// about 64 times over the whole name sweep instead of per lookup.
		BreakerCooldown: max(8, names/64),
		CacheLimit:      2 * names, // bounded, but ample: degraded mode must hold every name
	})
	cl.SetMetrics(m, 2*names)
	cl.Timeout = 25 * time.Millisecond
	cl.HedgeDelay = 10 * time.Millisecond
	cl.Retries = 0
	cl.Backoff = reliable.Backoff{}

	// Schedule-driven sampling: one tick every tickEvery names keeps the
	// series resolution independent of scale (~256 samples per sweep), and
	// keeps the tick count a pure function of the seed's schedule. The
	// counters these checks watch must only ever grow; a decrease means a
	// lost or double-registered handle.
	tickEvery := max(1, names/256)
	smp.Check("gnsc-lookups-monotone", "locind_gnscluster_lookups_total", obs.MonotoneNonDecreasing{})
	smp.Check("gnsc-updates-monotone", "locind_gnscluster_updates_total", obs.MonotoneNonDecreasing{})
	smp.Check("gnsc-stale-bounded", "locind_gnscluster_stale_served_total",
		obs.Bounded{Min: 0, Max: float64(2 * names)})

	name := func(i int) string { return fmt.Sprintf("soak-%07d.gns", i) }
	addrOf := func(i, gen int) netaddr.Addr {
		return netaddr.MakeAddr(byte(10+gen), byte(i>>16), byte(i>>8), byte(i))
	}
	commit := func(i, gen int) (retries int, err error) {
		for try := 0; ; try++ {
			if _, err := cl.Update(ctx, name(i), []netaddr.Addr{addrOf(i, gen)}); err == nil {
				return try, nil
			} else if try >= 50 {
				return try, fmt.Errorf("expt: gns-cluster: %q never committed: %w", name(i), err)
			}
		}
	}

	// Phase 1 — seed every name (driver retries ride out per-packet drops).
	for i := 0; i < names; i++ {
		retries, err := commit(i, 1)
		if err != nil {
			return res, err
		}
		res.SeedRetries += retries
		if i%tickEvery == 0 {
			smp.Tick()
		}
	}

	// Phase 2 — chaos window: one full shard dies (all R replicas), plus
	// one replica of the next shard, then the generator keeps going: every
	// 7th name is re-bound, every name is looked up.
	deadShard := 1 % shards
	c.KillShard(deadShard)
	c.KillReplica((deadShard+1)%shards, 0)

	var refused []int
	for i := 0; i < names; i += 7 {
		_, err := cl.Update(ctx, name(i), []netaddr.Addr{addrOf(i, 2)})
		switch {
		case err == nil:
		case errors.Is(err, gns.ErrNoQuorum):
			res.QuorumFailures++
			refused = append(refused, i)
		default:
			return res, fmt.Errorf("expt: gns-cluster: chaos update %d: %w", i, err)
		}
		if i%(7*tickEvery) == 0 {
			smp.Tick()
		}
	}
	for i := 0; i < names; i++ {
		rec, err := cl.Lookup(ctx, name(i))
		if err != nil {
			return res, fmt.Errorf("expt: gns-cluster: chaos lookup %d unserved: %w", i, err)
		}
		if !rec.Stale {
			res.FreshServed++
		}
		if i%tickEvery == 0 {
			smp.Tick()
		}
	}

	// Phase 3 — heal, reconcile, re-commit what the outage refused, and
	// settle quorum-but-not-everywhere writes with a second pass. The
	// breaker reset models the operator signal that the partition is fixed:
	// without it the dead shard's circuits (cooldown sized to the sweep)
	// would gate the re-commits on hundreds of rejected requests each.
	c.Heal()
	cl.ResetBreakers()
	res.Repaired = cluster.Repair(c, m)
	for _, i := range refused {
		retries, err := commit(i, 2)
		if err != nil {
			return res, err
		}
		res.SeedRetries += retries
		res.Recommitted++
	}
	res.RepairedSettle = cluster.Repair(c, m)

	// Convergence: the cluster's binding digest must equal the fault-free
	// reference computed straight from the intended final state.
	final := make(map[string][]netaddr.Addr, names)
	for i := 0; i < names; i++ {
		gen := 1
		if i%7 == 0 {
			gen = 2
		}
		final[name(i)] = []netaddr.Addr{addrOf(i, gen)}
	}
	wantHash, wantText := cluster.ExpectedBindingDigest(shards, replicas, final)
	var gotText string
	res.BindingHash, gotText = c.BindingDigest()
	res.Converged = res.BindingHash == wantHash && gotText == wantText
	res.StateHash, _ = c.StateDigest()

	res.StaleServed = cl.StaleServed()
	res.Attempts = cl.Attempts()
	res.Hedges = m.Hedges.Value()
	res.BreakerRejects = m.BreakerRejects.Value()
	res.BreakerOpens = m.BreakerOpens.Value()
	res.Net = env.Stats()

	// Final tick and verdicts: the check count and outcomes are functions of
	// the schedule, so the Render line stays byte-identical per seed.
	smp.Tick()
	res.SeriesChecks = smp.EvalChecks()
	res.ChecksOK = true
	for _, chk := range res.SeriesChecks {
		res.ChecksOK = res.ChecksOK && chk.OK
	}
	return res, nil
}

// Render prints the soak readout.
func (r GNSClusterResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "GNS cluster chaos soak (seed %d): %d names over %d shards x %d replicas\n",
		r.Seed, r.Names, r.Shards, r.Replicas)
	fmt.Fprintf(&b, "  seeding          : %d names committed, %d driver retries\n", r.Names, r.SeedRetries)
	fmt.Fprintf(&b, "  chaos window     : shard kill (all %d replicas) + 1 extra replica\n", r.Replicas)
	fmt.Fprintf(&b, "    updates        : %d refused by quorum loss (re-committed after heal: %d)\n",
		r.QuorumFailures, r.Recommitted)
	fmt.Fprintf(&b, "    lookups        : %d fresh, %d stale-flagged last-known-good, 0 unserved\n",
		r.FreshServed, r.StaleServed)
	fmt.Fprintf(&b, "    failover       : %d hedged legs, %d breaker rejects, %d circuit opens\n",
		r.Hedges, r.BreakerRejects, r.BreakerOpens)
	fmt.Fprintf(&b, "  anti-entropy     : %d records repaired post-heal, %d settled by second pass\n",
		r.Repaired, r.RepairedSettle)
	checksVerdict := "all OK"
	if !r.ChecksOK {
		checksVerdict = "FAILING"
	}
	fmt.Fprintf(&b, "  series checks    : %d evaluated, %s\n", len(r.SeriesChecks), checksVerdict)
	fmt.Fprintf(&b, "  network          : %d attempts; faults injected %+v\n", r.Attempts, r.Net)
	verdict := "MATCHES the fault-free reference"
	if !r.Converged {
		verdict = "DIVERGES from the fault-free reference"
	}
	fmt.Fprintf(&b, "  convergence      : binding digest %016x %s (state digest %016x)\n",
		r.BindingHash, verdict, r.StateHash)
	b.WriteString("  (same seed: the chaos schedule, fault stream and digests replay\n")
	b.WriteString("   deterministically; attempt/hedge tallies also replay on a quiet host,\n")
	b.WriteString("   where no timeout races real loopback latency)\n")
	return b.String()
}
