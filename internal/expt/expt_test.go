package expt

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"locind/internal/bgp"
	"locind/internal/cdn"
	"locind/internal/mobility"
)

var (
	worldOnce sync.Once
	world     *World
	worldErr  error
)

// quickWorld builds one shared QuickConfig world for all tests in the
// package (building it is the expensive part).
func quickWorld(t *testing.T) *World {
	t.Helper()
	worldOnce.Do(func() {
		world, worldErr = BuildWorld(QuickConfig())
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return world
}

func TestBuildWorld(t *testing.T) {
	w := quickWorld(t)
	if len(w.RouteViews) != 12 || len(w.RIPE) != 13 {
		t.Fatalf("collector counts: %d RouteViews, %d RIPE", len(w.RouteViews), len(w.RIPE))
	}
	if len(w.Devices.Users) != w.Cfg.Device.Users {
		t.Fatalf("users = %d", len(w.Devices.Users))
	}
	if len(w.Deployment.Sites) == 0 {
		t.Fatal("no content sites")
	}
	// Timelines are generated lazily and cached.
	tl1 := w.Timelines()
	tl2 := w.Timelines()
	if &tl1[0] != &tl2[0] {
		t.Fatal("timelines not cached")
	}
	pop, unpop := w.TimelinesByClass()
	if len(pop) == 0 || len(unpop) == 0 {
		t.Fatal("empty class split")
	}
	if len(pop)+len(unpop) != len(tl1) {
		t.Fatal("class split loses timelines")
	}
}

func TestTable1Experiment(t *testing.T) {
	res := RunTable1(63, 30, 200, 1)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Simulation must land near the exact enumeration.
		d := row.SimNB.UpdateCost - row.ExactNB.UpdateCost
		if d < 0 {
			d = -d
		}
		if d > 0.1*row.ExactNB.UpdateCost+0.02 {
			t.Errorf("%s: sim %v vs exact %v", row.Topology, row.SimNB.UpdateCost, row.ExactNB.UpdateCost)
		}
	}
	out := res.Render()
	for _, want := range []string{"chain", "clique", "binary-tree", "star", "transit-only"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig6AndFig7(t *testing.T) {
	w := quickWorld(t)
	f6 := RunFig6(w)
	if f6.ASes.P50 < 1.5 || f6.ASes.P50 > 3.5 {
		t.Errorf("fig6 AS median = %v", f6.ASes.P50)
	}
	if f6.IPs.P50 < f6.ASes.P50 {
		t.Error("fig6: distinct IPs must dominate distinct ASes")
	}
	if f6.TailOver10 <= 0.05 {
		t.Errorf("fig6 heavy tail missing: %v", f6.TailOver10)
	}
	if len(f6.IPCDF) == 0 || !strings.Contains(f6.Render(), "Figure 6") {
		t.Error("fig6 render broken")
	}

	f7 := RunFig7(w)
	if f7.IPs.P50 < f7.ASes.P50 {
		t.Error("fig7: IP transitions must dominate AS transitions")
	}
	if !strings.Contains(f7.Render(), "Figure 7") {
		t.Error("fig7 render broken")
	}
}

func TestFig8Shape(t *testing.T) {
	w := quickWorld(t)
	f8 := RunFig8(w)
	if len(f8.Routers) != 12 {
		t.Fatalf("routers = %d", len(f8.Routers))
	}
	byName := map[string]RouterRate{}
	for _, r := range f8.Routers {
		byName[r.Name] = r
		if r.Rate < 0 || r.Rate > 0.5 {
			t.Errorf("%s rate %v out of plausible band", r.Name, r.Rate)
		}
	}
	// The paper's headline facts: the customer-feed collectors are barely
	// impacted; some router is impacted by a noticeable fraction of events.
	if byName["Mauritius"].Rate > 0.005 || byName["Tokyo"].Rate > 0.005 {
		t.Errorf("distant collectors should see ~no updates: %v %v",
			byName["Mauritius"].Rate, byName["Tokyo"].Rate)
	}
	if f8.Max() < 0.02 {
		t.Errorf("max rate %v implausibly low", f8.Max())
	}
	if !strings.Contains(f8.Render(), "Figure 8") {
		t.Error("fig8 render broken")
	}
}

func TestSensitivity(t *testing.T) {
	w := quickWorld(t)
	res, err := RunSensitivity(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerDayStdDev) != 12 {
		t.Fatalf("per-day std devs = %d", len(res.PerDayStdDev))
	}
	// Day-to-day stability: generous bound at quick scale (the paper's
	// full-scale bound is 0.005).
	if res.MaxStdDev > 0.08 {
		t.Errorf("per-day std dev %v too high", res.MaxStdDev)
	}
	if res.RIPEMax <= 0 {
		t.Error("RIPE set shows no updates at all")
	}
	// The two workloads must correlate strongly (paper: 0.88).
	if res.Correlation < 0.6 {
		t.Errorf("IMAP correlation = %v, want high", res.Correlation)
	}
	if !strings.Contains(res.Render(), "sensitivity") {
		t.Error("render broken")
	}
	t.Logf("sensitivity: maxSD=%.4f ripe(med=%.3f,max=%.3f) corr=%.2f",
		res.MaxStdDev, res.RIPEMedian, res.RIPEMax, res.Correlation)
}

func TestFig9AndFig10(t *testing.T) {
	w := quickWorld(t)
	f9 := RunFig9(w)
	if f9.AS.P50 < f9.IP.P50-1e-9 {
		t.Error("dominant-AS dwell must dominate dominant-IP dwell")
	}
	if f9.AS.P50 < 0.5 {
		t.Errorf("dominant AS dwell median = %v", f9.AS.P50)
	}
	if !strings.Contains(f9.Render(), "Figure 9") {
		t.Error("fig9 render broken")
	}

	f10 := RunFig10(w)
	// Coverage must be partial, like iPlane's 5%.
	if f10.Coverage <= 0 || f10.Coverage > 0.6 {
		t.Errorf("iplane coverage = %v", f10.Coverage)
	}
	if f10.Latency.N > 0 && (f10.Latency.P50 < 5 || f10.Latency.P50 > 400) {
		t.Errorf("latency median = %v ms", f10.Latency.P50)
	}
	// The AS-hop lower bound: the median mobile user wanders >= 2 AS hops
	// from home (the paper's finding 2).
	if f10.HopsLower.P50 < 2 {
		t.Errorf("AS-hop lower bound median = %v, want >= 2", f10.HopsLower.P50)
	}
	if !strings.Contains(f10.Render(), "Figure 10") {
		t.Error("fig10 render broken")
	}
	t.Logf("fig10: coverage=%.3f latency=%s hops=%s", f10.Coverage, f10.Latency, f10.HopsLower)
}

func TestFig11Content(t *testing.T) {
	w := quickWorld(t)
	a := RunFig11a(w)
	if a.PerDay.P50 < 0.3 || a.PerDay.P50 > 6 {
		t.Errorf("fig11a median = %v", a.PerDay.P50)
	}
	if a.PerDay.Max > 24 {
		t.Errorf("fig11a max = %v exceeds hourly bound", a.PerDay.Max)
	}
	if !strings.Contains(a.Render(), "11(a)") {
		t.Error("render broken")
	}

	b := RunFig11bc(w, cdn.Popular)
	c := RunFig11bc(w, cdn.Unpopular)
	// The paper's Figure 11(b)/(c) facts: flooding ≥ best-port at every
	// router; unpopular rates dramatically below popular rates.
	for i := range b.BestPort {
		if b.BestPort[i].Rate > b.Flooding[i].Rate+1e-9 {
			t.Errorf("%s: best-port %v above flooding %v", b.BestPort[i].Name,
				b.BestPort[i].Rate, b.Flooding[i].Rate)
		}
	}
	if maxRate(c.Flooding) > maxRate(b.Flooding)/2 {
		t.Errorf("unpopular flooding max %v not well below popular %v",
			maxRate(c.Flooding), maxRate(b.Flooding))
	}
	if maxRate(b.BestPort) > maxRate(b.Flooding) {
		t.Error("best-port max exceeds flooding max")
	}
	if !strings.Contains(b.Render(), "11(b)") || !strings.Contains(c.Render(), "11(c)") {
		t.Error("render broken")
	}
	t.Logf("fig11b: flooding max=%.3f med=%.3f; best max=%.3f med=%.4f",
		maxRate(b.Flooding), medianRate(b.Flooding), maxRate(b.BestPort), medianRate(b.BestPort))
	t.Logf("fig11c: flooding max=%.4f; best max=%.4f", maxRate(c.Flooding), maxRate(c.BestPort))
}

func TestFig12(t *testing.T) {
	w := quickWorld(t)
	res := RunFig12(w)
	if len(res.Routers) != 12 {
		t.Fatalf("routers = %d", len(res.Routers))
	}
	for _, r := range res.Routers {
		if r.Aggregateability < 1 {
			t.Errorf("%s aggregateability %v < 1", r.Name, r.Aggregateability)
		}
	}
	// Popular names must aggregate far better than the long tail.
	best := 0.0
	for _, r := range res.Routers {
		if r.Aggregateability > best {
			best = r.Aggregateability
		}
	}
	if best < 1.5 {
		t.Errorf("popular aggregateability max %v too low", best)
	}
	if res.UnpopularAgg > best/1.2 {
		t.Errorf("unpopular aggregateability %v not well below popular %v", res.UnpopularAgg, best)
	}
	if !strings.Contains(res.Render(), "Figure 12") {
		t.Error("render broken")
	}
	t.Logf("fig12: popular max=%.2f unpopular=%.2f", best, res.UnpopularAgg)
}

func TestStrategyAblation(t *testing.T) {
	w := quickWorld(t)
	res := RunStrategyAblation(w)
	if res.Collector == "" {
		t.Fatal("no collector picked")
	}
	// §3.3.3: union flooding's update cost must be at most controlled
	// flooding's; best-port at most flooding.
	if res.Union > res.Flooding+1e-9 {
		t.Errorf("union %v above flooding %v", res.Union, res.Flooding)
	}
	if res.BestPort > res.Flooding+1e-9 {
		t.Errorf("best-port %v above flooding %v", res.BestPort, res.Flooding)
	}
	if !strings.Contains(res.Render(), "ablation") {
		t.Error("render broken")
	}
	t.Logf("ablation at %s: flooding=%.3f best=%.3f union=%.3f",
		res.Collector, res.Flooding, res.BestPort, res.Union)
}

func TestSessionSweep(t *testing.T) {
	w := quickWorld(t)
	res, err := RunSessionSweep(w, []int{2, 8, 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if !strings.Contains(res.Render(), "Ablation") {
		t.Error("render broken")
	}
	t.Logf("session sweep: %+v", res.Points)
}

func TestEnvelope(t *testing.T) {
	w := quickWorld(t)
	f8 := RunFig8(w)
	f9 := RunFig9(w)
	res := RunEnvelope(w, f8, f9)
	if res.DeviceMedianLoad <= 0 || res.DeviceMeanLoad < res.DeviceMedianLoad {
		t.Errorf("device loads: %v %v", res.DeviceMedianLoad, res.DeviceMeanLoad)
	}
	if res.ContentLoad < 100 || res.ContentLoad > 130 {
		t.Errorf("content load = %v", res.ContentLoad)
	}
	if !strings.Contains(res.Render(), "envelope") {
		t.Error("render broken")
	}
}

func TestRunNetsim(t *testing.T) {
	res, err := RunNetsim(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d, want 3 topologies x 3 architectures", len(res.Rows))
	}
	for _, row := range res.Rows {
		m := row.Metrics
		switch m.Arch {
		case "indirection", "name-resolution":
			if m.UpdatesPerMove != 1 {
				t.Errorf("%s/%s updates per move = %v", row.Topology, m.Arch, m.UpdatesPerMove)
			}
		case "name-based-routing":
			if m.AggUpdateCost <= 0 {
				t.Errorf("%s/%s agg cost = %v", row.Topology, m.Arch, m.AggUpdateCost)
			}
			if m.HandoffAttempts == 0 {
				t.Errorf("%s missing handoff probes", row.Topology)
			}
		}
		if m.DeliveredFrac < 0.99 {
			t.Errorf("%s/%s delivered %v", row.Topology, m.Arch, m.DeliveredFrac)
		}
	}
	if !strings.Contains(res.Render(), "netsim") {
		t.Error("render broken")
	}
}

func TestExportAll(t *testing.T) {
	w := quickWorld(t)
	dir := t.TempDir()
	if err := ExportAll(w, dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		"trace.csv", "rib_Oregon-1.txt", "fig6.csv", "fig7.csv", "fig8.csv",
		"fig9.csv", "fig10.csv", "fig11a.csv", "fig11b_flooding.csv",
		"fig11b_bestport.csv", "fig11c_flooding.csv", "fig11c_bestport.csv", "fig12.csv",
	} {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("missing export %s: %v", f, err)
		}
		if st.Size() == 0 {
			t.Fatalf("empty export %s", f)
		}
	}
	// The exported trace must parse back and preserve the user population.
	raw, err := os.Open(filepath.Join(dir, "trace.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	back, err := mobility.ReadCSV(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Users) != len(w.Devices.Users) {
		t.Fatalf("trace round trip lost users: %d vs %d", len(back.Users), len(w.Devices.Users))
	}
	// The exported RIB must reload and derive an identical FIB sample.
	rf, err := os.Open(filepath.Join(dir, "rib_Oregon-1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	rib, err := bgp.ReadRIB(rf)
	if err != nil {
		t.Fatal(err)
	}
	fib := rib.DeriveFIB()
	orig := w.RouteViews[0].FIB
	for as := 0; as < w.Graph.N(); as += 37 {
		a := w.Prefixes.AddrIn(as, 3)
		p1, _ := orig.Port(a)
		p2, _ := fib.Port(a)
		if p1 != p2 {
			t.Fatalf("reloaded FIB diverges at AS%d", as)
		}
	}
}

func TestRunContentTraffic(t *testing.T) {
	res, err := RunContentTraffic(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sends == 0 || res.Moves == 0 {
		t.Fatalf("empty run: %+v", res)
	}
	if res.FloodTrafficPerSend <= res.BestTrafficPerSend {
		t.Errorf("flooding traffic %v not above best %v", res.FloodTrafficPerSend, res.BestTrafficPerSend)
	}
	if res.FloodFirstVsBest < 0 {
		t.Errorf("flooding first copy slower than best: %v", res.FloodFirstVsBest)
	}
	if !strings.Contains(res.Render(), "fungibility") {
		t.Error("render broken")
	}
	t.Logf("traffic: best=%.2f flood=%.2f; updates: best=%.1f flood=%.1f",
		res.BestTrafficPerSend, res.FloodTrafficPerSend, res.BestUpdatesPerMove, res.FloodUpdatesPerMove)
}

func TestRunCompact(t *testing.T) {
	res, err := RunCompact(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, ev := range res.Points {
		if ev.MaxStretch > 3+1e-9 {
			t.Errorf("stretch bound broken at k=%d: %v", ev.Landmarks, ev.MaxStretch)
		}
	}
	// More landmarks -> landmark share of the table grows monotonically.
	if !strings.Contains(res.Render(), "compact-routing") {
		t.Error("render broken")
	}
	t.Logf("\n%s", res.Render())
}

func TestRunIntradomain(t *testing.T) {
	res, err := RunIntradomain(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		d := row.AggCost - row.AnalyticNB
		if d < 0 {
			d = -d
		}
		if d > 1e-9 {
			t.Errorf("%s: intradomain %v != analytic %v", row.Topology, row.AggCost, row.AnalyticNB)
		}
	}
	if len(res.HostRouteGrowth) != 4 {
		t.Fatalf("growth samples = %v", res.HostRouteGrowth)
	}
	// Host routes accumulate as hosts scatter from their birth subnets.
	if res.HostRouteGrowth[3] < res.HostRouteGrowth[0] {
		t.Errorf("host routes shrank: %v", res.HostRouteGrowth)
	}
	if !strings.Contains(res.Render(), "intradomain") {
		t.Error("render broken")
	}
	t.Logf("\n%s", res.Render())
}

// The whole world must be bit-for-bit reproducible from its seed: identical
// collectors, traces, and figure outputs.
func TestWorldDeterminism(t *testing.T) {
	cfg := QuickConfig()
	cfg.Device.Users = 30
	cfg.Device.Days = 3
	cfg.CDN.PopularDomains = 20
	cfg.CDN.UnpopularDomains = 20
	cfg.ContentDays = 3
	w1, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f1 := RunFig8(w1)
	f2 := RunFig8(w2)
	for i := range f1.Routers {
		if f1.Routers[i] != f2.Routers[i] {
			t.Fatalf("fig8 diverged at %s: %+v vs %+v", f1.Routers[i].Name, f1.Routers[i], f2.Routers[i])
		}
	}
	a1 := RunFig11a(w1)
	a2 := RunFig11a(w2)
	if a1.PerDay != a2.PerDay {
		t.Fatalf("fig11a diverged: %+v vs %+v", a1.PerDay, a2.PerDay)
	}
}
