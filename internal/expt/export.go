package expt

import (
	"fmt"
	"os"
	"path/filepath"

	"locind/internal/bgp"
	"locind/internal/cdn"
	"locind/internal/mobility"
	"locind/internal/stats"
)

// ExportAll writes the world's raw artifacts and every figure's data series
// into dir, so external tooling (gnuplot, pandas) can replot the paper's
// figures from this reproduction:
//
//	trace.csv            the NomadLog-equivalent device trace (§4 schema)
//	rib_<collector>.txt  each RouteViews collector's candidate routes
//	fig6.csv .. fig12.csv  the plotted series
func ExportAll(w *World, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeFile(dir, "trace.csv", func(f *os.File) error {
		return mobility.WriteCSV(f, w.Devices)
	}); err != nil {
		return err
	}
	for _, c := range w.RouteViews {
		c := c
		name := fmt.Sprintf("rib_%s.txt", c.Name)
		if err := writeFile(dir, name, func(f *os.File) error {
			return bgp.WriteRIB(f, c.Name, c.RIB)
		}); err != nil {
			return err
		}
	}

	curves := func(file string, series map[string][]stats.Point) error {
		return writeFile(dir, file, func(f *os.File) error {
			if _, err := fmt.Fprintln(f, "series,x,y"); err != nil {
				return err
			}
			for name, pts := range series {
				for _, p := range pts {
					if _, err := fmt.Fprintf(f, "%s,%g,%g\n", name, p.X, p.Y); err != nil {
						return err
					}
				}
			}
			return nil
		})
	}
	bars := func(file string, rows []RouterRate) error {
		return writeFile(dir, file, func(f *os.File) error {
			if _, err := fmt.Fprintln(f, "router,rate,nexthop_degree,sessions"); err != nil {
				return err
			}
			for _, r := range rows {
				if _, err := fmt.Fprintf(f, "%s,%g,%d,%d\n", r.Name, r.Rate, r.NextHopDegree, r.Sessions); err != nil {
					return err
				}
			}
			return nil
		})
	}

	f6 := RunFig6(w)
	if err := curves("fig6.csv", map[string][]stats.Point{
		"ip": f6.IPCDF, "prefix": f6.PrefixCDF, "as": f6.ASCDF,
	}); err != nil {
		return err
	}
	f7 := RunFig7(w)
	if err := curves("fig7.csv", map[string][]stats.Point{
		"ip": f7.IPCDF, "prefix": f7.PrefixCDF, "as": f7.ASCDF,
	}); err != nil {
		return err
	}
	if err := bars("fig8.csv", RunFig8(w).Routers); err != nil {
		return err
	}
	f9 := RunFig9(w)
	if err := curves("fig9.csv", map[string][]stats.Point{
		"ip": f9.IPCDF, "prefix": f9.PrefixCDF, "as": f9.ASCDF,
	}); err != nil {
		return err
	}
	f10 := RunFig10(w)
	if err := curves("fig10.csv", map[string][]stats.Point{"latency_ms": f10.LatencyCDF}); err != nil {
		return err
	}
	if err := curves("fig11a.csv", map[string][]stats.Point{"events_per_day": RunFig11a(w).CDF}); err != nil {
		return err
	}
	b := RunFig11bc(w, cdn.Popular)
	if err := bars("fig11b_flooding.csv", b.Flooding); err != nil {
		return err
	}
	if err := bars("fig11b_bestport.csv", b.BestPort); err != nil {
		return err
	}
	c := RunFig11bc(w, cdn.Unpopular)
	if err := bars("fig11c_flooding.csv", c.Flooding); err != nil {
		return err
	}
	if err := bars("fig11c_bestport.csv", c.BestPort); err != nil {
		return err
	}
	f12 := RunFig12(w)
	if err := writeFile(dir, "fig12.csv", func(f *os.File) error {
		if _, err := fmt.Fprintln(f, "router,aggregateability"); err != nil {
			return err
		}
		for _, r := range f12.Routers {
			if _, err := fmt.Fprintf(f, "%s,%g\n", r.Name, r.Aggregateability); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	return nil
}

func writeFile(dir, name string, fill func(*os.File) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close() //lint:allow errflow the fill error is the one worth reporting
		return fmt.Errorf("expt: writing %s: %w", name, err)
	}
	return f.Close()
}
