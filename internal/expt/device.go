package expt

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"locind/internal/bgp"
	"locind/internal/core"
	"locind/internal/iplane"
	"locind/internal/mobility"
	"locind/internal/par"
	"locind/internal/stats"
)

// Fig6Result is the Figure 6 series: the per-user distribution of the
// average number of distinct network locations visited per day, at IP,
// prefix, and AS granularity.
type Fig6Result struct {
	IPs      stats.Summary
	Prefixes stats.Summary
	ASes     stats.Summary
	// TailOver10 is the fraction of users averaging more than 10 distinct
	// IP addresses per day (the paper's "more than 20%" headline).
	TailOver10 float64

	IPCDF, PrefixCDF, ASCDF []stats.Point
}

// RunFig6 computes Figure 6 from the device trace.
func RunFig6(w *World) Fig6Result {
	avgs := w.Devices.PerUserDailyAverages()
	var ips, prefixes, ases []float64
	for _, a := range avgs {
		ips = append(ips, a.AvgDistinctIPs)
		prefixes = append(prefixes, a.AvgDistinctPrefixes)
		ases = append(ases, a.AvgDistinctASes)
	}
	c := stats.NewCDF(ips)
	return Fig6Result{
		IPs:        stats.Summarize(ips),
		Prefixes:   stats.Summarize(prefixes),
		ASes:       stats.Summarize(ases),
		TailOver10: 1 - c.At(10),
		IPCDF:      c.Points(40),
		PrefixCDF:  stats.NewCDF(prefixes).Points(40),
		ASCDF:      stats.NewCDF(ases).Points(40),
	}
}

// Render prints the Figure 6 readout.
func (r Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6 — distinct network locations per user per day (CDF across users)\n")
	fmt.Fprintf(&b, "  IP addresses : %s\n", r.IPs)
	fmt.Fprintf(&b, "  IP prefixes  : %s\n", r.Prefixes)
	fmt.Fprintf(&b, "  ASes         : %s\n", r.ASes)
	fmt.Fprintf(&b, "  users averaging >10 IPs/day: %.1f%%  (paper: >20%%)\n", r.TailOver10*100)
	fmt.Fprintf(&b, "  paper medians: IP 3, prefix 2, AS 2 — measured: IP %.0f, prefix %.0f, AS %.0f\n",
		r.IPs.P50, r.Prefixes.P50, r.ASes.P50)
	return b.String()
}

// Fig7Result is the Figure 7 series: transitions across network locations
// per day.
type Fig7Result struct {
	IPs      stats.Summary
	Prefixes stats.Summary
	ASes     stats.Summary

	IPCDF, PrefixCDF, ASCDF []stats.Point
}

// RunFig7 computes Figure 7 from the device trace.
func RunFig7(w *World) Fig7Result {
	avgs := w.Devices.PerUserDailyAverages()
	var ips, prefixes, ases []float64
	for _, a := range avgs {
		ips = append(ips, a.AvgIPTransitions)
		prefixes = append(prefixes, a.AvgPrefixTransitions)
		ases = append(ases, a.AvgASTransitions)
	}
	return Fig7Result{
		IPs:       stats.Summarize(ips),
		Prefixes:  stats.Summarize(prefixes),
		ASes:      stats.Summarize(ases),
		IPCDF:     stats.NewCDF(ips).Points(40),
		PrefixCDF: stats.NewCDF(prefixes).Points(40),
		ASCDF:     stats.NewCDF(ases).Points(40),
	}
}

// Render prints the Figure 7 readout.
func (r Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7 — transitions across network locations per user per day\n")
	fmt.Fprintf(&b, "  IP addresses : %s\n", r.IPs)
	fmt.Fprintf(&b, "  IP prefixes  : %s\n", r.Prefixes)
	fmt.Fprintf(&b, "  ASes         : %s\n", r.ASes)
	fmt.Fprintf(&b, "  paper: median ~1 AS & ~3 IP transitions; AS range 0.25-31.6 — measured AS range %.2f-%.1f\n",
		r.ASes.Min, r.ASes.Max)
	return b.String()
}

// RouterRate is one bar of Figures 8/11b/11c: a collector and its update
// rate (plus next-hop degree, the paper's explanatory variable).
type RouterRate struct {
	Name          string
	Rate          float64
	NextHopDegree int
	Sessions      int
}

// Fig8Result is the per-collector device update rate of Figure 8.
type Fig8Result struct {
	Routers []RouterRate
	Events  int
}

// RunFig8 computes Figure 8 over the RouteViews collectors, one memoized
// collector per worker; results land in collector order regardless of
// scheduling.
func RunFig8(w *World) Fig8Result {
	events := w.Devices.MoveEvents()
	res := Fig8Result{Events: len(events)}
	res.Routers = par.Map(w.Cfg.Parallel, len(w.RouteViews), func(i int) RouterRate {
		c := w.RouteViews[i]
		s := core.DeviceUpdateStats(w.Cfg.memo(c.FIB), events)
		w.Cfg.Obs.collectorDone()
		return RouterRate{
			Name:          c.Name,
			Rate:          s.Rate(),
			NextHopDegree: c.FIB.NextHopDegree(),
			Sessions:      len(c.Sessions),
		}
	})
	w.Cfg.Obs.rows(len(res.Routers))
	return res
}

// Max returns the largest per-router rate.
func (r Fig8Result) Max() float64 {
	max := 0.0
	for _, rr := range r.Routers {
		if rr.Rate > max {
			max = rr.Rate
		}
	}
	return max
}

// Median returns the median per-router rate.
func (r Fig8Result) Median() float64 {
	xs := make([]float64, 0, len(r.Routers))
	for _, rr := range r.Routers {
		xs = append(xs, rr.Rate)
	}
	return stats.NewCDF(xs).Median()
}

// Render prints the Figure 8 bar chart.
func (r Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — fraction of device mobility events inducing a router update (%d events)\n", r.Events)
	max := r.Max()
	for _, rr := range r.Routers {
		fmt.Fprintf(&b, "  %-14s %6.2f%%  %s  (next-hop degree %d, %d sessions)\n",
			rr.Name, rr.Rate*100, stats.Bar(rr.Rate, max, 30), rr.NextHopDegree, rr.Sessions)
	}
	fmt.Fprintf(&b, "  max %.1f%% (paper: up to 14%%), median %.1f%% (paper: 3.15%%); Mauritius/Tokyo near zero as in the paper\n",
		r.Max()*100, r.Median()*100)
	return b.String()
}

// SensitivityResult covers the three §6.2.2 robustness checks: stability
// across measurement days, the RIPE collector set, and the IMAP-style proxy
// workload's correlation with the primary workload.
type SensitivityResult struct {
	// PerDayStdDev is, per RouteViews collector, the standard deviation of
	// its daily update rate (the paper: < 0.005 at every router across 20
	// days).
	PerDayStdDev map[string]float64
	MaxStdDev    float64

	RIPEMedian float64
	RIPEMax    float64

	IMAPEvents  int
	Correlation float64 // across all 25 collectors, NomadLog vs IMAP rates
}

// RunSensitivity computes the §6.2.2 sensitivity analysis. Each stage fans
// out over its collector set; per-collector rates are assembled in collector
// order so the readout is identical at every parallelism degree. A degenerate
// workload (zero-variance or mismatched rate vectors) is reported as an
// error, never rendered as a fake "correlation 0.00".
func RunSensitivity(w *World) (SensitivityResult, error) {
	res := SensitivityResult{PerDayStdDev: map[string]float64{}}
	events := w.Devices.MoveEvents()

	// (1) Day-to-day stability at each RouteViews collector.
	byDay := map[int][]mobility.MoveEvent{}
	for _, e := range events {
		byDay[e.Day] = append(byDay[e.Day], e)
	}
	days := make([]int, 0, len(byDay))
	for d := range byDay {
		days = append(days, d)
	}
	sort.Ints(days)
	stdDevs := par.Map(w.Cfg.Parallel, len(w.RouteViews), func(i int) float64 {
		defer w.Cfg.Obs.collectorDone()
		memo := w.Cfg.memo(w.RouteViews[i].FIB)
		var rates []float64
		for _, d := range days {
			rates = append(rates, core.DeviceUpdateStats(memo, byDay[d]).Rate())
		}
		return stats.StdDev(rates)
	})
	for i, sd := range stdDevs {
		res.PerDayStdDev[w.RouteViews[i].Name] = sd
		if sd > res.MaxStdDev {
			res.MaxStdDev = sd
		}
	}

	// (2) The RIPE collector set.
	ripeRates := par.Map(w.Cfg.Parallel, len(w.RIPE), func(i int) float64 {
		defer w.Cfg.Obs.collectorDone()
		return core.DeviceUpdateStats(w.Cfg.memo(w.RIPE[i].FIB), events).Rate()
	})
	ripeCDF := stats.NewCDF(ripeRates)
	res.RIPEMedian = ripeCDF.Median()
	res.RIPEMax = ripeCDF.Max()

	// (3) The IMAP-style application-view workload over a larger user
	// population, correlated against the NomadLog workload across all 25
	// collectors.
	imapCfg := w.Cfg.Device
	imapCfg.Users = w.Cfg.IMAPUsers
	imapCfg.Days = w.Cfg.IMAPDays
	imapTrace, err := mobility.GenerateDeviceTrace(w.Graph, w.Prefixes, imapCfg, rand.New(rand.NewSource(w.Cfg.Seed+6)))
	if err != nil {
		return res, err
	}
	imapEvents := mobility.IMAPMoveEvents(imapTrace, 2.0, rand.New(rand.NewSource(w.Cfg.Seed+7)))
	res.IMAPEvents = len(imapEvents)

	all := append(append([]*bgp.Collector{}, w.RouteViews...), w.RIPE...)
	type ratePair struct{ nomad, imap float64 }
	pairs := par.Map(w.Cfg.Parallel, len(all), func(i int) ratePair {
		defer w.Cfg.Obs.collectorDone()
		memo := w.Cfg.memo(all[i].FIB)
		return ratePair{
			nomad: core.DeviceUpdateStats(memo, events).Rate(),
			imap:  core.DeviceUpdateStats(memo, imapEvents).Rate(),
		}
	})
	nomadRates := make([]float64, len(pairs))
	imapRates := make([]float64, len(pairs))
	for i, p := range pairs {
		nomadRates[i] = p.nomad
		imapRates[i] = p.imap
	}
	corr, err := stats.Pearson(nomadRates, imapRates)
	if err != nil {
		return res, fmt.Errorf("expt: NomadLog/IMAP rate correlation: %w", err)
	}
	res.Correlation = corr
	return res, nil
}

// Render prints the sensitivity readout.
func (r SensitivityResult) Render() string {
	var b strings.Builder
	b.WriteString("§6.2.2 sensitivity analysis\n")
	fmt.Fprintf(&b, "  per-day update-rate std-dev: max %.4f across RouteViews collectors (paper: <0.005)\n", r.MaxStdDev)
	fmt.Fprintf(&b, "  RIPE set: median %.2f%%, max %.1f%% (paper: 2.74%%, 11.3%%)\n", r.RIPEMedian*100, r.RIPEMax*100)
	fmt.Fprintf(&b, "  IMAP-proxy workload (%d events): correlation with NomadLog rates %.2f (paper: 0.88)\n",
		r.IMAPEvents, r.Correlation)
	return b.String()
}

// Fig9Result is the dominant-location dwell CDF of Figure 9.
type Fig9Result struct {
	IP     stats.Summary
	Prefix stats.Summary
	AS     stats.Summary

	IPCDF, PrefixCDF, ASCDF []stats.Point
}

// RunFig9 computes Figure 9.
func RunFig9(w *World) Fig9Result {
	ip, prefix, as := w.Devices.DominantFractions()
	return Fig9Result{
		IP:        stats.Summarize(ip),
		Prefix:    stats.Summarize(prefix),
		AS:        stats.Summarize(as),
		IPCDF:     stats.NewCDF(ip).Points(40),
		PrefixCDF: stats.NewCDF(prefix).Points(40),
		ASCDF:     stats.NewCDF(as).Points(40),
	}
}

// Render prints the Figure 9 readout.
func (r Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9 — fraction of the day spent at the dominant location (CDF across user-days)\n")
	fmt.Fprintf(&b, "  IP addresses : %s\n", r.IP)
	fmt.Fprintf(&b, "  IP prefixes  : %s\n", r.Prefix)
	fmt.Fprintf(&b, "  ASes         : %s\n", r.AS)
	fmt.Fprintf(&b, "  paper: ~70%% of the day at the dominant IP, ~85%% at the dominant AS for the typical user\n")
	return b.String()
}

// Fig10Result is the indirection-stretch readout of §6.3: the iPlane-style
// latency CDF over answerable home→current pairs, plus the shortest-AS-path
// lower bound.
type Fig10Result struct {
	Latency   stats.Summary
	Coverage  float64
	HopsLower stats.Summary

	LatencyCDF []stats.Point
}

// RunFig10 computes Figure 10 and the AS-hop lower bound.
func RunFig10(w *World) Fig10Result {
	pairs := w.Devices.DominantDisplacements()

	// Build the iPlane substitute over the access+hosting stub population.
	var targets []int
	seen := map[int]bool{}
	for _, p := range pairs {
		for _, as := range []int{p.DominantAS, p.VisitedAS} {
			if !seen[as] {
				seen[as] = true
				targets = append(targets, as)
			}
		}
	}
	sort.Ints(targets)
	pred := iplane.Build(w.Graph, targets, w.Cfg.IPlaneTraces, rand.New(rand.NewSource(w.Cfg.Seed+8)))

	lats, coverage := core.IndirectionStretchLatency(pred, pairs)
	hops := core.IndirectionStretchHops(w.Graph, pairs)
	return Fig10Result{
		Latency:    stats.Summarize(lats),
		Coverage:   coverage,
		HopsLower:  stats.Summarize(hops),
		LatencyCDF: stats.NewCDF(lats).Points(40),
	}
}

// Render prints the Figure 10 readout.
func (r Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10 — displacement from the dominant location (indirection stretch)\n")
	fmt.Fprintf(&b, "  iPlane-style predictor answered %.1f%% of home→current pairs (paper: 5%%)\n", r.Coverage*100)
	fmt.Fprintf(&b, "  one-way delay over answered pairs: %s ms (paper median ≈50 ms)\n", r.Latency)
	fmt.Fprintf(&b, "  shortest-AS-path lower bound: %s hops (paper median 2)\n", r.HopsLower)
	return b.String()
}

// EnvelopeResult is the back-of-the-envelope calculation block (§6.2.2 and
// §7.3), evaluated with both the paper's stylized inputs and the measured
// workload's own numbers.
type EnvelopeResult struct {
	DeviceMedianLoad float64 // 2e9 devices × median events × measured rate
	DeviceMeanLoad   float64
	ContentLoad      float64
	ExtraFIBFrac     float64

	MeasuredEventMedian float64
	MeasuredEventMean   float64
	MeasuredUpdateFrac  float64
}

// RunEnvelope computes the envelope block from the measured workload and
// Figure 8's median router.
func RunEnvelope(w *World, fig8 Fig8Result, fig9 Fig9Result) EnvelopeResult {
	avgs := w.Devices.PerUserDailyAverages()
	var ipTrans []float64
	for _, a := range avgs {
		ipTrans = append(ipTrans, a.AvgIPTransitions)
	}
	c := stats.NewCDF(ipTrans)
	frac := fig8.Median()
	away := 1 - fig9.AS.P50
	return EnvelopeResult{
		DeviceMedianLoad:    core.UpdateLoadPerSec(2e9, c.Median(), frac),
		DeviceMeanLoad:      core.UpdateLoadPerSec(2e9, stats.Mean(ipTrans), frac),
		ContentLoad:         core.UpdateLoadPerSec(1e9, 2, 0.005),
		ExtraFIBFrac:        core.ExtraFIBFraction(frac, away),
		MeasuredEventMedian: c.Median(),
		MeasuredEventMean:   stats.Mean(ipTrans),
		MeasuredUpdateFrac:  frac,
	}
}

// Render prints the envelope block.
func (r EnvelopeResult) Render() string {
	var b strings.Builder
	b.WriteString("Back-of-the-envelope (§6.2.2, §7.3)\n")
	fmt.Fprintf(&b, "  2B devices × %.1f (median) events/day × %.1f%% ⇒ %.0f updates/sec (paper: 2.1K/sec)\n",
		r.MeasuredEventMedian, r.MeasuredUpdateFrac*100, r.DeviceMedianLoad)
	fmt.Fprintf(&b, "  2B devices × %.1f (mean) events/day × %.1f%% ⇒ %.0f updates/sec (paper: 4.8K/sec)\n",
		r.MeasuredEventMean, r.MeasuredUpdateFrac*100, r.DeviceMeanLoad)
	fmt.Fprintf(&b, "  1B content names × 2/day × 0.5%% ⇒ %.0f updates/sec (paper: ≤100/sec order)\n", r.ContentLoad)
	fmt.Fprintf(&b, "  displaced FIB entries: %.2f%% of devices (paper: ≈1%%)\n", r.ExtraFIBFrac*100)
	return b.String()
}
