package expt

import (
	"locind/internal/core"
	"locind/internal/obs"
)

// Metrics is the evaluation engine's observability surface, attached via
// Config.Obs. Recording goes through nil-safe helpers, so the nil default
// keeps every driver on its uninstrumented path and — instrumented or not —
// drivers produce byte-identical results: the handles only count, they
// never steer.
type Metrics struct {
	// CollectorsDone counts per-collector work units finished, the
	// progress signal of a long sweep.
	CollectorsDone *obs.Counter
	// Rows counts result rows produced (scrape deltas give rows/sec).
	Rows *obs.Counter
	// Memo aggregates route-cache behaviour across every driver memo.
	Memo *core.MemoMetrics
}

// NewMetrics registers the evaluation families on reg. A nil registry
// yields all-nil handles.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		CollectorsDone: reg.Counter("locind_expt_collectors_done_total", "per-collector work units finished"),
		Rows:           reg.Counter("locind_expt_rows_total", "result rows produced"),
		Memo:           core.NewMemoMetrics(reg),
	}
}

func (m *Metrics) collectorDone() {
	if m != nil {
		m.CollectorsDone.Inc()
	}
}

func (m *Metrics) rows(n int) {
	if m != nil {
		m.Rows.Add(int64(n))
	}
}

// memo builds a driver route cache, observed when metrics are attached.
func (c Config) memo(r core.RouteLookup) *core.Memo {
	if c.Obs == nil {
		return core.NewMemo(r)
	}
	return core.NewMemoObserved(r, 0, c.Obs.Memo)
}
