// Package expt contains one driver per table and figure of the paper's
// evaluation. Each driver consumes a World (the synthesized internetwork,
// collectors, and measured workloads), computes the quantity the paper
// plots, and renders the same rows/series the paper reports, so that
// `locind all` regenerates the entire evaluation and EXPERIMENTS.md can
// record paper-vs-measured values side by side.
package expt

import (
	"fmt"
	"math/rand"
	"sync"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/cdn"
	"locind/internal/mobility"
)

// Config collects every substrate parameter behind one seed. Deriving all
// RNG streams from Seed makes any experiment reproducible bit for bit.
type Config struct {
	Seed int64

	// Parallel bounds the worker count of the parallel evaluation drivers
	// and of timeline generation: N workers when positive, GOMAXPROCS when
	// zero or negative. Every value — including 1 — produces bit-identical
	// results; the knob only trades wall-clock time.
	Parallel int

	AS            asgraph.SynthConfig
	Device        mobility.DeviceConfig
	CDN           cdn.Config
	MoreSpecifics int // /24 announcements per AS in the address plan

	// ContentDays is the measurement window of the §7 sweep (the paper
	// measured May 1-22, 2014: three weeks).
	ContentDays int

	// IPlaneTraces is the traceroute budget of the iPlane substitute,
	// tuned so coverage over dominant/current pairs lands near the paper's
	// 5% response rate.
	IPlaneTraces int

	// IMAPUsers sizes the §6.2.2 sensitivity workload (7137 users in the
	// paper).
	IMAPUsers int
	IMAPDays  int

	// Obs, when non-nil, attaches observability counters to the drivers
	// (progress, rows, memo hit rates). Purely additive: results are
	// byte-identical with Obs set or nil.
	Obs *Metrics
}

// DefaultConfig is the full paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		Seed:          20140817, // SIGCOMM'14 opening day
		AS:            asgraph.DefaultSynthConfig(),
		Device:        mobility.DefaultDeviceConfig(),
		CDN:           cdn.DefaultConfig(),
		MoreSpecifics: 1,
		ContentDays:   21,
		IPlaneTraces:  260,
		IMAPUsers:     7137,
		IMAPDays:      7,
	}
}

// QuickConfig is a scaled-down configuration for tests and the quickstart
// example: the same pipeline at roughly a tenth the size.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.AS.Tier2 = 80
	cfg.AS.Stubs = 700
	cfg.Device.Users = 80
	cfg.Device.Days = 7
	cfg.CDN.PopularDomains = 80
	cfg.CDN.UnpopularDomains = 80
	cfg.ContentDays = 7
	cfg.IPlaneTraces = 120
	cfg.IMAPUsers = 400
	cfg.IMAPDays = 5
	return cfg
}

// World is everything the experiment drivers share: the internetwork, the
// address plan, both collector sets, the device workload, and the content
// deployment. Content timelines are generated lazily (they are only needed
// by the §7 figures).
type World struct {
	Cfg        Config
	Graph      *asgraph.Graph
	Prefixes   *bgp.PrefixTable
	RouteViews []*bgp.Collector
	RIPE       []*bgp.Collector
	Devices    *mobility.DeviceTrace
	Deployment *cdn.Deployment

	timelinesOnce sync.Once
	timelines     []cdn.Timeline
}

// BuildWorld synthesizes a World from cfg.
func BuildWorld(cfg Config) (*World, error) {
	// Independent, deterministic RNG streams per subsystem so a change in
	// one generator does not reshuffle another.
	rngGraph := rand.New(rand.NewSource(cfg.Seed + 1))
	rngCols := rand.New(rand.NewSource(cfg.Seed + 2))
	rngDev := rand.New(rand.NewSource(cfg.Seed + 3))
	rngCDN := rand.New(rand.NewSource(cfg.Seed + 4))

	g, err := asgraph.Synthesize(cfg.AS, rngGraph)
	if err != nil {
		return nil, fmt.Errorf("expt: synthesize AS graph: %w", err)
	}
	pt, err := bgp.NewPrefixTable(g, cfg.MoreSpecifics)
	if err != nil {
		return nil, fmt.Errorf("expt: address plan: %w", err)
	}
	specs := append(append([]bgp.Spec{}, bgp.RouteViewsSpecs()...), bgp.RIPESpecs()...)
	cols, err := bgp.BuildCollectors(g, pt, specs, rngCols)
	if err != nil {
		return nil, fmt.Errorf("expt: build collectors: %w", err)
	}
	nRV := len(bgp.RouteViewsSpecs())
	dt, err := mobility.GenerateDeviceTrace(g, pt, cfg.Device, rngDev)
	if err != nil {
		return nil, fmt.Errorf("expt: device trace: %w", err)
	}
	dep, err := cdn.Generate(g, pt, cfg.CDN, rngCDN)
	if err != nil {
		return nil, fmt.Errorf("expt: content deployment: %w", err)
	}
	return &World{
		Cfg:        cfg,
		Graph:      g,
		Prefixes:   pt,
		RouteViews: cols[:nRV],
		RIPE:       cols[nRV:],
		Devices:    dt,
		Deployment: dep,
	}, nil
}

// Timelines generates (once) and returns the content timelines for the
// configured measurement window. It is safe to call from concurrent
// drivers: the sync.Once guarantees the sweep is generated exactly once.
func (w *World) Timelines() []cdn.Timeline {
	w.timelinesOnce.Do(func() {
		rng := rand.New(rand.NewSource(w.Cfg.Seed + 5))
		w.timelines = w.Deployment.TimelinesParallel(24*w.Cfg.ContentDays, rng, w.Cfg.Parallel)
	})
	return w.timelines
}

// TimelinesByClass splits the timelines into popular and unpopular sets.
func (w *World) TimelinesByClass() (popular, unpopular []cdn.Timeline) {
	for _, tl := range w.Timelines() {
		if tl.Site.Class == cdn.Popular {
			popular = append(popular, tl)
		} else {
			unpopular = append(unpopular, tl)
		}
	}
	return popular, unpopular
}
