package dns

import (
	"fmt"
	"hash/fnv"

	"locind/internal/cdn"
	"locind/internal/names"
	"locind/internal/netaddr"
)

// TicksPerHour converts the content timelines' hour granularity into
// resolver ticks.
const TicksPerHour = 3600

// PublishDeployment turns content timelines into a DNS world: one
// authoritative zone per apex domain, a CNAME from each CDN-delegated name
// into the cdn.example operator zone (mirroring the edgesuite.net-style
// aliasing of §7.1), and dynamic A answers that serve the timeline's
// current address set filtered to a locality-biased subset per vantage.
// Resolving a name at tick t therefore observes Addrs(d, t/TicksPerHour)
// partially — exactly the view one PlanetLab node had.
func PublishDeployment(tls []cdn.Timeline) (*Authority, error) {
	auth := NewAuthority()
	operator := NewZone("g.cdnop.example")
	operator.DynTTL = TicksPerHour / 2

	zones := map[names.Name]*Zone{}
	timelineFor := map[names.Name]*cdn.Timeline{}
	aliasFor := map[names.Name]*cdn.Timeline{}

	for i := range tls {
		tl := &tls[i]
		apex := tl.Site.Parent
		if apex == "" {
			apex = tl.Site.Name
		}
		z := zones[apex]
		if z == nil {
			z = NewZone(apex)
			z.DynTTL = TicksPerHour / 2
			zones[apex] = z
			auth.AddZone(z)
		}
		if tl.Site.CDN {
			alias := cdnAlias(tl.Site.Name)
			if err := z.Add(Record{
				Name: tl.Site.Name, Type: TypeCNAME, TTL: 6 * TicksPerHour, Target: alias,
			}); err != nil {
				return nil, fmt.Errorf("dns: publishing %q: %w", tl.Site.Name, err)
			}
			aliasFor[alias] = tl
		} else {
			timelineFor[tl.Site.Name] = tl
		}
	}

	for _, z := range zones {
		z.SetDynamic(func(name names.Name, vantage, now int) []netaddr.Addr {
			tl := timelineFor[name]
			if tl == nil {
				return nil
			}
			return localitySubset(tl.SetAt(now/TicksPerHour), name, vantage)
		})
	}
	operator.SetDynamic(func(name names.Name, vantage, now int) []netaddr.Addr {
		tl := aliasFor[name]
		if tl == nil {
			return nil
		}
		return localitySubset(tl.SetAt(now/TicksPerHour), name, vantage)
	})
	auth.AddZone(operator)
	return auth, nil
}

// cdnAlias derives the operator-zone alias for a delegated name, mimicking
// the aNNNN.g.akamai.net convention.
func cdnAlias(name names.Name) names.Name {
	h := fnv.New32a()
	h.Write([]byte(name))
	return names.Name(fmt.Sprintf("a%04d.g.cdnop.example", h.Sum32()%10000))
}

// localitySubset deterministically filters a full address set to the part
// one vantage sees (the same 1-in-4 spread the vantage package uses), never
// returning an empty answer for a non-empty set.
func localitySubset(full []netaddr.Addr, name names.Name, vantage int) []netaddr.Addr {
	if len(full) == 0 {
		return nil
	}
	const spread = 4
	var out []netaddr.Addr
	for _, a := range full {
		h := fnv.New32a()
		var buf [4]byte
		buf[0] = byte(a)
		buf[1] = byte(a >> 8)
		buf[2] = byte(a >> 16)
		buf[3] = byte(a >> 24)
		h.Write(buf[:])
		if int(h.Sum32())%spread == vantage%spread {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		out = append(out, full[vantage%len(full)])
	}
	return out
}
