package dns

import (
	"math/rand"
	"testing"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/cdn"
	"locind/internal/netaddr"
)

func contentWorld(t *testing.T) []cdn.Timeline {
	t.Helper()
	acfg := asgraph.DefaultSynthConfig()
	acfg.Tier2 = 60
	acfg.Stubs = 500
	g, err := asgraph.Synthesize(acfg, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := bgp.NewPrefixTable(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := cdn.DefaultConfig()
	ccfg.PopularDomains = 20
	ccfg.UnpopularDomains = 10
	dep, err := cdn.Generate(g, pt, ccfg, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	return dep.Timelines(48, rand.New(rand.NewSource(15)))
}

// TestPublishDeployment runs the full §7.1 mechanics through actual DNS:
// CNAME-aliased CDN names resolve through the operator zone, every vantage
// sees a locality-biased subset, and the union over vantages reconstructs
// the timeline's ground-truth set at each hour.
func TestPublishDeployment(t *testing.T) {
	tls := contentWorld(t)
	auth, err := PublishDeployment(tls)
	if err != nil {
		t.Fatal(err)
	}

	var cdnSite, plainSite *cdn.Timeline
	for i := range tls {
		if tls[i].Site.CDN && cdnSite == nil {
			cdnSite = &tls[i]
		}
		if !tls[i].Site.CDN && plainSite == nil {
			plainSite = &tls[i]
		}
	}
	if cdnSite == nil || plainSite == nil {
		t.Skip("seed produced no CDN or no plain site")
	}

	for _, probe := range []*cdn.Timeline{cdnSite, plainSite} {
		for _, hour := range []int{0, 20, 47} {
			now := hour * TicksPerHour
			truth := probe.SetAt(hour)
			union := map[netaddr.Addr]bool{}
			for vantage := 0; vantage < 8; vantage++ {
				r := NewResolver(auth, vantage)
				addrs, err := r.ResolveA(probe.Site.Name, now)
				if err != nil {
					t.Fatalf("resolving %q (cdn=%v) at hour %d: %v", probe.Site.Name, probe.Site.CDN, hour, err)
				}
				if len(addrs) == 0 {
					t.Fatalf("empty answer for %q", probe.Site.Name)
				}
				// Every answered address must belong to the ground truth.
				inTruth := map[netaddr.Addr]bool{}
				for _, a := range truth {
					inTruth[a] = true
				}
				for _, a := range addrs {
					if !inTruth[a] {
						t.Fatalf("vantage %d resolved %v not in truth %v", vantage, a, truth)
					}
					union[a] = true
				}
			}
			if len(union) != len(truth) {
				t.Fatalf("%q hour %d: union over 8 vantages covers %d of %d addrs",
					probe.Site.Name, hour, len(union), len(truth))
			}
		}
	}
}

// TestPublishedMobilityVisible verifies that hourly re-resolution observes
// the site's mobility: across the whole window, some hour's answer differs
// from the previous hour's at some vantage iff the timeline has events.
func TestPublishedMobilityVisible(t *testing.T) {
	tls := contentWorld(t)
	auth, err := PublishDeployment(tls)
	if err != nil {
		t.Fatal(err)
	}
	var mover *cdn.Timeline
	for i := range tls {
		if tls[i].EventCount() > 3 {
			mover = &tls[i]
			break
		}
	}
	if mover == nil {
		t.Skip("no sufficiently mobile site at this seed")
	}
	r := NewResolver(auth, 2)
	changes := 0
	var prev []netaddr.Addr
	for hour := 0; hour < mover.Hours; hour++ {
		addrs, err := r.ResolveA(mover.Site.Name, hour*TicksPerHour)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !equalAddrs(prev, addrs) {
			changes++
		}
		prev = addrs
	}
	if changes == 0 {
		t.Fatalf("site with %d events showed no DNS-visible changes", mover.EventCount())
	}
}

func equalAddrs(a, b []netaddr.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
