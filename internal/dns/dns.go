// Package dns implements the name-resolution machinery the paper's §7.1
// measurement rides on: authoritative zones with NS delegation, CNAME alias
// chains (the mechanism by which graphics.nytimes.com becomes
// static.nytimes.com.edgesuite.net becomes a1158.g1.akamai.net), A records
// with TTLs, and a recursive resolver with a TTL-honoring cache. CDN
// delegates answer A queries in a locality-aware way, which is exactly why
// the paper needs 74 vantage points to see a domain's full address set.
//
// Time is logical (an integer tick supplied by the caller), keeping every
// resolution deterministic and testable.
package dns

import (
	"fmt"
	"sort"

	"locind/internal/names"
	"locind/internal/netaddr"
)

// RRType is the record type of a resource record.
type RRType uint8

// Record types used by the evaluation.
const (
	TypeA RRType = iota
	TypeCNAME
	TypeNS
)

// String names the record type.
func (t RRType) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeCNAME:
		return "CNAME"
	case TypeNS:
		return "NS"
	}
	return fmt.Sprintf("RRType(%d)", int(t))
}

// Record is one resource record.
type Record struct {
	Name names.Name
	Type RRType
	TTL  int // logical ticks
	// Addr is set for A records; Target for CNAME and NS.
	Addr   netaddr.Addr
	Target names.Name
}

// AnswerFunc lets a zone answer A queries dynamically — the hook CDN
// delegates use for locality-aware responses. vantage identifies the
// querying resolver's location; now is the logical time.
type AnswerFunc func(name names.Name, vantage int, now int) []netaddr.Addr

// Zone is one authoritative server: static records plus an optional
// dynamic answer hook.
type Zone struct {
	Origin  names.Name
	records map[names.Name][]Record
	dynamic AnswerFunc
	// DynTTL is the TTL attached to dynamic answers (CDNs use short TTLs;
	// that is what makes hourly re-resolution see fresh sets).
	DynTTL int
}

// NewZone creates an authoritative zone rooted at origin.
func NewZone(origin names.Name) *Zone {
	return &Zone{Origin: origin, records: map[names.Name][]Record{}, DynTTL: 60}
}

// Add installs a static record; the record's name must be inside the zone.
func (z *Zone) Add(r Record) error {
	if r.Name != z.Origin && !r.Name.IsStrictSubdomainOf(z.Origin) {
		return fmt.Errorf("dns: record %q outside zone %q", r.Name, z.Origin)
	}
	if r.TTL <= 0 {
		return fmt.Errorf("dns: record %q needs positive TTL", r.Name)
	}
	z.records[r.Name] = append(z.records[r.Name], r)
	return nil
}

// SetDynamic installs the locality-aware answer hook.
func (z *Zone) SetDynamic(fn AnswerFunc) { z.dynamic = fn }

// Query answers a single-type query authoritatively.
func (z *Zone) Query(name names.Name, t RRType, vantage, now int) []Record {
	var out []Record
	for _, r := range z.records[name] {
		if r.Type == t {
			out = append(out, r)
		}
	}
	// CNAMEs answer any query for the aliased name.
	if len(out) == 0 && t != TypeCNAME {
		for _, r := range z.records[name] {
			if r.Type == TypeCNAME {
				out = append(out, r)
			}
		}
	}
	if len(out) == 0 && t == TypeA && z.dynamic != nil {
		for _, a := range z.dynamic(name, vantage, now) {
			out = append(out, Record{Name: name, Type: TypeA, TTL: z.DynTTL, Addr: a})
		}
	}
	// Delegation: the most specific NS cut between origin and name.
	if len(out) == 0 {
		if ns := z.delegationFor(name); len(ns) > 0 {
			return ns
		}
	}
	return out
}

// delegationFor walks from name up to the zone origin looking for the most
// specific NS cut.
func (z *Zone) delegationFor(name names.Name) []Record {
	for probe := name; ; {
		var ns []Record
		for _, r := range z.records[probe] {
			if r.Type == TypeNS {
				ns = append(ns, r)
			}
		}
		if len(ns) > 0 {
			return ns
		}
		if probe == z.Origin {
			return nil
		}
		parent, ok := probe.Parent()
		if !ok {
			return nil
		}
		probe = parent
	}
}

// Authority is the registry mapping zones to their servers — the substitute
// for the root/TLD walk, which the evaluation does not need to model.
type Authority struct {
	zones map[names.Name]*Zone
}

// NewAuthority creates an empty registry.
func NewAuthority() *Authority { return &Authority{zones: map[names.Name]*Zone{}} }

// AddZone registers a zone.
func (a *Authority) AddZone(z *Zone) { a.zones[z.Origin] = z }

// ZoneFor returns the most specific zone whose origin is name or an
// ancestor of name.
func (a *Authority) ZoneFor(name names.Name) (*Zone, bool) {
	probe := name
	for {
		if z, ok := a.zones[probe]; ok {
			return z, true
		}
		parent, ok := probe.Parent()
		if !ok {
			return nil, false
		}
		probe = parent
	}
}

// Resolver is a caching recursive resolver pinned to one vantage location.
type Resolver struct {
	auth    *Authority
	Vantage int

	cache map[cacheKey]cacheEntry
	// Queries counts upstream (non-cached) queries issued, the unit of the
	// paper's "lookup latency at connection setup" cost.
	Queries int
	// MaxChase bounds CNAME chains, as real resolvers do.
	MaxChase int
}

type cacheKey struct {
	name names.Name
	t    RRType
}

type cacheEntry struct {
	records []Record
	expires int
}

// NewResolver builds a resolver at the given vantage.
func NewResolver(auth *Authority, vantage int) *Resolver {
	return &Resolver{auth: auth, Vantage: vantage, cache: map[cacheKey]cacheEntry{}, MaxChase: 8}
}

// ResolveA resolves name to its A-record addresses at logical time now,
// chasing CNAME chains and honoring TTLs. The returned addresses are
// sorted.
func (r *Resolver) ResolveA(name names.Name, now int) ([]netaddr.Addr, error) {
	cur := name
	for depth := 0; depth <= r.MaxChase; depth++ {
		recs, err := r.query(cur, TypeA, now)
		if err != nil {
			return nil, err
		}
		var addrs []netaddr.Addr
		var cname names.Name
		for _, rec := range recs {
			switch rec.Type {
			case TypeA:
				addrs = append(addrs, rec.Addr)
			case TypeCNAME:
				cname = rec.Target
			}
		}
		if len(addrs) > 0 {
			sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
			return addrs, nil
		}
		if cname == "" {
			return nil, fmt.Errorf("dns: %q has no A records", cur)
		}
		cur = cname
	}
	return nil, fmt.Errorf("dns: CNAME chain from %q exceeds %d links", name, r.MaxChase)
}

func (r *Resolver) query(name names.Name, t RRType, now int) ([]Record, error) {
	key := cacheKey{name: name, t: t}
	if e, ok := r.cache[key]; ok && e.expires > now {
		return e.records, nil
	}
	z, ok := r.auth.ZoneFor(name)
	if !ok {
		return nil, fmt.Errorf("dns: no authority for %q", name)
	}
	r.Queries++
	recs := z.Query(name, t, r.Vantage, now)
	if len(recs) == 0 {
		return nil, fmt.Errorf("dns: NXDOMAIN %q", name)
	}
	// Delegation referral: recurse into the child zone.
	if recs[0].Type == TypeNS && t != TypeNS {
		child, ok := r.auth.ZoneFor(recs[0].Target)
		if !ok {
			return nil, fmt.Errorf("dns: dangling delegation to %q", recs[0].Target)
		}
		r.Queries++
		recs = child.Query(name, t, r.Vantage, now)
		if len(recs) == 0 {
			return nil, fmt.Errorf("dns: NXDOMAIN %q at delegate", name)
		}
	}
	minTTL := recs[0].TTL
	for _, rec := range recs[1:] {
		if rec.TTL < minTTL {
			minTTL = rec.TTL
		}
	}
	r.cache[key] = cacheEntry{records: recs, expires: now + minTTL}
	return recs, nil
}

// CacheLen reports the number of live cache entries at time now.
func (r *Resolver) CacheLen(now int) int {
	n := 0
	for _, e := range r.cache {
		if e.expires > now {
			n++
		}
	}
	return n
}
