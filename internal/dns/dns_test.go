package dns

import (
	"strings"
	"testing"

	"locind/internal/names"
	"locind/internal/netaddr"
)

func a(s string) netaddr.Addr { return netaddr.MustParseAddr(s) }

// paperWorld builds the exact §7.1 motivating setup:
//
//	graphics.nytimes.com  CNAME  static.nytimes.com.edgesuite.net
//	static.nytimes.com.edgesuite.net  CNAME  a1158.g1.akamai.net
//	a1158.g1.akamai.net  ->  dynamic, locality-aware A records
func paperWorld(t *testing.T) *Authority {
	t.Helper()
	auth := NewAuthority()

	ny := NewZone("nytimes.com")
	mustAdd(t, ny, Record{Name: "nytimes.com", Type: TypeA, TTL: 3600, Addr: a("170.149.168.130")})
	mustAdd(t, ny, Record{Name: "graphics.nytimes.com", Type: TypeCNAME, TTL: 3600,
		Target: "static.nytimes.com.edgesuite.net"})
	auth.AddZone(ny)

	edge := NewZone("edgesuite.net")
	mustAdd(t, edge, Record{Name: "static.nytimes.com.edgesuite.net", Type: TypeCNAME, TTL: 600,
		Target: "a1158.g1.akamai.net"})
	auth.AddZone(edge)

	ak := NewZone("akamai.net")
	ak.DynTTL = 20
	ak.SetDynamic(func(name names.Name, vantage, now int) []netaddr.Addr {
		if name != "a1158.g1.akamai.net" {
			return nil
		}
		// Two edges near the vantage plus one rotating address.
		base := byte(vantage % 4)
		rot := byte(now / 20 % 250)
		return []netaddr.Addr{
			netaddr.MakeAddr(23, base, 0, 10),
			netaddr.MakeAddr(23, base, 0, 11),
			netaddr.MakeAddr(23, 200, 0, rot),
		}
	})
	auth.AddZone(ak)
	return auth
}

func mustAdd(t *testing.T, z *Zone, r Record) {
	t.Helper()
	if err := z.Add(r); err != nil {
		t.Fatal(err)
	}
}

func TestZoneValidation(t *testing.T) {
	z := NewZone("example.com")
	if err := z.Add(Record{Name: "other.org", Type: TypeA, TTL: 60, Addr: a("1.2.3.4")}); err == nil {
		t.Error("out-of-zone record should fail")
	}
	if err := z.Add(Record{Name: "w.example.com", Type: TypeA, TTL: 0, Addr: a("1.2.3.4")}); err == nil {
		t.Error("zero TTL should fail")
	}
	if err := z.Add(Record{Name: "example.com", Type: TypeA, TTL: 60, Addr: a("1.2.3.4")}); err != nil {
		t.Errorf("apex record should be legal: %v", err)
	}
}

func TestCNAMEChainResolution(t *testing.T) {
	auth := paperWorld(t)
	r := NewResolver(auth, 1)
	addrs, err := r.ResolveA("graphics.nytimes.com", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 3 {
		t.Fatalf("addrs = %v", addrs)
	}
	// Locality: vantage 1 sees 23.1.0.x edges.
	if addrs[0] != netaddr.MakeAddr(23, 1, 0, 10) {
		t.Fatalf("nearest edge = %v", addrs[0])
	}
	// A different vantage sees a different subset — the reason the paper
	// needs distributed vantage points.
	r2 := NewResolver(auth, 3)
	addrs2, err := r2.ResolveA("graphics.nytimes.com", 0)
	if err != nil {
		t.Fatal(err)
	}
	if addrs2[0] == addrs[0] {
		t.Fatal("different vantages should see different edges")
	}
	// The apex resolves to the origin server directly.
	apex, err := r.ResolveA("nytimes.com", 0)
	if err != nil || len(apex) != 1 || apex[0] != a("170.149.168.130") {
		t.Fatalf("apex = %v, %v", apex, err)
	}
}

func TestTTLCacheBehaviour(t *testing.T) {
	auth := paperWorld(t)
	r := NewResolver(auth, 0)
	if _, err := r.ResolveA("graphics.nytimes.com", 0); err != nil {
		t.Fatal(err)
	}
	qAfterFirst := r.Queries
	if qAfterFirst == 0 {
		t.Fatal("first resolution must hit upstream")
	}
	// Within every TTL: fully cached.
	if _, err := r.ResolveA("graphics.nytimes.com", 5); err != nil {
		t.Fatal(err)
	}
	if r.Queries != qAfterFirst {
		t.Fatalf("cached resolution issued %d extra queries", r.Queries-qAfterFirst)
	}
	// After the dynamic TTL (20) the A set re-resolves and the rotating
	// address changes; the long-TTL CNAMEs stay cached.
	addrs1, _ := r.ResolveA("graphics.nytimes.com", 5)
	addrs2, err := r.ResolveA("graphics.nytimes.com", 25)
	if err != nil {
		t.Fatal(err)
	}
	if r.Queries != qAfterFirst+1 {
		t.Fatalf("expected exactly one refresh query, got %d", r.Queries-qAfterFirst)
	}
	changed := false
	for i := range addrs1 {
		if addrs1[i] != addrs2[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("rotating record should have changed after TTL expiry")
	}
	if r.CacheLen(25) == 0 {
		t.Fatal("cache should retain live entries")
	}
}

func TestDelegation(t *testing.T) {
	auth := NewAuthority()
	parent := NewZone("example.com")
	mustAdd(t, parent, Record{Name: "cdn.example.com", Type: TypeNS, TTL: 3600, Target: "cdnzone.example.com"})
	auth.AddZone(parent)
	child := NewZone("cdn.example.com")
	mustAdd(t, child, Record{Name: "img.cdn.example.com", Type: TypeA, TTL: 60, Addr: a("9.9.9.9")})
	auth.AddZone(child)
	// ZoneFor prefers the most specific zone, so wire the delegation
	// through the parent by querying a name the parent owns...
	// The resolver hits the child zone directly via ZoneFor; the referral
	// path triggers when only the parent is registered for the name.
	r := NewResolver(auth, 0)
	addrs, err := r.ResolveA("img.cdn.example.com", 0)
	if err != nil || len(addrs) != 1 || addrs[0] != a("9.9.9.9") {
		t.Fatalf("delegated resolution = %v, %v", addrs, err)
	}
}

func TestDelegationReferralPath(t *testing.T) {
	// Register ONLY the parent in the authority; its NS cut refers to a
	// child zone registered under a different origin that ZoneFor cannot
	// reach directly from the query name.
	auth := NewAuthority()
	parent := NewZone("shop.example")
	mustAdd(t, parent, Record{Name: "img.shop.example", Type: TypeNS, TTL: 3600, Target: "ns.cdnhost.example"})
	auth.AddZone(parent)
	child := NewZone("ns.cdnhost.example")
	child.SetDynamic(func(name names.Name, vantage, now int) []netaddr.Addr {
		return []netaddr.Addr{a("8.8.4.4")}
	})
	auth.AddZone(child)

	r := NewResolver(auth, 0)
	addrs, err := r.ResolveA("x.img.shop.example", 0)
	if err != nil || len(addrs) != 1 || addrs[0] != a("8.8.4.4") {
		t.Fatalf("referral resolution = %v, %v", addrs, err)
	}
}

func TestResolverErrors(t *testing.T) {
	auth := paperWorld(t)
	r := NewResolver(auth, 0)
	if _, err := r.ResolveA("missing.nytimes.com", 0); err == nil {
		t.Error("NXDOMAIN should error")
	}
	if _, err := r.ResolveA("nowhere.invalid", 0); err == nil {
		t.Error("no authority should error")
	}
	// CNAME loop protection.
	loop := NewZone("loop.test")
	mustAdd(t, loop, Record{Name: "a.loop.test", Type: TypeCNAME, TTL: 60, Target: "b.loop.test"})
	mustAdd(t, loop, Record{Name: "b.loop.test", Type: TypeCNAME, TTL: 60, Target: "a.loop.test"})
	auth.AddZone(loop)
	if _, err := r.ResolveA("a.loop.test", 0); err == nil || !strings.Contains(err.Error(), "chain") {
		t.Errorf("CNAME loop should be bounded: %v", err)
	}
}

func TestRRTypeString(t *testing.T) {
	if TypeA.String() != "A" || TypeCNAME.String() != "CNAME" || TypeNS.String() != "NS" {
		t.Fatal("type names wrong")
	}
	if RRType(9).String() == "" {
		t.Fatal("unknown type should render")
	}
}
