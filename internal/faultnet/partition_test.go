package faultnet

import (
	"net"
	"strings"
	"testing"
	"time"
)

func TestPartitionBlockedSemantics(t *testing.T) {
	p := NewEnv(1).NewPartition()

	p.Isolate("a")
	if !p.Blocked("a", "b") || !p.Blocked("b", "a") {
		t.Fatal("isolation should cut both directions")
	}
	if p.Blocked("b", "c") {
		t.Fatal("isolation of a should not touch b<->c")
	}
	p.Heal("a")
	if p.Blocked("a", "b") {
		t.Fatal("heal should remove the isolation")
	}

	p.Split([]string{"a", "b"}, []string{"c"})
	if !p.Blocked("a", "c") || !p.Blocked("c", "b") {
		t.Fatal("split should cut every cross-group edge, both directions")
	}
	if p.Blocked("a", "b") {
		t.Fatal("split should keep intra-group edges")
	}
	p.HealAll()

	p.CutOneWay("a", "b")
	if !p.Blocked("a", "b") {
		t.Fatal("one-way cut missing")
	}
	if p.Blocked("b", "a") {
		t.Fatal("one-way cut blocked the reverse direction")
	}
	p.Heal("b") // healing either endpoint removes the edge
	if p.Blocked("a", "b") {
		t.Fatal("heal by endpoint should remove directed cuts")
	}
}

func TestPartitionedConnSwallowsCutTraffic(t *testing.T) {
	env := NewEnv(7)
	p := env.NewPartition()

	raw1, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := p.WrapPacketConn(raw1), p.WrapPacketConn(raw2)
	defer c1.Close() //nolint:errcheck // test teardown
	defer c2.Close() //nolint:errcheck // test teardown
	a1, a2 := c1.LocalAddr(), c2.LocalAddr()

	recv := func(want string) {
		t.Helper()
		buf := make([]byte, 64)
		if err := c2.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
			t.Fatal(err)
		}
		n, from, err := c2.ReadFrom(buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if got := string(buf[:n]); got != want {
			t.Fatalf("read %q from %v, want %q", got, from, want)
		}
	}

	// Healthy path.
	if _, err := c1.WriteTo([]byte("one"), a2); err != nil {
		t.Fatal(err)
	}
	recv("one")

	// Cut the edge: the write still reports success (a dead link, not an
	// error) but nothing arrives; a post-heal datagram is the next read.
	p.Isolate(a2.String())
	if n, err := c1.WriteTo([]byte("lost"), a2); err != nil || n != 4 {
		t.Fatalf("write into cut: n=%d err=%v, want full length and nil", n, err)
	}
	p.Heal(a2.String())
	if _, err := c1.WriteTo([]byte("two"), a2); err != nil {
		t.Fatal(err)
	}
	recv("two")

	if got := env.Stats().Partitioned; got != 1 {
		t.Fatalf("Partitioned=%d, want 1 swallowed datagram", got)
	}

	// Receiver-side cut: send from the UNwrapped socket so the datagram
	// reaches c2's queue, where ReadFrom must drop it. The read then times
	// out (nothing deliverable) and the swallow is counted.
	p.CutOneWay(a1.String(), a2.String())
	if _, err := raw1.WriteTo([]byte("dropped"), a2); err != nil {
		t.Fatal(err)
	}
	if err := c2.SetReadDeadline(time.Now().Add(300 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, _, err := c2.ReadFrom(buf); err == nil {
		t.Fatal("read across a cut inbound edge should find nothing deliverable")
	}
	if got := env.Stats().Partitioned; got != 2 {
		t.Fatalf("Partitioned=%d, want 2 after receiver-side drop", got)
	}

	p.HealAll()
	if _, err := c1.WriteTo([]byte("three"), a2); err != nil {
		t.Fatal(err)
	}
	recv("three")
}

func TestPartitionControlEventsTraced(t *testing.T) {
	env := NewEnv(3)
	p := env.NewPartition()
	p.Isolate("x")
	p.Split([]string{"a"}, []string{"b"})
	p.CutOneWay("a", "b")
	p.Heal("x")
	p.HealAll()
	p.HealAll() // no-op: nothing left to heal, nothing recorded

	trace := strings.Join(env.Trace(), "\n")
	for _, want := range []string{
		"partition isolate x",
		"partition split 1|1 nodes",
		"partition cut a->b",
		"partition heal x",
		"partition heal all",
	} {
		if !strings.Contains(trace, want) {
			t.Fatalf("trace missing %q:\n%s", want, trace)
		}
	}
	if strings.Count(trace, "partition heal all") != 1 {
		t.Fatalf("no-op HealAll recorded:\n%s", trace)
	}
}

func TestPartitionCutsConsumeNoRandomness(t *testing.T) {
	// Two envs with the same seed, one of which also runs partition
	// operations and swallowed datagrams: the seeded fault stream must not
	// shift. Drive the rng through fault draws and compare decisions.
	run := func(withPartition bool) []bool {
		env := NewEnv(42)
		if withPartition {
			p := env.NewPartition()
			p.Isolate("a", "b", "c")
			p.swallow()
			p.swallow()
			p.HealAll()
		}
		f := PacketFaults{Drop: 0.5}
		out := make([]bool, 32)
		for i := range out {
			out[i] = env.decidePacket(f, "tx", 64).drop
		}
		return out
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault draw %d diverged after partition ops: %v vs %v", i, a, b)
		}
	}
}
