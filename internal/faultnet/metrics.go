package faultnet

import "locind/internal/obs"

// Metrics mirrors Stats into obs counters, one series per fault kind, so a
// live scrape of locind_faultnet_injected_total{kind=...} agrees exactly
// with Env.Stats() — chaos tests assert injected == observed. Zero-value
// fields (nil handles) record nothing.
type Metrics struct {
	Dropped     *obs.Counter
	Duplicated  *obs.Counter
	Reordered   *obs.Counter
	Truncated   *obs.Counter
	Delayed     *obs.Counter
	Refused     *obs.Counter
	Reset       *obs.Counter
	Stalled     *obs.Counter
	Throttled   *obs.Counter
	Partitioned *obs.Counter
}

// NewMetrics registers one locind_faultnet_injected_total series per fault
// kind on reg. A nil registry yields all-nil handles.
func NewMetrics(reg *obs.Registry) *Metrics {
	kind := func(k string) *obs.Counter {
		return reg.Counter("locind_faultnet_injected_total", "faults injected, by kind", "kind", k)
	}
	return &Metrics{
		Dropped:     kind("dropped"),
		Duplicated:  kind("duplicated"),
		Reordered:   kind("reordered"),
		Truncated:   kind("truncated"),
		Delayed:     kind("delayed"),
		Refused:     kind("refused"),
		Reset:       kind("reset"),
		Stalled:     kind("stalled"),
		Throttled:   kind("throttled"),
		Partitioned: kind("partitioned"),
	}
}

// SetMetrics installs m as the Env's live fault counters; every site that
// bumps Stats bumps the matching counter too. Nil detaches metrics.
func (e *Env) SetMetrics(m *Metrics) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if m == nil {
		e.metrics = Metrics{}
		return
	}
	e.metrics = *m
}
