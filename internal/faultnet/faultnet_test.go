package faultnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"
)

// udpPair returns a fault-wrapped server socket and a plain client socket
// dialled at it.
func udpPair(t *testing.T, env *Env, send, recv PacketFaults) (*PacketConn, net.Conn) {
	t.Helper()
	srv, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	wrapped := WrapPacketConn(srv, env, send, recv)
	cli, err := net.Dial("udp", srv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return wrapped, cli
}

func TestPacketPassThroughWhenZero(t *testing.T) {
	env := NewEnv(1)
	srv, cli := udpPair(t, env, PacketFaults{}, PacketFaults{})
	if _, err := cli.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	srv.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	n, peer, err := srv.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
	if _, err := srv.WriteTo([]byte("pong"), peer); err != nil {
		t.Fatal(err)
	}
	cli.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	n, err = cli.Read(buf)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("reply = %q, %v", buf[:n], err)
	}
	if s := env.Stats(); s != (Stats{}) {
		t.Fatalf("zero faults injected something: %+v", s)
	}
}

func TestPacketRecvDrop(t *testing.T) {
	env := NewEnv(7)
	env.SetSleep(func(time.Duration) {})
	srv, cli := udpPair(t, env, PacketFaults{}, PacketFaults{Drop: 1})
	if _, err := cli.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	srv.SetReadDeadline(time.Now().Add(100 * time.Millisecond)) //nolint:errcheck
	buf := make([]byte, 64)
	if _, _, err := srv.ReadFrom(buf); err == nil {
		t.Fatal("Drop=1 delivered a datagram")
	}
	if env.Stats().Dropped == 0 {
		t.Fatal("drop not counted")
	}
}

func TestPacketSendDupAndTruncate(t *testing.T) {
	env := NewEnv(3)
	srv, cli := udpPair(t, env, PacketFaults{Dup: 1, Truncate: 1, TruncateTo: 3}, PacketFaults{})
	// Learn the peer address first.
	if _, err := cli.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	srv.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	_, peer, err := srv.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.WriteTo([]byte("abcdef"), peer); err != nil {
		t.Fatal(err)
	}
	cli.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	for i := 0; i < 2; i++ {
		n, err := cli.Read(buf)
		if err != nil {
			t.Fatalf("copy %d: %v", i, err)
		}
		if string(buf[:n]) != "abc" {
			t.Fatalf("copy %d = %q, want truncated %q", i, buf[:n], "abc")
		}
	}
	s := env.Stats()
	if s.Duplicated != 1 || s.Truncated != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPacketRecvReorderSwapsAdjacent(t *testing.T) {
	env := NewEnv(5)
	// Reorder every datagram: each held one is released after its
	// successor, so pairs arrive swapped.
	srv, cli := udpPair(t, env, PacketFaults{}, PacketFaults{Reorder: 1})
	for _, msg := range []string{"one", "two"} {
		if _, err := cli.Write([]byte(msg)); err != nil {
			t.Fatal(err)
		}
	}
	srv.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	buf := make([]byte, 64)
	var got []string
	for i := 0; i < 2; i++ {
		n, _, err := srv.ReadFrom(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(buf[:n]))
	}
	if got[0] != "two" || got[1] != "one" {
		t.Fatalf("order = %v, want [two one]", got)
	}
}

func TestPacketDelayUsesSleepHook(t *testing.T) {
	env := NewEnv(9)
	var slept []time.Duration
	env.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	srv, cli := udpPair(t, env, PacketFaults{}, PacketFaults{
		Delay: 1, DelayMin: 50 * time.Millisecond, DelayMax: 100 * time.Millisecond,
	})
	if _, err := cli.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	srv.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	buf := make([]byte, 8)
	if _, _, err := srv.ReadFrom(buf); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] < 50*time.Millisecond || slept[0] > 100*time.Millisecond {
		t.Fatalf("sleep hook saw %v", slept)
	}
}

func TestPerPeerOverride(t *testing.T) {
	env := NewEnv(11)
	srv, cli := udpPair(t, env, PacketFaults{}, PacketFaults{Drop: 1})
	// Learn the client's address, then exempt it from the default drop.
	cliAddr := cli.LocalAddr().String()
	srv.SetPeerFaults(cliAddr, PacketFaults{}, PacketFaults{})
	if _, err := cli.Write([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	srv.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	buf := make([]byte, 64)
	n, _, err := srv.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "kept" {
		t.Fatalf("per-peer exemption failed: %q, %v", buf[:n], err)
	}
}

// TestPacketDeterministicTrace is the substrate-level determinism contract:
// the same seed and operation sequence yield an identical fault trace.
func TestPacketDeterministicTrace(t *testing.T) {
	run := func(seed int64) []string {
		env := NewEnv(seed)
		env.SetSleep(func(time.Duration) {})
		srv, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		wrapped := WrapPacketConn(srv, env, PacketFaults{
			Drop: 0.3, Dup: 0.2, Reorder: 0.2, Truncate: 0.1, Delay: 0.3,
			DelayMin: time.Millisecond, DelayMax: 10 * time.Millisecond,
		}, PacketFaults{})
		peer, err := net.ResolveUDPAddr("udp", "127.0.0.1:9") // discard port; never read
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if _, err := wrapped.WriteTo([]byte(fmt.Sprintf("msg-%03d", i)), peer); err != nil {
				t.Fatal(err)
			}
		}
		return env.Trace()
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("no faults fired at these rates")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace[%d]: %q vs %q", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(c) == len(a)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// tcpServer accepts connections through the fault listener and echoes
// whatever it reads back, reporting per-connection outcomes.
func tcpServer(t *testing.T, env *Env, faults StreamFaults) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	fln := WrapListener(ln, env, faults)
	go func() {
		for {
			conn, err := fln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn) //nolint:errcheck
			}()
		}
	}()
	return ln.Addr()
}

func TestStreamPassThrough(t *testing.T) {
	env := NewEnv(1)
	addr := tcpServer(t, env, StreamFaults{})
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if _, err := conn.Write([]byte("echo")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "echo" {
		t.Fatalf("echo = %q, %v", buf, err)
	}
}

func TestStreamRefuse(t *testing.T) {
	env := NewEnv(2)
	addr := tcpServer(t, env, StreamFaults{Refuse: 1})
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err) // accept-then-close: dial itself succeeds
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	buf := make([]byte, 1)
	conn.Write([]byte("x")) //nolint:errcheck // may race the close
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("refused connection delivered data")
	}
	if env.Stats().Refused == 0 {
		t.Fatal("refusal not counted")
	}
}

func TestStreamResetAfterBudget(t *testing.T) {
	env := NewEnv(4)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fln := WrapListener(ln, env, StreamFaults{Reset: 1, ResetAfterMin: 10, ResetAfterMax: 10})
	serverErr := make(chan error, 1)
	go func() {
		conn, err := fln.Accept()
		if err != nil {
			serverErr <- err
			return
		}
		defer conn.Close()
		buf := make([]byte, 4)
		for {
			if _, err := conn.Read(buf); err != nil {
				serverErr <- err
				return
			}
		}
	}()
	cli, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	for i := 0; i < 10; i++ {
		cli.Write([]byte("abcd")) //nolint:errcheck // the reset lands partway
	}
	select {
	case err := <-serverErr:
		if !errors.Is(err, ErrReset) {
			t.Fatalf("server saw %v, want ErrReset", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reset never fired")
	}
	if env.Stats().Reset == 0 {
		t.Fatal("reset not counted")
	}
}

func TestStreamStallAndThrottleUseHook(t *testing.T) {
	env := NewEnv(6)
	var slept []time.Duration
	env.SetSleep(func(d time.Duration) { slept = append(slept, d) })
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	wrapped := WrapConn(a, env, StreamFaults{
		Stall: 1, StallFor: 300 * time.Millisecond, BytesPerSec: 1000,
	})
	go func() {
		buf := make([]byte, 10)
		io.ReadFull(b, buf) //nolint:errcheck
	}()
	if _, err := wrapped.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 2 {
		t.Fatalf("hook calls = %v, want stall then throttle", slept)
	}
	if slept[0] != 300*time.Millisecond {
		t.Fatalf("stall = %v", slept[0])
	}
	if slept[1] != 10*time.Millisecond { // 10 bytes at 1000 B/s
		t.Fatalf("throttle = %v", slept[1])
	}
	s := env.Stats()
	if s.Stalled != 1 || s.Throttled != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStreamDeterministicDecisions(t *testing.T) {
	decide := func(seed int64) []string {
		env := NewEnv(seed)
		f := StreamFaults{Refuse: 0.2, Reset: 0.4, ResetAfterMin: 1, ResetAfterMax: 1 << 16, Stall: 0.1}
		for i := 0; i < 100; i++ {
			env.decideConn(f)
		}
		return env.Trace()
	}
	a, b := decide(99), decide(99)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("trace lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace[%d]: %q vs %q", i, a[i], b[i])
		}
	}
}
