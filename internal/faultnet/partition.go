package faultnet

import (
	"net"
	"time"
)

// Partition is the netsplit/heal primitive: a set of directed address-pair
// cuts that PartitionedConn wrappers consult on every datagram. It models
// the three whole-node failure shapes chaos tests need on top of the
// probabilistic per-packet faults:
//
//   - crash: Isolate(addr) cuts all traffic to and from addr — the node is
//     gone as far as the network can tell (requests time out rather than
//     erroring, exactly like a dead host);
//   - netsplit: Split(a, b) cuts every edge between the two groups while
//     traffic within each group keeps flowing;
//   - asymmetric loss: CutOneWay(from, to) kills one direction only, the
//     classic grey failure where requests arrive but responses vanish.
//
// Cuts are unconditional, so they draw no random variates: imposing or
// healing a partition never shifts the Env's seeded fault stream, and a
// chaos schedule (partition at operation k, heal at operation m) replays
// byte-for-byte. Control-plane events (isolate/split/cut/heal) are recorded
// in the Env trace; the per-datagram swallows are counted in Stats and
// metrics but not traced, so a million lookups into a dead shard cannot
// grow the trace without bound.
type Partition struct {
	env *Env
	// isolated and cut are guarded by env.mu: partition checks interleave
	// with fault draws under one lock, keeping the trace order coherent.
	isolated map[string]bool
	cut      map[[2]string]bool // directed (from, to) edges
}

// NewPartition creates a partition controller in e's fault domain. All
// wrappers sharing it see cuts take effect atomically.
func (e *Env) NewPartition() *Partition {
	return &Partition{
		env:      e,
		isolated: map[string]bool{},
		cut:      map[[2]string]bool{},
	}
}

// Isolate cuts all traffic to and from each addr — a node crash as seen
// from the network. Idempotent.
func (p *Partition) Isolate(addrs ...string) {
	p.env.mu.Lock()
	defer p.env.mu.Unlock()
	for _, a := range addrs {
		p.isolated[a] = true
		p.env.record("partition isolate %s", a)
	}
}

// Split cuts every edge between group a and group b, both directions.
// Traffic within each group is untouched.
func (p *Partition) Split(a, b []string) {
	p.env.mu.Lock()
	defer p.env.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			p.cut[[2]string{x, y}] = true
			p.cut[[2]string{y, x}] = true
		}
	}
	p.env.record("partition split %d|%d nodes", len(a), len(b))
}

// CutOneWay kills the from→to direction only — requests still arrive but
// the answers vanish (or vice versa), the asymmetric-loss grey failure.
func (p *Partition) CutOneWay(from, to string) {
	p.env.mu.Lock()
	defer p.env.mu.Unlock()
	p.cut[[2]string{from, to}] = true
	p.env.record("partition cut %s->%s", from, to)
}

// Heal removes the isolation of each addr and every cut edge touching it.
// Idempotent; healing an unpartitioned addr records nothing.
func (p *Partition) Heal(addrs ...string) {
	p.env.mu.Lock()
	defer p.env.mu.Unlock()
	for _, a := range addrs {
		healed := false
		if p.isolated[a] {
			delete(p.isolated, a)
			healed = true
		}
		for e := range p.cut {
			if e[0] == a || e[1] == a {
				delete(p.cut, e)
				healed = true
			}
		}
		if healed {
			p.env.record("partition heal %s", a)
		}
	}
}

// HealAll removes every cut and isolation at once — the partition heals.
func (p *Partition) HealAll() {
	p.env.mu.Lock()
	defer p.env.mu.Unlock()
	if len(p.isolated) == 0 && len(p.cut) == 0 {
		return
	}
	p.isolated = map[string]bool{}
	p.cut = map[[2]string]bool{}
	p.env.record("partition heal all")
}

// Blocked reports whether a datagram from from to to is currently cut.
func (p *Partition) Blocked(from, to string) bool {
	p.env.mu.Lock()
	defer p.env.mu.Unlock()
	return p.blockedLocked(from, to)
}

func (p *Partition) blockedLocked(from, to string) bool {
	return p.isolated[from] || p.isolated[to] || p.cut[[2]string{from, to}]
}

// swallow counts one cut datagram. Stats only, no trace: see the type
// comment.
func (p *Partition) swallow() {
	p.env.mu.Lock()
	defer p.env.mu.Unlock()
	p.env.stats.Partitioned++
	p.env.metrics.Partitioned.Inc()
}

// PartitionedConn is a net.PacketConn whose traffic respects a Partition.
// It composes with the probabilistic PacketConn wrapper in either order;
// wrapping the raw socket first keeps cut datagrams out of the fault
// stream entirely.
type PartitionedConn struct {
	inner net.PacketConn
	part  *Partition
	self  string
}

// WrapPacketConn wraps pc so datagrams crossing a cut edge are silently
// swallowed (writes still report success, like packets lost on a dead
// link). The conn's own identity is its LocalAddr at wrap time.
func (p *Partition) WrapPacketConn(pc net.PacketConn) *PartitionedConn {
	return &PartitionedConn{inner: pc, part: p, self: pc.LocalAddr().String()}
}

// WriteTo swallows datagrams into a cut, else forwards.
func (c *PartitionedConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	if c.part.Blocked(c.self, addr.String()) {
		c.part.swallow()
		return len(b), nil
	}
	return c.inner.WriteTo(b, addr)
}

// ReadFrom drops datagrams that arrive across a cut (the peer's write
// predated the cut, or the peer is outside the partition domain) and keeps
// reading.
func (c *PartitionedConn) ReadFrom(b []byte) (int, net.Addr, error) {
	for {
		n, addr, err := c.inner.ReadFrom(b)
		if err != nil {
			return n, addr, err
		}
		if addr != nil && c.part.Blocked(addr.String(), c.self) {
			c.part.swallow()
			continue
		}
		return n, addr, nil
	}
}

// Close closes the inner conn.
func (c *PartitionedConn) Close() error { return c.inner.Close() }

// LocalAddr returns the inner conn's address.
func (c *PartitionedConn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// SetDeadline forwards to the inner conn.
func (c *PartitionedConn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline forwards to the inner conn.
func (c *PartitionedConn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline forwards to the inner conn.
func (c *PartitionedConn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
