package faultnet

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrReset is returned by a stream op after faultnet injected a mid-stream
// connection reset. It satisfies net.Error with Temporary()=false so
// callers treat it exactly like a peer RST.
var ErrReset = errors.New("faultnet: connection reset by fault injection")

// StreamFaults configures TCP-side fault injection. Rates are
// probabilities in [0, 1]; the zero value injects nothing.
type StreamFaults struct {
	// Refuse closes the connection immediately after accept — the client
	// sees a connection that dies before a single byte, the observable
	// shape of a refused/overloaded listener.
	Refuse float64
	// Reset gives the connection a byte budget drawn uniformly from
	// [ResetAfterMin, ResetAfterMax] (bytes read+written through the
	// wrapper); once spent, the underlying conn is closed and ops return
	// ErrReset — a mid-stream RST.
	Reset                        float64
	ResetAfterMin, ResetAfterMax int
	// Stall pauses the connection once, before its first I/O, for
	// StallFor via the Env's sleep hook — a black-holed peer that needs a
	// deadline to detect.
	Stall    float64
	StallFor time.Duration
	// BytesPerSec throttles the stream: each op sleeps n/BytesPerSec via
	// the sleep hook. Zero means unthrottled.
	BytesPerSec int
}

// connDecision is the per-connection fate, drawn once at accept/wrap time.
type connDecision struct {
	refuse     bool
	resetAfter int // -1 = never
	stall      bool
}

// decideConn draws a connection's fate. Three uniform variates are always
// consumed (plus one when a reset fires) so the stream advances identically
// per connection.
func (e *Env) decideConn(f StreamFaults) connDecision {
	e.mu.Lock()
	defer e.mu.Unlock()
	d := connDecision{resetAfter: -1}
	d.refuse = e.rng.Float64() < f.Refuse
	if e.rng.Float64() < f.Reset {
		lo, hi := f.ResetAfterMin, f.ResetAfterMax
		if lo <= 0 {
			lo = 1
		}
		if hi < lo {
			hi = lo
		}
		d.resetAfter = lo + int(e.rng.Int63n(int64(hi-lo)+1))
	}
	d.stall = e.rng.Float64() < f.Stall
	switch {
	case d.refuse:
		e.stats.Refused++
		e.metrics.Refused.Inc()
		e.record("conn refuse")
	case d.resetAfter >= 0:
		e.stats.Reset++
		e.metrics.Reset.Inc()
		e.record("conn reset-after %dB", d.resetAfter)
	}
	if !d.refuse && d.stall {
		e.stats.Stalled++
		e.metrics.Stalled.Inc()
		e.record("conn stall %v", f.StallFor)
	}
	return d
}

// Listener wraps a net.Listener so accepted connections suffer
// StreamFaults. Refused connections are closed immediately and never
// surfaced to the caller's Accept.
type Listener struct {
	inner  net.Listener
	env    *Env
	faults StreamFaults
}

// WrapListener wraps ln in the fault domain env.
func WrapListener(ln net.Listener, env *Env, faults StreamFaults) *Listener {
	return &Listener{inner: ln, env: env, faults: faults}
}

// Accept accepts from the inner listener, applying per-connection fault
// decisions. Connections chosen for refusal are closed and skipped.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.inner.Accept()
		if err != nil {
			return nil, err
		}
		d := l.env.decideConn(l.faults)
		if d.refuse {
			conn.Close()
			continue
		}
		return &Conn{Conn: conn, env: l.env, faults: l.faults, dec: d}, nil
	}
}

// Close closes the inner listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr returns the inner listener's address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Conn is a fault-injected stream connection.
type Conn struct {
	net.Conn
	env    *Env
	faults StreamFaults
	dec    connDecision

	mu      sync.Mutex
	used    int // bytes read+written so far
	stalled bool
	closed  bool
}

// WrapConn applies faults to an already-established connection (client
// side), drawing its fate from env immediately.
func WrapConn(conn net.Conn, env *Env, faults StreamFaults) *Conn {
	return &Conn{Conn: conn, env: env, faults: faults, dec: env.decideConn(faults)}
}

// pre runs the pre-op fault checks shared by Read and Write: the one-shot
// stall and the reset budget. It returns how many bytes the op may move
// (negative = unlimited) or ErrReset.
func (c *Conn) pre() (int, error) {
	c.mu.Lock()
	needStall := c.dec.stall && !c.stalled
	c.stalled = true
	closed := c.closed
	budget := -1
	if c.dec.resetAfter >= 0 {
		budget = c.dec.resetAfter - c.used
	}
	c.mu.Unlock()
	if closed {
		return 0, ErrReset
	}
	if needStall {
		c.env.doSleep(c.faults.StallFor)
	}
	if budget == 0 {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		c.Conn.Close()
		return 0, ErrReset
	}
	return budget, nil
}

// post accounts moved bytes and applies throttling.
func (c *Conn) post(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.used += n
	c.mu.Unlock()
	if c.faults.BytesPerSec > 0 {
		d := time.Duration(float64(n) / float64(c.faults.BytesPerSec) * float64(time.Second))
		c.env.mu.Lock()
		c.env.stats.Throttled++
		c.env.metrics.Throttled.Inc()
		c.env.mu.Unlock()
		c.env.doSleep(d)
	}
}

// Read reads from the stream, honouring the connection's fault decisions.
func (c *Conn) Read(p []byte) (int, error) {
	budget, err := c.pre()
	if err != nil {
		return 0, err
	}
	if budget > 0 && len(p) > budget {
		p = p[:budget]
	}
	n, err := c.Conn.Read(p)
	c.post(n)
	return n, err
}

// Write writes to the stream, honouring the connection's fault decisions.
// A write clipped by the reset budget sends the surviving prefix and then
// resets — the bytes-on-the-wire shape of a real mid-write RST.
func (c *Conn) Write(p []byte) (int, error) {
	budget, err := c.pre()
	if err != nil {
		return 0, err
	}
	clipped := false
	if budget > 0 && len(p) > budget {
		p = p[:budget]
		clipped = true
	}
	n, err := c.Conn.Write(p)
	c.post(n)
	if err != nil {
		return n, err
	}
	if clipped {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		c.Conn.Close()
		return n, ErrReset
	}
	return n, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.Conn.Close()
}
