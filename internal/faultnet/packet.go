package faultnet

import (
	"net"
	"sync"
	"time"
)

// PacketFaults configures one direction of datagram fault injection. All
// rates are probabilities in [0, 1]; the zero value injects nothing.
type PacketFaults struct {
	// Drop discards the datagram (the sender still sees success, exactly
	// like UDP on a lossy path).
	Drop float64
	// Dup delivers the datagram twice back-to-back.
	Dup float64
	// Reorder holds the datagram and delivers it after the next one —
	// adjacent-swap reordering, the deterministic core of real-world
	// misordering. A held datagram with no successor is lost (tail drop).
	Reorder float64
	// Truncate delivers only the first TruncateTo bytes, modelling
	// MTU-clipped or corrupted-length datagrams.
	Truncate float64
	// TruncateTo is the byte prefix kept by a truncation; default 8.
	TruncateTo int
	// Delay pauses delivery for a uniform duration in [DelayMin, DelayMax]
	// via the Env's sleep hook.
	Delay              float64
	DelayMin, DelayMax time.Duration
}

// enabled reports whether any fault can fire.
func (f PacketFaults) enabled() bool {
	return f.Drop > 0 || f.Dup > 0 || f.Reorder > 0 || f.Truncate > 0 || f.Delay > 0
}

// packetDecision is the per-datagram fate, drawn in one locked step.
type packetDecision struct {
	drop, dup, reorder, trunc bool
	truncTo                   int
	delay                     time.Duration
}

// decidePacket draws the datagram's fate. Five uniform variates are always
// consumed (plus one when a delay fires) so the random stream advances
// identically for every datagram under a given config — the determinism
// contract.
func (e *Env) decidePacket(f PacketFaults, dir string, n int) packetDecision {
	e.mu.Lock()
	defer e.mu.Unlock()
	var d packetDecision
	d.drop = e.rng.Float64() < f.Drop
	d.dup = e.rng.Float64() < f.Dup
	d.reorder = e.rng.Float64() < f.Reorder
	d.trunc = e.rng.Float64() < f.Truncate
	if e.rng.Float64() < f.Delay {
		span := f.DelayMax - f.DelayMin
		if span < 0 {
			span = 0
		}
		d.delay = f.DelayMin
		if span > 0 {
			d.delay += time.Duration(e.rng.Int63n(int64(span) + 1))
		}
	}
	d.truncTo = f.TruncateTo
	if d.truncTo <= 0 {
		d.truncTo = 8
	}
	switch {
	case d.drop:
		e.stats.Dropped++
		e.metrics.Dropped.Inc()
		e.record("%s drop %dB", dir, n)
	case d.reorder:
		e.stats.Reordered++
		e.metrics.Reordered.Inc()
		e.record("%s reorder %dB", dir, n)
	}
	if !d.drop {
		if d.dup {
			e.stats.Duplicated++
			e.metrics.Duplicated.Inc()
			e.record("%s dup %dB", dir, n)
		}
		if d.trunc {
			e.stats.Truncated++
			e.metrics.Truncated.Inc()
			e.record("%s trunc %dB->%dB", dir, n, min(n, d.truncTo))
		}
		if d.delay > 0 {
			e.stats.Delayed++
			e.metrics.Delayed.Inc()
			e.record("%s delay %v", dir, d.delay)
		}
	}
	return d
}

// heldPacket is a datagram parked by a reorder decision.
type heldPacket struct {
	data []byte
	addr net.Addr
}

// PacketConn wraps a net.PacketConn with per-direction, per-peer fault
// injection. Send faults apply to WriteTo, receive faults to ReadFrom.
type PacketConn struct {
	inner      net.PacketConn
	env        *Env
	send, recv PacketFaults

	mu       sync.Mutex
	peerSend map[string]PacketFaults
	peerRecv map[string]PacketFaults
	heldOut  *heldPacket  // parked by a send-side reorder
	pending  []heldPacket // receive-side queue: dups and released reorders
	heldIn   *heldPacket  // parked by a receive-side reorder
}

// WrapPacketConn wraps pc so datagrams written through it suffer send
// faults and datagrams read through it suffer recv faults, with randomness
// and waits owned by env.
func WrapPacketConn(pc net.PacketConn, env *Env, send, recv PacketFaults) *PacketConn {
	return &PacketConn{inner: pc, env: env, send: send, recv: recv}
}

// SetPeerFaults overrides the fault rates for one peer address (the
// String() of the peer's net.Addr) — e.g. a single vantage client behind a
// much lossier link than the rest.
func (c *PacketConn) SetPeerFaults(peer string, send, recv PacketFaults) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.peerSend == nil {
		c.peerSend = map[string]PacketFaults{}
		c.peerRecv = map[string]PacketFaults{}
	}
	c.peerSend[peer] = send
	c.peerRecv[peer] = recv
}

func (c *PacketConn) faultsFor(addr net.Addr, recv bool) PacketFaults {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.peerSend
	def := c.send
	if recv {
		m, def = c.peerRecv, c.recv
	}
	if addr != nil && m != nil {
		if f, ok := m[addr.String()]; ok {
			return f
		}
	}
	return def
}

// WriteTo applies send-direction faults, then forwards to the inner conn.
// Dropped datagrams still report success, as a lossy network would.
func (c *PacketConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	f := c.faultsFor(addr, false)
	if !f.enabled() {
		return c.inner.WriteTo(p, addr)
	}
	d := c.env.decidePacket(f, "send", len(p))
	if d.drop {
		return len(p), nil
	}
	out := p
	if d.trunc && len(out) > d.truncTo {
		out = out[:d.truncTo]
	}
	if d.delay > 0 {
		c.env.doSleep(d.delay)
	}
	if d.reorder {
		c.mu.Lock()
		if c.heldOut == nil {
			c.heldOut = &heldPacket{data: append([]byte(nil), out...), addr: addr}
			c.mu.Unlock()
			return len(p), nil
		}
		c.mu.Unlock()
	}
	if _, err := c.inner.WriteTo(out, addr); err != nil {
		return 0, err
	}
	if d.dup {
		if _, err := c.inner.WriteTo(out, addr); err != nil {
			return 0, err
		}
	}
	// Release a parked datagram after this one: adjacent swap.
	c.mu.Lock()
	held := c.heldOut
	c.heldOut = nil
	c.mu.Unlock()
	if held != nil {
		if _, err := c.inner.WriteTo(held.data, held.addr); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// ReadFrom delivers queued datagrams (duplicates, released reorders) first,
// then reads from the inner conn applying receive-direction faults.
func (c *PacketConn) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		c.mu.Lock()
		if len(c.pending) > 0 {
			h := c.pending[0]
			c.pending = c.pending[1:]
			c.mu.Unlock()
			return copy(p, h.data), h.addr, nil
		}
		c.mu.Unlock()

		n, addr, err := c.inner.ReadFrom(p)
		if err != nil {
			return n, addr, err
		}
		f := c.faultsFor(addr, true)
		if !f.enabled() {
			return n, addr, nil
		}
		d := c.env.decidePacket(f, "recv", n)
		if d.drop {
			continue
		}
		if d.trunc && n > d.truncTo {
			n = d.truncTo
		}
		if d.delay > 0 {
			c.env.doSleep(d.delay)
		}
		if d.reorder {
			c.mu.Lock()
			if c.heldIn == nil {
				c.heldIn = &heldPacket{data: append([]byte(nil), p[:n]...), addr: addr}
				c.mu.Unlock()
				continue // deliver the *next* datagram first
			}
			c.mu.Unlock()
		}
		c.mu.Lock()
		if d.dup {
			c.pending = append(c.pending, heldPacket{data: append([]byte(nil), p[:n]...), addr: addr})
		}
		if c.heldIn != nil {
			c.pending = append(c.pending, *c.heldIn)
			c.heldIn = nil
		}
		c.mu.Unlock()
		return n, addr, nil
	}
}

// Close closes the inner conn. A datagram still parked by a reorder is
// lost, like a packet in flight when the interface goes down.
func (c *PacketConn) Close() error { return c.inner.Close() }

// LocalAddr returns the inner conn's address.
func (c *PacketConn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// SetDeadline forwards to the inner conn.
func (c *PacketConn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline forwards to the inner conn.
func (c *PacketConn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline forwards to the inner conn.
func (c *PacketConn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
