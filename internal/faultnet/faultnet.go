// Package faultnet is a deterministic fault-injecting transport: wrappers
// around net.PacketConn (for the GNS UDP resolution protocol) and
// net.Conn/net.Listener (for the NomadLog HTTP upload and vantage TCP
// collection pipelines) that drop, delay, duplicate, reorder and truncate
// datagrams, refuse and reset connections, stall and throttle streams — the
// failure vocabulary of the hostile networks the paper measured on
// (intermittent cellular/WiFi uplinks, PlanetLab node churn).
//
// Every fault decision is drawn from one explicit *rand.Rand owned by an
// Env, in a fixed per-packet/per-connection order, and every injected wait
// goes through the Env's sleep hook. Given the same seed and the same
// sequence of operations, a chaos run therefore replays byte-for-byte:
// identical drops, identical delivery orders, identical resets. Tests
// assert this by comparing Env.Trace() across runs.
package faultnet

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"locind/internal/obs"
)

// Env owns the randomness and the clock for one fault-injection domain.
// All wrappers sharing an Env draw from the same seeded stream under one
// lock, which is what makes single-client chaos runs fully deterministic.
type Env struct {
	mu      sync.Mutex
	rng     *rand.Rand
	sleep   func(time.Duration)
	trace   []string
	stats   Stats
	metrics Metrics // value copy installed by SetMetrics; nil handles no-op
	tracer  *obs.Tracer
}

// Stats counts injected faults, by kind.
type Stats struct {
	Dropped    int
	Duplicated int
	Reordered  int
	Truncated  int
	Delayed    int
	Refused    int
	Reset      int
	Stalled    int
	Throttled  int
	// Partitioned counts datagrams swallowed by a Partition cut. Unlike
	// the probabilistic faults above these consume no random variates, so
	// imposing or healing a partition never shifts the seeded fault
	// stream of the other kinds.
	Partitioned int
}

// NewEnv creates a fault domain seeded with seed. Waits use time.Sleep
// until SetSleep installs a virtual clock.
func NewEnv(seed int64) *Env {
	return &Env{rng: rand.New(rand.NewSource(seed)), sleep: time.Sleep}
}

// SetSleep replaces the wait implementation — the virtual-clock hook. Tests
// install a no-op (or a recording function) so delay faults cost no wall
// time while remaining part of the deterministic trace.
func (e *Env) SetSleep(fn func(time.Duration)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if fn == nil {
		fn = time.Sleep
	}
	e.sleep = fn
}

// Stats returns a snapshot of the fault counters.
func (e *Env) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Trace returns the ordered log of injected faults. Two runs with the same
// seed and operation sequence produce identical traces.
func (e *Env) Trace() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.trace...)
}

// SetTracer mirrors every injected fault into tr as a zero-duration span
// named "faultnet" labelled with the trace-log line, in the same order as
// Trace(). Fault spans share the causal-tree export with request spans, so
// a Chrome trace shows which faults interleaved with which retries. nil
// detaches the tracer.
func (e *Env) SetTracer(tr *obs.Tracer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tracer = tr
}

// record appends one fault event to the trace. Callers hold e.mu.
func (e *Env) record(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	e.trace = append(e.trace, msg)
	// The tracer has its own lock and Start/End never call back into Env,
	// so recording a span under e.mu cannot deadlock.
	e.tracer.Start("faultnet", "event", msg).End()
}

// doSleep waits via the hook without holding the lock.
func (e *Env) doSleep(d time.Duration) {
	e.mu.Lock()
	fn := e.sleep
	e.mu.Unlock()
	if d > 0 {
		fn(d)
	}
}
