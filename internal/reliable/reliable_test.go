package reliable

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestBackoffDelayTable(t *testing.T) {
	cases := []struct {
		name    string
		b       Backoff
		attempt int
		want    time.Duration
	}{
		{"zero value", Backoff{}, 3, 0},
		{"first retry", Backoff{Base: 100 * time.Millisecond}, 0, 100 * time.Millisecond},
		{"doubles by default", Backoff{Base: 100 * time.Millisecond}, 1, 200 * time.Millisecond},
		{"third retry", Backoff{Base: 100 * time.Millisecond}, 2, 400 * time.Millisecond},
		{"capped", Backoff{Base: 100 * time.Millisecond, Max: 250 * time.Millisecond}, 3, 250 * time.Millisecond},
		{"cap below base", Backoff{Base: 100 * time.Millisecond, Max: 50 * time.Millisecond}, 0, 50 * time.Millisecond},
		{"custom factor", Backoff{Base: 10 * time.Millisecond, Factor: 3}, 2, 90 * time.Millisecond},
		{"factor one is constant", Backoff{Base: 10 * time.Millisecond, Factor: 1}, 5, 10 * time.Millisecond},
		{"large attempt hits cap not overflow", Backoff{Base: time.Second, Max: time.Minute}, 500, time.Minute},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.b.Delay(tc.attempt, nil); got != tc.want {
				t.Fatalf("Delay(%d) = %v, want %v", tc.attempt, got, tc.want)
			}
		})
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Jitter: 0.5}
	// Same seed, same schedule.
	r1 := rand.New(rand.NewSource(7))
	r2 := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		d1, d2 := b.Delay(i, r1), b.Delay(i, r2)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, d1, d2)
		}
		// Jittered delay stays within [d(1-j), d].
		full := b.Delay(i, nil)
		if d1 > full || d1 < time.Duration(float64(full)*0.5) {
			t.Fatalf("attempt %d: jittered %v outside [%v, %v]", i, d1, full/2, full)
		}
	}
	// Nil rng disables jitter entirely.
	if got := b.Delay(0, nil); got != 100*time.Millisecond {
		t.Fatalf("nil rng delay = %v", got)
	}
	// Jitter above 1 is clamped, never negative.
	wild := Backoff{Base: time.Millisecond, Jitter: 9}
	for i := 0; i < 50; i++ {
		if d := wild.Delay(0, r1); d < 0 || d > time.Millisecond {
			t.Fatalf("clamped jitter out of range: %v", d)
		}
	}
}

func TestBudget(t *testing.T) {
	b := NewBudget(2)
	if !b.Take() || !b.Take() {
		t.Fatal("budget should grant its 2 retries")
	}
	if b.Take() {
		t.Fatal("exhausted budget must refuse")
	}
	if b.Remaining() != 0 {
		t.Fatalf("remaining = %d", b.Remaining())
	}
	var nilB *Budget
	if !nilB.Take() || nilB.Remaining() != -1 {
		t.Fatal("nil budget must be unlimited")
	}
}

// noSleep records requested delays without waiting.
func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

func TestDoSucceedsAfterRetries(t *testing.T) {
	var delays []time.Duration
	p := Policy{
		MaxAttempts: 5,
		Backoff:     Backoff{Base: 10 * time.Millisecond},
		Sleep:       noSleep(&delays),
	}
	calls := 0
	attempts, err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Fatalf("Do = (%d, %v), calls = %d", attempts, err, calls)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(delays) != len(want) || delays[0] != want[0] || delays[1] != want[1] {
		t.Fatalf("delays = %v, want %v", delays, want)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var delays []time.Duration
	p := Policy{MaxAttempts: 3, Sleep: noSleep(&delays)}
	sentinel := errors.New("boom")
	attempts, err := p.Do(context.Background(), func(context.Context) error { return sentinel })
	if attempts != 3 || !errors.Is(err, sentinel) {
		t.Fatalf("Do = (%d, %v)", attempts, err)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	p := Policy{MaxAttempts: 10}
	sentinel := errors.New("bad request")
	calls := 0
	attempts, err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(sentinel)
	})
	if calls != 1 || attempts != 1 || !errors.Is(err, sentinel) || !IsPermanent(err) {
		t.Fatalf("permanent: calls=%d attempts=%d err=%v", calls, attempts, err)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must be nil")
	}
}

func TestDoRespectsBudget(t *testing.T) {
	budget := NewBudget(3)
	p := Policy{MaxAttempts: 10, Budget: budget}
	attempts, err := p.Do(context.Background(), func(context.Context) error { return errors.New("x") })
	if attempts != 4 || !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("budgeted Do = (%d, %v)", attempts, err)
	}
	// A second operation on the same drained budget gets its first attempt
	// but no retries.
	attempts, err = p.Do(context.Background(), func(context.Context) error { return errors.New("x") })
	if attempts != 1 || !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("drained-budget Do = (%d, %v)", attempts, err)
	}
}

func TestDoHonoursContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 100, Backoff: Backoff{Base: time.Hour}}
	calls := 0
	attempts, err := p.Do(ctx, func(context.Context) error {
		calls++
		cancel() // cancel mid-retry: the backoff sleep must abort
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if calls != 1 || attempts != 1 {
		t.Fatalf("cancelled run made %d calls, %d attempts", calls, attempts)
	}
}

func TestDoPerAttemptDeadline(t *testing.T) {
	p := Policy{MaxAttempts: 2, PerAttempt: 20 * time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error { return ctx.Err() }}
	slowCalls := 0
	attempts, err := p.Do(context.Background(), func(ctx context.Context) error {
		slowCalls++
		<-ctx.Done() // simulate an op pinned until its per-attempt deadline
		return ctx.Err()
	})
	if attempts != 2 || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("per-attempt Do = (%d, %v)", attempts, err)
	}
	if slowCalls != 2 {
		t.Fatalf("per-attempt deadline should allow retries, got %d calls", slowCalls)
	}
}

func TestDoDeterministicWithSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		var delays []time.Duration
		p := Policy{
			MaxAttempts: 6,
			Backoff:     Backoff{Base: 50 * time.Millisecond, Jitter: 0.5},
			Rand:        rand.New(rand.NewSource(seed)),
			Sleep:       noSleep(&delays),
		}
		p.Do(context.Background(), func(context.Context) error { return errors.New("x") }) //nolint:errcheck
		return delays
	}
	a, b := run(42), run(42)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("want 5 retries, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retry %d: %v != %v (same seed must replay)", i, a[i], b[i])
		}
	}
	if c := run(43); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Fatal("different seed produced identical jitter schedule")
	}
}

func TestCacheFallback(t *testing.T) {
	var c Cache[string, int]
	// Miss with no cache: error surfaces.
	_, stale, err := c.Fallback("k", func() (int, error) { return 0, errors.New("down") })
	if err == nil || stale {
		t.Fatalf("empty-cache fallback = stale=%v err=%v", stale, err)
	}
	// Success populates the cache.
	v, stale, err := c.Fallback("k", func() (int, error) { return 7, nil })
	if err != nil || stale || v != 7 {
		t.Fatalf("fresh fallback = (%d, %v, %v)", v, stale, err)
	}
	if got, ok := c.Get("k"); !ok || got != 7 {
		t.Fatalf("cache after success = (%d, %v)", got, ok)
	}
	// Failure now degrades to the stale value.
	v, stale, err = c.Fallback("k", func() (int, error) { return 0, errors.New("down") })
	if err != nil || !stale || v != 7 {
		t.Fatalf("stale fallback = (%d, %v, %v)", v, stale, err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestOnRetryObserves(t *testing.T) {
	var seen []string
	p := Policy{
		MaxAttempts: 3,
		Backoff:     Backoff{Base: time.Millisecond},
		Sleep:       func(context.Context, time.Duration) error { return nil },
		OnRetry: func(attempt int, err error, delay time.Duration) {
			seen = append(seen, fmt.Sprintf("%d:%v:%v", attempt, err, delay))
		},
	}
	p.Do(context.Background(), func(context.Context) error { return errors.New("e") }) //nolint:errcheck
	if len(seen) != 2 {
		t.Fatalf("OnRetry fired %d times: %v", len(seen), seen)
	}
}
