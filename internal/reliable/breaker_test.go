package reliable

import "testing"

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := &Breaker{Threshold: 3, Cooldown: 4}
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("allow %d: rejected while closed", i)
		}
		b.Failure()
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("after %d failures: state %v, want closed", i+1, got)
		}
	}
	b.Allow()
	b.Failure() // third consecutive failure
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after threshold failures: state %v, want open", got)
	}
}

func TestBreakerSuccessClearsFailureRun(t *testing.T) {
	b := &Breaker{Threshold: 2}
	b.Failure()
	b.Success()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("interleaved success should clear the run; state %v", got)
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("two consecutive failures should open; state %v", got)
	}
}

func TestBreakerCooldownAdmitsOneProbe(t *testing.T) {
	b := &Breaker{Threshold: 1, Cooldown: 3}
	b.Allow()
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state %v, want open", got)
	}
	// The next Cooldown-1 requests are rejected outright; the Cooldown-th
	// flips to half-open and is admitted as the probe.
	for i := 0; i < 2; i++ {
		if b.Allow() {
			t.Fatalf("reject %d: admitted while open", i)
		}
	}
	if !b.Allow() {
		t.Fatal("cooldown-expiring request should be admitted as the probe")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", got)
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
}

func TestBreakerProbeOutcomes(t *testing.T) {
	open := func() *Breaker {
		b := &Breaker{Threshold: 1, Cooldown: 1}
		b.Allow()
		b.Failure()
		if !b.Allow() { // cooldown of 1: first rejected request becomes the probe
			t.Fatal("probe not admitted")
		}
		return b
	}

	b := open()
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after successful probe: state %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected a request")
	}

	b = open()
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after failed probe: state %v, want open", got)
	}
}

func TestBreakerTransitionsObserved(t *testing.T) {
	var seen [][2]BreakerState
	b := &Breaker{Threshold: 1, Cooldown: 1}
	b.OnTransition = func(from, to BreakerState) { seen = append(seen, [2]BreakerState{from, to}) }
	b.Allow()
	b.Failure() // closed -> open
	b.Allow()   // open -> half-open (probe)
	b.Success() // half-open -> closed
	want := [][2]BreakerState{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	if len(seen) != len(want) {
		t.Fatalf("saw %d transitions, want %d: %v", len(seen), len(want), seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d: %v -> %v, want %v -> %v",
				i, seen[i][0], seen[i][1], want[i][0], want[i][1])
		}
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker should admit everything")
	}
	b.Success()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("nil breaker state %v, want closed", got)
	}
}

func TestBreakerZeroValueDefaults(t *testing.T) {
	b := &Breaker{}
	for i := 0; i < 3; i++ { // default threshold 3
		b.Allow()
		b.Failure()
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("zero-value breaker after 3 failures: state %v, want open", got)
	}
	rejected := 0
	for b.State() == BreakerOpen && !b.Allow() {
		rejected++
	}
	if rejected != 7 { // default cooldown 8: 7 rejects, the 8th is the probe
		t.Fatalf("rejected %d requests before the probe, want 7", rejected)
	}
}
