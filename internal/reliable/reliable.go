// Package reliable is the shared reliability-policy layer for every
// networked pipeline in the repo (GNS UDP resolution, NomadLog HTTP upload,
// vantage TCP collection). The paper's measurement infrastructure lived on
// hostile networks — intermittent cellular/WiFi uplinks and PlanetLab node
// churn — so the client paths retry with exponential backoff, bound their
// patience with context deadlines, cap wasted work with retry budgets, and
// degrade gracefully to stale cached answers when the network stays down
// (the dominant operating regime of loc/ID mapping caches).
//
// Everything here is deterministic given a seed: jitter comes from an
// explicit *rand.Rand and sleeping goes through a hook, so chaos runs
// replay byte-for-byte.
package reliable

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"locind/internal/obs"
)

// Backoff computes exponential backoff delays with optional deterministic
// jitter. The zero value is usable (no waiting between attempts).
type Backoff struct {
	// Base is the delay before the first retry. Zero means no delay.
	Base time.Duration
	// Max caps each delay. Zero means uncapped.
	Max time.Duration
	// Factor is the growth multiplier per retry; values below 1 are
	// treated as 2 (except 1 itself, which keeps delays constant).
	Factor float64
	// Jitter is the fraction of each delay that is randomized, in [0, 1].
	// A delay d with jitter j becomes uniform in [d(1-j), d].
	Jitter float64
}

// Delay returns the pause before retry number attempt (0 = first retry).
// Jitter, when configured, is drawn from rng; a nil rng disables jitter so
// the schedule stays deterministic without a seed.
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= factor
		if b.Max > 0 && d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Max > 0 && d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 && rng != nil {
		j := b.Jitter
		if j > 1 {
			j = 1
		}
		d = d * (1 - j + j*rng.Float64())
	}
	return time.Duration(d)
}

// Budget caps the total number of retries spent across many operations
// sharing it — the fleet-wide "don't melt the server" guard. The zero value
// is an empty budget; use NewBudget. A nil *Budget is unlimited.
type Budget struct {
	mu        sync.Mutex
	remaining int
}

// NewBudget returns a budget allowing n retries in total.
func NewBudget(n int) *Budget { return &Budget{remaining: n} }

// Take consumes one retry from the budget, reporting whether one was left.
// A nil budget always grants.
func (b *Budget) Take() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.remaining <= 0 {
		return false
	}
	b.remaining--
	return true
}

// Remaining reports how many retries are left. A nil budget reports -1.
func (b *Budget) Remaining() int {
	if b == nil {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.remaining
}

// ErrBudgetExhausted is wrapped into Do's error when the retry budget ran
// out before the operation succeeded.
var ErrBudgetExhausted = errors.New("reliable: retry budget exhausted")

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (p permanentError) Error() string { return p.err.Error() }
func (p permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do stops retrying and returns it immediately.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentError{err}
}

// IsPermanent reports whether err was marked with Permanent.
func IsPermanent(err error) bool {
	var p permanentError
	return errors.As(err, &p)
}

// Policy is a reusable retry policy: how many attempts, how long each may
// take, how to pause between them, and which budget they draw from.
type Policy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// Values below 1 are treated as 1.
	MaxAttempts int
	// PerAttempt bounds each attempt with a context deadline. Zero means
	// only the caller's context bounds the attempt.
	PerAttempt time.Duration
	// Backoff schedules the pauses between attempts.
	Backoff Backoff
	// Rand supplies jitter; nil disables jitter.
	Rand *rand.Rand
	// Budget, when non-nil, is consulted before every retry.
	Budget *Budget
	// Sleep replaces the real sleep between attempts (tests, virtual
	// clocks). It must honour ctx cancellation. Nil uses a timer.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when non-nil, observes every failed attempt that will be
	// retried: its 0-based index, its error, and the pause chosen.
	OnRetry func(attempt int, err error, delay time.Duration)
	// Metrics, when non-nil, counts attempts/retries/give-ups into obs
	// handles. Nil records nothing.
	Metrics *Metrics
	// TraceSpan, when non-nil, is the request span the retry loop runs
	// under: every attempt opens a child span labelled with its 0-based
	// index, so a causal tree shows each retry as a sibling under the one
	// request that caused it. Nil traces nothing.
	TraceSpan *obs.Span
}

// Do runs op under the policy until it succeeds, exhausts attempts or
// budget, hits a Permanent error, or ctx is done. It returns the number of
// attempts actually made alongside the final error.
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) (attempts int, err error) {
	max := p.MaxAttempts
	if max < 1 {
		max = 1
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	m := p.Metrics.orNop()
	var lastErr error
	for attempt := 0; attempt < max; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return attempt, fmt.Errorf("%w (after %d attempts: %w)", err, attempt, lastErr)
			}
			return attempt, err
		}
		attemptCtx, cancel := ctx, context.CancelFunc(nil)
		if p.PerAttempt > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.PerAttempt)
		}
		m.Attempts.Inc()
		span := p.TraceSpan.Child("attempt", "n", strconv.Itoa(attempt))
		err := op(attemptCtx)
		span.End()
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return attempt + 1, nil
		}
		lastErr = err
		if IsPermanent(err) {
			m.GiveUps.Inc()
			return attempt + 1, err
		}
		if attempt+1 >= max {
			break
		}
		if !p.Budget.Take() {
			m.GiveUps.Inc()
			return attempt + 1, fmt.Errorf("%w: %w", ErrBudgetExhausted, lastErr)
		}
		delay := p.Backoff.Delay(attempt, p.Rand)
		m.retry(delay)
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, delay)
		}
		if delay > 0 {
			if err := sleep(ctx, delay); err != nil {
				return attempt + 1, fmt.Errorf("%w (after %d attempts: %w)", err, attempt+1, lastErr)
			}
		}
	}
	m.GiveUps.Inc()
	return max, fmt.Errorf("reliable: all %d attempts failed: %w", max, lastErr)
}

// sleepCtx sleeps for d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Cache is a last-known-good store keyed by K: the stale-mapping fallback
// of loc/ID resolution. It is safe for concurrent use.
//
// The zero value is unbounded. Bound gives it a capacity with epoch-flush
// eviction (the core.Memo idiom): crossing the cap drops the whole map in
// one O(1) swap rather than tracking per-entry recency, which is the right
// trade for a fallback cache — a flushed entry is repopulated by the next
// successful fetch, and million-name runs cannot grow the map without
// limit.
type Cache[K comparable, V any] struct {
	mu        sync.Mutex
	m         map[K]V
	limit     int
	evictions int64
	evictCtr  *obs.Counter
}

// Bound caps the cache at limit entries (0 restores unbounded) and, when
// ctr is non-nil, counts flushed entries into it. Safe to call at any time;
// an over-full cache is flushed on its next Put.
func (c *Cache[K, V]) Bound(limit int, ctr *obs.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = limit
	c.evictCtr = ctr
}

// Evictions returns how many entries epoch flushes have dropped.
func (c *Cache[K, V]) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Put stores the freshest value for k.
func (c *Cache[K, V]) Put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = map[K]V{}
	}
	if c.limit > 0 && len(c.m) >= c.limit {
		if _, ok := c.m[k]; !ok {
			// Epoch flush: one more distinct key would cross the cap, so
			// the whole epoch is dropped and restarted with this entry.
			n := int64(len(c.m))
			c.evictions += n
			c.evictCtr.Add(n)
			c.m = make(map[K]V, c.limit)
		}
	}
	c.m[k] = v
}

// Get returns the cached value for k, if any.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[k]
	return v, ok
}

// Len returns the number of cached keys.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Fallback runs fetch; on success it caches and returns the fresh value
// (stale=false). On failure it falls back to the cached value when one
// exists, returning it with stale=true and a nil error — graceful
// degradation. With no cached value the fetch error is returned.
func (c *Cache[K, V]) Fallback(k K, fetch func() (V, error)) (v V, stale bool, err error) {
	v, err = fetch()
	if err == nil {
		c.Put(k, v)
		return v, false, nil
	}
	if cached, ok := c.Get(k); ok {
		return cached, true, nil
	}
	return v, false, err
}
