package reliable

import (
	"time"

	"locind/internal/obs"
)

// Metrics is the observability surface of the retry loop. Every field is a
// nil-safe obs handle, so the zero value (and a nil *Metrics on Policy)
// records nothing and costs nothing — the obs-off configuration.
type Metrics struct {
	// Attempts counts every attempt made, first tries included.
	Attempts *obs.Counter
	// Retries counts attempts beyond the first.
	Retries *obs.Counter
	// GiveUps counts operations that exhausted attempts or budget.
	GiveUps *obs.Counter
	// Sleeps counts backoff pauses actually taken (delay > 0).
	Sleeps *obs.Counter
	// BackoffNanos accumulates the nanoseconds of backoff scheduled.
	BackoffNanos *obs.Counter
}

// NewMetrics registers the reliable counter families on reg, labelled with
// the owning subsystem (gns, nomad, vantage, ...) so the daemons share one
// family per verb. A nil registry yields all-nil handles — recording is free.
func NewMetrics(reg *obs.Registry, subsystem string) *Metrics {
	l := []string{"subsystem", subsystem}
	return &Metrics{
		Attempts:     reg.Counter("locind_reliable_attempts_total", "attempts made, first tries included", l...),
		Retries:      reg.Counter("locind_reliable_retries_total", "attempts beyond the first", l...),
		GiveUps:      reg.Counter("locind_reliable_giveups_total", "operations that exhausted attempts or budget", l...),
		Sleeps:       reg.Counter("locind_reliable_sleeps_total", "backoff pauses taken", l...),
		BackoffNanos: reg.Counter("locind_reliable_backoff_nanos_total", "nanoseconds of backoff scheduled", l...),
	}
}

// noMetrics stands in for a nil Policy.Metrics so Do never nil-checks on
// the hot path; its nil handles make every record a no-op.
var noMetrics = &Metrics{}

func (m *Metrics) orNop() *Metrics {
	if m == nil {
		return noMetrics
	}
	return m
}

func (m *Metrics) retry(delay time.Duration) {
	m.Retries.Inc()
	m.BackoffNanos.Add(int64(delay))
	if delay > 0 {
		m.Sleeps.Inc()
	}
}
