package reliable

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"locind/internal/obs"
)

// TestFakeClockExactJitteredSchedule drives a jittered policy on the fake
// clock and asserts the complete backoff schedule, delay by delay, against
// an independently replayed RNG — no tolerance windows, no wall time.
func TestFakeClockExactJitteredSchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0.5}
	clock := NewFakeClock()
	p := Policy{
		MaxAttempts: 6,
		Backoff:     b,
		Rand:        rand.New(rand.NewSource(42)),
		Sleep:       clock.Sleep,
	}
	boom := errors.New("boom")
	attempts, err := p.Do(context.Background(), func(context.Context) error { return boom })
	if attempts != 6 || !errors.Is(err, boom) {
		t.Fatalf("Do = %d, %v", attempts, err)
	}

	replay := rand.New(rand.NewSource(42))
	var want []time.Duration
	var total time.Duration
	for i := 0; i < 5; i++ {
		d := b.Delay(i, replay)
		want = append(want, d)
		total += d
	}
	got := clock.Sleeps()
	if len(got) != len(want) {
		t.Fatalf("took %d sleeps, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sleep %d = %v, want exactly %v", i, got[i], want[i])
		}
		if got[i] < b.Base/2 || got[i] > b.Max {
			t.Fatalf("sleep %d = %v outside jitter envelope [%v, %v]", i, got[i], b.Base/2, b.Max)
		}
	}
	if clock.Now() != total {
		t.Fatalf("virtual clock = %v, want %v", clock.Now(), total)
	}
}

func TestFakeClockHonoursCancellation(t *testing.T) {
	clock := NewFakeClock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := clock.Sleep(ctx, time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sleep = %v", err)
	}
	if clock.Now() != 0 || len(clock.Sleeps()) != 0 {
		t.Fatal("cancelled sleep must not advance the clock")
	}
}

func TestRealClockSleeps(t *testing.T) {
	if err := RealClock().Sleep(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("real sleep: %v", err)
	}
}

func TestPolicyMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg, "test")
	clock := NewFakeClock()
	p := Policy{
		MaxAttempts: 4,
		Backoff:     Backoff{Base: time.Millisecond, Factor: 2},
		Sleep:       clock.Sleep,
		Metrics:     m,
	}
	calls := 0
	if _, err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if m.Attempts.Value() != 3 || m.Retries.Value() != 2 || m.GiveUps.Value() != 0 {
		t.Fatalf("attempts=%d retries=%d giveups=%d", m.Attempts.Value(), m.Retries.Value(), m.GiveUps.Value())
	}
	if m.Sleeps.Value() != 2 || m.BackoffNanos.Value() != int64(3*time.Millisecond) {
		t.Fatalf("sleeps=%d backoffNanos=%d", m.Sleeps.Value(), m.BackoffNanos.Value())
	}

	boom := errors.New("down")
	if _, err := p.Do(context.Background(), func(context.Context) error { return boom }); err == nil {
		t.Fatal("expected failure")
	}
	if m.GiveUps.Value() != 1 {
		t.Fatalf("giveups = %d after exhaustion", m.GiveUps.Value())
	}

	// A nil Metrics policy records nothing and does not panic.
	p.Metrics = nil
	p.Do(context.Background(), func(context.Context) error { return nil }) //nolint:errcheck
	if m.Attempts.Value() != 7 {
		t.Fatalf("nil-metrics run leaked into handles: %d", m.Attempts.Value())
	}
}
