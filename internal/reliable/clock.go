package reliable

import (
	"context"
	"sync"
	"time"
)

// Sleeper is the clock dependency of a retry loop: something that can pause
// for a duration while honouring cancellation. Policy.Sleep accepts the
// Sleep method of any implementation, so production code runs on real
// timers while tests run on a FakeClock and assert the exact schedule.
type Sleeper interface {
	Sleep(ctx context.Context, d time.Duration) error
}

// FakeClock is a virtual clock for tests: Sleep returns immediately,
// records the requested pause, and advances Now by it. It is safe for
// concurrent use, though schedule assertions are only meaningful when one
// goroutine owns the retry loop.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Duration
	sleeps []time.Duration
}

// NewFakeClock returns a virtual clock starting at zero.
func NewFakeClock() *FakeClock { return &FakeClock{} }

// Sleep records d, advances the clock, and returns without blocking. A
// cancelled ctx is honoured first, mirroring the real timer path.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sleeps = append(c.sleeps, d)
	c.now += d
	return nil
}

// SleepFor is the context-free form, assignable to faultnet's Env.SetSleep.
func (c *FakeClock) SleepFor(d time.Duration) {
	c.Sleep(context.Background(), d) //nolint:errcheck // background ctx never cancels
}

// Now returns the accumulated virtual time.
func (c *FakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleeps returns every pause taken so far, in order.
func (c *FakeClock) Sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

var _ Sleeper = (*FakeClock)(nil)
var _ Sleeper = realClock{}

// realClock is the production Sleeper, backed by sleepCtx.
type realClock struct{}

func (realClock) Sleep(ctx context.Context, d time.Duration) error { return sleepCtx(ctx, d) }

// RealClock returns the production Sleeper, a timer that honours ctx.
func RealClock() Sleeper { return realClock{} }
