package reliable

import (
	"fmt"
	"testing"

	"locind/internal/obs"
)

func TestCacheUnboundedByDefault(t *testing.T) {
	var c Cache[int, int]
	for i := 0; i < 1000; i++ {
		c.Put(i, i)
	}
	if c.Len() != 1000 {
		t.Fatalf("unbounded cache holds %d entries, want 1000", c.Len())
	}
	if c.Evictions() != 0 {
		t.Fatalf("unbounded cache evicted %d", c.Evictions())
	}
}

func TestCacheBoundEpochFlush(t *testing.T) {
	var c Cache[string, int]
	c.Bound(3, nil)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	if c.Len() != 3 || c.Evictions() != 0 {
		t.Fatalf("at capacity: len=%d evictions=%d", c.Len(), c.Evictions())
	}
	// Re-putting an existing key at capacity must not flush.
	c.Put("b", 20)
	if c.Len() != 3 || c.Evictions() != 0 {
		t.Fatalf("overwrite at capacity flushed: len=%d evictions=%d", c.Len(), c.Evictions())
	}
	if v, _ := c.Get("b"); v != 20 {
		t.Fatalf("overwrite lost: got %d", v)
	}
	// A fourth distinct key crosses the cap: the whole epoch flushes and the
	// new entry starts the next one.
	c.Put("d", 4)
	if c.Len() != 1 {
		t.Fatalf("after flush: len=%d, want 1", c.Len())
	}
	if c.Evictions() != 3 {
		t.Fatalf("after flush: evictions=%d, want 3", c.Evictions())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("flushed entry still present")
	}
	if v, ok := c.Get("d"); !ok || v != 4 {
		t.Fatalf("new-epoch entry missing: %d %v", v, ok)
	}
}

func TestCacheBoundNeverExceedsLimit(t *testing.T) {
	var c Cache[int, int]
	c.Bound(16, nil)
	for i := 0; i < 1000; i++ {
		c.Put(i, i)
		if c.Len() > 16 {
			t.Fatalf("cache grew to %d entries past limit 16", c.Len())
		}
	}
	// 1000 distinct keys over a 16-slot cache: every full epoch flushed.
	if c.Evictions() < 900 {
		t.Fatalf("evictions=%d, expected most of 1000 inserts flushed", c.Evictions())
	}
}

func TestCacheEvictionCounter(t *testing.T) {
	reg := obs.NewRegistry()
	ctr := reg.Counter("test_evictions_total", "test")
	var c Cache[string, int]
	c.Bound(2, ctr)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3) // flush of 2
	if got := ctr.Value(); got != 2 {
		t.Fatalf("counter=%d, want 2", got)
	}
	if c.Evictions() != 2 {
		t.Fatalf("evictions=%d, want 2", c.Evictions())
	}
}

func TestCacheFallbackStillWorksBounded(t *testing.T) {
	var c Cache[string, string]
	c.Bound(2, nil)
	fail := fmt.Errorf("down")
	if _, _, err := c.Fallback("k", func() (string, error) { return "", fail }); err == nil {
		t.Fatal("cold-miss fallback should surface the fetch error")
	}
	if v, stale, err := c.Fallback("k", func() (string, error) { return "fresh", nil }); err != nil || stale || v != "fresh" {
		t.Fatalf("fresh fetch: %q stale=%v err=%v", v, stale, err)
	}
	if v, stale, err := c.Fallback("k", func() (string, error) { return "", fail }); err != nil || !stale || v != "fresh" {
		t.Fatalf("degraded fetch: %q stale=%v err=%v", v, stale, err)
	}
}
