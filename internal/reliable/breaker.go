package reliable

import "sync"

// BreakerState is the circuit state of a Breaker.
type BreakerState int32

const (
	// BreakerClosed admits every request (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects requests without touching the network.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe request; its outcome decides
	// between closing the circuit and re-opening it.
	BreakerHalfOpen
)

// String renders the state for logs and metrics labels.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a half-open circuit breaker with deterministic, clock-free
// cooldown. Health probing in this repository must replay bit-for-bit under
// a fixed seed, so instead of a wall-clock reset timeout the breaker counts
// rejected requests: after Threshold consecutive failures it opens and
// rejects the next Cooldown requests outright, then admits a single
// half-open probe. The probe's success closes the circuit; its failure
// re-opens it for another Cooldown rejections. Demand-driven cooldown also
// has the right degraded-mode shape: an idle replica is never probed, and a
// busy client probes a dead replica at a rate proportional to its own
// traffic, not to elapsed time.
//
// The zero value is usable (Threshold 3, Cooldown 8). A nil *Breaker admits
// everything and records nothing, so unguarded call sites cost one check.
type Breaker struct {
	// Threshold is how many consecutive failures open the circuit.
	// Values below 1 default to 3.
	Threshold int
	// Cooldown is how many requests are rejected while open before one
	// half-open probe is admitted. Values below 1 default to 8.
	Cooldown int
	// OnTransition, when non-nil, observes every state change. It is called
	// with the breaker's lock held, so it must not call back into the
	// breaker; metric bumps and log lines are the intended use.
	OnTransition func(from, to BreakerState)

	mu       sync.Mutex
	state    BreakerState
	failures int // consecutive failures while closed
	rejected int // requests rejected while open
	probing  bool
}

func (b *Breaker) threshold() int {
	if b.Threshold < 1 {
		return 3
	}
	return b.Threshold
}

func (b *Breaker) cooldown() int {
	if b.Cooldown < 1 {
		return 8
	}
	return b.Cooldown
}

func (b *Breaker) transition(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.OnTransition != nil {
		b.OnTransition(from, to)
	}
}

// Allow reports whether the next request may proceed. In the open state it
// counts the rejection; once Cooldown rejections have accumulated the
// breaker turns half-open and admits the caller as the probe. Callers that
// proceed must report the outcome with Success or Failure. Nil-safe: a nil
// breaker admits everything.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		// One probe at a time: concurrent requests during a probe are
		// rejected until the probe reports.
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default: // BreakerOpen
		b.rejected++
		if b.rejected >= b.cooldown() {
			b.rejected = 0
			b.transition(BreakerHalfOpen)
			b.probing = true
			return true
		}
		return false
	}
}

// Success reports a request that completed; it closes the circuit from any
// state and clears the failure run. Nil-safe.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.rejected = 0
	b.probing = false
	b.transition(BreakerClosed)
}

// Failure reports a request that failed. A failed half-open probe re-opens
// the circuit immediately; in the closed state the Threshold-th consecutive
// failure opens it. Nil-safe.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		b.rejected = 0
		b.transition(BreakerOpen)
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold() {
			b.failures = 0
			b.rejected = 0
			b.transition(BreakerOpen)
		}
	}
}

// Reset force-closes the circuit and clears all counters. It is the
// operator escape hatch: after a known repair (a healed partition, a
// restarted replica) callers need not wait out the demand-driven cooldown —
// the next request probes the replica directly. Nil-safe.
func (b *Breaker) Reset() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.rejected = 0
	b.probing = false
	b.transition(BreakerClosed)
}

// State returns the current circuit state. Nil-safe (reports closed).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
