// Package analytic implements the expository model of §5: the path-stretch
// versus aggregate-update-cost trade-off of indirection routing and
// name-based routing on toy topologies, three ways — the closed forms
// printed in Table 1, exact finite-n computation by enumeration over any
// topology, and Monte Carlo simulation of the random-mobility Markov
// process. The three agree asymptotically; where the paper's printed star
// formula differs from the enumeration (it counts only the hub's update),
// EXPERIMENTS.md records the difference.
package analytic

import (
	"math"
	"math/rand"

	"locind/internal/topology"
)

// Result is one (stretch, aggregate update cost) operating point. Stretch
// is additive hop-count distance (the paper's §5.1.1 definition); update
// cost is the expected fraction of routers updated per mobility event.
type Result struct {
	Stretch    float64
	UpdateCost float64
}

// Table1Row reproduces one row of Table 1: the paper's printed asymptotic
// expressions for both architectures at a given n.
type Table1Row struct {
	Topology    string
	N           int // routers (the star row uses n+1 routers, per the paper)
	Indirection Result
	NameBased   Result
}

// PaperTable1 evaluates the printed Table 1 formulas at size n.
//
//	Chain:        indirection (n/3, 1/n),        name-based (0, 1/3)
//	Clique:       indirection (1, 1/n),          name-based (0, 1)
//	Binary tree:  indirection (2·log2 n, 1/n),   name-based (0, 2·log2 n/(n-1))
//	Star:         indirection (2, 1/n),          name-based (0, 1/(n+1))
func PaperTable1(n int) []Table1Row {
	log2n := math.Log2(float64(n))
	return []Table1Row{
		{
			Topology:    "chain",
			N:           n,
			Indirection: Result{Stretch: float64(n) / 3, UpdateCost: 1 / float64(n)},
			NameBased:   Result{Stretch: 0, UpdateCost: 1.0 / 3},
		},
		{
			Topology:    "clique",
			N:           n,
			Indirection: Result{Stretch: 1, UpdateCost: 1 / float64(n)},
			NameBased:   Result{Stretch: 0, UpdateCost: 1},
		},
		{
			Topology:    "binary-tree",
			N:           n,
			Indirection: Result{Stretch: 2 * log2n, UpdateCost: 1 / float64(n)},
			NameBased:   Result{Stretch: 0, UpdateCost: 2 * log2n / float64(n-1)},
		},
		{
			Topology:    "star",
			N:           n,
			Indirection: Result{Stretch: 2, UpdateCost: 1 / float64(n)},
			NameBased:   Result{Stretch: 0, UpdateCost: 1 / float64(n+1)},
		},
	}
}

// ports computes, for every location ℓ and router k, the output port of k
// toward an endpoint at ℓ: the BFS next hop (lowest-ID tie-break via
// adjacency order), or -1 for the router's own local port when ℓ == k.
// ports[ℓ][k] is the port at router k.
func ports(g *topology.Graph) [][]int {
	n := g.N()
	out := make([][]int, n)
	for l := 0; l < n; l++ {
		_, parent := g.BFS(l)
		row := make([]int, n)
		for k := 0; k < n; k++ {
			switch {
			case k == l:
				row[k] = -1 // local delivery port
			default:
				row[k] = parent[k] // next hop from k toward l
			}
		}
		out[l] = row
	}
	return out
}

// ExactIndirection computes the exact finite-n indirection operating point
// on any connected topology under the §5 model: home agent H and location
// L both uniform i.i.d. over routers, stretch = E[dist(H, L)], update cost
// = 1/n (only the home agent updates).
func ExactIndirection(g *topology.Graph) Result {
	n := g.N()
	if n == 0 {
		return Result{}
	}
	ap := g.AllPairsHops()
	sum := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum += float64(ap[i][j])
		}
	}
	return Result{
		Stretch:    sum / float64(n*n),
		UpdateCost: 1 / float64(n),
	}
}

// ExactNameBased computes the exact finite-n name-based operating point:
// stretch 0 (every router always has shortest-path state), and the
// aggregate update cost — the expected fraction of routers whose output
// port toward the endpoint changes when it moves from i to j, with (i, j)
// uniform i.i.d. (the §5.1 Markov process allows i == j, a non-move):
//
//	E[update] = (1/n) Σ_k P(port_k(i) ≠ port_k(j))
//	          = (1/n) Σ_k (1 − Σ_p (c_{k,p}/n)²)
//
// where c_{k,p} counts locations mapping to port p at router k. This
// reproduces the chain derivation of §5.1.2 exactly (each router has left,
// right, and local ports).
func ExactNameBased(g *topology.Graph) Result {
	n := g.N()
	if n == 0 {
		return Result{}
	}
	pm := ports(g)
	total := 0.0
	counts := map[int]int{}
	for k := 0; k < n; k++ {
		for p := range counts {
			delete(counts, p)
		}
		for l := 0; l < n; l++ {
			counts[pm[l][k]]++
		}
		same := 0.0
		for _, c := range counts {
			same += float64(c) * float64(c)
		}
		total += 1 - same/float64(n*n)
	}
	return Result{Stretch: 0, UpdateCost: total / float64(n)}
}

// ExactNameBasedTransitOnly computes the update cost under the alternative
// convention that only transit-port changes count — a router whose only
// change is gaining or losing the endpoint on its local port is not
// "updated". A router k then updates on a move i→j iff i ≠ k, j ≠ k, and
// port_k(i) ≠ port_k(j):
//
//	P(update at k) = ((n-1)/n)² − Σ_{p transit} (c_{k,p}/n)².
//
// On the star this matches the paper's printed 1/(n+1) asymptotically: only
// the hub ever changes a transit port, while ExactNameBased (which counts
// local-port changes, like the chain derivation in §5.1.2) gives ≈ 3/(n+1).
func ExactNameBasedTransitOnly(g *topology.Graph) Result {
	n := g.N()
	if n == 0 {
		return Result{}
	}
	pm := ports(g)
	total := 0.0
	counts := map[int]int{}
	for k := 0; k < n; k++ {
		for p := range counts {
			delete(counts, p)
		}
		for l := 0; l < n; l++ {
			counts[pm[l][k]]++
		}
		same := 0.0
		for p, c := range counts {
			if p == -1 {
				continue // the local port is excluded from transit counts
			}
			same += float64(c) * float64(c)
		}
		notK := float64(n-1) / float64(n)
		total += notK*notK - same/float64(n*n)
	}
	return Result{Stretch: 0, UpdateCost: total / float64(n)}
}

// Simulate runs the §5.1 Markov process on g: an endpoint hops to a
// uniformly random router each slot (self-moves allowed, as in the paper's
// transition matrix); a home agent is redrawn uniformly per trial. It
// returns the measured indirection stretch and name-based aggregate update
// cost with their standard errors folded into the sample means.
func Simulate(g *topology.Graph, trials, stepsPerTrial int, rng *rand.Rand) (indirection, nameBased Result) {
	n := g.N()
	if n == 0 || trials <= 0 || stepsPerTrial <= 0 {
		return Result{}, Result{}
	}
	pm := ports(g)
	ap := g.AllPairsHops()

	var stretchSum float64
	var updateSum float64
	samples := 0
	for tr := 0; tr < trials; tr++ {
		home := rng.Intn(n)
		loc := rng.Intn(n)
		for s := 0; s < stepsPerTrial; s++ {
			next := rng.Intn(n)
			// Indirection stretch: distance home -> current location.
			stretchSum += float64(ap[home][next])
			// Name-based: fraction of routers whose port changed.
			if next != loc {
				changed := 0
				for k := 0; k < n; k++ {
					if pm[loc][k] != pm[next][k] {
						changed++
					}
				}
				updateSum += float64(changed) / float64(n)
			}
			loc = next
			samples++
		}
	}
	indirection = Result{
		Stretch:    stretchSum / float64(samples),
		UpdateCost: 1 / float64(n),
	}
	nameBased = Result{
		Stretch:    0,
		UpdateCost: updateSum / float64(samples),
	}
	return indirection, nameBased
}
