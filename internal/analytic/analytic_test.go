package analytic

import (
	"math"
	"math/rand"
	"testing"

	"locind/internal/topology"
)

func approx(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestPaperTable1Values(t *testing.T) {
	rows := PaperTable1(255)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Topology] = r
		// Indirection always costs exactly one update (1/n aggregate);
		// name-based routing always has zero stretch.
		approx(t, r.Topology+" ind update", r.Indirection.UpdateCost, 1.0/255, 1e-12)
		if r.NameBased.Stretch != 0 {
			t.Errorf("%s name-based stretch nonzero", r.Topology)
		}
	}
	approx(t, "chain ind stretch", byName["chain"].Indirection.Stretch, 85, 1e-9)
	approx(t, "chain nb update", byName["chain"].NameBased.UpdateCost, 1.0/3, 1e-12)
	approx(t, "clique ind stretch", byName["clique"].Indirection.Stretch, 1, 1e-12)
	approx(t, "clique nb update", byName["clique"].NameBased.UpdateCost, 1, 1e-12)
	approx(t, "tree ind stretch", byName["binary-tree"].Indirection.Stretch, 2*math.Log2(255), 1e-9)
	approx(t, "star nb update", byName["star"].NameBased.UpdateCost, 1.0/256, 1e-12)
}

// TestExactChainMatchesDerivation pins the exact chain update cost to the
// closed form (n²+3n−4)/(3n²) derived from the §5.1.2 sum, and the exact
// stretch to (n²−1)/(3n).
func TestExactChainMatchesDerivation(t *testing.T) {
	for _, n := range []int{2, 5, 16, 101} {
		g := topology.Chain(n)
		ind := ExactIndirection(g)
		nb := ExactNameBased(g)
		nf := float64(n)
		approx(t, "chain exact stretch", ind.Stretch, (nf*nf-1)/(3*nf), 1e-9)
		approx(t, "chain exact update", nb.UpdateCost, (nf*nf+3*nf-4)/(3*nf*nf), 1e-9)
	}
	// Asymptotics: both converge to the paper's n/3 and 1/3.
	g := topology.Chain(1001)
	approx(t, "chain asymptotic stretch ratio", ExactIndirection(g).Stretch/(1001.0/3), 1, 0.01)
	approx(t, "chain asymptotic update", ExactNameBased(g).UpdateCost, 1.0/3, 0.01)
}

func TestExactClique(t *testing.T) {
	n := 64
	g := topology.Clique(n)
	ind := ExactIndirection(g)
	nb := ExactNameBased(g)
	nf := float64(n)
	// E[dist] = P(H≠L)·1 = (n−1)/n → 1.
	approx(t, "clique stretch", ind.Stretch, (nf-1)/nf, 1e-9)
	// Every move i≠j updates all routers: E = P(i≠j) = (n−1)/n → 1.
	approx(t, "clique update", nb.UpdateCost, (nf-1)/nf, 1e-9)
}

func TestExactStarBothConventions(t *testing.T) {
	n := 128 // leaves; n+1 routers
	g := topology.Star(n)
	ind := ExactIndirection(g)
	// Stretch → 2 for large n (two random leaves are 2 apart).
	if ind.Stretch < 1.8 || ind.Stretch > 2 {
		t.Errorf("star stretch = %v, want ≈2", ind.Stretch)
	}
	full := ExactNameBased(g)
	transit := ExactNameBasedTransitOnly(g)
	nf := float64(n)
	// Counting local ports (the chain-derivation convention): hub updates
	// on every real move, both involved leaves update too ⇒ ≈ 3/(n+1).
	approx(t, "star full-convention update", full.UpdateCost*(nf+1), 3, 0.2)
	// Transit-only: only the hub ⇒ the paper's printed 1/(n+1).
	approx(t, "star transit-only update", transit.UpdateCost*(nf+1), 1, 0.1)
}

func TestExactBinaryTree(t *testing.T) {
	n := 255
	g := topology.BinaryTree(n)
	ind := ExactIndirection(g)
	nb := ExactNameBased(g)
	// The paper's 2·log2 n is the asymptotic leaf-to-leaf distance; the
	// exact all-pairs mean sits somewhat below it.
	upper := 2 * math.Log2(float64(n))
	if ind.Stretch > upper || ind.Stretch < upper/2 {
		t.Errorf("tree stretch = %v, want within [%v, %v]", ind.Stretch, upper/2, upper)
	}
	// Update cost ~ 2·log2(n)/(n-1): the expected number of routers on the
	// path between two random nodes, over n.
	want := 2 * math.Log2(float64(n)) / float64(n-1)
	if nb.UpdateCost < want/2 || nb.UpdateCost > want*2 {
		t.Errorf("tree update = %v, want ≈%v", nb.UpdateCost, want)
	}
}

func TestSimulateMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct {
		name string
		g    *topology.Graph
	}{
		{"chain", topology.Chain(31)},
		{"clique", topology.Clique(20)},
		{"tree", topology.BinaryTree(31)},
		{"star", topology.Star(30)},
		{"ring", topology.Ring(24)},
	} {
		exactInd := ExactIndirection(tc.g)
		exactNB := ExactNameBased(tc.g)
		simInd, simNB := Simulate(tc.g, 60, 400, rng)
		relTol := 0.08
		if math.Abs(simInd.Stretch-exactInd.Stretch) > relTol*math.Max(exactInd.Stretch, 0.5) {
			t.Errorf("%s: sim stretch %v vs exact %v", tc.name, simInd.Stretch, exactInd.Stretch)
		}
		if math.Abs(simNB.UpdateCost-exactNB.UpdateCost) > relTol*math.Max(exactNB.UpdateCost, 0.02) {
			t.Errorf("%s: sim update %v vs exact %v", tc.name, simNB.UpdateCost, exactNB.UpdateCost)
		}
		if simInd.UpdateCost != 1/float64(tc.g.N()) {
			t.Errorf("%s: indirection update cost must be 1/n", tc.name)
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	empty := topology.New(0)
	if r := ExactIndirection(empty); r != (Result{}) {
		t.Error("empty graph indirection should be zero")
	}
	if r := ExactNameBased(empty); r != (Result{}) {
		t.Error("empty graph name-based should be zero")
	}
	if r := ExactNameBasedTransitOnly(empty); r != (Result{}) {
		t.Error("empty graph transit-only should be zero")
	}
	i, n := Simulate(empty, 10, 10, rand.New(rand.NewSource(1)))
	if i != (Result{}) || n != (Result{}) {
		t.Error("empty graph simulation should be zero")
	}
	i, n = Simulate(topology.Chain(3), 0, 10, rand.New(rand.NewSource(1)))
	if i != (Result{}) || n != (Result{}) {
		t.Error("zero trials should be zero")
	}
}

// The fundamental §5 trade-off, verified on every toy topology: indirection
// pays stretch but O(1/n) update cost; name-based routing pays zero stretch
// but strictly more update cost (for n beyond the degenerate sizes).
func TestTradeoffHolds(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *topology.Graph
	}{
		{"chain", topology.Chain(64)},
		{"clique", topology.Clique(64)},
		{"tree", topology.BinaryTree(63)},
		{"star", topology.Star(63)},
	} {
		ind := ExactIndirection(tc.g)
		nb := ExactNameBased(tc.g)
		if !(ind.Stretch > 0 && nb.Stretch == 0) {
			t.Errorf("%s: stretch ordering violated", tc.name)
		}
		if !(nb.UpdateCost > ind.UpdateCost) {
			t.Errorf("%s: name-based update %v not above indirection %v",
				tc.name, nb.UpdateCost, ind.UpdateCost)
		}
	}
}

func BenchmarkExactNameBased(b *testing.B) {
	g := topology.Chain(255)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExactNameBased(g)
	}
}
