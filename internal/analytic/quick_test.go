package analytic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"locind/internal/topology"
)

// randConnected draws a random connected graph: a PA backbone guarantees
// connectivity, plus noise edges.
func randConnected(rng *rand.Rand) *topology.Graph {
	n := 8 + rng.Intn(40)
	g := topology.PreferentialAttachment(n, 1+rng.Intn(2), rng)
	for extra := rng.Intn(n); extra > 0; extra-- {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b && !g.HasEdge(a, b) {
			g.AddEdge(a, b) //nolint:errcheck
		}
	}
	return g
}

// Property: on arbitrary connected topologies, the Monte Carlo simulation
// converges to the exact enumeration for both architectures, and the
// general laws of §5 hold: 0 <= name-based update cost <= 1, transit-only
// cost <= all-ports cost, and indirection stretch is bounded by the
// diameter.
func TestExactVsSimulateOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randConnected(rng)

		ind := ExactIndirection(g)
		nb := ExactNameBased(g)
		transit := ExactNameBasedTransitOnly(g)
		if nb.UpdateCost < 0 || nb.UpdateCost > 1 {
			return false
		}
		if transit.UpdateCost > nb.UpdateCost+1e-12 {
			return false
		}
		if ind.Stretch > float64(g.Diameter()) {
			return false
		}
		simInd, simNB := Simulate(g, 40, 300, rng)
		if math.Abs(simInd.Stretch-ind.Stretch) > 0.1*math.Max(ind.Stretch, 0.5) {
			return false
		}
		if math.Abs(simNB.UpdateCost-nb.UpdateCost) > 0.1*math.Max(nb.UpdateCost, 0.05) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
