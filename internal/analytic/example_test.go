package analytic_test

import (
	"fmt"

	"locind/internal/analytic"
	"locind/internal/topology"
)

// The §5.1 chain result: indirection pays ~n/3 stretch for O(1/n) update
// cost; name-based routing pays ~1/3 aggregate update cost for zero
// stretch.
func ExampleExactNameBased() {
	g := topology.Chain(255)
	ind := analytic.ExactIndirection(g)
	nb := analytic.ExactNameBased(g)
	fmt.Printf("indirection: stretch %.1f, update %.4f\n", ind.Stretch, ind.UpdateCost)
	fmt.Printf("name-based:  stretch %.1f, update %.4f\n", nb.Stretch, nb.UpdateCost)
	// Output:
	// indirection: stretch 85.0, update 0.0039
	// name-based:  stretch 0.0, update 0.3372
}
