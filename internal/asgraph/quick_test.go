package asgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: on any synthesized internetwork, every selected route is
// valley-free, loop-free, consistent in length with its path, and
// export-legal hop by hop (each AS on the path would actually have
// exported the suffix route to its predecessor).
func TestRoutesToInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultSynthConfig()
		cfg.Tier2 = 20 + rng.Intn(30)
		cfg.Stubs = 80 + rng.Intn(120)
		g, err := Synthesize(cfg, rng)
		if err != nil {
			return false
		}
		// A handful of random destinations per graph.
		for trial := 0; trial < 4; trial++ {
			d := rng.Intn(g.N())
			rt := g.RoutesTo(d)
			for probe := 0; probe < 40; probe++ {
				x := rng.Intn(g.N())
				if !rt.Has(x) {
					return false // synthesis guarantees reachability
				}
				path := rt.Path(x)
				if len(path) != rt.PathLen(x)+1 {
					return false
				}
				if !g.ValleyFree(path) {
					return false
				}
				// Loop-free.
				seen := map[int]bool{}
				for _, as := range path {
					if seen[as] {
						return false
					}
					seen[as] = true
				}
				// Suffix consistency: selected routes compose — the path
				// from any AS along x's path is exactly the remaining
				// suffix (each hop forwards onto its own selected route).
				for i, as := range path {
					suffix := rt.Path(as)
					if len(suffix) != len(path)-i {
						return false
					}
					for j := range suffix {
						if suffix[j] != path[i+j] {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: ShortestUndirectedHops is a metric lower bound on every policy
// path length, and is symmetric.
func TestPhysicalLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfg := DefaultSynthConfig()
	cfg.Tier2 = 40
	cfg.Stubs = 200
	g, err := Synthesize(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		d := rng.Intn(g.N())
		rt := g.RoutesTo(d)
		phys := g.ShortestUndirectedHops(d)
		for x := 0; x < g.N(); x += 7 {
			if phys[x] < 0 {
				t.Fatalf("AS%d physically unreachable", x)
			}
			if rt.PathLen(x) < phys[x] {
				t.Fatalf("policy path (%d) beats physical shortest (%d) at AS%d",
					rt.PathLen(x), phys[x], x)
			}
		}
		// Symmetry spot-check.
		src := rng.Intn(g.N())
		back := g.ShortestUndirectedHops(src)
		if phys[src] != back[d] {
			t.Fatalf("physical distance asymmetric: %d vs %d", phys[src], back[d])
		}
	}
}
