package asgraph

import (
	"math/rand"
	"testing"
)

// tinyInternet builds the canonical 7-AS example:
//
//	  0 ---- 1        (tier-1 peers)
//	 / \    / \
//	2   3  4   5      (customers of the tier-1s; 3--4 peer)
//	|            \
//	6             (6 is 2's customer)
//
// Relationships: 2,3 buy from 0; 4,5 buy from 1; 6 buys from 2; 3--4 peer.
func tinyInternet(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(7)
	mustC2P := func(c, p int) {
		if err := g.AddC2P(c, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddPeer(0, 1); err != nil {
		t.Fatal(err)
	}
	mustC2P(2, 0)
	mustC2P(3, 0)
	mustC2P(4, 1)
	mustC2P(5, 1)
	mustC2P(6, 2)
	if err := g.AddPeer(3, 4); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRelOf(t *testing.T) {
	g := tinyInternet(t)
	if r, ok := g.RelOf(0, 2); !ok || r != RelCustomer {
		t.Errorf("RelOf(0,2) = %v,%v", r, ok)
	}
	if r, ok := g.RelOf(2, 0); !ok || r != RelProvider {
		t.Errorf("RelOf(2,0) = %v,%v", r, ok)
	}
	if r, ok := g.RelOf(3, 4); !ok || r != RelPeer {
		t.Errorf("RelOf(3,4) = %v,%v", r, ok)
	}
	if _, ok := g.RelOf(2, 5); ok {
		t.Error("RelOf(2,5) should not exist")
	}
	if g.Degree(0) != 3 {
		t.Errorf("Degree(0) = %d", g.Degree(0))
	}
}

func TestAddErrors(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddC2P(0, 0); err == nil {
		t.Error("self c2p should fail")
	}
	if err := g.AddC2P(0, 5); err == nil {
		t.Error("out of range should fail")
	}
	if err := g.AddC2P(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddC2P(0, 1); err == nil {
		t.Error("duplicate c2p should fail")
	}
	if err := g.AddPeer(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPeer(2, 1); err == nil {
		t.Error("duplicate peering should fail")
	}
}

func TestRoutesToClasses(t *testing.T) {
	g := tinyInternet(t)
	rt := g.RoutesTo(6)

	// The destination itself.
	if rt.Class(6) != ClassSelf || rt.PathLen(6) != 0 || rt.NextHop(6) != 6 {
		t.Fatalf("dest route wrong: %v %d %d", rt.Class(6), rt.PathLen(6), rt.NextHop(6))
	}
	// 2 hears 6 as a customer route.
	if rt.Class(2) != ClassCustomer || rt.PathLen(2) != 1 {
		t.Fatalf("AS2: %v len %d", rt.Class(2), rt.PathLen(2))
	}
	// 0 hears it up the chain: customer route of length 2.
	if rt.Class(0) != ClassCustomer || rt.PathLen(0) != 2 {
		t.Fatalf("AS0: %v len %d", rt.Class(0), rt.PathLen(0))
	}
	// 1 hears from peer 0 (customer route at 0 is exported to peers).
	if rt.Class(1) != ClassPeer || rt.PathLen(1) != 3 {
		t.Fatalf("AS1: %v len %d", rt.Class(1), rt.PathLen(1))
	}
	// 3 hears only from its provider 0 (peer 4 has a provider route, not
	// exportable to a peer).
	if rt.Class(3) != ClassProvider || rt.PathLen(3) != 3 {
		t.Fatalf("AS3: %v len %d", rt.Class(3), rt.PathLen(3))
	}
	// 5 must go up to 1, across the peering to 0, then down: provider route.
	if rt.Class(5) != ClassProvider || rt.PathLen(5) != 4 {
		t.Fatalf("AS5: %v len %d", rt.Class(5), rt.PathLen(5))
	}
	// All paths must be valley-free.
	for x := 0; x < g.N(); x++ {
		p := rt.Path(x)
		if p == nil {
			t.Fatalf("AS%d unreachable", x)
		}
		if !g.ValleyFree(p) {
			t.Fatalf("AS%d path %v not valley-free", x, p)
		}
		if len(p) != rt.PathLen(x)+1 {
			t.Fatalf("AS%d path %v length mismatch with %d", x, p, rt.PathLen(x))
		}
		if p[0] != x || p[len(p)-1] != 6 {
			t.Fatalf("AS%d path endpoints wrong: %v", x, p)
		}
	}
}

// Peer routes must not be re-exported to peers: 5's route to 6 cannot be
// 5-4-3-0-2-6 (4 would have to export a peer-learned route to its peer...
// actually 4's route via peer 3 does not exist either). Verify by making a
// topology where the only non-valley path is tempting.
func TestNoValleyPaths(t *testing.T) {
	// 0 and 1 are providers of 2; 0--1 do NOT peer. A packet from 1's other
	// customer 3 to 0's customer 4 must not traverse 2 (that is a valley).
	g := NewGraph(5)
	g.AddC2P(2, 0) //nolint:errcheck
	g.AddC2P(2, 1) //nolint:errcheck
	g.AddC2P(3, 1) //nolint:errcheck
	g.AddC2P(4, 0) //nolint:errcheck
	rt := g.RoutesTo(4)
	if rt.Has(3) {
		t.Fatalf("AS3 should have no route to 4 (only a valley exists), got %v", rt.Path(3))
	}
	if !rt.Has(2) {
		t.Fatal("AS2 should reach 4 via provider 0")
	}
}

func TestRoutesToUnreachable(t *testing.T) {
	g := NewGraph(3)
	g.AddC2P(1, 0) //nolint:errcheck
	rt := g.RoutesTo(1)
	if rt.Has(2) {
		t.Fatal("isolated AS should be unreachable")
	}
	if rt.PathLen(2) != -1 || rt.NextHop(2) != -1 || rt.Path(2) != nil {
		t.Fatal("unreachable accessors wrong")
	}
}

func TestRoutesToPrefersCustomerOverShorterPeer(t *testing.T) {
	// 0: provider of 1; 1 provider of 2 (dest); 0 peers with 2 directly.
	// Dest 2: AS0 has a customer route 0-1-2 (len 2) and a peer route 0-2
	// (len 1). Policy must pick the customer route.
	g := NewGraph(3)
	g.AddC2P(1, 0)  //nolint:errcheck
	g.AddC2P(2, 1)  //nolint:errcheck
	g.AddPeer(0, 2) //nolint:errcheck
	rt := g.RoutesTo(2)
	if rt.Class(0) != ClassCustomer || rt.PathLen(0) != 2 {
		t.Fatalf("AS0 selected %v len %d; want customer len 2", rt.Class(0), rt.PathLen(0))
	}
}

func TestRoutesToTieBreakLowestNextHop(t *testing.T) {
	// Dest 3 reachable from 0 via two equal-length customer routes through
	// 1 and 2; the tie must break to next hop 1.
	g := NewGraph(4)
	g.AddC2P(1, 0) //nolint:errcheck
	g.AddC2P(2, 0) //nolint:errcheck
	g.AddC2P(3, 1) //nolint:errcheck
	g.AddC2P(3, 2) //nolint:errcheck
	rt := g.RoutesTo(3)
	if rt.NextHop(0) != 1 {
		t.Fatalf("tie-break chose %d, want 1", rt.NextHop(0))
	}
}

func TestShortestUndirectedHops(t *testing.T) {
	g := tinyInternet(t)
	d := g.ShortestUndirectedHops(6)
	if d[6] != 0 || d[2] != 1 || d[0] != 2 || d[3] != 3 || d[4] != 4 {
		t.Fatalf("hops = %v", d)
	}
	// Physical shortest ignores policy: 5 is at distance 4 via 1-0 or 1-4... via 1: 6-2-0-1-5.
	if d[5] != 4 {
		t.Fatalf("d[5] = %d", d[5])
	}
	bad := g.ShortestUndirectedHops(-1)
	for _, x := range bad {
		if x != -1 {
			t.Fatal("bad source should mark all unreachable")
		}
	}
}

func TestValleyFree(t *testing.T) {
	g := tinyInternet(t)
	cases := []struct {
		path []int
		want bool
	}{
		{[]int{6, 2, 0, 1, 5}, true}, // up, up, peer, down
		{[]int{5, 1, 0, 2, 6}, true}, // reverse
		{[]int{3, 0, 2, 6}, true},    // up, down, down
		{[]int{2, 0, 1, 4}, true},    // up, peer, down
		{[]int{0, 2, 0}, false},      // down then up: valley (repeated AS aside)
		{[]int{3, 4, 1, 5}, false},   // peer then up: invalid
		{[]int{2, 5}, false},         // not adjacent
		{[]int{6}, true},             // trivial
	}
	for _, c := range cases {
		if got := g.ValleyFree(c.path); got != c.want {
			t.Errorf("ValleyFree(%v) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestSynthesize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultSynthConfig()
	cfg.Tier2 = 60
	cfg.Stubs = 400
	g, err := Synthesize(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != cfg.Tier1+cfg.Tier2+cfg.Stubs {
		t.Fatalf("N = %d", g.N())
	}
	// Tier-1 clique.
	for i := 0; i < cfg.Tier1; i++ {
		for j := 0; j < i; j++ {
			if r, ok := g.RelOf(i, j); !ok || r != RelPeer {
				t.Fatalf("tier-1 %d,%d not peered", i, j)
			}
		}
		if g.Tier(i) != 1 {
			t.Fatalf("tier of %d = %d", i, g.Tier(i))
		}
	}
	// Every stub has a provider and universal reachability holds from a
	// sample of destinations.
	stubStart := cfg.Tier1 + cfg.Tier2
	for i := stubStart; i < g.N(); i++ {
		if len(g.Providers(i)) == 0 {
			t.Fatalf("stub %d has no provider", i)
		}
	}
	for _, d := range []int{0, stubStart, stubStart + 123, g.N() - 1} {
		rt := g.RoutesTo(d)
		for x := 0; x < g.N(); x++ {
			if !rt.Has(x) {
				t.Fatalf("AS%d cannot reach %d", x, d)
			}
			if !g.ValleyFree(rt.Path(x)) {
				t.Fatalf("path %v to %d not valley-free", rt.Path(x), d)
			}
		}
	}
}

func TestSynthesizeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Synthesize(SynthConfig{Tier1: 1, Tier2: 1}, rng); err == nil {
		t.Error("too few tier-1 should fail")
	}
	if _, err := Synthesize(SynthConfig{Tier1: 2, Tier2: 0}, rng); err == nil {
		t.Error("no tier-2 should fail")
	}
}

func TestSynthesizeDeterminism(t *testing.T) {
	cfg := DefaultSynthConfig()
	cfg.Tier2, cfg.Stubs = 40, 200
	g1, err := Synthesize(cfg, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Synthesize(cfg, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < g1.N(); x++ {
		if g1.Region(x) != g2.Region(x) || g1.Degree(x) != g2.Degree(x) {
			t.Fatalf("divergence at AS%d", x)
		}
	}
}

func TestRegionsQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultSynthConfig()
	cfg.Tier2, cfg.Stubs = 40, 300
	g, err := Synthesize(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for r := Region(0); r < numRegions; r++ {
		total += len(g.ASesInRegion(r))
		for _, x := range g.StubsInRegion(r) {
			if g.Tier(x) != 3 || g.Region(x) != r {
				t.Fatalf("StubsInRegion(%v) returned AS%d tier=%d region=%v", r, x, g.Tier(x), g.Region(x))
			}
		}
	}
	if total != g.N() {
		t.Fatalf("regions partition %d of %d ASes", total, g.N())
	}
}

func TestInferRelationships(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultSynthConfig()
	cfg.Tier2, cfg.Stubs = 60, 500
	g, err := Synthesize(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Collect paths from many vantage ASes to many destinations, as the
	// paper does with RIB dumps.
	var paths [][]int
	stubStart := cfg.Tier1 + cfg.Tier2
	for d := stubStart; d < stubStart+80; d++ {
		rt := g.RoutesTo(d)
		for v := 0; v < g.N(); v += 7 {
			if p := rt.Path(v); len(p) > 1 {
				paths = append(paths, p)
			}
		}
	}
	inf := InferRelationships(paths, 1.5)
	if len(inf) == 0 {
		t.Fatal("no edges classified")
	}
	acc := g.InferenceAccuracy(inf)
	if acc < 0.75 {
		t.Fatalf("inference accuracy %.2f < 0.75 over %d edges", acc, len(inf))
	}
	t.Logf("inference accuracy %.2f over %d edges", acc, len(inf))
}

func TestInferRelationshipsEdgeCases(t *testing.T) {
	if got := InferRelationships(nil, 0); len(got) != 0 {
		t.Error("no paths should classify nothing")
	}
	inf := InferRelationships([][]int{{1}}, 1.5)
	if len(inf) != 0 {
		t.Error("single-AS path classifies nothing")
	}
	g := NewGraph(2)
	if g.InferenceAccuracy(nil) != 0 {
		t.Error("empty inference accuracy should be 0")
	}
}

func TestRelString(t *testing.T) {
	if RelCustomer.String() != "customer" || RelPeer.String() != "peer" || RelProvider.String() != "provider" {
		t.Error("Rel names wrong")
	}
	if Rel(9).String() == "" || RouteClass(9).String() == "" || Region(99).String() == "" {
		t.Error("out-of-range strings should still render")
	}
	if ClassCustomer.String() != "customer" || ClassSelf.String() != "self" || ClassNone.String() != "none" {
		t.Error("RouteClass names wrong")
	}
	if NorthAmerica.String() != "NA" || Africa.String() != "AF" {
		t.Error("Region codes wrong")
	}
}
