package asgraph

import (
	"fmt"
	"math/rand"
	"sort"
)

// SynthConfig parameterizes Internet synthesis. The defaults produce a
// ~2000-AS internetwork with a tier-1 clique, regional transit tier, and a
// multihomed stub edge — the structure the paper's RouteViews RIBs reflect.
type SynthConfig struct {
	Tier1 int // settlement-free core ASes (full peer mesh)
	Tier2 int // regional/national transit ASes
	Stubs int // edge ASes (access networks, enterprises, content origins)

	// MultihomeFrac is the fraction of stubs with two or more providers.
	MultihomeFrac float64
	// MegaHomedFrac is the probability that a stub also buys transit from
	// its region's mega-transit (the widely peered first tier-2). High
	// values concentrate collector forwarding ports on the mega — the
	// mechanism that keeps real-world displacement rates low.
	MegaHomedFrac float64
	// Tier2PeerProb is the probability that two same-region tier-2 ASes
	// peer; cross-region tier-2 peering happens at a tenth of this rate.
	Tier2PeerProb float64
	// RegionWeights gives the relative AS population per region, indexed by
	// Region. Zero-value weights fall back to a default mix dominated by
	// North America and Europe (matching the paper's user base).
	RegionWeights [int(numRegions)]float64
}

// DefaultSynthConfig returns the configuration used by the experiments.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{
		Tier1:         12,
		Tier2:         180,
		Stubs:         1800,
		MultihomeFrac: 0.35,
		MegaHomedFrac: 0.88,
		Tier2PeerProb: 0.12,
		RegionWeights: [int(numRegions)]float64{
			NorthAmerica: 0.35,
			SouthAmerica: 0.10,
			Europe:       0.28,
			Asia:         0.17,
			Oceania:      0.06,
			Africa:       0.04,
		},
	}
}

// Synthesize builds an AS graph per cfg using rng. The resulting graph is
// guaranteed to give every AS a route to every other AS (every stub has at
// least one provider chain up to the tier-1 clique).
func Synthesize(cfg SynthConfig, rng *rand.Rand) (*Graph, error) {
	if cfg.Tier1 < 2 {
		return nil, fmt.Errorf("asgraph: need at least 2 tier-1 ASes, have %d", cfg.Tier1)
	}
	if cfg.Tier2 < 1 || cfg.Stubs < 0 {
		return nil, fmt.Errorf("asgraph: bad tier sizes t2=%d stubs=%d", cfg.Tier2, cfg.Stubs)
	}
	weights := cfg.RegionWeights
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	if sum == 0 {
		weights = DefaultSynthConfig().RegionWeights
		for _, w := range weights {
			sum += w
		}
	}
	pickRegion := func() Region {
		x := rng.Float64() * sum
		for r, w := range weights {
			if x < w {
				return Region(r)
			}
			x -= w
		}
		return NorthAmerica
	}

	n := cfg.Tier1 + cfg.Tier2 + cfg.Stubs
	g := NewGraph(n)

	// Tier-1 clique: global backbones. Spread them over the major regions
	// deterministically so every region has core presence.
	t1Regions := []Region{NorthAmerica, Europe, Asia, NorthAmerica, Europe, SouthAmerica}
	for i := 0; i < cfg.Tier1; i++ {
		g.SetAS(i, 1, t1Regions[i%len(t1Regions)])
		for j := 0; j < i; j++ {
			if err := g.AddPeer(i, j); err != nil {
				return nil, err
			}
		}
	}

	// Tier-2 transit: regional providers, each buying from 1-3 tier-1s and
	// peering regionally.
	t2start := cfg.Tier1
	byRegion := make([][]int, numRegions)
	for i := 0; i < cfg.Tier2; i++ {
		id := t2start + i
		reg := pickRegion()
		g.SetAS(id, 2, reg)
		byRegion[reg] = append(byRegion[reg], id)
		nProv := 1 + rng.Intn(3)
		perm := rng.Perm(cfg.Tier1)
		for _, p := range perm[:nProv] {
			if err := g.AddC2P(id, p); err != nil {
				return nil, err
			}
		}
	}
	// Regional peering. The first tier-2 of each region is a "mega transit"
	// that peers with every other tier-2 in its region (and with the other
	// regions' megas below): real collectors' port distributions are
	// dominated by one such widely-peered AS winning all path-length ties,
	// which is what keeps displacement rates at real routers low.
	var megas []int
	for ri := range byRegion {
		ids := byRegion[ri]
		if len(ids) > 0 {
			megas = append(megas, ids[0])
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if i == 0 || rng.Float64() < cfg.Tier2PeerProb {
					if err := g.AddPeer(ids[i], ids[j]); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	for i := 0; i < len(megas); i++ {
		for j := i + 1; j < len(megas); j++ {
			if err := g.AddPeer(megas[i], megas[j]); err != nil {
				return nil, err
			}
		}
	}
	// Sparse cross-region tier-2 peering.
	for i := 0; i < cfg.Tier2; i++ {
		for j := i + 1; j < cfg.Tier2; j++ {
			a, b := t2start+i, t2start+j
			if g.Region(a) != g.Region(b) && rng.Float64() < cfg.Tier2PeerProb/10 {
				if _, dup := g.RelOf(a, b); dup {
					continue // megas already peer via the mega mesh
				}
				if err := g.AddPeer(a, b); err != nil {
					return nil, err
				}
			}
		}
	}

	// Stubs: access/content networks. Providers come from the same region's
	// tier-2 pool when possible, chosen Zipf-weighted so a handful of large
	// regional transits capture most of the access market (as in the real
	// Internet) — this provider concentration is what keeps per-router
	// displacement rates in the paper's single-digit band. Multihomed stubs
	// add a second (sometimes third) provider, occasionally cross-region,
	// which is what creates genuine route diversity for collectors.
	stubStart := t2start + cfg.Tier2
	zipfPick := func(pool []int) int {
		// P(rank r) ∝ 1/(r+1).
		total := 0.0
		for r := range pool {
			total += 1 / float64(r+1)
		}
		x := rng.Float64() * total
		for r := range pool {
			w := 1 / float64(r+1)
			if x < w {
				return pool[r]
			}
			x -= w
		}
		return pool[len(pool)-1]
	}
	for i := 0; i < cfg.Stubs; i++ {
		id := stubStart + i
		reg := pickRegion()
		g.SetAS(id, 3, reg)
		pool := byRegion[reg]
		if len(pool) == 0 {
			// A region with no transit: fall back to a random tier-1.
			if err := g.AddC2P(id, rng.Intn(cfg.Tier1)); err != nil {
				return nil, err
			}
			continue
		}
		first := zipfPick(pool)
		if err := g.AddC2P(id, first); err != nil {
			return nil, err
		}
		if mega := pool[0]; mega != first && rng.Float64() < cfg.MegaHomedFrac {
			if err := g.AddC2P(id, mega); err != nil {
				return nil, err
			}
		}
		if rng.Float64() < cfg.MultihomeFrac {
			extra := 1
			if rng.Float64() < 0.2 {
				extra = 2
			}
			for k := 0; k < extra; k++ {
				var cand int
				if rng.Float64() < 0.25 {
					// Cross-region or tier-1 provider.
					cand = rng.Intn(cfg.Tier1 + cfg.Tier2)
				} else {
					cand = pool[rng.Intn(len(pool))]
				}
				if cand == id {
					continue
				}
				if _, dup := g.RelOf(id, cand); dup {
					continue
				}
				if err := g.AddC2P(id, cand); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// StubsInRegion lists stub ASes (tier 3) located in region r, in ID order.
func (g *Graph) StubsInRegion(r Region) []int {
	var out []int
	for x := 0; x < g.n; x++ {
		if g.tier[x] == 3 && g.region[x] == r {
			out = append(out, x)
		}
	}
	return out
}

// ASesInRegion lists all ASes in region r, in ID order.
func (g *Graph) ASesInRegion(r Region) []int {
	var out []int
	for x := 0; x < g.n; x++ {
		if g.region[x] == r {
			out = append(out, x)
		}
	}
	return out
}

// EdgeKey identifies an undirected AS adjacency with A < B.
type EdgeKey struct{ A, B int }

// MakeEdgeKey normalizes (a, b) into an EdgeKey.
func MakeEdgeKey(a, b int) EdgeKey {
	if a > b {
		a, b = b, a
	}
	return EdgeKey{A: a, B: b}
}

// InferredRel is the output of relationship inference for one adjacency:
// either a peering, or a transit edge whose Provider field names the
// provider side.
type InferredRel struct {
	Peer     bool
	Provider int
}

// InferRelationships applies the degree-based heuristic of Gao (2001), which
// the paper uses to rank routes when local preference is unavailable
// (§6.2.1 rule 1): in each AS path, the highest-degree AS is the top of the
// hill; edges before it are customer→provider and edges after are
// provider→customer. Adjacent-to-top edges whose endpoint degrees are within
// ratio peerRatio of each other, and which received conflicting transit
// votes, are classified as peerings. Degrees are computed from the path set
// itself.
func InferRelationships(paths [][]int, peerRatio float64) map[EdgeKey]InferredRel {
	if peerRatio <= 1 {
		peerRatio = 1.5
	}
	// Degree from observed adjacencies.
	adj := map[int]map[int]bool{}
	addAdj := func(a, b int) {
		if adj[a] == nil {
			adj[a] = map[int]bool{}
		}
		adj[a][b] = true
	}
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			addAdj(p[i], p[i+1])
			addAdj(p[i+1], p[i])
		}
	}
	deg := func(a int) int { return len(adj[a]) }

	// Transit votes: votes[edge][provider] counts.
	votes := map[EdgeKey]map[int]int{}
	topAdjacent := map[EdgeKey]bool{}
	for _, p := range paths {
		if len(p) < 2 {
			continue
		}
		top := 0
		for i := 1; i < len(p); i++ {
			if deg(p[i]) > deg(p[top]) {
				top = i
			}
		}
		for i := 0; i+1 < len(p); i++ {
			var provider int
			if i < top {
				provider = p[i+1] // ascending toward the top
			} else {
				provider = p[i] // descending away from the top
			}
			k := MakeEdgeKey(p[i], p[i+1])
			if votes[k] == nil {
				votes[k] = map[int]int{}
			}
			votes[k][provider]++
			if i == top || i+1 == top {
				topAdjacent[k] = true
			}
		}
	}

	out := make(map[EdgeKey]InferredRel, len(votes))
	for k, v := range votes {
		va, vb := v[k.A], v[k.B]
		da, db := float64(deg(k.A)), float64(deg(k.B))
		similar := da <= db*peerRatio && db <= da*peerRatio
		conflicted := va > 0 && vb > 0
		if topAdjacent[k] && similar && (conflicted || va == vb) {
			out[k] = InferredRel{Peer: true}
			continue
		}
		if va >= vb {
			out[k] = InferredRel{Provider: k.A}
		} else {
			out[k] = InferredRel{Provider: k.B}
		}
	}
	return out
}

// InferenceAccuracy scores an inference result against the ground-truth
// graph, returning the fraction of classified edges whose class (peer vs
// transit, and transit direction) matches.
func (g *Graph) InferenceAccuracy(inf map[EdgeKey]InferredRel) float64 {
	if len(inf) == 0 {
		return 0
	}
	keys := make([]EdgeKey, 0, len(inf))
	for k := range inf {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].A != keys[j].A {
			return keys[i].A < keys[j].A
		}
		return keys[i].B < keys[j].B
	})
	correct, total := 0, 0
	for _, k := range keys {
		rel, ok := g.RelOf(k.A, k.B)
		if !ok {
			continue
		}
		total++
		got := inf[k]
		switch rel {
		case RelPeer:
			if got.Peer {
				correct++
			}
		case RelCustomer: // k.B is k.A's customer => provider is k.A
			if !got.Peer && got.Provider == k.A {
				correct++
			}
		case RelProvider:
			if !got.Peer && got.Provider == k.B {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
