// Package asgraph models an AS-level Internet: autonomous systems with
// customer-provider and peer-peer relationships, valley-free (Gao–Rexford)
// route computation with standard export rules, tiered topology synthesis
// with geographic regions, and Gao-style relationship inference.
//
// This package is the substitute for the real Internet topology behind the
// paper's RouteViews/RIPE RIBs: internal/bgp builds collector RIBs out of the
// best routes this package computes.
package asgraph

import (
	"fmt"
)

// Rel classifies the business relationship an AS has with a neighbor, from
// the AS's own point of view.
type Rel int8

const (
	// RelCustomer means the neighbor is my customer (I provide transit).
	RelCustomer Rel = iota
	// RelPeer means a settlement-free peer.
	RelPeer
	// RelProvider means the neighbor is my provider.
	RelProvider
)

// String returns the lowercase name of the relationship.
func (r Rel) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// Region is a coarse geographic region for an AS; collectors and user
// populations are placed in regions, which is what makes distant collectors
// (Mauritius, Tokyo) see little route diversity for US/EU user prefixes.
type Region int8

// The regions used by the paper's collector set.
const (
	NorthAmerica Region = iota
	SouthAmerica
	Europe
	Asia
	Oceania
	Africa
	numRegions
)

// String returns a short region code.
func (r Region) String() string {
	switch r {
	case NorthAmerica:
		return "NA"
	case SouthAmerica:
		return "SA"
	case Europe:
		return "EU"
	case Asia:
		return "AS"
	case Oceania:
		return "OC"
	case Africa:
		return "AF"
	}
	return fmt.Sprintf("Region(%d)", int(r))
}

// Tier is the position of an AS in the provider hierarchy: 1 is the
// settlement-free core, higher numbers are farther down. Stubs are the
// highest tier in a synthesized graph.
type Tier uint8

// Graph is an AS-level topology. ASes are dense integers 0..N-1.
type Graph struct {
	n         int
	tier      []Tier
	region    []Region
	providers [][]int32 // providers[x] = ASes that provide transit to x
	customers [][]int32 // customers[x] = ASes x provides transit to
	peers     [][]int32
}

// NewGraph creates a graph of n ASes, all tier 0 / NorthAmerica until
// configured via SetAS.
func NewGraph(n int) *Graph {
	return &Graph{
		n:         n,
		tier:      make([]Tier, n),
		region:    make([]Region, n),
		providers: make([][]int32, n),
		customers: make([][]int32, n),
		peers:     make([][]int32, n),
	}
}

// N returns the number of ASes.
func (g *Graph) N() int { return g.n }

// SetAS assigns tier and region metadata to AS x.
func (g *Graph) SetAS(x int, tier Tier, region Region) {
	g.tier[x] = tier
	g.region[x] = region
}

// Tier returns the tier of AS x.
func (g *Graph) Tier(x int) Tier { return g.tier[x] }

// Region returns the region of AS x.
func (g *Graph) Region(x int) Region { return g.region[x] }

// AddC2P records that customer buys transit from provider.
func (g *Graph) AddC2P(customer, provider int) error {
	if err := g.check(customer, provider); err != nil {
		return err
	}
	for _, p := range g.providers[customer] {
		if int(p) == provider {
			return fmt.Errorf("asgraph: duplicate c2p %d->%d", customer, provider)
		}
	}
	g.providers[customer] = append(g.providers[customer], int32(provider))
	g.customers[provider] = append(g.customers[provider], int32(customer))
	return nil
}

// AddPeer records a settlement-free peering between a and b.
func (g *Graph) AddPeer(a, b int) error {
	if err := g.check(a, b); err != nil {
		return err
	}
	for _, p := range g.peers[a] {
		if int(p) == b {
			return fmt.Errorf("asgraph: duplicate peering %d--%d", a, b)
		}
	}
	g.peers[a] = append(g.peers[a], int32(b))
	g.peers[b] = append(g.peers[b], int32(a))
	return nil
}

func (g *Graph) check(a, b int) error {
	if a < 0 || a >= g.n || b < 0 || b >= g.n {
		return fmt.Errorf("asgraph: AS pair (%d,%d) out of range [0,%d)", a, b, g.n)
	}
	if a == b {
		return fmt.Errorf("asgraph: self relationship at %d", a)
	}
	return nil
}

// Providers returns the providers of x. The slice must not be modified.
func (g *Graph) Providers(x int) []int32 { return g.providers[x] }

// Customers returns the customers of x.
func (g *Graph) Customers(x int) []int32 { return g.customers[x] }

// Peers returns the peers of x.
func (g *Graph) Peers(x int) []int32 { return g.peers[x] }

// Degree returns the total neighbor count of x across all relationships.
func (g *Graph) Degree(x int) int {
	return len(g.providers[x]) + len(g.customers[x]) + len(g.peers[x])
}

// RelOf returns the relationship of x with neighbor y, if any.
func (g *Graph) RelOf(x, y int) (Rel, bool) {
	for _, c := range g.customers[x] {
		if int(c) == y {
			return RelCustomer, true
		}
	}
	for _, p := range g.peers[x] {
		if int(p) == y {
			return RelPeer, true
		}
	}
	for _, p := range g.providers[x] {
		if int(p) == y {
			return RelProvider, true
		}
	}
	return 0, false
}

// RouteClass classifies a selected route by how its first hop relates to the
// selecting AS; the Gao–Rexford preference order is Customer > Peer >
// Provider.
type RouteClass int8

// Route classes in decreasing preference order.
const (
	ClassNone RouteClass = iota // no route
	ClassSelf                   // the destination itself
	ClassCustomer
	ClassPeer
	ClassProvider
)

// String names the route class.
func (c RouteClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassSelf:
		return "self"
	case ClassCustomer:
		return "customer"
	case ClassPeer:
		return "peer"
	case ClassProvider:
		return "provider"
	}
	return fmt.Sprintf("RouteClass(%d)", int(c))
}

// RouteTable holds, for a single destination AS, every other AS's selected
// (policy-best) route: its class, AS-path length, and chosen next hop.
type RouteTable struct {
	Dest   int
	class  []RouteClass
	dist   []int32
	parent []int32
}

// Class returns the selected route class at AS x (ClassNone if unreachable).
func (rt *RouteTable) Class(x int) RouteClass { return rt.class[x] }

// PathLen returns the AS-path length (hop count) of x's selected route to
// the destination; -1 if x has no route. The destination itself has length 0.
func (rt *RouteTable) PathLen(x int) int {
	if rt.class[x] == ClassNone {
		return -1
	}
	return int(rt.dist[x])
}

// NextHop returns the first hop of x's selected route (-1 if none; the
// destination returns itself).
func (rt *RouteTable) NextHop(x int) int {
	if rt.class[x] == ClassNone {
		return -1
	}
	return int(rt.parent[x])
}

// Has reports whether x has any route to the destination.
func (rt *RouteTable) Has(x int) bool { return rt.class[x] != ClassNone }

// Path returns the full AS path from x to the destination, inclusive of both
// ends; nil if x has no route.
func (rt *RouteTable) Path(x int) []int {
	if rt.class[x] == ClassNone {
		return nil
	}
	return rt.AppendPath(make([]int, 0, rt.dist[x]+1), x)
}

// AppendPath appends the full AS path from x to the destination onto dst and
// returns the extended slice (dst unchanged when x has no route). Callers
// minting many paths — bgp.BuildCollectors walks one per (origin, feed peer)
// — can slab them into one backing array instead of allocating per path.
func (rt *RouteTable) AppendPath(dst []int, x int) []int {
	if rt.class[x] == ClassNone {
		return dst
	}
	start := len(dst)
	for v := x; ; v = int(rt.parent[v]) {
		dst = append(dst, v)
		if v == rt.Dest {
			break
		}
		if len(dst)-start > len(rt.class) {
			panic("asgraph: cycle in route table")
		}
	}
	return dst
}

// RoutesTo computes the selected valley-free route of every AS toward
// destination d, following Gao–Rexford selection (customer > peer >
// provider, then shortest AS path, then lowest next-hop ID) and export
// rules (routes learned from peers or providers are exported only to
// customers).
//
// The computation runs in three stages:
//  1. customer routes — BFS from d along customer→provider edges,
//  2. peer routes — one peer hop into an AS that selected a customer route,
//  3. provider routes — Dijkstra down provider→customer edges seeded with
//     every AS that already selected a route (an AS exports its selected
//     route, whatever its class, to its customers).
func (g *Graph) RoutesTo(d int) *RouteTable {
	if d < 0 || d >= g.n {
		panic(fmt.Sprintf("asgraph: destination %d out of range", d))
	}
	rt := &RouteTable{
		Dest:   d,
		class:  make([]RouteClass, g.n),
		dist:   make([]int32, g.n),
		parent: make([]int32, g.n),
	}
	for i := range rt.parent {
		rt.parent[i] = -1
		rt.dist[i] = -1
	}
	rt.class[d] = ClassSelf
	rt.dist[d] = 0
	rt.parent[d] = int32(d)

	// Stage 1: customer routes. BFS up the provider hierarchy: if x's
	// customer c has a customer route (or is d), x hears it. Within the
	// class, shorter paths first (BFS level order), tie-break on lowest
	// next-hop ID by scanning candidates per level.
	frontier := []int32{int32(d)}
	for len(frontier) > 0 {
		var next []int32
		for _, cv := range frontier {
			for _, pr := range g.providers[cv] {
				if rt.class[pr] == ClassNone {
					rt.class[pr] = ClassCustomer
					rt.dist[pr] = rt.dist[cv] + 1
					rt.parent[pr] = cv
					next = append(next, pr)
				} else if rt.class[pr] == ClassCustomer && rt.dist[pr] == rt.dist[cv]+1 && cv < rt.parent[pr] {
					rt.parent[pr] = cv // equal length: prefer lower next-hop ID
				}
			}
		}
		frontier = next
	}

	// Stage 2: peer routes. x hears from peer p iff p selected a customer
	// route (or p is d); x uses it only if x has no customer route.
	type peerCand struct {
		dist   int32
		parent int32
	}
	peerBest := make(map[int32]peerCand)
	for x := 0; x < g.n; x++ {
		if rt.class[x] != ClassNone {
			continue
		}
		for _, p := range g.peers[x] {
			var pd int32
			switch rt.class[p] {
			case ClassSelf:
				pd = 0
			case ClassCustomer:
				pd = rt.dist[p]
			default:
				continue
			}
			cand := peerCand{dist: pd + 1, parent: p}
			if cur, ok := peerBest[int32(x)]; !ok || cand.dist < cur.dist ||
				(cand.dist == cur.dist && cand.parent < cur.parent) {
				peerBest[int32(x)] = cand
			}
		}
	}
	for x, cand := range peerBest {
		rt.class[x] = ClassPeer
		rt.dist[x] = cand.dist
		rt.parent[x] = cand.parent
	}

	// Stage 3: provider routes. Every AS with a selected route exports it to
	// its customers; a customer lacking customer/peer routes selects the
	// shortest such provider route. Dijkstra over provider→customer edges.
	pq := make(asHeap, 0, g.n)
	for x := 0; x < g.n; x++ {
		if rt.class[x] != ClassNone {
			pq.push(asItem{as: int32(x), dist: rt.dist[x]})
		}
	}
	for len(pq) > 0 {
		it := pq.pop()
		x := it.as
		if it.dist > rt.dist[x] {
			continue // stale entry
		}
		for _, c := range g.customers[x] {
			nd := rt.dist[x] + 1
			switch rt.class[c] {
			case ClassNone:
				rt.class[c] = ClassProvider
				rt.dist[c] = nd
				rt.parent[c] = x
				pq.push(asItem{as: c, dist: nd})
			case ClassProvider:
				if nd < rt.dist[c] || (nd == rt.dist[c] && x < rt.parent[c]) {
					if nd < rt.dist[c] {
						rt.dist[c] = nd
						rt.parent[c] = x
						pq.push(asItem{as: c, dist: nd})
					} else {
						rt.parent[c] = x
					}
				}
			}
		}
	}
	return rt
}

type asItem struct {
	as   int32
	dist int32
}

// less orders the Dijkstra frontier by (dist, as). The tuple is a total
// order over distinct items, so pop order — and with it route selection —
// does not depend on insertion order or heap internals.
func (a asItem) less(b asItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.as < b.as
}

// asHeap is a hand-rolled binary min-heap. container/heap funnels every
// Push/Pop through interface{}, boxing one asItem per operation — at
// WorldBuild scale (one Dijkstra per prefix origin) that boxing alone was a
// top-three allocator. A typed sift keeps the frontier allocation-free
// beyond the backing array itself.
type asHeap []asItem

// push sifts it into the heap.
//
//lint:zeroalloc per op once the backing array has grown to capacity
func (h *asHeap) push(it asItem) {
	s := append(*h, it)
	*h = s
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].less(s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// pop removes and returns the minimum item.
//
//lint:zeroalloc per op
func (h *asHeap) pop() asItem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r].less(s[l]) {
			m = r
		}
		if !s[m].less(s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// ShortestUndirectedHops ignores policy entirely and returns the hop
// distance from src to every AS over the physical adjacency (all
// relationship types). This is the paper's Fig. 10 lower-bound technique:
// "the length of the shortest AS path ... using the Internet's AS-level
// physical topology even if this route may not exist in the AS-level routing
// topology". Unreachable ASes get -1.
func (g *Graph) ShortestUndirectedHops(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.n {
		return dist
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		relax := func(vs []int32) {
			for _, v := range vs {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		relax(g.providers[u])
		relax(g.customers[u])
		relax(g.peers[u])
	}
	return dist
}

// ValleyFree reports whether the AS path (a sequence of AS IDs) obeys the
// valley-free property under g's relationships: zero or more customer→
// provider steps, at most one peer step, then zero or more provider→
// customer steps. Used by tests as an independent check on RoutesTo.
func (g *Graph) ValleyFree(path []int) bool {
	const (
		up = iota
		peered
		down
	)
	state := up
	for i := 0; i+1 < len(path); i++ {
		rel, ok := g.RelOf(path[i], path[i+1])
		if !ok {
			return false
		}
		switch rel {
		case RelProvider: // step up
			if state != up {
				return false
			}
		case RelPeer:
			if state != up {
				return false
			}
			state = peered
		case RelCustomer: // step down
			state = down
		}
	}
	return true
}
