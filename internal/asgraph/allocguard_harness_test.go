package asgraph

import "testing"

// allocGuardHarness maps each //lint:zeroalloc symbol in this package to
// its measurement, consumed by the generated TestAllocGuard. The heap's
// only legitimate allocation is growing its backing array, so each
// measurement warms the array to capacity first and then requires repeated
// push/pop cycles to be absolutely allocation-free.
func allocGuardHarness() map[string]func(t *testing.T) float64 {
	const frontier = 256
	warm := func() asHeap {
		var h asHeap
		for i := 0; i < frontier; i++ {
			h.push(asItem{as: int32(i), dist: int32(frontier - i)})
		}
		for len(h) > 0 {
			h.pop()
		}
		return h
	}
	return map[string]func(t *testing.T) float64{
		"asHeap.push": func(t *testing.T) float64 {
			h := warm()
			return testing.AllocsPerRun(100, func() {
				for i := 0; i < frontier; i++ {
					h.push(asItem{as: int32(i), dist: int32(i % 7)})
				}
				h = h[:0]
			})
		},
		"asHeap.pop": func(t *testing.T) float64 {
			h := warm()
			return testing.AllocsPerRun(100, func() {
				for i := 0; i < frontier; i++ {
					h.push(asItem{as: int32(i), dist: int32(frontier - i)})
				}
				prev := int32(-1 << 30)
				for len(h) > 0 {
					it := h.pop()
					if it.dist < prev {
						t.Fatal("pop order violated the min-heap invariant")
					}
					prev = it.dist
				}
			})
		},
	}
}
