package netsim

import (
	"fmt"
	"strconv"

	"locind/internal/gns"
	"locind/internal/netaddr"
)

// GNSResolver adapts a gns.Service into the Resolution architecture's
// Resolver, so the packet simulator's name-resolution path runs through the
// real replicated service (quorums, versions, failures and all). Router
// locators are encoded as addresses in a reserved /8.
type GNSResolver struct {
	Svc *gns.Service
}

// locator encodes a router ID as an address the service can store.
func locator(router int) netaddr.Addr {
	return netaddr.MakeAddr(127, byte(router>>16), byte(router>>8), byte(router))
}

func routerOf(a netaddr.Addr) int {
	_, b, c, d := a.Octets()
	return int(b)<<16 | int(c)<<8 | int(d)
}

// ResolveUpdate implements Resolver via a quorum update.
func (g GNSResolver) ResolveUpdate(name string, router int) error {
	_, err := g.Svc.Update(name, []netaddr.Addr{locator(router)})
	return err
}

// ResolveLookup implements Resolver via a quorum lookup.
func (g GNSResolver) ResolveLookup(name string) (int, error) {
	rec, err := g.Svc.Lookup(name)
	if err != nil {
		return 0, err
	}
	if len(rec.Addrs) == 0 {
		return 0, fmt.Errorf("netsim: empty binding for %q (version %s)",
			name, strconv.FormatUint(rec.Version, 10))
	}
	return routerOf(rec.Addrs[0]), nil
}
