// Package netsim is a packet-level simulator of the three puristic
// architectures of §2, at the granularity of Figure 1(b)-(d): endpoints
// attach to routers in a shortest-path-routed network and packets are
// forwarded hop by hop under
//
//   - indirection routing (a home agent detours every packet),
//   - name resolution (an extra-network service is queried at connection
//     setup, then packets travel the direct path), and
//   - name-based routing (every router keeps a next-hop entry per name).
//
// The simulator measures what the analytic model of §5 predicts — additive
// path stretch and per-move update cost — and, beyond it, the handoff
// behaviour of name-based routing while an update wavefront is still
// propagating (the territory the paper assigns to the "strategy layer").
package netsim

import (
	"fmt"

	"locind/internal/topology"
)

// Network wraps a router topology with the precomputed state every
// architecture shares: all-pairs hop counts and per-location forwarding
// ports.
type Network struct {
	g    *topology.Graph
	hops [][]int
	// ports[loc][r] is router r's next hop toward an endpoint at loc
	// (lowest-ID shortest-path tie-break), or r itself when r == loc.
	ports [][]int
}

// NewNetwork precomputes forwarding state for g, which must be connected.
func NewNetwork(g *topology.Graph) (*Network, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("netsim: empty topology")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("netsim: topology must be connected")
	}
	n := &Network{g: g, hops: g.AllPairsHops(), ports: make([][]int, g.N())}
	for loc := 0; loc < g.N(); loc++ {
		_, parent := g.BFS(loc)
		row := make([]int, g.N())
		for r := 0; r < g.N(); r++ {
			row[r] = parent[r] // == loc's own parent is loc itself
		}
		n.ports[loc] = row
	}
	return n, nil
}

// N returns the router count.
func (n *Network) N() int { return n.g.N() }

// Dist returns the hop distance between routers a and b.
func (n *Network) Dist(a, b int) int { return n.hops[a][b] }

// Delivery reports the fate of one packet.
type Delivery struct {
	Delivered bool
	// Hops is the data-path length actually traversed.
	Hops int
	// Shortest is the direct shortest-path length source→destination, so
	// Stretch() = Hops - Shortest.
	Shortest int
	// SetupCost counts extra control-plane messages spent before the first
	// data packet could leave (resolution lookups).
	SetupCost int
}

// Stretch returns the additive path stretch of the delivery.
func (d Delivery) Stretch() int { return d.Hops - d.Shortest }

// Arch is a location-independent communication architecture under test.
type Arch interface {
	// Name identifies the architecture.
	Name() string
	// Attach registers endpoint ep at a router, returning the number of
	// entities (routers or service replicas) that had to change state.
	Attach(ep string, router int) int
	// Move relocates ep, returning the update cost of the mobility event
	// (the §3 metric: how many entities must change state).
	Move(ep string, to int) int
	// Send forwards one packet from a source router toward ep.
	Send(src int, ep string) Delivery
	// Where returns ep's current attachment (for tests).
	Where(ep string) (int, bool)
}

// HomeAgent is indirection routing: the first attachment point becomes the
// endpoint's home agent; every packet detours through it (no route
// optimization, as in base Mobile IP).
type HomeAgent struct {
	net  *Network
	home map[string]int
	cur  map[string]int
}

// NewHomeAgent builds the indirection architecture over net.
func NewHomeAgent(net *Network) *HomeAgent {
	return &HomeAgent{net: net, home: map[string]int{}, cur: map[string]int{}}
}

// Name implements Arch.
func (h *HomeAgent) Name() string { return "indirection" }

// Attach implements Arch; the first attachment fixes the home agent.
func (h *HomeAgent) Attach(ep string, router int) int {
	if _, ok := h.home[ep]; !ok {
		h.home[ep] = router
	}
	h.cur[ep] = router
	return 1 // the home agent learns the binding
}

// Move implements Arch: exactly one entity (the home agent) updates.
func (h *HomeAgent) Move(ep string, to int) int {
	if _, ok := h.home[ep]; !ok {
		return h.Attach(ep, to)
	}
	h.cur[ep] = to
	return 1
}

// Send implements Arch: triangle routing via the home agent.
func (h *HomeAgent) Send(src int, ep string) Delivery {
	home, ok := h.home[ep]
	if !ok {
		return Delivery{}
	}
	cur := h.cur[ep]
	return Delivery{
		Delivered: true,
		Hops:      h.net.Dist(src, home) + h.net.Dist(home, cur),
		Shortest:  h.net.Dist(src, cur),
	}
}

// Where implements Arch.
func (h *HomeAgent) Where(ep string) (int, bool) {
	r, ok := h.cur[ep]
	return r, ok
}

// Resolver abstracts the extra-network service the resolution architecture
// queries (satisfied by a map in tests and by gns.Service via a thin
// adapter).
type Resolver interface {
	ResolveUpdate(name string, router int) error
	ResolveLookup(name string) (int, error)
}

// MapResolver is the trivial in-process Resolver.
type MapResolver map[string]int

// ResolveUpdate implements Resolver.
func (m MapResolver) ResolveUpdate(name string, router int) error {
	m[name] = router
	return nil
}

// ResolveLookup implements Resolver.
func (m MapResolver) ResolveLookup(name string) (int, error) {
	r, ok := m[name]
	if !ok {
		return 0, fmt.Errorf("netsim: unknown name %q", name)
	}
	return r, nil
}

// Resolution is the name-resolution architecture: one update per move at
// the service, a lookup at connection setup, then direct shortest-path
// forwarding.
type Resolution struct {
	net *Network
	res Resolver
}

// NewResolution builds the resolution architecture over net and res.
func NewResolution(net *Network, res Resolver) *Resolution {
	return &Resolution{net: net, res: res}
}

// Name implements Arch.
func (r *Resolution) Name() string { return "name-resolution" }

// Attach implements Arch.
func (r *Resolution) Attach(ep string, router int) int {
	if err := r.res.ResolveUpdate(ep, router); err != nil {
		return 0
	}
	return 1
}

// Move implements Arch: one update at the resolution service.
func (r *Resolution) Move(ep string, to int) int { return r.Attach(ep, to) }

// Send implements Arch: lookup, then the direct path; data-path stretch is
// zero by construction, the lookup shows up as SetupCost.
func (r *Resolution) Send(src int, ep string) Delivery {
	cur, err := r.res.ResolveLookup(ep)
	if err != nil {
		return Delivery{SetupCost: 1}
	}
	d := r.net.Dist(src, cur)
	return Delivery{Delivered: true, Hops: d, Shortest: d, SetupCost: 1}
}

// Where implements Arch.
func (r *Resolution) Where(ep string) (int, bool) {
	cur, err := r.res.ResolveLookup(ep)
	return cur, err == nil
}

// NameRouting is pure name-based routing: every router holds a next-hop
// entry per name; a move updates exactly the routers whose entry changes
// (the §5.1.2 quantity), and packets follow the entries hop by hop.
type NameRouting struct {
	net *Network
	// table[ep][r] = the location whose port router r currently uses for
	// ep. Storing the location (rather than the port) makes the handoff
	// wavefront model below straightforward.
	table map[string][]int
	cur   map[string]int
	// breadcrumb enables forwarding pointers at departure points (see
	// Breadcrumb).
	breadcrumb bool
}

// NewNameRouting builds the name-based architecture over net.
func NewNameRouting(net *Network) *NameRouting {
	return &NameRouting{net: net, table: map[string][]int{}, cur: map[string]int{}}
}

// Name implements Arch.
func (nr *NameRouting) Name() string { return "name-based-routing" }

// Attach implements Arch: every router installs an entry.
func (nr *NameRouting) Attach(ep string, router int) int {
	row := make([]int, nr.net.N())
	for r := range row {
		row[r] = router
	}
	nr.table[ep] = row
	nr.cur[ep] = router
	return nr.net.N()
}

// Move implements Arch: routers whose forwarding port for ep changes are
// updated and counted — the exact displacement semantics of §3.1 lifted to
// names.
func (nr *NameRouting) Move(ep string, to int) int {
	row, ok := nr.table[ep]
	if !ok {
		return nr.Attach(ep, to)
	}
	from := nr.cur[ep]
	updated := 0
	for r := range row {
		oldPort := nr.port(r, from)
		newPort := nr.port(r, to)
		if oldPort != newPort {
			updated++
		}
		row[r] = to
	}
	nr.cur[ep] = to
	return updated
}

// port is router r's forwarding port toward an endpoint at loc; the
// endpoint's own router uses the distinguished local port.
func (nr *NameRouting) port(r, loc int) int {
	if r == loc {
		return -1
	}
	return nr.net.ports[loc][r]
}

// Send implements Arch: hop-by-hop forwarding over the name tables.
func (nr *NameRouting) Send(src int, ep string) Delivery {
	row, ok := nr.table[ep]
	if !ok {
		return Delivery{}
	}
	cur := nr.cur[ep]
	shortest := nr.net.Dist(src, cur)
	at := src
	hops := 0
	ttl := 4 * nr.net.N()
	for at != row[at] {
		at = nr.net.ports[row[at]][at]
		hops++
		if hops > ttl {
			return Delivery{Shortest: shortest, Hops: hops}
		}
	}
	// Delivered where the local entry points; with converged tables this
	// is the endpoint's location.
	return Delivery{Delivered: at == cur, Hops: hops, Shortest: shortest}
}

// Where implements Arch.
func (nr *NameRouting) Where(ep string) (int, bool) {
	c, ok := nr.cur[ep]
	return c, ok
}

// Breadcrumb turns on forwarding pointers at departure points: when an
// endpoint leaves a router, the old attachment router keeps a pointer to
// the new location and re-forwards packets that arrive for the departed
// endpoint — the custodian/indirection-point repair that proposals like
// Kim et al. add to NDN-style architectures. The zero value (disabled)
// reproduces pure name-based routing, where such packets are lost.
func (nr *NameRouting) Breadcrumb(enable bool) { nr.breadcrumb = enable }

// SendDuringHandoff models a packet injected while the update wavefront of
// a move from oldLoc to newLoc is still propagating: the wavefront floods
// outward from newLoc one hop per tick (router r switches its entry at time
// Dist(newLoc, r)), the packet starts at src at time t0 and takes one hop
// per tick. Packets racing ahead of the wavefront chase the old location;
// late injections see converged state. The return reports whether the
// packet reached the endpoint's NEW location, and in how many hops.
//
// With breadcrumbs enabled (Breadcrumb(true)), a packet that wins the race
// to the old location is re-forwarded from there toward the new one instead
// of being dropped, converting the loss into a detour whose extra hops show
// up as stretch.
func (nr *NameRouting) SendDuringHandoff(src int, ep string, oldLoc, newLoc, t0 int) Delivery {
	shortest := nr.net.Dist(src, newLoc)
	at := src
	hops := 0
	t := t0
	ttl := 6 * nr.net.N()
	chasingCrumb := false
	for {
		loc := oldLoc
		if chasingCrumb || t >= nr.net.Dist(newLoc, at) {
			loc = newLoc
		}
		if at == loc {
			if at == newLoc {
				return Delivery{Delivered: true, Hops: hops, Shortest: shortest}
			}
			// The packet won the race to the departure point.
			if nr.breadcrumb {
				chasingCrumb = true // follow the forwarding pointer
				continue
			}
			return Delivery{Hops: hops, Shortest: shortest} // lost
		}
		at = nr.net.ports[loc][at]
		hops++
		t++
		if hops > ttl {
			return Delivery{Hops: hops, Shortest: shortest}
		}
	}
}
