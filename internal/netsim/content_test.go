package netsim

import (
	"math/rand"
	"testing"

	"locind/internal/topology"
)

func TestContentRegisterValidation(t *testing.T) {
	net := mustNet(t, topology.Chain(5))
	cr := NewContentRouting(net)
	if err := cr.Register("x", nil); err == nil {
		t.Error("empty replica set should fail")
	}
	if err := cr.Register("x", []int{9}); err == nil {
		t.Error("out-of-range replica should fail")
	}
	if err := cr.Register("x", []int{4, 0}); err != nil {
		t.Fatal(err)
	}
	if got := cr.Replicas("x"); len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("replicas = %v", got)
	}
}

func TestSendBestAnycast(t *testing.T) {
	net := mustNet(t, topology.Chain(9))
	cr := NewContentRouting(net)
	if err := cr.Register("movie", []int{0, 8}); err != nil {
		t.Fatal(err)
	}
	// A source at 2 reaches the replica at 0 in 2 hops, never detouring to
	// the far copy.
	d := cr.SendBest(2, "movie")
	if !d.Delivered || d.Hops != 2 || d.Stretch() != 0 {
		t.Fatalf("delivery = %+v", d)
	}
	// A source at a replica delivers locally.
	d = cr.SendBest(8, "movie")
	if !d.Delivered || d.Hops != 0 {
		t.Fatalf("local delivery = %+v", d)
	}
	// Unknown content fails.
	if d := cr.SendBest(0, "ghost"); d.Delivered {
		t.Fatal("unknown content must not deliver")
	}
}

func TestSendFloodReachesAllReplicas(t *testing.T) {
	net := mustNet(t, topology.BinaryTree(15))
	cr := NewContentRouting(net)
	if err := cr.Register("movie", []int{7, 11, 14}); err != nil {
		t.Fatal(err)
	}
	for src := 0; src < net.N(); src++ {
		fd := cr.SendFlood(src, "movie")
		if !fd.Delivered {
			t.Fatalf("flood from %d did not deliver", src)
		}
		best := cr.SendBest(src, "movie")
		if !best.Delivered {
			t.Fatalf("best from %d did not deliver", src)
		}
		// Flooding's first copy is never slower than best-port, and its
		// total traffic is never below best-port's single copy.
		if src != 7 && src != 11 && src != 14 {
			if fd.FirstHops > best.Hops {
				t.Fatalf("src %d: flood first copy %d hops vs best %d", src, fd.FirstHops, best.Hops)
			}
			if fd.Traffic < best.Hops {
				t.Fatalf("src %d: flood traffic %d below single-copy %d", src, fd.Traffic, best.Hops)
			}
		}
	}
	// Somewhere, flooding must actually cost more traffic than best-port —
	// that is its price.
	extra := false
	for src := 0; src < net.N(); src++ {
		if cr.SendFlood(src, "movie").Traffic > cr.SendBest(src, "movie").Hops {
			extra = true
			break
		}
	}
	if !extra {
		t.Fatal("flooding never spent extra traffic; model broken")
	}
	if fd := cr.SendFlood(0, "ghost"); fd.Delivered {
		t.Fatal("unknown content must not deliver")
	}
}

// TestMoveReplicaUpdateCosts checks the §3.3.1 definitions operationally:
// moving a far replica leaves best ports intact at routers near a stable
// closer replica (best-port update cost < flooding update cost), matching
// the paper's explanation for Figure 11(b).
func TestMoveReplicaUpdateCosts(t *testing.T) {
	net := mustNet(t, topology.Chain(17))
	cr := NewContentRouting(net)
	if err := cr.Register("movie", []int{0, 16}); err != nil {
		t.Fatal(err)
	}
	// Move the far replica slightly: 16 -> 14. Routers 14, 15, 16 change
	// both their best port and their port set. Router 8 is the interesting
	// one: its eligible port set {7, 9} is direction-symmetric and does NOT
	// change, but its best selection flips from the tie-broken left replica
	// to the now-strictly-closer right one — so best-port counts 4 updates
	// while flooding counts 3. This is a genuine (tie-break-induced)
	// counterexample to the paper's §3.3.3 aside that flooding's update
	// cost is "at least as high as" best-port's; in aggregate over random
	// workloads the inequality still holds (see TestContentScenarioStats).
	bestUpd, floodUpd, err := cr.MoveReplica("movie", 16, 14)
	if err != nil {
		t.Fatal(err)
	}
	if bestUpd != 4 || floodUpd != 3 {
		t.Fatalf("updates = %d best, %d flood; want 4, 3", bestUpd, floodUpd)
	}
	if got := cr.Replicas("movie"); got[1] != 14 {
		t.Fatalf("replica set after move = %v", got)
	}
	// Error paths.
	if _, _, err := cr.MoveReplica("ghost", 0, 1); err == nil {
		t.Error("unknown content should fail")
	}
	if _, _, err := cr.MoveReplica("movie", 9, 1); err == nil {
		t.Error("moving a non-replica should fail")
	}
}

// TestUnionFungibility reproduces §3.3.3 end to end: a replica flapping
// between two locations keeps incurring updates under both standard
// strategies, while the union-of-past-locations port set stabilizes after
// one cycle — at the price of permanently flooding both ports.
func TestUnionFungibility(t *testing.T) {
	net := mustNet(t, topology.Chain(9))
	cr := NewContentRouting(net)
	if err := cr.Register("movie", []int{0, 8}); err != nil {
		t.Fatal(err)
	}
	// Track the union port set at the middle router across a flap cycle.
	mid := 4
	union := map[int]bool{}
	addAll := func() {
		for _, p := range cr.portSet(mid, cr.Replicas("movie")) {
			union[p] = true
		}
	}
	addAll()
	grewFirst := false
	for cycle := 0; cycle < 4; cycle++ {
		before := len(union)
		if _, _, err := cr.MoveReplica("movie", 8, 6); err != nil {
			t.Fatal(err)
		}
		addAll()
		if _, _, err := cr.MoveReplica("movie", 6, 8); err != nil {
			t.Fatal(err)
		}
		addAll()
		if cycle == 0 && len(union) >= before {
			grewFirst = true
		}
		if cycle > 0 && len(union) != before {
			t.Fatalf("union port set still growing at cycle %d", cycle)
		}
	}
	if !grewFirst {
		t.Fatal("union set never absorbed the flap")
	}
}

func TestContentScenarioStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := mustNet(t, topology.PreferentialAttachment(60, 2, rng))
	cr := NewContentRouting(net)
	replicas := []int{3, 17, 41}
	if err := cr.Register("movie", replicas); err != nil {
		t.Fatal(err)
	}
	var bestTraffic, floodTraffic, bestUpd, floodUpd int
	moves := 100
	for i := 0; i < moves; i++ {
		src := rng.Intn(net.N())
		bestTraffic += cr.SendBest(src, "movie").Hops
		floodTraffic += cr.SendFlood(src, "movie").Traffic
		// Flap one replica.
		cur := cr.Replicas("movie")
		from := cur[rng.Intn(len(cur))]
		to := rng.Intn(net.N())
		if to == from || contains(cur, to) {
			continue
		}
		b, f, err := cr.MoveReplica("movie", from, to)
		if err != nil {
			t.Fatal(err)
		}
		bestUpd += b
		floodUpd += f
	}
	if !(floodTraffic > bestTraffic) {
		t.Fatalf("flooding traffic %d not above best-port %d", floodTraffic, bestTraffic)
	}
	if !(bestUpd <= floodUpd) {
		t.Fatalf("best updates %d above flooding updates %d", bestUpd, floodUpd)
	}
	t.Logf("traffic: best=%d flood=%d (%.1fx); updates: best=%d flood=%d",
		bestTraffic, floodTraffic, float64(floodTraffic)/float64(bestTraffic), bestUpd, floodUpd)
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
