package netsim

import (
	"fmt"
	"sort"
)

// ContentRouting extends the packet simulator to multihomed content
// principals: a named object replicated at several routers, with the two
// §3.3.1 forwarding strategies made operational. Best-port forwards each
// packet toward the closest replica only; controlled flooding duplicates
// the packet across every eligible port. The simulator exposes the cost the
// paper's model deliberately leaves out (§3.3.3): forwarding traffic, in
// total packet-hops, which is what flooding trades for its update savings
// and robustness.
type ContentRouting struct {
	net      *Network
	replicas map[string][]int
}

// NewContentRouting builds the content plane over net.
func NewContentRouting(net *Network) *ContentRouting {
	return &ContentRouting{net: net, replicas: map[string][]int{}}
}

// Register announces name from the given replica routers.
func (cr *ContentRouting) Register(name string, replicas []int) error {
	if len(replicas) == 0 {
		return fmt.Errorf("netsim: content %q needs at least one replica", name)
	}
	rs := append([]int(nil), replicas...)
	sort.Ints(rs)
	for _, r := range rs {
		if r < 0 || r >= cr.net.N() {
			return fmt.Errorf("netsim: replica %d out of range", r)
		}
	}
	cr.replicas[name] = rs
	return nil
}

// Replicas returns the current replica set of name.
func (cr *ContentRouting) Replicas(name string) []int { return cr.replicas[name] }

// bestReplica returns the replica closest to router r (lowest ID on ties)
// — best(FIB(R, d)) at the topology level.
func (cr *ContentRouting) bestReplica(r int, replicas []int) int {
	best := replicas[0]
	for _, rep := range replicas[1:] {
		if cr.net.Dist(r, rep) < cr.net.Dist(r, best) {
			best = rep
		}
	}
	return best
}

// portSet returns router r's eligible output ports for the replica set:
// the distinct next hops toward each replica (the local port when r hosts
// one).
func (cr *ContentRouting) portSet(r int, replicas []int) []int {
	seen := map[int]bool{}
	for _, rep := range replicas {
		var port int
		if r == rep {
			port = -1
		} else {
			port = cr.net.ports[rep][r]
		}
		seen[port] = true
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// SendBest forwards one packet from source router src toward the closest
// replica of name, delivering at the first replica reached. Traffic equals
// hops (a single copy travels).
func (cr *ContentRouting) SendBest(src int, name string) Delivery {
	replicas := cr.replicas[name]
	if len(replicas) == 0 {
		return Delivery{}
	}
	target := cr.bestReplica(src, replicas)
	shortest := cr.net.Dist(src, target)
	at := src
	hops := 0
	ttl := 4 * cr.net.N()
	for at != target {
		// Re-evaluate the best replica at each hop, as per-router FIBs do.
		target = cr.bestReplica(at, replicas)
		if at == target {
			break
		}
		at = cr.net.ports[target][at]
		hops++
		if hops > ttl {
			return Delivery{Shortest: shortest, Hops: hops}
		}
	}
	return Delivery{Delivered: true, Hops: hops, Shortest: shortest}
}

// FloodDelivery reports a controlled-flooding transmission.
type FloodDelivery struct {
	Delivered bool
	// FirstHops is the hop count of the earliest copy to reach any replica.
	FirstHops int
	// Traffic is the total packet-hops spent across all duplicated copies —
	// the §3.3.3 cost axis the update-cost model does not see.
	Traffic int
	// Shortest is the distance to the closest replica.
	Shortest int
}

// SendFlood floods one packet from src across every eligible port at every
// router (with per-router duplicate suppression), delivering at every
// replica the flood reaches.
func (cr *ContentRouting) SendFlood(src int, name string) FloodDelivery {
	replicas := cr.replicas[name]
	if len(replicas) == 0 {
		return FloodDelivery{}
	}
	isReplica := map[int]bool{}
	for _, r := range replicas {
		isReplica[r] = true
	}
	shortest := cr.net.Dist(src, cr.bestReplica(src, replicas))

	visited := map[int]bool{src: true}
	frontier := []int{src}
	out := FloodDelivery{Shortest: shortest}
	if isReplica[src] {
		out.Delivered = true
		return out
	}
	hops := 0
	for len(frontier) > 0 {
		hops++
		var next []int
		for _, r := range frontier {
			for _, port := range cr.portSet(r, replicas) {
				if port == -1 || visited[port] {
					continue
				}
				visited[port] = true
				out.Traffic++
				if isReplica[port] && !out.Delivered {
					out.Delivered = true
					out.FirstHops = hops
				}
				next = append(next, port)
			}
		}
		frontier = next
	}
	return out
}

// MoveReplica relocates one replica of name and returns the §3.3.1 update
// costs of the event under both strategies: the number of routers whose
// best port changed, and the number whose eligible port set changed.
func (cr *ContentRouting) MoveReplica(name string, from, to int) (bestUpdates, floodUpdates int, err error) {
	old := cr.replicas[name]
	if len(old) == 0 {
		return 0, 0, fmt.Errorf("netsim: unknown content %q", name)
	}
	idx := -1
	for i, r := range old {
		if r == from {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, 0, fmt.Errorf("netsim: %q has no replica at %d", name, from)
	}
	nw := append([]int(nil), old...)
	nw[idx] = to
	sort.Ints(nw)

	for r := 0; r < cr.net.N(); r++ {
		ob := cr.bestPortOf(r, old)
		nb := cr.bestPortOf(r, nw)
		if ob != nb {
			bestUpdates++
		}
		if !equalInts(cr.portSet(r, old), cr.portSet(r, nw)) {
			floodUpdates++
		}
	}
	cr.replicas[name] = nw
	return bestUpdates, floodUpdates, nil
}

// bestPortOf is the output port toward the closest replica at router r.
func (cr *ContentRouting) bestPortOf(r int, replicas []int) int {
	best := cr.bestReplica(r, replicas)
	if r == best {
		return -1
	}
	return cr.net.ports[best][r]
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
