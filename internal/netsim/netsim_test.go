package netsim

import (
	"math"
	"math/rand"
	"testing"

	"locind/internal/analytic"
	"locind/internal/gns"
	"locind/internal/topology"
)

func mustNet(t *testing.T, g *topology.Graph) *Network {
	t.Helper()
	n, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNetworkErrors(t *testing.T) {
	if _, err := NewNetwork(topology.New(0)); err == nil {
		t.Error("empty should fail")
	}
	g := topology.New(3)
	g.AddEdge(0, 1) //nolint:errcheck
	if _, err := NewNetwork(g); err == nil {
		t.Error("disconnected should fail")
	}
}

func TestHomeAgentTriangleRouting(t *testing.T) {
	net := mustNet(t, topology.Chain(5))
	h := NewHomeAgent(net)
	if got := h.Attach("u", 0); got != 1 {
		t.Fatalf("attach cost = %d", got)
	}
	// Endpoint moves to the far end; home stays at 0.
	if got := h.Move("u", 4); got != 1 {
		t.Fatalf("move cost = %d", got)
	}
	// A sender at router 4 must detour all the way through the home.
	d := h.Send(4, "u")
	if !d.Delivered || d.Hops != 8 || d.Shortest != 0 || d.Stretch() != 8 {
		t.Fatalf("delivery = %+v", d)
	}
	// A sender at the home sees no stretch.
	d = h.Send(0, "u")
	if d.Stretch() != 0 {
		t.Fatalf("home-side stretch = %d", d.Stretch())
	}
	if _, ok := h.Where("nobody"); ok {
		t.Fatal("unknown endpoint should be unknown")
	}
	if d := h.Send(0, "nobody"); d.Delivered {
		t.Fatal("sending to unknown endpoint must fail")
	}
	// Moving an unknown endpoint attaches it.
	if got := h.Move("fresh", 2); got != 1 {
		t.Fatalf("move-as-attach = %d", got)
	}
	if home := h.home["fresh"]; home != 2 {
		t.Fatalf("fresh home = %d", home)
	}
}

func TestResolutionDirectPath(t *testing.T) {
	net := mustNet(t, topology.Chain(5))
	r := NewResolution(net, MapResolver{})
	r.Attach("u", 0)
	r.Move("u", 4)
	d := r.Send(0, "u")
	if !d.Delivered || d.Stretch() != 0 || d.Hops != 4 || d.SetupCost != 1 {
		t.Fatalf("delivery = %+v", d)
	}
	if d := r.Send(0, "ghost"); d.Delivered || d.SetupCost != 1 {
		t.Fatalf("unknown name delivery = %+v", d)
	}
	if cur, ok := r.Where("u"); !ok || cur != 4 {
		t.Fatalf("Where = %d %v", cur, ok)
	}
}

func TestNameRoutingForwarding(t *testing.T) {
	net := mustNet(t, topology.BinaryTree(15))
	nr := NewNameRouting(net)
	if got := nr.Attach("u", 7); got != 15 {
		t.Fatalf("attach updates = %d", got)
	}
	// Every source reaches the endpoint with zero stretch.
	for src := 0; src < net.N(); src++ {
		d := nr.Send(src, "u")
		if !d.Delivered || d.Stretch() != 0 {
			t.Fatalf("src %d: %+v", src, d)
		}
	}
	nr.Move("u", 14)
	for src := 0; src < net.N(); src++ {
		d := nr.Send(src, "u")
		if !d.Delivered || d.Stretch() != 0 {
			t.Fatalf("after move, src %d: %+v", src, d)
		}
	}
	if d := nr.Send(0, "ghost"); d.Delivered {
		t.Fatal("unknown name must not deliver")
	}
	if got := nr.Move("ghost2", 3); got != net.N() {
		t.Fatal("move-as-attach must install everywhere")
	}
}

// The simulator's per-move update counts must reproduce the §5 exact
// enumeration when driven by the same uniform mobility process.
func TestNameRoutingUpdatesMatchAnalytic(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *topology.Graph
	}{
		{"chain", topology.Chain(21)},
		{"clique", topology.Clique(16)},
		{"star", topology.Star(20)},
		{"tree", topology.BinaryTree(15)},
	} {
		net := mustNet(t, tc.g)
		nr := NewNameRouting(net)
		rng := rand.New(rand.NewSource(9))
		nr.Attach("u", rng.Intn(net.N()))
		moves := 30000
		total := 0
		for i := 0; i < moves; i++ {
			total += nr.Move("u", rng.Intn(net.N()))
		}
		got := float64(total) / float64(moves) / float64(net.N())
		want := analytic.ExactNameBased(tc.g).UpdateCost
		if math.Abs(got-want) > 0.05*want+0.005 {
			t.Errorf("%s: simulated agg cost %v vs analytic %v", tc.name, got, want)
		}
	}
}

// Likewise, measured indirection stretch must match the analytic expected
// distance when homes and locations are uniform.
func TestHomeAgentStretchMatchesAnalytic(t *testing.T) {
	g := topology.Chain(25)
	net := mustNet(t, g)
	rng := rand.New(rand.NewSource(5))
	want := analytic.ExactIndirection(g).Stretch

	// E[stretch over sender at home... ] — measure dist(home, cur) by
	// sending from the home router itself: Hops = dist(home,home) +
	// dist(home,cur) = dist(home,cur), Shortest = dist(home,cur)... so
	// instead measure via the home-detour identity: send from uniform src,
	// stretch = d(src,home)+d(home,cur)-d(src,cur); averaging that is the
	// triangle overhead. For the direct comparison with E[dist(H,L)], use
	// fresh endpoints (uniform home) and probe Hops from the home.
	samples := 0
	sum := 0.0
	for trial := 0; trial < 2000; trial++ {
		h := NewHomeAgent(net)
		home := rng.Intn(net.N())
		h.Attach("u", home)
		for s := 0; s < 10; s++ {
			cur := rng.Intn(net.N())
			h.Move("u", cur)
			d := h.Send(home, "u")
			sum += float64(d.Hops) // = dist(home, cur)
			samples++
		}
	}
	got := sum / float64(samples)
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("measured E[dist(H,L)] = %v vs analytic %v", got, want)
	}
}

func TestSendDuringHandoff(t *testing.T) {
	net := mustNet(t, topology.Chain(9))
	nr := NewNameRouting(net)
	nr.Attach("u", 0)

	// Endpoint moves 0 -> 8. A packet injected at t0=0 from router 4 heads
	// for the old location and stays ahead of the update wavefront the
	// whole way: it arrives at router 0 after the endpoint left — a real
	// handoff loss, exactly what base name-based routing suffers without a
	// strategy layer.
	d := nr.SendDuringHandoff(4, "u", 0, 8, 0)
	if d.Delivered {
		t.Fatalf("packet racing the wavefront should be lost: %+v", d)
	}
	// The same packet injected once the wavefront has passed its source
	// (t0 >= dist(8,4)=4) follows updated entries straight to the new
	// location with zero stretch.
	d = nr.SendDuringHandoff(4, "u", 0, 8, 4)
	if !d.Delivered || d.Stretch() != 0 {
		t.Fatalf("post-wavefront packet: %+v", d)
	}
	// When the new location sits between the sender and the old one, the
	// packet crosses the wavefront mid-path and is captured at the new
	// location — delivered, and on a chain with zero stretch (the capture
	// point lies on the direct path). Endpoint moves 0 -> 3, sender at 7.
	d = nr.SendDuringHandoff(7, "u", 0, 3, 0)
	if !d.Delivered || d.Stretch() != 0 {
		t.Fatalf("captured packet: %+v", d)
	}
	// Fleeing packets are never caught (wavefront and packet move at the
	// same speed), so a far-side sender injecting at t0=0 always loses —
	// the quantitative reason base NDN-style routing needs smooth-handoff
	// machinery.
	d = nr.SendDuringHandoff(6, "u", 0, 8, 1)
	if d.Delivered {
		t.Fatalf("fleeing packet should be lost: %+v", d)
	}
}

func TestScenarioCompare(t *testing.T) {
	g := topology.Chain(31)
	net := mustNet(t, g)
	sc := Scenario{Moves: 400, SendsPerMove: 4, HandoffProbes: 2}
	ms := Compare(net, MapResolver{}, sc, 11)
	if len(ms) != 3 {
		t.Fatalf("architectures = %d", len(ms))
	}
	byName := map[string]Metrics{}
	for _, m := range ms {
		byName[m.Arch] = m
		if m.DeliveredFrac < 0.99 {
			t.Errorf("%s delivered %v", m.Arch, m.DeliveredFrac)
		}
	}
	ind := byName["indirection"]
	res := byName["name-resolution"]
	nbr := byName["name-based-routing"]
	// The §5 trade-off, measured from packets:
	if ind.UpdatesPerMove != 1 || res.UpdatesPerMove != 1 {
		t.Error("addressing-assisted architectures must update one entity per move")
	}
	if !(ind.MeanStretch > 1) {
		t.Errorf("indirection stretch = %v, want substantial on a chain", ind.MeanStretch)
	}
	if res.MeanStretch != 0 || nbr.MeanStretch != 0 {
		t.Error("resolution and name routing must have zero data-path stretch")
	}
	if !(nbr.AggUpdateCost > 0.2 && nbr.AggUpdateCost < 0.5) {
		t.Errorf("name routing agg cost = %v, want ≈1/3 on a chain", nbr.AggUpdateCost)
	}
	if res.MeanSetupCost != 1 {
		t.Errorf("resolution setup cost = %v", res.MeanSetupCost)
	}
	if nbr.HandoffAttempts == 0 || nbr.HandoffSuccess <= 0 {
		t.Errorf("handoff probes missing: %+v", nbr)
	}
	out := RenderComparison(ms)
	if out == "" {
		t.Fatal("render empty")
	}
	t.Logf("\n%s", out)
	t.Logf("handoff: success=%.2f stretch=%.2f", nbr.HandoffSuccess, nbr.HandoffStretch)
}

func TestScenarioDeterminism(t *testing.T) {
	net := mustNet(t, topology.Ring(12))
	sc := Scenario{Moves: 100, SendsPerMove: 2}
	a := sc.Run(net, NewNameRouting(net), rand.New(rand.NewSource(3)))
	b := sc.Run(net, NewNameRouting(net), rand.New(rand.NewSource(3)))
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func BenchmarkNameRoutingMove(b *testing.B) {
	net, err := NewNetwork(topology.Grid(16, 16))
	if err != nil {
		b.Fatal(err)
	}
	nr := NewNameRouting(net)
	nr.Attach("u", 0)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nr.Move("u", rng.Intn(net.N()))
	}
}

// TestBreadcrumbRepairsHandoffLoss verifies the forwarding-pointer repair:
// every packet that pure name-based routing loses during a handoff is
// delivered (with detour stretch) once the departure router keeps a pointer
// — the custodian/indirection-point idea the paper cites for NDN-style
// architectures.
func TestBreadcrumbRepairsHandoffLoss(t *testing.T) {
	net := mustNet(t, topology.Chain(9))
	nr := NewNameRouting(net)
	nr.Attach("u", 0)

	// The canonical loss from TestSendDuringHandoff: src 4, move 0 -> 8,
	// injected at t0=0; the packet wins the race to the old location.
	lost := nr.SendDuringHandoff(4, "u", 0, 8, 0)
	if lost.Delivered {
		t.Fatal("precondition: pure name routing must lose this packet")
	}
	nr.Breadcrumb(true)
	repaired := nr.SendDuringHandoff(4, "u", 0, 8, 0)
	if !repaired.Delivered {
		t.Fatalf("breadcrumb should repair the loss: %+v", repaired)
	}
	// The repair costs detour hops: 4 to old location 0, then 8 more to
	// the new location = 12 hops vs shortest 4.
	if repaired.Hops != 12 || repaired.Stretch() != 8 {
		t.Fatalf("repaired delivery = %+v, want 12 hops / stretch 8", repaired)
	}
	// Converged-state behaviour is unchanged.
	if d := nr.SendDuringHandoff(4, "u", 0, 8, 100); !d.Delivered || d.Stretch() != 0 {
		t.Fatalf("late packet with breadcrumbs: %+v", d)
	}
}

// With breadcrumbs on, the scenario's handoff success rate must reach 100%
// on any topology, at the price of positive mean handoff stretch.
func TestBreadcrumbScenario(t *testing.T) {
	net := mustNet(t, topology.Chain(31))
	sc := Scenario{Moves: 300, SendsPerMove: 1, HandoffProbes: 3}

	pure := NewNameRouting(net)
	mPure := sc.Run(net, pure, rand.New(rand.NewSource(7)))

	crumbs := NewNameRouting(net)
	crumbs.Breadcrumb(true)
	mCrumbs := sc.Run(net, crumbs, rand.New(rand.NewSource(7)))

	if mPure.HandoffSuccess >= 1 {
		t.Fatalf("pure name routing should lose some handoff packets, success=%v", mPure.HandoffSuccess)
	}
	if mCrumbs.HandoffSuccess != 1 {
		t.Fatalf("breadcrumbs should deliver every handoff packet, success=%v", mCrumbs.HandoffSuccess)
	}
	if mCrumbs.HandoffStretch <= mPure.HandoffStretch {
		t.Fatalf("repair must cost stretch: %v vs %v", mCrumbs.HandoffStretch, mPure.HandoffStretch)
	}
	t.Logf("handoff: pure success=%.2f stretch=%.2f; breadcrumb success=%.2f stretch=%.2f",
		mPure.HandoffSuccess, mPure.HandoffStretch, mCrumbs.HandoffSuccess, mCrumbs.HandoffStretch)
}

// TestResolutionOverGNS runs the resolution architecture through the real
// replicated name service: mobility still costs one (quorum) update, data
// paths stay direct, and a replica failure inside the quorum is invisible
// to senders.
func TestResolutionOverGNS(t *testing.T) {
	net := mustNet(t, topology.Chain(9))
	svc, err := gns.New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := NewResolution(net, GNSResolver{Svc: svc})

	if got := res.Attach("u", 0); got != 1 {
		t.Fatalf("attach cost = %d", got)
	}
	res.Move("u", 8)
	d := res.Send(0, "u")
	if !d.Delivered || d.Hops != 8 || d.Stretch() != 0 {
		t.Fatalf("delivery = %+v", d)
	}
	// One replica of the name's set fails: the architecture keeps working.
	rs := svc.ReplicasFor("u")
	svc.Fail(rs[0])
	res.Move("u", 4)
	d = res.Send(2, "u")
	if !d.Delivered || d.Hops != 2 {
		t.Fatalf("delivery with degraded service = %+v", d)
	}
	// Quorum loss surfaces as failed sends, not wrong deliveries.
	svc.Fail(rs[1])
	d = res.Send(2, "u")
	if d.Delivered {
		t.Fatal("no-quorum lookup must not deliver")
	}
	updates, lookups := svc.Stats()
	if updates != 3 || lookups == 0 {
		t.Fatalf("service stats = %d updates, %d lookups", updates, lookups)
	}
}

// Multiple endpoints coexist independently in one name-routing plane.
func TestNameRoutingMultipleEndpoints(t *testing.T) {
	net := mustNet(t, topology.Grid(5, 5))
	nr := NewNameRouting(net)
	eps := []string{"a", "b", "c", "d"}
	rng := rand.New(rand.NewSource(8))
	at := map[string]int{}
	for _, ep := range eps {
		at[ep] = rng.Intn(net.N())
		nr.Attach(ep, at[ep])
	}
	for step := 0; step < 200; step++ {
		ep := eps[rng.Intn(len(eps))]
		to := rng.Intn(net.N())
		nr.Move(ep, to)
		at[ep] = to
		// Every endpoint stays reachable with zero stretch from everywhere.
		for _, probe := range eps {
			src := rng.Intn(net.N())
			d := nr.Send(src, probe)
			if !d.Delivered || d.Stretch() != 0 {
				t.Fatalf("step %d: endpoint %q from %d: %+v", step, probe, src, d)
			}
			if cur, _ := nr.Where(probe); cur != at[probe] {
				t.Fatalf("endpoint %q tracked at %d, expected %d", probe, cur, at[probe])
			}
		}
	}
}
