package netsim

import (
	"fmt"
	"math/rand"
	"strings"
)

// Metrics aggregates a scenario run for one architecture.
type Metrics struct {
	Arch string

	Moves           int
	UpdatesPerMove  float64 // mean entities updated per mobility event
	AggUpdateCost   float64 // mean fraction of routers updated per event
	Sends           int
	DeliveredFrac   float64
	MeanStretch     float64 // additive hops over shortest path
	MeanSetupCost   float64
	HandoffAttempts int
	HandoffSuccess  float64 // fraction delivered during update propagation
	HandoffStretch  float64 // mean stretch of successful handoff deliveries
}

// Scenario is a reproducible random-mobility workload: one endpoint hops
// uniformly among routers while random sources send to it — the §5 Markov
// process made concrete, plus handoff probes for name-based routing.
type Scenario struct {
	Moves         int
	SendsPerMove  int
	HandoffProbes int // packets injected mid-wavefront per move (NameRouting only)
}

// Run executes the scenario for arch over net and aggregates metrics.
func (sc Scenario) Run(net *Network, arch Arch, rng *rand.Rand) Metrics {
	m := Metrics{Arch: arch.Name()}
	const ep = "u"
	loc := rng.Intn(net.N())
	arch.Attach(ep, loc)

	totalUpdates := 0
	totalStretch := 0
	totalSetup := 0
	delivered := 0
	handoffOK := 0
	handoffStretch := 0
	handoffDeliveredCount := 0

	for i := 0; i < sc.Moves; i++ {
		next := rng.Intn(net.N())
		// Handoff probes fire against the state transition itself.
		if nr, isNR := arch.(*NameRouting); isNR && sc.HandoffProbes > 0 && next != loc {
			for p := 0; p < sc.HandoffProbes; p++ {
				src := rng.Intn(net.N())
				t0 := rng.Intn(net.N()/2 + 1)
				d := nr.SendDuringHandoff(src, ep, loc, next, t0)
				m.HandoffAttempts++
				if d.Delivered {
					handoffOK++
					handoffStretch += d.Stretch()
					handoffDeliveredCount++
				}
			}
		}
		totalUpdates += arch.Move(ep, next)
		loc = next

		for s := 0; s < sc.SendsPerMove; s++ {
			src := rng.Intn(net.N())
			d := arch.Send(src, ep)
			m.Sends++
			totalSetup += d.SetupCost
			if d.Delivered {
				delivered++
				totalStretch += d.Stretch()
			}
		}
	}

	m.Moves = sc.Moves
	if sc.Moves > 0 {
		m.UpdatesPerMove = float64(totalUpdates) / float64(sc.Moves)
		m.AggUpdateCost = m.UpdatesPerMove / float64(net.N())
	}
	if m.Sends > 0 {
		m.DeliveredFrac = float64(delivered) / float64(m.Sends)
		m.MeanSetupCost = float64(totalSetup) / float64(m.Sends)
	}
	if delivered > 0 {
		m.MeanStretch = float64(totalStretch) / float64(delivered)
	}
	if m.HandoffAttempts > 0 {
		m.HandoffSuccess = float64(handoffOK) / float64(m.HandoffAttempts)
	}
	if handoffDeliveredCount > 0 {
		m.HandoffStretch = float64(handoffStretch) / float64(handoffDeliveredCount)
	}
	return m
}

// Compare runs the same scenario over all three architectures with
// identical workloads (same seed) and renders a side-by-side table — the
// §5 trade-off produced by packet forwarding instead of algebra.
func Compare(net *Network, res Resolver, sc Scenario, seed int64) []Metrics {
	archs := []Arch{
		NewHomeAgent(net),
		NewResolution(net, res),
		NewNameRouting(net),
	}
	out := make([]Metrics, 0, len(archs))
	for _, a := range archs {
		out = append(out, sc.Run(net, a, rand.New(rand.NewSource(seed))))
	}
	return out
}

// RenderComparison prints a Compare result.
func RenderComparison(ms []Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %14s %14s %10s %10s %10s\n",
		"architecture", "updates/move", "agg cost", "stretch", "setup", "delivered")
	for _, m := range ms {
		fmt.Fprintf(&b, "%-20s %14.2f %14.4f %10.2f %10.2f %9.1f%%\n",
			m.Arch, m.UpdatesPerMove, m.AggUpdateCost, m.MeanStretch, m.MeanSetupCost, m.DeliveredFrac*100)
	}
	return b.String()
}
