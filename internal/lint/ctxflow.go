package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxflow enforces context threading in the networked service packages
// (gns, nomad, vantage, reliable): an exported function or method that
// spawns goroutines or performs network I/O must accept a context.Context
// as its first parameter, so callers can bound and cancel it. The fault
// injection rewrite threaded contexts through these packages; this analyzer
// keeps new entry points from regressing.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported service entry points that spawn goroutines or do network I/O take a context.Context first",
	Run:  runCtxflow,
}

// ctxflowPackages are the final path segments, under locind/internal/, that
// the analyzer gates.
var ctxflowPackages = map[string]bool{
	"gns": true, "nomad": true, "vantage": true, "reliable": true,
}

// ioPackages are the packages whose calls count as "does network I/O".
// faultnet is this repo's deterministic network substrate; anything talking
// to it is on the wire as far as cancellation is concerned. Only blocking
// verbs count — Close/Addr/SetDeadline-style bookkeeping does not need a
// context.
var ioPackages = map[string]bool{
	"net": true, "locind/internal/faultnet": true,
}

var ioVerbs = []string{"Dial", "Listen", "Accept", "Read", "Write"}

func isIOCall(fn *types.Func) bool {
	if !ioPackages[funcPkgPath(fn)] {
		return false
	}
	for _, v := range ioVerbs {
		if strings.HasPrefix(fn.Name(), v) {
			return true
		}
	}
	return false
}

func runCtxflow(p *Pass) error {
	path := p.Pkg.Path()
	if !moduleInternal(path) || !ctxflowPackages[lastSegment(path)] {
		return nil
	}
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if takesContextFirst(fd) {
				continue
			}
			if why := concurrencyOrIO(p, fd.Body); why != "" {
				p.Reportf(fd.Name.Pos(), "exported %s %s but its first parameter is not a context.Context; callers cannot cancel or bound it", fd.Name.Name, why)
			}
		}
	}
	return nil
}

func takesContextFirst(fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	sel, ok := params.List[0].Type.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context"
}

// concurrencyOrIO describes the first goroutine spawn or I/O call in body
// ("" if none). Function literals are included: a goroutine launched from a
// closure the function starts is still the function's concurrency.
func concurrencyOrIO(p *Pass, body *ast.BlockStmt) string {
	why := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			why = "spawns goroutines"
		case *ast.CallExpr:
			if fn := calleeFunc(p.TypesInfo, n); fn != nil && isIOCall(fn) {
				why = "does network I/O (" + lastSegment(funcPkgPath(fn)) + "." + fn.Name() + ")"
			}
		}
		return true
	})
	return why
}
