// Package lint implements this repository's custom static analyzers and the
// small analysis framework they run on.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis — an
// Analyzer holds a name, a doc string, and a Run function over a *Pass —
// but is built purely on the standard library's go/ast and go/types so the
// module stays dependency-free. Packages are loaded by load.go via
// `go list -json -deps` and type-checked bottom-up, which gives every pass
// full type information without the x/tools loader.
//
// The analyzers encode invariants the repo has already been bitten by:
//
//	determinism  wall-clock reads, global math/rand state, and map-iteration
//	             order leaking into simulation output (the
//	             topology.PreferentialAttachment regression class)
//	seedflow     *rand.Rand constructed from seeds with no provenance
//	errflow      discarded errors from internal/stats, internal/core, and
//	             io/encoding sinks (the expt.RunSensitivity regression class)
//	ctxflow      exported gns/nomad/vantage/reliable entry points that spawn
//	             goroutines or touch the network without a context.Context
//
// Findings are suppressed with `//lint:allow <check> <reason>` comments; see
// allow.go for the three scopes (line, file, package).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one named check.
type Analyzer struct {
	Name string // short lower-case identifier, used in //lint:allow directives
	Doc  string // one-paragraph description of the invariant
	Run  func(*Pass) error
}

// A Pass presents one package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding, positioned in the file set of the pass that
// produced it.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Seedflow, Errflow, Ctxflow}
}

// Run applies each analyzer to each package and returns the surviving
// diagnostics (after //lint:allow suppression), sorted by position. The
// second return value reports malformed //lint:allow directives, which are
// themselves surfaced as findings so they cannot rot silently.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows, malformed := collectAllows(pkg)
		for _, d := range malformed {
			diags = append(diags, d)
		}
		for _, a := range analyzers {
			var raw []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range raw {
				if !allows.suppressed(d) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags, nil
}
