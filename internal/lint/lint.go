// Package lint implements this repository's custom static analyzers and the
// small analysis framework they run on.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis — an
// Analyzer holds a name, a doc string, and a Run function over a *Pass —
// but is built purely on the standard library's go/ast and go/types so the
// module stays dependency-free. Packages are loaded by load.go via
// `go list -json -deps` and type-checked bottom-up, which gives every pass
// full type information without the x/tools loader.
//
// The analyzers encode invariants the repo has already been bitten by:
//
//	determinism  wall-clock reads, global math/rand state, and map-iteration
//	             order leaking into simulation output (the
//	             topology.PreferentialAttachment regression class)
//	seedflow     *rand.Rand constructed from seeds with no provenance
//	errflow      discarded errors from internal/stats, internal/core, and
//	             io/encoding sinks (the expt.RunSensitivity regression class)
//	ctxflow      exported gns/nomad/vantage/reliable entry points that spawn
//	             goroutines or touch the network without a context.Context
//	allocflow    always-allocating idioms inside //lint:zeroalloc-annotated
//	             hot paths and everything they statically call in the module
//	             (the Timeline.Walk / fused-scratch / Memo zero-alloc class)
//	lockflow     mutexes copied by value, locks held across blocking
//	             operations, and inconsistent lock acquisition order
//	atomicflow   fields accessed through sync/atomic somewhere must be
//	             accessed atomically everywhere
//
// Findings are suppressed with `//lint:allow <check> <reason>` comments; see
// allow.go for the three scopes (line, file, package). The companion
// //lint:zeroalloc annotation (zeroalloc.go) both arms allocflow and drives
// cmd/allocguard's generated AllocsPerRun tests.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one named check. Exactly one of Run and RunModule
// is set: Run is invoked once per package, RunModule once per lint.Run call
// with every loaded package in view — the shape allocflow needs, whose
// //lint:zeroalloc closures cross package boundaries.
type Analyzer struct {
	Name      string // short lower-case identifier, used in //lint:allow directives
	Doc       string // one-paragraph description of the invariant
	Run       func(*Pass) error
	RunModule func(*ModulePass) error
}

// A Pass presents one package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding, positioned in the file set of the pass that
// produced it.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Check, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// A ModulePass presents every loaded package to a module-scope analyzer at
// once. Diagnostics are attributed to the package they are reported
// against, so per-package //lint:allow directives suppress them exactly as
// they do per-package findings.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package

	diags *[]moduleDiag
}

type moduleDiag struct {
	pkg *Package
	d   Diagnostic
}

// Reportf records a finding at pos inside pkg.
func (mp *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	*mp.diags = append(*mp.diags, moduleDiag{pkg: pkg, d: Diagnostic{
		Pos:     pkg.Fset.Position(pos),
		Check:   mp.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	}})
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Seedflow, Errflow, Ctxflow, Allocflow, Lockflow, Atomicflow}
}

// A Report is the outcome of one Run: the surviving diagnostics plus an
// accounting of how many findings //lint:allow directives suppressed — CI
// uploads the counts so suppression growth stays visible over time.
type Report struct {
	Diags             []Diagnostic
	Suppressed        int
	SuppressedByCheck map[string]int
}

// Run applies each analyzer to each package and returns the surviving
// diagnostics (after //lint:allow suppression), sorted by position, along
// with the suppressed-findings accounting. Malformed //lint:allow
// directives are themselves surfaced as findings so they cannot rot
// silently.
func Run(pkgs []*Package, analyzers []*Analyzer) (*Report, error) {
	var diags []Diagnostic
	rep := &Report{SuppressedByCheck: map[string]int{}}
	suppress := func(allows *allowIndex, raw []Diagnostic) {
		for _, d := range raw {
			if allows.suppressed(d) {
				rep.Suppressed++
				rep.SuppressedByCheck[d.Check]++
				continue
			}
			diags = append(diags, d)
		}
	}
	allowsFor := make(map[*Package]*allowIndex, len(pkgs))
	for _, pkg := range pkgs {
		allows, malformed := collectAllows(pkg)
		allowsFor[pkg] = allows
		diags = append(diags, malformed...)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			var raw []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			suppress(allows, raw)
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		var raw []moduleDiag
		mp := &ModulePass{Analyzer: a, Pkgs: pkgs, diags: &raw}
		if err := a.RunModule(mp); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
		}
		for _, md := range raw {
			suppress(allowsFor[md.pkg], []Diagnostic{md.d})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	rep.Diags = diags
	return rep, nil
}
