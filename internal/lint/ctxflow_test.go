package lint_test

import (
	"testing"

	"locind/internal/lint"
	"locind/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, "testdata/ctxflow", lint.Ctxflow,
		"locind/internal/gns", "locind/internal/otherfix", "locind/internal/reliable")
}
