package lint_test

import (
	"testing"

	"locind/internal/lint"
	"locind/internal/lint/linttest"
)

func TestErrflow(t *testing.T) {
	linttest.Run(t, "testdata/errflow", lint.Errflow,
		"locind/internal/exptfix", "locind/internal/obsfix")
}
