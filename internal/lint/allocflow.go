package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Allocflow statically polices the //lint:zeroalloc annotation: an
// annotated function — and everything it statically calls within the
// module — must be free of idioms that allocate on every execution of the
// steady-state path. The PR that drove Timeline.Walk, the fused strategy
// scratch, and the striped core.Memo to 0 allocs/event pinned those wins
// with hand-written AllocsPerRun tests; this analyzer is the
// compiler-adjacent half of the same contract, so a regression is caught at
// lint time with a file:line, not as an opaque bench delta.
//
// Two classes of finding:
//
//  1. Anywhere in the annotated closure: calls into a watchlist of
//     always-allocating functions — fmt formatting (which also boxes every
//     argument into ...any), strings/bytes builders and splitters,
//     errors.New, slices.Clone, sort.Slice's closure+boxing, regexp,
//     reflect — plus `go` statements (a goroutine is never free).
//
//  2. Inside the per-event path — any for/range loop, and the body of any
//     function literal defined in the closure (callbacks handed to a
//     replay loop run once per event): make/new, slice, map and &T{}
//     composite literals, per-iteration func literals and defers,
//     string<->[]byte conversions, string concatenation, and appends onto
//     a freshly constructed slice (`append([]T(nil), ...)` — the
//     clone-per-event shape). Appends that grow a reused buffer
//     (`buf = append(buf, ...)`) are the warm-up idiom the hot paths are
//     built on and stay exempt.
//
// A deliberate allocation (a retained return value, a documented
// once-per-call clone) is annotated `//lint:allow allocflow <reason>` at
// the call site. Dangling //lint:zeroalloc directives — attached to
// anything but a function declaration — are reported, so an annotation
// cannot silently annotate nothing.
var Allocflow = &Analyzer{
	Name:      "allocflow",
	Doc:       "//lint:zeroalloc functions and their static module callees must not allocate on the steady-state path",
	RunModule: runAllocflow,
}

// modulePathPrefix marks packages whose function bodies the closure walk
// may enter; everything else (the standard library) is judged only by the
// watchlist.
const modulePathPrefix = "locind/"

// declSite locates one function declaration in its package.
type declSite struct {
	pkg  *Package
	decl *ast.FuncDecl
}

func runAllocflow(mp *ModulePass) error {
	// Index every function declaration in view by its types.Func object.
	index := map[*types.Func]declSite{}
	for _, pkg := range mp.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					index[fn] = declSite{pkg: pkg, decl: fd}
				}
			}
		}
	}

	// Roots: annotated declarations. Dangling directives are findings.
	type rootInfo struct {
		site   declSite
		symbol string
	}
	var roots []rootInfo
	for _, pkg := range mp.Pkgs {
		decls, consumed := zeroallocDecls(pkg)
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if _, ok := ParseZeroalloc(c.Text); ok && !consumed[c] {
						mp.Reportf(pkg, c.Pos(), "//lint:zeroalloc is not the doc comment of a function declaration; it annotates nothing")
					}
				}
			}
		}
		for fd, sym := range decls {
			roots = append(roots, rootInfo{site: declSite{pkg: pkg, decl: fd}, symbol: sym})
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		a, b := roots[i], roots[j]
		if a.site.pkg.Path != b.site.pkg.Path {
			return a.site.pkg.Path < b.site.pkg.Path
		}
		return a.symbol < b.symbol
	})

	// Breadth-first closure over static module calls. Each function is
	// checked once, attributed to the first root that reaches it.
	type queued struct {
		site declSite
		root string
	}
	visited := map[*ast.FuncDecl]bool{}
	var queue []queued
	for _, r := range roots {
		if !visited[r.site.decl] {
			visited[r.site.decl] = true
			queue = append(queue, queued{site: r.site, root: r.symbol})
		}
	}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		checkZeroallocBody(mp, q.site, q.root)
		ast.Inspect(q.site.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(q.site.pkg.Info, call)
			if fn == nil || !strings.HasPrefix(funcPkgPath(fn), modulePathPrefix) {
				return true
			}
			site, ok := index[fn]
			if !ok || visited[site.decl] {
				return true
			}
			visited[site.decl] = true
			queue = append(queue, queued{site: site, root: q.root})
			return true
		})
	}
	return nil
}

// checkZeroallocBody applies the allocation rules to one closure function.
func checkZeroallocBody(mp *ModulePass, site declSite, root string) {
	pkg, fd := site.pkg, site.decl
	info := pkg.Info
	where := func() string {
		if sym := FuncSymbol(fd); sym != root {
			return sym + " (in the //lint:zeroalloc closure of " + root + ")"
		}
		return "//lint:zeroalloc " + root
	}

	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		perEvent := inPerEventPath(stack)
		switch n := n.(type) {
		case *ast.GoStmt:
			mp.Reportf(pkg, n.Pos(), "go statement in %s: spawning a goroutine allocates", where())
		case *ast.DeferStmt:
			if perEvent {
				mp.Reportf(pkg, n.Pos(), "defer inside the per-event path of %s allocates per iteration", where())
			}
		case *ast.FuncLit:
			if loopDepth(stack) > 0 {
				mp.Reportf(pkg, n.Pos(), "function literal inside a loop in %s: the closure is allocated per iteration", where())
			}
		case *ast.CompositeLit:
			if perEvent && !insideCompositeLit(stack) {
				switch info.Types[n].Type.Underlying().(type) {
				case *types.Slice:
					mp.Reportf(pkg, n.Pos(), "slice literal inside the per-event path of %s allocates per event", where())
				case *types.Map:
					mp.Reportf(pkg, n.Pos(), "map literal inside the per-event path of %s allocates per event", where())
				}
			}
		case *ast.UnaryExpr:
			if perEvent && n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					mp.Reportf(pkg, n.Pos(), "&composite literal inside the per-event path of %s escapes to the heap per event", where())
				}
			}
		case *ast.BinaryExpr:
			if perEvent && n.Op.String() == "+" && isStringType(info.Types[n].Type) && !isConstExpr(info, n) {
				mp.Reportf(pkg, n.Pos(), "string concatenation inside the per-event path of %s allocates per event", where())
			}
		case *ast.CallExpr:
			checkZeroallocCall(mp, site, n, perEvent, where)
		}
		return true
	})
}

// checkZeroallocCall applies the call rules: builtins (make/new/append),
// allocating conversions, and the always-allocates watchlist.
func checkZeroallocCall(mp *ModulePass, site declSite, call *ast.CallExpr, perEvent bool, where func() string) {
	pkg := site.pkg
	info := pkg.Info

	// Builtins and conversions.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && info.Uses[id] != nil {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				// Outside the per-event path make/new is warm-up state
				// (pre-sized buffers, the documented output map) and allowed.
				if perEvent {
					mp.Reportf(pkg, call.Pos(), "%s inside the per-event path of %s allocates per event", id.Name, where())
				}
			case "append":
				if perEvent && len(call.Args) > 0 && freshSliceExpr(info, call.Args[0]) {
					mp.Reportf(pkg, call.Pos(), "append onto a fresh slice inside the per-event path of %s clones per event; reuse a warmed buffer", where())
				}
			}
			return
		}
	}
	if conv, ok := allocatingConversion(info, call); ok && perEvent {
		mp.Reportf(pkg, call.Pos(), "%s conversion inside the per-event path of %s allocates per event", conv, where())
		return
	}

	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	if reason := alwaysAllocates(fn); reason != "" {
		mp.Reportf(pkg, call.Pos(), "%s in %s: %s", calleeLabel(fn), where(), reason)
	}
}

// inPerEventPath reports whether the current node (with ancestor stack)
// sits on the per-event path: inside a for/range loop, or inside a
// function literal (callbacks handed to replay loops run once per event; a
// literal that runs once is the rare case and earns an //lint:allow).
func inPerEventPath(stack []ast.Node) bool {
	if loopDepth(stack) > 0 {
		return true
	}
	for _, a := range stack {
		if _, ok := a.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// loopDepth counts for/range ancestors of the current node.
func loopDepth(stack []ast.Node) int {
	depth := 0
	for _, a := range stack {
		switch a.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
		}
	}
	return depth
}

// insideCompositeLit reports whether the direct parent is itself a
// composite literal (nested element literals are part of one allocation,
// not extra ones).
func insideCompositeLit(stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	_, ok := stack[len(stack)-1].(*ast.CompositeLit)
	return ok
}

// freshSliceExpr reports whether e constructs a brand-new slice: a
// composite literal, a make call, or a `[]T(nil)`-style conversion —
// append onto any of these allocates unconditionally.
func freshSliceExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return id.Name == "make"
			}
		}
		// Conversion to a slice type.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			_, isSlice := tv.Type.Underlying().(*types.Slice)
			return isSlice
		}
	}
	return false
}

// allocatingConversion recognizes string<->[]byte/[]rune conversions.
func allocatingConversion(info *types.Info, call *ast.CallExpr) (string, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) == 0 {
		return "", false
	}
	to := tv.Type.Underlying().String()
	from := ""
	if t := info.Types[call.Args[0]].Type; t != nil {
		from = t.Underlying().String()
	}
	switch {
	case to == "string" && (from == "[]byte" || from == "[]rune"):
		return from + "→string", true
	case (to == "[]byte" || to == "[]rune") && from == "string":
		return "string→" + to, true
	}
	return "", false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func calleeLabel(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return lastSegment(funcPkgPath(fn)) + "." + fn.Name()
}

// alwaysAllocates is the watchlist: functions whose every call allocates
// (or boxes arguments into interfaces, which allocates). Returns "" for
// functions not on the list.
func alwaysAllocates(fn *types.Func) string {
	path := funcPkgPath(fn)
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recvName := named.Obj().Name()
			switch {
			case path == "strings" && recvName == "Builder":
				return "strings.Builder grows a heap buffer"
			case path == "strings" && recvName == "Replacer":
				return "strings.Replacer allocates its output"
			case path == "bytes" && recvName == "Buffer" && name == "String":
				return "Buffer.String copies the buffer into a fresh string"
			}
		}
		return ""
	}
	switch path {
	case "fmt":
		return "fmt formatting allocates and boxes every argument into ...any"
	case "regexp", "reflect":
		return path + " is never allocation-free"
	case "errors":
		if name == "New" || name == "Join" {
			return "errors." + name + " allocates a fresh error"
		}
	case "sort":
		switch name {
		case "Slice", "SliceStable", "Sort", "Stable":
			return "sort." + name + " boxes its argument (use a typed slices.SortFunc or a hand-rolled sift)"
		}
	case "slices":
		switch name {
		case "Clone", "Collect", "Sorted", "Concat":
			return "slices." + name + " allocates its result"
		}
	case "maps":
		switch name {
		case "Clone", "Collect":
			return "maps." + name + " allocates its result"
		}
	case "strings":
		switch name {
		case "Join", "Repeat", "Replace", "ReplaceAll", "Split", "SplitN",
			"SplitAfter", "SplitAfterN", "Fields", "FieldsFunc", "Map",
			"ToUpper", "ToLower", "Title", "Clone":
			return "strings." + name + " allocates its result"
		}
	case "bytes":
		switch name {
		case "Clone", "Join", "Repeat", "Split", "SplitN", "SplitAfter",
			"SplitAfterN", "Fields", "ToUpper", "ToLower":
			return "bytes." + name + " allocates its result"
		}
	case "strconv":
		switch name {
		case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "Quote",
			"QuoteRune", "Unquote":
			return "strconv." + name + " allocates its result (the Append variants reuse a buffer)"
		}
	}
	return ""
}
