package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism flags the three ways nondeterminism has actually leaked into
// this repository's simulation results:
//
//  1. Wall-clock reads (time.Now, time.Since) in locind/internal/...
//     packages. Simulated time is an explicit parameter everywhere in the
//     pipeline; reading the host clock makes runs unreproducible.
//  2. Global math/rand state (rand.Intn, rand.Float64, rand.Seed, ...).
//     Every simulation draws from a *rand.Rand threaded through its
//     call chain so that a seed fully determines the run.
//  3. Map iteration feeding order-sensitive sinks: a `range` over a map
//     whose body appends to a slice (without a subsequent sort), sends on a
//     channel, or draws from an RNG. This is the exact shape of the
//     topology.PreferentialAttachment regression, where per-node RNG draws
//     followed map order and every run grew a different graph.
//  4. Ordering or branching decisions keyed on trace identity
//     (obs.TraceContext IDs, Span.ID) in locind/internal/... packages.
//     Span IDs exist only when a tracer is attached, so a comparison on
//     one makes results differ between instrumented and bare runs —
//     exactly what the obs-on == obs-off invariant forbids. The obs
//     package itself is exempt: assembling the causal tree is the one
//     legitimate consumer of span-ID equality.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "wall-clock reads, global math/rand state, map-iteration order, and trace-identity decisions leaking into simulation output",
	Run:  runDeterminism,
}

// globalRandFuncs are the package-level math/rand (and math/rand/v2)
// functions that consume hidden process-wide state.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"IntN": true, "Uint32": true, "Uint64": true, "Uint64N": true,
	"UintN": true, "Uint": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true, "N": true,
}

func isRandPkg(path string) bool { return path == "math/rand" || path == "math/rand/v2" }

// isComparisonOp reports whether op orders or equates two values — the
// decision shapes that must never consume trace identity.
func isComparisonOp(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

func runDeterminism(p *Pass) error {
	simulation := moduleInternal(p.Pkg.Path())
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p.TypesInfo, n)
				if fn == nil {
					return true
				}
				path, name := funcPkgPath(fn), fn.Name()
				if simulation && path == "time" && (name == "Now" || name == "Since") {
					p.Reportf(n.Pos(), "time.%s reads the wall clock in a simulation package; thread simulated time (or a clock) through parameters", name)
				}
				if isRandPkg(path) && fn.Type().(*types.Signature).Recv() == nil && globalRandFuncs[name] {
					p.Reportf(n.Pos(), "rand.%s draws from global process-wide state; thread a *rand.Rand derived from the run seed", name)
				}
			case *ast.BinaryExpr:
				if simulation && p.Pkg.Path() != obsPkgPath && isComparisonOp(n.Op) {
					if from := traceIdentity(p, n.X); from != "" {
						p.Reportf(n.Pos(), "decision keyed on trace identity %s differs between instrumented and bare runs; key it on domain values instead", from)
					} else if from := traceIdentity(p, n.Y); from != "" {
						p.Reportf(n.Pos(), "decision keyed on trace identity %s differs between instrumented and bare runs; key it on domain values instead", from)
					}
				}
			case *ast.RangeStmt:
				checkMapRange(p, n, stack)
			}
			return true
		})
	}
	return nil
}

// checkMapRange looks inside a range-over-map body for the order-sensitive
// sinks described on Determinism.
func checkMapRange(p *Pass, rng *ast.RangeStmt, stack []ast.Node) {
	t := p.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	fn := enclosingFunc(stack)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "channel send inside range over map: the receiver observes random order; iterate sorted keys instead")
		case *ast.CallExpr:
			switch callee := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if b, ok := p.TypesInfo.Uses[callee].(*types.Builtin); ok && b.Name() == "append" && len(n.Args) > 0 {
					obj := identObject(p.TypesInfo, n.Args[0])
					if obj != nil && sortedAfter(p, fn, rng, obj) {
						return true // collect-then-sort idiom: deterministic
					}
					p.Reportf(n.Pos(), "append inside range over map records map iteration order; sort the slice afterwards or iterate sorted keys")
				}
			}
			if fn := calleeFunc(p.TypesInfo, n); fn != nil {
				if isRandPkg(funcPkgPath(fn)) {
					p.Reportf(n.Pos(), "RNG draw inside range over map consumes randomness in map iteration order (the PreferentialAttachment regression); iterate sorted keys instead")
				}
			}
		}
		return true
	})
}

// sortedAfter reports whether obj is passed to a sorting call after the
// range statement but inside the same function — the standard
// collect-keys-then-sort idiom, which is deterministic. A sorting call is
// anything in sort/slices, or a same-package helper whose body itself calls
// into sort/slices (one level deep).
func sortedAfter(p *Pass, fn ast.Node, rng *ast.RangeStmt, obj types.Object) bool {
	if fn == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		callee := calleeFunc(p.TypesInfo, call)
		if callee == nil || !isSortFunc(p, callee) {
			return true
		}
		for _, arg := range call.Args {
			if identObject(p.TypesInfo, arg) == obj {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

func isSortFunc(p *Pass, fn *types.Func) bool {
	switch funcPkgPath(fn) {
	case "sort", "slices":
		return true
	}
	if fn.Pkg() != p.Pkg {
		return false
	}
	// Same-package helper: accept it if its body delegates to sort/slices.
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || p.TypesInfo.Defs[fd.Name] != fn || fd.Body == nil {
				continue
			}
			delegates := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if inner := calleeFunc(p.TypesInfo, call); inner != nil {
						switch funcPkgPath(inner) {
						case "sort", "slices":
							delegates = true
							return false
						}
					}
				}
				return true
			})
			return delegates
		}
	}
	return false
}
