package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzDirectiveParsers throws arbitrary comment text at the two directive
// parsers and checks their structural invariants: no panics, positive
// matches only on genuine prefixes, and notes round-tripping through
// whitespace trimming.
func FuzzDirectiveParsers(f *testing.F) {
	f.Add("//lint:zeroalloc per event")
	f.Add("//lint:zeroalloc")
	f.Add("//lint:zeroallocate not this directive")
	f.Add("//lint:allow errflow reason")
	f.Add("//lint:file-allow all because")
	f.Add("//lint:package-allow lockflow\ttab separated")
	f.Add("// plain comment mentioning //lint:zeroalloc mid-text")
	f.Add("//lint:")
	f.Fuzz(func(t *testing.T, text string) {
		note, ok := ParseZeroalloc(text)
		if ok {
			if !strings.HasPrefix(text, "//lint:zeroalloc") {
				t.Fatalf("ParseZeroalloc accepted %q without the directive prefix", text)
			}
			if note != strings.TrimSpace(note) {
				t.Fatalf("ParseZeroalloc(%q) returned untrimmed note %q", text, note)
			}
			// A note must round-trip: re-spelling the directive with the
			// parsed note yields the same note.
			if note2, ok2 := ParseZeroalloc("//lint:zeroalloc " + note); !ok2 || note2 != note {
				t.Fatalf("note %q does not round-trip (got %q, %v)", note, note2, ok2)
			}
		} else if strings.HasPrefix(text, "//lint:zeroalloc ") {
			t.Fatalf("ParseZeroalloc rejected well-formed directive %q", text)
		}

		kind, _, ok := cutDirective(text)
		if ok {
			switch kind {
			case "allow", "file-allow", "package-allow":
			default:
				t.Fatalf("cutDirective(%q) returned unknown kind %q", text, kind)
			}
			if !strings.HasPrefix(text, "//lint:"+kind) {
				t.Fatalf("cutDirective(%q) = %q without matching prefix", text, kind)
			}
		}

		// A fuzzed comment embedded in a real file must never panic the
		// syntax-level annotation scanner, and any annotation it finds must
		// name the only function in the file.
		line := strings.NewReplacer("\n", " ", "\r", " ").Replace(text)
		src := "package p\n\n//" + line + "\nfunc F() {}\n"
		file, err := parser.ParseFile(token.NewFileSet(), "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return // not every mangled comment yields a parseable file
		}
		for _, af := range ZeroallocFuncs(file) {
			if af.Symbol != "F" {
				t.Fatalf("annotation resolved to symbol %q, want F", af.Symbol)
			}
		}
	})
}
