package lint

import (
	"go/ast"
)

// Seedflow polices how *rand.Rand generators are seeded:
//
//   - A seed derived from the wall clock or process state (time.Now,
//     os.Getpid, crypto/rand) is flagged everywhere: such a generator can
//     never replay a run, which defeats the repository's bit-for-bit
//     reproducibility contract.
//   - A seed derived from trace identity (obs.TraceContext IDs, Span.ID)
//     is flagged everywhere: span IDs are deterministic but exist only
//     when a tracer is attached, so such a seed silently couples results
//     to whether observability is enabled (DESIGN.md §8's obs-on ==
//     obs-off invariant).
//   - In locind/internal/... library packages, a seed that is a bare
//     compile-time constant is also flagged: a library that hard-codes its
//     seed hides the replay handle from its caller. Seeds must arrive
//     through a parameter or a struct field (cmd/ binaries and examples/
//     are exempt — a fixed literal seed at the top of a demo is exactly how
//     a reproducible entry point should look).
var Seedflow = &Analyzer{
	Name: "seedflow",
	Doc:  "rand.Rand seeds must be derived from a parameter or struct field, never the wall clock",
	Run:  runSeedflow,
}

// seedConstructors maps rand-source constructors to the indices of their
// seed arguments.
var seedConstructors = map[string][]int{
	"NewSource":  {0},    // math/rand
	"NewPCG":     {0, 1}, // math/rand/v2
	"NewChaCha8": {0},    // math/rand/v2
}

func runSeedflow(p *Pass) error {
	library := moduleInternal(p.Pkg.Path())
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.TypesInfo, call)
			if fn == nil || !isRandPkg(funcPkgPath(fn)) {
				return true
			}
			argIdxs, ok := seedConstructors[fn.Name()]
			if !ok {
				return true
			}
			for _, i := range argIdxs {
				if i >= len(call.Args) {
					continue
				}
				arg := call.Args[i]
				if from := nondeterministicSource(p, arg); from != "" {
					p.Reportf(arg.Pos(), "seed derived from %s can never replay a run; derive it from a parameter or struct field", from)
					continue
				}
				if from := traceIdentity(p, arg); from != "" {
					p.Reportf(arg.Pos(), "seed derived from trace identity %s couples results to whether tracing is enabled; trace context must never feed seeds", from)
					continue
				}
				if library && p.TypesInfo.Types[arg].Value != nil {
					p.Reportf(arg.Pos(), "constant seed in library code hides the replay handle from callers; derive it from a parameter or struct field")
				}
			}
			return true
		})
	}
	return nil
}

// nondeterministicSource reports the first wall-clock or process-state call
// found inside expr ("" if none).
func nondeterministicSource(p *Pass, expr ast.Expr) string {
	found := ""
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.TypesInfo, call)
		if fn == nil {
			return true
		}
		switch path, name := funcPkgPath(fn), fn.Name(); {
		case path == "time" && (name == "Now" || name == "Since"):
			found = "time." + name
		case path == "os" && (name == "Getpid" || name == "Getppid"):
			found = "os." + name
		case path == "crypto/rand":
			found = "crypto/rand." + name
		}
		return found == ""
	})
	return found
}
