package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Atomicflow enforces the all-or-nothing rule of sync/atomic: a variable or
// field that is accessed through atomic.Add/Load/Store/Swap/CompareAndSwap
// anywhere must be accessed atomically everywhere. A single plain read
// beside an atomic increment is a data race the race detector only catches
// when the schedule cooperates — the static check catches it on every run.
//
// The modern fix is almost always to migrate the field to a typed atomic
// (atomic.Int64, atomic.Pointer[T]) as internal/obs and internal/par do,
// which makes non-atomic access unrepresentable; this analyzer exists for
// the legacy pointer-passing form that still compiles.
//
// Scope is per package: a field atomically accessed in one package and
// plainly accessed in another would be missed, but this module keeps field
// access within the declaring package.
var Atomicflow = &Analyzer{
	Name: "atomicflow",
	Doc:  "any variable accessed via sync/atomic must be accessed atomically everywhere",
	Run:  runAtomicflow,
}

func runAtomicflow(p *Pass) error {
	// Pass 1: collect every object whose address is taken as the first
	// argument of a sync/atomic call, and every ident position that appears
	// inside any sync/atomic call (those are the sanctioned uses).
	atomicObjs := map[types.Object]string{} // object -> atomic func name seen
	sanctioned := map[*ast.Ident]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.TypesInfo, call)
			if fn == nil || funcPkgPath(fn) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						sanctioned[id] = true
					}
					return true
				})
			}
			if len(call.Args) == 0 {
				return true
			}
			if un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && un.Op == token.AND {
				if obj := identObject(p.TypesInfo, un.X); obj != nil {
					if _, isVar := obj.(*types.Var); isVar {
						atomicObjs[obj] = fn.Name()
					}
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: every other use of those objects must itself be sanctioned.
	// Declarations, composite-literal field keys, and further
	// address-taking for atomic calls are fine; plain reads and writes are
	// the race.
	type finding struct {
		id  *ast.Ident
		obj types.Object
	}
	var findings []finding
	for _, f := range p.Files {
		if isTestFile(p, f) {
			// Tests may read counters after goroutines join; the invariant
			// worth enforcing is in the production code.
			continue
		}
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			if _, tracked := atomicObjs[obj]; !tracked {
				return true
			}
			if sanctioned[id] || isCompositeKey(id, stack) {
				return true
			}
			findings = append(findings, finding{id: id, obj: obj})
			return true
		})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].id.Pos() < findings[j].id.Pos() })
	for _, f := range findings {
		p.Reportf(f.id.Pos(), "%s is updated with atomic.%s elsewhere but read or written plainly here; mixing atomic and plain access is a data race — migrate to a typed atomic (atomic.Int64 etc.)",
			f.obj.Name(), atomicObjs[f.obj])
	}
	return nil
}

// isCompositeKey reports whether id is the key of a composite-literal
// key/value pair (Field: value), which names the field rather than
// accessing the variable.
func isCompositeKey(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	// The stack excludes id itself, so its parent is the last element.
	kv, ok := stack[len(stack)-1].(*ast.KeyValueExpr)
	return ok && kv.Key == id
}
