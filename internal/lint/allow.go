package lint

import (
	"fmt"
	"strings"
)

// Suppression directives.
//
//	//lint:allow <check> <reason>          suppress <check> on this line and the next
//	//lint:file-allow <check> <reason>     suppress <check> in this file
//	//lint:package-allow <check> <reason>  suppress <check> in this package
//
// A //lint:allow written in the package doc comment (or anywhere above the
// package clause) is promoted to package scope. <check> is an analyzer name
// or "all". The reason is mandatory: a directive with no justification is
// itself reported as a finding (check "lintdirective"), so suppressions
// cannot accumulate without explanation.

const directiveCheck = "lintdirective"

var knownChecks = map[string]bool{
	"determinism": true,
	"seedflow":    true,
	"errflow":     true,
	"ctxflow":     true,
	"allocflow":   true,
	"lockflow":    true,
	"atomicflow":  true,
	"all":         true,
}

type lineKey struct {
	file  string
	line  int
	check string
}

type allowIndex struct {
	pkg   map[string]bool            // check -> package-wide allow
	files map[string]map[string]bool // filename -> check set
	lines map[lineKey]bool
}

func (ai *allowIndex) suppressed(d Diagnostic) bool {
	if d.Check == directiveCheck {
		return false
	}
	for _, check := range []string{d.Check, "all"} {
		if ai.pkg[check] {
			return true
		}
		if ai.files[d.Pos.Filename][check] {
			return true
		}
		if ai.lines[lineKey{d.Pos.Filename, d.Pos.Line, check}] {
			return true
		}
	}
	return false
}

// collectAllows scans every comment in the package for lint directives and
// returns the suppression index plus diagnostics for malformed directives.
func collectAllows(pkg *Package) (*allowIndex, []Diagnostic) {
	ai := &allowIndex{
		pkg:   map[string]bool{},
		files: map[string]map[string]bool{},
		lines: map[lineKey]bool{},
	}
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		pos := pkg.Fset.Position(f.Package)
		filename, pkgLine := pos.Filename, pos.Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				kind, rest, ok := cutDirective(c.Text)
				if !ok {
					// A //lint: comment that is neither an allow form nor a
					// zeroalloc annotation is a typo'd directive: report it,
					// or it would silently annotate nothing.
					if _, zok := ParseZeroalloc(c.Text); !zok && strings.HasPrefix(c.Text, "//lint:") {
						malformed = append(malformed, Diagnostic{
							Pos: pkg.Fset.Position(c.Pos()), Check: directiveCheck,
							Message: fmt.Sprintf("unknown //lint: directive %q", firstField(c.Text)),
						})
					}
					continue
				}
				cpos := pkg.Fset.Position(c.Pos())
				check, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				reason = strings.TrimSpace(reason)
				switch {
				case !knownChecks[check]:
					malformed = append(malformed, Diagnostic{Pos: cpos, Check: directiveCheck,
						Message: fmt.Sprintf("//lint:%s names unknown check %q", kind, check)})
					continue
				case reason == "":
					malformed = append(malformed, Diagnostic{Pos: cpos, Check: directiveCheck,
						Message: "//lint:" + kind + " " + check + " needs a reason"})
					continue
				}
				switch {
				case kind == "package-allow", kind == "allow" && cpos.Line < pkgLine:
					ai.pkg[check] = true
				case kind == "file-allow":
					fileSet(ai.files, filename)[check] = true
				default: // line scope: the directive's line and the one below
					ai.lines[lineKey{filename, cpos.Line, check}] = true
					ai.lines[lineKey{filename, cpos.Line + 1, check}] = true
				}
			}
		}
	}
	return ai, malformed
}

func cutDirective(text string) (kind, rest string, ok bool) {
	const prefix = "//lint:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	body := text[len(prefix):]
	for _, k := range []string{"package-allow", "file-allow", "allow"} {
		if r, found := strings.CutPrefix(body, k); found && (r == "" || r[0] == ' ' || r[0] == '\t') {
			return k, r, true
		}
	}
	return "", "", false
}

// firstField returns the directive head (up to the first space) for error
// messages, so a long trailing comment does not flood the diagnostic.
func firstField(text string) string {
	if i := strings.IndexAny(text, " \t"); i >= 0 {
		return text[:i]
	}
	return text
}

func fileSet(m map[string]map[string]bool, file string) map[string]bool {
	s, ok := m[file]
	if !ok {
		s = map[string]bool{}
		m[file] = s
	}
	return s
}
