package lint_test

import (
	"testing"

	"locind/internal/lint"
	"locind/internal/lint/linttest"
)

func TestLockflow(t *testing.T) {
	linttest.Run(t, "testdata/lockflow", lint.Lockflow,
		"locind/internal/lockfix", "locind/internal/lockdirty")
}
