package exptfix

import "locind/internal/stats"

// Test files are exempt from errflow: a test that deliberately ignores an
// error to exercise a degenerate input is the test author's business.
func pearsonOrZero(xs, ys []float64) float64 {
	r, _ := stats.Pearson(xs, ys)
	return r
}
