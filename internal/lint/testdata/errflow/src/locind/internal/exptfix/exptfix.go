// Package exptfix is an errflow golden fixture shaped like the expt
// drivers: code that computes statistics and writes result files, where a
// swallowed error silently corrupts a published figure.
package exptfix

import (
	"fmt"
	"io"
	"os"

	"locind/internal/stats"
)

// Sensitivity is the RunSensitivity regression shape: the blanked Pearson
// error zeroes the correlation and the caller publishes the zero.
func Sensitivity(xs, ys []float64) float64 {
	r, _ := stats.Pearson(xs, ys) // want `error discarded with blank identifier`
	return r
}

// Dump drops a watched io error used as a bare statement.
func Dump(w io.Writer, data []byte) {
	w.Write(data) // want `io\.Write returns an error that is discarded here`
}

// Report prints to a destination whose Write can actually fail.
func Report(f *os.File, r float64) {
	fmt.Fprintf(f, "r=%g\n", r) // want `fmt\.Fprintf returns an error that is discarded here`
}

// Finish discards the one error a write-path Close reports.
func Finish(f *os.File) {
	_ = f.Close() // want `error discarded with blank identifier`
}
