package exptfix

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// Render writes to an in-memory buffer, which cannot fail: errflow stays
// quiet on Fprintf calls whose destination never errors.
func Render(rows []float64) string {
	var b bytes.Buffer
	for _, r := range rows {
		fmt.Fprintf(&b, "%g\n", r)
	}
	return b.String()
}

// ReadAll defers Close on a read path — accepted Go, exempt by rule.
func ReadAll(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// Banner writes to os.Stdout, conventionally unchecked.
func Banner() {
	fmt.Fprintln(os.Stdout, "exptfix")
}

// Export shows the sanctioned discard: annotated, with the reason inline.
func Export(f *os.File, rows []float64) error {
	if err := fill(f, rows); err != nil {
		f.Close() //lint:allow errflow the fill error is the one worth reporting
		return err
	}
	return f.Close()
}

func fill(f *os.File, rows []float64) error {
	for _, r := range rows {
		if _, err := fmt.Fprintf(f, "%g\n", r); err != nil {
			return err
		}
	}
	return nil
}
