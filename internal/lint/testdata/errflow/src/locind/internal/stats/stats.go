// Package stats is a fixture stub standing in for the real
// locind/internal/stats: errflow watches that import path, and the golden
// test needs the RunSensitivity regression shape — a swallowed Pearson
// error — to fire against it without dragging the real package into the
// fixture tree.
package stats

import "errors"

var errDegenerate = errors.New("stats: degenerate input")

// Pearson mimics the real signature: the error is the only signal that the
// returned correlation is meaningless.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, errDegenerate
	}
	return 1, nil
}
