// Package obsfix is the errflow golden fixture for instrumented code: the
// obs flight recorder is a sanctioned error-free sink, so progress lines
// logged into it need no error ceremony — while the same Fprintf aimed at
// a real file still fires.
package obsfix

import (
	"fmt"
	"os"

	"locind/internal/obs"
)

// Progress logs milestones into the flight recorder. *obs.Ring writes
// cannot fail, so errflow stays quiet.
func Progress(ring *obs.Ring, done, total int) {
	fmt.Fprintf(ring, "progress %d/%d\n", done, total)
	fmt.Fprintln(ring, "checkpoint")
}

// Persist writes the same line to a real file, which can fail: the exact
// shape that stays exempt for the Ring fires here.
func Persist(f *os.File, done, total int) {
	fmt.Fprintf(f, "progress %d/%d\n", done, total) // want `fmt\.Fprintf returns an error that is discarded here`
}

// PropagateHop logs an incoming trace context into the flight recorder —
// the cross-process propagation idiom: the hop is recorded best-effort, so
// it gets the same error-free exemption as any other Ring write.
func PropagateHop(ring *obs.Ring, tc obs.TraceContext) {
	fmt.Fprintf(ring, "hop trace=%s\n", tc.Encode())
}

// PersistHop writes the identical hop line to a real file: outside the
// Ring the error matters again.
func PersistHop(f *os.File, tc obs.TraceContext) {
	fmt.Fprintf(f, "hop trace=%s\n", tc.Encode()) // want `fmt\.Fprintf returns an error that is discarded here`
}
