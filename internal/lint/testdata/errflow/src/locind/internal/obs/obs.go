// Package obs is a fixture stub standing in for the real
// locind/internal/obs: errflow exempts writes to *obs.Ring (the flight
// recorder documents that Write always reports full success), and the
// golden test needs the type at its real import path for typeString to
// render "*locind/internal/obs.Ring".
package obs

// Ring mimics the real flight recorder's Writer contract.
type Ring struct{}

// Write always reports full success, like the real recorder.
func (r *Ring) Write(p []byte) (int, error) { return len(p), nil }

// Counter mimics the nil-safe metric handle.
type Counter struct{ v int64 }

// Inc records one, a no-op on nil.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// TraceContext mimics the propagated trace identity.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Encode renders the wire form carried in request framing.
func (tc TraceContext) Encode() string { return "tc" }
