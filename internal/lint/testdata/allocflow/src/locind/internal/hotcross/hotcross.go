// Package hotcross exercises the closure walk: the annotated root is
// clean, but it statically calls into a sibling module package whose helper
// allocates — the finding must land in the callee, attributed to this root.
package hotcross

import "locind/internal/hotleaf"

// Drive replays events through the leaf helper.
//
//lint:zeroalloc per event
func Drive(events []int) int {
	total := 0
	for _, e := range events {
		total += hotleaf.Scale(e)
	}
	return total
}
