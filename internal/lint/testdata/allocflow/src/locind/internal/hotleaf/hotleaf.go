// Package hotleaf is the unannotated callee of hotcross: it has no
// //lint:zeroalloc of its own, yet its fmt call is flagged because a root
// in another package reaches it through the static call graph.
package hotleaf

import "fmt"

// Scale converts one event weight.
func Scale(e int) int {
	if e < 0 {
		panic(fmt.Sprintf("negative event %d", e)) // want `Sprintf in Scale \(in the //lint:zeroalloc closure of Drive\)`
	}
	return e * 2
}
