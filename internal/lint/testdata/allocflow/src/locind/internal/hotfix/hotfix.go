// Package hotfix is the clean arm of the allocflow fixtures: annotated hot
// paths written in the idioms the analyzer must stay quiet about — warm-up
// allocation outside loops, self-appends that grow a reused buffer, and a
// deliberate once-per-call clone suppressed in place.
package hotfix

import "slices"

// Table accumulates per-event state with reusable buffers.
type Table struct {
	buf []int
	out map[string][]int
}

// Reset warms the table. Allocation here is setup, not steady state.
//
//lint:zeroalloc after warm-up
func (t *Table) Reset(n int) {
	if t.out == nil {
		t.out = make(map[string][]int, n)
	}
	t.buf = make([]int, 0, n)
}

// Apply is the steady-state path: it only grows the reused buffer.
//
//lint:zeroalloc per event
func (t *Table) Apply(events []int) int {
	t.buf = t.buf[:0]
	total := 0
	for _, e := range events {
		t.buf = append(t.buf, e)
		total += e
	}
	return total
}

// Snapshot hands out one documented copy per call.
//
//lint:zeroalloc aside from the returned copy
func (t *Table) Snapshot() []int {
	return slices.Clone(t.buf) //lint:allow allocflow the returned copy is the function's contract
}
