// Package hotdirty is the dirty arm of the allocflow fixtures: one
// annotated function committing every per-event allocation idiom the
// analyzer must flag.
package hotdirty

import (
	"fmt"
	"strings"
)

// Table pretends to be a hot path and is anything but.
type Table struct {
	buf []int
}

// Process replays events into the table.
//
//lint:zeroalloc per event
func (t *Table) Process(events []int) string {
	total := 0
	for _, e := range events {
		m := make(map[int]bool, 1) // want `make inside the per-event path of //lint:zeroalloc Table.Process`
		m[e] = true
		ids := []int{e}                     // want `slice literal inside the per-event path`
		fresh := append([]int(nil), ids...) // want `append onto a fresh slice inside the per-event path`
		total += fresh[0]
		s := fmt.Sprintf("%d", e) // want `fmt formatting allocates and boxes`
		s2 := s + "!"             // want `string concatenation inside the per-event path`
		b := []byte(s2)           // want `string→\[\]byte conversion inside the per-event path`
		total += len(b)
		box := &Table{} // want `&composite literal inside the per-event path`
		_ = box
		defer func() { total++ }() // want `defer inside the per-event path` `function literal inside a loop`
	}
	go func() { total++ }()           // want `go statement in //lint:zeroalloc Table.Process`
	return strings.Repeat("x", total) // want `strings.Repeat allocates its result`
}

//lint:zeroalloc dangling: attached to a var, not a function // want `annotates nothing`
var sink int
