// Package reliable is the package-allow showcase: a directive above the
// package clause is promoted to package scope, so every ctxflow finding in
// the package is suppressed with one stated reason.
//
//lint:allow ctxflow fixture retry loops are bounded by attempt count, not deadline
package reliable

import "net"

// Retry would be a ctxflow finding (net.Dial, no context) without the
// package-scope allow above.
func Retry(addr string) error {
	var lastErr error
	for i := 0; i < 3; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			lastErr = err
			continue
		}
		return c.Close()
	}
	return lastErr
}
