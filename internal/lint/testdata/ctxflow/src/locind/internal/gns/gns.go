// Package gns is a ctxflow golden fixture named after a gated service
// package: exported entry points that spawn goroutines or touch the
// network must take a context.Context first.
package gns

import (
	"context"
	"net"
)

// Serve spawns the accept loop with no way for callers to stop it.
func Serve(ln net.Listener) { // want `exported Serve spawns goroutines but its first parameter is not a context\.Context`
	go func() {
		for {
			if _, err := ln.Accept(); err != nil {
				return
			}
		}
	}()
}

// Probe dials without a context, so callers cannot bound the connect.
func Probe(addr string) error { // want `exported Probe does network I/O \(net\.Dial\) but its first parameter is not a context\.Context`
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return c.Close()
}

// ServeCtx is the sanctioned shape: the context arrives first and bounds
// the goroutine's lifetime.
func ServeCtx(ctx context.Context, ln net.Listener) {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
}

// Addr is pure bookkeeping: Close/Addr-style verbs are not I/O and need no
// context.
func Addr(ln net.Listener) string { return ln.Addr().String() }

// probe is unexported, so it is not an entry point the analyzer gates.
func probe(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return c.Close()
}
