// Package otherfix lies outside the gated service packages (gns, nomad,
// vantage, reliable): spawning goroutines without a context is allowed
// here, and ctxflow must stay quiet.
package otherfix

import "sync"

// Fan runs n workers to completion; the WaitGroup bounds them.
func Fan(n int, work func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}
