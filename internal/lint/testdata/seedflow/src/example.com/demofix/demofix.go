// Package demofix stands in for a cmd/ binary or example: a fixed literal
// seed at the top of a demo is exactly how a reproducible entry point
// should look, so the constant-seed rule stays quiet here. Wall-clock
// seeding is still flagged: it is unreplayable no matter where it lives.
package demofix

import (
	"math/rand"
	"time"
)

// Demo pins its seed; every invocation replays the same run.
func Demo() *rand.Rand { return rand.New(rand.NewSource(1)) }

// Drift reseeds from the clock, losing the replay handle even in a demo.
func Drift() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seed derived from time\.Now can never replay a run`
}
