// Package obs is a fixture stub standing in for the real
// locind/internal/obs: seedflow flags trace identity feeding a seed, and
// the golden test needs TraceContext and Span at their real import path
// for the type checks to recognise them.
package obs

// TraceContext mimics the propagated trace identity: both IDs exist only
// when a tracer is attached upstream.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Span mimics the recorded span handle.
type Span struct{ id uint64 }

// ID returns the span's identifier (zero on nil, like the real no-op).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}
