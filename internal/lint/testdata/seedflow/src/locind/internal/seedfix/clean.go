package seedfix

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// FromParam is the sanctioned shape: the caller owns the seed and can
// replay the run.
func FromParam(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Config carries the seed as a field, the other sanctioned provenance.
type Config struct{ Seed int64 }

// FromField derives the generator from configuration.
func (c Config) FromField() *rand.Rand {
	return rand.New(rand.NewSource(c.Seed))
}

// PCG threads both seed words from the caller.
func PCG(seed1, seed2 uint64) *randv2.Rand {
	return randv2.New(randv2.NewPCG(seed1, seed2))
}
