// Package seedfix is a seedflow golden fixture shaped like a simulation
// library: generators here must be seeded from a caller-supplied value so
// any run can be replayed bit-for-bit.
package seedfix

import (
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"time"

	"locind/internal/obs"
)

// FromClock seeds from the wall clock: unreplayable anywhere in the module.
func FromClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seed derived from time\.Now can never replay a run`
}

// FromPid mixes process state into the seed.
func FromPid() *rand.Rand {
	return rand.New(rand.NewSource(int64(os.Getpid()))) // want `seed derived from os\.Getpid can never replay a run`
}

// Hardcoded hides the replay handle inside a library.
func Hardcoded() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `constant seed in library code hides the replay handle`
}

// PCGFromClock shows both rules on the v2 constructor, whose two seed words
// are checked independently.
func PCGFromClock() *randv2.Rand {
	return randv2.New(randv2.NewPCG(uint64(time.Now().UnixNano()), 2)) // want `seed derived from time\.Now` `constant seed in library code`
}

// FromTraceContext seeds from the propagated trace identity: the IDs are
// deterministic, but they exist only when tracing is enabled, so the run
// would differ between instrumented and bare executions.
func FromTraceContext(tc obs.TraceContext) *rand.Rand {
	return rand.New(rand.NewSource(int64(tc.TraceID))) // want `seed derived from trace identity TraceContext\.TraceID`
}

// FromSpanID is the same leak through the span handle.
func FromSpanID(sp *obs.Span) *rand.Rand {
	return rand.New(rand.NewSource(int64(sp.ID()))) // want `seed derived from trace identity Span\.ID\(\)`
}
