// Package lockdirty is the dirty arm of the lockflow fixtures: lock
// copies, blocking operations under a held mutex, a self-deadlock, and an
// AB/BA acquisition-order inversion.
package lockdirty

import (
	"sync"
	"time"
)

// Reg guards a map and a channel.
type Reg struct {
	mu    sync.Mutex
	ready chan int
	vals  map[string]int
}

// Snapshot copies the registry — and its mutex — by value.
func Snapshot(r Reg) int { // want `Snapshot parameter copies sync.Mutex by value`
	return len(r.vals)
}

// Len has a by-value receiver, forking the lock state on every call.
func (r Reg) Len() int { // want `Reg.Len receiver copies sync.Mutex by value`
	return len(r.vals)
}

// Wait sleeps with the lock held.
func (r *Reg) Wait() {
	r.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep called while holding r.mu`
	r.mu.Unlock()
}

// Push sends on a channel under a deferred unlock.
func (r *Reg) Push(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ready <- v // want `channel send while holding r.mu`
}

// Again locks a mutex it already holds.
func (r *Reg) Again() {
	r.mu.Lock()
	r.mu.Lock() // want `r.mu locked again while already held`
	r.mu.Unlock()
	r.mu.Unlock()
}

// Copy duplicates a live registry through a pointer dereference.
func Copy(r *Reg) {
	s := *r // want `assignment copies a value containing sync.Mutex`
	_ = s
}

// Sum iterates a slice of registries by value.
func Sum(regs []Reg) int {
	n := 0
	for _, r := range regs { // want `range copies elements containing sync.Mutex`
		n += len(r.vals)
	}
	return n
}

// Pair is locked a-then-b in AB but b-then-a in BA.
type Pair struct {
	a, b sync.Mutex
}

func (p *Pair) AB() {
	p.a.Lock()
	p.b.Lock() // want `lock order inversion: Pair.b is acquired while Pair.a is held`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *Pair) BA() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}
