// Package lockfix is the clean arm of the lockflow fixtures: short
// critical sections, blocking work done after release, and a lock order
// that is the same at every acquisition site.
package lockfix

import (
	"sync"
	"time"
)

// Reg guards a map with a narrowly scoped mutex.
type Reg struct {
	mu   sync.Mutex
	vals map[string]int
}

// Get holds the lock only around the map read.
func (r *Reg) Get(k string) int {
	r.mu.Lock()
	v := r.vals[k]
	r.mu.Unlock()
	time.Sleep(time.Millisecond) // after release: not a finding
	return v
}

// Set uses defer but performs no blocking work under the lock.
func (r *Reg) Set(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.vals == nil {
		r.vals = make(map[string]int)
	}
	r.vals[k] = v
}

// Pair takes its two locks in the same order everywhere.
type Pair struct {
	a, b sync.Mutex
	n    int
}

func (p *Pair) Inc() {
	p.a.Lock()
	p.b.Lock()
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}

func (p *Pair) Dec() {
	p.a.Lock()
	p.b.Lock()
	p.n--
	p.b.Unlock()
	p.a.Unlock()
}
