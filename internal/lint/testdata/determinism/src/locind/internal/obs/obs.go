// Package obs is a fixture stub standing in for the real
// locind/internal/obs, proving the obs idiom itself is determinism-clean:
// metric handles do no clock reads and no RNG draws, and span durations
// come only from an injected clock.
package obs

import "time"

// Counter mimics the nil-safe metric handle.
type Counter struct{ v int64 }

// Inc records one, a no-op on nil.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Tracer mimics the deterministic tracer: the only time source is the
// injected now func.
type Tracer struct {
	now func() time.Duration
}

// SetNow injects the clock; internal packages leave it nil.
func (t *Tracer) SetNow(now func() time.Duration) {
	if t != nil {
		t.now = now
	}
}

// Start opens a span; its ID depends only on seed and sequence, never on
// the clock.
func (t *Tracer) Start(name string) uint64 {
	if t == nil {
		return 0
	}
	return uint64(len(name)) + 1
}

// TraceContext mimics the propagated trace identity.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Span mimics the recorded span handle.
type Span struct{ id uint64 }

// ID returns the span's identifier (zero on nil, like the real no-op).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SameTrace is the tree-assembly comparison the obs package is exempt for:
// matching spans into one causal tree is the single legitimate consumer of
// trace-identity equality, so the analyzer must stay quiet on this line.
func SameTrace(a, b TraceContext) bool {
	return a.TraceID == b.TraceID
}
