// Package obs is a fixture stub standing in for the real
// locind/internal/obs, proving the obs idiom itself is determinism-clean:
// metric handles do no clock reads and no RNG draws, and span durations
// come only from an injected clock.
package obs

import "time"

// Counter mimics the nil-safe metric handle.
type Counter struct{ v int64 }

// Inc records one, a no-op on nil.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Tracer mimics the deterministic tracer: the only time source is the
// injected now func.
type Tracer struct {
	now func() time.Duration
}

// SetNow injects the clock; internal packages leave it nil.
func (t *Tracer) SetNow(now func() time.Duration) {
	if t != nil {
		t.now = now
	}
}

// Start opens a span; its ID depends only on seed and sequence, never on
// the clock.
func (t *Tracer) Start(name string) uint64 {
	if t == nil {
		return 0
	}
	return uint64(len(name)) + 1
}
