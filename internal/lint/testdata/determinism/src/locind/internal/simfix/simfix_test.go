package simfix

import "time"

// Test files are exempt: benchmarks and tests may read the wall clock.
func wallElapsed(start time.Time) time.Duration { return time.Since(start) }
