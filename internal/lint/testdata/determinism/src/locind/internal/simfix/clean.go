package simfix

import (
	"slices"
	"sort"
	"time"
)

// Keys collects then sorts — the deterministic idiom the analyzer must
// accept even though the append happens inside the map range.
func Keys(deg map[int]int) []int {
	ks := make([]int, 0, len(deg))
	for n := range deg {
		ks = append(ks, n)
	}
	sort.Ints(ks)
	return ks
}

// Values sorts through a same-package helper, which the analyzer follows
// one level deep.
func Values(deg map[int]int) []int {
	vs := make([]int, 0, len(deg))
	for _, v := range deg {
		vs = append(vs, v)
	}
	sortInts(vs)
	return vs
}

func sortInts(xs []int) { slices.Sort(xs) }

// SimTime threads simulated time explicitly; no wall clock involved.
func SimTime(nowNanos int64) int64 { return nowNanos + int64(time.Millisecond) }

// startupStamp is telemetry, not simulation state, and says so.
func startupStamp() int64 {
	//lint:allow determinism startup banner timestamp, not simulation state
	return time.Now().UnixNano()
}
