// Package simfix is a determinism golden fixture shaped like a simulation
// library: every function here is a way nondeterminism has actually leaked
// into this repository's results.
package simfix

import (
	"math/rand"
	"time"
)

// Tick stamps an event with the host clock instead of simulated time.
func Tick() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock in a simulation package`
}

// Jitter draws from the hidden process-wide generator, so no seed can
// replay it.
func Jitter() float64 {
	return rand.Float64() // want `rand\.Float64 draws from global process-wide state`
}

// Degrees is the PreferentialAttachment regression shape: the RNG draw is
// consumed in map iteration order and the result slice records that order,
// so every run grows a different graph from the same seed.
func Degrees(deg map[int]int, rng *rand.Rand) []int {
	var out []int
	for n := range deg {
		out = append(out, n+rng.Intn(3)) // want `append inside range over map` `RNG draw inside range over map`
	}
	return out
}

// Publish streams map entries to a consumer, which observes random order.
func Publish(deg map[int]int, ch chan<- int) {
	for n := range deg {
		ch <- n // want `channel send inside range over map`
	}
}
