// Package simobs is the determinism golden fixture for instrumented
// simulation code: counting into obs handles and opening deterministic
// spans is clean, while reading the wall clock directly in the same
// package still fires — instrumentation must come from injected clocks,
// never from time.Now.
package simobs

import (
	"time"

	"locind/internal/obs"
)

// Step advances one simulation tick, counting into nil-safe obs handles
// and tracing the step. No clock, no RNG: the analyzer stays quiet.
func Step(events *obs.Counter, tr *obs.Tracer, n int) int {
	id := tr.Start("step")
	for i := 0; i < n; i++ {
		events.Inc()
	}
	return n + int(id%2)
}

// Stamp is the contrast line: the same package reaching for the host
// clock is exactly what the obs design forbids.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock in a simulation package`
}

// Forward passes the propagated trace context along unexamined — the
// correct propagation idiom: carry it, encode it, hand it to the tracer,
// never decide anything with it. The analyzer stays quiet.
func Forward(tc obs.TraceContext, deliver func(obs.TraceContext)) {
	deliver(tc)
}

// PickReplica keys a routing decision on the propagated trace identity:
// with tracing off the IDs are zero and a different replica wins, so the
// instrumented and bare runs diverge.
func PickReplica(tc obs.TraceContext, n uint64) uint64 {
	if tc.SpanID > n { // want `decision keyed on trace identity TraceContext\.SpanID`
		return 0
	}
	return 1
}

// FirstSpan orders work by span identity, the same leak through the span
// handle.
func FirstSpan(a, b *obs.Span) *obs.Span {
	if a.ID() < b.ID() { // want `decision keyed on trace identity Span\.ID\(\)`
		return a
	}
	return b
}
