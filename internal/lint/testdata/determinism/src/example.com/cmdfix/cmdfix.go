// Package cmdfix stands in for a cmd/ binary: outside locind/internal/ the
// wall-clock rule does not apply (a CLI may timestamp its output), but the
// global-generator rule still does.
package cmdfix

import (
	"math/rand"
	"time"
)

// Stamp may read the host clock: this is not a simulation package.
func Stamp() int64 { return time.Now().UnixNano() }

// Roll still may not use hidden global state, even in a binary.
func Roll() int {
	return rand.Intn(6) // want `rand\.Intn draws from global process-wide state`
}
