// Package atomfix is the clean arm of the atomicflow fixtures: one counter
// on the typed-atomic form (which makes plain access unrepresentable) and
// one legacy counter that is atomic at every access site.
package atomfix

import "sync/atomic"

// Counter is fully typed-atomic.
type Counter struct {
	n atomic.Int64
}

func (c *Counter) Inc() int64  { return c.n.Add(1) }
func (c *Counter) Read() int64 { return c.n.Load() }

// legacy is consistently accessed through sync/atomic.
var legacy int64

func Bump()      { atomic.AddInt64(&legacy, 1) }
func Get() int64 { return atomic.LoadInt64(&legacy) }
