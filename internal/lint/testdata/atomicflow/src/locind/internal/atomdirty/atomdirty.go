// Package atomdirty is the dirty arm of the atomicflow fixtures: a field
// and a package variable that are atomic at one site and plain at another.
package atomdirty

import "sync/atomic"

// Counter mixes an atomic increment with a plain read.
type Counter struct {
	n int64
}

func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *Counter) Read() int64 {
	return c.n // want `n is updated with atomic.AddInt64 elsewhere but read or written plainly here`
}

// Fresh builds an unshared counter; the composite-literal key names the
// field rather than accessing it, so this is not a finding.
func Fresh() *Counter {
	return &Counter{n: 0}
}

var hits int64

func Touch() {
	atomic.AddInt64(&hits, 1)
}

func Reset() {
	hits = 0 // want `hits is updated with atomic.AddInt64 elsewhere`
}
