package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockflow polices the module's mutex discipline — the invariants behind
// the 64-stripe core.Memo and the gns/cluster Store/breaker locks:
//
//  1. Lock-bearing values copied by value: a method receiver, parameter,
//     plain assignment, or range clause that copies a struct containing a
//     sync.Mutex/RWMutex/WaitGroup/Once/Cond/Map or a sync/atomic typed
//     value forks the lock state — both copies think they own the lock.
//     (go vet's copylocks overlaps here; running it in-house keeps the
//     invariant in the same blocking gate and the same //lint:allow
//     vocabulary as everything else.)
//
//  2. Locks held across blocking operations: between a Lock/RLock and its
//     Unlock (or to function end, for defer), no channel send/receive, no
//     default-less select, and no call into the blocking watchlist —
//     net dials/reads, time.Sleep, sync.WaitGroup.Wait, gns.Exchange,
//     reliable.Policy.Do — directly or through a same-package helper that
//     transitively blocks. A lock held across a network round trip turns
//     one slow replica into a convoy of every caller.
//
//  3. Inconsistent acquisition order: if somewhere in the package lock
//     class A is taken while B is held and elsewhere B while A is held,
//     the two sites are a deadlock waiting for the right interleaving.
//     Classes are struct-type-qualified fields ("Store.mu"), so two
//     instances of the same stripe class do not count (ordering within a
//     class is invisible statically).
//
// The analysis is a linear source-order scan per function — deliberately
// simple, matching how this module writes critical sections (lock, work,
// unlock in one lexical run). A deliberate hold-across-blocking (a
// serialized quorum write) is annotated //lint:allow lockflow <reason>.
var Lockflow = &Analyzer{
	Name: "lockflow",
	Doc:  "no lock-bearing values copied by value, no locks held across blocking operations, no lock-order inversions",
	Run:  runLockflow,
}

func runLockflow(p *Pass) error {
	blocks := blockingSummaries(p)
	orders := map[orderPair]token.Pos{}
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkLockCopyParams(p, n)
				if n.Body != nil {
					checkHeldLocks(p, n.Body, blocks, orders)
				}
				return true
			case *ast.AssignStmt:
				checkLockCopyAssign(p, n)
			case *ast.RangeStmt:
				checkLockCopyRange(p, n)
			}
			return true
		})
	}
	reportOrderInversions(p, orders)
	return nil
}

// ---------------------------------------------------------------- copies —

// lockishType returns a human-readable description of the lock-bearing
// component of t ("" when t is freely copyable). Pointers are copyable;
// the lock must live in the value itself.
func lockishType(t types.Type) string {
	return lockishRec(t, map[types.Type]bool{})
}

func lockishRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if pkg := obj.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				return "atomic." + obj.Name()
			}
		}
		return lockishRec(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if s := lockishRec(t.Field(i).Type(), seen); s != "" {
				return s
			}
		}
	case *types.Array:
		return lockishRec(t.Elem(), seen)
	}
	return ""
}

// checkLockCopyParams flags by-value receivers and parameters of
// lock-bearing type.
func checkLockCopyParams(p *Pass, fd *ast.FuncDecl) {
	flag := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.TypesInfo.Types[field.Type].Type
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if lock := lockishType(t); lock != "" {
				p.Reportf(field.Type.Pos(), "%s %s copies %s by value; use a pointer", FuncSymbol(fd), kind, lock)
			}
		}
	}
	flag(fd.Recv, "receiver")
	flag(fd.Type.Params, "parameter")
}

// checkLockCopyAssign flags assignments whose right-hand side copies an
// existing lock-bearing value (composite literals and call results are
// fresh values being moved, not copies of a live lock).
func checkLockCopyAssign(p *Pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		// `_ = x` performs no copy at runtime; it is the idiom for marking
		// a value used.
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		switch ast.Unparen(rhs).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			continue
		}
		t := p.TypesInfo.Types[rhs].Type
		if t == nil {
			continue
		}
		if lock := lockishType(t); lock != "" {
			p.Reportf(rhs.Pos(), "assignment copies a value containing %s; share a pointer instead", lock)
		}
	}
}

// checkLockCopyRange flags `for _, v := range xs` where v copies a
// lock-bearing element.
func checkLockCopyRange(p *Pass, rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	t := p.TypesInfo.Types[rs.Value].Type
	if t == nil {
		// In the := form the value is a defined ident, not a typed expr.
		if id, ok := rs.Value.(*ast.Ident); ok {
			if obj := p.TypesInfo.Defs[id]; obj != nil {
				t = obj.Type()
			}
		}
	}
	if t == nil {
		return
	}
	if lock := lockishType(t); lock != "" {
		p.Reportf(rs.Value.Pos(), "range copies elements containing %s; iterate by index", lock)
	}
}

// ------------------------------------------------- blocking call summary —

// blockingSummaries computes, for every function declared in the package,
// whether it transitively performs a watched blocking operation through
// same-package calls.
func blockingSummaries(p *Pass) map[*types.Func]bool {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	blocks := map[*types.Func]bool{}
	calls := map[*types.Func][]*types.Func{}
	for fn, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				blocks[fn] = true
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					blocks[fn] = true
				}
			case *ast.SelectStmt:
				if !selectHasDefault(n) {
					blocks[fn] = true
				}
			case *ast.CallExpr:
				callee := calleeFunc(p.TypesInfo, n)
				if callee == nil {
					return true
				}
				if blockingWatchlist(callee) != "" {
					blocks[fn] = true
				} else if _, samePkg := decls[callee]; samePkg {
					//lint:allow determinism each calls[fn] slice is filled by one deterministic AST walk; the cross-iteration map order never reaches output
					calls[fn] = append(calls[fn], callee)
				}
			}
			return true
		})
	}
	// Propagate to a fixpoint (the call graphs here are tiny).
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if blocks[fn] {
				continue
			}
			for _, c := range callees {
				if blocks[c] {
					blocks[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return blocks
}

// blockingWatchlist names the blocking operation a call performs, or "".
func blockingWatchlist(fn *types.Func) string {
	path, name := funcPkgPath(fn), fn.Name()
	switch path {
	case "net":
		// Only the genuinely blocking surface: dials, listens, lookups,
		// accepts, and conn reads/writes. Addr.String and friends are pure.
		switch {
		case strings.HasPrefix(name, "Dial"), strings.HasPrefix(name, "Listen"),
			strings.HasPrefix(name, "Lookup"), strings.HasPrefix(name, "Accept"),
			strings.HasPrefix(name, "Read"), strings.HasPrefix(name, "Write"):
			return "net." + name
		}
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		if name == "Wait" {
			return "sync...Wait"
		}
	case "os/exec":
		switch name {
		case "Run", "Wait", "Output", "CombinedOutput":
			return "exec." + name
		}
	case "net/http":
		switch name {
		case "Get", "Post", "PostForm", "Head", "ListenAndServe", "Serve", "Do":
			return "http." + name
		}
	case "locind/internal/gns":
		if name == "Exchange" {
			return "gns.Exchange (a network round trip with retries)"
		}
	case "locind/internal/reliable":
		if name == "Do" {
			return "reliable.Policy.Do (retries with backoff sleeps)"
		}
	}
	return ""
}

// ----------------------------------------------------- held-lock scanner —

type heldLock struct {
	key   string // rendered lock expression, e.g. "c.mu"
	class string // type-qualified class, e.g. "Client.mu", for ordering
	read  bool   // RLock
}

type orderPair struct{ first, second string }

// checkHeldLocks scans one function body in source order, tracking which
// mutexes are held, flagging blocking operations under a lock and
// recording acquisition-order pairs.
func checkHeldLocks(p *Pass, body *ast.BlockStmt, blocks map[*types.Func]bool, orders map[orderPair]token.Pos) {
	var held []heldLock
	heldDesc := func() string {
		keys := make([]string, len(held))
		for i, h := range held {
			keys[i] = h.key
		}
		return strings.Join(keys, ", ")
	}
	unlock := func(key string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].key == key {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal's body runs at call time, not here; scan it as its
			// own critical-section universe.
			checkHeldLocks(p, n.Body, blocks, orders)
			return false
		case *ast.DeferStmt:
			// A deferred Unlock runs at function exit, so the lock stays in
			// the held set for the rest of the linear scan — exactly the
			// "held to end" semantics we want. Deferred bodies themselves
			// are not "now", so do not descend.
			return false
		case *ast.SendStmt:
			if len(held) > 0 {
				p.Reportf(n.Pos(), "channel send while holding %s; a blocked receiver convoys every caller of the lock", heldDesc())
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				p.Reportf(n.Pos(), "channel receive while holding %s", heldDesc())
			}
		case *ast.SelectStmt:
			if len(held) > 0 && !selectHasDefault(n) {
				p.Reportf(n.Pos(), "blocking select while holding %s", heldDesc())
			}
		case *ast.CallExpr:
			key, class, kind := mutexOp(p, n)
			switch kind {
			case "lock", "rlock":
				for _, h := range held {
					if h.key == key {
						p.Reportf(n.Pos(), "%s locked again while already held (self-deadlock)", key)
					} else if h.class != class && h.class != "" && class != "" {
						orders[orderPair{h.class, class}] = n.Pos()
					}
				}
				held = append(held, heldLock{key: key, class: class, read: kind == "rlock"})
				return false
			case "unlock":
				unlock(key)
				return false
			}
			if len(held) == 0 {
				return true
			}
			callee := calleeFunc(p.TypesInfo, n)
			if callee == nil {
				return true
			}
			if op := blockingWatchlist(callee); op != "" {
				p.Reportf(n.Pos(), "%s called while holding %s; the lock is held across a blocking operation", op, heldDesc())
			} else if blocks[callee] {
				p.Reportf(n.Pos(), "%s transitively blocks (network/sleep/channel) and is called while holding %s", callee.Name(), heldDesc())
			}
		}
		return true
	})
}

// mutexOp classifies a call as a mutex operation on a sync.Mutex/RWMutex
// and returns the lock's rendered key and class.
func mutexOp(p *Pass, call *ast.CallExpr) (key, class, kind string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", ""
	}
	fn, _ := p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || funcPkgPath(fn) != "sync" {
		return "", "", ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", ""
	}
	rt := recv.Type()
	if ptr, okp := rt.(*types.Pointer); okp {
		rt = ptr.Elem()
	}
	named, okn := rt.(*types.Named)
	if !okn || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return "", "", ""
	}
	key = types.ExprString(sel.X)
	class = lockClass(p, sel.X)
	switch fn.Name() {
	case "Lock":
		return key, class, "lock"
	case "RLock":
		return key, class, "rlock"
	case "Unlock", "RUnlock":
		return key, class, "unlock"
	case "TryLock", "TryRLock":
		return key, class, "lock" // a successful try holds the lock
	}
	return "", "", ""
}

// lockClass renders the type-qualified class of a lock expression: for a
// field selector x.mu it is "<TypeOf(x)>.mu"; for anything else "" (local
// and global locks have no cross-function class identity worth ordering).
func lockClass(p *Pass, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	t := p.TypesInfo.Types[sel.X].Type
	if t == nil {
		return ""
	}
	if ptr, okp := t.(*types.Pointer); okp {
		t = ptr.Elem()
	}
	named, okn := t.(*types.Named)
	if !okn {
		return ""
	}
	return named.Obj().Name() + "." + sel.Sel.Name
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// reportOrderInversions reports every pair of lock classes acquired in
// both orders within the package.
func reportOrderInversions(p *Pass, orders map[orderPair]token.Pos) {
	var pairs []orderPair
	for pr := range orders {
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a.first != b.first {
			return a.first < b.first
		}
		return a.second < b.second
	})
	for _, pr := range pairs {
		rev := orderPair{pr.second, pr.first}
		if _, inverted := orders[rev]; !inverted {
			continue
		}
		if pr.first > pr.second {
			continue // report each inverted pair once, from its lexical min
		}
		p.Reportf(orders[pr], "lock order inversion: %s is acquired while %s is held here, and the opposite order occurs at %s",
			pr.second, pr.first, p.Fset.Position(orders[rev]))
	}
}
