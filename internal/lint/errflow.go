package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errflow flags discarded errors — the expt.RunSensitivity regression
// class, where a swallowed stats.Pearson error silently zeroed a published
// correlation:
//
//  1. A call whose results include an error, used as a bare expression
//     statement, when the callee lives in a watched package: this module's
//     internal/stats and internal/core, or the io/bufio/encoding/os
//     write-path packages the expt drivers export through. fmt.Fprint* is
//     watched only when the destination can actually fail (writes to
//     *bytes.Buffer, *strings.Builder, os.Stdout, and os.Stderr are
//     conventionally unchecked).
//  2. Any error explicitly discarded with a blank identifier (`_ = f()` or
//     `v, _ := f()`), outside _test.go files, anywhere in the module.
//
// Deferred calls are exempt: `defer f.Close()` on a read path is accepted
// Go. A deliberate discard is annotated `//lint:allow errflow <reason>`.
var Errflow = &Analyzer{
	Name: "errflow",
	Doc:  "errors from internal/stats, internal/core, and io/encoding sinks must not be discarded",
	Run:  runErrflow,
}

func watchedErrPkg(path string) bool {
	switch path {
	case "locind/internal/stats", "locind/internal/core", "io", "bufio", "os":
		return true
	}
	return strings.HasPrefix(path, "encoding/")
}

func runErrflow(p *Pass) error {
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				return false
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedCall(p, call)
				}
			case *ast.AssignStmt:
				checkBlankedErrors(p, n)
			}
			return true
		})
	}
	return nil
}

// checkDroppedCall reports a watched call used as a statement even though
// its results include an error.
func checkDroppedCall(p *Pass, call *ast.CallExpr) {
	fn := calleeFunc(p.TypesInfo, call)
	if fn == nil {
		return
	}
	path := funcPkgPath(fn)
	if !watchedErrPkg(path) && !(path == "fmt" && fallibleFprint(p, fn.Name(), call)) {
		return
	}
	// Methods on sinks that cannot fail mid-stream are exempt: hash writes
	// never error, and bufio.Writer latches the first error until Flush —
	// which is itself watched, so the error still surfaces exactly once.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recv := typeString(p.TypesInfo, sel.X)
		if writerNeverFails(recv) && !(recv == "*bufio.Writer" && fn.Name() == "Flush") {
			return
		}
	}
	if !resultsIncludeError(p, call) {
		return
	}
	p.Reportf(call.Pos(), "%s.%s returns an error that is discarded here; handle it or annotate //lint:allow errflow <reason>", lastSegment(path), fn.Name())
}

// writerNeverFails lists destination types whose Write cannot produce an
// error worth checking at each call site: in-memory buffers and builders,
// hashes (hash.Hash documents that Write never returns an error), the
// latching *bufio.Writer (only Flush reports), http.ResponseWriter
// (the response is already in flight; there is nothing to do with the
// error but drop the handler), and the obs flight recorder (*obs.Ring
// documents that Write always reports full success — instrumented code
// logs into it without ceremony).
func writerNeverFails(typ string) bool {
	switch typ {
	case "*bytes.Buffer", "*strings.Builder", "*bufio.Writer",
		"hash.Hash", "hash.Hash32", "hash.Hash64", "net/http.ResponseWriter",
		"*locind/internal/obs.Ring":
		return true
	}
	return false
}

// fallibleFprint reports whether a fmt.Fprint* call writes to a destination
// whose Write can actually fail.
func fallibleFprint(p *Pass, name string, call *ast.CallExpr) bool {
	if !strings.HasPrefix(name, "Fprint") || len(call.Args) == 0 {
		return false
	}
	if writerNeverFails(typeString(p.TypesInfo, call.Args[0])) {
		return false
	}
	if obj := identObject(p.TypesInfo, call.Args[0]); obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
		return false
	}
	return true
}

// checkBlankedErrors reports assignments that discard an error into _.
func checkBlankedErrors(p *Pass, as *ast.AssignStmt) {
	// v1, _ := f()  — one call, tuple results.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := p.TypesInfo.Types[call].Type.(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && i < tuple.Len() && isErrorType(tuple.At(i).Type()) {
				p.Reportf(lhs.Pos(), "error discarded with blank identifier; handle it or annotate //lint:allow errflow <reason>")
			}
		}
		return
	}
	// _ = expr (possibly parallel assignment).
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) || i >= len(as.Rhs) {
			continue
		}
		if isErrorType(p.TypesInfo.Types[as.Rhs[i]].Type) {
			p.Reportf(lhs.Pos(), "error discarded with blank identifier; handle it or annotate //lint:allow errflow <reason>")
		}
	}
}

func resultsIncludeError(p *Pass, call *ast.CallExpr) bool {
	switch t := p.TypesInfo.Types[call].Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
	default:
		return isErrorType(t)
	}
	return false
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
