package lint_test

import (
	"testing"

	"locind/internal/lint"
	"locind/internal/lint/linttest"
)

func TestAtomicflow(t *testing.T) {
	linttest.Run(t, "testdata/atomicflow", lint.Atomicflow,
		"locind/internal/atomfix", "locind/internal/atomdirty")
}
