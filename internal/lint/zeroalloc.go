package lint

import (
	"go/ast"
	"strings"
)

// The //lint:zeroalloc annotation.
//
//	//lint:zeroalloc [note]
//
// written in the doc comment of a function or method declares that the
// function is steady-state allocation-free: once its reusable buffers have
// warmed up, running it must not grow the heap. The note is free-form and
// optional — it documents what "steady state" means for this function
// (per event, per lookup, per heap op).
//
// The annotation is load-bearing twice over:
//
//   - The allocflow analyzer statically checks the annotated function and
//     everything it statically calls within the module for always-allocating
//     idioms (fmt formatting, map construction in the per-event path,
//     per-iteration composite literals and closures — see allocflow.go).
//   - cmd/allocguard generates a testing.AllocsPerRun-based
//     allocguard_gen_test.go per annotated package, so the same annotation
//     that turns the static check on also pins the runtime measurement; the
//     two can never disagree about which functions are covered.
//
// A deliberate allocation inside an annotated closure is suppressed in
// place with `//lint:allow allocflow <reason>`, like any other finding.

// zeroallocDirective is the comment prefix of the annotation.
const zeroallocDirective = "//lint:zeroalloc"

// An AnnotatedFunc is one //lint:zeroalloc-annotated declaration.
type AnnotatedFunc struct {
	// Symbol is the canonical in-package name: "F" for a function,
	// "T.M" for a method (pointer receivers are spelled the same as value
	// receivers — allocation behaviour, not method sets, is what is pinned).
	Symbol string
	// Note is the free-form text following the directive, "" when absent.
	Note string
	// Decl is the annotated declaration.
	Decl *ast.FuncDecl
}

// ParseZeroalloc reports whether a comment line is a zeroalloc directive
// and returns its optional note. Only exact directives match: a comment
// that merely mentions the directive mid-text is not an annotation.
func ParseZeroalloc(text string) (note string, ok bool) {
	rest, found := strings.CutPrefix(text, zeroallocDirective)
	if !found {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. //lint:zeroallocate — not this directive
	}
	return strings.TrimSpace(rest), true
}

// ZeroallocFuncs returns the annotated function declarations of a parsed
// file in declaration order. It needs only syntax (parser.ParseComments),
// no type information, so cmd/allocguard shares it without loading types.
func ZeroallocFuncs(f *ast.File) []AnnotatedFunc {
	var out []AnnotatedFunc
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			note, ok := ParseZeroalloc(c.Text)
			if !ok {
				continue
			}
			out = append(out, AnnotatedFunc{Symbol: FuncSymbol(fd), Note: note, Decl: fd})
			break
		}
	}
	return out
}

// FuncSymbol renders the canonical symbol of a declaration: "F", or "T.M"
// with the receiver's base type name (pointers and type parameters
// stripped).
func FuncSymbol(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
}

// recvTypeName unwraps a receiver type expression to its base identifier.
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr: // generic receiver T[P]
			e = t.X
		case *ast.IndexListExpr: // generic receiver T[P1, P2]
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// zeroallocDecls maps each annotated declaration in pkg to its symbol, and
// returns the set of doc-comment positions consumed by annotations so
// allocflow can flag dangling directives (a //lint:zeroalloc floating in a
// comment that is not a function's doc comment annotates nothing and would
// otherwise rot silently).
func zeroallocDecls(pkg *Package) (map[*ast.FuncDecl]string, map[*ast.Comment]bool) {
	decls := map[*ast.FuncDecl]string{}
	consumed := map[*ast.Comment]bool{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if _, ok := ParseZeroalloc(c.Text); ok {
					decls[fd] = FuncSymbol(fd)
					consumed[c] = true
				}
			}
		}
	}
	return decls, consumed
}
