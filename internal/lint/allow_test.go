package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseAllowPkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "fix", Fset: fset, Files: []*ast.File{f}}
}

func TestAllowScopes(t *testing.T) {
	pkg := parseAllowPkg(t, `// Package fix exercises every directive scope.
//
//lint:allow seedflow promoted to package scope from above the package clause
package fix

//lint:file-allow errflow this file writes nowhere durable

func f() {
	//lint:allow determinism directive line and the next are covered
	_ = 1
	_ = 2
}
`)
	ai, malformed := collectAllows(pkg)
	if len(malformed) != 0 {
		t.Fatalf("malformed = %v, want none", malformed)
	}
	at := func(line int, check string) bool {
		return ai.suppressed(Diagnostic{
			Pos:   token.Position{Filename: "fix.go", Line: line},
			Check: check,
		})
	}
	// Package scope: seedflow anywhere.
	if !at(1, "seedflow") || !at(11, "seedflow") {
		t.Error("package-promoted allow did not suppress seedflow")
	}
	// File scope: errflow anywhere in fix.go.
	if !at(2, "errflow") || !at(10, "errflow") {
		t.Error("file-allow did not suppress errflow")
	}
	// Line scope: the directive's line (9) and the next (10), not line 11.
	if !at(9, "determinism") || !at(10, "determinism") {
		t.Error("line allow did not cover its own line and the next")
	}
	if at(11, "determinism") {
		t.Error("line allow leaked past the following line")
	}
	// Unlisted checks stay live.
	if at(10, "ctxflow") {
		t.Error("suppression applied to a check no directive names")
	}
	// lintdirective findings can never be suppressed.
	if ai.suppressed(Diagnostic{Pos: token.Position{Filename: "fix.go", Line: 6}, Check: directiveCheck}) {
		t.Error("lintdirective finding was suppressible")
	}
}

func TestAllowAll(t *testing.T) {
	pkg := parseAllowPkg(t, `package fix

func f() {
	//lint:allow all generated table, every rule waived here
	_ = 1
}
`)
	ai, malformed := collectAllows(pkg)
	if len(malformed) != 0 {
		t.Fatalf("malformed = %v, want none", malformed)
	}
	for _, check := range []string{"determinism", "seedflow", "errflow", "ctxflow"} {
		if !ai.suppressed(Diagnostic{Pos: token.Position{Filename: "fix.go", Line: 5}, Check: check}) {
			t.Errorf("allow all did not suppress %s", check)
		}
	}
}

func TestMalformedDirectives(t *testing.T) {
	pkg := parseAllowPkg(t, `package fix

//lint:allow errflow
//lint:file-allow nosuchcheck because reasons
//lint:allow
func f() {}
`)
	ai, malformed := collectAllows(pkg)
	wantFragments := []string{
		"needs a reason",
		`unknown check "nosuchcheck"`,
		`unknown check ""`,
	}
	if len(malformed) != len(wantFragments) {
		t.Fatalf("got %d malformed diagnostics %v, want %d", len(malformed), malformed, len(wantFragments))
	}
	for i, frag := range wantFragments {
		if malformed[i].Check != directiveCheck {
			t.Errorf("malformed[%d].Check = %q, want %q", i, malformed[i].Check, directiveCheck)
		}
		if !strings.Contains(malformed[i].Message, frag) {
			t.Errorf("malformed[%d] = %q, want it to mention %q", i, malformed[i].Message, frag)
		}
	}
	// A malformed directive must not register any suppression.
	if ai.suppressed(Diagnostic{Pos: token.Position{Filename: "fix.go", Line: 4}, Check: "errflow"}) {
		t.Error("reason-less directive still suppressed errflow")
	}
}
