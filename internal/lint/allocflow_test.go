package lint_test

import (
	"testing"

	"locind/internal/lint"
	"locind/internal/lint/linttest"
)

func TestAllocflow(t *testing.T) {
	linttest.Run(t, "testdata/allocflow", lint.Allocflow,
		"locind/internal/hotfix", "locind/internal/hotdirty",
		"locind/internal/hotcross", "locind/internal/hotleaf")
}
