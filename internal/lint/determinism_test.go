package lint_test

import (
	"testing"

	"locind/internal/lint"
	"locind/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata/determinism", lint.Determinism,
		"locind/internal/simfix", "locind/internal/simobs", "example.com/cmdfix",
		"locind/internal/obs")
}
