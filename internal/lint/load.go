package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
)

// A Package is one loaded, type-checked package.
type Package struct {
	Path     string
	Dir      string
	Standard bool // part of the Go distribution
	DepOnly  bool // pulled in as a dependency, not named by the load patterns

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors holds type-checker errors for non-standard packages. The
	// caller decides whether they are fatal; analyzers run best-effort on
	// whatever information survived.
	TypeErrors []error

	importMap map[string]string
}

// A Loader loads packages via `go list -json -deps` and type-checks them
// bottom-up with the standard library's go/types. Loaded packages are cached
// by import path, so repeated Load calls share one type-checked standard
// library. A Loader is safe for use from one goroutine at a time.
type Loader struct {
	// Dir is the directory go list runs in; it must lie inside the module
	// whose packages are being loaded (or any directory, for pure-stdlib
	// loads). Empty means the current directory.
	Dir string

	// Fset, when set before the first Load, is the file set packages are
	// parsed into — linttest shares one file set between fixtures and the
	// standard library they import. Nil means a fresh one.
	Fset *token.FileSet

	mu   sync.Mutex
	pkgs map[string]*Package
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...", "io", "locind/internal/stats") to
// packages, type-checks them and their dependency closure, and returns the
// packages in dependency order. Standard-library dependencies are checked
// with IgnoreFuncBodies for speed; their exported API is fully typed.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	// The mutex deliberately serializes whole loads, go list subprocess
	// included: concurrent linttest callers must not interleave writes into
	// the shared FileSet and package memo mid-load.
	//lint:file-allow lockflow the lock exists to serialize go list invocations; holding it across cmd.Wait is the point
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.Fset == nil {
		l.Fset = token.NewFileSet()
	}
	if l.pkgs == nil {
		l.pkgs = map[string]*Package{}
	}

	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("lint: go list: %w", err)
	}
	var listed []*listedPackage
	dec := json.NewDecoder(out)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			cmd.Wait()
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, stderr.String())
	}

	// go list -deps emits dependencies before dependents, so a single
	// forward sweep type-checks each package after everything it imports.
	var result []*Package
	for _, lp := range listed {
		if lp.Error != nil && lp.ImportPath == "" {
			return nil, fmt.Errorf("lint: go list: %s", lp.Error.Err)
		}
		pkg, err := l.check(lp)
		if err != nil {
			return nil, err
		}
		if !lp.DepOnly {
			// A cached package may have been a dep in an earlier Load and a
			// root now; roots are what callers analyze.
			pkg.DepOnly = false
			result = append(result, pkg)
		}
	}
	return result, nil
}

func (l *Loader) check(lp *listedPackage) (*Package, error) {
	if pkg, ok := l.pkgs[lp.ImportPath]; ok {
		return pkg, nil
	}
	pkg := &Package{
		Path:      lp.ImportPath,
		Dir:       lp.Dir,
		Standard:  lp.Standard,
		DepOnly:   lp.DepOnly,
		Fset:      l.Fset,
		importMap: lp.ImportMap,
	}
	l.pkgs[lp.ImportPath] = pkg

	if lp.ImportPath == "unsafe" {
		pkg.Types = types.Unsafe
		return pkg, nil
	}
	if lp.Error != nil {
		pkg.TypeErrors = append(pkg.TypeErrors, fmt.Errorf("%s", lp.Error.Err))
	}

	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(lp.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if lp.Standard {
				continue // tolerate oddities outside our module
			}
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		pkg.Files = append(pkg.Files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := &types.Config{
		Importer:         importerFunc(func(path string) (*types.Package, error) { return l.resolve(pkg, path) }),
		IgnoreFuncBodies: lp.Standard,
		FakeImportC:      true,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if !lp.Standard {
				pkg.TypeErrors = append(pkg.TypeErrors, err)
			}
		},
	}
	// Check reports the first hard error through cfg.Error and keeps going;
	// the returned error is deliberately ignored so analyzers can run on
	// partially-checked packages (the CLI surfaces TypeErrors instead).
	tpkg, _ := cfg.Check(lp.ImportPath, l.Fset, pkg.Files, info) //lint:allow errflow duplicated by cfg.Error into TypeErrors
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// resolve maps an import path as written in importer's source to a loaded
// package, honouring go list's ImportMap (which handles the standard
// library's vendored dependencies).
func (l *Loader) resolve(importer *Package, path string) (*types.Package, error) {
	if mapped, ok := importer.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	pkg, ok := l.pkgs[path]
	if !ok || pkg.Types == nil {
		return nil, fmt.Errorf("package %q not loaded", path)
	}
	return pkg.Types, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
