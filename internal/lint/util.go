package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// moduleInternal reports whether path is one of this module's library
// packages (as opposed to cmd/ binaries, examples/, or external code).
// Library packages carry the strictest determinism obligations: their
// callers must be able to replay any run bit-for-bit.
func moduleInternal(path string) bool {
	return strings.HasPrefix(path, "locind/internal/")
}

// isTestFile reports whether the file at pos is a _test.go file. Normal
// loads never include test files (go list GoFiles excludes them), but
// linttest fixtures may, and the error-hygiene rules do not apply to tests.
func isTestFile(p *Pass, f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// calleeFunc resolves the function or method a call expression invokes.
// It returns nil for calls through function-typed variables, builtins, and
// type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the package that declares fn
// ("" for error.Error and other universe-scope methods). For methods —
// including interface methods — this is the defining package, so both
// io.Writer.Write and a concrete *os.File.Close resolve usefully.
func funcPkgPath(fn *types.Func) string {
	if pkg := fn.Pkg(); pkg != nil {
		return pkg.Path()
	}
	return ""
}

// inspectWithStack walks every node under root, passing the path of
// ancestor nodes (outermost first, not including n itself).
func inspectWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := visit(n, stack)
		stack = append(stack, n)
		return ok
	})
}

// enclosingFunc returns the innermost function literal or declaration body
// in the stack, or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// identObject resolves an expression to the object it names, unwrapping
// parens. Returns nil for anything more structured than an identifier or a
// selector (x.f resolves to f's object).
func identObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[e]; o != nil {
			return o
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// typeString renders the type of e, or "" when unknown.
func typeString(info *types.Info, e ast.Expr) string {
	if t := info.Types[e].Type; t != nil {
		return t.String()
	}
	return ""
}

// isErrorType reports whether t is exactly the predeclared error type.
func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// obsPkgPath is the observability package whose trace identifiers carry the
// special obligation policed by traceIdentity: they exist only when tracing
// is attached, so no simulation result may depend on them.
const obsPkgPath = "locind/internal/obs"

// traceIdentity reports the first trace-identity read found inside expr
// ("" if none): a TraceContext ID field or a Span.ID call from the obs
// package. Span IDs are deterministic, but they exist only when a tracer is
// attached — any value derived from one couples results to whether
// observability is enabled, breaking the obs-on == obs-off invariant.
func traceIdentity(p *Pass, expr ast.Expr) string {
	found := ""
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if (n.Sel.Name == "TraceID" || n.Sel.Name == "SpanID") &&
				isObsType(p.TypesInfo.Types[n.X].Type, "TraceContext") {
				found = "TraceContext." + n.Sel.Name
			}
		case *ast.CallExpr:
			fn := calleeFunc(p.TypesInfo, n)
			if fn == nil || fn.Name() != "ID" {
				return true
			}
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && isObsType(recv.Type(), "Span") {
				found = "Span.ID()"
			}
		}
		return found == ""
	})
	return found
}

// isObsType reports whether t (possibly behind a pointer) is the named type
// declared in the obs package.
func isObsType(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == obsPkgPath
}
