// Package linttest runs the internal/lint analyzers over golden fixture
// packages and checks their findings against // want comments, in the
// spirit of golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<importpath>/ and are ordinary Go
// packages. Imports resolve against sibling fixtures first — which lets a
// fixture stand in for a watched path like locind/internal/stats — and fall
// back to the real standard library, loaded through lint.Loader so one
// type-checked stdlib is shared by every test in the binary. A comment of
// the form
//
//	code() // want "first regex" `second regex`
//
// asserts that each listed pattern matches exactly one diagnostic reported
// on that line. Diagnostics with no matching want, and wants with no
// matching diagnostic, fail the test — so a fixture line with no want
// comment is also an assertion: the analyzer must stay quiet there.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"locind/internal/lint"
)

// One file set and loader per test binary: fixtures and the standard
// library they import must agree on token positions, and type-checking the
// stdlib is expensive enough to do only once.
var (
	fset   = token.NewFileSet()
	loader = &lint.Loader{Fset: fset}

	stdlibMu sync.Mutex
	stdlib   = map[string]*types.Package{}
)

// Run applies analyzer a to the fixture packages named by importPaths
// (rooted at <testdata>/src) and reports any divergence from their // want
// comments through t. Fixture packages that fail to type-check fail the
// test immediately: a fixture that does not compile asserts nothing.
func Run(t *testing.T, testdata string, a *lint.Analyzer, importPaths ...string) {
	t.Helper()
	fl := &fixtureLoader{
		srcRoot: filepath.Join(testdata, "src"),
		pkgs:    map[string]*lint.Package{},
		loading: map[string]bool{},
	}
	var roots []*lint.Package
	for _, path := range importPaths {
		pkg, err := fl.load(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s does not type-check: %v", path, terr)
		}
		if pkg.Types == nil {
			t.Fatalf("fixture %s produced no type information", path)
		}
		roots = append(roots, pkg)
	}
	if t.Failed() {
		t.FailNow()
	}

	rep, err := lint.Run(roots, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, roots)
	for _, d := range rep.Diags {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}

// A fixtureLoader parses and type-checks fixture packages on demand,
// memoized per Run call.
type fixtureLoader struct {
	srcRoot string
	pkgs    map[string]*lint.Package
	loading map[string]bool
}

func (fl *fixtureLoader) load(path string) (*lint.Package, error) {
	if pkg, ok := fl.pkgs[path]; ok {
		return pkg, nil
	}
	if fl.loading[path] {
		return nil, fmt.Errorf("linttest: fixture import cycle through %q", path)
	}
	fl.loading[path] = true
	defer delete(fl.loading, path)

	dir := filepath.Join(fl.srcRoot, filepath.FromSlash(path))
	names, err := fixtureFiles(dir)
	if err != nil {
		return nil, err
	}
	pkg := &lint.Package{Path: path, Dir: dir, Fset: fset}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := &types.Config{
		Importer: importerFunc(fl.resolve),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := cfg.Check(path, fset, pkg.Files, info) //lint:allow errflow fixture type errors land in TypeErrors and fail the test
	pkg.Types = tpkg
	pkg.Info = info
	fl.pkgs[path] = pkg
	return pkg, nil
}

// resolve maps an import inside a fixture to another fixture when one
// exists at that path, and to the real standard library otherwise.
func (fl *fixtureLoader) resolve(path string) (*types.Package, error) {
	dir := filepath.Join(fl.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := fl.load(path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("linttest: fixture %q has no type information", path)
		}
		return pkg.Types, nil
	}
	return stdlibPackage(path)
}

func stdlibPackage(path string) (*types.Package, error) {
	stdlibMu.Lock()
	defer stdlibMu.Unlock()
	if tp, ok := stdlib[path]; ok {
		return tp, nil
	}
	pkgs, err := loader.Load(path)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if p.Path == path && p.Types != nil {
			stdlib[path] = p.Types
			return p.Types, nil
		}
	}
	return nil, fmt.Errorf("linttest: %q missing from load result", path)
}

func fixtureFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string // ReadDir returns entries sorted by name
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("linttest: no Go files in %s", dir)
	}
	return names, nil
}

// A want is one expected-diagnostic pattern anchored to a fixture line.
type want struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

// wantToken matches one double-quoted (with escapes) or backquoted pattern.
var wantToken = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(t *testing.T, pkgs []*lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					// The marker may trail other comment text, so a fixture
					// can assert on a diagnostic aimed at the comment itself
					// (e.g. a dangling //lint:zeroalloc directive).
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					rest := c.Text[idx+len("// want "):]
					pos := fset.Position(c.Pos())
					toks := wantToken.FindAllString(rest, -1)
					if len(toks) == 0 {
						t.Errorf("%s: // want comment with no quoted patterns", pos)
					}
					for _, tok := range toks {
						pat, err := strconv.Unquote(tok)
						if err != nil {
							t.Errorf("%s: unquoting want pattern %s: %v", pos, tok, err)
							continue
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Errorf("%s: compiling want pattern %q: %v", pos, pat, err)
							continue
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: pat, re: re})
					}
				}
			}
		}
	}
	return wants
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
