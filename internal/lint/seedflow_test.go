package lint_test

import (
	"testing"

	"locind/internal/lint"
	"locind/internal/lint/linttest"
)

func TestSeedflow(t *testing.T) {
	linttest.Run(t, "testdata/seedflow", lint.Seedflow,
		"locind/internal/seedfix", "example.com/demofix")
}
