// Package intradomain instantiates the §3.1 setting: a single
// shortest-path-routed network (Figure 1(a)) in which hosts move between
// subnets attached to different routers. It derives per-router FIBs from
// link-state shortest paths, answers the displacement question exactly as
// the paper poses it, and models the two ways a network can absorb host
// mobility:
//
//   - renumbering — the host takes an address from the new subnet, and a
//     router must update only if its output ports for the old and new
//     longest-matching prefixes differ (the §3.1 displacement test);
//   - host routes — the host keeps its address (the name-based-routing view
//     of a flat identifier), and every displaced router must install a /32
//     exception, so the forwarding-table-size cost becomes visible.
package intradomain

import (
	"fmt"

	"locind/internal/netaddr"
	"locind/internal/topology"
)

// LocalPort is the FIB port value meaning "deliver onto the attached
// subnet".
const LocalPort = -1

// Network is a shortest-path-routed domain: a router topology where router
// i owns the subnet 10.i.0.0/16 (so the address plan supports up to 256
// routers).
type Network struct {
	g *topology.Graph
	// nextHop[dst][r] is router r's output port toward router dst: the
	// neighbor on the shortest path (lowest-ID tie-break via BFS order),
	// or LocalPort when r == dst.
	nextHop [][]int
	// fibs[r] maps subnets to ports at router r, with any /32 host-route
	// exceptions layered on top.
	fibs []*netaddr.Trie[int]
}

// New builds a Network over the given connected router topology.
func New(g *topology.Graph) (*Network, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("intradomain: empty topology")
	}
	if g.N() > 256 {
		return nil, fmt.Errorf("intradomain: address plan supports 256 routers, have %d", g.N())
	}
	if !g.Connected() {
		return nil, fmt.Errorf("intradomain: topology must be connected")
	}
	n := g.N()
	net := &Network{g: g, nextHop: make([][]int, n), fibs: make([]*netaddr.Trie[int], n)}
	for dst := 0; dst < n; dst++ {
		_, parent := g.BFS(dst)
		row := make([]int, n)
		for r := 0; r < n; r++ {
			if r == dst {
				row[r] = LocalPort
			} else {
				row[r] = parent[r]
			}
		}
		net.nextHop[dst] = row
	}
	for r := 0; r < n; r++ {
		fib := &netaddr.Trie[int]{}
		for dst := 0; dst < n; dst++ {
			fib.Insert(SubnetOf(dst), net.nextHop[dst][r])
		}
		net.fibs[r] = fib
	}
	return net, nil
}

// N returns the number of routers.
func (n *Network) N() int { return n.g.N() }

// SubnetOf returns the subnet attached to router r: 10.r.0.0/16.
func SubnetOf(r int) netaddr.Prefix {
	return netaddr.MakePrefix(netaddr.MakeAddr(10, byte(r), 0, 0), 16)
}

// AddrAt mints the host-th address in router r's subnet.
func AddrAt(r int, host uint64) netaddr.Addr {
	return SubnetOf(r).Nth(host)
}

// RouterOf returns which router's subnet covers address a (-1 if none).
func RouterOf(a netaddr.Addr) int {
	if !netaddr.MakePrefix(netaddr.MakeAddr(10, 0, 0, 0), 8).Contains(a) {
		return -1
	}
	_, o2, _, _ := a.Octets()
	return int(o2)
}

// Port answers router r's forwarding decision for address a via
// longest-prefix matching over its FIB (subnets plus host routes).
func (n *Network) Port(r int, a netaddr.Addr) (int, bool) {
	return n.fibs[r].Lookup(a)
}

// Displaced reports whether a host's move from one address to another
// changes router r's forwarding behaviour — the §3.1 displacement test.
func (n *Network) Displaced(r int, from, to netaddr.Addr) bool {
	p1, ok1 := n.Port(r, from)
	p2, ok2 := n.Port(r, to)
	return ok1 && ok2 && p1 != p2
}

// RenumberUpdateCost returns the number of routers displaced by a host
// moving from router src's subnet to router dst's (taking a fresh address
// there), and the aggregate fraction of the domain's routers updated.
func (n *Network) RenumberUpdateCost(src, dst int) (routers int, fraction float64) {
	from := AddrAt(src, 1)
	to := AddrAt(dst, 1)
	for r := 0; r < n.N(); r++ {
		if n.Displaced(r, from, to) {
			routers++
		}
	}
	return routers, float64(routers) / float64(n.N())
}

// MoveWithHostRoutes models the flat-identifier alternative: the host keeps
// address addr while attaching at router dst. Every router whose
// longest-prefix match for addr no longer points toward dst gets a /32
// host route installed (or updated). It returns how many routers had to
// change state.
func (n *Network) MoveWithHostRoutes(addr netaddr.Addr, dst int) int {
	updated := 0
	host := netaddr.MakePrefix(addr, 32)
	for r := 0; r < n.N(); r++ {
		want := n.nextHop[dst][r]
		cur, curOK := n.Port(r, addr)
		if base, okBase := n.subnetPort(r, addr); okBase && base == want {
			// The covering subnet already forwards correctly: any host
			// route is redundant and gets cleaned up.
			n.fibs[r].Remove(host)
		} else {
			n.fibs[r].Insert(host, want)
		}
		if !curOK || cur != want {
			updated++
		}
	}
	return updated
}

// subnetPort answers what router r would do for addr using only the subnet
// entry (ignoring host routes).
func (n *Network) subnetPort(r int, addr netaddr.Addr) (int, bool) {
	owner := RouterOf(addr)
	if owner < 0 || owner >= n.N() {
		return 0, false
	}
	return n.nextHop[owner][r], true
}

// HostRouteCount returns the number of /32 exceptions currently installed
// at router r — the forwarding-table-size cost of flat identifiers.
func (n *Network) HostRouteCount(r int) int {
	count := 0
	n.fibs[r].Walk(func(p netaddr.Prefix, _ int) bool {
		if p.Bits() == 32 {
			count++
		}
		return true
	})
	return count
}

// TotalHostRoutes sums HostRouteCount over all routers.
func (n *Network) TotalHostRoutes() int {
	total := 0
	for r := 0; r < n.N(); r++ {
		total += n.HostRouteCount(r)
	}
	return total
}

// IndirectionStretch returns the §5-style additive stretch of routing via a
// home router: dist(src, home) + dist(home, cur) - dist(src, cur), in hops.
func (n *Network) IndirectionStretch(src, home, cur int) int {
	d, _ := n.g.BFS(src)
	dh, _ := n.g.BFS(home)
	direct := d[cur]
	viaHome := d[home] + dh[cur]
	return viaHome - direct
}

// AggregateRenumberCost computes the expected fraction of routers updated
// per mobility event under uniform random movement — comparable to
// analytic.ExactNameBased, but derived from the address-plan FIBs rather
// than abstract ports. The two agree exactly on any topology, which the
// tests exploit as a cross-package validation.
func (n *Network) AggregateRenumberCost() float64 {
	total := 0.0
	nn := n.N()
	for src := 0; src < nn; src++ {
		for dst := 0; dst < nn; dst++ {
			if src == dst {
				continue
			}
			_, frac := n.RenumberUpdateCost(src, dst)
			total += frac
		}
	}
	// Uniform i.i.d. (src, dst) including self-moves, matching the §5
	// Markov process: self-moves contribute zero updates.
	return total / float64(nn*nn)
}
