package intradomain

import (
	"math"
	"math/rand"
	"testing"

	"locind/internal/analytic"
	"locind/internal/netaddr"
	"locind/internal/topology"
)

func mustNew(t *testing.T, g *topology.Graph) *Network {
	t.Helper()
	n, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewErrors(t *testing.T) {
	if _, err := New(topology.New(0)); err == nil {
		t.Error("empty topology should fail")
	}
	if _, err := New(topology.New(300)); err == nil {
		t.Error("oversized topology should fail")
	}
	disconnected := topology.New(3)
	disconnected.AddEdge(0, 1) //nolint:errcheck
	if _, err := New(disconnected); err == nil {
		t.Error("disconnected topology should fail")
	}
}

func TestAddressPlan(t *testing.T) {
	if SubnetOf(7).String() != "10.7.0.0/16" {
		t.Fatalf("SubnetOf(7) = %v", SubnetOf(7))
	}
	a := AddrAt(7, 300)
	if RouterOf(a) != 7 {
		t.Fatalf("RouterOf(%v) = %d", a, RouterOf(a))
	}
	if RouterOf(netaddr.MustParseAddr("11.0.0.1")) != -1 {
		t.Fatal("out-of-plan address should map to -1")
	}
}

func TestPortsOnChain(t *testing.T) {
	n := mustNew(t, topology.Chain(5))
	// Router 2's ports: toward 0 via 1, toward 4 via 3, local for itself.
	if p, _ := n.Port(2, AddrAt(0, 1)); p != 1 {
		t.Fatalf("port toward 0 = %d", p)
	}
	if p, _ := n.Port(2, AddrAt(4, 1)); p != 3 {
		t.Fatalf("port toward 4 = %d", p)
	}
	if p, _ := n.Port(2, AddrAt(2, 9)); p != LocalPort {
		t.Fatalf("local port = %d", p)
	}
	if _, ok := n.Port(2, netaddr.MustParseAddr("99.1.2.3")); ok {
		t.Fatal("unknown address should miss")
	}
}

func TestDisplacedMirrorsFigure1(t *testing.T) {
	// Figure 1(a): endpoint moves between subnets; a router on the "split"
	// between the two destinations must update, a router whose port is the
	// same for both must not.
	n := mustNew(t, topology.Chain(5))
	from := AddrAt(0, 5)
	to := AddrAt(4, 5)
	// Router 2 forwards 0-ward via 1 and 4-ward via 3: displaced.
	if !n.Displaced(2, from, to) {
		t.Fatal("mid-chain router must be displaced")
	}
	// A move between routers 3 and 4 looks identical from router 0 (both
	// via port 1): not displaced.
	if n.Displaced(0, AddrAt(3, 1), AddrAt(4, 1)) {
		t.Fatal("far router must not be displaced")
	}
}

func TestRenumberUpdateCost(t *testing.T) {
	n := mustNew(t, topology.Chain(5))
	// Moving end to end displaces every router: each either flips
	// left/right or gains/loses the local subnet... routers 1-3 flip sides,
	// routers 0 and 4 swap local/transit.
	routers, frac := n.RenumberUpdateCost(0, 4)
	if routers != 5 || frac != 1 {
		t.Fatalf("end-to-end cost = %d (%v)", routers, frac)
	}
	// Moving between adjacent routers 0->1: routers 0,1 change (local),
	// routers 2..4 keep port 1 for both subnets: 2 updates.
	routers, _ = n.RenumberUpdateCost(0, 1)
	if routers != 2 {
		t.Fatalf("adjacent move cost = %d", routers)
	}
}

// The address-plan FIB computation must agree exactly with the abstract
// §5 enumeration in internal/analytic, on every toy topology.
func TestAggregateCostMatchesAnalytic(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    func() *topology.Graph
	}{
		{"chain", func() *topology.Graph { return topology.Chain(17) }},
		{"clique", func() *topology.Graph { return topology.Clique(12) }},
		{"tree", func() *topology.Graph { return topology.BinaryTree(15) }},
		{"star", func() *topology.Graph { return topology.Star(14) }},
		{"ring", func() *topology.Graph { return topology.Ring(10) }},
	} {
		got := mustNew(t, tc.g()).AggregateRenumberCost()
		want := analytic.ExactNameBased(tc.g()).UpdateCost
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: intradomain %v vs analytic %v", tc.name, got, want)
		}
	}
}

func TestMoveWithHostRoutes(t *testing.T) {
	n := mustNew(t, topology.Chain(5))
	addr := AddrAt(0, 5) // host born at router 0
	// Host moves to router 4 keeping its address: every router's match for
	// addr must now point toward 4.
	updated := n.MoveWithHostRoutes(addr, 4)
	if updated == 0 {
		t.Fatal("moving across the chain must update routers")
	}
	for r := 0; r < n.N(); r++ {
		want := LocalPort
		if r != 4 {
			// Next hop toward 4 on a chain is r+1.
			want = r + 1
		}
		got, ok := n.Port(r, addr)
		if !ok || got != want {
			t.Fatalf("router %d forwards addr to %d, want %d", r, got, want)
		}
	}
	// Other hosts in 10.0/16 still route toward router 0.
	if p, _ := n.Port(2, AddrAt(0, 77)); p != 1 {
		t.Fatal("subnet neighbors must be unaffected")
	}
	if n.TotalHostRoutes() == 0 {
		t.Fatal("host routes must exist after the move")
	}
	// Moving home again cleans the exceptions up.
	n.MoveWithHostRoutes(addr, 0)
	if n.TotalHostRoutes() != 0 {
		t.Fatalf("stale host routes remain: %d", n.TotalHostRoutes())
	}
}

// TestHostRouteGrowth reproduces the §6.2.2 FIB-size intuition: with many
// mobile hosts away from home, routers accumulate one /32 per displaced
// host.
func TestHostRouteGrowth(t *testing.T) {
	n := mustNew(t, topology.Clique(8))
	rng := rand.New(rand.NewSource(4))
	hosts := make([]netaddr.Addr, 40)
	at := make([]int, 40)
	for i := range hosts {
		at[i] = rng.Intn(8)
		hosts[i] = AddrAt(at[i], uint64(100+i))
	}
	for step := 0; step < 200; step++ {
		i := rng.Intn(len(hosts))
		dst := rng.Intn(8)
		n.MoveWithHostRoutes(hosts[i], dst)
		at[i] = dst
	}
	away := 0
	for i := range hosts {
		if RouterOf(hosts[i]) != at[i] {
			away++
		}
	}
	// In a clique every router needs an exception for every away host
	// except trivial coincidences; total host routes ≈ away × N (give the
	// bound some slack for hosts that happen to be home).
	total := n.TotalHostRoutes()
	if total < away {
		t.Fatalf("host routes %d below away-host count %d", total, away)
	}
	t.Logf("%d hosts away, %d total host routes across 8 routers", away, total)
}

func TestIndirectionStretch(t *testing.T) {
	n := mustNew(t, topology.Chain(5))
	// src=0, home=2, cur=4: via home = 2+2 = 4, direct = 4: stretch 0
	// (home on the path).
	if s := n.IndirectionStretch(0, 2, 4); s != 0 {
		t.Fatalf("on-path home stretch = %d", s)
	}
	// src=4, home=0, cur=4: via home = 4+4 = 8, direct 0: stretch 8.
	if s := n.IndirectionStretch(4, 0, 4); s != 8 {
		t.Fatalf("worst-case stretch = %d", s)
	}
}

func BenchmarkRenumberUpdateCost(b *testing.B) {
	n, err := New(topology.Grid(8, 8))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.RenumberUpdateCost(i%64, (i+13)%64)
	}
}

// The equivalence with the abstract enumeration must hold on arbitrary
// connected topologies, not just the toys.
func TestAggregateCostMatchesAnalyticRandom(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(24)
		g := topology.PreferentialAttachment(n, 1+rng.Intn(2), rng)
		got := mustNew(t, g).AggregateRenumberCost()
		want := analytic.ExactNameBased(g).UpdateCost
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("seed %d (n=%d): intradomain %v vs analytic %v", seed, n, got, want)
		}
	}
}
