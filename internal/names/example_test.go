package names_test

import (
	"fmt"

	"locind/internal/names"
)

// The Figure 3 example: travel.yahoo.com shares yahoo.com's port and is
// subsumed under longest-prefix matching; sports.yahoo.com is not.
func ExampleBuildLPMTable() {
	complete := map[names.Name]int{
		"yahoo.com":        2,
		"travel.yahoo.com": 2,
		"sports.yahoo.com": 5,
		"cnn.com":          2,
		"mit.edu":          4,
	}
	lpm := names.BuildLPMTable(complete)
	fmt.Println(len(complete), "->", len(lpm))
	fmt.Printf("aggregateability %.2f\n", names.Aggregateability(complete))
	// Output:
	// 5 -> 4
	// aggregateability 1.25
}

func ExampleTrie_LookupLongestSuffix() {
	var t names.Trie[int]
	t.Insert("yahoo.com", 2)
	t.Insert("sports.yahoo.com", 5)
	match, port, _ := t.LookupLongestSuffix("scores.sports.yahoo.com")
	fmt.Println(match, port)
	// Output: sports.yahoo.com 5
}
