package names

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestNameBasics(t *testing.T) {
	n := Name("travel.yahoo.com")
	if n.Depth() != 3 {
		t.Errorf("Depth = %d", n.Depth())
	}
	if got := n.Labels(); len(got) != 3 || got[0] != "travel" || got[2] != "com" {
		t.Errorf("Labels = %v", got)
	}
	p, ok := n.Parent()
	if !ok || p != "yahoo.com" {
		t.Errorf("Parent = %v %v", p, ok)
	}
	if _, ok := Name("com").Parent(); ok {
		t.Error("single label should have no parent")
	}
	if Name("").Depth() != 0 || Name("").Labels() != nil {
		t.Error("empty name basics wrong")
	}
	if Join("travel", "yahoo.com") != "travel.yahoo.com" || Join("com", "") != "com" {
		t.Error("Join wrong")
	}
}

func TestIsStrictSubdomainOf(t *testing.T) {
	cases := []struct {
		a, b Name
		want bool
	}{
		{"travel.yahoo.com", "yahoo.com", true},
		{"a.travel.yahoo.com", "yahoo.com", true},
		{"yahoo.com", "yahoo.com", false},
		{"yahoo.com", "travel.yahoo.com", false},
		{"myyahoo.com", "yahoo.com", false}, // label boundary matters
		{"yahoo.com", "com", true},
		{"anything.example", "", true},
		{"", "", false},
	}
	for _, c := range cases {
		if got := c.a.IsStrictSubdomainOf(c.b); got != c.want {
			t.Errorf("%q ≺ %q = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestTrieInsertGetRemove(t *testing.T) {
	var tr Trie[int]
	if !tr.Insert("yahoo.com", 2) {
		t.Error("first insert should be fresh")
	}
	if tr.Insert("yahoo.com", 3) {
		t.Error("second insert should replace")
	}
	if v, ok := tr.Get("yahoo.com"); !ok || v != 3 {
		t.Errorf("Get = %d %v", v, ok)
	}
	if _, ok := tr.Get("cnn.com"); ok {
		t.Error("missing name should miss")
	}
	if _, ok := tr.Get("com"); ok {
		t.Error("interior node without value should miss")
	}
	if !tr.Remove("yahoo.com") || tr.Remove("yahoo.com") {
		t.Error("remove semantics wrong")
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	var empty Trie[int]
	if _, ok := empty.Get("x"); ok {
		t.Error("empty trie Get should miss")
	}
	if empty.Remove("x") {
		t.Error("empty trie Remove should be false")
	}
}

func TestTrieLongestSuffix(t *testing.T) {
	var tr Trie[int]
	tr.Insert("yahoo.com", 2)
	tr.Insert("sports.yahoo.com", 5)
	name, v, ok := tr.LookupLongestSuffix("scores.sports.yahoo.com")
	if !ok || v != 5 || name != "sports.yahoo.com" {
		t.Fatalf("lookup = %q %d %v", name, v, ok)
	}
	name, v, ok = tr.LookupLongestSuffix("travel.yahoo.com")
	if !ok || v != 2 || name != "yahoo.com" {
		t.Fatalf("lookup = %q %d %v", name, v, ok)
	}
	if _, _, ok := tr.LookupLongestSuffix("cnn.com"); ok {
		t.Fatal("unrelated name should miss")
	}
	// Root (default) entry matches everything.
	tr.Insert("", 9)
	if _, v, ok := tr.LookupLongestSuffix("cnn.com"); !ok || v != 9 {
		t.Fatalf("root entry lookup = %d %v", v, ok)
	}
	var empty Trie[int]
	if _, _, ok := empty.LookupLongestSuffix("x.y"); ok {
		t.Fatal("empty trie suffix lookup should miss")
	}
}

func TestTrieStrictAncestor(t *testing.T) {
	var tr Trie[int]
	tr.Insert("yahoo.com", 2)
	tr.Insert("sports.yahoo.com", 5)
	name, v, ok := tr.LookupStrictAncestor("sports.yahoo.com")
	if !ok || v != 2 || name != "yahoo.com" {
		t.Fatalf("strict ancestor = %q %d %v", name, v, ok)
	}
	if _, _, ok := tr.LookupStrictAncestor("yahoo.com"); ok {
		t.Fatal("yahoo.com has no stored strict ancestor")
	}
	tr.Insert("", 1)
	if _, v, ok := tr.LookupStrictAncestor("yahoo.com"); !ok || v != 1 {
		t.Fatalf("root should be a strict ancestor, got %d %v", v, ok)
	}
}

func TestTrieWalk(t *testing.T) {
	var tr Trie[int]
	namesIn := []Name{"yahoo.com", "cnn.com", "mit.edu", "travel.yahoo.com"}
	for i, n := range namesIn {
		tr.Insert(n, i)
	}
	var visited []Name
	tr.Walk(func(n Name, _ int) bool {
		visited = append(visited, n)
		return true
	})
	if len(visited) != len(namesIn) {
		t.Fatalf("walk visited %v", visited)
	}
	// Early stop.
	count := 0
	tr.Walk(func(Name, int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
	var empty Trie[int]
	empty.Walk(func(Name, int) bool { t.Fatal("empty walk visited"); return false })
}

// TestBuildLPMTablePaperExample replays Figure 3: the entry
// [travel.yahoo.com, 2] is subsumed by [yahoo.com, 2]; sports.yahoo.com
// needs its own entry.
func TestBuildLPMTablePaperExample(t *testing.T) {
	complete := map[Name]int{
		"yahoo.com":        2,
		"travel.yahoo.com": 2,
		"sports.yahoo.com": 5,
		"cnn.com":          2,
		"mit.edu":          4,
	}
	lpm := BuildLPMTable(complete)
	if len(lpm) != 4 {
		t.Fatalf("LPM size = %d, want 4: %v", len(lpm), lpm)
	}
	if _, ok := lpm["travel.yahoo.com"]; ok {
		t.Fatal("travel.yahoo.com should be subsumed")
	}
	if lpm["sports.yahoo.com"] != 5 {
		t.Fatal("sports.yahoo.com must survive")
	}
	got := Aggregateability(complete)
	if got != 5.0/4.0 {
		t.Fatalf("aggregateability = %v, want 1.25", got)
	}
}

func TestBuildLPMTableDeepChains(t *testing.T) {
	complete := map[Name]int{
		"a.com":     2,
		"b.a.com":   5,
		"c.b.a.com": 2, // differs from surviving parent b.a.com: must be kept
	}
	lpm := BuildLPMTable(complete)
	if len(lpm) != 3 {
		t.Fatalf("LPM = %v", lpm)
	}
	same := map[Name]int{"a.com": 2, "b.a.com": 2, "c.b.a.com": 2}
	lpm = BuildLPMTable(same)
	if len(lpm) != 1 {
		t.Fatalf("chain should collapse to 1: %v", lpm)
	}
	if Aggregateability(same) != 3 {
		t.Fatalf("aggregateability = %v", Aggregateability(same))
	}
}

func TestAggregateabilityEmpty(t *testing.T) {
	if Aggregateability(map[Name]int{}) != 1 {
		t.Fatal("empty table should have aggregateability 1")
	}
}

// Property: BuildLPMTable preserves resolution semantics for every name in
// the complete table, on random hierarchies.
func TestBuildLPMTableSemanticsPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		complete := map[Name]int{}
		// Random enterprise domains with random subdomain trees.
		for d := 0; d < 20; d++ {
			root := Name(fmt.Sprintf("ent%d.com", d))
			complete[root] = rng.Intn(4)
			subs := rng.Intn(8)
			for s := 0; s < subs; s++ {
				sub := Join(fmt.Sprintf("s%d", s), root)
				complete[sub] = rng.Intn(4)
				if rng.Float64() < 0.4 {
					complete[Join("deep", sub)] = rng.Intn(4)
				}
			}
		}
		lpm := BuildLPMTable(complete)
		if len(lpm) > len(complete) {
			t.Fatal("LPM table bigger than complete table")
		}
		for n, want := range complete {
			got, ok := ResolveWithLPM(lpm, n)
			if !ok || got != want {
				t.Fatalf("trial %d: resolution of %q = %d,%v want %d", trial, n, got, ok, want)
			}
		}
	}
}

func BenchmarkBuildLPMTable(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	complete := map[Name]int{}
	for d := 0; d < 500; d++ {
		root := Name(fmt.Sprintf("dom%d.com", d))
		complete[root] = rng.Intn(8)
		for s := 0; s < 24; s++ {
			complete[Join(fmt.Sprintf("s%d", s), root)] = rng.Intn(8)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildLPMTable(complete)
	}
}

func BenchmarkTrieLookupLongestSuffix(b *testing.B) {
	var tr Trie[int]
	for d := 0; d < 10000; d++ {
		tr.Insert(Name(fmt.Sprintf("d%d.example.com", d)), d)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.LookupLongestSuffix("x.d1234.example.com")
	}
}
