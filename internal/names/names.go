// Package names models the hierarchical content name space of §3.3.2:
// dot-separated domain names, the strict-subdomain partial order, a trie
// supporting longest-suffix matching (the name-space analogue of IP
// longest-prefix matching), complete vs LPM forwarding tables, and the
// paper's aggregateability metric.
package names

import (
	"sort"
	"strings"
)

// Name is a domain-style hierarchical name such as "travel.yahoo.com". The
// hierarchy runs right to left: "yahoo.com" is the parent of
// "travel.yahoo.com". The empty Name is the root of the hierarchy.
type Name string

// Labels splits n into its dot-separated labels, most specific first.
// The empty name has no labels.
func (n Name) Labels() []string {
	if n == "" {
		return nil
	}
	return strings.Split(string(n), ".")
}

// Depth returns the number of labels in n.
func (n Name) Depth() int {
	if n == "" {
		return 0
	}
	return strings.Count(string(n), ".") + 1
}

// Parent strips the leftmost (most specific) label: the parent of
// "travel.yahoo.com" is "yahoo.com". The second return is false when n is a
// single label or empty (its parent is the root).
func (n Name) Parent() (Name, bool) {
	i := strings.IndexByte(string(n), '.')
	if i < 0 {
		return "", false
	}
	return n[i+1:], true
}

// IsStrictSubdomainOf reports the paper's d1 ≺ d2 relation:
// "travel.yahoo.com" ≺ "yahoo.com". A name is not a strict subdomain of
// itself. Every non-empty name is a strict subdomain of the root.
func (n Name) IsStrictSubdomainOf(m Name) bool {
	if n == m {
		return false
	}
	if m == "" {
		return n != ""
	}
	return strings.HasSuffix(string(n), "."+string(m))
}

// Join prepends label to n: Join("travel", "yahoo.com") = "travel.yahoo.com".
func Join(label string, n Name) Name {
	if n == "" {
		return Name(label)
	}
	return Name(label) + "." + n
}

// Trie is a name trie keyed by label suffixes, the content-routing analogue
// of the netaddr prefix trie: a lookup finds the most specific registered
// ancestor (or exact match) of a name. The zero value is ready to use.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	children map[string]*trieNode[V]
	val      V
	set      bool
}

func (t *Trie[V]) ensureRoot() *trieNode[V] {
	if t.root == nil {
		t.root = &trieNode[V]{}
	}
	return t.root
}

// Len returns the number of names stored.
func (t *Trie[V]) Len() int { return t.size }

// Insert stores v under name n, replacing any existing value; it reports
// whether the name was newly inserted. Inserting the empty name sets a
// default ("root") entry that matches everything.
func (t *Trie[V]) Insert(n Name, v V) bool {
	node := t.ensureRoot()
	labels := n.Labels()
	for i := len(labels) - 1; i >= 0; i-- {
		if node.children == nil {
			node.children = map[string]*trieNode[V]{}
		}
		child := node.children[labels[i]]
		if child == nil {
			child = &trieNode[V]{}
			node.children[labels[i]] = child
		}
		node = child
	}
	fresh := !node.set
	node.val = v
	node.set = true
	if fresh {
		t.size++
	}
	return fresh
}

// Get returns the value stored for exactly n.
func (t *Trie[V]) Get(n Name) (V, bool) {
	var zero V
	if t.root == nil {
		return zero, false
	}
	node := t.root
	labels := n.Labels()
	for i := len(labels) - 1; i >= 0; i-- {
		node = node.children[labels[i]]
		if node == nil {
			return zero, false
		}
	}
	if !node.set {
		return zero, false
	}
	return node.val, true
}

// Remove deletes the exact name n, reporting whether it was present.
func (t *Trie[V]) Remove(n Name) bool {
	if t.root == nil {
		return false
	}
	node := t.root
	labels := n.Labels()
	for i := len(labels) - 1; i >= 0; i-- {
		node = node.children[labels[i]]
		if node == nil {
			return false
		}
	}
	if !node.set {
		return false
	}
	var zero V
	node.set = false
	node.val = zero
	t.size--
	return true
}

// LookupLongestSuffix finds the most specific stored name that is n itself
// or an ancestor of n — the name-space longest-prefix match.
func (t *Trie[V]) LookupLongestSuffix(n Name) (Name, V, bool) {
	var bestV V
	var bestDepth = -1
	if t.root == nil {
		return "", bestV, false
	}
	node := t.root
	labels := n.Labels()
	if node.set {
		bestV, bestDepth = node.val, 0
	}
	for i := len(labels) - 1; i >= 0; i-- {
		node = node.children[labels[i]]
		if node == nil {
			break
		}
		if node.set {
			bestV = node.val
			bestDepth = len(labels) - i
		}
	}
	if bestDepth < 0 {
		return "", bestV, false
	}
	match := Name(strings.Join(labels[len(labels)-bestDepth:], "."))
	return match, bestV, true
}

// LookupStrictAncestor is LookupLongestSuffix restricted to strict
// ancestors of n (n itself excluded). It answers "what would a lookup for a
// name under n resolve to if n's own entry were removed".
func (t *Trie[V]) LookupStrictAncestor(n Name) (Name, V, bool) {
	var bestV V
	bestDepth := -1
	if t.root == nil {
		return "", bestV, false
	}
	node := t.root
	labels := n.Labels()
	if node.set && len(labels) > 0 {
		bestV, bestDepth = node.val, 0
	}
	for i := len(labels) - 1; i >= 1; i-- { // stop before the full name
		node = node.children[labels[i]]
		if node == nil {
			break
		}
		if node.set {
			bestV = node.val
			bestDepth = len(labels) - i
		}
	}
	if bestDepth < 0 {
		return "", bestV, false
	}
	match := Name(strings.Join(labels[len(labels)-bestDepth:], "."))
	return match, bestV, true
}

// Walk visits all stored names in depth-first lexicographic label order.
// Returning false stops the walk.
func (t *Trie[V]) Walk(fn func(Name, V) bool) {
	if t.root == nil {
		return
	}
	t.walk(t.root, "", fn)
}

func (t *Trie[V]) walk(node *trieNode[V], suffix Name, fn func(Name, V) bool) bool {
	if node.set {
		if !fn(suffix, node.val) {
			return false
		}
	}
	labels := make([]string, 0, len(node.children))
	for l := range node.children {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		if !t.walk(node.children[l], Join(l, suffix), fn) {
			return false
		}
	}
	return true
}

// BuildLPMTable computes the LPM forwarding table of §3.3.2: the subset of
// the complete table that excludes every subsumed entry. An entry [d1, port]
// is subsumed when the most specific strict ancestor of d1 that survives
// into the LPM table carries the same port, so longest-suffix matching
// resolves d1 correctly without its own entry.
//
// Entries are considered in ancestor-before-descendant order, which makes
// the computation a single pass: each name is kept iff its current
// longest-suffix resolution in the partial table differs from its port.
func BuildLPMTable[V comparable](complete map[Name]V) map[Name]V {
	ns := make([]Name, 0, len(complete))
	for n := range complete {
		ns = append(ns, n)
	}
	sort.Slice(ns, func(i, j int) bool {
		di, dj := ns[i].Depth(), ns[j].Depth()
		if di != dj {
			return di < dj
		}
		return ns[i] < ns[j]
	})
	var trie Trie[V]
	out := make(map[Name]V)
	for _, n := range ns {
		port := complete[n]
		if _, v, ok := trie.LookupLongestSuffix(n); ok && v == port {
			continue // subsumed
		}
		trie.Insert(n, port)
		out[n] = port
	}
	return out
}

// Aggregateability is the ratio |complete| / |LPM| (§3.3.2). An empty table
// has aggregateability 1 by convention.
func Aggregateability[V comparable](complete map[Name]V) float64 {
	if len(complete) == 0 {
		return 1
	}
	lpm := BuildLPMTable(complete)
	return float64(len(complete)) / float64(len(lpm))
}

// ResolveWithLPM answers what the LPM table forwards name n to; used by
// tests to verify that BuildLPMTable is semantics-preserving.
func ResolveWithLPM[V comparable](lpm map[Name]V, n Name) (V, bool) {
	var trie Trie[V]
	for name, v := range lpm {
		trie.Insert(name, v)
	}
	_, v, ok := trie.LookupLongestSuffix(n)
	return v, ok
}
