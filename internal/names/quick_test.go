package names

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// randName draws hierarchical names from a small label alphabet so random
// tests actually produce ancestor/descendant collisions.
func randName(rng *rand.Rand) Name {
	labels := []string{"a", "b", "c", "www", "cdn", "static"}
	depth := 1 + rng.Intn(4)
	parts := make([]string, depth)
	for i := range parts {
		parts[i] = labels[rng.Intn(len(labels))]
	}
	return Name(strings.Join(parts, "."))
}

// nameSet generates reflect-based random values for testing/quick.
type nameSet []Name

// Generate implements quick.Generator.
func (nameSet) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(size + 1)
	out := make(nameSet, n)
	for i := range out {
		out[i] = randName(rng)
	}
	return reflect.ValueOf(out)
}

// Property: the trie agrees with a map model for Get/Len after any insert
// sequence, and LookupLongestSuffix agrees with a brute-force longest-
// ancestor scan.
func TestTrieMatchesMapModel(t *testing.T) {
	f := func(ns nameSet) bool {
		var tr Trie[int]
		model := map[Name]int{}
		for i, n := range ns {
			tr.Insert(n, i)
			model[n] = i
		}
		if tr.Len() != len(model) {
			return false
		}
		for n, want := range model {
			if got, ok := tr.Get(n); !ok || got != want {
				return false
			}
		}
		// Longest-suffix agreement on fresh probes.
		rng := rand.New(rand.NewSource(int64(len(ns))))
		for probe := 0; probe < 20; probe++ {
			q := randName(rng)
			bestDepth := -1
			bestVal := 0
			found := false
			for n, v := range model {
				if n == q || q.IsStrictSubdomainOf(n) {
					if n.Depth() > bestDepth {
						bestDepth, bestVal, found = n.Depth(), v, true
					}
				}
			}
			_, got, ok := tr.LookupLongestSuffix(q)
			if ok != found || (ok && got != bestVal) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: BuildLPMTable never grows the table, always preserves
// resolution of every complete-table name, and is idempotent.
func TestBuildLPMTableProperties(t *testing.T) {
	f := func(ns nameSet, ports []uint8) bool {
		complete := map[Name]int{}
		for i, n := range ns {
			p := 0
			if len(ports) > 0 {
				p = int(ports[i%len(ports)]) % 3
			}
			complete[n] = p
		}
		lpm := BuildLPMTable(complete)
		if len(lpm) > len(complete) {
			return false
		}
		for n, want := range complete {
			if got, ok := ResolveWithLPM(lpm, n); !ok || got != want {
				return false
			}
		}
		// Idempotence: compacting the LPM table changes nothing.
		again := BuildLPMTable(lpm)
		if len(again) != len(lpm) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: IsStrictSubdomainOf is a strict partial order on random names:
// irreflexive, antisymmetric, transitive.
func TestSubdomainPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randName(rng), randName(rng), randName(rng)
		if a.IsStrictSubdomainOf(a) {
			return false
		}
		if a.IsStrictSubdomainOf(b) && b.IsStrictSubdomainOf(a) {
			return false
		}
		if a.IsStrictSubdomainOf(b) && b.IsStrictSubdomainOf(c) && !a.IsStrictSubdomainOf(c) {
			return false
		}
		// Parent is always a strict ancestor.
		if p, ok := a.Parent(); ok && !a.IsStrictSubdomainOf(p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
