package par

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"locind/internal/obs"
)

// TestForEachCtxDrainsOnCancel: cancelling mid-run stops new claims but
// every in-flight call finishes — no abandoned work, no goroutine leaks,
// and the pool reports the cancellation.
func TestForEachCtxDrainsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started, finished atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	err := ForEachCtx(ctx, 4, 100, func(i int) {
		started.Add(1)
		once.Do(func() {
			cancel() // cancellation lands while work is in flight
			close(release)
		})
		<-release
		finished.Add(1)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if started.Load() != finished.Load() {
		t.Fatalf("pool abandoned work: started %d, finished %d", started.Load(), finished.Load())
	}
	if started.Load() >= 100 {
		t.Fatal("cancellation did not stop new claims")
	}
}

func TestForEachCtxRunsAllWithoutCancel(t *testing.T) {
	var ran atomic.Int64
	if err := ForEachCtx(context.Background(), 4, 50, func(int) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d of 50", ran.Load())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran.Store(0)
	if err := ForEachCtx(ctx, 4, 50, func(int) { ran.Add(1) }); err != context.Canceled {
		t.Fatalf("pre-cancelled err = %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-cancelled ctx still ran %d items", ran.Load())
	}
}

func TestPoolMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	SetMetrics(m)
	defer SetMetrics(nil)
	ForEach(4, 30, func(int) {})
	if m.Completed.Value() != 30 {
		t.Fatalf("completed = %d", m.Completed.Value())
	}
	if m.QueueDepth.Value() != 0 || m.Busy.Value() != 0 {
		t.Fatalf("idle pool left queue=%d busy=%d", m.QueueDepth.Value(), m.Busy.Value())
	}
	// A cancelled run zeroes the queue gauge for the items never claimed.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ForEachCtx(ctx, 4, 30, func(int) {}) //nolint:errcheck // the gauge is the assertion
	if m.QueueDepth.Value() != 0 {
		t.Fatalf("cancelled run left queue depth %d", m.QueueDepth.Value())
	}
	if m.Completed.Value() != 30 {
		t.Fatalf("cancelled run completed %d extra items", m.Completed.Value()-30)
	}
}
