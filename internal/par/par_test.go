package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 16, 0} {
		const n = 137
		counts := make([]atomic.Int32, n)
		ForEach(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -1, func(int) { ran = true })
	if ran {
		t.Fatal("fn must not run for empty ranges")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	got := Map(8, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
}

func TestShards(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{10, 3}, {3, 10}, {1, 1}, {7, 7}, {100, 16}, {5, 0},
	} {
		sh := Shards(tc.n, tc.k)
		covered := 0
		prev := 0
		for _, s := range sh {
			if s[0] != prev || s[1] <= s[0] {
				t.Fatalf("Shards(%d,%d) = %v: bad range %v", tc.n, tc.k, sh, s)
			}
			covered += s[1] - s[0]
			prev = s[1]
		}
		if covered != tc.n || prev != tc.n {
			t.Fatalf("Shards(%d,%d) = %v covers %d", tc.n, tc.k, sh, covered)
		}
	}
	if Shards(0, 4) != nil {
		t.Fatal("empty range must shard to nil")
	}
}

func TestShardsFor(t *testing.T) {
	// Oversubscribed shards still cover [0, n) exactly once, in order.
	for _, tc := range []struct{ n, workers int }{{100, 4}, {3, 8}, {0, 4}, {1, 1}} {
		shards := ShardsFor(tc.n, tc.workers)
		next := 0
		for _, sh := range shards {
			if sh[0] != next || sh[1] <= sh[0] {
				t.Fatalf("n=%d workers=%d: bad shard %v after %d", tc.n, tc.workers, sh, next)
			}
			next = sh[1]
		}
		if next != tc.n {
			t.Fatalf("n=%d workers=%d: shards cover up to %d", tc.n, tc.workers, next)
		}
	}
	// A big enough input gets shardOversub shards per worker.
	if got, want := len(ShardsFor(1000, 2)), shardOversub*2; got != want {
		t.Fatalf("ShardsFor(1000, 2) cut %d shards, want %d", got, want)
	}
}
