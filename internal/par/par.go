// Package par is the small worker-pool scheduler behind the parallel
// evaluation drivers: it fans index-addressed work out across a bounded
// number of goroutines. Determinism is preserved by construction — workers
// claim indices from an atomic counter but callers write each result into
// the work item's own slot of a preallocated slice, so the collected output
// is identical at every parallelism degree, including 1.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"locind/internal/obs"
)

// Metrics is the pool's observability surface, shared by every ForEach in
// the process once installed with SetMetrics. Handles are nil-safe, so the
// zero value records nothing.
type Metrics struct {
	// QueueDepth is the number of fanned-out items not yet claimed.
	QueueDepth *obs.Gauge
	// Busy is the number of workers currently running fn.
	Busy *obs.Gauge
	// Completed counts fn invocations that finished.
	Completed *obs.Counter
}

// NewMetrics registers the pool families on reg. A nil registry yields
// all-nil handles.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		QueueDepth: reg.Gauge("locind_par_queue_depth", "fanned-out items not yet claimed"),
		Busy:       reg.Gauge("locind_par_busy_workers", "workers currently running a task"),
		Completed:  reg.Counter("locind_par_completed_total", "tasks finished"),
	}
}

// liveMetrics is swapped atomically so instrumentation can be installed
// (or detached) without synchronizing with in-flight pools.
var liveMetrics atomic.Pointer[Metrics]

// noMetrics backs uninstrumented runs; its nil handles make every record a
// predictable-branch no-op.
var noMetrics = &Metrics{}

// SetMetrics installs m as the process-wide pool metrics; nil detaches.
func SetMetrics(m *Metrics) { liveMetrics.Store(m) }

func metricsHandles() *Metrics {
	if m := liveMetrics.Load(); m != nil {
		return m
	}
	return noMetrics
}

// Workers resolves a parallelism knob: n itself when positive, GOMAXPROCS
// otherwise. Every knob in the repo (expt.Config.Parallel, locind's
// -parallel flag) goes through this so 0 uniformly means "all cores".
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach calls fn(i) exactly once for every i in [0, n), fanning the calls
// out across min(Workers(workers), n) goroutines, and returns when all have
// finished. fn must be safe for concurrent invocation with distinct i; with
// workers == 1 everything runs on the calling goroutine in index order.
func ForEach(workers, n int, fn func(i int)) {
	forEach(nil, workers, n, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: when ctx is done,
// workers stop claiming new indices, in-flight calls run to completion (the
// pool drains cleanly — fn is never abandoned mid-item), and the context's
// error is returned. A nil error means every index ran.
func ForEachCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	forEach(ctx.Done(), workers, n, fn)
	return ctx.Err()
}

// forEach is the shared fan-out core. A nil done channel means no
// cancellation and keeps the uncancellable path select-free.
func forEach(done <-chan struct{}, workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	m := metricsHandles()
	m.QueueDepth.Add(int64(n))
	var next atomic.Int64
	defer func() {
		// Zero out whatever cancellation left unclaimed.
		claimed := next.Load()
		if claimed > int64(n) {
			claimed = int64(n)
		}
		m.QueueDepth.Add(claimed - int64(n))
	}()
	cancelled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	run := func(i int) {
		m.QueueDepth.Add(-1)
		m.Busy.Add(1)
		fn(i)
		m.Busy.Add(-1)
		m.Completed.Inc()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if cancelled() {
				return
			}
			next.Add(1)
			run(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				if cancelled() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn over [0, n) with ForEach and returns the results in index
// order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// Shards splits [0, n) into at most k contiguous near-equal [lo, hi) ranges
// covering every index exactly once, for workloads that are cheaper to claim
// in batches than one item at a time.
func Shards(n, k int) [][2]int {
	if n <= 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	out := make([][2]int, 0, k)
	for s := 0; s < k; s++ {
		lo := s * n / k
		hi := (s + 1) * n / k
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// shardOversub is how many shards ShardsFor cuts per worker. Experiment
// shards are heavy-tailed (a popular timeline carries orders of magnitude
// more events than a tail one), so exactly-one-shard-per-worker leaves the
// pool idle behind the unlucky worker that drew the heavy shard; a few
// shards per worker lets the atomic claim counter rebalance dynamically
// while each shard stays large enough to amortize claim overhead.
const shardOversub = 4

// ShardsFor splits [0, n) for a pool of Workers(workers) goroutines,
// oversubscribing shardOversub shards per worker for dynamic load balance.
func ShardsFor(n, workers int) [][2]int {
	return Shards(n, shardOversub*Workers(workers))
}
