// Package par is the small worker-pool scheduler behind the parallel
// evaluation drivers: it fans index-addressed work out across a bounded
// number of goroutines. Determinism is preserved by construction — workers
// claim indices from an atomic counter but callers write each result into
// the work item's own slot of a preallocated slice, so the collected output
// is identical at every parallelism degree, including 1.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob: n itself when positive, GOMAXPROCS
// otherwise. Every knob in the repo (expt.Config.Parallel, locind's
// -parallel flag) goes through this so 0 uniformly means "all cores".
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach calls fn(i) exactly once for every i in [0, n), fanning the calls
// out across min(Workers(workers), n) goroutines, and returns when all have
// finished. fn must be safe for concurrent invocation with distinct i; with
// workers == 1 everything runs on the calling goroutine in index order.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn over [0, n) with ForEach and returns the results in index
// order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// Shards splits [0, n) into at most k contiguous near-equal [lo, hi) ranges
// covering every index exactly once, for workloads that are cheaper to claim
// in batches than one item at a time.
func Shards(n, k int) [][2]int {
	if n <= 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	out := make([][2]int, 0, k)
	for s := 0; s < k; s++ {
		lo := s * n / k
		hi := (s + 1) * n / k
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}
