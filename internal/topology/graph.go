// Package topology provides the undirected graph model used by the analytic
// stretch/update-cost study (§5) and by the synthetic router-level topology
// underlying the iPlane substitute. It includes the paper's toy topologies
// (chain, clique, binary tree, star) plus generic builders, BFS/Dijkstra
// shortest paths, and all-pairs hop-count tables.
package topology

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// Graph is an undirected graph over nodes 0..N-1 with optional per-edge
// weights. Parallel edges and self-loops are rejected.
type Graph struct {
	n   int
	adj [][]Edge
}

// Edge is a half-edge: the neighbor it leads to and its weight. For
// unweighted uses, Weight is 1.
type Edge struct {
	To     int
	Weight float64
}

// New creates a graph with n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("topology: negative node count")
	}
	return &Graph{n: n, adj: make([][]Edge, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of (undirected) edges.
func (g *Graph) M() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total / 2
}

// AddEdge inserts an undirected unit-weight edge.
func (g *Graph) AddEdge(u, v int) error { return g.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge inserts an undirected edge with weight w.
func (g *Graph) AddWeightedEdge(u, v int, w float64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("topology: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("topology: self-loop at %d", u)
	}
	if w <= 0 {
		return fmt.Errorf("topology: non-positive weight %v", w)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("topology: duplicate edge (%d,%d)", u, v)
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Weight: w})
	g.adj[v] = append(g.adj[v], Edge{To: u, Weight: w})
	return nil
}

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	for _, e := range g.adj[u] {
		if e.To == v {
			return true
		}
	}
	return false
}

// Neighbors returns the half-edges out of u. The returned slice must not be
// modified.
func (g *Graph) Neighbors(u int) []Edge { return g.adj[u] }

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// BFS computes unweighted hop distances from src. Unreachable nodes get -1.
// The returned parent slice lets callers reconstruct one shortest-path tree
// (parent[src] == src).
func (g *Graph) BFS(src int) (dist []int, parent []int) {
	dist = make([]int, g.n)
	parent = make([]int, g.n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	if src < 0 || src >= g.n {
		return dist, parent
	}
	dist[src] = 0
	parent[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if dist[e.To] == -1 {
				dist[e.To] = dist[u] + 1
				parent[e.To] = u
				queue = append(queue, e.To)
			}
		}
	}
	return dist, parent
}

// HopDist returns the hop distance between u and v (-1 if disconnected).
func (g *Graph) HopDist(u, v int) int {
	d, _ := g.BFS(u)
	if v < 0 || v >= g.n {
		return -1
	}
	return d[v]
}

// AllPairsHops computes the full hop-count matrix with one BFS per node.
func (g *Graph) AllPairsHops() [][]int {
	out := make([][]int, g.n)
	for u := 0; u < g.n; u++ {
		out[u], _ = g.BFS(u)
	}
	return out
}

// Connected reports whether the graph is connected (the empty graph and the
// single node are connected).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	d, _ := g.BFS(0)
	for _, x := range d {
		if x == -1 {
			return false
		}
	}
	return true
}

// Diameter returns the largest finite hop distance, or -1 if the graph is
// disconnected or empty.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	maxd := 0
	for u := 0; u < g.n; u++ {
		d, _ := g.BFS(u)
		for _, x := range d {
			if x == -1 {
				return -1
			}
			if x > maxd {
				maxd = x
			}
		}
	}
	return maxd
}

// Dijkstra computes weighted shortest-path distances from src, with parents
// for path reconstruction. Unreachable nodes get +Inf distance and parent -1.
func (g *Graph) Dijkstra(src int) (dist []float64, parent []int) {
	dist = make([]float64, g.n)
	parent = make([]int, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	if src < 0 || src >= g.n {
		return dist, parent
	}
	dist[src] = 0
	parent[src] = src
	pq := &nodeHeap{{node: src, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		if it.d > dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			nd := it.d + e.Weight
			if nd < dist[e.To] {
				dist[e.To] = nd
				parent[e.To] = it.node
				heap.Push(pq, nodeItem{node: e.To, d: nd})
			}
		}
	}
	return dist, parent
}

// Path reconstructs the node sequence src..dst from a parent slice produced
// by BFS or Dijkstra rooted at src. It returns nil if dst is unreachable.
func Path(parent []int, src, dst int) []int {
	if dst < 0 || dst >= len(parent) || parent[dst] == -1 {
		return nil
	}
	var rev []int
	for v := dst; ; v = parent[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
		if parent[v] == v || parent[v] == -1 {
			if v != src {
				return nil
			}
		}
		if len(rev) > len(parent) {
			return nil // cycle guard; malformed parent slice
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if rev[0] != src {
		return nil
	}
	return rev
}

type nodeItem struct {
	node int
	d    float64
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Chain builds the paper's Figure 5 topology: routers 1..n in a line
// (implemented as nodes 0..n-1).
func Chain(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1) //nolint:errcheck // construction cannot fail here
	}
	return g
}

// Clique builds the complete graph on n nodes.
func Clique(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j) //nolint:errcheck
		}
	}
	return g
}

// BinaryTree builds a complete binary tree with n nodes, rooted at 0 with
// children 2i+1 and 2i+2 (heap layout).
func BinaryTree(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		if l := 2*i + 1; l < n {
			g.AddEdge(i, l) //nolint:errcheck
		}
		if r := 2*i + 2; r < n {
			g.AddEdge(i, r) //nolint:errcheck
		}
	}
	return g
}

// Star builds a star with node 0 at the center and n leaves (n+1 nodes
// total), matching the paper's "star with n+1 routers" convention.
func Star(n int) *Graph {
	g := New(n + 1)
	for i := 1; i <= n; i++ {
		g.AddEdge(0, i) //nolint:errcheck
	}
	return g
}

// Ring builds a cycle on n >= 3 nodes.
func Ring(n int) *Graph {
	g := New(n)
	if n < 3 {
		return g
	}
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n) //nolint:errcheck
	}
	return g
}

// Grid builds a rows x cols 4-neighbor mesh.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1)) //nolint:errcheck
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c)) //nolint:errcheck
			}
		}
	}
	return g
}

// GNP builds an Erdős–Rényi G(n, p) random graph using rng.
func GNP(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j) //nolint:errcheck
			}
		}
	}
	return g
}

// PreferentialAttachment builds a Barabási–Albert-style graph: nodes arrive
// one at a time and attach m edges to existing nodes chosen proportionally
// to degree (plus one, so isolated seeds can be chosen). Produces the
// heavy-tailed degree distributions characteristic of AS-level topologies.
func PreferentialAttachment(n, m int, rng *rand.Rand) *Graph {
	g := New(n)
	if n == 0 {
		return g
	}
	if m < 1 {
		m = 1
	}
	// Repeated-node list for degree-proportional sampling.
	var pool []int
	pool = append(pool, 0)
	for v := 1; v < n; v++ {
		seen := map[int]bool{}
		var targets []int // in draw order: map iteration would be nondeterministic
		k := m
		if v < m {
			k = v
		}
		for len(targets) < k {
			t := pool[rng.Intn(len(pool))]
			if t != v && !seen[t] {
				seen[t] = true
				targets = append(targets, t)
			}
		}
		for _, t := range targets {
			g.AddEdge(v, t) //nolint:errcheck
			pool = append(pool, t)
			pool = append(pool, v)
		}
		pool = append(pool, v)
	}
	return g
}
