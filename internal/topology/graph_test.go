package topology

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestNewAndEdges(t *testing.T) {
	g := New(3)
	if g.N() != 3 || g.M() != 0 {
		t.Fatalf("empty graph N=%d M=%d", g.N(), g.M())
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1); err == nil {
		t.Fatal("duplicate edge should fail")
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Fatal("reversed duplicate edge should fail")
	}
	if err := g.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop should fail")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Fatal("out-of-range should fail")
	}
	if err := g.AddWeightedEdge(1, 2, 0); err == nil {
		t.Fatal("zero weight should fail")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge should be symmetric")
	}
	if g.HasEdge(1, 2) || g.HasEdge(-1, 0) {
		t.Fatal("HasEdge false positives")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatal("Degree wrong")
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestChain(t *testing.T) {
	g := Chain(5)
	if g.M() != 4 {
		t.Fatalf("chain edges = %d", g.M())
	}
	if d := g.HopDist(0, 4); d != 4 {
		t.Fatalf("chain end-to-end = %d", d)
	}
	if g.Diameter() != 4 {
		t.Fatalf("chain diameter = %d", g.Diameter())
	}
	if !g.Connected() {
		t.Fatal("chain should be connected")
	}
}

func TestClique(t *testing.T) {
	g := Clique(6)
	if g.M() != 15 {
		t.Fatalf("clique edges = %d", g.M())
	}
	if g.Diameter() != 1 {
		t.Fatalf("clique diameter = %d", g.Diameter())
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(7) // perfect tree of depth 2
	if g.M() != 6 {
		t.Fatalf("tree edges = %d", g.M())
	}
	// Distance between the two deepest leaves in different subtrees: 4.
	if d := g.HopDist(3, 6); d != 4 {
		t.Fatalf("leaf-to-leaf = %d", d)
	}
	if g.Diameter() != 4 {
		t.Fatalf("tree diameter = %d", g.Diameter())
	}
}

func TestStar(t *testing.T) {
	g := Star(10) // 11 nodes
	if g.N() != 11 || g.M() != 10 {
		t.Fatalf("star N=%d M=%d", g.N(), g.M())
	}
	if g.Diameter() != 2 {
		t.Fatalf("star diameter = %d", g.Diameter())
	}
	if g.Degree(0) != 10 {
		t.Fatalf("center degree = %d", g.Degree(0))
	}
}

func TestRingAndGrid(t *testing.T) {
	r := Ring(6)
	if r.M() != 6 || r.Diameter() != 3 {
		t.Fatalf("ring M=%d diam=%d", r.M(), r.Diameter())
	}
	if Ring(2).M() != 0 {
		t.Fatal("degenerate ring should have no edges")
	}
	g := Grid(3, 4)
	if g.M() != 3*3+2*4 {
		t.Fatalf("grid M=%d", g.M())
	}
	if g.Diameter() != 5 {
		t.Fatalf("grid diameter = %d", g.Diameter())
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1) //nolint:errcheck
	d, parent := g.BFS(0)
	if d[1] != 1 || d[2] != -1 || d[3] != -1 {
		t.Fatalf("BFS dist = %v", d)
	}
	if parent[2] != -1 {
		t.Fatal("unreachable parent should be -1")
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if g.Diameter() != -1 {
		t.Fatal("disconnected diameter should be -1")
	}
	if g.HopDist(0, 2) != -1 {
		t.Fatal("unreachable HopDist should be -1")
	}
}

func TestBFSBadSource(t *testing.T) {
	g := Chain(3)
	d, _ := g.BFS(-1)
	for _, x := range d {
		if x != -1 {
			t.Fatal("BFS from bad source should mark all unreachable")
		}
	}
}

func TestPathReconstruction(t *testing.T) {
	g := Chain(5)
	_, parent := g.BFS(0)
	p := Path(parent, 0, 4)
	want := []int{0, 1, 2, 3, 4}
	if len(p) != len(want) {
		t.Fatalf("path = %v", p)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
	if Path(parent, 0, 0) == nil {
		t.Fatal("trivial path should be non-nil")
	}
	g2 := New(3)
	_, par2 := g2.BFS(0)
	if Path(par2, 0, 2) != nil {
		t.Fatal("unreachable path should be nil")
	}
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := GNP(40, 0.15, rng)
	for src := 0; src < 5; src++ {
		bd, _ := g.BFS(src)
		dd, _ := g.Dijkstra(src)
		for v := range bd {
			if bd[v] == -1 {
				if !math.IsInf(dd[v], 1) {
					t.Fatalf("node %d: BFS unreachable but Dijkstra %v", v, dd[v])
				}
				continue
			}
			if float64(bd[v]) != dd[v] {
				t.Fatalf("node %d: BFS %d vs Dijkstra %v", v, bd[v], dd[v])
			}
		}
	}
}

func TestDijkstraWeighted(t *testing.T) {
	g := New(4)
	g.AddWeightedEdge(0, 1, 1)  //nolint:errcheck
	g.AddWeightedEdge(1, 2, 1)  //nolint:errcheck
	g.AddWeightedEdge(0, 2, 10) //nolint:errcheck
	g.AddWeightedEdge(2, 3, 1)  //nolint:errcheck
	d, parent := g.Dijkstra(0)
	if d[2] != 2 {
		t.Fatalf("d[2] = %v, want 2 (via node 1)", d[2])
	}
	if d[3] != 3 {
		t.Fatalf("d[3] = %v", d[3])
	}
	p := Path(parent, 0, 3)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v", p)
		}
	}
}

func TestGNPDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := GNP(100, 0.1, rng)
	maxEdges := 100 * 99 / 2
	frac := float64(g.M()) / float64(maxEdges)
	if frac < 0.07 || frac > 0.13 {
		t.Fatalf("GNP density = %v, want ~0.1", frac)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := PreferentialAttachment(300, 2, rng)
	if !g.Connected() {
		t.Fatal("PA graph should be connected")
	}
	// Heavy tail: max degree should dwarf the median degree.
	maxDeg, sumDeg := 0, 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(sumDeg) / float64(g.N())
	if float64(maxDeg) < 4*avg {
		t.Fatalf("PA max degree %d not heavy-tailed vs avg %.1f", maxDeg, avg)
	}
	if PreferentialAttachment(0, 2, rng).N() != 0 {
		t.Fatal("empty PA should work")
	}
	if !PreferentialAttachment(5, 0, rng).Connected() {
		t.Fatal("m<1 should be clamped to 1 and stay connected")
	}
}

// A fixed seed must build the same graph every time. The generator once
// inserted each node's edges in map-iteration order, which reordered the
// degree-proportional pool and made every downstream pa-* experiment drift
// run to run.
func TestPreferentialAttachmentDeterministic(t *testing.T) {
	build := func() []string {
		g := PreferentialAttachment(120, 2, rand.New(rand.NewSource(4)))
		edges := make([]string, 0, g.N())
		for v := 0; v < g.N(); v++ {
			edges = append(edges, fmt.Sprint(g.Neighbors(v)))
		}
		return edges
	}
	a, b := build(), build()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d adjacency diverged across identical seeds: %s vs %s", v, a[v], b[v])
		}
	}
}

func TestAllPairsHopsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := GNP(30, 0.2, rng)
	ap := g.AllPairsHops()
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if ap[u][v] != ap[v][u] {
				t.Fatalf("asymmetric hops %d,%d", u, v)
			}
		}
		if ap[u][u] != 0 {
			t.Fatalf("self distance %d", ap[u][u])
		}
	}
}

// Property: on random graphs, BFS distances satisfy the triangle
// inequality through any intermediate node, parents always step exactly one
// hop closer to the source, and Path endpoints/lengths agree with dist.
func TestBFSInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		g := GNP(30, 0.12, rng)
		src := rng.Intn(g.N())
		dist, parent := g.BFS(src)
		for v := 0; v < g.N(); v++ {
			if dist[v] < 0 {
				continue
			}
			if v != src {
				p := parent[v]
				if p < 0 || dist[p] != dist[v]-1 || !g.HasEdge(p, v) {
					t.Fatalf("trial %d: bad parent %d for %d", trial, p, v)
				}
			}
			path := Path(parent, src, v)
			if len(path) != dist[v]+1 || path[0] != src || path[len(path)-1] != v {
				t.Fatalf("trial %d: bad path %v for dist %d", trial, path, dist[v])
			}
			for _, e := range g.Neighbors(v) {
				if dist[e.To] >= 0 && dist[e.To] > dist[v]+1 {
					t.Fatalf("trial %d: triangle inequality broken at %d-%d", trial, v, e.To)
				}
			}
		}
	}
}
