package nomad

import "locind/internal/obs"

// AgentMetrics instruments the device-side upload pipeline, shared across a
// fleet of agents (obs handles are concurrency-safe). All handles are
// nil-safe, so an agent without metrics records nothing.
type AgentMetrics struct {
	// BatchesUploaded and EntriesUploaded count successful stores.
	BatchesUploaded *obs.Counter
	EntriesUploaded *obs.Counter
	// UploadFailures counts upload opportunities that exhausted retries —
	// "gave up for now", not data loss: the batch stays queued for the
	// next opportunity. Soak dashboards read this against dropped-batch
	// counters to separate deferral from hard loss.
	UploadFailures *obs.Counter
}

// NewAgentMetrics registers the nomad agent families on reg. A nil registry
// yields all-nil handles.
func NewAgentMetrics(reg *obs.Registry) *AgentMetrics {
	return &AgentMetrics{
		BatchesUploaded: reg.Counter("locind_nomad_batches_uploaded_total", "batches successfully stored"),
		EntriesUploaded: reg.Counter("locind_nomad_entries_uploaded_total", "log entries successfully stored"),
		UploadFailures:  reg.Counter("locind_nomad_upload_failures_total", "upload opportunities that exhausted retries"),
	}
}

// noAgentMetrics backs agents without metrics so the upload path never
// branches per handle; its nil fields make every record a no-op.
var noAgentMetrics = &AgentMetrics{}

func (a *Agent) m() *AgentMetrics {
	if a.Obs == nil {
		return noAgentMetrics
	}
	return a.Obs
}
