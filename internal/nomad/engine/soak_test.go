package engine

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// runQuickSoak runs a small chaos soak and returns its report and output.
func runQuickSoak(t *testing.T, seed int64) (*SoakReport, string) {
	t.Helper()
	var buf bytes.Buffer
	rep, err := RunSoak(context.Background(), SoakConfig{
		Devices: 250,
		Days:    2,
		Seed:    seed,
		Shards:  4,
		Out:     &buf,
	})
	if err != nil {
		t.Fatalf("soak failed: %v\n%s", err, buf.String())
	}
	return rep, buf.String()
}

// TestSoakQuickReplaysByteIdentically: the deterministic soak evidence —
// the digest line — is byte-identical across same-seed runs even though
// the chaos interleaving is not, and every assertion holds under faults.
func TestSoakQuickReplaysByteIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak over real TCP; skipped in -short")
	}
	repA, outA := runQuickSoak(t, 11)
	repB, outB := runQuickSoak(t, 11)
	if !repA.OK() || !repB.OK() {
		t.Fatalf("soak assertions failed:\n%s\n%s", outA, outB)
	}
	if repA.Digest != repB.Digest || repA.Records != repB.Records ||
		repA.Batches != repB.Batches || repA.Events != repB.Events {
		t.Fatalf("same-seed soaks diverged:\nA: %+v\nB: %+v", repA, repB)
	}
	lineA, lineB := soakDigestLine(outA), soakDigestLine(outB)
	if lineA == "" || lineA != lineB {
		t.Fatalf("digest lines diverged:\nA: %q\nB: %q", lineA, lineB)
	}
	// Chaos actually fired: a soak without faults proves nothing.
	if repA.Faults.Refused+repA.Faults.Reset == 0 {
		t.Fatal("no connections were refused or reset; chaos never engaged")
	}
	// A different seed ingests a different stream.
	repC, _ := runQuickSoak(t, 12)
	if repC.Digest == repA.Digest {
		t.Fatal("different seeds produced identical soak digests")
	}
}

// soakDigestLine extracts the grep-able digest line from soak output.
func soakDigestLine(out string) string {
	for _, ln := range strings.Split(out, "\n") {
		if strings.Contains(ln, "digest=") {
			return ln
		}
	}
	return ""
}
