package engine

import (
	"bytes"
	"context"
	"sort"
	"testing"

	"locind/internal/obs"
)

// oldQuartileVerdicts is the soak's original hand-rolled flatness logic,
// kept verbatim (uint64 medians, same windows, same slack) as the oracle
// the migrated obs.SeriesCheck pipeline must agree with.
func oldQuartileVerdicts(heap, queue []uint64) (memFlat, queueFlat bool) {
	quartiles := func(samples []uint64) (qs [4]uint64) {
		n := len(samples)
		if n == 0 {
			return qs
		}
		med := func(s []uint64) uint64 {
			vs := make([]uint64, len(s))
			copy(vs, s)
			sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
			return vs[len(vs)/2]
		}
		q := n / 4
		qs[0] = med(samples[:min(q+1, n)])
		qs[1] = med(samples[q:min(2*q+1, n)])
		qs[2] = med(samples[2*q : min(3*q+1, n)])
		qs[3] = med(samples[n-q-1:])
		return qs
	}
	heapQ := quartiles(heap)
	queueQ := quartiles(queue)
	memSlack := heapQ[2]/4 + 32<<20
	memFlat = heapQ[3] <= heapQ[2]+memSlack
	queueFlat = int64(queueQ[3]) <= 2*int64(queueQ[1])+1024
	return memFlat, queueFlat
}

// soakChecks builds the exact check pair RunSoak binds, for fixture replay.
func soakChecks() (heap, queue obs.SeriesCheck) {
	return obs.Flatness{EarlyQuarter: 2, LateQuarter: 3, RelSlack: 0.25, AbsSlack: 32 << 20},
		obs.Flatness{EarlyQuarter: 1, LateQuarter: 3, RelSlack: 1, AbsSlack: 1024}
}

// TestMigratedSoakChecksMatchOldQuartileVerdicts replays recorded gauge
// shapes — flat, leaking, periodic, ramp-then-plateau, short — through both
// the old quartile code and the obs.Flatness checks RunSoak now uses, and
// requires identical verdicts on every fixture.
func TestMigratedSoakChecksMatchOldQuartileVerdicts(t *testing.T) {
	const mb = 1 << 20
	mkRamp := func(n int, start, step uint64) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = start + uint64(i)*step
		}
		return s
	}
	mkFlat := func(n int, v uint64) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = v
		}
		return s
	}
	mkPeriodic := func(n int, base, amp uint64, period int) []uint64 {
		s := make([]uint64, n)
		for i := range s {
			s[i] = base + amp*uint64(i%period)/uint64(period)
		}
		return s
	}
	fixtures := []struct {
		name        string
		heap, queue []uint64
	}{
		{"steady", mkFlat(100, 900*mb), mkFlat(100, 5000)},
		{"heap-leak", mkRamp(100, 100*mb, 4*mb), mkFlat(100, 5000)},
		{"queue-leak", mkFlat(100, 900*mb), mkRamp(100, 100, 300)},
		{"heap-ramp-then-plateau", append(mkRamp(50, 100*mb, 16*mb), mkFlat(50, 900*mb)...), mkFlat(100, 2000)},
		{"queue-periodic", mkFlat(96, 512*mb), mkPeriodic(96, 1000, 40000, 48)},
		{"tiny-run", mkFlat(3, 64*mb), mkFlat(3, 10)},
		{"noisy-but-flat", mkPeriodic(120, 700*mb, 20*mb, 7), mkPeriodic(120, 800, 900, 11)},
		{"empty", nil, nil},
	}
	toF := func(s []uint64) []float64 {
		out := make([]float64, len(s))
		for i, v := range s {
			out[i] = float64(v)
		}
		return out
	}
	heapCheck, queueCheck := soakChecks()
	for _, fx := range fixtures {
		wantMem, wantQueue := oldQuartileVerdicts(fx.heap, fx.queue)
		gotMem, memDetail := heapCheck.Eval(toF(fx.heap))
		gotQueue, queueDetail := queueCheck.Eval(toF(fx.queue))
		if gotMem != wantMem {
			t.Errorf("%s: heap verdict = %v (%s), old code said %v", fx.name, gotMem, memDetail, wantMem)
		}
		if gotQueue != wantQueue {
			t.Errorf("%s: queue verdict = %v (%s), old code said %v", fx.name, gotQueue, queueDetail, wantQueue)
		}
	}
}

// TestSoakSamplerDoesNotPerturbResults: the deterministic soak evidence is
// byte-identical whether the caller wires a registry+sampler (dash on) or
// leaves observability off entirely — the standing obs invariant, extended
// to the time-series layer.
func TestSoakSamplerDoesNotPerturbResults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak over real TCP; skipped in -short")
	}
	run := func(observed bool) (*SoakReport, string, *obs.Sampler) {
		var buf bytes.Buffer
		cfg := SoakConfig{Devices: 250, Days: 2, Seed: 11, Shards: 4, Out: &buf}
		var smp *obs.Sampler
		if observed {
			reg := obs.NewRegistry()
			smp = obs.NewSampler(reg, 0)
			cfg.Registry = reg
			cfg.Sampler = smp
		}
		rep, err := RunSoak(context.Background(), cfg)
		if err != nil {
			t.Fatalf("soak (observed=%v) failed: %v\n%s", observed, err, buf.String())
		}
		return rep, buf.String(), smp
	}
	repOn, outOn, smp := run(true)
	repOff, outOff, _ := run(false)
	if repOn.Digest != repOff.Digest || repOn.Records != repOff.Records ||
		repOn.Batches != repOff.Batches || repOn.Events != repOff.Events {
		t.Fatalf("sampler perturbed the soak:\non:  %+v\noff: %+v", repOn, repOff)
	}
	if lineOn, lineOff := soakDigestLine(outOn), soakDigestLine(outOff); lineOn == "" || lineOn != lineOff {
		t.Fatalf("digest lines diverged:\non:  %q\noff: %q", lineOn, lineOff)
	}
	// The flatness evidence really came from the series checks.
	if len(repOn.SeriesChecks) < 2 {
		t.Fatalf("SeriesChecks = %+v, want the heap and queue checks", repOn.SeriesChecks)
	}
	names := map[string]bool{}
	for _, c := range repOn.SeriesChecks {
		names[c.Name] = true
	}
	if !names[SoakHeapCheck] || !names[SoakQueueCheck] {
		t.Fatalf("SeriesChecks missing soak checks: %+v", repOn.SeriesChecks)
	}
	// The external sampler saw per-shard series (the dashboard's food).
	shardSeries := 0
	for _, key := range smp.Keys() {
		if sr := smp.Series(key); sr.Label("shard") != "" {
			shardSeries++
		}
	}
	if shardSeries == 0 {
		t.Fatalf("no per-shard series sampled; keys = %v", smp.Keys())
	}
}
