package engine

import (
	"context"
	"math/rand"
	"testing"

	"locind/internal/mobility"
)

// guardEngine builds a trace-mode engine over a small pre-generated fleet
// with no uploader: every sealed batch queues until backpressure evicts it,
// so a full Reset+Run cycle exercises the event step, the heap, sealing,
// compaction, and eviction — the whole steady-state hot path — while the
// allocating drain path stays off (a nil Uploader uploads nothing by
// contract).
func guardEngine(t *testing.T) *Engine {
	t.Helper()
	g, pt, dcfg := engineFixture(t, 3)
	dcfg.Users = 12
	dt, err := mobility.GenerateDeviceTrace(g, pt, dcfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Trace:            dt,
		MaxPending:       4,
		MaxQueuedBatches: 3,
		FlushAtEnd:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// allocGuardHarness maps each //lint:zeroalloc symbol in this package to
// its measurement, consumed by the generated TestAllocGuard
// (allocguard_gen_test.go). AllocsPerRun's documented warm-up invocation
// grows every buffer to steady-state capacity before anything is measured,
// so each measurement pins the warm path at an absolute zero.
func allocGuardHarness() map[string]func(t *testing.T) float64 {
	return map[string]func(t *testing.T) float64{
		"evHeap.push": func(t *testing.T) float64 {
			rng := rand.New(rand.NewSource(1))
			var h evHeap
			return testing.AllocsPerRun(10, func() {
				for i := 0; i < 256; i++ {
					h.push(event{at: float64(rng.Intn(100)), dev: int32(i)})
				}
				h.ev = h.ev[:0]
			})
		},
		"evHeap.pop": func(t *testing.T) float64 {
			rng := rand.New(rand.NewSource(2))
			var h evHeap
			return testing.AllocsPerRun(10, func() {
				for i := 0; i < 256; i++ {
					h.push(event{at: float64(rng.Intn(100)), dev: int32(i)})
				}
				last := h.pop()
				for h.len() > 0 {
					ev := h.pop()
					if ev.less(last) {
						t.Fatal("heap popped out of order")
					}
					last = ev
				}
			})
		},
		"Engine.stepVisit": func(t *testing.T) float64 {
			eng := guardEngine(t)
			ctx := context.Background()
			return testing.AllocsPerRun(5, func() {
				eng.Reset()
				if err := eng.Run(ctx); err != nil {
					t.Fatal(err)
				}
				if eng.Steps() == 0 {
					t.Fatal("engine processed no events")
				}
			})
		},
	}
}
