// Package engine is the million-device replacement for nomad's
// goroutine-per-device agents: a single-threaded event-heap scheduler that
// walks every device's mobility trace in one virtual-time order. Each
// device is a ~100-byte slab entry plus its pending-record buffer; the only
// goroutine is the caller's, so a shard costs no stacks, no channels, and —
// once its buffers have grown to steady-state capacity — zero allocations
// per scheduled event (pinned by the generated allocguard test).
//
// Scale-out is sharding, not concurrency within a shard: devices partition
// into contiguous index ranges, one Engine per range, driven in parallel
// via internal/par. Per-(user, day) derived seeds (mobility.FleetGen) make
// every device's trace independent of shard count, so the records a device
// uploads are identical at any parallelism degree.
//
// The upload path preserves the Agent contract exactly: records buffer
// per device, a long-enough WiFi dwell seals them into a batch with the
// next "<hashedID>-b%06d" identity, and sealed batches drain oldest-first,
// stopping at the first batch that exhausts its retries. Backpressure is
// explicit where the Agent's was absent: MaxPending bounds loose records
// per device (overflow forces an early seal), MaxQueuedBatches bounds
// sealed batches per device (overflow evicts the oldest batch, counted as
// DroppedBatches — the engine's only source of data loss).
//
// One deliberate divergence: the Agent asks the server to echo its address
// before logging each record (/ip). In simulation the server echoes the
// simulated-address header verbatim, so the reply equals the visit's own
// address by construction; the engine logs that address directly and skips
// the round trip. Stored records are byte-identical (the equivalence test
// pins this); only the /ip request count differs.
package engine

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"locind/internal/mobility"
	"locind/internal/netaddr"
	"locind/internal/nomad"
	"locind/internal/reliable"
)

// Uploader stores one sealed batch; *nomad.Client implements it. The batch
// slice is reused across calls — implementations must not retain it after
// returning.
type Uploader interface {
	Upload(ctx context.Context, batchID string, batch []nomad.Entry) error
}

// visit is the arena form of a mobility.Visit: just what the event loop
// needs, 24 bytes instead of 48.
type visit struct {
	start float64
	dur   float64 // hours; float64 so dwell comparisons match the Agent bit-for-bit
	addr  netaddr.Addr
	net   uint8 // mobility.NetType
}

// rec is one buffered log record. The address stays numeric until drain
// time — strings exist only on the (allocating, off-hot-path) upload path.
type rec struct {
	t    float64
	addr netaddr.Addr
	net  uint8
}

// batchDesc describes one sealed batch: its sequence number and how many
// records it covers. The records themselves sit in the device's FIFO
// buffer — sealing moves a boundary, it copies nothing.
type batchDesc struct {
	seq uint32
	n   uint32
}

// deviceState is one device's slab entry.
type deviceState struct {
	// recs[head:] are live records, oldest first: the first batchedN are
	// covered by sealed batches (in batches order), the rest are loose.
	recs     []rec
	batches  []batchDesc
	head     int32
	batchedN int32
	seq      uint32 // last sealed sequence number

	// Window into the visit arena: the device's current day (fleet mode)
	// or whole trace (trace mode).
	winDay uint32 // arena parity selector
	winOff uint32
	winLen uint32
	next   uint32 // next window index to process
	day    int32  // next day to generate (fleet mode)

	ustate mobility.UserState
}

// Config configures an Engine. Exactly one of Fleet and Trace must be set:
// Fleet streams each device day by day at bounded memory (the soak mode),
// Trace replays pre-generated visits (the equivalence-test mode).
type Config struct {
	// Fleet generates device days on demand; UserBase+i is device i's
	// user index, so shards cover disjoint contiguous user ranges.
	Fleet    *mobility.FleetGen
	UserBase int
	Devices  int

	// Trace supplies pre-generated visits; Devices and UserBase are
	// ignored and device i is Trace.Users[i] (raw ID "device-<ID>").
	Trace *mobility.DeviceTrace

	// Days is the trace length; 0 takes Fleet.Days() / Trace.Days.
	Days int

	// MinUploadDwell is the minimum WiFi dwell (hours) treated as an
	// upload opportunity; 0 takes the Agent default (2.0).
	MinUploadDwell float64

	// MaxPending bounds loose records per device: reaching it forces a
	// seal even without an upload opportunity. 0 = unbounded (the Agent's
	// behaviour, and the setting that keeps batch identities
	// legacy-identical).
	MaxPending int
	// MaxQueuedBatches bounds sealed batches per device: sealing past it
	// evicts the oldest batch (counted, never silent). 0 = unbounded.
	MaxQueuedBatches int

	// Uploader receives sealed batches; nil discards nothing and uploads
	// nothing (batches queue up to MaxQueuedBatches) — the benchmark and
	// allocguard mode.
	Uploader Uploader
	// UploadRetries, Backoff, Rand, Sleep, and RetryMetrics parameterize
	// the per-batch retry loop exactly as on the Agent. UploadRetries 0
	// takes the Agent default (2); set it negative for a single attempt.
	UploadRetries int
	Backoff       reliable.Backoff
	Rand          *rand.Rand
	Sleep         func(ctx context.Context, d time.Duration) error
	RetryMetrics  *reliable.Metrics

	// FlushAtEnd schedules a final seal-and-drain per device at trace end
	// (the Agent's explicit Flush).
	FlushAtEnd bool

	// GracefulUploads decouples in-flight uploads from cancellation: each
	// upload attempt runs on a context that survives ctx being cancelled
	// (bounded by the Uploader's own timeouts), and cancellation takes
	// effect at the next batch or event boundary instead of chopping a
	// request mid-flight. This is what lets nomadd drain on SIGTERM.
	GracefulUploads bool

	// Metrics, when non-nil, receives engine counters and gauges; shards
	// may share one.
	Metrics *Metrics
}

// Engine walks one shard of the fleet. Not safe for concurrent use — run
// one Engine per goroutine and shard the fleet across them.
type Engine struct {
	cfg     Config
	met     *Metrics
	up      Uploader
	devs    []deviceState
	ids     []string // hashed device IDs, fixed at construction
	heap    evHeap
	endTime float64

	// Visit arenas, double-buffered by day parity (fleet mode): by the
	// time any device claims day d — while processing its last day-(d-1)
	// visit, at virtual time ≥ 24(d-1) — every day-(d-2) visit (all of
	// which start strictly before 24(d-1)) has already been processed, so
	// arena[d&1] is dead and safe to reset. Trace mode packs everything
	// into arena[0] once.
	arena    [2][]visit
	arenaDay [2]int32
	scratch  *mobility.DayScratch

	visitBuf []mobility.Visit
	entryBuf []nomad.Entry

	steps    int64
	attempts int64
}

// Action flags returned by stepVisit so the allocating follow-ups (day
// generation, batch upload) stay out of the zero-alloc event step.
const (
	actDrain uint8 = 1 << iota
	actRefill
)

// New validates cfg and builds the engine with every device scheduled at
// its first visit.
func New(cfg Config) (*Engine, error) {
	if (cfg.Fleet == nil) == (cfg.Trace == nil) {
		return nil, fmt.Errorf("engine: exactly one of Fleet and Trace must be set")
	}
	n := cfg.Devices
	if cfg.Trace != nil {
		n = len(cfg.Trace.Users)
		if cfg.Days == 0 {
			cfg.Days = cfg.Trace.Days
		}
	} else if cfg.Days == 0 {
		cfg.Days = cfg.Fleet.Days()
	}
	if n <= 0 {
		return nil, fmt.Errorf("engine: need at least one device, have %d", n)
	}
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("engine: need positive days, have %d", cfg.Days)
	}
	if cfg.Fleet != nil && cfg.Days > cfg.Fleet.Days() {
		return nil, fmt.Errorf("engine: %d days exceeds the fleet's %d", cfg.Days, cfg.Fleet.Days())
	}
	if cfg.MinUploadDwell == 0 {
		cfg.MinUploadDwell = 2.0
	}
	switch {
	case cfg.UploadRetries == 0:
		cfg.UploadRetries = 2
	case cfg.UploadRetries < 0:
		cfg.UploadRetries = 0
	}
	if cfg.Backoff == (reliable.Backoff{}) {
		cfg.Backoff = reliable.Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second}
	}
	e := &Engine{
		cfg:     cfg,
		met:     cfg.Metrics,
		up:      cfg.Uploader,
		devs:    make([]deviceState, n),
		ids:     make([]string, n),
		endTime: float64(cfg.Days) * 24,
	}
	if e.met == nil {
		e.met = noMetrics
	}
	for i := range e.ids {
		user := cfg.UserBase + i
		if cfg.Trace != nil {
			user = cfg.Trace.Users[i].ID
		}
		e.ids[i] = nomad.HashDeviceID(fmt.Sprintf("device-%d", user))
	}
	if cfg.Fleet != nil {
		e.scratch = mobility.NewDayScratch()
	}
	e.start()
	return e, nil
}

// Devices returns the shard's device count.
func (e *Engine) Devices() int { return len(e.devs) }

// DeviceID returns the hashed identifier of engine-local device i.
func (e *Engine) DeviceID(i int) string { return e.ids[i] }

// Steps returns how many events the engine has processed.
func (e *Engine) Steps() int64 { return e.steps }

// UploadAttempts returns how many Uploader calls were made (retries
// included).
func (e *Engine) UploadAttempts() int64 { return e.attempts }

// start schedules every device's first event, from a zeroed device slab.
func (e *Engine) start() {
	e.arenaDay = [2]int32{-1, -1}
	if e.cfg.Trace != nil {
		a := e.arena[0][:0]
		for i := range e.cfg.Trace.Users {
			u := &e.cfg.Trace.Users[i]
			d := &e.devs[i]
			d.winOff = uint32(len(a))
			d.winLen = uint32(len(u.Visits))
			for _, v := range u.Visits {
				a = append(a, visit{start: v.Start, dur: v.Dur, addr: v.Loc.Addr, net: uint8(v.Loc.Net)})
			}
			if d.winLen > 0 {
				e.heap.push(event{at: a[d.winOff].start, dev: int32(i), kind: evVisit})
				e.met.HeapEvents.Add(1)
			}
		}
		e.arena[0] = a
		e.arenaDay[0] = 0
		return
	}
	for i := range e.devs {
		e.refill(int32(i))
	}
}

// Reset rewinds the engine to its initial schedule, retaining every
// buffer's capacity — a warm Reset+Run replays the identical workload with
// zero steady-state allocations, which is both the replay API and what the
// allocguard harness measures.
func (e *Engine) Reset() {
	e.met.HeapEvents.Add(-int64(e.heap.len()))
	e.heap.ev = e.heap.ev[:0]
	e.arena[0] = e.arena[0][:0]
	e.arena[1] = e.arena[1][:0]
	for i := range e.devs {
		d := &e.devs[i]
		e.met.QueueEntries.Add(-int64(len(d.recs) - int(d.head)))
		e.met.QueueBatches.Add(-int64(len(d.batches)))
		*d = deviceState{recs: d.recs[:0], batches: d.batches[:0]}
	}
	e.steps, e.attempts = 0, 0
	e.start()
}

// window returns the device's current visit window.
func (e *Engine) window(d *deviceState) []visit {
	return e.arena[d.winDay&1][d.winOff : d.winOff+d.winLen]
}

// loose returns the device's records not yet covered by a sealed batch.
func (e *Engine) loose(d *deviceState) int {
	return len(d.recs) - int(d.head) - int(d.batchedN)
}

// QueuedBatches returns the shard's sealed batches still awaiting upload.
func (e *Engine) QueuedBatches() int {
	n := 0
	for i := range e.devs {
		n += len(e.devs[i].batches)
	}
	return n
}

// Run processes the schedule to completion or ctx cancellation. Uploads
// happen inline (the engine is single-threaded); a batch that exhausts its
// retries stays queued for the device's next opportunity, exactly like the
// Agent.
func (e *Engine) Run(ctx context.Context) error {
	for e.heap.len() > 0 {
		e.steps++
		if e.steps&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		ev := e.heap.pop()
		e.met.HeapEvents.Add(-1)
		if ev.kind == evFlush {
			e.seal(&e.devs[ev.dev])
			if err := e.drain(ctx, ev.dev); err != nil {
				return err
			}
			continue
		}
		act := e.stepVisit(ev.dev)
		if act&actRefill != 0 {
			e.refill(ev.dev)
		}
		if act&actDrain != 0 {
			if err := e.drain(ctx, ev.dev); err != nil {
				return err
			}
		}
	}
	return nil
}

// stepVisit processes one visit event: buffer the record, seal on an
// upload opportunity (or on MaxPending overflow), and schedule the
// device's next event. Allocating follow-ups are returned as action flags,
// not performed — this function and its callees are the per-event hot path
// for a million devices.
//
//lint:zeroalloc per event once device buffers reach steady-state capacity
func (e *Engine) stepVisit(dev int32) uint8 {
	d := &e.devs[dev]
	w := e.window(d)
	v := &w[d.next]

	// FIFO compaction: when the buffer is full but has a consumed prefix,
	// slide the live records down instead of growing.
	if len(d.recs) == cap(d.recs) && d.head > 0 {
		n := copy(d.recs, d.recs[d.head:])
		d.recs = d.recs[:n]
		d.head = 0
	}
	d.recs = append(d.recs, rec{t: v.start, addr: v.addr, net: v.net})
	e.met.Events.Inc()
	e.met.QueueEntries.Add(1)

	var act uint8
	if v.net == uint8(mobility.WiFi) && v.dur >= e.cfg.MinUploadDwell {
		// Upload opportunity: seal the loose records and drain the whole
		// queue (older failed batches included), like the Agent.
		e.seal(d)
		if len(d.batches) > 0 {
			act |= actDrain
		}
	} else if e.cfg.MaxPending > 0 && e.loose(d) >= e.cfg.MaxPending {
		e.seal(d)
	}

	d.next++
	switch {
	case d.next < d.winLen:
		e.heap.push(event{at: w[d.next].start, dev: dev, kind: evVisit})
		e.met.HeapEvents.Add(1)
	case e.cfg.Fleet != nil && int(d.day) < e.cfg.Days:
		act |= actRefill
	case e.cfg.FlushAtEnd:
		e.heap.push(event{at: e.endTime, dev: dev, kind: evFlush})
		e.met.HeapEvents.Add(1)
	}
	return act
}

// seal freezes the device's loose records into a sealed batch boundary,
// evicting the oldest sealed batch first when MaxQueuedBatches says so.
func (e *Engine) seal(d *deviceState) {
	loose := e.loose(d)
	if loose == 0 {
		return
	}
	if e.cfg.MaxQueuedBatches > 0 && len(d.batches) >= e.cfg.MaxQueuedBatches {
		drop := d.batches[0]
		d.head += int32(drop.n)
		d.batchedN -= int32(drop.n)
		copy(d.batches, d.batches[1:])
		d.batches = d.batches[:len(d.batches)-1]
		e.met.DroppedBatches.Inc()
		e.met.DroppedEntries.Add(int64(drop.n))
		e.met.QueueEntries.Add(-int64(drop.n))
		e.met.QueueBatches.Add(-1)
	}
	d.seq++
	d.batches = append(d.batches, batchDesc{seq: d.seq, n: uint32(loose)})
	d.batchedN += int32(loose)
	e.met.QueueBatches.Add(1)
}

// refill generates the device's next day into the day-parity arena and
// schedules its first visit. Growth allocations (arena, scratch) happen
// here, off the per-event path, and amortize to zero.
func (e *Engine) refill(dev int32) {
	d := &e.devs[dev]
	day := int(d.day)
	p := day & 1
	if e.arenaDay[p] != int32(day) {
		// First device to claim this day: the previous tenant (day-2) is
		// fully consumed — see the arena invariant on Engine.
		e.arena[p] = e.arena[p][:0]
		e.arenaDay[p] = int32(day)
	}
	off := len(e.arena[p])
	e.visitBuf = e.cfg.Fleet.Day(e.cfg.UserBase+int(dev), day, &d.ustate, e.visitBuf[:0], e.scratch)
	a := e.arena[p]
	for i := range e.visitBuf {
		v := &e.visitBuf[i]
		a = append(a, visit{start: v.Start, dur: v.Dur, addr: v.Loc.Addr, net: uint8(v.Loc.Net)})
	}
	e.arena[p] = a
	d.winDay = uint32(day)
	d.winOff = uint32(off)
	d.winLen = uint32(len(a) - off)
	d.next = 0
	d.day++
	e.heap.push(event{at: a[off].start, dev: dev, kind: evVisit})
	e.met.HeapEvents.Add(1)
}

// netName maps a rec's net byte to its log-format name without allocating.
func netName(n uint8) string {
	return mobility.NetType(n).String()
}

// buildEntries materializes the next n live records of dev into the shared
// entry buffer (reused across drains; Uploaders must not retain it).
func (e *Engine) buildEntries(dev int32, n int) []nomad.Entry {
	d := &e.devs[dev]
	id := e.ids[dev]
	e.entryBuf = e.entryBuf[:0]
	for _, r := range d.recs[d.head : int(d.head)+n] {
		e.entryBuf = append(e.entryBuf, nomad.Entry{
			DeviceID: id,
			Time:     r.t,
			IPAddr:   r.addr.String(),
			NetType:  netName(r.net),
		})
	}
	return e.entryBuf
}

// drain uploads the device's sealed batches oldest-first, stopping at the
// first batch that exhausts its retries (it stays queued; not an error).
// This is the allocating half of the pipeline — strings and retries live
// here, never in stepVisit.
func (e *Engine) drain(ctx context.Context, dev int32) error {
	if e.up == nil {
		return nil
	}
	d := &e.devs[dev]
	pol := reliable.Policy{
		MaxAttempts: e.cfg.UploadRetries + 1,
		Backoff:     e.cfg.Backoff,
		Rand:        e.cfg.Rand,
		Sleep:       e.cfg.Sleep,
		Metrics:     e.cfg.RetryMetrics,
	}
	upCtx := ctx
	if e.cfg.GracefulUploads {
		upCtx = context.WithoutCancel(ctx)
	}
	for len(d.batches) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		b := d.batches[0]
		id := fmt.Sprintf("%s-b%06d", e.ids[dev], b.seq)
		entries := e.buildEntries(dev, int(b.n))
		attempts, err := pol.Do(upCtx, func(ctx context.Context) error {
			return e.up.Upload(ctx, id, entries)
		})
		e.attempts += int64(attempts)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			e.met.UploadFailures.Inc()
			return nil
		}
		d.head += int32(b.n)
		d.batchedN -= int32(b.n)
		copy(d.batches, d.batches[1:])
		d.batches = d.batches[:len(d.batches)-1]
		e.met.BatchesUploaded.Inc()
		e.met.EntriesUploaded.Add(int64(b.n))
		e.met.QueueEntries.Add(-int64(b.n))
		e.met.QueueBatches.Add(-1)
	}
	return nil
}

// FlushAll seals and drains every device — the end-of-study "plug every
// device in" sweep. It returns how many sealed batches remain queued
// (non-zero only when uploads kept failing); callers loop until zero.
func (e *Engine) FlushAll(ctx context.Context) (remaining int, err error) {
	for i := range e.devs {
		e.seal(&e.devs[i])
		if err := e.drain(ctx, int32(i)); err != nil {
			return e.QueuedBatches(), err
		}
		remaining += len(e.devs[i].batches)
	}
	return remaining, nil
}
