package engine

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/mobility"
	"locind/internal/nomad"
	"locind/internal/obs"
)

// engineFixture builds the small internetwork the engine tests share.
func engineFixture(t *testing.T, days int) (*asgraph.Graph, *bgp.PrefixTable, mobility.DeviceConfig) {
	t.Helper()
	cfg := asgraph.DefaultSynthConfig()
	cfg.Tier2 = 60
	cfg.Stubs = 500
	g, err := asgraph.Synthesize(cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := bgp.NewPrefixTable(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := mobility.DefaultDeviceConfig()
	dcfg.Days = days
	return g, pt, dcfg
}

func testFleet(t *testing.T, days int, seed int64) *mobility.FleetGen {
	t.Helper()
	g, pt, dcfg := engineFixture(t, days)
	f, err := mobility.NewFleetGen(g, pt, dcfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// memUploader feeds batches straight into Aggregates, optionally failing
// chosen uploads. Safe for concurrent use (sharded engines share one).
type memUploader struct {
	agg  *nomad.Aggregates
	mu   sync.Mutex
	fail func(batchID string) bool
	ups  int
}

func (m *memUploader) Upload(_ context.Context, batchID string, batch []nomad.Entry) error {
	m.mu.Lock()
	fail := m.fail != nil && m.fail(batchID)
	m.ups++
	m.mu.Unlock()
	if fail {
		return errors.New("memUploader: injected failure")
	}
	m.agg.IngestBatch(batchID, batch)
	return nil
}

// instantSleep keeps retry backoff out of test wall-clock time.
func instantSleep(context.Context, time.Duration) error { return nil }

// TestHeapOrdering: events pop in (at, dev, kind) order regardless of push
// order.
func TestHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h evHeap
	var want []event
	for i := 0; i < 2000; i++ {
		ev := event{
			at:   float64(rng.Intn(200)),
			dev:  int32(rng.Intn(50)),
			kind: uint8(rng.Intn(2)),
		}
		want = append(want, ev)
		h.push(ev)
	}
	sort.Slice(want, func(i, j int) bool { return want[i].less(want[j]) })
	for i, w := range want {
		got := h.pop()
		if got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
	if h.len() != 0 {
		t.Fatalf("heap not empty after draining: %d left", h.len())
	}
}

// runStreaming drives one freshly built fleet-mode engine (or shard set)
// into a fresh Aggregates and returns its snapshot.
func runStreaming(t *testing.T, fleet *mobility.FleetGen, devices, shards int) (*nomad.Aggregates, int64) {
	t.Helper()
	up := &memUploader{agg: nomad.NewAggregates()}
	var steps int64
	per := devices / shards
	for s := 0; s < shards; s++ {
		lo := s * per
		hi := lo + per
		if s == shards-1 {
			hi = devices
		}
		eng, err := New(Config{
			Fleet:      fleet,
			UserBase:   lo,
			Devices:    hi - lo,
			Uploader:   up,
			Sleep:      instantSleep,
			FlushAtEnd: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if n := eng.QueuedBatches(); n != 0 {
			t.Fatalf("shard %d left %d batches queued on a clean uploader", s, n)
		}
		steps += eng.Steps()
	}
	return up.agg, steps
}

// TestEngineStreamingDeterministic: same-seed fleet runs produce identical
// server-side digests; a different seed does not.
func TestEngineStreamingDeterministic(t *testing.T) {
	fleet := testFleet(t, 3, 11)
	a, stepsA := runStreaming(t, fleet, 30, 1)
	b, stepsB := runStreaming(t, fleet, 30, 1)
	if stepsA != stepsB {
		t.Fatalf("event counts diverged across same-seed runs: %d vs %d", stepsA, stepsB)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa != sb {
		t.Fatalf("same-seed snapshots diverged:\n%+v\n%+v", sa, sb)
	}
	if sa.Records == 0 || sa.Devices != 30 {
		t.Fatalf("implausible snapshot %+v", sa)
	}
	other, _ := runStreaming(t, testFleet(t, 3, 12), 30, 1)
	if other.Snapshot().Digest == sa.Digest {
		t.Fatal("different fleet seeds produced identical digests")
	}
}

// TestEngineShardInvariance: the records each device uploads are identical
// whether the fleet runs as one shard or four.
func TestEngineShardInvariance(t *testing.T) {
	fleet := testFleet(t, 3, 7)
	one, _ := runStreaming(t, fleet, 30, 1)
	four, _ := runStreaming(t, fleet, 30, 4)
	so, sf := one.Snapshot(), four.Snapshot()
	if so.Digest != sf.Digest || so.Records != sf.Records || so.Devices != sf.Devices {
		t.Fatalf("sharding changed the ingested stream:\n1 shard: %+v\n4 shards: %+v", so, sf)
	}
}

// TestEngineResetReplay: Reset rewinds to the identical schedule — a warm
// replay uploads the identical stream and processes the identical events.
func TestEngineResetReplay(t *testing.T) {
	fleet := testFleet(t, 3, 9)
	up := &memUploader{agg: nomad.NewAggregates()}
	eng, err := New(Config{
		Fleet:      fleet,
		Devices:    20,
		Uploader:   up,
		Sleep:      instantSleep,
		FlushAtEnd: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	first := up.agg.Snapshot()
	steps := eng.Steps()

	up.agg = nomad.NewAggregates()
	eng.Reset()
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if eng.Steps() != steps {
		t.Fatalf("replay processed %d events, first run %d", eng.Steps(), steps)
	}
	if second := up.agg.Snapshot(); second != first {
		t.Fatalf("replay diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestEngineBackpressure: with a dead uploader, MaxPending forces seals,
// MaxQueuedBatches bounds every device's queue, and evictions are counted
// — memory stays bounded no matter how long uploads stay down.
func TestEngineBackpressure(t *testing.T) {
	fleet := testFleet(t, 3, 13)
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	up := &memUploader{
		agg:  nomad.NewAggregates(),
		fail: func(string) bool { return true },
	}
	const maxQ = 3
	eng, err := New(Config{
		Fleet:            fleet,
		Devices:          15,
		Uploader:         up,
		UploadRetries:    -1, // single attempt; retrying a dead uploader only slows the test
		Sleep:            instantSleep,
		MaxPending:       4,
		MaxQueuedBatches: maxQ,
		FlushAtEnd:       true,
		Metrics:          met,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := range eng.devs {
		d := &eng.devs[i]
		if len(d.batches) > maxQ {
			t.Fatalf("device %d holds %d sealed batches, bound is %d", i, len(d.batches), maxQ)
		}
		if loose := eng.loose(d); loose >= 4+1 {
			t.Fatalf("device %d holds %d loose records past MaxPending", i, loose)
		}
	}
	if met.DroppedBatches.Value() == 0 {
		t.Fatal("a dead uploader over 3 days evicted nothing; backpressure never engaged")
	}
	if met.UploadFailures.Value() == 0 {
		t.Fatal("upload failures not counted")
	}
	if got := met.QueueBatches.Value(); got != int64(eng.QueuedBatches()) {
		t.Fatalf("QueueBatches gauge %d disagrees with engine state %d", got, eng.QueuedBatches())
	}
	if up.agg.Snapshot().Records != 0 {
		t.Fatal("dead uploader stored records")
	}
}

// TestEngineFlushAllRecovers: batches stranded by a down uploader drain to
// zero once it comes back, with nothing lost or duplicated.
func TestEngineFlushAllRecovers(t *testing.T) {
	fleet := testFleet(t, 2, 17)
	down := true
	up := &memUploader{
		agg:  nomad.NewAggregates(),
		fail: func(string) bool { return down },
	}
	met := NewMetrics(obs.NewRegistry())
	eng, err := New(Config{
		Fleet:         fleet,
		Devices:       10,
		Uploader:      up,
		UploadRetries: -1,
		Sleep:         instantSleep,
		FlushAtEnd:    true,
		Metrics:       met,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	stranded := eng.QueuedBatches()
	if stranded == 0 {
		t.Fatal("nothing stranded with the uploader down")
	}
	down = false
	remaining, err := eng.FlushAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if remaining != 0 || eng.QueuedBatches() != 0 {
		t.Fatalf("flush left %d batches queued", eng.QueuedBatches())
	}
	if met.QueueEntries.Value() != 0 || met.QueueBatches.Value() != 0 {
		t.Fatalf("queue gauges not drained: entries=%d batches=%d",
			met.QueueEntries.Value(), met.QueueBatches.Value())
	}
	snap := up.agg.Snapshot()
	if snap.Records == 0 || snap.DupBatches != 0 {
		t.Fatalf("recovery snapshot %+v: want records > 0 and no duplicates", snap)
	}
	// Sequence numbers per device must still be the contiguous sealed
	// order: every device's aggregate saw every batch it sealed.
	for i := 0; i < eng.Devices(); i++ {
		d, ok := up.agg.Device(eng.DeviceID(i))
		if !ok {
			continue
		}
		if uint64(d.LastSeq) != d.Batches {
			t.Fatalf("device %d: lastSeq %d != %d batches applied (gap or reorder)",
				i, d.LastSeq, d.Batches)
		}
	}
}

// TestEngineConfigValidation: the mode switch and bounds are enforced.
func TestEngineConfigValidation(t *testing.T) {
	fleet := testFleet(t, 2, 1)
	if _, err := New(Config{}); err == nil {
		t.Fatal("no mode accepted")
	}
	if _, err := New(Config{Fleet: fleet, Trace: &mobility.DeviceTrace{}}); err == nil {
		t.Fatal("both modes accepted")
	}
	if _, err := New(Config{Fleet: fleet, Devices: 0}); err == nil {
		t.Fatal("zero devices accepted")
	}
	if _, err := New(Config{Fleet: fleet, Devices: 1, Days: 5}); err == nil {
		t.Fatal("days beyond the fleet's accepted")
	}
	if _, err := New(Config{Fleet: fleet, Devices: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineBatchIDForm: uploaded batch IDs carry the Agent's exact form.
func TestEngineBatchIDForm(t *testing.T) {
	fleet := testFleet(t, 2, 3)
	var ids []string
	up := &memUploader{agg: nomad.NewAggregates()}
	up.fail = func(id string) bool { ids = append(ids, id); return false }
	eng, err := New(Config{Fleet: fleet, Devices: 5, Uploader: up, Sleep: instantSleep, FlushAtEnd: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("no uploads happened")
	}
	for _, id := range ids {
		if !strings.HasPrefix(id, "dev-") || !strings.Contains(id, "-b") || len(id) != len("dev-0123456789abcdef-b000001") {
			t.Fatalf("batch ID %q is not Agent-form", id)
		}
	}
}
