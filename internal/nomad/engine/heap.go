package engine

// event is one scheduled occurrence in device virtual time. The heap orders
// events by (at, dev, kind), so simultaneous events across devices resolve
// in device order and the whole schedule is a deterministic function of the
// workload — the property same-seed soak replay rests on.
type event struct {
	at   float64 // virtual time, hours from trace start
	dev  int32   // engine-local device index
	kind uint8   // evVisit or evFlush
}

// Event kinds, in tie-break order: a device's end-of-trace flush sorts
// after any visit it could coincide with.
const (
	evVisit uint8 = iota // process the device's next visit window entry
	evFlush              // seal and drain everything the device still holds
)

// less orders events by (at, dev, kind).
func (a event) less(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.dev != b.dev {
		return a.dev < b.dev
	}
	return a.kind < b.kind
}

// evHeap is a typed binary min-heap of events. The engine keeps at most one
// outstanding event per device, so the backing array grows to the device
// count once and then cycles in place — container/heap's interface
// indirection (and its per-Push boxing) is exactly what this avoids.
type evHeap struct {
	ev []event
}

// len returns the number of scheduled events.
func (h *evHeap) len() int { return len(h.ev) }

// push schedules ev.
//
//lint:zeroalloc per op once the backing array has grown to capacity
func (h *evHeap) push(ev event) {
	h.ev = append(h.ev, ev)
	i := len(h.ev) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.ev[i].less(h.ev[p]) {
			break
		}
		h.ev[i], h.ev[p] = h.ev[p], h.ev[i]
		i = p
	}
}

// pop removes and returns the earliest event. It must not be called on an
// empty heap.
//
//lint:zeroalloc per op; sift-down works in place on the backing array
func (h *evHeap) pop() event {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev = h.ev[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h.ev[l].less(h.ev[s]) {
			s = l
		}
		if r < n && h.ev[r].less(h.ev[s]) {
			s = r
		}
		if s == i {
			break
		}
		h.ev[i], h.ev[s] = h.ev[s], h.ev[i]
		i = s
	}
	return top
}
