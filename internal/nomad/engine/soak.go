package engine

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/faultnet"
	"locind/internal/mobility"
	"locind/internal/nomad"
	"locind/internal/obs"
	"locind/internal/par"
	"locind/internal/reliable"
)

// SoakConfig configures RunSoak: the full engine→upload→ingest pipeline —
// sharded event engines uploading over real TCP through a faultnet-chaos
// listener into a streaming (constant-memory) nomad server — while a
// sampler watches heap and queue gauges for drift.
type SoakConfig struct {
	// Devices and Days size the fleet; Seed fixes the workload, the chaos
	// schedule, and retry jitter, so same-seed soaks replay the identical
	// ingested stream (the digest line is byte-comparable across runs).
	Devices int
	Days    int
	Seed    int64
	// Shards is the engine count (0 = one per core, capped at Devices).
	Shards int
	// Faults is the chaos profile; the zero value takes defaultSoakFaults.
	Faults faultnet.StreamFaults
	// NoFaults disables chaos entirely (debugging aid).
	NoFaults bool
	// SampleEvery is the gauge sampling period (default 200ms).
	SampleEvery time.Duration
	// Registry, when non-nil, receives the engine and faultnet metric
	// families (e.g. for -obs.addr export); nil keeps them private.
	Registry *obs.Registry
	// Sampler, when non-nil, is the time-series sampler the soak drives
	// (it must be built over Registry). nomadd passes the sampler it has
	// already mounted on /debug/dash, so the live dashboard and the soak's
	// flatness evidence read the same rings. Nil builds a private one.
	Sampler *obs.Sampler
	// Out receives the human/grep-able report lines; nil discards them.
	Out io.Writer
}

// defaultSoakFaults is chaos that hurts without stopping progress: refused
// and mid-stream-reset connections force the retry and replay machinery,
// brief stalls add latency jitter.
func defaultSoakFaults() faultnet.StreamFaults {
	return faultnet.StreamFaults{
		Refuse:        0.05,
		Reset:         0.10,
		ResetAfterMin: 256,
		ResetAfterMax: 64 << 10,
		Stall:         0.02,
		StallFor:      2 * time.Millisecond,
	}
}

// SoakReport is RunSoak's outcome. Digest, Records, Batches, Events, and
// Devices are deterministic for a seed; fault and retry counts are not
// (they depend on connection interleaving) and are reported for color only.
type SoakReport struct {
	Devices, Days, Shards int
	Events                int64
	UploadAttempts        int64
	Records, Batches      uint64
	DupBatches            uint64
	Digest                string
	UploadFailures        int64
	DroppedBatches        int64
	FlushRounds           int
	Faults                faultnet.Stats
	Elapsed               time.Duration

	// Flatness evidence: quarter-median HeapInuse (third vs last quarter)
	// and queue-entry gauge (second vs last quarter — same phase of the
	// daily cycle), produced by obs.SeriesCheck over the sampler's rings;
	// see the flatness comment in RunSoak. SeriesChecks holds the full
	// verdicts (including any extra checks the caller bound).
	Samples              int
	HeapEarly, HeapLate  uint64
	QueueEarly, QueueLat int64
	MemFlat, QueueFlat   bool
	Drained              bool
	SeriesChecks         []obs.CheckResult
}

// OK reports whether every soak assertion held: nothing dropped, queues
// fully drained, and both gauges flat.
func (r *SoakReport) OK() bool {
	return r.DroppedBatches == 0 && r.Drained && r.MemFlat && r.QueueFlat
}

// Soak check names, as they appear in SoakReport.SeriesChecks, on
// /debug/timeseries, in obsreport output, and behind /healthz.
const (
	// SoakHeapCheck asserts the process heap series went flat.
	SoakHeapCheck = "soak-heap-flat"
	// SoakQueueCheck asserts the fleet queue-entries series went flat.
	SoakQueueCheck = "soak-queue-flat"
)

// soakHeapSeries and soakQueueSeries are the series keys the checks bind to.
const (
	soakHeapSeries  = "locind_runtime_heap_inuse_bytes"
	soakQueueSeries = "locind_nomad_engine_queue_entries"
)

// RunSoak drives the soak to completion and writes the report lines to
// cfg.Out. A non-nil error means the soak could not run or an assertion
// failed; the returned report is non-nil whenever the pipeline ran.
func RunSoak(ctx context.Context, cfg SoakConfig) (*SoakReport, error) {
	if cfg.Devices <= 0 {
		return nil, fmt.Errorf("soak: need positive devices, have %d", cfg.Devices)
	}
	if cfg.Days <= 0 {
		cfg.Days = 2
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 200 * time.Millisecond
	}
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	shards := par.Workers(cfg.Shards)
	if shards > cfg.Devices {
		shards = cfg.Devices
	}

	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	smp := cfg.Sampler
	if smp == nil {
		smp = obs.NewSampler(reg, 0)
	}
	smp.SetInterval(cfg.SampleEvery)
	prof := obs.NewProfiler(reg)
	begin := time.Now()                                            //lint:allow determinism wall-clock phase timing is reporting, never simulation state
	prof.SetNow(func() time.Duration { return time.Since(begin) }) //lint:allow determinism same: profiler phase walls

	// Substrate: internetwork, address plan, streaming fleet.
	ph := prof.Begin("soak-build")
	acfg := asgraph.DefaultSynthConfig()
	acfg.Tier2 = 80
	acfg.Stubs = 700
	g, err := asgraph.Synthesize(acfg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	pt, err := bgp.NewPrefixTable(g, 1)
	if err != nil {
		return nil, err
	}
	dcfg := mobility.DefaultDeviceConfig()
	dcfg.Days = cfg.Days
	fleet, err := mobility.NewFleetGen(g, pt, dcfg, cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	// The ingest server on a real socket, behind the chaos listener.
	srv := nomad.NewStreamingServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	env := faultnet.NewEnv(cfg.Seed + 2)
	env.SetMetrics(faultnet.NewMetrics(reg))
	faults := cfg.Faults
	if faults == (faultnet.StreamFaults{}) && !cfg.NoFaults {
		faults = defaultSoakFaults()
	}
	if cfg.NoFaults {
		faults = faultnet.StreamFaults{}
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(faultnet.WrapListener(ln, env, faults)) //lint:allow errflow server dies with the soak
	defer hs.Close()                                    //lint:allow errflow best-effort teardown
	base := "http://" + ln.Addr().String()

	// One engine per shard over a contiguous device range. Each engine owns
	// its HTTP client, retry rng, generation scratch — and its own metric
	// series labeled shard="<i>", so the dashboard's ?by=shard view shows
	// every engine's queues individually; fleet-wide rollups are derived
	// per tick below.
	ranges := par.Shards(cfg.Devices, shards)
	engines := make([]*Engine, len(ranges))
	shardMets := make([]*Metrics, len(ranges))
	for i, r := range ranges {
		shardMets[i] = NewShardMetrics(reg, i)
		// Each upload dials fresh, like a device coming online — which is
		// also what exposes every upload to the per-connection chaos
		// decisions (a keep-alive pool would sail most of the run through
		// a few lucky connections).
		client := &nomad.Client{
			BaseURL: base,
			HTTP: &http.Client{
				Timeout:   10 * time.Second,
				Transport: &http.Transport{DisableKeepAlives: true},
			},
		}
		engines[i], err = New(Config{
			Fleet:            fleet,
			UserBase:         r[0],
			Devices:          r[1] - r[0],
			Days:             cfg.Days,
			Uploader:         client,
			UploadRetries:    3,
			Backoff:          reliable.Backoff{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond, Jitter: 0.5},
			Rand:             rand.New(rand.NewSource(cfg.Seed + 3 + int64(i))),
			MaxPending:       512,
			MaxQueuedBatches: 64,
			FlushAtEnd:       true,
			GracefulUploads:  true,
			Metrics:          shardMets[i],
		})
		if err != nil {
			return nil, err
		}
	}
	ph.End()

	// Time-series sampling: a rollup pre-hook sums the per-shard gauges
	// into the unlabeled fleet series (the ones the flatness checks watch)
	// and derives per-shard events/s from counter deltas; the runtime hook
	// records heap. The soak owns the ticker — the sampler itself is
	// clock-free — so nomadd's mounted sampler ticks exactly while the
	// pipeline runs.
	rollQE := reg.Gauge(soakQueueSeries, "device-buffered records awaiting store")
	rollQB := reg.Gauge("locind_nomad_engine_queue_batches", "sealed batches awaiting upload")
	evRate := make([]*obs.Gauge, len(engines))
	lastEv := make([]int64, len(engines))
	for i := range engines {
		evRate[i] = reg.Gauge("locind_nomad_engine_events_per_sec", "visit events processed per second", "shard", strconv.Itoa(i))
	}
	tickSecs := cfg.SampleEvery.Seconds()
	smp.Pre(func() {
		var qe, qb int64
		for i, m := range shardMets {
			qe += m.QueueEntries.Value()
			qb += m.QueueBatches.Value()
			ev := m.Events.Value()
			evRate[i].Set(int64(float64(ev-lastEv[i]) / tickSecs))
			lastEv[i] = ev
		}
		rollQE.Set(qe)
		rollQB.Set(qb)
	})
	smp.Pre(obs.RuntimeSampler(reg))

	// The flatness assertions ride on the series: same windows, same slack
	// as the original hand-rolled quartile code (see the shape comment
	// below), now evaluated by obs.SeriesCheck so /healthz degrades live
	// if a gauge stops being flat mid-run.
	smp.Check(SoakHeapCheck, soakHeapSeries,
		obs.Flatness{EarlyQuarter: 2, LateQuarter: 3, RelSlack: 0.25, AbsSlack: 32 << 20})
	smp.Check(SoakQueueCheck, soakQueueSeries,
		obs.Flatness{EarlyQuarter: 1, LateQuarter: 3, RelSlack: 1, AbsSlack: 1024})

	var (
		stop = make(chan struct{})
		smWG sync.WaitGroup
	)
	smWG.Add(1)
	go func() {
		defer smWG.Done()
		tick := time.NewTicker(cfg.SampleEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				smp.Tick()
			}
		}
	}()

	// The soak proper: every shard to completion, then flush rounds until
	// the chaos lets the last stragglers through.
	ph = prof.Begin("soak-run")
	errs := make([]error, len(engines))
	runErr := par.ForEachCtx(ctx, len(engines), len(engines), func(i int) {
		errs[i] = engines[i].Run(ctx)
	})
	ph.End()
	for _, err := range errs {
		if err != nil && runErr == nil {
			runErr = err
		}
	}
	rep := &SoakReport{Devices: cfg.Devices, Days: cfg.Days, Shards: len(engines)}
	if runErr == nil {
		ph = prof.Begin("soak-flush")
		left := make([]int, len(engines))
		for rep.FlushRounds = 0; rep.FlushRounds < 10; {
			rep.FlushRounds++
			if err := par.ForEachCtx(ctx, len(engines), len(engines), func(i int) {
				n, err := engines[i].FlushAll(ctx)
				if err != nil && errs[i] == nil {
					errs[i] = err
				}
				left[i] = n
			}); err != nil {
				runErr = err
				break
			}
			remaining := 0
			for i := range left {
				remaining += left[i]
				if errs[i] != nil && runErr == nil {
					runErr = errs[i]
				}
			}
			if remaining == 0 || runErr != nil {
				break
			}
		}
		ph.End()
	}
	close(stop)
	smWG.Wait()
	if runErr != nil {
		return rep, runErr
	}

	// Evidence: deterministic totals, flatness, drain.
	rep.Elapsed = time.Since(begin) //lint:allow determinism elapsed wall time is reporting only; the digest never includes it
	for _, e := range engines {
		rep.Events += e.Steps()
		rep.UploadAttempts += e.UploadAttempts()
	}
	snap := srv.Agg.Snapshot()
	rep.Records, rep.Batches, rep.DupBatches, rep.Digest = snap.Records, snap.Batches, snap.DupBatches, snap.Digest
	var queueBatches int64
	for _, m := range shardMets {
		rep.UploadFailures += m.UploadFailures.Value()
		rep.DroppedBatches += m.DroppedBatches.Value()
		queueBatches += m.QueueBatches.Value()
	}
	rep.Faults = env.Stats()
	queued := 0
	for _, e := range engines {
		queued += e.QueuedBatches()
	}
	rep.Drained = queued == 0 && queueBatches == 0

	// One last tick so even a sub-period run has end-state samples, then
	// the series checks render the verdicts.
	smp.Tick()
	// The two gauges have different shapes, so each gets the comparison
	// window that catches its leak without tripping on its warm-up:
	//
	// HeapInuse ramps then plateaus — every device's record buffer ratchets
	// up to its personal high-water capacity, and at 1M devices that tail
	// runs deep into day two — so memory compares the second half's two
	// quarters (Q3 vs Q4). A retention leak — O(records) growth, ~50B ×
	// millions of records per quarter — dwarfs the slack; the decaying
	// capacity ratchet fits inside it.
	//
	// Queue depth is periodic with the virtual day (pending records build
	// through cellular stretches and drain at WiFi dwells), so adjacent
	// quarters sit at different phases of the cycle. It compares Q2 vs Q4
	// — half the run apart, which at the 2-day soak shape is exactly one
	// virtual day, i.e. the same phase — where unbounded growth still
	// doubles the median but the daily swing cancels out.
	//
	// The constant terms absorb GC phase noise and quantization on
	// CI-sized runs.
	rep.SeriesChecks = smp.EvalChecks()
	for _, c := range rep.SeriesChecks {
		switch c.Name {
		case SoakHeapCheck:
			rep.MemFlat = c.OK
		case SoakQueueCheck:
			rep.QueueFlat = c.OK
		}
	}
	heapVals := smp.Values(soakHeapSeries, nil)
	queueVals := smp.Values(soakQueueSeries, nil)
	rep.Samples = len(heapVals)
	heapQ := obs.QuarterMedians(heapVals)
	queueQ := obs.QuarterMedians(queueVals)
	rep.HeapEarly, rep.HeapLate = uint64(heapQ[2]), uint64(heapQ[3])
	rep.QueueEarly, rep.QueueLat = int64(queueQ[1]), int64(queueQ[3])

	writeSoakReport(out, rep, prof)
	if !rep.OK() {
		return rep, fmt.Errorf("soak: assertions failed (dropped=%d drained=%v memFlat=%v queueFlat=%v)",
			rep.DroppedBatches, rep.Drained, rep.MemFlat, rep.QueueFlat)
	}
	return rep, nil
}

// writeSoakReport renders the grep-able soak evidence. CI keys on the
// "digest=" line (byte-identical across same-seed runs) and the trailing
// OK/FAIL verdicts.
func writeSoakReport(w io.Writer, r *SoakReport, prof *obs.Profiler) {
	// Rendered into a builder (whose writes cannot fail) and flushed once,
	// so a broken pipe surfaces as one checked write instead of seven.
	const mb = 1 << 20
	b := &strings.Builder{}
	fmt.Fprintf(b, "soak: %d devices x %d days over %d shards in %v (%d events, %d upload attempts)\n",
		r.Devices, r.Days, r.Shards, r.Elapsed.Round(time.Millisecond), r.Events, r.UploadAttempts)
	fmt.Fprintf(b, "soak: chaos: %d refused, %d reset, %d stalled; %d duplicate batches absorbed, %d upload deferrals\n",
		r.Faults.Refused, r.Faults.Reset, r.Faults.Stalled, r.DupBatches, r.UploadFailures)
	for _, ph := range prof.Phases() {
		fmt.Fprintf(b, "soak: phase %-10s wall=%-8v allocs=%dMB\n", ph.Name, ph.Wall.Round(time.Millisecond), ph.AllocBytes/mb)
	}
	verdict := func(ok bool) string {
		if ok {
			return "OK"
		}
		return "FAIL"
	}
	fmt.Fprintf(b, "soak: memory flat: early=%dMB late=%dMB %s\n", r.HeapEarly/mb, r.HeapLate/mb, verdict(r.MemFlat))
	fmt.Fprintf(b, "soak: queue flat: early=%d late=%d %s\n", r.QueueEarly, r.QueueLat, verdict(r.QueueFlat))
	fmt.Fprintf(b, "soak: queue drained: final=0 dropped=%d flushRounds=%d %s\n",
		r.DroppedBatches, r.FlushRounds, verdict(r.Drained && r.DroppedBatches == 0))
	fmt.Fprintf(b, "soak: digest=%s records=%d batches=%d events=%d devices=%d days=%d\n",
		r.Digest, r.Records, r.Batches, r.Events, r.Devices, r.Days)
	io.WriteString(w, b.String()) //lint:allow errflow soak evidence is best-effort console output; the report struct is the API
}
