package engine

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"locind/internal/mobility"
	"locind/internal/nomad"
)

// TestEngineEquivalentToAgents is the golden cross-check behind the engine:
// at small scale, replaying the same pre-generated trace through (a) the
// legacy goroutine-per-device Agent path and (b) the event-heap engine must
// land byte-identical record streams, batch identities, and server
// aggregates. Both sides run over real HTTP against a full Server (LogStore
// and streaming Aggregates together).
func TestEngineEquivalentToAgents(t *testing.T) {
	g, pt, dcfg := engineFixture(t, 5)
	dcfg.Users = 40
	dt, err := mobility.GenerateDeviceTrace(g, pt, dcfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Legacy path: one Agent per device, sequential (order doesn't matter
	// — devices are independent and the server dedups per device).
	legacy := nomad.NewServer()
	legacy.Agg = nomad.NewAggregates()
	tsA := httptest.NewServer(legacy)
	defer tsA.Close()
	for i := range dt.Users {
		u := &dt.Users[i]
		agent := nomad.NewAgent(nomad.NewClient(tsA.URL), fmt.Sprintf("device-%d", u.ID))
		agent.Sleep = instantSleep
		if _, err := agent.Replay(ctx, u); err != nil {
			t.Fatal(err)
		}
		if _, err := agent.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// Engine path: the same trace through the event heap. MaxPending 0
	// keeps sealing opportunity-driven, so batch boundaries — and with
	// them every "<dev>-b%06d" identity — match the Agent's exactly.
	engSrv := nomad.NewServer()
	engSrv.Agg = nomad.NewAggregates()
	tsB := httptest.NewServer(engSrv)
	defer tsB.Close()
	eng, err := New(Config{
		Trace:      dt,
		Uploader:   nomad.NewClient(tsB.URL),
		Sleep:      instantSleep,
		FlushAtEnd: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if n := eng.QueuedBatches(); n != 0 {
		t.Fatalf("engine left %d batches queued on a clean server", n)
	}

	// Stored record streams: identical per device, byte for byte.
	if la, lb := legacy.Store.Len(), engSrv.Store.Len(); la != lb || la == 0 {
		t.Fatalf("store sizes diverged: legacy %d, engine %d", la, lb)
	}
	devsA, devsB := legacy.Store.Devices(), engSrv.Store.Devices()
	if len(devsA) != len(devsB) || len(devsA) != len(dt.Users) {
		t.Fatalf("device sets diverged: legacy %d, engine %d, fleet %d",
			len(devsA), len(devsB), len(dt.Users))
	}
	for i, dev := range devsA {
		if devsB[i] != dev {
			t.Fatalf("device %d: legacy %s vs engine %s", i, dev, devsB[i])
		}
		ea, eb := legacy.Store.ByDevice(dev), engSrv.Store.ByDevice(dev)
		if len(ea) != len(eb) {
			t.Fatalf("%s: %d records via agents, %d via engine", dev, len(ea), len(eb))
		}
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatalf("%s record %d diverged:\nagent:  %+v\nengine: %+v", dev, j, ea[j], eb[j])
			}
		}
	}

	// Streaming aggregates: identical fleet digest and per-device batch
	// accounting (same sealing points ⇒ same batch count and last seq).
	sa, sb := legacy.Agg.Snapshot(), engSrv.Agg.Snapshot()
	if sa != sb {
		t.Fatalf("aggregate snapshots diverged:\nagents: %+v\nengine: %+v", sa, sb)
	}
	for _, dev := range devsA {
		da, _ := legacy.Agg.Device(dev)
		db, _ := engSrv.Agg.Device(dev)
		if da != db {
			t.Fatalf("%s aggregates diverged:\nagents: %+v\nengine: %+v", dev, da, db)
		}
	}
	if d := legacy.Store.DuplicateBatches() + engSrv.Store.DuplicateBatches(); d != 0 {
		t.Fatalf("%d duplicate batches on a clean network", d)
	}
}
