package engine

import (
	"strconv"

	"locind/internal/obs"
)

// Metrics instruments the event engine. One Metrics may be shared by every
// shard of a fleet (obs handles are concurrency-safe), in which case the
// gauges read fleet-wide totals. All handles are nil-safe, so an engine
// without metrics records nothing and pays only pointer checks in the hot
// path.
type Metrics struct {
	// Events counts processed visit events.
	Events *obs.Counter
	// HeapEvents is the number of currently scheduled events (≤ devices).
	HeapEvents *obs.Gauge
	// QueueEntries is the number of device-buffered records not yet
	// stored (loose plus sealed) — the gauge the soak proves flat.
	QueueEntries *obs.Gauge
	// QueueBatches is the number of sealed batches awaiting upload.
	QueueBatches *obs.Gauge
	// BatchesUploaded and EntriesUploaded count successful stores.
	BatchesUploaded *obs.Counter
	EntriesUploaded *obs.Counter
	// UploadFailures counts drain rounds that exhausted retries — the
	// batch stays queued for the next opportunity (deferral, not loss).
	UploadFailures *obs.Counter
	// DroppedBatches and DroppedEntries count backpressure evictions:
	// oldest sealed batches discarded because a device hit
	// MaxQueuedBatches. This is the engine's only source of data loss.
	DroppedBatches *obs.Counter
	DroppedEntries *obs.Counter
}

// NewMetrics registers the unlabeled engine families on reg. A nil
// registry yields all-nil handles.
func NewMetrics(reg *obs.Registry) *Metrics {
	return newMetrics(reg)
}

// NewShardMetrics registers the engine families labeled shard="<n>", so a
// sharded soak exposes one series per engine and the dashboard can group
// them with ?by=shard.
func NewShardMetrics(reg *obs.Registry, shard int) *Metrics {
	return newMetrics(reg, "shard", strconv.Itoa(shard))
}

func newMetrics(reg *obs.Registry, labels ...string) *Metrics {
	return &Metrics{
		Events:          reg.Counter("locind_nomad_engine_events_total", "visit events processed", labels...),
		HeapEvents:      reg.Gauge("locind_nomad_engine_heap_events", "events currently scheduled", labels...),
		QueueEntries:    reg.Gauge("locind_nomad_engine_queue_entries", "device-buffered records awaiting store", labels...),
		QueueBatches:    reg.Gauge("locind_nomad_engine_queue_batches", "sealed batches awaiting upload", labels...),
		BatchesUploaded: reg.Counter("locind_nomad_engine_batches_uploaded_total", "batches successfully stored", labels...),
		EntriesUploaded: reg.Counter("locind_nomad_engine_entries_uploaded_total", "records successfully stored", labels...),
		UploadFailures:  reg.Counter("locind_nomad_engine_upload_failures_total", "drain rounds that exhausted retries", labels...),
		DroppedBatches:  reg.Counter("locind_nomad_engine_dropped_batches_total", "sealed batches evicted by backpressure", labels...),
		DroppedEntries:  reg.Counter("locind_nomad_engine_dropped_entries_total", "records evicted by backpressure", labels...),
	}
}

// noMetrics backs engines without metrics so the hot path never branches
// per handle; its nil fields make every record a no-op.
var noMetrics = &Metrics{}
