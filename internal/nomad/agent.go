package nomad

import (
	"fmt"
	"sync"

	"locind/internal/mobility"
)

// Agent replays one device's mobility trace through the measurement
// pipeline: on every connectivity event it asks the server for its
// public-facing address and buffers a log record locally; records are
// uploaded in a batch only when the device is "connected to power and WiFi"
// (§4's battery/data conservation rule), which we approximate as any WiFi
// dwell of at least MinUploadDwell hours.
type Agent struct {
	Client *Client
	// MinUploadDwell is the minimum WiFi dwell (hours) treated as
	// "plugged in at home/work" and therefore safe to upload during.
	MinUploadDwell float64
	// UploadRetries is how many extra attempts a failed batch upload gets
	// before the agent gives up for this opportunity and keeps the records
	// buffered for the next long dwell — store-and-forward, like the app.
	UploadRetries int

	deviceID string
	pending  []Entry
	// UploadFailures counts upload opportunities that exhausted retries.
	UploadFailures int
}

// NewAgent creates an agent for the raw device identifier (hashed before it
// ever leaves the device).
func NewAgent(client *Client, rawDeviceID string) *Agent {
	return &Agent{
		Client:         client,
		MinUploadDwell: 2.0,
		UploadRetries:  2,
		deviceID:       HashDeviceID(rawDeviceID),
	}
}

// DeviceID returns the hashed identifier the agent reports.
func (a *Agent) DeviceID() string { return a.deviceID }

// Pending returns the number of buffered, not-yet-uploaded records.
func (a *Agent) Pending() int { return len(a.pending) }

// Replay runs the whole trace through the pipeline. It returns the number
// of records uploaded. Records still pending at the end of the trace remain
// buffered (exactly like a device that was never plugged in).
func (a *Agent) Replay(u *mobility.UserTrace) (int, error) {
	uploaded := 0
	for _, v := range u.Visits {
		// Connectivity event: learn the public address, buffer the record.
		ip, err := a.Client.PublicIP(v.Loc.Addr.String())
		if err != nil {
			return uploaded, fmt.Errorf("nomad: device %s ip-echo: %w", a.deviceID, err)
		}
		a.pending = append(a.pending, Entry{
			DeviceID: a.deviceID,
			Time:     v.Start,
			IPAddr:   ip,
			NetType:  v.Loc.Net.String(),
		})
		// Long WiFi dwell: treat as powered, flush the buffer. A transient
		// upload failure is not fatal — the records stay buffered and the
		// next opportunity retries, exactly like the app's
		// "previously untransferred log files" behaviour.
		if v.Loc.Net == mobility.WiFi && v.Dur >= a.MinUploadDwell {
			var err error
			for attempt := 0; attempt <= a.UploadRetries; attempt++ {
				if err = a.Client.Upload(a.pending); err == nil {
					break
				}
			}
			if err != nil {
				a.UploadFailures++
				continue
			}
			uploaded += len(a.pending)
			a.pending = a.pending[:0]
		}
	}
	return uploaded, nil
}

// RunFleet replays every user in the trace concurrently against the server
// at baseURL, with at most parallel agents in flight. It returns the total
// number of uploaded records.
func RunFleet(baseURL string, dt *mobility.DeviceTrace, parallel int) (int, error) {
	if parallel < 1 {
		parallel = 1
	}
	sem := make(chan struct{}, parallel)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		total    int
		firstErr error
	)
	for i := range dt.Users {
		u := &dt.Users[i]
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			agent := NewAgent(NewClient(baseURL), fmt.Sprintf("device-%d", u.ID))
			n, err := agent.Replay(u)
			mu.Lock()
			defer mu.Unlock()
			total += n
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}()
	}
	wg.Wait()
	return total, firstErr
}
