package nomad

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"locind/internal/mobility"
	"locind/internal/obs"
	"locind/internal/reliable"
)

// batch is a sealed group of log entries with a stable upload identity.
// Sealing is what makes store-and-forward exactly-once: the entries and ID
// are frozen at the first upload attempt, so a retry (or a later
// opportunity) replays the identical batch and the server can dedup it —
// a failed /upload can neither lose nor duplicate records.
type batch struct {
	id      string
	entries []Entry
}

// Agent replays one device's mobility trace through the measurement
// pipeline: on every connectivity event it asks the server for its
// public-facing address and buffers a log record locally; records are
// uploaded in a batch only when the device is "connected to power and WiFi"
// (§4's battery/data conservation rule), which we approximate as any WiFi
// dwell of at least MinUploadDwell hours.
type Agent struct {
	Client *Client
	// MinUploadDwell is the minimum WiFi dwell (hours) treated as
	// "plugged in at home/work" and therefore safe to upload during.
	MinUploadDwell float64
	// UploadRetries is how many extra attempts a failed batch upload gets
	// before the agent gives up for this opportunity and keeps the batch
	// queued for the next long dwell — store-and-forward, like the app.
	UploadRetries int
	// Backoff schedules pauses between upload retries.
	Backoff reliable.Backoff
	// Rand supplies backoff jitter; nil disables jitter. Chaos tests seed
	// this for reproducible retry schedules.
	Rand *rand.Rand
	// Sleep overrides the inter-attempt wait (virtual clock hook).
	Sleep func(ctx context.Context, d time.Duration) error
	// Metrics, when non-nil, counts the retry loop's activity into obs
	// handles shared across the fleet.
	Metrics *reliable.Metrics
	// Obs, when non-nil, counts upload outcomes (batches/entries stored,
	// opportunities given up) into fleet-shared obs handles.
	Obs *AgentMetrics
	// Tracer, when non-nil, records one span per batch-upload opportunity
	// (with per-attempt children) and propagates its TraceContext in the
	// upload headers so the server's store span parents onto it.
	Tracer *obs.Tracer

	deviceID string
	pending  []Entry // records not yet sealed into a batch
	queue    []batch // sealed batches awaiting upload, oldest first
	seq      int
	// UploadFailures counts upload opportunities that exhausted retries.
	UploadFailures int
	// UploadAttempts counts every /upload request made — the quantity
	// chaos tests compare across same-seed runs.
	UploadAttempts int
}

// NewAgent creates an agent for the raw device identifier (hashed before it
// ever leaves the device).
func NewAgent(client *Client, rawDeviceID string) *Agent {
	return &Agent{
		Client:         client,
		MinUploadDwell: 2.0,
		UploadRetries:  2,
		Backoff:        reliable.Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second},
		deviceID:       HashDeviceID(rawDeviceID),
	}
}

// DeviceID returns the hashed identifier the agent reports.
func (a *Agent) DeviceID() string { return a.deviceID }

// Pending returns the number of buffered, not-yet-stored records (loose
// records plus entries in sealed batches still awaiting upload).
func (a *Agent) Pending() int {
	n := len(a.pending)
	for _, b := range a.queue {
		n += len(b.entries)
	}
	return n
}

func (a *Agent) policy(span *obs.Span) reliable.Policy {
	return reliable.Policy{
		MaxAttempts: a.UploadRetries + 1,
		Backoff:     a.Backoff,
		Rand:        a.Rand,
		Sleep:       a.Sleep,
		Metrics:     a.Metrics,
		TraceSpan:   span,
	}
}

// seal freezes the loose pending records into a batch with a fresh stable
// ID and queues it behind any batches still awaiting upload.
func (a *Agent) seal() {
	if len(a.pending) == 0 {
		return
	}
	a.seq++
	a.queue = append(a.queue, batch{
		id:      fmt.Sprintf("%s-b%06d", a.deviceID, a.seq),
		entries: a.pending,
	})
	a.pending = nil
}

// drainQueue uploads sealed batches oldest-first, stopping at the first
// batch that exhausts its retries (the rest wait for the next
// opportunity). It returns the number of records successfully stored.
func (a *Agent) drainQueue(ctx context.Context) (int, error) {
	uploaded := 0
	for len(a.queue) > 0 {
		b := a.queue[0]
		span := a.Tracer.Start("nomad-upload", "batch", b.id)
		upCtx := obs.ContextWith(ctx, span)
		attempts, err := a.policy(span).Do(upCtx, func(ctx context.Context) error {
			return a.Client.Upload(ctx, b.id, b.entries)
		})
		span.End()
		a.UploadAttempts += attempts
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return uploaded, ctxErr
			}
			a.UploadFailures++
			a.m().UploadFailures.Inc()
			return uploaded, nil // keep the batch queued; not fatal
		}
		uploaded += len(b.entries)
		a.m().BatchesUploaded.Inc()
		a.m().EntriesUploaded.Add(int64(len(b.entries)))
		a.queue = a.queue[1:]
	}
	return uploaded, nil
}

// Replay runs the whole trace through the pipeline. It returns the number
// of records uploaded. Records still buffered at the end of the trace stay
// queued (exactly like a device that was never plugged in); Flush drains
// them explicitly.
func (a *Agent) Replay(ctx context.Context, u *mobility.UserTrace) (int, error) {
	uploaded := 0
	for _, v := range u.Visits {
		if err := ctx.Err(); err != nil {
			return uploaded, err
		}
		// Connectivity event: learn the public address, buffer the record.
		// The echo request rides the same retry policy as uploads — a tiny
		// request on a flaky link.
		var ip string
		_, err := a.policy(nil).Do(ctx, func(ctx context.Context) error {
			got, err := a.Client.PublicIP(ctx, v.Loc.Addr.String())
			if err == nil {
				ip = got
			}
			return err
		})
		if err != nil {
			return uploaded, fmt.Errorf("nomad: device %s ip-echo: %w", a.deviceID, err)
		}
		a.pending = append(a.pending, Entry{
			DeviceID: a.deviceID,
			Time:     v.Start,
			IPAddr:   ip,
			NetType:  v.Loc.Net.String(),
		})
		// Long WiFi dwell: treat as powered, seal and flush the buffer. A
		// transient upload failure is not fatal — sealed batches stay
		// queued and the next opportunity resumes, exactly like the app's
		// "previously untransferred log files" behaviour.
		if v.Loc.Net == mobility.WiFi && v.Dur >= a.MinUploadDwell {
			a.seal()
			n, err := a.drainQueue(ctx)
			uploaded += n
			if err != nil {
				return uploaded, err
			}
		}
	}
	return uploaded, nil
}

// Flush seals any loose records and drains the whole upload queue — the
// device plugged in at end of study. It returns the records stored.
func (a *Agent) Flush(ctx context.Context) (int, error) {
	a.seal()
	return a.drainQueue(ctx)
}

// RunFleet replays every user in the trace concurrently against the server
// at baseURL, with at most parallel agents in flight. It returns the total
// number of uploaded records. ctx cancels the whole fleet.
func RunFleet(ctx context.Context, baseURL string, dt *mobility.DeviceTrace, parallel int) (int, error) {
	return RunFleetObserved(ctx, baseURL, dt, parallel, nil, nil, nil)
}

// RunFleetObserved is RunFleet with shared retry-loop metrics, upload
// outcome counters, and an upload tracer attached to every agent; m, am,
// and tr may be nil for an unobserved fleet.
func RunFleetObserved(ctx context.Context, baseURL string, dt *mobility.DeviceTrace, parallel int, m *reliable.Metrics, am *AgentMetrics, tr *obs.Tracer) (int, error) {
	if parallel < 1 {
		parallel = 1
	}
	sem := make(chan struct{}, parallel)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		total    int
		firstErr error
	)
	for i := range dt.Users {
		u := &dt.Users[i]
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			agent := NewAgent(NewClient(baseURL), fmt.Sprintf("device-%d", u.ID))
			agent.Metrics = m
			agent.Obs = am
			agent.Tracer = tr
			n, err := agent.Replay(ctx, u)
			mu.Lock()
			defer mu.Unlock()
			total += n
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}()
	}
	wg.Wait()
	return total, firstErr
}
