package nomad

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
)

func aggEntries(dev string, t0 float64, n int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		net := "cellular"
		if i%2 == 0 {
			net = "wifi"
		}
		es[i] = Entry{
			DeviceID: dev,
			Time:     t0 + float64(i),
			IPAddr:   fmt.Sprintf("10.0.0.%d", i%3),
			NetType:  net,
		}
	}
	return es
}

// TestAggregatesIngest: counts, bounds, and move detection over a simple
// two-batch stream.
func TestAggregatesIngest(t *testing.T) {
	a := NewAggregates()
	dev := HashDeviceID("device-1")
	if !a.IngestBatch(dev+"-b000001", aggEntries(dev, 0, 4)) {
		t.Fatal("first batch rejected")
	}
	if !a.IngestBatch(dev+"-b000002", aggEntries(dev, 4, 2)) {
		t.Fatal("second batch rejected")
	}
	d, ok := a.Device(dev)
	if !ok {
		t.Fatal("device missing from aggregates")
	}
	if d.Records != 6 || d.Batches != 2 || d.LastSeq != 2 {
		t.Fatalf("got records=%d batches=%d lastSeq=%d, want 6/2/2", d.Records, d.Batches, d.LastSeq)
	}
	if d.WiFi != 3 || d.Cellular != 3 {
		t.Fatalf("got wifi=%d cellular=%d, want 3/3", d.WiFi, d.Cellular)
	}
	if d.FirstTime != 0 || d.LastTime != 5 {
		t.Fatalf("got time bounds [%v, %v], want [0, 5]", d.FirstTime, d.LastTime)
	}
	// Addresses cycle 10.0.0.{0,1,2,0} then {0,1}: five transitions, one
	// of which (batch boundary 0->0) is not a move.
	if d.Moves != 4 {
		t.Fatalf("got %d moves, want 4", d.Moves)
	}
	snap := a.Snapshot()
	if snap.Devices != 1 || snap.Records != 6 || snap.Batches != 2 || snap.DupBatches != 0 {
		t.Fatalf("snapshot %+v inconsistent", snap)
	}
}

// TestAggregatesDedup: replays of any already-applied sequence number are
// recognised without a seen-set, because agents upload oldest-first.
func TestAggregatesDedup(t *testing.T) {
	a := NewAggregates()
	dev := HashDeviceID("device-2")
	b1, b2 := aggEntries(dev, 0, 3), aggEntries(dev, 3, 3)
	if !a.IngestBatch(dev+"-b000001", b1) {
		t.Fatal("b1 rejected")
	}
	if a.IngestBatch(dev+"-b000001", b1) {
		t.Fatal("b1 replay applied twice")
	}
	if !a.IngestBatch(dev+"-b000002", b2) {
		t.Fatal("b2 rejected")
	}
	// Late replay of an older sequence (response lost, retried after b2).
	if a.IngestBatch(dev+"-b000001", b1) {
		t.Fatal("stale b1 replay applied after b2")
	}
	d, _ := a.Device(dev)
	if d.Records != 6 || d.Batches != 2 {
		t.Fatalf("got records=%d batches=%d after replays, want 6/2", d.Records, d.Batches)
	}
	if snap := a.Snapshot(); snap.DupBatches != 2 {
		t.Fatalf("got %d dup batches, want 2", snap.DupBatches)
	}
	// A second device is tracked independently.
	dev2 := HashDeviceID("device-3")
	if !a.IngestBatch(dev2+"-b000001", aggEntries(dev2, 0, 1)) {
		t.Fatal("other device's b1 rejected")
	}
}

// TestAggregatesDigestOrderIndependence: the fleet digest depends only on
// each device's record stream, not on cross-device arrival order.
func TestAggregatesDigestOrderIndependence(t *testing.T) {
	devA, devB := HashDeviceID("device-a"), HashDeviceID("device-b")
	a1, a2 := aggEntries(devA, 0, 3), aggEntries(devA, 3, 3)
	b1 := aggEntries(devB, 0, 4)

	x := NewAggregates()
	x.IngestBatch(devA+"-b000001", a1)
	x.IngestBatch(devA+"-b000002", a2)
	x.IngestBatch(devB+"-b000001", b1)

	y := NewAggregates()
	y.IngestBatch(devB+"-b000001", b1)
	y.IngestBatch(devA+"-b000001", a1)
	y.IngestBatch(devA+"-b000002", a2)

	if dx, dy := x.Snapshot().Digest, y.Snapshot().Digest; dx != dy {
		t.Fatalf("interleaving changed fleet digest: %s vs %s", dx, dy)
	}

	// Changing one record's content must change the digest.
	z := NewAggregates()
	a1c := append([]Entry(nil), a1...)
	a1c[1].IPAddr = "10.9.9.9"
	z.IngestBatch(devA+"-b000001", a1c)
	z.IngestBatch(devA+"-b000002", a2)
	z.IngestBatch(devB+"-b000001", b1)
	if x.Snapshot().Digest == z.Snapshot().Digest {
		t.Fatal("record mutation left fleet digest unchanged")
	}
}

// TestStreamingServerUpload: the Agg-only server accepts uploads through
// the real HTTP path, dedups replays, and retains no records.
func TestStreamingServerUpload(t *testing.T) {
	srv := NewStreamingServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)
	dev := HashDeviceID("device-9")
	ctx := context.Background()
	if err := c.Upload(ctx, dev+"-b000001", aggEntries(dev, 0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := c.Upload(ctx, dev+"-b000001", aggEntries(dev, 0, 5)); err != nil {
		t.Fatal(err) // replay is still 204 from the device's view
	}
	snap := srv.Agg.Snapshot()
	if snap.Records != 5 || snap.Batches != 1 || snap.DupBatches != 1 {
		t.Fatalf("snapshot %+v after replay, want 5 records / 1 batch / 1 dup", snap)
	}
	if srv.Store != nil {
		t.Fatal("streaming server retains a LogStore")
	}
}

// TestSplitBatchID: Agent-form IDs parse; junk falls back to unkeyed.
func TestSplitBatchID(t *testing.T) {
	dev, seq, ok := splitBatchID("dev-00ff-b000012")
	if !ok || dev != "dev-00ff" || seq != 12 {
		t.Fatalf("got (%q, %d, %v)", dev, seq, ok)
	}
	for _, bad := range []string{"", "nodash", "-b000001", "dev-1-bxyz"} {
		if _, _, ok := splitBatchID(bad); ok {
			t.Fatalf("%q parsed as a keyed batch ID", bad)
		}
	}
	a := NewAggregates()
	d := HashDeviceID("device-4")
	if !a.IngestBatch("", aggEntries(d, 0, 2)) {
		t.Fatal("unkeyed batch rejected")
	}
	if snap := a.Snapshot(); snap.Unkeyed != 1 || snap.Records != 2 {
		t.Fatalf("snapshot %+v, want 1 unkeyed / 2 records", snap)
	}
}
