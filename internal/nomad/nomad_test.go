package nomad

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/mobility"
	"locind/internal/reliable"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func TestHashDeviceID(t *testing.T) {
	a := HashDeviceID("device-1")
	b := HashDeviceID("device-1")
	c := HashDeviceID("device-2")
	if a != b {
		t.Error("hash not deterministic")
	}
	if a == c {
		t.Error("distinct devices collide")
	}
	if !strings.HasPrefix(a, "dev-") {
		t.Errorf("hash format: %q", a)
	}
}

func TestIPEchoSimulated(t *testing.T) {
	_, ts := newTestServer(t)
	c := NewClient(ts.URL)
	ip, err := c.PublicIP(context.Background(), "22.33.44.55")
	if err != nil {
		t.Fatal(err)
	}
	if ip != "22.33.44.55" {
		t.Fatalf("echo = %q", ip)
	}
}

func TestIPEchoRemoteAddrFallback(t *testing.T) {
	_, ts := newTestServer(t)
	c := NewClient(ts.URL)
	ip, err := c.PublicIP(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if ip != "127.0.0.1" && !strings.Contains(ip, ":") {
		// httptest serves on 127.0.0.1; IPv6 loopback contains colons.
		t.Fatalf("fallback echo = %q", ip)
	}
}

func TestUploadValidation(t *testing.T) {
	s, ts := newTestServer(t)
	c := NewClient(ts.URL)
	// Valid batch.
	err := c.Upload(context.Background(), "", []Entry{{DeviceID: HashDeviceID("x"), Time: 1, IPAddr: "1.2.3.4", NetType: "wifi"}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Store.Len() != 1 {
		t.Fatalf("store len = %d", s.Store.Len())
	}
	// Unhashed device ID rejected.
	if err := c.Upload(context.Background(), "", []Entry{{DeviceID: "raw-name", IPAddr: "1.2.3.4"}}); err == nil {
		t.Fatal("unhashed device_id accepted")
	}
	// Missing fields rejected.
	if err := c.Upload(context.Background(), "", []Entry{{DeviceID: HashDeviceID("x")}}); err == nil {
		t.Fatal("missing ip_addr accepted")
	}
	if s.Store.Len() != 1 {
		t.Fatal("invalid batches must not be stored")
	}
}

func TestMethodValidation(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := ts.Client().Post(ts.URL+"/ip", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("POST /ip = %d", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/upload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET /upload = %d", resp.StatusCode)
	}
	resp, err = ts.Client().Post(ts.URL+"/upload", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad JSON upload = %d", resp.StatusCode)
	}
}

func TestLogStoreQueries(t *testing.T) {
	var s LogStore
	d1, d2 := HashDeviceID("a"), HashDeviceID("b")
	s.Append(
		Entry{DeviceID: d1, Time: 5, IPAddr: "1.1.1.1"},
		Entry{DeviceID: d2, Time: 1, IPAddr: "2.2.2.2"},
		Entry{DeviceID: d1, Time: 2, IPAddr: "3.3.3.3"},
	)
	got := s.ByDevice(d1)
	if len(got) != 2 || got[0].Time != 2 || got[1].Time != 5 {
		t.Fatalf("ByDevice = %+v", got)
	}
	devs := s.Devices()
	if len(devs) != 2 {
		t.Fatalf("Devices = %v", devs)
	}
	if len(s.ByDevice("dev-none")) != 0 {
		t.Fatal("unknown device should be empty")
	}
}

func smallTrace(t *testing.T) *mobility.DeviceTrace {
	t.Helper()
	cfg := asgraph.DefaultSynthConfig()
	cfg.Tier2 = 60
	cfg.Stubs = 500
	g, err := asgraph.Synthesize(cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := bgp.NewPrefixTable(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := mobility.DefaultDeviceConfig()
	dcfg.Users = 12
	dcfg.Days = 3
	dt, err := mobility.GenerateDeviceTrace(g, pt, dcfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	return dt
}

// TestAgentPipeline runs the full measurement loop for one device and checks
// the records landing in the store match the trace.
func TestAgentPipeline(t *testing.T) {
	s, ts := newTestServer(t)
	dt := smallTrace(t)
	u := &dt.Users[0]
	agent := NewAgent(NewClient(ts.URL), "device-0")
	uploaded, err := agent.Replay(context.Background(), u)
	if err != nil {
		t.Fatal(err)
	}
	if uploaded+agent.Pending() != len(u.Visits) {
		t.Fatalf("uploaded %d + pending %d != %d visits", uploaded, agent.Pending(), len(u.Visits))
	}
	stored := s.Store.ByDevice(agent.DeviceID())
	if len(stored) != uploaded {
		t.Fatalf("store has %d, uploaded %d", len(stored), uploaded)
	}
	// Stored records must be a prefix of the visit sequence with matching
	// addresses and net types.
	for i, e := range stored {
		v := u.Visits[i]
		if e.IPAddr != v.Loc.Addr.String() {
			t.Fatalf("record %d addr %q != visit addr %q", i, e.IPAddr, v.Loc.Addr)
		}
		if e.NetType != v.Loc.Net.String() {
			t.Fatalf("record %d net %q != %q", i, e.NetType, v.Loc.Net)
		}
		if e.Time != v.Start {
			t.Fatalf("record %d time %v != %v", i, e.Time, v.Start)
		}
	}
	// At least one upload must have happened (every user sleeps at home on
	// WiFi for more than MinUploadDwell).
	if uploaded == 0 {
		t.Fatal("no records uploaded despite long home dwells")
	}
}

func TestRunFleet(t *testing.T) {
	s, ts := newTestServer(t)
	dt := smallTrace(t)
	total, err := RunFleet(context.Background(), ts.URL, dt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("fleet uploaded nothing")
	}
	if s.Store.Len() != total {
		t.Fatalf("store %d != uploaded %d", s.Store.Len(), total)
	}
	if got := len(s.Store.Devices()); got != len(dt.Users) {
		t.Fatalf("devices in store = %d, want %d", got, len(dt.Users))
	}
	// parallel < 1 is clamped, not an error.
	if _, err := RunFleet(context.Background(), ts.URL, &mobility.DeviceTrace{}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestClientErrors(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens here
	if _, err := c.PublicIP(context.Background(), "1.2.3.4"); err == nil {
		t.Fatal("unreachable server should error")
	}
	if err := c.Upload(context.Background(), "", []Entry{{DeviceID: "dev-x", IPAddr: "1.2.3.4"}}); err == nil {
		t.Fatal("unreachable upload should error")
	}
}

// flakyHandler fails every upload until `failures` attempts have been
// consumed, then behaves normally.
func TestAgentUploadRetryAndStoreAndForward(t *testing.T) {
	s := NewServer()
	failuresLeft := 3
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/upload" && failuresLeft > 0 {
			failuresLeft--
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		s.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(flaky)
	defer ts.Close()

	dt := smallTrace(t)
	u := &dt.Users[0]
	agent := NewAgent(NewClient(ts.URL), "device-0")
	agent.UploadRetries = 5            // absorb all three transient failures in one dwell
	agent.Backoff = reliable.Backoff{} // no waiting in tests
	uploaded, err := agent.Replay(context.Background(), u)
	if err != nil {
		t.Fatal(err)
	}
	if agent.UploadFailures != 0 {
		t.Fatalf("retries should have absorbed transient failures, got %d permanent", agent.UploadFailures)
	}
	if uploaded+agent.Pending() != len(u.Visits) {
		t.Fatalf("records lost: %d uploaded + %d pending != %d visits", uploaded, agent.Pending(), len(u.Visits))
	}
	// Nothing duplicated in the store despite the failures.
	if got := len(s.Store.ByDevice(agent.DeviceID())); got != uploaded {
		t.Fatalf("store has %d records for %d uploads", got, uploaded)
	}
}

// With retries exhausted at every opportunity, no records are lost — they
// stay buffered (the device was simply never able to phone home).
func TestAgentUploadTotalOutage(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/upload" {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		NewServer().ServeHTTP(w, r) // /ip still answers
	}))
	defer down.Close()

	dt := smallTrace(t)
	u := &dt.Users[1]
	agent := NewAgent(NewClient(down.URL), "device-1")
	agent.UploadRetries = 0
	uploaded, err := agent.Replay(context.Background(), u)
	if err != nil {
		t.Fatal(err)
	}
	if uploaded != 0 {
		t.Fatalf("uploads should all fail, got %d", uploaded)
	}
	if agent.Pending() != len(u.Visits) {
		t.Fatalf("buffer lost records: %d of %d", agent.Pending(), len(u.Visits))
	}
	if agent.UploadFailures == 0 {
		t.Fatal("outage must be counted")
	}
}
