package nomad

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Aggregates is the constant-memory replacement for LogStore at fleet
// scale: instead of retaining every record, the server folds each accepted
// batch into per-device running aggregates — O(devices), not O(records).
// Exactly-once ingestion keys on the batch ID's per-device sequence number:
// agents seal and upload batches oldest-first with monotonically increasing
// sequence numbers (the Agent contract since PR 1, preserved by the event
// engine), so "seq <= last applied" recognises every replay without keeping
// a set of all batch IDs ever seen.
type Aggregates struct {
	mu      sync.Mutex
	devices map[string]*DeviceAgg

	records    uint64
	batches    uint64
	dupBatches uint64
	// unkeyed counts batches applied without dedup protection (empty or
	// non-standard batch ID) — zero in any engine-driven run.
	unkeyed uint64
}

// DeviceAgg is one device's running aggregate.
type DeviceAgg struct {
	// Records is the count of stored log records.
	Records uint64
	// Batches is the count of applied (non-duplicate) batches.
	Batches uint64
	// LastSeq is the highest applied batch sequence number.
	LastSeq uint32
	// WiFi and Cellular count records by access network type.
	WiFi, Cellular uint64
	// Moves counts address transitions within the stored stream.
	Moves uint64
	// FirstTime and LastTime bound the stored record times (hours).
	FirstTime, LastTime float64
	// Digest is an order-sensitive FNV-1a over the record stream
	// (time|ip|net per record) — the replay-determinism fingerprint.
	Digest uint64

	haveSeq  bool
	lastAddr string
}

// NewAggregates builds an empty aggregate store.
func NewAggregates() *Aggregates {
	return &Aggregates{devices: map[string]*DeviceAgg{}}
}

// fnv1a folds s into h with 64-bit FNV-1a.
func fnv1a(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

const fnvOffset = 14695981039346656037

// splitBatchID separates an Agent-form batch ID ("<device>-b%06d") into its
// device prefix and sequence number.
func splitBatchID(batchID string) (device string, seq uint32, ok bool) {
	i := strings.LastIndex(batchID, "-b")
	if i <= 0 {
		return "", 0, false
	}
	n, err := strconv.ParseUint(batchID[i+2:], 10, 32)
	if err != nil {
		return "", 0, false
	}
	return batchID[:i], uint32(n), true
}

// IngestBatch folds one uploaded batch into the running aggregates,
// applying it exactly once per well-formed batch ID. It reports whether the
// batch was applied (false = recognised replay). Batches without a
// parseable ID are applied unconditionally, like LogStore's empty-ID path.
func (a *Aggregates) IngestBatch(batchID string, batch []Entry) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, seq, keyed := splitBatchID(batchID)
	if keyed && len(batch) > 0 {
		if d := a.devices[batch[0].DeviceID]; d != nil && d.haveSeq && seq <= d.LastSeq {
			a.dupBatches++
			return false
		}
	}
	if !keyed {
		a.unkeyed++
	}
	a.batches++
	for i := range batch {
		e := &batch[i]
		d := a.devices[e.DeviceID]
		if d == nil {
			d = &DeviceAgg{FirstTime: math.Inf(1), LastTime: math.Inf(-1)}
			a.devices[e.DeviceID] = d
		}
		d.Records++
		a.records++
		switch e.NetType {
		case "wifi":
			d.WiFi++
		case "cellular":
			d.Cellular++
		}
		if d.lastAddr != "" && d.lastAddr != e.IPAddr {
			d.Moves++
		}
		d.lastAddr = e.IPAddr
		if e.Time < d.FirstTime {
			d.FirstTime = e.Time
		}
		if e.Time > d.LastTime {
			d.LastTime = e.Time
		}
		h := d.Digest
		if h == 0 {
			h = fnvOffset
		}
		h = (h ^ uint64(math.Float64bits(e.Time))) * 1099511628211
		h = fnv1a(h, e.IPAddr)
		h = fnv1a(h, e.NetType)
		d.Digest = h
	}
	if keyed && len(batch) > 0 {
		d := a.devices[batch[0].DeviceID]
		d.Batches++
		d.LastSeq, d.haveSeq = seq, true
	}
	return true
}

// Device returns a copy of one device's aggregate.
func (a *Aggregates) Device(deviceID string) (DeviceAgg, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d, ok := a.devices[deviceID]
	if !ok {
		return DeviceAgg{}, false
	}
	return *d, true
}

// AggSnapshot is a point-in-time summary of the whole ingest stream.
type AggSnapshot struct {
	Devices    int
	Records    uint64
	Batches    uint64
	DupBatches uint64
	Unkeyed    uint64
	// Digest fingerprints the full per-device record streams: identical
	// across runs iff every device stored the identical record sequence,
	// regardless of cross-device arrival order.
	Digest string
}

// Snapshot summarises the aggregates. The fleet digest folds the per-device
// digests in sorted device order, so it is independent of upload
// interleaving but pins every record of every device.
func (a *Aggregates) Snapshot() AggSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := make([]string, 0, len(a.devices))
	for id := range a.devices {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	h := uint64(fnvOffset)
	for _, id := range ids {
		d := a.devices[id]
		h = fnv1a(h, id)
		h = (h ^ d.Digest) * 1099511628211
		h = (h ^ d.Records) * 1099511628211
	}
	return AggSnapshot{
		Devices:    len(a.devices),
		Records:    a.records,
		Batches:    a.batches,
		DupBatches: a.dupBatches,
		Unkeyed:    a.unkeyed,
		Digest:     fmt.Sprintf("%016x", h),
	}
}
