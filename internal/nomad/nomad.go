// Package nomad reimplements the paper's NomadLog measurement pipeline (§4)
// as a working client/server system: device agents that observe connectivity
// events, an IP-echo server the device contacts to learn its public-facing
// address, store-and-forward batching of log records (uploads happen only
// when the device is "connected to power and WiFi"), and an append-only log
// store standing in for the paper's postgres database.
//
// In production the server would echo the TCP peer address; in simulation
// every agent connects over loopback, so the agent states its
// workload-assigned address in a header and the server echoes that. The
// observable behaviour — one tiny request per connectivity event, batched
// uploads, the paper's log-record schema — is identical.
package nomad

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"locind/internal/obs"
)

// Entry is one log record, matching the schema of §4:
//
//	device_id | time | ip_addr | net_type | (lat, long)
type Entry struct {
	DeviceID string  `json:"device_id"` // hashed device identifier
	Time     float64 `json:"time"`      // hours from trace start
	IPAddr   string  `json:"ip_addr"`
	NetType  string  `json:"net_type"`
	Lat      float64 `json:"lat,omitempty"`
	Long     float64 `json:"long,omitempty"`
}

// HashDeviceID converts a raw device identifier into the hashed form stored
// in the database, providing the limited privacy the paper describes.
func HashDeviceID(raw string) string {
	h := fnv.New64a()
	h.Write([]byte(raw))
	return fmt.Sprintf("dev-%016x", h.Sum64())
}

// LogStore is the postgres substitute: a concurrency-safe, append-only
// record store with at-most-once batch application. Devices upload sealed
// batches tagged with stable IDs; a batch replayed after a lost response is
// recognised and skipped, so retries can never duplicate log entries.
type LogStore struct {
	mu      sync.Mutex
	entries []Entry
	seen    map[string]bool
	dups    int
}

// Append adds records to the store unconditionally (no dedup).
func (s *LogStore) Append(es ...Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = append(s.entries, es...)
}

// AppendBatch applies a batch exactly once per non-empty batchID,
// reporting whether the records were stored (false = duplicate replay).
// An empty batchID always applies.
func (s *LogStore) AppendBatch(batchID string, es []Entry) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if batchID != "" {
		if s.seen[batchID] {
			s.dups++
			return false
		}
		if s.seen == nil {
			s.seen = map[string]bool{}
		}
		s.seen[batchID] = true
	}
	s.entries = append(s.entries, es...)
	return true
}

// DuplicateBatches returns how many batch replays were deduplicated — the
// visible footprint of responses lost on the wire.
func (s *LogStore) DuplicateBatches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dups
}

// Len returns the number of stored records.
func (s *LogStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// ByDevice returns the records of one device in time order.
func (s *LogStore) ByDevice(deviceID string) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Entry
	for _, e := range s.entries {
		if e.DeviceID == deviceID {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// Devices returns the distinct device IDs seen, sorted.
func (s *LogStore) Devices() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := map[string]bool{}
	for _, e := range s.entries {
		seen[e.DeviceID] = true
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Server is the NomadLog backend: the IP-echo endpoint and the upload
// endpoint, backed by a LogStore and/or streaming Aggregates.
type Server struct {
	// Store, when non-nil, retains every uploaded record (O(records)
	// memory) — right for analysis runs at paper scale.
	Store *LogStore
	// Agg, when non-nil, folds uploads into running per-device aggregates
	// (O(devices) memory) — the only mode that survives million-device
	// soaks. Store and Agg may be set together; dedup then happens
	// independently in each (both recognise the same batch IDs).
	Agg *Aggregates
	// Tracer, when non-nil, records one span per accepted upload batch,
	// parented onto the uploading agent's batch span via the trace header.
	// Nil traces nothing.
	Tracer *obs.Tracer
	mux    *http.ServeMux
}

// simulatedAddrHeader carries the workload-assigned public address during
// loopback simulation.
const simulatedAddrHeader = "X-Nomad-Simulated-Addr"

// batchIDHeader carries the device's stable batch identifier, the key the
// store dedups on when a retry replays a batch whose response was lost.
const batchIDHeader = "X-Nomad-Batch-Id"

// traceHeader carries the uploading agent's obs.TraceContext in Encode
// form, so server-side upload spans parent onto the device batch span.
const traceHeader = "X-Nomad-Trace"

// NewServer constructs the backend in full-retention mode.
func NewServer() *Server {
	s := &Server{Store: &LogStore{}, mux: http.NewServeMux()}
	s.mux.HandleFunc("/ip", s.handleIP)
	s.mux.HandleFunc("/upload", s.handleUpload)
	return s
}

// NewStreamingServer constructs the backend in constant-memory mode: uploads
// fold into Aggregates and no record is retained.
func NewStreamingServer() *Server {
	s := &Server{Agg: NewAggregates(), mux: http.NewServeMux()}
	s.mux.HandleFunc("/ip", s.handleIP)
	s.mux.HandleFunc("/upload", s.handleUpload)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleIP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	addr := r.Header.Get(simulatedAddrHeader)
	if addr == "" {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			host = r.RemoteAddr
		}
		addr = host
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprint(w, addr)
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	tc, _ := obs.ParseTraceContext(r.Header.Get(traceHeader))
	span := s.Tracer.StartRemote(tc, "nomad-store", "batch", r.Header.Get(batchIDHeader))
	defer span.End()
	var batch []Entry
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&batch); err != nil {
		http.Error(w, fmt.Sprintf("bad batch: %v", err), http.StatusBadRequest)
		return
	}
	for _, e := range batch {
		if e.DeviceID == "" || e.IPAddr == "" {
			http.Error(w, "entry missing device_id or ip_addr", http.StatusBadRequest)
			return
		}
		if !strings.HasPrefix(e.DeviceID, "dev-") {
			http.Error(w, "device_id must be hashed", http.StatusBadRequest)
			return
		}
	}
	// Applying a replayed batch twice would duplicate log entries, so both
	// backends dedup on the batch ID; a duplicate is still a success from
	// the device's point of view (its data is safely stored).
	batchID := r.Header.Get(batchIDHeader)
	if s.Store != nil {
		s.Store.AppendBatch(batchID, batch)
	}
	if s.Agg != nil {
		s.Agg.IngestBatch(batchID, batch)
	}
	w.WriteHeader(http.StatusNoContent)
}

// Client is the device side of the IP-echo and upload protocol.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient builds a client against the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL: strings.TrimRight(baseURL, "/"),
		HTTP:    &http.Client{Timeout: 10 * time.Second},
	}
}

// PublicIP asks the server what public address this device appears from.
// simulatedAddr, when non-empty, is the workload-assigned address the agent
// is pretending to hold. ctx bounds the request.
func (c *Client) PublicIP(ctx context.Context, simulatedAddr string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/ip", nil)
	if err != nil {
		return "", err
	}
	if simulatedAddr != "" {
		req.Header.Set(simulatedAddrHeader, simulatedAddr)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("nomad: /ip returned %s", resp.Status)
	}
	var b strings.Builder
	buf := make([]byte, 64)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String(), nil
}

// Upload posts a sealed batch of entries. batchID, when non-empty, makes
// the upload idempotent: a retry after a lost response replays the batch
// and the server skips the duplicate. ctx bounds the request.
func (c *Client) Upload(ctx context.Context, batchID string, batch []Entry) error {
	body, err := json.Marshal(batch)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/upload", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if batchID != "" {
		req.Header.Set(batchIDHeader, batchID)
	}
	// Propagate the batch span carried by ctx (if any) so the server's
	// store span parents onto it.
	if tc := obs.FromContext(ctx).Context(); tc.Valid() {
		req.Header.Set(traceHeader, tc.Encode())
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("nomad: /upload returned %s", resp.Status)
	}
	return nil
}
