package nomad

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"locind/internal/faultnet"
	"locind/internal/mobility"
	"locind/internal/reliable"
)

// chaosBackend starts the NomadLog backend behind a fault-injecting
// listener and returns the server plus its base URL.
func chaosBackend(t *testing.T, env *faultnet.Env, faults faultnet.StreamFaults) (*Server, string) {
	t.Helper()
	srv := NewServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	hs := &http.Server{Handler: srv}
	go hs.Serve(faultnet.WrapListener(ln, env, faults)) //nolint:errcheck
	t.Cleanup(func() { hs.Close() })
	return srv, "http://" + ln.Addr().String()
}

// chaosAgent builds a deterministic agent: fresh connection per request (so
// each request maps to exactly one fault decision, in order), seeded
// jitter, and no real sleeping.
func chaosAgent(baseURL, rawID string, jitterSeed int64) *Agent {
	cli := NewClient(baseURL)
	cli.HTTP = &http.Client{
		Timeout:   2 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	a := NewAgent(cli, rawID)
	a.UploadRetries = 12
	a.Backoff = reliable.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond, Jitter: 0.5}
	a.Rand = rand.New(rand.NewSource(jitterSeed))
	a.Sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	return a
}

// nomadChaosOutcome is what one run observes, for fault-free and same-seed
// comparison.
type nomadChaosOutcome struct {
	stored   []Entry
	uploaded int
	attempts int
	failures int
	dups     int
}

// runNomadChaos replays one device's trace against a backend with the
// given faults, flushing at the end, and returns the outcome.
func runNomadChaos(t *testing.T, u *mobility.UserTrace, faults faultnet.StreamFaults, envSeed, jitterSeed int64) nomadChaosOutcome {
	t.Helper()
	env := faultnet.NewEnv(envSeed)
	env.SetSleep(func(time.Duration) {})
	srv, base := chaosBackend(t, env, faults)
	agent := chaosAgent(base, "chaos-device", jitterSeed)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	uploaded, err := agent.Replay(ctx, u)
	if err != nil {
		t.Fatalf("chaos replay: %v", err)
	}
	// End of study: the device gets plugged in and drains what's left.
	// Under transient faults this must eventually succeed.
	for agent.Pending() > 0 {
		n, err := agent.Flush(ctx)
		if err != nil {
			t.Fatalf("chaos flush: %v", err)
		}
		uploaded += n
		if ctx.Err() != nil {
			t.Fatal("flush did not converge before deadline")
		}
	}
	return nomadChaosOutcome{
		stored:   srv.Store.ByDevice(agent.DeviceID()),
		uploaded: uploaded,
		attempts: agent.UploadAttempts,
		failures: agent.UploadFailures,
		dups:     srv.Store.DuplicateBatches(),
	}
}

// TestChaosUploadExactlyOnce is the headline claim for the upload
// pipeline: under connection refusals and mid-stream resets — including
// resets that land after the server committed but before the device saw
// the response — the store ends up with exactly the fault-free record
// sequence: nothing lost, nothing duplicated.
func TestChaosUploadExactlyOnce(t *testing.T) {
	dt := smallTrace(t)
	u := &dt.Users[0]
	clean := runNomadChaos(t, u, faultnet.StreamFaults{}, 1, 2)
	// Reset budgets sized to the pipeline's actual request/response sizes,
	// so resets land before, during, and after the server's commit point.
	dirty := runNomadChaos(t, u, faultnet.StreamFaults{
		Refuse:        0.2,
		Reset:         0.3,
		ResetAfterMin: 1,
		ResetAfterMax: 400,
	}, 5, 4)

	if dirty.attempts <= clean.attempts {
		t.Fatalf("chaos run made %d attempts vs clean %d; faults injected nothing",
			dirty.attempts, clean.attempts)
	}
	if len(clean.stored) != len(u.Visits) {
		t.Fatalf("fault-free run stored %d of %d visits", len(clean.stored), len(u.Visits))
	}
	if len(dirty.stored) != len(clean.stored) {
		t.Fatalf("chaos stored %d records, fault-free %d (lost or duplicated entries)",
			len(dirty.stored), len(clean.stored))
	}
	for i := range clean.stored {
		if clean.stored[i] != dirty.stored[i] {
			t.Fatalf("record %d diverged: %+v vs %+v", i, clean.stored[i], dirty.stored[i])
		}
	}
	if dirty.uploaded != len(dirty.stored) {
		t.Fatalf("agent counted %d uploads, store holds %d", dirty.uploaded, len(dirty.stored))
	}
}

// TestChaosUploadDeterministicReplay: same seeds, same outcome — retry
// counts, failure counts, dedup hits, and stored bytes all replay.
func TestChaosUploadDeterministicReplay(t *testing.T) {
	dt := smallTrace(t)
	u := &dt.Users[2]
	faults := faultnet.StreamFaults{Refuse: 0.2, Reset: 0.3, ResetAfterMin: 1, ResetAfterMax: 400}
	a := runNomadChaos(t, u, faults, 7, 8)
	b := runNomadChaos(t, u, faults, 7, 8)
	if a.attempts != b.attempts || a.failures != b.failures || a.dups != b.dups {
		t.Fatalf("same-seed runs diverged: attempts %d/%d failures %d/%d dups %d/%d",
			a.attempts, b.attempts, a.failures, b.failures, a.dups, b.dups)
	}
	if len(a.stored) != len(b.stored) {
		t.Fatalf("stored %d vs %d", len(a.stored), len(b.stored))
	}
	for i := range a.stored {
		if a.stored[i] != b.stored[i] {
			t.Fatalf("record %d diverged across same-seed runs", i)
		}
	}
}

// TestUploadCommittedButResponseLost pins the nastiest failure mode
// deterministically: the server commits the batch, then the response dies
// on the wire. The device must retry (it cannot know the batch landed) and
// the store must recognise the replay — one copy, exactly once.
func TestUploadCommittedButResponseLost(t *testing.T) {
	srv := NewServer()
	lostResponses := 2
	mangler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/upload" && lostResponses > 0 {
			lostResponses--
			// Let the real handler commit, then kill the connection
			// instead of answering — a response lost in transit.
			srv.ServeHTTP(httptest.NewRecorder(), r)
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("test server must support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close()
			return
		}
		srv.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(mangler)
	defer ts.Close()

	agent := NewAgent(NewClient(ts.URL), "device-lost")
	agent.UploadRetries = 5
	agent.Backoff = reliable.Backoff{}
	agent.pending = []Entry{
		{DeviceID: agent.DeviceID(), Time: 1, IPAddr: "10.0.0.1", NetType: "wifi"},
		{DeviceID: agent.DeviceID(), Time: 2, IPAddr: "10.0.0.2", NetType: "wifi"},
	}
	n, err := agent.Flush(context.Background())
	if err != nil || n != 2 {
		t.Fatalf("Flush = (%d, %v)", n, err)
	}
	if got := srv.Store.ByDevice(agent.DeviceID()); len(got) != 2 {
		t.Fatalf("store has %d records, want exactly 2 (no duplicates from replays)", len(got))
	}
	if srv.Store.DuplicateBatches() != 2 {
		t.Fatalf("dedup hits = %d, want 2 (one per lost response)", srv.Store.DuplicateBatches())
	}
	if agent.UploadAttempts != 3 {
		t.Fatalf("attempts = %d, want 3 (two lost responses + success)", agent.UploadAttempts)
	}
}

// TestBatchDedupDirectly pins the store-level idempotence contract the
// chaos runs rely on.
func TestBatchDedupDirectly(t *testing.T) {
	var s LogStore
	es := []Entry{{DeviceID: "dev-1", Time: 1, IPAddr: "1.1.1.1"}}
	if !s.AppendBatch("b1", es) {
		t.Fatal("first application must store")
	}
	if s.AppendBatch("b1", es) {
		t.Fatal("replay must be deduplicated")
	}
	if s.Len() != 1 || s.DuplicateBatches() != 1 {
		t.Fatalf("len=%d dups=%d", s.Len(), s.DuplicateBatches())
	}
	// Empty IDs never dedup (legacy unconditional append).
	if !s.AppendBatch("", es) || !s.AppendBatch("", es) {
		t.Fatal("empty batch ID must always apply")
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
}

// TestFlushDrainsBacklog: an agent that never saw a long dwell still
// delivers everything on an explicit flush, split across the sealed
// batches its failed opportunities left behind.
func TestFlushDrainsBacklog(t *testing.T) {
	srv, ts := newTestServer(t)
	agent := NewAgent(NewClient(ts.URL), "device-f")
	agent.Backoff = reliable.Backoff{}
	for i := 0; i < 5; i++ {
		agent.pending = append(agent.pending, Entry{
			DeviceID: agent.DeviceID(), Time: float64(i), IPAddr: fmt.Sprintf("10.0.0.%d", i), NetType: "wifi",
		})
		if i%2 == 0 {
			agent.seal()
		}
	}
	n, err := agent.Flush(context.Background())
	if err != nil || n != 5 {
		t.Fatalf("Flush = (%d, %v)", n, err)
	}
	if agent.Pending() != 0 {
		t.Fatalf("pending after flush = %d", agent.Pending())
	}
	if srv.Store.Len() != 5 {
		t.Fatalf("store len = %d", srv.Store.Len())
	}
}
