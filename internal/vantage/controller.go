package vantage

import (
	"context"
	"errors"
	"io"
	"net"
	"sort"
	"sync"

	"locind/internal/names"
	"locind/internal/netaddr"
	"locind/internal/obs"
)

// Controller is the central collection node: it accepts vantage-point
// connections and merges their hourly observations into per-(name, hour)
// union address sets, the paper's Addrs(d, t).
//
// Ingestion is transactional per connection: report frames are staged and
// only folded into the union when the node's Bye commits the campaign. A
// connection that dies before Bye — a vantage point crashing mid-campaign —
// is discarded whole, so a partial campaign can never corrupt the union.
// Commits are first-wins per node name: a node that replays its campaign
// because the Bye ack was lost on the wire is recognised and skipped.
type Controller struct {
	ln net.Listener

	mu         sync.Mutex
	merged     map[names.Name]map[int]map[netaddr.Addr]bool
	reports    int
	nodes      map[string]bool
	committed  map[string]bool
	discarded  int
	dupCommits int
	errs       []error
	tracer     *obs.Tracer

	wg sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
	stopped   chan struct{}
}

// StartController listens on the given address ("127.0.0.1:0" for an
// ephemeral test port) and begins accepting vantage connections until Close
// is called or ctx is cancelled.
func StartController(ctx context.Context, addr string) (*Controller, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeController(ctx, ln), nil
}

// ServeController runs a controller over a caller-provided listener — the
// seam chaos tests use to inject a fault-wrapped transport. Cancelling ctx
// stops accepting connections as if Close had been called.
func ServeController(ctx context.Context, ln net.Listener) *Controller {
	c := &Controller{
		ln:        ln,
		merged:    map[names.Name]map[int]map[netaddr.Addr]bool{},
		nodes:     map[string]bool{},
		committed: map[string]bool{},
		stopped:   make(chan struct{}),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	go func() {
		select {
		case <-ctx.Done():
			c.close()
		case <-c.stopped:
		}
	}()
	return c
}

// Addr returns the controller's listen address.
func (c *Controller) Addr() string { return c.ln.Addr().String() }

// SetTracer attaches a tracer recording one commit span per campaign,
// parented onto the node's campaign span via the hello frame's trace
// context. nil detaches it.
func (c *Controller) SetTracer(tr *obs.Tracer) {
	c.mu.Lock()
	c.tracer = tr
	c.mu.Unlock()
}

func (c *Controller) getTracer() *obs.Tracer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tracer
}

// close stops the listener exactly once; Close and ctx cancellation can
// race, and the second closer must see the first's error, not a spurious
// "use of closed network connection".
func (c *Controller) close() error {
	c.closeOnce.Do(func() {
		c.closeErr = c.ln.Close()
		close(c.stopped)
	})
	return c.closeErr
}

// Close stops accepting connections and waits for in-flight handlers.
func (c *Controller) Close() error {
	err := c.close()
	c.wg.Wait()
	return err
}

func (c *Controller) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handle(conn)
		}()
	}
}

func (c *Controller) handle(conn net.Conn) {
	defer conn.Close()
	node := ""
	var tc obs.TraceContext
	var staged []Message
	for {
		m, err := ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				c.recordErr(err)
			}
			c.discard(staged)
			return
		}
		switch m.Type {
		case TypeHello:
			node = m.Node
			tc, _ = obs.ParseTraceContext(m.Trace)
			c.mu.Lock()
			c.nodes[node] = true
			c.mu.Unlock()
		case TypeReport:
			staged = append(staged, m)
		case TypeBye:
			// The commit span parents onto the node's campaign span named
			// in the hello frame — the cross-process leg of the causal tree.
			span := c.getTracer().StartRemote(tc, "vantage-commit", "node", node)
			c.commit(node, staged)
			span.End()
			// Acknowledge only after the commit: the ack is the node's
			// proof that its whole campaign is in the union, so a node
			// whose Close errored knows it must replay.
			if err := WriteFrame(conn, Message{Type: TypeBye, Node: node}); err != nil {
				c.recordErr(err)
			}
			return
		default:
			c.recordErr(errors.New("vantage: unknown frame type " + m.Type))
			c.discard(staged)
			return
		}
	}
}

// commit atomically folds one connection's staged campaign into the merged
// union. First commit per node name wins: a replayed campaign whose earlier
// Bye ack was lost is deduplicated, so retries can never double-count a
// vantage point. Unparseable addresses are recorded as errors here, at
// commit time, and skipped.
func (c *Controller) commit(node string, staged []Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if node != "" {
		if c.committed[node] {
			c.dupCommits++
			return
		}
		c.committed[node] = true
	}
	for _, m := range staged {
		c.ingestLocked(m)
	}
}

// discard drops a dead connection's staged reports. Called for any
// connection that ends without a Bye.
func (c *Controller) discard(staged []Message) {
	if len(staged) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.discarded++
}

func (c *Controller) ingestLocked(m Message) {
	name := names.Name(m.Name)
	c.reports++
	byHour := c.merged[name]
	if byHour == nil {
		byHour = map[int]map[netaddr.Addr]bool{}
		c.merged[name] = byHour
	}
	set := byHour[m.Hour]
	if set == nil {
		set = map[netaddr.Addr]bool{}
		byHour[m.Hour] = set
	}
	for _, s := range m.Addrs {
		a, err := netaddr.ParseAddr(s)
		if err != nil {
			c.errs = append(c.errs, err)
			continue
		}
		set[a] = true
	}
}

func (c *Controller) recordErr(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errs = append(c.errs, err)
}

// Errs returns protocol errors observed so far.
func (c *Controller) Errs() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]error(nil), c.errs...)
}

// ReportCount returns how many report frames have been committed into the
// union. Staged reports from dead connections are never counted.
func (c *Controller) ReportCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reports
}

// NodeCount returns how many distinct vantage points have said hello.
func (c *Controller) NodeCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// Discarded returns how many connections died mid-campaign with staged
// reports that were thrown away — the visible footprint of nodes dying
// before their commit.
func (c *Controller) Discarded() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.discarded
}

// DuplicateCommits returns how many complete campaign replays were
// deduplicated by the first-commit-wins rule — the footprint of Bye acks
// lost on the wire.
func (c *Controller) DuplicateCommits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dupCommits
}

// MergedSet returns the union address set observed for a name at an hour,
// sorted ascending.
func (c *Controller) MergedSet(name names.Name, hour int) []netaddr.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := c.merged[name][hour]
	out := make([]netaddr.Addr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Names returns all names with at least one observation, sorted.
func (c *Controller) Names() []names.Name {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]names.Name, 0, len(c.merged))
	for n := range c.merged {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
