package vantage

import (
	"errors"
	"io"
	"net"
	"sort"
	"sync"

	"locind/internal/names"
	"locind/internal/netaddr"
)

// Controller is the central collection node: it accepts vantage-point
// connections and merges their hourly observations into per-(name, hour)
// union address sets, the paper's Addrs(d, t).
type Controller struct {
	ln net.Listener

	mu      sync.Mutex
	merged  map[names.Name]map[int]map[netaddr.Addr]bool
	reports int
	nodes   map[string]bool
	errs    []error

	wg sync.WaitGroup
}

// StartController listens on the given address ("127.0.0.1:0" for an
// ephemeral test port) and begins accepting vantage connections.
func StartController(addr string) (*Controller, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		ln:     ln,
		merged: map[names.Name]map[int]map[netaddr.Addr]bool{},
		nodes:  map[string]bool{},
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the controller's listen address.
func (c *Controller) Addr() string { return c.ln.Addr().String() }

// Close stops accepting connections and waits for in-flight handlers.
func (c *Controller) Close() error {
	err := c.ln.Close()
	c.wg.Wait()
	return err
}

func (c *Controller) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handle(conn)
		}()
	}
}

func (c *Controller) handle(conn net.Conn) {
	defer conn.Close()
	node := ""
	for {
		m, err := ReadFrame(conn)
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			c.recordErr(err)
			return
		}
		switch m.Type {
		case TypeHello:
			node = m.Node
			c.mu.Lock()
			c.nodes[node] = true
			c.mu.Unlock()
		case TypeReport:
			c.ingest(m)
		case TypeBye:
			// Acknowledge so the node's Close blocks until everything it
			// sent on this connection has been ingested; without this, a
			// campaign could tear the controller down while connections
			// are still queued in the accept backlog.
			if err := WriteFrame(conn, Message{Type: TypeBye, Node: node}); err != nil {
				c.recordErr(err)
			}
			return
		default:
			c.recordErr(errors.New("vantage: unknown frame type " + m.Type))
			return
		}
	}
}

func (c *Controller) ingest(m Message) {
	name := names.Name(m.Name)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reports++
	byHour := c.merged[name]
	if byHour == nil {
		byHour = map[int]map[netaddr.Addr]bool{}
		c.merged[name] = byHour
	}
	set := byHour[m.Hour]
	if set == nil {
		set = map[netaddr.Addr]bool{}
		byHour[m.Hour] = set
	}
	for _, s := range m.Addrs {
		a, err := netaddr.ParseAddr(s)
		if err != nil {
			c.errs = append(c.errs, err)
			continue
		}
		set[a] = true
	}
}

func (c *Controller) recordErr(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errs = append(c.errs, err)
}

// Errs returns protocol errors observed so far.
func (c *Controller) Errs() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]error(nil), c.errs...)
}

// ReportCount returns how many report frames have been ingested.
func (c *Controller) ReportCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reports
}

// NodeCount returns how many distinct vantage points have said hello.
func (c *Controller) NodeCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// MergedSet returns the union address set observed for a name at an hour,
// sorted ascending.
func (c *Controller) MergedSet(name names.Name, hour int) []netaddr.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := c.merged[name][hour]
	out := make([]netaddr.Addr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Names returns all names with at least one observation, sorted.
func (c *Controller) Names() []names.Name {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]names.Name, 0, len(c.merged))
	for n := range c.merged {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
