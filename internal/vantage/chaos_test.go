package vantage

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/cdn"
	"locind/internal/faultnet"
	"locind/internal/netaddr"
	"locind/internal/reliable"
)

// chaosTimelines builds a small deterministic deployment for chaos runs.
func chaosTimelines(t *testing.T, hours, sites int) []cdn.Timeline {
	t.Helper()
	acfg := asgraph.DefaultSynthConfig()
	acfg.Tier2 = 60
	acfg.Stubs = 500
	g, err := asgraph.Synthesize(acfg, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := bgp.NewPrefixTable(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := cdn.DefaultConfig()
	ccfg.PopularDomains = 6
	ccfg.UnpopularDomains = 3
	dep, err := cdn.Generate(g, pt, ccfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	tls := dep.Timelines(hours, rand.New(rand.NewSource(4)))
	if len(tls) > sites {
		tls = tls[:sites]
	}
	return tls
}

// chaosController starts the collector behind a fault-injecting listener.
func chaosController(t *testing.T, env *faultnet.Env, faults faultnet.StreamFaults) *Controller {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctrl := ServeController(context.Background(), faultnet.WrapListener(ln, env, faults))
	t.Cleanup(func() { ctrl.Close() })
	return ctrl
}

// vantageChaosOutcome is what one campaign observes, for fault-free and
// same-seed comparison.
type vantageChaosOutcome struct {
	reports    int
	attempts   int64
	discarded  int
	dupCommits int
	stats      faultnet.Stats
	merged     map[string][]netaddr.Addr // "name@hour" -> union
}

// runVantageChaos runs one full campaign against a faulty collector and
// snapshots everything a determinism check needs.
func runVantageChaos(t *testing.T, tls []cdn.Timeline, nodes, retries int, faults faultnet.StreamFaults, envSeed, jitterSeed int64) vantageChaosOutcome {
	t.Helper()
	env := faultnet.NewEnv(envSeed)
	env.SetSleep(func(time.Duration) {})
	ctrl := chaosController(t, env, faults)
	cp := &Campaign{
		Controller: ctrl.Addr(),
		Nodes:      nodes,
		View:       PartialView(4),
		Retries:    retries,
		Backoff:    reliable.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond, Jitter: 0.5},
		Rand:       rand.New(rand.NewSource(jitterSeed)),
		Sleep:      func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := cp.Run(ctx, tls); err != nil {
		t.Fatalf("campaign did not converge: %v", err)
	}
	ctrl.Close()

	merged := map[string][]netaddr.Addr{}
	for i := range tls {
		tl := &tls[i]
		for h := 0; h < tl.Hours; h++ {
			merged[fmt.Sprintf("%s@%d", tl.Site.Name, h)] = ctrl.MergedSet(tl.Site.Name, h)
		}
	}
	return vantageChaosOutcome{
		reports:    ctrl.ReportCount(),
		attempts:   cp.Attempts(),
		discarded:  ctrl.Discarded(),
		dupCommits: ctrl.DuplicateCommits(),
		stats:      env.Stats(),
		merged:     merged,
	}
}

// TestVantageChaosConvergesUnderResets is the headline claim for the
// measurement campaign: with connections refused and reset mid-stream, every
// node's redial-and-replay eventually commits, and the merged union is
// byte-for-byte the fault-free union — dead connections contributed nothing.
func TestVantageChaosConvergesUnderResets(t *testing.T) {
	tls := chaosTimelines(t, 24, 8)
	clean := runVantageChaos(t, tls, 8, 0, faultnet.StreamFaults{}, 1, 2)
	dirty := runVantageChaos(t, tls, 8, 25, faultnet.StreamFaults{
		Refuse:        0.2,
		Reset:         0.3,
		ResetAfterMin: 1,
		ResetAfterMax: 2000,
	}, 5, 4)

	if dirty.stats.Refused+dirty.stats.Reset == 0 {
		t.Fatal("faults injected nothing")
	}
	if dirty.attempts <= clean.attempts {
		t.Fatalf("chaos campaign made %d attempts vs clean %d", dirty.attempts, clean.attempts)
	}
	if dirty.discarded == 0 {
		t.Fatal("no mid-campaign death ever discarded staged reports")
	}
	// The union must converge exactly: same committed report count, same
	// address set at every (name, hour).
	if dirty.reports != clean.reports {
		t.Fatalf("chaos committed %d reports, fault-free %d", dirty.reports, clean.reports)
	}
	for k, want := range clean.merged {
		got := dirty.merged[k]
		if len(got) != len(want) {
			t.Fatalf("%s: union %v != fault-free %v", k, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: union diverged at %d: %v vs %v", k, i, got, want)
			}
		}
	}
	// And the union matches ground truth, as in the fault-free test.
	for i := range tls {
		tl := &tls[i]
		for _, h := range []int{0, 12, 23} {
			want := tl.SetAt(h)
			got := dirty.merged[fmt.Sprintf("%s@%d", tl.Site.Name, h)]
			if len(got) != len(want) {
				t.Fatalf("site %q hour %d: merged %d addrs, truth %d", tl.Site.Name, h, len(got), len(want))
			}
		}
	}
}

// TestVantageChaosDeterministicReplay: one sequential node, same seeds, same
// observable outcome — attempt counts, fault counts, commit bookkeeping, and
// the merged union itself.
func TestVantageChaosDeterministicReplay(t *testing.T) {
	tls := chaosTimelines(t, 24, 4)
	faults := faultnet.StreamFaults{Refuse: 0.2, Reset: 0.3, ResetAfterMin: 1, ResetAfterMax: 2000}
	a := runVantageChaos(t, tls, 1, 40, faults, 7, 8)
	b := runVantageChaos(t, tls, 1, 40, faults, 7, 8)
	if a.attempts != b.attempts || a.discarded != b.discarded || a.dupCommits != b.dupCommits {
		t.Fatalf("same-seed runs diverged: attempts %d/%d discarded %d/%d dups %d/%d",
			a.attempts, b.attempts, a.discarded, b.discarded, a.dupCommits, b.dupCommits)
	}
	if a.stats != b.stats {
		t.Fatalf("fault streams diverged: %+v vs %+v", a.stats, b.stats)
	}
	if a.reports != b.reports {
		t.Fatalf("reports %d vs %d", a.reports, b.reports)
	}
	for k, want := range a.merged {
		got := b.merged[k]
		if len(got) != len(want) {
			t.Fatalf("%s: %v vs %v", k, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s diverged across same-seed runs", k)
			}
		}
	}
	if a.attempts <= 1 {
		t.Fatalf("attempts = %d; faults never forced a replay", a.attempts)
	}
}

// TestNodeDiesMidCampaignExcluded pins the transactional contract directly:
// a node that streams half a campaign and drops dead contributes nothing —
// the union holds exactly the surviving node's observations.
func TestNodeDiesMidCampaignExcluded(t *testing.T) {
	ctrl, err := StartController(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	dying, err := Dial(ctx, ctrl.Addr(), "pl000")
	if err != nil {
		t.Fatal(err)
	}
	poison := netaddr.MustParseAddr("192.0.2.66")
	for h := 0; h < 6; h++ {
		if err := dying.Report(ctx, h, "x.example.com", []netaddr.Addr{poison}); err != nil {
			t.Fatal(err)
		}
	}
	dying.conn.Close() // died before Bye: no commit

	survivor, err := Dial(ctx, ctrl.Addr(), "pl001")
	if err != nil {
		t.Fatal(err)
	}
	good := netaddr.MustParseAddr("10.0.0.1")
	if err := survivor.Report(ctx, 0, "x.example.com", []netaddr.Addr{good}); err != nil {
		t.Fatal(err)
	}
	if err := survivor.Close(ctx); err != nil {
		t.Fatal(err)
	}
	ctrl.Close()

	set := ctrl.MergedSet("x.example.com", 0)
	if len(set) != 1 || set[0] != good {
		t.Fatalf("dead node corrupted the union: %v", set)
	}
	if ctrl.Discarded() != 1 {
		t.Fatalf("Discarded = %d, want 1", ctrl.Discarded())
	}
	if ctrl.ReportCount() != 1 {
		t.Fatalf("ReportCount = %d, want 1 (staged reports must not count)", ctrl.ReportCount())
	}
}

// TestDuplicateCampaignCommitDeduplicated pins first-commit-wins: a node
// replaying its whole campaign because the Bye ack was lost is recognised
// and skipped, never double-counted.
func TestDuplicateCampaignCommitDeduplicated(t *testing.T) {
	ctrl, err := StartController(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	addr := netaddr.MustParseAddr("10.0.0.1")
	for replay := 0; replay < 2; replay++ {
		n, err := Dial(ctx, ctrl.Addr(), "pl000")
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Report(ctx, 0, "x.example.com", []netaddr.Addr{addr}); err != nil {
			t.Fatal(err)
		}
		if err := n.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}
	ctrl.Close()
	if ctrl.ReportCount() != 1 {
		t.Fatalf("ReportCount = %d, want 1 (replay must dedup)", ctrl.ReportCount())
	}
	if ctrl.DuplicateCommits() != 1 {
		t.Fatalf("DuplicateCommits = %d, want 1", ctrl.DuplicateCommits())
	}
}

// TestCampaignContextCancellation: a cancelled context aborts the campaign
// promptly with the context error, not a hang.
func TestCampaignContextCancellation(t *testing.T) {
	ctrl, err := StartController(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tls := chaosTimelines(t, 4, 2)
	err = Sweep(ctx, ctrl.Addr(), 2, tls, nil)
	if err == nil {
		t.Fatal("cancelled campaign must error")
	}
}
