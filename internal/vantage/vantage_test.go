package vantage

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"strings"
	"testing"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/cdn"
	"locind/internal/names"
	"locind/internal/netaddr"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Message{Type: TypeReport, Node: "pl001", Hour: 7, Name: "s01.pop001.com", Addrs: []string{"1.2.3.4", "5.6.7.8"}}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != in.Type || out.Hour != in.Hour || out.Name != in.Name || len(out.Addrs) != 2 {
		t.Fatalf("round trip: %+v", out)
	}
	// Clean EOF between frames.
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}

func TestFrameErrors(t *testing.T) {
	// Truncated header.
	if _, err := ReadFrame(strings.NewReader("\x00\x00")); err == nil || err == io.EOF {
		t.Fatalf("truncated header: %v", err)
	}
	// Truncated body.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10})
	buf.WriteString("abc")
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("truncated body should error")
	}
	// Oversized frame header rejected before allocation.
	var big bytes.Buffer
	big.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&big); err == nil {
		t.Fatal("oversized frame should error")
	}
	// Bad JSON body.
	var bad bytes.Buffer
	bad.Write([]byte{0, 0, 0, 3})
	bad.WriteString("{x}")
	if _, err := ReadFrame(&bad); err == nil {
		t.Fatal("bad JSON should error")
	}
}

func TestControllerBasics(t *testing.T) {
	c, err := StartController(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	n, err := Dial(context.Background(), c.Addr(), "pl000")
	if err != nil {
		t.Fatal(err)
	}
	a1 := netaddr.MustParseAddr("10.0.0.1")
	a2 := netaddr.MustParseAddr("10.0.0.2")
	if err := n.Report(context.Background(), 3, "x.example.com", []netaddr.Addr{a1}); err != nil {
		t.Fatal(err)
	}
	if err := n.Report(context.Background(), 3, "x.example.com", []netaddr.Addr{a2, a1}); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Wait for ingestion: close the controller to join handlers.
	c.Close()
	set := c.MergedSet("x.example.com", 3)
	if len(set) != 2 || set[0] != a1 || set[1] != a2 {
		t.Fatalf("merged = %v", set)
	}
	if c.ReportCount() != 2 || c.NodeCount() != 1 {
		t.Fatalf("counters: %d reports, %d nodes", c.ReportCount(), c.NodeCount())
	}
	if got := c.Names(); len(got) != 1 || got[0] != "x.example.com" {
		t.Fatalf("names = %v", got)
	}
	if len(c.MergedSet("missing", 0)) != 0 {
		t.Fatal("missing name should be empty")
	}
	if len(c.Errs()) != 0 {
		t.Fatalf("unexpected errors: %v", c.Errs())
	}
}

func TestPartialViewProperties(t *testing.T) {
	full := make([]netaddr.Addr, 20)
	for i := range full {
		full[i] = netaddr.MakeAddr(10, 0, byte(i), 1)
	}
	view := PartialView(4)
	union := map[netaddr.Addr]bool{}
	for node := 0; node < 8; node++ {
		sub := view(node, "d", 0, full)
		if len(sub) == 0 {
			t.Fatalf("node %d sees nothing", node)
		}
		if len(sub) == len(full) {
			t.Fatalf("node %d sees everything; view is not partial", node)
		}
		for _, a := range sub {
			union[a] = true
		}
	}
	if len(union) != len(full) {
		t.Fatalf("union over 8 nodes covers %d of %d", len(union), len(full))
	}
	// Determinism.
	v1 := view(3, "d", 5, full)
	v2 := view(3, "d", 5, full)
	if len(v1) != len(v2) {
		t.Fatal("PartialView not deterministic")
	}
	if got := view(0, "d", 0, nil); got != nil {
		t.Fatal("empty set should view empty")
	}
	if PartialView(0) == nil {
		t.Fatal("spread clamp failed")
	}
}

// TestSweepReconstructsGroundTruth runs the whole distributed campaign over
// loopback TCP and checks the controller's merged sets reproduce the CDN
// ground truth, the property the paper's methodology depends on.
func TestSweepReconstructsGroundTruth(t *testing.T) {
	acfg := asgraph.DefaultSynthConfig()
	acfg.Tier2 = 60
	acfg.Stubs = 500
	g, err := asgraph.Synthesize(acfg, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := bgp.NewPrefixTable(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := cdn.DefaultConfig()
	ccfg.PopularDomains = 8
	ccfg.UnpopularDomains = 4
	dep, err := cdn.Generate(g, pt, ccfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	tls := dep.Timelines(36, rand.New(rand.NewSource(4)))
	if len(tls) > 60 {
		tls = tls[:60]
	}

	ctrl, err := StartController(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := Sweep(context.Background(), ctrl.Addr(), 10, tls, PartialView(4)); err != nil {
		t.Fatal(err)
	}
	ctrl.Close()

	if ctrl.NodeCount() != 10 {
		t.Fatalf("nodes = %d", ctrl.NodeCount())
	}
	wantReports := 10 * len(tls) * 36
	if ctrl.ReportCount() != wantReports {
		t.Fatalf("reports = %d, want %d", ctrl.ReportCount(), wantReports)
	}
	for i := range tls {
		tl := &tls[i]
		for _, hour := range []int{0, 17, 35} {
			want := tl.SetAt(hour)
			got := ctrl.MergedSet(tl.Site.Name, hour)
			if len(got) != len(want) {
				t.Fatalf("site %q hour %d: merged %d addrs, truth %d", tl.Site.Name, hour, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("site %q hour %d: merged %v != truth %v", tl.Site.Name, hour, got, want)
				}
			}
		}
	}
	if len(ctrl.Errs()) != 0 {
		t.Fatalf("controller errors: %v", ctrl.Errs())
	}
}

func TestSweepErrors(t *testing.T) {
	if err := Sweep(context.Background(), "127.0.0.1:1", 1, nil, nil); err == nil {
		t.Fatal("unreachable controller should error")
	}
	ctrl, err := StartController(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if err := Sweep(context.Background(), ctrl.Addr(), 0, nil, nil); err == nil {
		t.Fatal("zero nodes should error")
	}
}

func TestControllerRejectsGarbage(t *testing.T) {
	ctrl, err := StartController(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n, err := Dial(context.Background(), ctrl.Addr(), "pl000")
	if err != nil {
		t.Fatal(err)
	}
	// Unknown frame type terminates the connection and records an error.
	if err := WriteFrame(n.conn, Message{Type: "nonsense"}); err != nil {
		t.Fatal(err)
	}
	n.conn.Close()
	ctrl.Close()
	if len(ctrl.Errs()) == 0 {
		t.Fatal("garbage frame should record an error")
	}
}

func TestControllerBadAddrInReport(t *testing.T) {
	ctrl, err := StartController(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n, err := Dial(context.Background(), ctrl.Addr(), "pl000")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(n.conn, Message{Type: TypeReport, Name: "d", Hour: 0, Addrs: []string{"not-an-ip", "1.2.3.4"}}); err != nil {
		t.Fatal(err)
	}
	n.Close(context.Background())
	ctrl.Close()
	if got := ctrl.MergedSet(names.Name("d"), 0); len(got) != 1 {
		t.Fatalf("valid addr should survive: %v", got)
	}
	if len(ctrl.Errs()) == 0 {
		t.Fatal("bad addr should record an error")
	}
}

// TestMeasuredTimelinesMatchTruth closes the measurement loop: timelines
// reconstructed from the controller's merged observations must be
// event-for-event identical to the CDN ground truth, so every downstream
// update-cost number could equally be computed from the measured data.
func TestMeasuredTimelinesMatchTruth(t *testing.T) {
	acfg := asgraph.DefaultSynthConfig()
	acfg.Tier2 = 60
	acfg.Stubs = 500
	g, err := asgraph.Synthesize(acfg, rand.New(rand.NewSource(78)))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := bgp.NewPrefixTable(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := cdn.DefaultConfig()
	ccfg.PopularDomains = 6
	ccfg.UnpopularDomains = 3
	dep, err := cdn.Generate(g, pt, ccfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	hours := 48
	truth := dep.Timelines(hours, rand.New(rand.NewSource(6)))
	if len(truth) > 40 {
		truth = truth[:40]
	}

	ctrl, err := StartController(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := Sweep(context.Background(), ctrl.Addr(), 8, truth, PartialView(4)); err != nil {
		t.Fatal(err)
	}
	ctrl.Close()

	sites := make([]cdn.Site, len(truth))
	for i := range truth {
		sites[i] = truth[i].Site
	}
	measured, err := ctrl.MeasuredTimelines(sites, hours)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		want, got := &truth[i], &measured[i]
		if got.EventCount() != want.EventCount() {
			t.Fatalf("site %q: measured %d events, truth %d",
				want.Site.Name, got.EventCount(), want.EventCount())
		}
		for _, h := range []int{0, hours / 3, hours - 1} {
			ws, gs := want.SetAt(h), got.SetAt(h)
			if len(ws) != len(gs) {
				t.Fatalf("site %q hour %d: set sizes %d vs %d", want.Site.Name, h, len(gs), len(ws))
			}
			for j := range ws {
				if ws[j] != gs[j] {
					t.Fatalf("site %q hour %d: sets diverge", want.Site.Name, h)
				}
			}
		}
	}
}

func TestMeasuredTimelineErrors(t *testing.T) {
	ctrl, err := StartController(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if _, err := ctrl.MeasuredTimeline(cdn.Site{Name: "ghost"}, 10); err == nil {
		t.Error("unobserved site should error")
	}
	if _, err := ctrl.MeasuredTimeline(cdn.Site{Name: "x"}, 0); err == nil {
		t.Error("zero hours should error")
	}
}
