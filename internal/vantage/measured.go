package vantage

import (
	"fmt"
	"slices"

	"locind/internal/cdn"
	"locind/internal/netaddr"
)

// MeasuredTimeline reconstructs a cdn.Timeline for one site from the
// controller's merged observations, exactly as the paper's central
// controller turns per-vantage resolutions into the Addrs(d, t) history:
// the hour-h set is the union of all reports for (site, h), and a mobility
// event is any hour whose union differs from the previous hour's.
func (c *Controller) MeasuredTimeline(site cdn.Site, hours int) (cdn.Timeline, error) {
	if hours <= 0 {
		return cdn.Timeline{}, fmt.Errorf("vantage: need positive hours, have %d", hours)
	}
	initial := c.MergedSet(site.Name, 0)
	if len(initial) == 0 {
		return cdn.Timeline{}, fmt.Errorf("vantage: no hour-0 observations for %q", site.Name)
	}
	tl := cdn.Timeline{Site: site, Hours: hours, Initial: initial}
	prev := map[netaddr.Addr]bool{}
	for _, a := range initial {
		prev[a] = true
	}
	for h := 1; h < hours; h++ {
		cur := c.MergedSet(site.Name, h)
		var ev cdn.Event
		seen := map[netaddr.Addr]bool{}
		for _, a := range cur {
			seen[a] = true
			if !prev[a] {
				ev.Added = append(ev.Added, a)
			}
		}
		for a := range prev {
			if !seen[a] {
				ev.Removed = append(ev.Removed, a)
			}
		}
		if len(ev.Added) > 0 || len(ev.Removed) > 0 {
			ev.Hour = h
			// Sort removed deterministically (Added comes sorted from
			// MergedSet; Removed is collected from map iteration).
			sortAddrs(ev.Removed)
			tl.Events = append(tl.Events, ev)
			prev = seen
		}
	}
	return tl, nil
}

// MeasuredTimelines reconstructs timelines for every given site.
func (c *Controller) MeasuredTimelines(sites []cdn.Site, hours int) ([]cdn.Timeline, error) {
	out := make([]cdn.Timeline, 0, len(sites))
	for _, s := range sites {
		tl, err := c.MeasuredTimeline(s, hours)
		if err != nil {
			return nil, err
		}
		out = append(out, tl)
	}
	return out, nil
}

func sortAddrs(as []netaddr.Addr) {
	slices.Sort(as)
}
