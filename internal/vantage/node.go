package vantage

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locind/internal/cdn"
	"locind/internal/names"
	"locind/internal/netaddr"
	"locind/internal/obs"
	"locind/internal/reliable"
)

// Node is one vantage point: a TCP client streaming hourly resolution
// observations to the controller. Nothing a node sends becomes visible in
// the merged union until its Bye commits the whole campaign, so a node that
// dies mid-stream leaves no trace.
type Node struct {
	Name string
	conn net.Conn
}

// Dial connects a vantage point to the controller and introduces itself.
// ctx bounds the connection attempt and the hello frame.
func Dial(ctx context.Context, addr, name string) (*Node, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("vantage: dial controller: %w", err)
	}
	n := &Node{Name: name, conn: conn}
	if err := n.applyDeadline(ctx); err != nil {
		conn.Close()
		return nil, err
	}
	// The hello frame carries the span riding on ctx (the node's campaign
	// span when the caller traces), so the controller's commit span can
	// parent onto it.
	hello := Message{Type: TypeHello, Node: name, Trace: obs.FromContext(ctx).Context().Encode()}
	if err := WriteFrame(conn, hello); err != nil {
		conn.Close()
		return nil, err
	}
	return n, nil
}

// applyDeadline projects the context's deadline onto the connection so frame
// I/O cannot outlive the caller's budget.
func (n *Node) applyDeadline(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok {
		return n.conn.SetDeadline(d)
	}
	return n.conn.SetDeadline(time.Time{})
}

// Report sends one (name, hour) observation. The controller stages it until
// Close commits the campaign.
func (n *Node) Report(ctx context.Context, hour int, name names.Name, addrs []netaddr.Addr) error {
	if err := n.applyDeadline(ctx); err != nil {
		return err
	}
	strs := make([]string, len(addrs))
	for i, a := range addrs {
		strs[i] = a.String()
	}
	return WriteFrame(n.conn, Message{
		Type:  TypeReport,
		Node:  n.Name,
		Hour:  hour,
		Name:  string(name),
		Addrs: strs,
	})
}

// Close says goodbye, waits for the controller's acknowledgement — which is
// the commit point: only now do this connection's reports enter the merged
// union — and closes the connection.
func (n *Node) Close(ctx context.Context) error {
	defer n.conn.Close()
	if err := n.applyDeadline(ctx); err != nil {
		return err
	}
	if err := WriteFrame(n.conn, Message{Type: TypeBye, Node: n.Name}); err != nil {
		return err
	}
	ack, err := ReadFrame(n.conn)
	if err != nil {
		return fmt.Errorf("vantage: waiting for bye ack: %w", err)
	}
	if ack.Type != TypeBye {
		return fmt.Errorf("vantage: unexpected ack frame %q", ack.Type)
	}
	return nil
}

// ViewFunc models what one vantage point's resolver answer looks like: the
// subset of the full address set visible from that node at that hour.
type ViewFunc func(nodeIdx int, name names.Name, hour int, full []netaddr.Addr) []netaddr.Addr

// PartialView is the default locality proxy: each address is visible from
// roughly 1/spread of the nodes (CDNs answer with nearby edges only), with
// the deterministic guarantee that every address is visible from at least
// one node and every node sees at least one address, so the union over
// enough nodes reconstructs the full set — the property the paper's 74-node
// deployment relies on.
func PartialView(spread int) ViewFunc {
	if spread < 1 {
		spread = 1
	}
	return func(nodeIdx int, name names.Name, hour int, full []netaddr.Addr) []netaddr.Addr {
		if len(full) == 0 {
			return nil
		}
		var out []netaddr.Addr
		for _, a := range full {
			h := fnv.New32a()
			var buf [4]byte
			buf[0] = byte(a)
			buf[1] = byte(a >> 8)
			buf[2] = byte(a >> 16)
			buf[3] = byte(a >> 24)
			h.Write(buf[:])
			if int(h.Sum32())%spread == nodeIdx%spread {
				out = append(out, a)
			}
		}
		if len(out) == 0 {
			out = append(out, full[nodeIdx%len(full)])
		}
		return out
	}
}

// Campaign describes one distributed measurement run with its reliability
// policy. Nodes run concurrently, mirroring the real deployment; each node
// that fails mid-campaign is redialed and replays its whole campaign from
// scratch — commit-on-Bye makes the replay invisible-until-complete, and the
// controller's first-commit-wins rule makes a replay after a lost ack
// harmless. A node that exhausts its retries is excluded from the merged
// union without corrupting it.
type Campaign struct {
	Controller string
	Nodes      int
	View       ViewFunc // nil means PartialView(4)
	// Retries is how many extra full redial-and-replay attempts a failed
	// node gets before it is written off.
	Retries int
	// Backoff schedules pauses between a node's attempts.
	Backoff reliable.Backoff
	// Rand seeds per-node jitter; nil disables jitter. Seeds are drawn
	// up front so concurrent nodes never share the generator.
	Rand *rand.Rand
	// Sleep overrides the inter-attempt wait (virtual clock hook).
	Sleep func(ctx context.Context, d time.Duration) error
	// Metrics, when non-nil, counts every node's retry-loop activity into
	// shared obs handles.
	Metrics *reliable.Metrics
	// Tracer, when non-nil, records one span per node campaign (with
	// per-attempt children) and propagates its TraceContext in the hello
	// frame so the controller's commit span parents onto it.
	Tracer *obs.Tracer

	attempts atomic.Int64
}

// Attempts returns the total campaign attempts made across all nodes — the
// quantity chaos tests compare across same-seed runs.
func (cp *Campaign) Attempts() int64 { return cp.attempts.Load() }

// Run executes the campaign over the given timelines: every node resolves
// every name once per simulated hour through its partial view and streams
// the observations to the controller ("precise time synchronization is not
// necessary" — neither needed here). It returns the joined errors of nodes
// that exhausted their retries; their observations are absent from the
// merged union, never partially present.
func (cp *Campaign) Run(ctx context.Context, tls []cdn.Timeline) error {
	if cp.Nodes < 1 {
		return fmt.Errorf("vantage: need at least one node")
	}
	view := cp.View
	if view == nil {
		view = PartialView(4)
	}
	var seeds []int64
	if cp.Rand != nil {
		seeds = make([]int64, cp.Nodes)
		for i := range seeds {
			seeds[i] = cp.Rand.Int63()
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, cp.Nodes)
	for i := 0; i < cp.Nodes; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			var rng *rand.Rand
			if seeds != nil {
				rng = rand.New(rand.NewSource(seeds[idx]))
			}
			errs[idx] = cp.runNode(ctx, idx, rng, view, tls)
		}(i)
	}
	wg.Wait()
	var failed []error
	for idx, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("vantage: node pl%03d excluded from union: %w", idx, err))
		}
	}
	return errors.Join(failed...)
}

func (cp *Campaign) runNode(ctx context.Context, idx int, rng *rand.Rand, view ViewFunc, tls []cdn.Timeline) error {
	span := cp.Tracer.Start("vantage-node", "node", fmt.Sprintf("pl%03d", idx))
	defer span.End()
	policy := reliable.Policy{
		MaxAttempts: cp.Retries + 1,
		Backoff:     cp.Backoff,
		Rand:        rng,
		Sleep:       cp.Sleep,
		Metrics:     cp.Metrics,
		TraceSpan:   span,
	}
	attempts, err := policy.Do(obs.ContextWith(ctx, span), func(ctx context.Context) error {
		return cp.attempt(ctx, idx, view, tls)
	})
	cp.attempts.Add(int64(attempts))
	return err
}

// attempt is one full campaign for one node. Any failure abandons the
// connection without a Bye — to the controller that is exactly a node dying
// mid-campaign, so everything staged on the connection is discarded and the
// next attempt starts from a blank slate.
func (cp *Campaign) attempt(ctx context.Context, idx int, view ViewFunc, tls []cdn.Timeline) error {
	node, err := Dial(ctx, cp.Controller, fmt.Sprintf("pl%03d", idx))
	if err != nil {
		return err
	}
	defer node.conn.Close()
	for t := range tls {
		tl := &tls[t]
		err := replayHourly(tl, func(hour int, set []netaddr.Addr) error {
			return node.Report(ctx, hour, tl.Site.Name, view(idx, tl.Site.Name, hour, set))
		})
		if err != nil {
			return err
		}
	}
	return node.Close(ctx)
}

// Sweep runs a full measurement campaign with default reliability settings:
// numNodes vantage points, two redial-and-replay retries each, modest
// backoff. Use a Campaign directly to tune the policy.
func Sweep(ctx context.Context, controllerAddr string, numNodes int, tls []cdn.Timeline, view ViewFunc) error {
	cp := &Campaign{
		Controller: controllerAddr,
		Nodes:      numNodes,
		View:       view,
		Retries:    2,
		Backoff:    reliable.Backoff{Base: 50 * time.Millisecond, Max: time.Second},
	}
	return cp.Run(ctx, tls)
}

// replayHourly materializes the timeline's address set hour by hour without
// quadratic SetAt calls.
func replayHourly(tl *cdn.Timeline, fn func(hour int, set []netaddr.Addr) error) error {
	cur := map[netaddr.Addr]bool{}
	for _, a := range tl.Initial {
		cur[a] = true
	}
	ei := 0
	buf := make([]netaddr.Addr, 0, len(cur))
	for h := 0; h < tl.Hours; h++ {
		for ei < len(tl.Events) && tl.Events[ei].Hour == h {
			for _, a := range tl.Events[ei].Removed {
				delete(cur, a)
			}
			for _, a := range tl.Events[ei].Added {
				cur[a] = true
			}
			ei++
		}
		buf = buf[:0]
		for a := range cur {
			buf = append(buf, a)
		}
		// Sorted order keeps every node's behaviour — including
		// PartialView's index-based fallback — independent of map
		// iteration, which same-seed chaos replays rely on.
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		if err := fn(h, buf); err != nil {
			return err
		}
	}
	return nil
}
