package vantage

import (
	"fmt"
	"hash/fnv"
	"net"
	"sync"

	"locind/internal/cdn"
	"locind/internal/names"
	"locind/internal/netaddr"
)

// Node is one vantage point: a TCP client streaming hourly resolution
// observations to the controller.
type Node struct {
	Name string
	conn net.Conn
}

// Dial connects a vantage point to the controller and introduces itself.
func Dial(addr, name string) (*Node, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("vantage: dial controller: %w", err)
	}
	n := &Node{Name: name, conn: conn}
	if err := WriteFrame(conn, Message{Type: TypeHello, Node: name}); err != nil {
		conn.Close()
		return nil, err
	}
	return n, nil
}

// Report sends one (name, hour) observation.
func (n *Node) Report(hour int, name names.Name, addrs []netaddr.Addr) error {
	strs := make([]string, len(addrs))
	for i, a := range addrs {
		strs[i] = a.String()
	}
	return WriteFrame(n.conn, Message{
		Type:  TypeReport,
		Node:  n.Name,
		Hour:  hour,
		Name:  string(name),
		Addrs: strs,
	})
}

// Close says goodbye, waits for the controller's acknowledgement (which
// guarantees every frame sent on this connection has been ingested), and
// closes the connection.
func (n *Node) Close() error {
	defer n.conn.Close()
	if err := WriteFrame(n.conn, Message{Type: TypeBye, Node: n.Name}); err != nil {
		return err
	}
	ack, err := ReadFrame(n.conn)
	if err != nil {
		return fmt.Errorf("vantage: waiting for bye ack: %w", err)
	}
	if ack.Type != TypeBye {
		return fmt.Errorf("vantage: unexpected ack frame %q", ack.Type)
	}
	return nil
}

// ViewFunc models what one vantage point's resolver answer looks like: the
// subset of the full address set visible from that node at that hour.
type ViewFunc func(nodeIdx int, name names.Name, hour int, full []netaddr.Addr) []netaddr.Addr

// PartialView is the default locality proxy: each address is visible from
// roughly 1/spread of the nodes (CDNs answer with nearby edges only), with
// the deterministic guarantee that every address is visible from at least
// one node and every node sees at least one address, so the union over
// enough nodes reconstructs the full set — the property the paper's 74-node
// deployment relies on.
func PartialView(spread int) ViewFunc {
	if spread < 1 {
		spread = 1
	}
	return func(nodeIdx int, name names.Name, hour int, full []netaddr.Addr) []netaddr.Addr {
		if len(full) == 0 {
			return nil
		}
		var out []netaddr.Addr
		for _, a := range full {
			h := fnv.New32a()
			var buf [4]byte
			buf[0] = byte(a)
			buf[1] = byte(a >> 8)
			buf[2] = byte(a >> 16)
			buf[3] = byte(a >> 24)
			h.Write(buf[:])
			if int(h.Sum32())%spread == nodeIdx%spread {
				out = append(out, a)
			}
		}
		if len(out) == 0 {
			out = append(out, full[nodeIdx%len(full)])
		}
		return out
	}
}

// Sweep runs a full measurement campaign: numNodes vantage points connect
// to the controller and, for every hour of every timeline, resolve the name
// through their partial view and report the result. Nodes run concurrently,
// mirroring the real deployment; the hour loop inside each node is the
// paper's once-per-hour resolution schedule ("precise time synchronization
// is not necessary" — neither needed here).
func Sweep(controllerAddr string, numNodes int, tls []cdn.Timeline, view ViewFunc) error {
	if numNodes < 1 {
		return fmt.Errorf("vantage: need at least one node")
	}
	if view == nil {
		view = PartialView(4)
	}
	var wg sync.WaitGroup
	errs := make([]error, numNodes)
	for i := 0; i < numNodes; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			node, err := Dial(controllerAddr, fmt.Sprintf("pl%03d", idx))
			if err != nil {
				errs[idx] = err
				return
			}
			defer node.Close()
			for t := range tls {
				tl := &tls[t]
				errs[idx] = replayHourly(tl, func(hour int, set []netaddr.Addr) error {
					return node.Report(hour, tl.Site.Name, view(idx, tl.Site.Name, hour, set))
				})
				if errs[idx] != nil {
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// replayHourly materializes the timeline's address set hour by hour without
// quadratic SetAt calls.
func replayHourly(tl *cdn.Timeline, fn func(hour int, set []netaddr.Addr) error) error {
	cur := map[netaddr.Addr]bool{}
	for _, a := range tl.Initial {
		cur[a] = true
	}
	ei := 0
	buf := make([]netaddr.Addr, 0, len(cur))
	for h := 0; h < tl.Hours; h++ {
		for ei < len(tl.Events) && tl.Events[ei].Hour == h {
			for _, a := range tl.Events[ei].Removed {
				delete(cur, a)
			}
			for _, a := range tl.Events[ei].Added {
				cur[a] = true
			}
			ei++
		}
		buf = buf[:0]
		for a := range cur {
			buf = append(buf, a)
		}
		if err := fn(h, buf); err != nil {
			return err
		}
	}
	return nil
}
