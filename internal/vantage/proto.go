// Package vantage reimplements the paper's distributed content-mobility
// measurement (§7.1): vantage-point nodes resolve every monitored name once
// an hour, each seeing only a partial, locality-biased view of the name's
// address set, and stream their observations to a central controller over
// TCP; the controller merges observations per (name, hour) into the union
// set Addrs(d, t) that the update-cost methodology consumes.
package vantage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Message is one protocol frame. The wire format is a 4-byte big-endian
// length followed by the JSON encoding.
type Message struct {
	Type  string   `json:"type"` // "hello", "report", or "bye"
	Node  string   `json:"node,omitempty"`
	Hour  int      `json:"hour,omitempty"`
	Name  string   `json:"name,omitempty"`
	Addrs []string `json:"addrs,omitempty"`
	// Trace, on a hello frame, is the node's campaign span context in
	// obs.TraceContext Encode form; the controller's commit span parents
	// onto it. Absent when the node traces nothing; a mangled value is
	// ignored.
	Trace string `json:"trace,omitempty"`
}

// Message types.
const (
	TypeHello  = "hello"
	TypeReport = "report"
	TypeBye    = "bye"
)

// maxFrame bounds a frame to keep a misbehaving peer from ballooning
// controller memory.
const maxFrame = 1 << 20

// WriteFrame marshals and writes one length-prefixed frame.
func WriteFrame(w io.Writer, m Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("vantage: marshal frame: %w", err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("vantage: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads and unmarshals one frame. io.EOF is returned unwrapped on
// a clean connection close between frames.
func ReadFrame(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("vantage: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return Message{}, fmt.Errorf("vantage: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, fmt.Errorf("vantage: read frame body: %w", err)
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return Message{}, fmt.Errorf("vantage: unmarshal frame: %w", err)
	}
	return m, nil
}
