package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Sample is a float64 that survives JSON: encoding/json refuses NaN and
// ±Inf, but a histogram sum that absorbed a NaN observation must not make
// the whole /debug/timeseries dump unserializable. Non-finite samples
// marshal as null and unmarshal back as NaN — sanitization is a transport
// concern only; in-memory checks see the real values and fail loudly.
type Sample float64

// MarshalJSON implements json.Marshaler.
func (s Sample) MarshalJSON() ([]byte, error) {
	f := float64(s)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return []byte("null"), nil
	}
	return strconv.AppendFloat(nil, f, 'g', -1, 64), nil
}

// UnmarshalJSON implements json.Unmarshaler; null becomes NaN.
func (s *Sample) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*s = Sample(math.NaN())
		return nil
	}
	f, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return err
	}
	*s = Sample(f)
	return nil
}

// DumpSeries is one series in a Dump: identity plus retained samples,
// oldest first.
type DumpSeries struct {
	Key     string            `json:"key"`
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Samples []Sample          `json:"samples"`
}

// Dump is the /debug/timeseries wire format and the soak series-file
// format: everything cmd/obsreport needs to rebuild sparklines and check
// verdicts offline.
type Dump struct {
	IntervalSeconds float64       `json:"interval_seconds,omitempty"`
	Ticks           int64         `json:"ticks"`
	Series          []DumpSeries  `json:"series"`
	Checks          []CheckResult `json:"checks,omitempty"`
}

// Dump snapshots every series (and the current check verdicts) into a
// serializable report. Nil sampler → nil.
func (s *Sampler) Dump() *Dump {
	if s == nil {
		return nil
	}
	d := &Dump{Checks: s.EvalChecks()}
	s.mu.Lock()
	defer s.mu.Unlock()
	d.Ticks = s.ticks
	d.IntervalSeconds = s.interval.Seconds()
	d.Series = make([]DumpSeries, 0, len(s.order))
	for _, sr := range s.order {
		ds := DumpSeries{Key: sr.key, Name: sr.name}
		if len(sr.pairs) > 0 {
			ds.Labels = make(map[string]string, len(sr.pairs))
			for _, p := range sr.pairs {
				ds.Labels[p.K] = p.V
			}
		}
		vals := sr.Values(nil)
		ds.Samples = make([]Sample, len(vals))
		for i, v := range vals {
			ds.Samples[i] = Sample(v)
		}
		d.Series = append(d.Series, ds)
	}
	return d
}

// MarshalJSON-ready bytes of the dump, for handlers and series files.
func (d *Dump) JSON() ([]byte, error) { return json.MarshalIndent(d, "", " ") }

// ParseDump decodes a /debug/timeseries dump (or soak series file).
func ParseDump(b []byte) (*Dump, error) {
	var d Dump
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("obs: parsing timeseries dump: %w", err)
	}
	return &d, nil
}

// sparkTicks are the eight block glyphs a sparkline quantizes into.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders samples as a unicode sparkline of at most width glyphs,
// min-max normalized; longer series are downsampled by bucket-averaging.
// Non-finite samples render as '·' and are excluded from normalization. An
// all-equal (or single-sample) series renders at half height.
func Sparkline(samples []float64, width int) string {
	if len(samples) == 0 || width <= 0 {
		return ""
	}
	if len(samples) > width {
		samples = downsample(samples, width)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range samples {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range samples {
		switch {
		case math.IsNaN(v) || math.IsInf(v, 0):
			b.WriteRune('·')
		case hi <= lo:
			b.WriteRune(sparkTicks[len(sparkTicks)/2])
		default:
			i := int((v - lo) / (hi - lo) * float64(len(sparkTicks)-1))
			b.WriteRune(sparkTicks[min(max(i, 0), len(sparkTicks)-1)])
		}
	}
	return b.String()
}

// downsample reduces samples to width buckets of finite-mean values; a
// bucket with only non-finite samples stays NaN so the gap remains visible.
func downsample(samples []float64, width int) []float64 {
	out := make([]float64, width)
	for i := range out {
		lo := i * len(samples) / width
		hi := (i + 1) * len(samples) / width
		sum, n := 0.0, 0
		for _, v := range samples[lo:hi] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			sum += v
			n++
		}
		if n == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = sum / float64(n)
		}
	}
	return out
}

// WriteMarkdown renders the dump as the obsreport markdown: run metadata,
// a check-verdict table, and a per-series table with unicode sparklines —
// the CI artifact a reviewer skims to see a soak's shape.
func (d *Dump) WriteMarkdown(b *strings.Builder) {
	b.WriteString("# locind time-series report\n\n")
	fmt.Fprintf(b, "- ticks: %d\n", d.Ticks)
	if d.IntervalSeconds > 0 {
		fmt.Fprintf(b, "- nominal interval: %gs\n", d.IntervalSeconds)
	}
	fmt.Fprintf(b, "- series: %d\n", len(d.Series))

	if len(d.Checks) > 0 {
		b.WriteString("\n## Checks\n\n")
		b.WriteString("| check | series | kind | verdict | detail |\n")
		b.WriteString("|---|---|---|---|---|\n")
		for _, c := range d.Checks {
			verdict := "✅ ok"
			if !c.OK {
				verdict = "❌ FAIL"
			}
			fmt.Fprintf(b, "| %s | `%s` | %s | %s | %s |\n",
				c.Name, c.Series, c.Kind, verdict, mdEscape(c.Detail))
		}
	}

	b.WriteString("\n## Series\n\n")
	b.WriteString("| series | samples | last | min | max | shape |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, ds := range d.Series {
		vals := make([]float64, len(ds.Samples))
		for i, v := range ds.Samples {
			vals[i] = float64(v)
		}
		last, lo, hi := seriesStats(vals)
		fmt.Fprintf(b, "| `%s` | %d | %s | %s | %s | %s |\n",
			ds.Key, len(vals), fmtSample(last), fmtSample(lo), fmtSample(hi),
			Sparkline(vals, 40))
	}
}

// seriesStats returns the last sample and the finite min/max (NaN when the
// series is empty or has no finite samples).
func seriesStats(vals []float64) (last, lo, hi float64) {
	last, lo, hi = math.NaN(), math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if len(vals) > 0 {
		last = vals[len(vals)-1]
	}
	if lo > hi {
		lo, hi = math.NaN(), math.NaN()
	}
	return last, lo, hi
}

// fmtSample renders a sample compactly for tables ("—" when non-finite).
func fmtSample(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "—"
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// mdEscape keeps check details from breaking the markdown table.
func mdEscape(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
