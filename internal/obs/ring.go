package obs

import "sync"

// Ring is a bounded in-memory flight recorder: an io.Writer that keeps the
// last Cap bytes written and never fails. Instrumented code can
// fmt.Fprintf progress lines into it without error handling — the errflow
// analyzer knows a *obs.Ring write cannot fail — and the daemons expose
// the retained tail at /debug/log. Safe for concurrent use.
type Ring struct {
	mu   sync.Mutex
	buf  []byte
	cap  int
	next int
	full bool
}

// NewRing builds a recorder retaining the last capacity bytes (values
// below 1 default to 64 KiB).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 64 << 10
	}
	return &Ring{buf: make([]byte, 0, capacity), cap: capacity}
}

// Write appends p, evicting the oldest bytes once capacity is exceeded.
// It always reports full success; a nil receiver discards everything.
func (r *Ring) Write(p []byte) (int, error) {
	if r == nil {
		return len(p), nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, b := range p {
		if len(r.buf) < r.cap {
			r.buf = append(r.buf, b)
		} else {
			r.buf[r.next] = b
			r.full = true
		}
		r.next = (r.next + 1) % r.cap
	}
	return len(p), nil
}

// Bytes returns the retained tail, oldest byte first.
func (r *Ring) Bytes() []byte {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]byte(nil), r.buf...)
	}
	out := make([]byte, 0, r.cap)
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
