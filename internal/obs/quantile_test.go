package obs

import (
	"math"
	"testing"
)

func TestQuantileUniformDistribution(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	h := r.Histogram("u", "", bounds)
	// 10k observations uniform on (0, 1]: quantile q should sit near q.
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i) / 10000)
	}
	for _, q := range []float64{0.10, 0.50, 0.95, 0.99} {
		got := h.Quantile(q)
		if math.Abs(got-q) > 0.02 {
			t.Fatalf("uniform: Quantile(%g) = %g, want ~%g", q, got, q)
		}
	}
}

func TestQuantileExponentialDistribution(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("e", "", DefBuckets)
	// Deterministic Exp(λ=100) via inverse CDF over an evenly spaced grid:
	// x = -ln(1-u)/λ, mean 10ms. True quantiles: p50 ≈ 6.93ms, p95 ≈ 30ms,
	// p99 ≈ 46ms.
	const n = 20000
	for i := 0; i < n; i++ {
		u := (float64(i) + 0.5) / n
		h.Observe(-math.Log(1-u) / 100)
	}
	// Tolerances reflect DefBuckets resolution: the estimator assumes a
	// uniform spread inside each bucket, which overestimates an exponential
	// tail slightly.
	cases := []struct{ q, want, tol float64 }{
		{0.50, math.Ln2 / 100, 0.002},
		{0.95, math.Log(20) / 100, 0.010},
		{0.99, math.Log(100) / 100, 0.010},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if math.Abs(got-c.want) > c.tol {
			t.Fatalf("exp: Quantile(%g) = %g, want %g ± %g", c.q, got, c.want, c.tol)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram Quantile != 0")
	}
	r := NewRegistry()
	h := r.Histogram("x", "", []float64{1, 2, 4})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram Quantile != 0")
	}
	h.Observe(1.5)
	// One observation in (1,2]: every quantile interpolates inside that bucket.
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got < 1 || got > 2 {
			t.Fatalf("single-obs Quantile(%g) = %g, want in [1,2]", q, got)
		}
	}
	// Out-of-range q clamps instead of exploding.
	if got := h.Quantile(-3); got < 1 || got > 2 {
		t.Fatalf("Quantile(-3) = %g", got)
	}
	if got := h.Quantile(7); got < 1 || got > 2 {
		t.Fatalf("Quantile(7) = %g", got)
	}
	if !math.IsNaN(h.Quantile(math.NaN())) {
		t.Fatal("Quantile(NaN) must be NaN")
	}
	// Observation above every bound lands in the implicit +Inf bucket and
	// high quantiles clamp to the top finite bound.
	h.Observe(100)
	if got := h.Quantile(0.99); got != 4 {
		t.Fatalf("+Inf-bucket quantile = %g, want clamp to 4", got)
	}
}

func TestQuantileFromCumMatchesQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("m", "", []float64{1, 2, 3, 5, 8})
	for _, v := range []float64{0.5, 1.5, 1.7, 2.2, 4, 4.5, 7, 9} {
		h.Observe(v)
	}
	cum := make([]int64, len(h.bounds))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		a := quantileFromCum(h.bounds, cum, h.Count(), q)
		b := h.Quantile(q)
		if a != b {
			t.Fatalf("quantileFromCum(%g) = %g but Quantile = %g", q, a, b)
		}
	}
}
