package obs

import (
	"strings"
	"testing"
)

func exposition(r *Registry) string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

func TestHistogramExpositionEmpty(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("locind_empty_seconds", "never observed", []float64{0.1, 1})
	want := strings.Join([]string{
		"# HELP locind_empty_seconds never observed",
		"# TYPE locind_empty_seconds histogram",
		`locind_empty_seconds_bucket{le="0.1"} 0`,
		`locind_empty_seconds_bucket{le="1"} 0`,
		`locind_empty_seconds_bucket{le="+Inf"} 0`,
		"locind_empty_seconds_sum 0",
		"locind_empty_seconds_count 0",
		"",
	}, "\n")
	if got := exposition(reg); got != want {
		t.Fatalf("empty histogram exposition:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramExpositionSingleBucket(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("locind_single_seconds", "one finite bound", []float64{0.5})
	h.Observe(0.25) // inside the one bucket
	h.Observe(2)    // beyond every finite bound: +Inf only
	want := strings.Join([]string{
		"# HELP locind_single_seconds one finite bound",
		"# TYPE locind_single_seconds histogram",
		`locind_single_seconds_bucket{le="0.5"} 1`,
		`locind_single_seconds_bucket{le="+Inf"} 2`,
		"locind_single_seconds_sum 2.25",
		"locind_single_seconds_count 2",
		"",
	}, "\n")
	if got := exposition(reg); got != want {
		t.Fatalf("single-bucket exposition:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramExpositionCumulativeInf(t *testing.T) {
	// Buckets must be cumulative and the +Inf line must equal _count even
	// when every observation lands in a finite bucket.
	reg := NewRegistry()
	h := reg.Histogram("locind_cum_seconds", "cumulative check", []float64{1, 2, 4}, "kind", "walk")
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 8} {
		h.Observe(v)
	}
	want := strings.Join([]string{
		"# HELP locind_cum_seconds cumulative check",
		"# TYPE locind_cum_seconds histogram",
		`locind_cum_seconds_bucket{kind="walk",le="1"} 1`,
		`locind_cum_seconds_bucket{kind="walk",le="2"} 3`,
		`locind_cum_seconds_bucket{kind="walk",le="4"} 4`,
		`locind_cum_seconds_bucket{kind="walk",le="+Inf"} 5`,
		"locind_cum_seconds_sum{kind=\"walk\"} 14.5",
		"locind_cum_seconds_count{kind=\"walk\"} 5",
		"",
	}, "\n")
	if got := exposition(reg); got != want {
		t.Fatalf("cumulative exposition:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
