package obs

import (
	"testing"
	"time"
)

func TestSamplerNilSafe(t *testing.T) {
	var s *Sampler
	s.Tick()
	s.SetInterval(time.Second)
	s.Pre(func() { t.Fatal("pre hook on nil sampler must never run") })
	s.Check("c", "k", MonotoneNonDecreasing{})
	if s.Ticks() != 0 || s.Interval() != 0 || s.Series("k") != nil {
		t.Fatal("nil sampler must read as zero")
	}
	if got := s.Values("k", nil); got != nil {
		t.Fatalf("nil sampler Values = %v", got)
	}
	if s.Keys() != nil || s.EvalChecks() != nil {
		t.Fatal("nil sampler listings must be nil")
	}
	if ok, failed := s.Healthy(); !ok || failed != nil {
		t.Fatal("nil sampler must be healthy")
	}
	if NewSampler(nil, 16) != nil {
		t.Fatal("NewSampler(nil) must return nil (disabled)")
	}
}

func TestSamplerSnapshotsCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "")
	g := r.Gauge("depth", "", "shard", "2")
	s := NewSampler(r, 16)
	for i := 0; i < 3; i++ {
		c.Add(10)
		g.Set(int64(i))
		s.Tick()
	}
	if s.Ticks() != 3 {
		t.Fatalf("Ticks = %d", s.Ticks())
	}
	got := s.Values("reqs_total", nil)
	want := []float64{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counter series = %v, want %v", got, want)
		}
	}
	got = s.Values(`depth{shard="2"}`, nil)
	want = []float64{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gauge series = %v, want %v", got, want)
		}
	}
	if sr := s.Series(`depth{shard="2"}`); sr == nil || sr.Label("shard") != "2" {
		t.Fatal("labeled series must retain its label pairs")
	}
}

func TestSamplerPicksUpLateRegistrations(t *testing.T) {
	r := NewRegistry()
	early := r.Counter("early_total", "")
	s := NewSampler(r, 16)
	early.Inc()
	s.Tick()
	late := r.Gauge("late", "")
	late.Set(7)
	s.Tick()
	if got := s.Values("early_total", nil); len(got) != 2 {
		t.Fatalf("early series has %d samples, want 2", len(got))
	}
	got := s.Values("late", nil)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("late series = %v, want [7] (ring starts at first tick after registration)", got)
	}
}

func TestSamplerExpandsHistograms(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{0.1, 0.2, 0.4})
	s := NewSampler(r, 16)
	for i := 0; i < 100; i++ {
		h.Observe(0.15)
	}
	s.Tick()
	keys := s.Keys()
	wantKeys := []string{
		"lat_seconds_count", "lat_seconds_sum",
		"lat_seconds_p50", "lat_seconds_p95", "lat_seconds_p99",
	}
	if len(keys) != len(wantKeys) {
		t.Fatalf("Keys = %v", keys)
	}
	for i, k := range wantKeys {
		if keys[i] != k {
			t.Fatalf("Keys = %v, want %v", keys, wantKeys)
		}
	}
	if got := s.Values("lat_seconds_count", nil); got[0] != 100 {
		t.Fatalf("_count sample = %v", got)
	}
	if got := s.Values("lat_seconds_sum", nil); got[0] < 14.9 || got[0] > 15.1 {
		t.Fatalf("_sum sample = %v", got)
	}
	// Everything sits in (0.1, 0.2]; all quantiles interpolate inside it.
	for _, k := range []string{"lat_seconds_p50", "lat_seconds_p95", "lat_seconds_p99"} {
		got := s.Values(k, nil)
		if got[0] <= 0.1 || got[0] > 0.2 {
			t.Fatalf("%s sample = %v, want in (0.1, 0.2]", k, got)
		}
	}
}

func TestSamplerPreHooksRunEachTick(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("derived", "")
	s := NewSampler(r, 16)
	n := int64(0)
	s.Pre(func() { n++; g.Set(n) })
	s.Tick()
	s.Tick()
	got := s.Values("derived", nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("derived series = %v, want [1 2] (pre-hook before snapshot)", got)
	}
}

func TestSamplerChecksAndHealth(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "")
	s := NewSampler(r, 64)
	s.Check("depth-bounded", "depth", Bounded{Min: 0, Max: 100})
	s.Check("never-sampled", "no_such_series", MonotoneNonDecreasing{})

	// Before any tick, everything is vacuous.
	for _, res := range s.EvalChecks() {
		if !res.OK {
			t.Fatalf("pre-tick check %s must pass vacuously: %s", res.Name, res.Detail)
		}
	}

	g.Set(50)
	s.Tick()
	if ok, failed := s.Healthy(); !ok {
		t.Fatalf("in-range sampler must be healthy: %v", failed)
	}

	g.Set(1000)
	s.Tick()
	ok, failed := s.Healthy()
	if ok || len(failed) != 1 || failed[0].Name != "depth-bounded" {
		t.Fatalf("out-of-range must degrade: ok=%v failed=%v", ok, failed)
	}
	if failed[0].Kind != "bounded" || failed[0].Series != "depth" {
		t.Fatalf("failed result = %+v", failed[0])
	}

	// Re-binding the same name replaces, not duplicates.
	s.Check("depth-bounded", "depth", Bounded{Min: 0, Max: 1e9})
	if ok, failed := s.Healthy(); !ok {
		t.Fatalf("rebound check must pass: %v", failed)
	}
	if got := len(s.EvalChecks()); got != 2 {
		t.Fatalf("check count after rebind = %d, want 2", got)
	}
}

func TestSamplerCapacityFloor(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "")
	s := NewSampler(r, 1) // below the floor of 4 → default capacity
	s.Tick()
	if sr := s.Series("c_total"); cap(sr.buf) != DefaultSeriesCapacity {
		t.Fatalf("capacity = %d, want default %d", cap(sr.buf), DefaultSeriesCapacity)
	}
}

func TestSamplerRingWrapKeepsChecksOnTrailingWindow(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("v", "")
	s := NewSampler(r, 8)
	// 20 ticks of growth into an 8-slot ring: only the trailing window
	// remains, and a flatness check sees just that window.
	for i := 0; i < 20; i++ {
		g.Set(int64(i))
		s.Tick()
	}
	got := s.Values("v", nil)
	if len(got) != 8 || got[0] != 12 || got[7] != 19 {
		t.Fatalf("trailing window = %v", got)
	}
	s.Check("v-monotone", "v", MonotoneNonDecreasing{})
	if ok, failed := s.Healthy(); !ok {
		t.Fatalf("monotone over trailing window must pass: %v", failed)
	}
}

func TestRuntimeSamplerSetsGauges(t *testing.T) {
	r := NewRegistry()
	s := NewSampler(r, 16)
	s.Pre(RuntimeSampler(r))
	s.Tick()
	heap := s.Values("locind_runtime_heap_inuse_bytes", nil)
	gor := s.Values("locind_runtime_goroutines", nil)
	if len(heap) != 1 || heap[0] <= 0 {
		t.Fatalf("heap series = %v", heap)
	}
	if len(gor) != 1 || gor[0] < 1 {
		t.Fatalf("goroutine series = %v", gor)
	}
}
