package obs

import (
	"expvar"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), families sorted by name and series by label
// signature, so consecutive scrapes of an idle registry are byte-identical.
// The whole exposition is rendered into b; exposition is a cold path and
// the in-memory builder cannot fail, which keeps callers' error handling
// trivial.
func (r *Registry) WritePrometheus(b *strings.Builder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ordered := append([]*series(nil), r.series...)
	r.mu.Unlock()
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].name != ordered[j].name {
			return ordered[i].name < ordered[j].name
		}
		return ordered[i].labels < ordered[j].labels
	})
	lastFamily := ""
	for _, s := range ordered {
		if s.name != lastFamily {
			lastFamily = s.name
			if s.help != "" {
				fmt.Fprintf(b, "# HELP %s %s\n", s.name, s.help)
			}
			fmt.Fprintf(b, "# TYPE %s %s\n", s.name, map[metricKind]string{
				kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram",
			}[s.kind])
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(b, "%s%s %d\n", s.name, wrapLabels(s.labels), s.c.Value())
		case kindGauge:
			fmt.Fprintf(b, "%s%s %d\n", s.name, wrapLabels(s.labels), s.g.Value())
		case kindHistogram:
			writeHistogram(b, s)
		}
	}
}

func wrapLabels(ls string) string {
	if ls == "" {
		return ""
	}
	return "{" + ls + "}"
}

// writeHistogram renders the cumulative _bucket/_sum/_count triplet.
func writeHistogram(b *strings.Builder, s *series) {
	h := s.h
	cum := int64(0)
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", s.name, wrapLabels(joinLabels(s.labels, `le="`+formatFloat(ub)+`"`)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", s.name, wrapLabels(joinLabels(s.labels, `le="+Inf"`)), h.Count())
	fmt.Fprintf(b, "%s_sum%s %s\n", s.name, wrapLabels(s.labels), formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", s.name, wrapLabels(s.labels), h.Count())
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// round-trip representation, no exponent for typical bucket bounds.
func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Snapshot returns the registry as a plain map for programmatic inspection
// (the expvar bridge and BENCH_*.json emitters use this). Histograms report
// count and sum under derived keys.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.series {
		key := s.name + wrapLabels(s.labels)
		switch s.kind {
		case kindCounter:
			out[key] = s.c.Value()
		case kindGauge:
			out[key] = s.g.Value()
		case kindHistogram:
			out[key+"_count"] = s.h.Count()
			out[key+"_sum"] = s.h.Sum()
		}
	}
	return out
}

var expvarOnce sync.Once

// BridgeExpvar publishes the registry under the expvar name "locind_obs",
// so /debug/vars carries the same numbers as /metrics. expvar names are
// process-global and Publish panics on reuse, so only the first bridged
// registry wins; later calls are no-ops (the daemons bridge exactly one).
func BridgeExpvar(r *Registry) {
	if r == nil {
		return
	}
	expvarOnce.Do(func() {
		expvar.Publish("locind_obs", expvar.Func(func() any { return r.Snapshot() }))
	})
}
