package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestNilHandlesAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Fatalf("nil registry exposition = %q", b.String())
	}
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestCounterGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-7) // counters only go up
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	// Re-registering the same identity returns the same handle.
	if r.Counter("ops_total", "ops") != c {
		t.Fatal("re-registration must return the existing counter")
	}
	if r.Counter("ops_total", "ops", "k", "v") == c {
		t.Fatal("different label set must be a different series")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 56.05 {
		t.Fatalf("sum = %v", got)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusExpositionShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last family").Inc()
	r.Counter("aa_total", "first family", "kind", "x").Add(2)
	r.Counter("aa_total", "first family", "kind", "a").Add(1)
	r.Gauge("mid", "a gauge").Set(-4)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	want := `# HELP aa_total first family
# TYPE aa_total counter
aa_total{kind="a"} 1
aa_total{kind="x"} 2
# HELP mid a gauge
# TYPE mid gauge
mid -4
# HELP zz_total last family
# TYPE zz_total counter
zz_total 1
`
	if out != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", out, want)
	}
	// Two scrapes of an idle registry are byte-identical.
	var b2 strings.Builder
	r.WritePrometheus(&b2)
	if b2.String() != out {
		t.Fatal("idle registry scrapes diverged")
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m_total", "", "b", "2", "a", "1")
	b := r.Counter("m_total", "", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order must not create distinct series")
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9leading", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q must panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h_seconds", "", []float64{1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: counter %d, histogram %d", c.Value(), h.Count())
	}
	if h.Sum() != 4000 {
		t.Fatalf("histogram sum = %v", h.Sum())
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(3)
	r.Gauge("g", "", "k", "v").Set(9)
	r.Histogram("h_seconds", "", []float64{1}).Observe(0.25)
	snap := r.Snapshot()
	if snap["a_total"] != int64(3) {
		t.Fatalf("snapshot a_total = %v", snap["a_total"])
	}
	if snap[`g{k="v"}`] != int64(9) {
		t.Fatalf("snapshot gauge = %v", snap[`g{k="v"}`])
	}
	if snap["h_seconds_count"] != int64(1) || snap["h_seconds_sum"] != 0.25 {
		t.Fatalf("snapshot histogram = %v / %v", snap["h_seconds_count"], snap["h_seconds_sum"])
	}
}

func TestRing(t *testing.T) {
	var nilRing *Ring
	if n, err := nilRing.Write([]byte("x")); n != 1 || err != nil {
		t.Fatal("nil ring must accept and discard")
	}
	r := NewRing(8)
	fmt.Fprintf(r, "abc")
	if got := string(r.Bytes()); got != "abc" {
		t.Fatalf("ring = %q", got)
	}
	fmt.Fprintf(r, "defghij") // 10 bytes total, capacity 8
	if got := string(r.Bytes()); got != "cdefghij" {
		t.Fatalf("ring after wrap = %q", got)
	}
}
