package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// chromeEvent mirrors the subset of a trace_event entry the tests walk.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	Args map[string]string `json:"args"`
}

func decodeChrome(t *testing.T, payload string) []chromeEvent {
	t.Helper()
	var doc struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(payload), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, payload)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

func TestBuildTreeAssemblesCausalTree(t *testing.T) {
	tr := NewTracer(3, 16)
	root := tr.Start("root")
	a := root.Child("a")
	a.Child("a1").End()
	a.End()
	root.Child("b").End()
	root.End()
	tr.Start("lone").End()

	roots := tr.Tree()
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2: %+v", len(roots), roots)
	}
	byName := map[string]*SpanNode{}
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		byName[n.Name] = n
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	if len(byName) != 5 {
		t.Fatalf("tree lost spans: %v", byName)
	}
	if byName["a1"].Parent != byName["a"].ID || byName["a"].Parent != byName["root"].ID {
		t.Fatal("parent chain a1 -> a -> root broken")
	}
	if len(byName["root"].Children) != 2 {
		t.Fatalf("root has %d children, want 2 (a, b)", len(byName["root"].Children))
	}
	if byName["lone"].Parent != 0 || len(byName["lone"].Children) != 0 {
		t.Fatal("lone span must be an isolated root")
	}
}

func TestBuildTreeRemoteParentBecomesRoot(t *testing.T) {
	// A span whose parent lives in another process's tracer must surface as
	// a local root, not vanish.
	server := NewTracer(4, 8)
	server.StartRemote(TraceContext{TraceID: 99, SpanID: 42}, "handle").End()
	roots := server.Tree()
	if len(roots) != 1 || roots[0].Name != "handle" || roots[0].Parent != 42 {
		t.Fatalf("remote-parented span mishandled: %+v", roots)
	}
}

func TestWriteChromeExport(t *testing.T) {
	tr := NewTracer(5, 16)
	var tick time.Duration
	tr.SetNow(func() time.Duration { tick += time.Millisecond; return tick })
	req := tr.Start("request", "name", "n3")
	req.Child("attempt").End()
	req.End()

	var b strings.Builder
	tr.WriteChrome(&b)
	events := decodeChrome(t, b.String())
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	for _, ev := range events {
		if ev.Ph != "X" || ev.Pid != 1 {
			t.Fatalf("event shape wrong: %+v", ev)
		}
		if ev.Args["trace"] != events[0].Args["trace"] {
			t.Fatal("both spans must share one trace lane")
		}
	}
	if events[0].Tid != events[1].Tid {
		t.Fatal("spans of one trace must share a tid lane")
	}
	attempt, request := events[0], events[1] // commit order: child first
	if attempt.Name != "attempt" || request.Name != "request" {
		t.Fatalf("commit order wrong: %+v", events)
	}
	if attempt.Args["parent"] != request.Args["id"] {
		t.Fatalf("attempt.parent=%q, want request id %q", attempt.Args["parent"], request.Args["id"])
	}
	if _, ok := request.Args["parent"]; ok {
		t.Fatal("root span must not carry a parent arg")
	}
	if request.Args["label_name"] != "n3" {
		t.Fatalf("labels not exported: %+v", request.Args)
	}
	if attempt.Dur <= 0 {
		t.Fatalf("attempt duration not positive with a ticking clock: %+v", attempt)
	}
}

func TestWriteChromeSeparateTracesGetSeparateLanes(t *testing.T) {
	tr := NewTracer(6, 16)
	tr.Start("t1").End()
	tr.Start("t2").End()
	var b strings.Builder
	tr.WriteChrome(&b)
	events := decodeChrome(t, b.String())
	if len(events) != 2 || events[0].Tid == events[1].Tid {
		t.Fatalf("independent traces must get distinct tid lanes: %+v", events)
	}
	if events[0].Tid != 1 || events[1].Tid != 2 {
		t.Fatalf("lanes must number in first-appearance order: %+v", events)
	}
}

func TestWriteChromeEmptyAndNil(t *testing.T) {
	var b strings.Builder
	NewTracer(1, 4).WriteChrome(&b)
	if events := decodeChrome(t, b.String()); len(events) != 0 {
		t.Fatalf("empty tracer exported %d events", len(events))
	}
	b.Reset()
	var nilTr *Tracer
	nilTr.WriteChrome(&b)
	if events := decodeChrome(t, b.String()); len(events) != 0 {
		t.Fatalf("nil tracer exported %d events", len(events))
	}
}
