// Package obs is the repository's observability substrate: an atomic
// hot-path metrics registry (counters, gauges, fixed-bucket histograms)
// with Prometheus text-format exposition and expvar bridging, span-based
// tracing with deterministic IDs, and an HTTP introspection endpoint
// (/metrics, /debug/vars, /debug/pprof) mounted by the daemons behind an
// -obs.addr flag.
//
// The design contract, enforced by tests:
//
//   - Hot paths never allocate: recording is an atomic add (or a short
//     CAS loop for histogram sums), and metric handles are resolved once
//     at registration time, never per observation.
//   - Disabled is free and safe: every recording method is a no-op on a
//     nil receiver, and a nil *Registry hands out nil handles, so
//     instrumented code runs unchanged — and unmeasured — when nobody
//     asked for metrics.
//   - Observation never perturbs results: experiment output is
//     byte-identical with obs on or off (internal/expt's determinism
//     tests compare the two), and nothing in this package reads the wall
//     clock — daemons inject a clock where latency is measured, so
//     simulation packages stay clean under the determinism analyzer.
//
// Metric naming follows the Prometheus convention, scoped by subsystem:
// locind_<subsystem>_<noun>_<unit>, e.g. locind_gns_requests_total,
// locind_memo_hits_total, locind_par_queue_depth. Counters end in _total;
// durations are seconds; label sets are fixed at registration.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. All methods are safe for
// concurrent use and are no-ops on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add applies a delta.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value; 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed cumulative buckets — the
// Prometheus histogram model with the bucket layout frozen at registration.
// Observe is lock-free: one linear bucket scan (bucket counts are small and
// fixed), two atomic adds, and a CAS loop for the float sum.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // math.Float64bits
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations; 0 on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values; 0 on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DefBuckets is a general-purpose latency layout in seconds, from 100µs to
// ~10s — wide enough for loopback RPCs and chaos-injected stalls alike.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metricKind discriminates exposition rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// labelPair is one structured label, kept alongside the pre-rendered
// exposition string so the sampler and dashboard can group series by label
// without re-parsing exposition text.
type labelPair struct{ K, V string }

// series is one registered time series: a metric handle plus its identity.
type series struct {
	name   string // family name
	labels string // pre-rendered `k="v",k2="v2"`, or ""
	pairs  []labelPair
	help   string
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry owns a set of named series. Registration is cold-path (mutex);
// the returned handles are the hot path. The zero value is not usable; a
// nil *Registry is the disabled state and hands out nil handles from every
// constructor.
type Registry struct {
	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*series{}}
}

// validName matches the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// sortLabels turns ("k","v","k2","v2") pairs into sorted structured pairs,
// so the same label set always renders — and keys — identically.
func sortLabels(pairs []string) []labelPair {
	if len(pairs) == 0 {
		return nil
	}
	if len(pairs)%2 != 0 {
		panic("obs: labels must be key,value pairs")
	}
	kvs := make([]labelPair, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		if !validName(pairs[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", pairs[i]))
		}
		kvs = append(kvs, labelPair{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].K < kvs[j].K })
	return kvs
}

// renderLabels renders sorted pairs in the exposition form.
func renderLabels(kvs []labelPair) string {
	if len(kvs) == 0 {
		return ""
	}
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.K, p.V)
	}
	return b.String()
}

// register returns the series for (name, labels), creating it on first use.
// Re-registering the same identity returns the existing series, so package
// singletons and tests can share handles; re-registering with a different
// kind panics (it is a programming error, caught at startup).
func (r *Registry) register(name, help string, labels []string, kind metricKind) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	pairs := sortLabels(labels)
	ls := renderLabels(pairs)
	key := name + "{" + ls + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as a different kind", key))
		}
		return s
	}
	s := &series{name: name, labels: ls, pairs: pairs, help: help, kind: kind}
	r.byKey[key] = s
	r.series = append(r.series, s)
	return s
}

// Counter registers (or fetches) a counter. A nil registry returns a nil
// handle — the disabled, zero-overhead state.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.register(name, help, labels, kindCounter)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or fetches) a gauge. Nil registry → nil handle.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.register(name, help, labels, kindGauge)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram registers (or fetches) a histogram with the given bucket upper
// bounds (nil means DefBuckets). Nil registry → nil handle.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.register(name, help, labels, kindHistogram)
	if s.h == nil {
		if buckets == nil {
			buckets = DefBuckets
		}
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
		s.h = h
	}
	return s.h
}
