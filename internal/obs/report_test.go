package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestSampleJSONRoundTripsNonFinite(t *testing.T) {
	in := []Sample{1.5, Sample(math.NaN()), Sample(math.Inf(1)), Sample(math.Inf(-1)), -2}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if got, want := string(b), "[1.5,null,null,null,-2]"; got != want {
		t.Fatalf("marshal = %s, want %s", got, want)
	}
	var out []Sample
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out[0] != 1.5 || out[4] != -2 {
		t.Fatalf("round trip = %v", out)
	}
	for i := 1; i <= 3; i++ {
		if !math.IsNaN(float64(out[i])) {
			t.Fatalf("sample %d = %v, want NaN back from null", i, out[i])
		}
	}
}

func TestDumpRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "", "shard", "1")
	g := r.Gauge("depth", "")
	s := NewSampler(r, 16)
	s.SetInterval(200 * time.Millisecond)
	s.Check("depth-ok", "depth", Bounded{Min: 0, Max: 100})
	for i := 0; i < 5; i++ {
		c.Inc()
		g.Set(int64(i))
		s.Tick()
	}
	raw, err := s.Dump().JSON()
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	d, err := ParseDump(raw)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if d.Ticks != 5 || d.IntervalSeconds != 0.2 || len(d.Series) != 2 {
		t.Fatalf("dump = ticks %d interval %g series %d", d.Ticks, d.IntervalSeconds, len(d.Series))
	}
	if d.Series[0].Key != `ops_total{shard="1"}` || d.Series[0].Labels["shard"] != "1" {
		t.Fatalf("series[0] = %+v", d.Series[0])
	}
	if len(d.Series[1].Samples) != 5 || float64(d.Series[1].Samples[4]) != 4 {
		t.Fatalf("gauge samples = %v", d.Series[1].Samples)
	}
	if len(d.Checks) != 1 || !d.Checks[0].OK {
		t.Fatalf("checks = %+v", d.Checks)
	}
	var nilS *Sampler
	if nilS.Dump() != nil {
		t.Fatal("nil sampler Dump must be nil")
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 40); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 40)
	if got != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp sparkline = %q", got)
	}
	// Constant series renders mid-height, not a divide-by-zero.
	got = Sparkline([]float64{5, 5, 5}, 40)
	if len([]rune(got)) != 3 || !strings.HasPrefix(got, string(sparkTicks[4])) {
		t.Fatalf("flat sparkline = %q", got)
	}
	// Non-finite samples become visible gaps.
	got = Sparkline([]float64{0, math.NaN(), 8}, 40)
	if got != "▁·█" {
		t.Fatalf("gap sparkline = %q", got)
	}
	// Longer series downsample to the width budget.
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i)
	}
	if got := Sparkline(long, 10); len([]rune(got)) != 10 {
		t.Fatalf("downsampled width = %d (%q)", len([]rune(got)), got)
	}
}

func TestWriteMarkdown(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("heap_bytes", "", "shard", "0")
	s := NewSampler(r, 32)
	s.Check("heap-flat", `heap_bytes{shard="0"}`, Flatness{EarlyQuarter: 2, LateQuarter: 3, RelSlack: 0.25})
	for i := 0; i < 16; i++ {
		g.Set(1000)
		s.Tick()
	}
	var b strings.Builder
	s.Dump().WriteMarkdown(&b)
	md := b.String()
	for _, want := range []string{
		"# locind time-series report",
		"## Checks",
		"| heap-flat | `heap_bytes{shard=\"0\"}` | flat | ✅ ok |",
		"## Series",
		"`heap_bytes{shard=\"0\"}`",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	if strings.Contains(md, "FAIL") {
		t.Fatalf("healthy report must not contain FAIL:\n%s", md)
	}
}
