package obs

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Profiler brackets the phases of a run — world build, per-collector
// displacement walks, figure drivers — and records what each phase cost:
// wall time (from an injected clock, zero without one), runtime.MemStats
// allocation deltas, a goroutine high-water mark sampled at the phase
// boundaries, and the delta of every integer counter in the attached
// Registry (memo hits/misses, retries, injected faults, rows, ...).
//
// The PR-4 contract extends to profiling: every method is nil-safe, the
// profiler only reads — it never steers — and its artifact is
// deterministic modulo timing: for a fixed seed the phase list and every
// counter delta replay exactly; only the wall/alloc/goroutine columns
// depend on the host.
type Profiler struct {
	mu     sync.Mutex
	reg    *Registry
	now    func() time.Duration
	phases []PhaseStats
}

// PhaseStats is the cost record of one completed phase.
type PhaseStats struct {
	Name string `json:"name"`
	// Wall is the phase duration from the injected clock (0 without one).
	Wall time.Duration `json:"wall_ns"`
	// AllocBytes and Mallocs are runtime.MemStats cumulative deltas
	// (TotalAlloc / Mallocs) across the phase.
	AllocBytes uint64 `json:"alloc_bytes"`
	Mallocs    uint64 `json:"mallocs"`
	// GoroutineHigh is the goroutine high-water mark as sampled at the
	// phase boundaries (the max of the begin and end samples).
	GoroutineHigh int `json:"goroutine_high"`
	// Counters holds the non-zero deltas of every integer series in the
	// attached registry across the phase — memo hits/misses, retry and
	// fault counters, rows. Deterministic for a fixed seed.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// MemoHitRate derives the route-memo hit rate of the phase from its
// counter deltas (-1 when the phase did no memo lookups).
func (ps PhaseStats) MemoHitRate() float64 {
	hits := ps.Counters["locind_memo_hits_total"]
	misses := ps.Counters["locind_memo_misses_total"]
	if hits+misses == 0 {
		return -1
	}
	return float64(hits) / float64(hits+misses)
}

// NewProfiler builds a profiler reading counter deltas from reg (which may
// be nil: phases then carry no counter deltas).
func NewProfiler(reg *Registry) *Profiler {
	return &Profiler{reg: reg}
}

// SetNow installs the monotonic clock used for phase wall times. The
// binaries inject a wall-clock closure; simulations leave it unset and get
// structure-only profiles. nil clears the clock.
func (p *Profiler) SetNow(fn func() time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.now = fn
	p.mu.Unlock()
}

// ProfPhase is one open phase; End commits it.
type ProfPhase struct {
	p          *Profiler
	name       string
	start      time.Duration
	mem        runtime.MemStats
	goroutines int
	counters   map[string]int64
	ended      bool
}

// Begin opens a phase. Phases may nest or interleave freely — each handle
// snapshots its own baselines — though the conventional use is
// sequential brackets around each stage of a run. Nil profiler → nil
// handle, on which End is a no-op.
func (p *Profiler) Begin(name string) *ProfPhase {
	if p == nil {
		return nil
	}
	ph := &ProfPhase{p: p, name: name, goroutines: runtime.NumGoroutine()}
	p.mu.Lock()
	if p.now != nil {
		ph.start = p.now()
	}
	p.mu.Unlock()
	ph.counters = snapshotInts(p.reg)
	runtime.ReadMemStats(&ph.mem)
	return ph
}

// End commits the phase. Exactly once: a second End is a no-op.
func (ph *ProfPhase) End() {
	if ph == nil || ph.ended {
		return
	}
	ph.ended = true
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	p := ph.p
	st := PhaseStats{
		Name:          ph.name,
		AllocBytes:    mem.TotalAlloc - ph.mem.TotalAlloc,
		Mallocs:       mem.Mallocs - ph.mem.Mallocs,
		GoroutineHigh: max(ph.goroutines, runtime.NumGoroutine()),
	}
	for k, v := range snapshotInts(p.reg) {
		if d := v - ph.counters[k]; d != 0 {
			if st.Counters == nil {
				st.Counters = map[string]int64{}
			}
			st.Counters[k] = d
		}
	}
	p.mu.Lock()
	if p.now != nil {
		st.Wall = p.now() - ph.start
	}
	p.phases = append(p.phases, st)
	p.mu.Unlock()
}

// snapshotInts reads every integer-valued series from reg (counters,
// gauges, histogram counts), keyed by exposition name.
func snapshotInts(reg *Registry) map[string]int64 {
	out := map[string]int64{}
	for k, v := range reg.Snapshot() {
		if n, ok := v.(int64); ok {
			out[k] = n
		}
	}
	return out
}

// Phases returns the committed phases in completion order.
func (p *Profiler) Phases() []PhaseStats {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]PhaseStats(nil), p.phases...)
}

// WriteJSON renders the committed phases as the machine-readable run
// report artifact.
func (p *Profiler) WriteJSON(b *strings.Builder) {
	phases := p.Phases()
	if phases == nil {
		phases = []PhaseStats{}
	}
	enc, err := json.MarshalIndent(struct {
		Phases []PhaseStats `json:"phases"`
	}{phases}, "", "  ")
	if err != nil {
		fmt.Fprintf(b, `{"error":%q}`, err.Error())
		return
	}
	b.Write(enc) //nolint:errcheck // strings.Builder cannot fail
	b.WriteByte('\n')
}

// WriteReport renders the committed phases as RUNREPORT.md: a summary
// table plus per-phase counter deltas. Counter sections are sorted by
// name, so for a fixed seed everything except the timing columns is
// byte-identical across runs and hosts.
func (p *Profiler) WriteReport(b *strings.Builder) {
	b.WriteString("# RUNREPORT\n\n")
	b.WriteString("Per-phase resource profile of one run. Counter deltas replay exactly\n")
	b.WriteString("for a fixed seed; the wall/alloc/goroutine columns depend on the host\n")
	b.WriteString("and are excluded from reproducibility comparisons.\n\n")
	phases := p.Phases()
	if len(phases) == 0 {
		b.WriteString("(no phases recorded)\n")
		return
	}
	b.WriteString("| phase | wall | alloc | mallocs | goroutines (hwm) | memo hit rate |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|\n")
	for _, ps := range phases {
		rate := "-"
		if r := ps.MemoHitRate(); r >= 0 {
			rate = fmt.Sprintf("%.3f", r)
		}
		fmt.Fprintf(b, "| %s | %v | %s | %d | %d | %s |\n",
			ps.Name, ps.Wall.Round(time.Millisecond), formatBytes(ps.AllocBytes),
			ps.Mallocs, ps.GoroutineHigh, rate)
	}
	for _, ps := range phases {
		if len(ps.Counters) == 0 {
			continue
		}
		fmt.Fprintf(b, "\n## %s — counter deltas\n\n", ps.Name)
		b.WriteString("| counter | delta |\n|---|---:|\n")
		keys := make([]string, 0, len(ps.Counters))
		for k := range ps.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, "| %s | %d |\n", k, ps.Counters[k])
		}
	}
}

// formatBytes renders a byte count with a binary-unit suffix.
func formatBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
