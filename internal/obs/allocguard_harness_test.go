package obs

import "testing"

// allocGuardHarness maps each //lint:zeroalloc symbol in this package to
// its measurement, consumed by the generated TestAllocGuard
// (allocguard_gen_test.go). AllocsPerRun's documented warm-up invocation
// runs the first Tick — the cold sync() that builds sources and rings —
// before anything is measured, so the measurement pins the warm per-tick
// snapshot path (atomic loads, quantile interpolation, ring pushes) at an
// absolute zero.
func allocGuardHarness() map[string]func(t *testing.T) float64 {
	return map[string]func(t *testing.T) float64{
		"Sampler.snapshot": func(t *testing.T) float64 {
			reg := NewRegistry()
			c := reg.Counter("guard_ops_total", "ops")
			g := reg.Gauge("guard_queue_entries", "queue depth", "shard", "0")
			h := reg.Histogram("guard_latency_seconds", "latency", nil)
			s := NewSampler(reg, 64)
			var i int64
			return testing.AllocsPerRun(10, func() {
				// Enough ticks per run to wrap the 64-sample rings: the
				// steady state being guarded includes ring wraparound and
				// the histogram's five derived series.
				for k := 0; k < 96; k++ {
					i++
					c.Add(3)
					g.Set(i % 17)
					h.Observe(float64(i%9) / 100)
					s.Tick()
				}
				if s.Ticks() == 0 {
					t.Fatal("sampler never ticked")
				}
			})
		},
	}
}
