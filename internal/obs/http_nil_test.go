package obs

import (
	"context"
	"strings"
	"testing"
)

func TestHandlerNilSourcesReturn404(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := Serve(ctx, "127.0.0.1:0", Handler(NewRegistry(), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/debug/traces")
	if code != 404 || !strings.Contains(body, "tracing disabled") {
		t.Fatalf("/debug/traces with nil tracer = %d: %q", code, body)
	}
	code, body = get(t, base+"/debug/log")
	if code != 404 || !strings.Contains(body, "flight recorder disabled") {
		t.Fatalf("/debug/log with nil ring = %d: %q", code, body)
	}
	// The rest of the surface must stay up regardless.
	if code, _ = get(t, base+"/metrics"); code != 200 {
		t.Fatalf("/metrics = %d with nil tracer/ring", code)
	}
	if code, _ = get(t, base+"/healthz"); code != 200 {
		t.Fatalf("/healthz = %d with nil tracer/ring", code)
	}
}

func TestHandlerChromeFormat(t *testing.T) {
	tr := NewTracer(9, 8)
	req := tr.Start("request")
	req.Child("attempt").End()
	req.End()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := Serve(ctx, "127.0.0.1:0", Handler(NewRegistry(), tr, NewRing(256)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, "http://"+srv.Addr()+"/debug/traces?format=chrome")
	if code != 200 {
		t.Fatalf("?format=chrome = %d: %s", code, body)
	}
	events := decodeChrome(t, body)
	if len(events) != 2 {
		t.Fatalf("chrome export over HTTP carried %d events, want 2", len(events))
	}
}
