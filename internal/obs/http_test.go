package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestIntrospectionEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("locind_test_requests_total", "requests").Add(7)
	tr := NewTracer(1, 16)
	tr.Start("probe").End()
	log := NewRing(1024)
	log.Write([]byte("hello recorder\n")) //nolint:errcheck // Ring writes cannot fail

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := Serve(ctx, "127.0.0.1:0", Handler(reg, tr, log))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 || !strings.Contains(body, "locind_test_requests_total 7") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	code, body = get(t, base+"/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["locind_obs"]; !ok {
		t.Fatalf("/debug/vars missing bridged registry; keys: %v", body)
	}
	code, body = get(t, base+"/debug/traces")
	if code != 200 || !strings.Contains(body, `"name":"probe"`) {
		t.Fatalf("/debug/traces = %d: %s", code, body)
	}
	code, body = get(t, base+"/debug/log")
	if code != 200 || !strings.Contains(body, "hello recorder") {
		t.Fatalf("/debug/log = %d: %s", code, body)
	}
	code, body = get(t, base+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	code, _ = get(t, base+"/healthz")
	if code != 200 {
		t.Fatalf("/healthz = %d", code)
	}

	// ctx cancellation tears the endpoint down.
	cancel()
	if err := srv.Close(); err != nil && err != http.ErrServerClosed {
		t.Fatalf("close: %v", err)
	}
}
