package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
)

// HandlerOpts selects which introspection surfaces NewHandler mounts; any
// nil field simply leaves its endpoints in the explanatory-404 state.
type HandlerOpts struct {
	Reg     *Registry
	Tracer  *Tracer
	Log     *Ring
	Sampler *Sampler
}

// Handler mounts the introspection surface for the common trio; it is
// NewHandler without a sampler, kept for callers that predate the
// time-series layer.
func Handler(reg *Registry, tr *Tracer, log *Ring) http.Handler {
	return NewHandler(HandlerOpts{Reg: reg, Tracer: tr, Log: log})
}

// NewHandler mounts the introspection surface on a private mux:
//
//	/metrics           Prometheus text exposition of Reg
//	/debug/vars        expvar JSON (Reg is bridged in under "locind_obs")
//	/debug/pprof/*     the standard runtime profiles
//	/debug/traces      Tracer's retained spans as JSON; ?format=chrome
//	                   renders Chrome trace_event JSON (404 when nil)
//	/debug/log         Log's retained flight-recorder tail (404 when nil)
//	/debug/timeseries  Sampler's ring-buffer series + check verdicts as
//	                   JSON (404 when nil)
//	/debug/dash        self-contained HTML dashboard with inline SVG
//	                   sparklines; ?by=<label> groups per shard/replica
//	                   (404 when Sampler is nil)
//	/healthz           200 "ok" — or 503 "degraded" listing the failing
//	                   series checks when the sampler has any
//
// Nothing registers on http.DefaultServeMux, so tests can mount several
// handlers in one process.
func NewHandler(o HandlerOpts) http.Handler {
	reg, tr, log, sampler := o.Reg, o.Tracer, o.Log, o.Sampler
	BridgeExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		reg.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(b.String())) //nolint:errcheck // a dead scraper is its own problem
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		// An explicit 404 beats an empty 200: "tracing disabled" and "no
		// spans recorded yet" are different operator situations.
		if tr == nil {
			http.Error(w, "tracing disabled (no tracer attached)", http.StatusNotFound)
			return
		}
		var b strings.Builder
		if r.URL.Query().Get("format") == "chrome" {
			tr.WriteChrome(&b)
		} else {
			tr.WriteJSON(&b)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(b.String())) //nolint:errcheck
	})
	mux.HandleFunc("/debug/log", func(w http.ResponseWriter, _ *http.Request) {
		if log == nil {
			http.Error(w, "flight recorder disabled (no ring attached)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(log.Bytes()) //nolint:errcheck
	})
	mux.HandleFunc("/debug/timeseries", func(w http.ResponseWriter, _ *http.Request) {
		if sampler == nil {
			http.Error(w, "time-series sampling disabled (no sampler attached)", http.StatusNotFound)
			return
		}
		out, err := sampler.Dump().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(out) //nolint:errcheck
	})
	mux.HandleFunc("/debug/dash", func(w http.ResponseWriter, r *http.Request) {
		if sampler == nil {
			http.Error(w, "time-series sampling disabled (no sampler attached)", http.StatusNotFound)
			return
		}
		var b strings.Builder
		WriteDash(&b, sampler, r.URL.Query().Get("by"))
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(b.String())) //nolint:errcheck
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// Failing series checks degrade health: a soak whose heap series
		// stopped being flat should trip the operator's probe, not wait for
		// the end-of-run report.
		if ok, failed := sampler.Healthy(); !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			var b strings.Builder
			b.WriteString("degraded\n")
			for _, c := range failed {
				fmt.Fprintf(&b, "check %s (%s on %s): %s\n", c.Name, c.Kind, c.Series, c.Detail)
			}
			w.Write([]byte(b.String())) //nolint:errcheck
			return
		}
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	return mux
}

// Server is a bound introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server

	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// Serve binds addr and serves h (Handler(reg, tr) normally) in the
// background until Close or ctx cancellation. It returns once the socket
// is bound, so callers can immediately advertise Addr.
func Serve(ctx context.Context, addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: h}, closed: make(chan struct{})}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns ErrServerClosed after Close
	go func() {
		select {
		case <-ctx.Done():
			s.Close() //nolint:errcheck // close error is observable via the next Close
		case <-s.closed:
		}
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down. Safe to call more than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closeErr = s.srv.Close()
		close(s.closed)
	})
	return s.closeErr
}
