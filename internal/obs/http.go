package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
)

// Handler mounts the introspection surface on a private mux:
//
//	/metrics        Prometheus text exposition of reg
//	/debug/vars     expvar JSON (reg is bridged in under "locind_obs")
//	/debug/pprof/*  the standard runtime profiles
//	/debug/traces   tr's retained spans as JSON; ?format=chrome renders
//	                Chrome trace_event JSON instead (404 when tr is nil)
//	/debug/log      log's retained flight-recorder tail (404 when log is nil)
//	/healthz        200 ok
//
// Nothing registers on http.DefaultServeMux, so tests can mount several
// handlers in one process.
func Handler(reg *Registry, tr *Tracer, log *Ring) http.Handler {
	BridgeExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		reg.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(b.String())) //nolint:errcheck // a dead scraper is its own problem
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		// An explicit 404 beats an empty 200: "tracing disabled" and "no
		// spans recorded yet" are different operator situations.
		if tr == nil {
			http.Error(w, "tracing disabled (no tracer attached)", http.StatusNotFound)
			return
		}
		var b strings.Builder
		if r.URL.Query().Get("format") == "chrome" {
			tr.WriteChrome(&b)
		} else {
			tr.WriteJSON(&b)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(b.String())) //nolint:errcheck
	})
	mux.HandleFunc("/debug/log", func(w http.ResponseWriter, _ *http.Request) {
		if log == nil {
			http.Error(w, "flight recorder disabled (no ring attached)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(log.Bytes()) //nolint:errcheck
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	return mux
}

// Server is a bound introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server

	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// Serve binds addr and serves h (Handler(reg, tr) normally) in the
// background until Close or ctx cancellation. It returns once the socket
// is bound, so callers can immediately advertise Addr.
func Serve(ctx context.Context, addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: h}, closed: make(chan struct{})}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns ErrServerClosed after Close
	go func() {
		select {
		case <-ctx.Done():
			s.Close() //nolint:errcheck // close error is observable via the next Close
		case <-s.closed:
		}
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down. Safe to call more than once.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closeErr = s.srv.Close()
		close(s.closed)
	})
	return s.closeErr
}
