package obs

import (
	"math"
	"strings"
	"testing"
)

func TestFlatnessVacuousUnderFourSamples(t *testing.T) {
	f := Flatness{EarlyQuarter: 2, LateQuarter: 3}
	for n := 0; n < 4; n++ {
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = float64(1 << 30) // huge values must not matter
		}
		ok, detail := f.Eval(samples)
		if !ok {
			t.Fatalf("n=%d: want vacuous pass, got fail (%s)", n, detail)
		}
		if !strings.Contains(detail, "insufficient samples") {
			t.Fatalf("n=%d: detail = %q", n, detail)
		}
	}
}

func TestFlatnessAllEqualPasses(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = 123456
	}
	f := Flatness{EarlyQuarter: 2, LateQuarter: 3}
	if ok, detail := f.Eval(samples); !ok {
		t.Fatalf("all-equal series must be flat: %s", detail)
	}
}

func TestFlatnessCatchesGrowth(t *testing.T) {
	// Linear growth: Q4 median far above Q3 median, beyond 25% + 0 slack.
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i) * 1000
	}
	f := Flatness{EarlyQuarter: 2, LateQuarter: 3, RelSlack: 0.25}
	if ok, _ := f.Eval(samples); ok {
		t.Fatal("linear growth must fail flatness")
	}
	// The same shape passes with enough absolute slack.
	f.AbsSlack = 1e9
	if ok, detail := f.Eval(samples); !ok {
		t.Fatalf("huge AbsSlack must absorb growth: %s", detail)
	}
}

func TestFlatnessPlateauPasses(t *testing.T) {
	// Ramp for the first half, plateau after — comparing Q3 vs Q4 must pass.
	samples := make([]float64, 200)
	for i := range samples {
		if i < 100 {
			samples[i] = float64(i)
		} else {
			samples[i] = 100
		}
	}
	f := Flatness{EarlyQuarter: 2, LateQuarter: 3, RelSlack: 0.25}
	if ok, detail := f.Eval(samples); !ok {
		t.Fatalf("ramp-then-plateau must pass Q3-vs-Q4 flatness: %s", detail)
	}
}

func TestChecksFailOnNonFinite(t *testing.T) {
	checks := []SeriesCheck{
		Flatness{EarlyQuarter: 2, LateQuarter: 3},
		MonotoneNonDecreasing{},
		Bounded{Min: -1e18, Max: 1e18},
		MaxRate{PerSample: 1e18},
	}
	bad := [][]float64{
		{1, 2, math.NaN(), 4, 5},
		{1, 2, math.Inf(1), 4, 5},
		{1, 2, math.Inf(-1), 4, 5},
	}
	for _, c := range checks {
		for _, samples := range bad {
			ok, detail := c.Eval(samples)
			if ok {
				t.Fatalf("%s: non-finite samples must fail", c.Kind())
			}
			if !strings.Contains(detail, "index 2") {
				t.Fatalf("%s: detail should name the bad index, got %q", c.Kind(), detail)
			}
		}
	}
}

func TestMonotoneNonDecreasing(t *testing.T) {
	m := MonotoneNonDecreasing{}
	if ok, _ := m.Eval([]float64{1, 1, 2, 2, 3}); !ok {
		t.Fatal("nondecreasing series must pass")
	}
	if ok, _ := m.Eval(nil); !ok {
		t.Fatal("empty series must pass")
	}
	ok, detail := m.Eval([]float64{1, 2, 1})
	if ok {
		t.Fatal("decrease must fail")
	}
	if !strings.Contains(detail, "index 2") {
		t.Fatalf("detail = %q", detail)
	}
}

func TestBounded(t *testing.T) {
	b := Bounded{Min: 0, Max: 10}
	if ok, _ := b.Eval([]float64{0, 5, 10}); !ok {
		t.Fatal("in-range series must pass")
	}
	if ok, _ := b.Eval([]float64{0, 11}); ok {
		t.Fatal("above Max must fail")
	}
	if ok, _ := b.Eval([]float64{-0.5}); ok {
		t.Fatal("below Min must fail")
	}
}

func TestMaxRate(t *testing.T) {
	m := MaxRate{PerSample: 5}
	if ok, _ := m.Eval([]float64{0, 5, 10, 8, 13}); !ok {
		t.Fatal("growth within limit (and any decrease) must pass")
	}
	if ok, _ := m.Eval([]float64{0, 6}); ok {
		t.Fatal("growth beyond limit must fail")
	}
}
